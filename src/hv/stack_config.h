/**
 * @file
 * Configuration of the virtualization stack assembled by VirtStack.
 */

#ifndef SVTSIM_HV_STACK_CONFIG_H
#define SVTSIM_HV_STACK_CONFIG_H

#include "hv/channel.h"

namespace svtsim {

/** How the workload is virtualized (the Figure 6 bar set). */
enum class VirtMode
{
    /** Bare metal (the paper's "L0" bar). */
    Native,
    /** One virtualization level (the "L1" bar). */
    Single,
    /** Nested baseline: L2 on L1 on L0 (the "L2" bar). */
    Nested,
    /** Nested with the software-only SVt prototype (Section 5.2). */
    SwSvt,
    /** Nested with SVt hardware (Sections 3-4), fully simulated. */
    HwSvt,
};

const char *virtModeName(VirtMode mode);

/** Tuning knobs of the stack (defaults reproduce the paper's setup). */
struct StackConfig
{
    VirtMode mode = VirtMode::Nested;

    /** Intel-style hardware VMCS shadowing available and used by L0
     *  for L1's VMCS accesses (on for the paper's Haswell testbed;
     *  ablation bench turns it off). */
    bool hwVmcsShadowing = true;

    /** SW SVt channel configuration (Section 6.1 explores these). */
    ChannelModel channel{};

    /** Apply the Section 5.3 SVT_BLOCKED deadlock fix. Turning this
     *  off demonstrates the interrupt deadlock in tests. */
    bool svtBlockedFix = true;

    /** Eagerly load full guest state at VM entry instead of lazily
     *  (ablation; the paper's systems are lazy, Section 3.1). */
    bool eagerStateLoad = false;

    /**
     * HW SVt extension sketched in Section 3.1: "SVt could
     * selectively bypass some virtualization levels when triggering a
     * VM trap to bring performance even closer to systems with full
     * hardware support for nested virtualization". When enabled, L2
     * exits whose reason L0 whitelisted (cpuid, rdmsr, vmcall, pause
     * — reasons that touch no L0-owned state) retarget fetch straight
     * to the guest hypervisor's context; L0 is only involved when the
     * L1 handler itself traps.
     */
    bool svtDirectReflect = false;

    /** Core on which the stack runs. */
    int coreIndex = 0;
};

/**
 * Reject inconsistent knob combinations with an actionable FatalError
 * instead of silently ignoring knobs that have no effect in the
 * configured mode. Called by VirtStack and NestedSystem on
 * construction; exposed so config producers (sweep scenario builders,
 * future config-file loaders) can validate early.
 *
 * Rules:
 *  - svtDirectReflect models the Section 3.1 HW SVt bypass: HwSvt only.
 *  - channel tuning configures the SW SVt command rings: SwSvt only.
 *  - svtBlockedFix=false disables the Section 5.3 deadlock fix in the
 *    SVt trap path: requires an SVt mode (SwSvt or HwSvt).
 *  - hwVmcsShadowing=false only changes behaviour when a nested L1
 *    issues vmread/vmwrite: requires a nested mode.
 *  - eagerStateLoad tunes VM-entry state loading: Native has no
 *    VM entries.
 *  - coreIndex must be non-negative (the upper bound is checked
 *    against the actual machine by VirtStack).
 */
void validateStackConfig(const StackConfig &config);

} // namespace svtsim

#endif // SVTSIM_HV_STACK_CONFIG_H
