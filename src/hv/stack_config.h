/**
 * @file
 * Configuration of the virtualization stack assembled by VirtStack.
 */

#ifndef SVTSIM_HV_STACK_CONFIG_H
#define SVTSIM_HV_STACK_CONFIG_H

#include "hv/channel.h"

namespace svtsim {

/** How the workload is virtualized (the Figure 6 bar set). */
enum class VirtMode
{
    /** Bare metal (the paper's "L0" bar). */
    Native,
    /** One virtualization level (the "L1" bar). */
    Single,
    /** Nested baseline: L2 on L1 on L0 (the "L2" bar). */
    Nested,
    /** Nested with the software-only SVt prototype (Section 5.2). */
    SwSvt,
    /** Nested with SVt hardware (Sections 3-4), fully simulated. */
    HwSvt,
};

const char *virtModeName(VirtMode mode);

/**
 * Heartbeat watchdog on the SW SVt L0<->SVt-thread handshake.
 *
 * The prototype's protocol is one missed wakeup away from a hang
 * (Section 5.3); with the watchdog enabled, a handshake step that
 * misses its deadline is retried with linear backoff (re-ringing the
 * doorbell) and, when retries are exhausted, the stack degrades from
 * SW SVt to the conventional nested trap path. After quietPeriod of
 * degraded operation it re-promotes to SW SVt. Degradations and
 * re-promotions surface as the `svt.fallback` / `svt.repromote` PMU
 * counters and trace instants.
 */
struct SvtWatchdogConfig
{
    bool enabled = false;
    /** Heartbeat deadline for one handshake step. */
    Ticks timeout = usec(50);
    /** Doorbell retries before degrading. */
    int maxRetries = 3;
    /** Extra wait added per successive retry (linear backoff). */
    Ticks backoff = usec(25);
    /** Degraded time before re-promoting to SW SVt. */
    Ticks quietPeriod = usec(500);
};

/** Tuning knobs of the stack (defaults reproduce the paper's setup). */
struct StackConfig
{
    VirtMode mode = VirtMode::Nested;

    /** Intel-style hardware VMCS shadowing available and used by L0
     *  for L1's VMCS accesses (on for the paper's Haswell testbed;
     *  ablation bench turns it off). */
    bool hwVmcsShadowing = true;

    /** SW SVt channel configuration (Section 6.1 explores these). */
    ChannelModel channel{};

    /** Apply the Section 5.3 SVT_BLOCKED deadlock fix. Turning this
     *  off demonstrates the interrupt deadlock in tests. */
    bool svtBlockedFix = true;

    /** SW SVt heartbeat watchdog with graceful degradation (off by
     *  default: the paper's prototype assumes the happy path). */
    SvtWatchdogConfig svtWatchdog{};

    /** Eagerly load full guest state at VM entry instead of lazily
     *  (ablation; the paper's systems are lazy, Section 3.1). */
    bool eagerStateLoad = false;

    /**
     * HW SVt extension sketched in Section 3.1: "SVt could
     * selectively bypass some virtualization levels when triggering a
     * VM trap to bring performance even closer to systems with full
     * hardware support for nested virtualization". When enabled, L2
     * exits whose reason L0 whitelisted (cpuid, rdmsr, vmcall, pause
     * — reasons that touch no L0-owned state) retarget fetch straight
     * to the guest hypervisor's context; L0 is only involved when the
     * L1 handler itself traps.
     */
    bool svtDirectReflect = false;

    /**
     * First rung of the exit-elision ladder (ROADMAP item 3): posted
     * interrupts + x2APIC virtualization for L2. Completion interrupts
     * raised while L2 runs are written into the vCPU's posted-interrupt
     * descriptor and recognized by the (simulated) microcode without a
     * nested exit, and the guest's x2APIC EOI write is virtualized
     * instead of trapping to L0. Only meaningful when there is an L2:
     * requires a nested mode.
     */
    bool postedInterrupts = false;

    /**
     * Second rung: virtio-net/blk queue pairs. Each queue gets its own
     * doorbell page, Virtqueue array and vhost submission pipeline;
     * requests are sharded round-robin by request id. 1 reproduces the
     * paper's single-queue devices; >1 requires a nested mode.
     */
    int virtioQueues = 1;

    /**
     * Per-queue completion-interrupt coalescing: the vhost backend
     * fires the guest IRQ when this many completions are pending...
     */
    int virtioCoalesceCount = 1;

    /**
     * ...or when this much time has passed since the first undelivered
     * completion, whichever comes first. The timer is an ordinary event
     * on the machine's queue, so coalescing stays deterministic. 0
     * disables the timer; virtioCoalesceCount > 1 then requires a
     * timeout so a tail batch smaller than the count is never stranded.
     */
    Ticks virtioCoalesceTimeout = 0;

    /** Core on which the stack runs. */
    int coreIndex = 0;
};

/**
 * Reject inconsistent knob combinations with an actionable FatalError
 * instead of silently ignoring knobs that have no effect in the
 * configured mode. Called by VirtStack and NestedSystem on
 * construction; exposed so config producers (sweep scenario builders,
 * future config-file loaders) can validate early.
 *
 * Rules:
 *  - svtDirectReflect models the Section 3.1 HW SVt bypass: HwSvt only.
 *  - channel tuning configures the SW SVt command rings: SwSvt only.
 *  - svtWatchdog guards the SW SVt handshake: SwSvt only, and its
 *    timeout/retry/backoff/quiet-period parameters must be sane.
 *  - svtBlockedFix=false disables the Section 5.3 deadlock fix in the
 *    SVt trap path: requires an SVt mode (SwSvt or HwSvt).
 *  - hwVmcsShadowing=false only changes behaviour when a nested L1
 *    issues vmread/vmwrite: requires a nested mode.
 *  - eagerStateLoad tunes VM-entry state loading: Native has no
 *    VM entries.
 *  - postedInterrupts elides *nested* exits on the L2 interrupt path:
 *    requires a nested mode.
 *  - virtioQueues must be in [1, 8]; >1 requires a nested mode (the
 *    sweep compares queue scaling across the nested stacks).
 *  - virtioCoalesceCount >= 1, virtioCoalesceTimeout >= 0, and a
 *    count > 1 requires a timeout > 0 (otherwise a tail batch smaller
 *    than the count would never be delivered); non-default coalescing
 *    requires a nested mode.
 *  - coreIndex must be non-negative (the upper bound is checked
 *    against the actual machine by VirtStack).
 */
void validateStackConfig(const StackConfig &config);

} // namespace svtsim

#endif // SVTSIM_HV_STACK_CONFIG_H
