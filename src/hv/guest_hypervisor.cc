#include "hv/guest_hypervisor.h"

#include "arch/regs.h"
#include "hv/vectors.h"
#include "sim/log.h"

namespace svtsim {

GuestHypervisor::GuestHypervisor(CpuidDb cpuid_view)
    : cpuidView_(std::move(cpuid_view)), ept12_("ept12"),
      passthroughMsrs_({msr::ia32FsBase, msr::ia32GsBase,
                        msr::ia32KernelGsBase})
{
}

bool
GuestHypervisor::msrPassthrough(std::uint32_t index) const
{
    return passthroughMsrs_.count(index) != 0;
}

void
GuestHypervisor::setMsrPassthrough(std::uint32_t index,
                                   bool passthrough)
{
    if (passthrough)
        passthroughMsrs_.insert(index);
    else
        passthroughMsrs_.erase(index);
}

void
GuestHypervisor::registerMmio(Gpa base, std::uint64_t size,
                              L1MmioHandler handler)
{
    if (base % pageSize || size == 0)
        fatal("GuestHypervisor::registerMmio: unaligned region");
    mmio_.push_back(MmioRegion{base, size, std::move(handler)});
    // Doorbell pages are misconfigured in ept12 so L2 accesses take
    // the EPT_MISCONFIG fast path (the KVM fast-MMIO trick).
    ept12_.markMmio(base, (size + pageSize - 1) / pageSize);
}

void
GuestHypervisor::registerHypercall(std::uint64_t nr,
                                   L1HypercallHandler handler)
{
    hypercalls_[nr] = std::move(handler);
}

void
GuestHypervisor::registerIoPort(std::uint16_t port,
                                L1IoPortHandler handler)
{
    ioPorts_[port] = std::move(handler);
}

void
GuestHypervisor::setMsr(std::uint32_t index, std::uint64_t value)
{
    msrs_[index] = value;
}

void
GuestHypervisor::wireL2IrqRaiser(
    std::function<void(std::uint8_t)> raiser)
{
    raiseL2Irq_ = std::move(raiser);
}

void
GuestHypervisor::onL1TimerFired()
{
    if (l2TimerArmed_ && raiseL2Irq_) {
        l2TimerArmed_ = false;
        raiseL2Irq_(vec::l2Timer);
    }
}

std::uint64_t
GuestHypervisor::handledCount(ExitReason reason) const
{
    return handled_[static_cast<std::size_t>(reason)];
}

void
GuestHypervisor::skipInstruction(L1Backend &backend)
{
    std::uint64_t rip = backend.vmcsRead(VmcsField::GuestRip);
    std::uint64_t len = backend.vmcsRead(VmcsField::ExitInstrLen);
    backend.vmcsWrite(VmcsField::GuestRip, rip + len);
}

void
GuestHypervisor::eventInjectionHousekeeping(L1Backend &backend)
{
    // Every KVM exit-handling cycle re-evaluates pending event
    // injection and clears the VM-entry interruption field. The field
    // is not shadowable, so this is the L1->L0 trap that Algorithm 1
    // lines 8-10 fold into the L1 handler stage.
    backend.vmcsWrite(VmcsField::EntryIntrInfo, 0);
}

bool
GuestHypervisor::handleNestedExit(const ExitInfo &info,
                                  L1Backend &backend)
{
    ++handled_[static_cast<std::size_t>(info.reason)];

    // L1's KVM reads the exit reason from vmcs01' first.
    std::uint64_t reason = backend.vmcsRead(VmcsField::ExitReasonField);
    if (static_cast<ExitReason>(reason) != info.reason)
        panic("GuestHypervisor: stale exit reason in vmcs01'");

    switch (info.reason) {
      case ExitReason::Cpuid:
        handleCpuid(backend);
        break;
      case ExitReason::Rdmsr:
        handleRdmsr(backend);
        break;
      case ExitReason::Wrmsr:
        handleWrmsr(backend, info);
        break;
      case ExitReason::EptMisconfig:
        handleMmio(backend, info);
        break;
      case ExitReason::IoInstruction:
        handleIoInstruction(backend, info);
        break;
      case ExitReason::EptViolation:
        handleEptViolation(backend, info);
        break;
      case ExitReason::Vmcall:
        handleVmcall(backend);
        break;
      case ExitReason::Hlt:
        // L2 halted: no instruction skip (KVM re-enters at the HLT
        // successor via the interruptibility state), no resume.
        eventInjectionHousekeeping(backend);
        return false;
      case ExitReason::Pause:
        skipInstruction(backend);
        eventInjectionHousekeeping(backend);
        break;
      default:
        panic("GuestHypervisor: unhandled L2 exit %s",
              exitReasonName(info.reason));
    }
    return true;
}

void
GuestHypervisor::handleCpuid(L1Backend &backend)
{
    const CostModel &costs = backend.costs();
    std::uint64_t leaf = backend.l2Gpr(Gpr::Rax);
    backend.compute(costs.emulCpuid);
    CpuidResult r = cpuidView_.query(leaf);
    backend.setL2Gpr(Gpr::Rax, r.eax);
    backend.setL2Gpr(Gpr::Rbx, r.ebx);
    backend.setL2Gpr(Gpr::Rcx, r.ecx);
    backend.setL2Gpr(Gpr::Rdx, r.edx);
    skipInstruction(backend);
    eventInjectionHousekeeping(backend);
    backend.compute(costs.l1HandlerLogic);
}

void
GuestHypervisor::handleRdmsr(L1Backend &backend)
{
    const CostModel &costs = backend.costs();
    auto index =
        static_cast<std::uint32_t>(backend.l2Gpr(Gpr::Rcx));
    backend.compute(costs.emulMsr);
    std::uint64_t value = 0;
    auto it = msrs_.find(index);
    if (it != msrs_.end())
        value = it->second;
    backend.setL2Gpr(Gpr::Rax, value & 0xffffffff);
    backend.setL2Gpr(Gpr::Rdx, value >> 32);
    skipInstruction(backend);
    eventInjectionHousekeeping(backend);
    backend.compute(costs.l1HandlerLogic);
}

void
GuestHypervisor::handleWrmsr(L1Backend &backend, const ExitInfo &info)
{
    const CostModel &costs = backend.costs();
    auto index = static_cast<std::uint32_t>(backend.l2Gpr(Gpr::Rcx));
    std::uint64_t value = (backend.l2Gpr(Gpr::Rdx) << 32) |
                          (backend.l2Gpr(Gpr::Rax) & 0xffffffff);
    (void)info;
    backend.compute(costs.emulMsr);

    if (index == msr::ia32TscDeadline) {
        // L2 armed its deadline timer. L1 virtualizes it: remember the
        // pending forward and arm L1's own deadline through L1's (also
        // emulated) MSR -- which traps to L0 (the MSR_WRITE profile
        // entries of Section 6.2 largely come from here).
        l2TimerArmed_ = (value != 0);
        backend.l1Api().wrmsr(msr::ia32TscDeadline, value);
    } else {
        msrs_[index] = value;
    }
    skipInstruction(backend);
    eventInjectionHousekeeping(backend);
    backend.compute(costs.l1HandlerLogic);
}

void
GuestHypervisor::handleMmio(L1Backend &backend, const ExitInfo &info)
{
    const CostModel &costs = backend.costs();
    std::uint64_t gpa = backend.vmcsRead(VmcsField::GuestPhysAddr);
    // Fetch + decode of the faulting instruction from L2 memory.
    backend.compute(costs.mmioDecode);

    const MmioRegion *region = nullptr;
    for (const auto &r : mmio_) {
        if (gpa >= r.base && gpa < r.base + r.size) {
            region = &r;
            break;
        }
    }
    if (!region)
        panic("GuestHypervisor: L2 MMIO access to unmapped gpa %#llx",
              static_cast<unsigned long long>(gpa));

    bool is_write = info.qualification & 1;
    int size = static_cast<int>(info.qualification >> 1 & 0xf);
    // The userspace/vhost I/O thread in L1 is woken to process the
    // doorbell (scheduler work inside L1; no exit of its own).
    backend.compute(costs.l1IoThreadWake);
    std::uint64_t result =
        region->handler(gpa, size, info.value, is_write);
    if (!is_write)
        backend.setL2Gpr(Gpr::Rax, result);
    skipInstruction(backend);
    // I/O exits touch much more virtualization state than cpuid:
    // interrupt windows, TPR threshold, pending events. Each access
    // lands on a non-shadowable field (an extra L1->L0 trap in the
    // baseline; nearly free under HW SVt).
    for (int i = 0; i < costs.l1IoExtraVmcsTraps; ++i)
        backend.vmcsWrite(VmcsField::EntryIntrInfo, 0);
    eventInjectionHousekeeping(backend);
    backend.compute(costs.l1HandlerLogic);
}

void
GuestHypervisor::handleIoInstruction(L1Backend &backend,
                                     const ExitInfo &info)
{
    const CostModel &costs = backend.costs();
    auto port = static_cast<std::uint16_t>(info.qualification >> 16);
    bool is_write = info.qualification & 1;
    // Port I/O decodes straight from the exit qualification; no
    // instruction fetch is needed (unlike MMIO).
    backend.compute(costs.emulMsr);
    auto it = ioPorts_.find(port);
    std::uint64_t result = ~0ULL; // float the bus
    if (it != ioPorts_.end())
        result = it->second(port, info.value, is_write);
    if (!is_write)
        backend.setL2Gpr(Gpr::Rax, result);
    skipInstruction(backend);
    eventInjectionHousekeeping(backend);
    backend.compute(costs.l1HandlerLogic);
}

void
GuestHypervisor::handleEptViolation(L1Backend &backend,
                                    const ExitInfo &info)
{
    const CostModel &costs = backend.costs();
    std::uint64_t gpa = backend.vmcsRead(VmcsField::GuestPhysAddr);
    (void)info;
    // L1 demand-maps the page: walk its memory management structures
    // and install the translation in ept12 at an identity-with-offset
    // host (i.e., L1-physical) address.
    backend.compute(costs.mmioDecode + 4 * costs.memAccess);
    ept12_.map(gpa & ~(pageSize - 1),
               (gpa & ~(pageSize - 1)) + (1ULL << 40));
    eventInjectionHousekeeping(backend);
    backend.compute(costs.l1HandlerLogic);
    // No instruction skip: the access retries and now translates.
}

void
GuestHypervisor::handleVmcall(L1Backend &backend)
{
    const CostModel &costs = backend.costs();
    std::uint64_t nr = backend.l2Gpr(Gpr::Rax);
    auto it = hypercalls_.find(nr);
    std::uint64_t result = ~0ULL; // -ENOSYS flavour
    if (it != hypercalls_.end()) {
        result = it->second(backend.l2Gpr(Gpr::Rbx),
                            backend.l2Gpr(Gpr::Rcx));
    }
    backend.setL2Gpr(Gpr::Rax, result);
    skipInstruction(backend);
    eventInjectionHousekeeping(backend);
    backend.compute(costs.l1HandlerLogic);
}

} // namespace svtsim
