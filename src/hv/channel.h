/**
 * @file
 * SW SVt shared-memory command channel (paper Section 5.2) and the
 * Section 6.1 wait-mechanism/placement latency model.
 *
 * Each L2 vCPU gets two unidirectional command rings between the L0
 * hypervisor thread and the L1 SVt-thread, carrying CMD_VM_TRAP and
 * CMD_VM_RESUME commands plus the register payload (the prototype has
 * no cross-thread register access hardware, so GPRs and trap info
 * travel with the command).
 */

#ifndef SVTSIM_HV_CHANNEL_H
#define SVTSIM_HV_CHANNEL_H

#include <array>
#include <cstdint>
#include <deque>
#include <string>

#include "arch/machine.h"
#include "arch/regs.h"
#include "virt/exit_reason.h"

namespace svtsim {

/** How a waiter observes the channel (Section 6.1 study). */
enum class WaitMechanism
{
    /** Busy polling: lowest latency, steals sibling cycles on SMT. */
    Poll,
    /** monitor/mwait on the command cache line (what SW SVt uses). */
    Mwait,
    /** futex-style mutex: sleeps in the kernel after a short spin. */
    Mutex,
};

/** Relative placement of the two communicating threads. */
enum class Placement
{
    /** Same core, sibling SMT threads (SW SVt's configuration). */
    SmtSibling,
    /** Same NUMA node, different cores. */
    SameNode,
    /** Different NUMA nodes (order-of-magnitude worse latency). */
    CrossNode,
};

const char *waitMechanismName(WaitMechanism m);
const char *placementName(Placement p);

/**
 * Latency/interference model of one waiter observing one writer.
 */
struct ChannelModel
{
    WaitMechanism mechanism = WaitMechanism::Mwait;
    Placement placement = Placement::SmtSibling;

    /** Time from the writer's store to the waiter resuming useful
     *  execution. */
    Ticks wakeLatency(const CostModel &costs) const;

    /** Per-wait setup cost on the waiter side (monitor arm, futex
     *  spin window). */
    Ticks waiterSetup(const CostModel &costs) const;

    /**
     * Multiplicative slowdown imposed on the *working* thread while
     * the other thread waits (Section 6.1: polling on the SMT sibling
     * consumes execution cycles from the computing thread).
     */
    double workerSlowdown(const CostModel &costs) const;
};

/** Commands exchanged between L0 and the SVt-thread (Figure 5). */
enum class SwSvtCommand : std::uint8_t
{
    VmTrap,   ///< CMD_VM_TRAP: L0 -> SVt-thread
    VmResume, ///< CMD_VM_RESUME: SVt-thread -> L0
};

/**
 * Number of ringPayloadValue-sized values in one ChannelMessage:
 * numGprs GPRs + rip/rflags + the exit info block (reason, exit
 * qualification, guest-physical/linear addresses, instruction
 * length/info, interruption info). Producer and consumer must charge
 * the same amount — the payload crosses the shared lines once in each
 * direction regardless of which side touches it.
 */
constexpr int ringPayloadValues = numGprs + 2 + 7;

/** One command descriptor, including the register payload. */
struct ChannelMessage
{
    SwSvtCommand command = SwSvtCommand::VmTrap;
    ExitInfo info;
    std::array<std::uint64_t, numGprs> gprs{};
    std::uint64_t rip = 0;
    std::uint64_t rflags = 0;
    /** CMD_VM_RESUME only: the guest halted, do not re-enter it. */
    bool l2Halted = false;
};

/**
 * A unidirectional single-producer single-consumer command ring.
 *
 * The ring itself is deterministic data; post() charges the store/copy
 * costs, and the consumer charges wake latency via the ChannelModel.
 */
class CommandRing
{
  public:
    /**
     * @param machine Cost accounting.
     * @param name Instance name; prefixes this ring's PMU metrics
     *        (`<name>.posted`, `<name>.depth`, `<name>.wake_latency`,
     *        `<name>.full`) and its Chrome-trace counter track.
     * @param capacity Ring capacity; posting to a full ring models
     *        producer back-pressure (the producer waits for a slot,
     *        charging ringFullWait and bumping `<name>.full`).
     */
    CommandRing(Machine &machine, std::string name,
                std::size_t capacity = 8);

    const std::string &name() const { return name_; }

    /**
     * Post a message; charges ring-post plus payload-copy costs.
     * A full ring back-pressures the producer instead of panicking.
     *
     * @return False when a fault plan dropped the post (the doorbell
     *         store was lost and the message is not in the ring).
     */
    bool post(const ChannelMessage &msg);

    /** Non-destructively check for a pending message. */
    bool hasMessage() const { return !ring_.empty(); }

    /**
     * Pop the oldest message; charges the payload read cost.
     * @pre hasMessage().
     */
    ChannelMessage pop();

    /** Record the consumer-side wakeup latency (store -> waiter
     *  resumes) into this ring's mwait-wakeup histogram. */
    void recordWake(Ticks latency);

    /**
     * Model the consumer observing this ring: monitor/futex arm plus
     * the wake latency of @p channel, recorded into the wake
     * histogram. A fault plan can stretch the wake (delayed doorbell)
     * or insert a spurious wakeup, which pays a full arm+wake round
     * before re-arming.
     *
     * @pre hasMessage() — callers wait for the message first.
     */
    void consumeWake(const ChannelModel &channel);

    /** Discard all queued messages without charging time (watchdog
     *  fallback tears the protocol state down). */
    void clear();

    std::size_t depth() const { return ring_.size(); }
    std::uint64_t postedCount() const { return posted_; }
    std::uint64_t fullCount() const { return full_; }

  private:
    /** Update the depth gauge and mirror it as a trace counter. */
    void noteDepth();

    Machine &machine_;
    std::string name_;
    std::size_t capacity_;
    std::deque<ChannelMessage> ring_;
    std::uint64_t posted_ = 0;
    std::uint64_t full_ = 0;
    Counter postedMetric_;
    Counter fullMetric_;
    Gauge depthMetric_;
    LatencyHistogram wakeMetric_;
};

} // namespace svtsim

#endif // SVTSIM_HV_CHANNEL_H
