/**
 * @file
 * Interrupt vector assignments used across the stack.
 */

#ifndef SVTSIM_HV_VECTORS_H
#define SVTSIM_HV_VECTORS_H

#include <cstdint>

namespace svtsim {
namespace vec {

/** Physical NIC interrupt (delivered to L0). */
constexpr std::uint8_t hostNic = 0x50;
/** Physical/host disk completion interrupt (delivered to L0). */
constexpr std::uint8_t hostDisk = 0x51;

/** L1's virtio-net device interrupt (raised by L0's vhost). */
constexpr std::uint8_t l1VirtioNet = 0x60;
/** L1's virtio-blk device interrupt. */
constexpr std::uint8_t l1VirtioBlk = 0x61;
/** L1's local timer (TSC deadline armed by L1). */
constexpr std::uint8_t l1Timer = 0xee;
/** Inter-processor interrupt between L1 vCPUs. */
constexpr std::uint8_t l1Ipi = 0xfd;

/** L2's virtio-net device interrupt (raised by L1's vhost). */
constexpr std::uint8_t l2VirtioNet = 0x70;
/** L2's virtio-blk device interrupt. */
constexpr std::uint8_t l2VirtioBlk = 0x71;
/** L2's local timer. */
constexpr std::uint8_t l2Timer = 0xef;

/** Bare-metal timer vector (Native mode workloads). */
constexpr std::uint8_t hostTimer = 0xed;

} // namespace vec
} // namespace svtsim

#endif // SVTSIM_HV_VECTORS_H
