/**
 * @file
 * The interface guest code programs against.
 *
 * Guest workloads (and the guest hypervisor's own kernel code) are
 * written as C++ functions over GuestApi. Innocuous operations consume
 * time directly; sensitive operations (cpuid, MSR and MMIO accesses,
 * VMX instructions) are routed through the virtualization stack, which
 * models every trap the paper describes.
 */

#ifndef SVTSIM_HV_GUEST_API_H
#define SVTSIM_HV_GUEST_API_H

#include <cstdint>
#include <functional>

#include "arch/regs.h"
#include "sim/ticks.h"
#include "virt/ept.h"

namespace svtsim {

/**
 * Operations available to guest code at any virtualization level.
 *
 * The same workload program runs unmodified at L0 (native), L1 or L2 —
 * that is the paper's transparency requirement (Section 3.1) and the
 * basis of the cross-mode property tests.
 */
class GuestApi
{
  public:
    virtual ~GuestApi() = default;

    /** Execute plain (non-trapping) work costing @p t. */
    virtual void compute(Ticks t) = 0;

    /** Execute a cpuid instruction (always emulated when virtualized). */
    virtual CpuidResult cpuid(std::uint64_t leaf) = 0;

    /** Read a model-specific register. */
    virtual std::uint64_t rdmsr(std::uint32_t index) = 0;

    /** Write a model-specific register. */
    virtual void wrmsr(std::uint32_t index, std::uint64_t value) = 0;

    /** Read from memory-mapped I/O space. */
    virtual std::uint64_t mmioRead(Gpa addr, int size) = 0;

    /** Write to memory-mapped I/O space (virtio doorbells live here). */
    virtual void mmioWrite(Gpa addr, int size, std::uint64_t value) = 0;

    /** Port I/O write (`out`): always trapped when virtualized (the
     *  I/O bitmaps of the whole stack intercept it). */
    virtual void ioOut(std::uint16_t port, std::uint64_t value) = 0;

    /** Port I/O read (`in`). */
    virtual std::uint64_t ioIn(std::uint16_t port) = 0;

    /** Hypercall to the level's hypervisor. */
    virtual std::uint64_t vmcall(std::uint64_t nr, std::uint64_t a0,
                                 std::uint64_t a1) = 0;

    /**
     * Halt until an interrupt is delivered to this level, then handle
     * it. Returns the vector handled.
     */
    virtual int halt() = 0;

    /**
     * Poll for and deliver one pending interrupt without blocking.
     * @return The vector handled, or -1 if none was pending.
     */
    virtual int pollInterrupt() = 0;

    /** Register the handler for interrupt @p vector at this level. */
    virtual void setIrqHandler(std::uint8_t vector,
                               std::function<void()> handler) = 0;

    /** The vector the TSC-deadline timer fires at for this level. */
    virtual std::uint8_t timerVector() const = 0;

    /** Current simulated time. */
    virtual Ticks now() const = 0;

    /** Virtualization depth of this API (0 = bare metal). */
    virtual int level() const = 0;
};

/** A guest workload: code to run against a GuestApi. */
using GuestProgram = std::function<void(GuestApi &)>;

} // namespace svtsim

#endif // SVTSIM_HV_GUEST_API_H
