/**
 * @file
 * Hypervisor-side vCPU bookkeeping (the moral equivalent of KVM's
 * struct kvm_vcpu): in-memory register cache, synced lazily around VM
 * transitions, plus the vCPU's virtual interrupt controller.
 */

#ifndef SVTSIM_HV_VCPU_H
#define SVTSIM_HV_VCPU_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "arch/lapic.h"
#include "arch/machine.h"
#include "arch/regs.h"

namespace svtsim {

/**
 * Per-vCPU software state kept by a hypervisor for one of its guests.
 */
class Vcpu
{
  public:
    /**
     * @param machine The machine (for the virtual APIC's timer events).
     * @param name Diagnostic name, e.g. "l0.vcpu[l1]".
     */
    Vcpu(Machine &machine, std::string name);

    const std::string &name() const { return name_; }

    /** In-memory GPR cache (KVM's vcpu->arch.regs). */
    std::uint64_t gpr(Gpr reg) const
    {
        return gprs_[static_cast<std::size_t>(reg)];
    }

    void setGpr(Gpr reg, std::uint64_t v)
    {
        gprs_[static_cast<std::size_t>(reg)] = v;
    }

    /** Cached instruction pointer. */
    std::uint64_t rip = 0;
    /** Cached flags. */
    std::uint64_t rflags = 0x2;
    /** Whether the guest is halted waiting for an interrupt. */
    bool halted = false;

    /** Virtual local APIC presented to this vCPU. */
    Lapic &lapic() { return *lapic_; }

  private:
    std::string name_;
    std::array<std::uint64_t, numGprs> gprs_{};
    std::unique_ptr<Lapic> lapic_;
};

} // namespace svtsim

#endif // SVTSIM_HV_VCPU_H
