/**
 * @file
 * Private implementation types of VirtStack: the per-level GuestApi
 * implementations and the two L1Backend flavours. Included only by the
 * hv module's translation units.
 */

#ifndef SVTSIM_HV_VIRT_STACK_IMPL_H
#define SVTSIM_HV_VIRT_STACK_IMPL_H

#include "hv/guest_hypervisor.h"
#include "hv/virt_stack.h"

namespace svtsim {

/** Shared plumbing of the per-level APIs. */
class LevelApiBase : public GuestApi
{
  public:
    explicit LevelApiBase(VirtStack &stack) : stack_(stack) {}

    Ticks now() const override { return stack_.machine().now(); }

    void
    setIrqHandler(std::uint8_t vector,
                  std::function<void()> handler) override
    {
        stack_.setIrqHandler(level(), vector, std::move(handler));
    }

  protected:
    VirtStack &stack_;
};

/** Bare-metal execution (the paper's L0 bar). */
class NativeApi : public LevelApiBase
{
  public:
    NativeApi(VirtStack &stack, CpuidDb db)
        : LevelApiBase(stack), db_(std::move(db))
    {
    }

    int level() const override { return 0; }
    std::uint8_t timerVector() const override;
    void compute(Ticks t) override;
    CpuidResult cpuid(std::uint64_t leaf) override;
    std::uint64_t rdmsr(std::uint32_t index) override;
    void wrmsr(std::uint32_t index, std::uint64_t value) override;
    std::uint64_t mmioRead(Gpa addr, int size) override;
    void mmioWrite(Gpa addr, int size, std::uint64_t value) override;
    void ioOut(std::uint16_t port, std::uint64_t value) override;
    std::uint64_t ioIn(std::uint16_t port) override;
    std::uint64_t vmcall(std::uint64_t nr, std::uint64_t a0,
                         std::uint64_t a1) override;
    int halt() override;
    int pollInterrupt() override;

  private:
    CpuidDb db_;
    std::map<std::uint32_t, std::uint64_t> msrs_;
};

/**
 * Level-1 guest execution. Used as the top-level API in Single mode
 * and by L1-resident code (IRQ handlers, vhost backends) in the
 * nested modes.
 */
class L1Api : public LevelApiBase
{
  public:
    using LevelApiBase::LevelApiBase;

    int level() const override { return 1; }
    std::uint8_t timerVector() const override;
    void compute(Ticks t) override;
    CpuidResult cpuid(std::uint64_t leaf) override;
    std::uint64_t rdmsr(std::uint32_t index) override;
    void wrmsr(std::uint32_t index, std::uint64_t value) override;
    std::uint64_t mmioRead(Gpa addr, int size) override;
    void mmioWrite(Gpa addr, int size, std::uint64_t value) override;
    void ioOut(std::uint16_t port, std::uint64_t value) override;
    std::uint64_t ioIn(std::uint16_t port) override;
    std::uint64_t vmcall(std::uint64_t nr, std::uint64_t a0,
                         std::uint64_t a1) override;
    int halt() override;
    int pollInterrupt() override;

  private:
    /** Hardware context L1 currently executes on. */
    HwContext &ctx();
    /** One sensitive-instruction round at L1 grade. */
    std::uint64_t trap(ExitInfo info);
};

/** Level-2 (nested guest) execution: the workload's API. */
class L2Api : public LevelApiBase
{
  public:
    using LevelApiBase::LevelApiBase;

    int level() const override { return 2; }
    std::uint8_t timerVector() const override;
    void compute(Ticks t) override;
    CpuidResult cpuid(std::uint64_t leaf) override;
    std::uint64_t rdmsr(std::uint32_t index) override;
    void wrmsr(std::uint32_t index, std::uint64_t value) override;
    std::uint64_t mmioRead(Gpa addr, int size) override;
    void mmioWrite(Gpa addr, int size, std::uint64_t value) override;
    void ioOut(std::uint16_t port, std::uint64_t value) override;
    std::uint64_t ioIn(std::uint16_t port) override;
    std::uint64_t vmcall(std::uint64_t nr, std::uint64_t a0,
                         std::uint64_t a1) override;
    int halt() override;
    int pollInterrupt() override;

  private:
    HwContext &ctx() { return stack_.l2Context(); }
    /** Resolve an L2 guest-physical access through ept02, reflecting
     *  violations to L1 until it translates or misconfigures. */
    Ept::Result resolveGpa(Gpa addr, EptAccess access);
};

/**
 * L1Backend for the nested baseline and SW SVt: L2 registers live in
 * the in-memory vCPU cache L0 synced; VMCS accesses hit the shadow or
 * trap to L0 on the engine L1 currently runs on.
 */
class MemL1Backend : public L1Backend
{
  public:
    explicit MemL1Backend(VirtStack &stack) : stack_(stack) {}

    std::uint64_t vmcsRead(VmcsField field) override;
    void vmcsWrite(VmcsField field, std::uint64_t value) override;
    std::uint64_t l2Gpr(Gpr reg) override;
    void setL2Gpr(Gpr reg, std::uint64_t value) override;
    void compute(Ticks t) override;
    GuestApi &l1Api() override { return *stack_.l1Api_; }
    const CostModel &costs() const override
    {
        return stack_.machine_.costs();
    }

  private:
    VirtStack &stack_;
};

/**
 * L1Backend for multiplexed HW SVt (Section 3.1: more virtualization
 * levels than hardware contexts): L2 is spilled to the vCPU structs
 * while L1 runs, so register access falls back to memory; VMCS
 * accesses hit the shadow or take SVt-grade trap rounds.
 */
class MuxL1Backend : public L1Backend
{
  public:
    explicit MuxL1Backend(VirtStack &stack) : stack_(stack) {}

    std::uint64_t vmcsRead(VmcsField field) override;
    void vmcsWrite(VmcsField field, std::uint64_t value) override;
    std::uint64_t l2Gpr(Gpr reg) override;
    void setL2Gpr(Gpr reg, std::uint64_t value) override;
    void compute(Ticks t) override;
    GuestApi &l1Api() override { return *stack_.l1Api_; }
    const CostModel &costs() const override
    {
        return stack_.machine_.costs();
    }

  private:
    VirtStack &stack_;
};

/**
 * L1Backend for HW SVt: L2 registers are reached with ctxtld/ctxtst
 * into the L2 hardware context; shadowable VMCS fields are satisfied
 * from vmcs12; everything else is an SVt-grade trap round.
 */
class CtxtL1Backend : public L1Backend
{
  public:
    explicit CtxtL1Backend(VirtStack &stack) : stack_(stack) {}

    std::uint64_t vmcsRead(VmcsField field) override;
    void vmcsWrite(VmcsField field, std::uint64_t value) override;
    std::uint64_t l2Gpr(Gpr reg) override;
    void setL2Gpr(Gpr reg, std::uint64_t value) override;
    void compute(Ticks t) override;
    GuestApi &l1Api() override { return *stack_.l1Api_; }
    const CostModel &costs() const override
    {
        return stack_.machine_.costs();
    }

  private:
    VirtStack &stack_;
};

} // namespace svtsim

#endif // SVTSIM_HV_VIRT_STACK_IMPL_H
