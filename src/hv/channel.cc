#include "hv/channel.h"

#include "sim/compiler.h"
#include "sim/fault.h"
#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

const char *
waitMechanismName(WaitMechanism m)
{
    switch (m) {
      case WaitMechanism::Poll: return "poll";
      case WaitMechanism::Mwait: return "mwait";
      case WaitMechanism::Mutex: return "mutex";
    }
    return "?";
}

const char *
placementName(Placement p)
{
    switch (p) {
      case Placement::SmtSibling: return "smt-sibling";
      case Placement::SameNode: return "same-node";
      case Placement::CrossNode: return "cross-node";
    }
    return "?";
}

Ticks
ChannelModel::wakeLatency(const CostModel &costs) const
{
    switch (mechanism) {
      case WaitMechanism::Poll:
        switch (placement) {
          case Placement::SmtSibling: return costs.pollLatencySmt;
          case Placement::SameNode: return costs.pollLatencyCore;
          case Placement::CrossNode: return costs.pollLatencyNuma;
        }
        break;
      case WaitMechanism::Mwait:
        switch (placement) {
          case Placement::SmtSibling: return costs.mwaitWakeSmt;
          case Placement::SameNode: return costs.mwaitWakeCore;
          case Placement::CrossNode: return costs.mwaitWakeNuma;
        }
        break;
      case WaitMechanism::Mutex:
        // The futex wake path (syscall + scheduler) dominates; the
        // cacheline transfer differences come on top.
        switch (placement) {
          case Placement::SmtSibling: return costs.mutexWake;
          case Placement::SameNode:
            return costs.mutexWake + costs.pollLatencyCore;
          case Placement::CrossNode:
            return costs.mutexWake + costs.pollLatencyNuma;
        }
        break;
    }
    panic("ChannelModel: invalid mechanism/placement");
}

Ticks
ChannelModel::waiterSetup(const CostModel &costs) const
{
    switch (mechanism) {
      case WaitMechanism::Poll:
        return 0;
      case WaitMechanism::Mwait:
        return costs.monitorSetup;
      case WaitMechanism::Mutex:
        // Mutexes actively poll for a brief time before sleeping
        // (Section 6.1), then pay the syscall on the sleep side.
        return costs.mutexSpinWindow;
    }
    panic("ChannelModel: invalid mechanism");
}

double
ChannelModel::workerSlowdown(const CostModel &costs) const
{
    // Only a busy-polling SMT sibling contends for execution slots;
    // mwait and mutex waiters release them (Section 6.1 findings).
    if (mechanism == WaitMechanism::Poll &&
        placement == Placement::SmtSibling) {
        return 1.0 + costs.pollSmtSlowdown;
    }
    return 1.0;
}

CommandRing::CommandRing(Machine &machine, std::string name,
                         std::size_t capacity)
    : machine_(machine), name_(std::move(name)), capacity_(capacity)
{
    if (capacity == 0)
        fatal("CommandRing requires a non-zero capacity");
    MetricsRegistry &reg = machine_.metrics();
    postedMetric_ =
        reg.counter(MetricScope::Svt, "channel", name_ + ".posted");
    fullMetric_ =
        reg.counter(MetricScope::Svt, "channel", name_ + ".full");
    depthMetric_ =
        reg.gauge(MetricScope::Svt, "channel", name_ + ".depth");
    wakeMetric_ = reg.histogram(MetricScope::Svt, "channel",
                                name_ + ".wake_latency");
}

void
CommandRing::noteDepth()
{
    auto depth = static_cast<std::int64_t>(ring_.size());
    depthMetric_.set(depth);
    TraceSink *sink = machine_.traceSink();
    if (SVTSIM_UNLIKELY(sink && sink->enabled()))
        sink->counter(name_ + ".depth", depth);
}

bool
CommandRing::post(const ChannelMessage &msg)
{
    const CostModel &costs = machine_.costs();
    if (ring_.size() >= capacity_) {
        // Producer back-pressure: the consumer stalled and the ring
        // filled, so the producer waits for a free slot (the SW SVt
        // protocol is request/response, so in correct operation depth
        // never exceeds one and this path only triggers under fault
        // plans or protocol bugs — worth a counter, not a panic).
        ++full_;
        fullMetric_.inc();
        SVTSIM_TRACE_INSTANT(machine_.traceSink(),
                             TraceCategory::Channel, "ring.full");
        // Charge the wait; the message still lands (the consumer will
        // drain it in order), so no command is ever silently lost.
        machine_.consume(costs.ringFullWait);
    }
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Channel,
                         msg.command == SwSvtCommand::VmTrap
                             ? "ring.post.vm_trap"
                             : "ring.post.vm_resume");
    // Descriptor store plus the register/trap-info payload copy.
    machine_.consume(costs.ringPost +
                     costs.ringPayloadValue * ringPayloadValues);
    FaultInjector *faults = machine_.events().faultInjector();
    if (SVTSIM_UNLIKELY(faults != nullptr) &&
        faults->fires(FaultSite::RingPostDrop)) {
        // The doorbell store is lost: the producer paid the costs but
        // the waiter never observes the command.
        SVTSIM_TRACE_INSTANT(machine_.traceSink(),
                             TraceCategory::Channel,
                             "ring.post.dropped");
        return false;
    }
    ring_.push_back(msg);
    ++posted_;
    postedMetric_.inc();
    noteDepth();
    return true;
}

ChannelMessage
CommandRing::pop()
{
    if (ring_.empty())
        panic("CommandRing::pop on empty ring");
    // Reading the full payload out of the shared lines; symmetric
    // with the copy post() charged on the producer side.
    machine_.consume(machine_.costs().ringPayloadValue *
                     ringPayloadValues);
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Channel,
                         "ring.pop");
    ChannelMessage msg = ring_.front();
    ring_.pop_front();
    noteDepth();
    return msg;
}

void
CommandRing::recordWake(Ticks latency)
{
    wakeMetric_.record(latency);
}

void
CommandRing::consumeWake(const ChannelModel &channel)
{
    const CostModel &costs = machine_.costs();
    FaultInjector *faults = machine_.events().faultInjector();
    if (SVTSIM_UNLIKELY(faults != nullptr) &&
        faults->fires(FaultSite::RingSpuriousWake)) {
        // Spurious mwait wakeup: the waiter resumes, finds no
        // command, and pays a full re-arm + wake round.
        SVTSIM_TRACE_INSTANT(machine_.traceSink(),
                             TraceCategory::Channel,
                             "ring.wake.spurious");
        machine_.consume(channel.waiterSetup(costs) +
                         channel.wakeLatency(costs));
    }
    Ticks wake = channel.wakeLatency(costs);
    if (faults)
        wake += faults->delay(FaultSite::RingDoorbellDelay);
    machine_.consume(channel.waiterSetup(costs) + wake);
    recordWake(wake);
}

void
CommandRing::clear()
{
    ring_.clear();
    noteDepth();
}

} // namespace svtsim
