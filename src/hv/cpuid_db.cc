#include "hv/cpuid_db.h"

namespace svtsim {

CpuidDb
CpuidDb::host()
{
    CpuidDb db;
    // Leaf 0: max leaf + "GenuineIntel"-style vendor tag (encoded).
    db.set(0, CpuidResult{0x16, 0x756e6547, 0x6c65746e, 0x49656e69});
    // Leaf 1: family/model/stepping of a Haswell-EP part + features.
    db.set(1, CpuidResult{0x306f2, 0x100800,
                          cpuid_feature::vmx | cpuid_feature::x2apic |
                              cpuid_feature::tscDeadline,
                          0xbfebfbff});
    // Leaf 0x16: base/max/bus frequency in MHz (2.4 GHz part).
    db.set(0x16, CpuidResult{2400, 3200, 100, 0});
    return db;
}

CpuidDb
CpuidDb::guestView(bool keep_vmx) const
{
    CpuidDb view = *this;
    auto leaf1 = view.query(1);
    leaf1.ecx |= cpuid_feature::hypervisorPresent;
    if (!keep_vmx)
        leaf1.ecx &= ~cpuid_feature::vmx;
    view.set(1, leaf1);
    return view;
}

CpuidResult
CpuidDb::query(std::uint64_t leaf) const
{
    auto it = leaves_.find(leaf);
    return it == leaves_.end() ? CpuidResult{} : it->second;
}

void
CpuidDb::set(std::uint64_t leaf, CpuidResult value)
{
    leaves_[leaf] = value;
}

} // namespace svtsim
