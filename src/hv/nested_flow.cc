/**
 * @file
 * The nested virtualization trap machinery: Algorithm 1 of the paper,
 * in its baseline, SW SVt and HW SVt variants, plus the L1-grade
 * single-level trap rounds and the L1Api/L2Api/backend code.
 */

#include <algorithm>

#include "hv/vectors.h"
#include "hv/virt_stack.h"
#include "hv/virt_stack_impl.h"
#include "sim/fault.h"
#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

namespace {

/** VMCS fields carrying guest-physical addresses (transform surcharge). */
int
countAddressFields()
{
    int n = 0;
    for (std::size_t i = 0; i < numVmcsFields; ++i)
        if (vmcsFieldIsAddress(static_cast<VmcsField>(i)))
            ++n;
    return n;
}

} // namespace

// ----------------------------------------------------- L2 <-> L0 boundary

void
VirtStack::exitFromL2(const ExitInfo &info)
{
    if (!l2Running_) {
        panic("exitFromL2 while L2 is not running (reason=%s "
              "inL1Window=%d pumping=%d)",
              exitReasonName(info.reason), inL1Window_ ? 1 : 0,
              pumping_ ? 1 : 0);
    }
    const CostModel &c = machine_.costs();
    TimeScope t(machine_, "stage.switch_l2_l0");
    if (config_.mode == VirtMode::HwSvt) {
        // SVt: squash + fetch retarget; exit info lands in the VMCS
        // with a few field stores, registers stay in context-2.
        svt_->vmTrap();
        vmcs02_->recordExit(info);
        machine_.consume(3 * c.vmcsFieldCopy);
        vmxExitMetric_.inc();
        vmxExitReasonMetric_[static_cast<std::size_t>(info.reason)]
            .inc();
    } else {
        engines_[0]->vmexit(info);
        // Hypervisor thunk: spill L2's GPRs into L0's vcpu struct.
        machine_.consume(c.thunkRegSave * c.thunkRegs);
        HwContext &ctx = engines_[0]->context();
        for (int i = 0; i < numGprs; ++i) {
            vcpuL2InL0_->setGpr(static_cast<Gpr>(i),
                                ctx.readGpr(static_cast<Gpr>(i)));
        }
    }
    l2Running_ = false;
}

void
VirtStack::resumeL2()
{
    simAssert(!l2Running_, "resumeL2 while L2 is already running");
    const CostModel &c = machine_.costs();
    TimeScope t(machine_, "stage.switch_l2_l0");
    VmxEngine &e0 = *engines_[0];
    if (e0.currentVmcs() != vmcs02_.get())
        e0.vmptrld(vmcs02_.get());
    if (config_.mode == VirtMode::HwSvt) {
        if (svtMultiplexed_)
            svtSwitchOwner(2);
        svt_->loadFromVmcs(*vmcs02_);
        svt_->vmResume();
    } else {
        // Thunk: reload L2's GPRs, then the entry microcode.
        HwContext &ctx = e0.context();
        for (int i = 0; i < numGprs; ++i) {
            ctx.writeGpr(static_cast<Gpr>(i),
                         vcpuL2InL0_->gpr(static_cast<Gpr>(i)));
        }
        machine_.consume(c.thunkRegRestore * c.thunkRegs);
        e0.vmentry(false);
    }
    l2Running_ = true;
}

// ----------------------------------------------------------- transforms

Ticks
VirtStack::transformPassCost() const
{
    static const int addr_fields = countAddressFields();
    const CostModel &c = machine_.costs();
    return c.vmcsXformFixed +
           static_cast<Ticks>(numVmcsFields) * c.vmcsFieldCopy +
           addr_fields * c.vmcsFieldXlate;
}

void
VirtStack::transformVmcs02ToVmcs12()
{
    TimeScope t(machine_, "stage.transform");
    machine_.consume(transformPassCost());
    // Reflect L2's architectural state and the exit information into
    // the shadow VMCS (vmcs01' as L1 sees it).
    for (std::size_t i = 0; i < numVmcsFields; ++i) {
        auto f = static_cast<VmcsField>(i);
        auto cls = vmcsFieldClass(f);
        if (cls == VmcsFieldClass::GuestState ||
            cls == VmcsFieldClass::ExitInfo) {
            vmcs12_->write(f, vmcs02_->read(f));
        }
    }
    transform0212Metric_.inc();
}

void
VirtStack::transformVmcs12ToVmcs02()
{
    const CostModel &c = machine_.costs();
    TimeScope t(machine_, "stage.transform");
    machine_.consume(transformPassCost());
    // Apply L1's updates back to the hardware VMCS, translating the
    // address-bearing fields into L0 terms (the EPT pointer stays
    // L0's merged ept02).
    for (std::size_t i = 0; i < numVmcsFields; ++i) {
        auto f = static_cast<VmcsField>(i);
        if (vmcsFieldClass(f) == VmcsFieldClass::GuestState)
            vmcs02_->write(f, vmcs12_->read(f));
    }
    vmcs02_->write(VmcsField::EntryIntrInfo,
                   vmcs12_->read(VmcsField::EntryIntrInfo));
    vmcs02_->write(VmcsField::TscOffset,
                   vmcs12_->read(VmcsField::TscOffset));
    // Register context reflected back into L0's vcpu struct (not
    // needed with dedicated SVt contexts, where registers never left
    // the hardware).
    if (config_.mode != VirtMode::HwSvt || svtMultiplexed_) {
        for (int i = 0; i < numGprs; ++i) {
            vcpuL2InL0_->setGpr(static_cast<Gpr>(i),
                                vcpuL2InL1_->gpr(static_cast<Gpr>(i)));
        }
        machine_.consume(2 * numGprs * c.memAccess);
    }
    if (svtMultiplexed_) {
        vcpuL2InL0_->rip = vmcs12_->read(VmcsField::GuestRip);
        vcpuL2InL0_->rflags = vmcs12_->read(VmcsField::GuestRflags);
    }
    transform1202Metric_.inc();
}

// ----------------------------------------------- the nested exit round

namespace {

/** Exit reasons L0 whitelists for the Section 3.1 direct-reflect
 *  extension: their handling touches no L0-owned state. */
bool
directReflectable(ExitReason reason)
{
    switch (reason) {
      case ExitReason::Cpuid:
      case ExitReason::Rdmsr:
      case ExitReason::Vmcall:
      case ExitReason::Pause:
        return true;
      default:
        return false;
    }
}

} // namespace

void
VirtStack::nestedExitFromL2(const ExitInfo &info)
{
    simAssert(isNestedMode(), "nestedExitFromL2 outside nested mode");
    machine_.pushScope(std::string("exit.") +
                       exitReasonName(info.reason));
    ReasonMetrics &rm =
        l2ExitMetric_[static_cast<std::size_t>(info.reason)];
    rm.count.inc();
    // Histogram sample = elapsed time while the exit.<reason> scope is
    // open, so the sum of all samples mirrors the trace layer's Exit
    // span durations exactly (the conservation cross-check).
    const Ticks round_start = machine_.now();
    const CostModel &c = machine_.costs();

    if (config_.mode == VirtMode::HwSvt && config_.svtDirectReflect &&
        !svtMultiplexed_ && directReflectable(info.reason)) {
        // Section 3.1 extension: the trap bypasses L0 entirely. The
        // hardware deposits the exit information into the shadow VMCS
        // and retargets fetch to the guest hypervisor's context; only
        // the L1 handler's own trapped operations visit L0.
        simAssert(l2Running_, "direct reflect while L2 not running");
        {
            TimeScope t(machine_, "stage.switch_l2_l0");
            vmcs12_->recordExit(info);
            machine_.consume(3 * c.vmcsFieldCopy + c.svtFieldLoad);
            svt_->loadFromVmcs(*vmcs01_);
            svt_->directReflect(1);
            l2Running_ = false;
        }
        ++reflected_;
        directReflectMetric_.inc();
        bool resume;
        {
            TimeScope l1(machine_, "stage.l1_handler");
            l1ViaSvt_ = true;
            resume = guestHv_->handleNestedExit(info, *ctxtBackend_);
            l1ViaSvt_ = false;
        }
        simAssert(resume, "direct-reflected exit must resume");
        {
            // L1's VMRESUME is also served in hardware: fetch
            // retargets straight back to L2's context.
            TimeScope t(machine_, "stage.switch_l2_l0");
            svt_->loadFromVmcs(*vmcs02_);
            svt_->vmResume();
            l2Running_ = true;
        }
        rm.latency.record(machine_.now() - round_start);
        machine_.popScope();
        return;
    }

    exitFromL2(info);

    bool handled_in_l0 = false;
    if (info.reason == ExitReason::EptViolation) {
        // L0 first tries to satisfy the fault from its shadow-EPT
        // merge of ept12 and ept01 (the Turtles multi-dimensional
        // paging scheme): only faults L1 has not mapped are reflected.
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch + c.nestedExitCheck);
        EptAccess acc = (info.qualification & 1) ? EptAccess::Write
                                                 : EptAccess::Read;
        auto r12 = guestHv_->ept().translate(info.guestPhysAddr, acc);
        Gpa page = info.guestPhysAddr & ~(pageSize - 1);
        if (r12.kind == Ept::Result::Kind::Ok) {
            machine_.consume(c.vmcsFieldXlate +
                             r12.levelsWalked * c.memAccess);
            ept02_->map(page, r12.hpa & ~(pageSize - 1));
            ept02FillMetric_.inc();
            handled_in_l0 = true;
        } else if (r12.kind == Ept::Result::Kind::Misconfig) {
            machine_.consume(c.vmcsFieldXlate);
            ept02_->markMmio(page);
            ept02MmioMetric_.inc();
            handled_in_l0 = true;
        }
    }

    bool resume = true;
    if (!handled_in_l0) {
        ++reflected_;
        reflectMetric_.inc();
        transformVmcs02ToVmcs12();
        resume = reflectToL1(info);
    }
    if (resume)
        resumeL2();
    rm.latency.record(machine_.now() - round_start);
    machine_.popScope();
}

void
VirtStack::postL1Housekeeping(Ticks cost)
{
    simAssert(cost >= 0, "postL1Housekeeping negative cost");
    l1Housekeeping_ += cost;
}

void
VirtStack::serviceL1Housekeeping(bool overlapped)
{
    if (l1Housekeeping_ <= 0)
        return;
    Ticks work = l1Housekeeping_;
    l1Housekeeping_ = 0;
    if (overlapped) {
        // SW SVt: the L1 vCPU runs its housekeeping on its own
        // hardware thread while the SVt-thread handles the L2 exit
        // (forward progress guaranteed by the Section 5.3 machinery).
        // The overlap is bounded by the exit-handling window; only
        // the excess spills onto the measured path.
        hkOverlappedMetric_.inc();
        Ticks spill = work - machine_.costs().swSvtOverlapWindow;
        if (spill > 0) {
            TimeScope t(machine_, "stage.l1_housekeeping");
            machine_.consume(spill);
        }
        return;
    }
    // Baseline / HW SVt: one effective thread of execution, so the
    // pending L1 kernel work is serviced before the L2 exit handling
    // proceeds.
    TimeScope t(machine_, "stage.l1_housekeeping");
    machine_.consume(work);
    hkSerialMetric_.inc();
}

bool
VirtStack::reflectToL1(const ExitInfo &info)
{
    switch (config_.mode) {
      case VirtMode::Nested:
        serviceL1Housekeeping(false);
        return reflectBaseline(info);
      case VirtMode::SwSvt:
        maybeRepromoteSvt();
        if (svtDegraded_) {
            // Watchdog fallback: until the quiet period ends, exits
            // take the conventional nested path (one effective
            // thread, so housekeeping is serviced serially).
            serviceL1Housekeeping(false);
            return reflectBaseline(info);
        }
        serviceL1Housekeeping(true);
        return reflectSwSvt(info);
      case VirtMode::HwSvt:
        serviceL1Housekeeping(false);
        return svtMultiplexed_ ? reflectHwSvtMultiplexed(info)
                               : reflectHwSvt(info);
      default:
        panic("reflectToL1 in mode %s", virtModeName(config_.mode));
    }
}

bool
VirtStack::reflectBaseline(const ExitInfo &info)
{
    const CostModel &c = machine_.costs();
    VmxEngine &e0 = *engines_[0];
    {
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch + c.nestedExitCheck);
        e0.vmptrld(vmcs01_.get());
        // Lazily sync the trap context into the L1-visible state:
        // vmread-grade accesses of GPRs and exit-info values.
        machine_.consume(c.lazySyncValue * c.lazySyncValues);
        for (int i = 0; i < numGprs; ++i) {
            vcpuL2InL1_->setGpr(static_cast<Gpr>(i),
                                vcpuL2InL0_->gpr(static_cast<Gpr>(i)));
        }
        vmcs12_->recordExit(info);
        machine_.consume(c.nestedStateMachine);
    }
    {
        TimeScope sw(machine_, "stage.switch_l0_l1");
        e0.vmentry(false);
        machine_.consume(c.thunkRegRestore * c.thunkRegs);
    }
    bool resume;
    {
        TimeScope l1(machine_, "stage.l1_handler");
        l1Engine_ = &e0;
        l1Vmcs_ = vmcs01_.get();
        resume = guestHv_->handleNestedExit(info, *memBackend_);
        l1Engine_ = nullptr;
        l1Vmcs_ = nullptr;
    }
    {
        // L1 issues VMRESUME (or halts): traps back into L0.
        TimeScope sw(machine_, "stage.switch_l0_l1");
        machine_.consume(c.thunkRegSave * c.thunkRegs);
        e0.vmexit(ExitInfo{.reason = resume ? ExitReason::Vmresume
                                            : ExitReason::Hlt});
    }
    {
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch);
        if (resume)
            e0.vmptrld(vmcs02_.get());
    }
    if (resume)
        transformVmcs12ToVmcs02();
    return resume;
}

bool
VirtStack::reflectSwSvt(const ExitInfo &info)
{
    const CostModel &c = machine_.costs();
    ChannelMessage trap;
    {
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch + c.nestedExitCheck);
        vmcs12_->recordExit(info);
        machine_.consume(c.nestedStateMachine);
        // CMD_VM_TRAP with the register payload (the prototype has no
        // cross-thread register file access).
        trap.command = SwSvtCommand::VmTrap;
        trap.info = info;
        for (int i = 0; i < numGprs; ++i)
            trap.gprs[static_cast<std::size_t>(i)] =
                vcpuL2InL0_->gpr(static_cast<Gpr>(i));
        ringToSvt_->post(trap);
    }
    serviceSvtThreadPreemption();
    if (svtDegraded_) {
        // The watchdog tore the handshake down mid-round (Section 5.3
        // stall); complete this exit on the conventional path.
        return reflectBaseline(info);
    }
    if (!svtAwaitRing(*ringToSvt_, trap)) {
        svtFallback("CMD_VM_TRAP lost");
        return reflectBaseline(info);
    }
    ChannelMessage msg;
    {
        // The SVt-thread observes the command (monitor/mwait wake)
        // and reads the payload; the ring pop consumes time and must
        // stay inside the channel stage or its ticks go unattributed.
        TimeScope ch(machine_, "stage.channel");
        ringToSvt_->consumeWake(config_.channel);
        msg = ringToSvt_->pop();
    }
    for (int i = 0; i < numGprs; ++i) {
        vcpuL2InL1_->setGpr(static_cast<Gpr>(i),
                            msg.gprs[static_cast<std::size_t>(i)]);
    }
    bool resume;
    ChannelMessage resp;
    {
        TimeScope l1(machine_, "stage.l1_handler");
        l1Engine_ = engines_[1].get();
        l1Vmcs_ = vmcs01s_.get();
        l1Slowdown_ = config_.channel.workerSlowdown(c);
        resume = guestHv_->handleNestedExit(msg.info, *memBackend_);
        l1Slowdown_ = 1.0;
        l1Engine_ = nullptr;
        l1Vmcs_ = nullptr;
        // CMD_VM_RESUME with the updated register payload.
        resp.command = SwSvtCommand::VmResume;
        resp.info = msg.info;
        resp.l2Halted = !resume;
        for (int i = 0; i < numGprs; ++i)
            resp.gprs[static_cast<std::size_t>(i)] =
                vcpuL2InL1_->gpr(static_cast<Gpr>(i));
        ringFromSvt_->post(resp);
    }
    if (!svtAwaitRing(*ringFromSvt_, resp)) {
        // The response is gone beyond retries, but the L1 handler did
        // run and vcpuL2InL1_ holds the updated registers: degrade and
        // sync them the conventional (vmread-grade) way.
        svtFallback("CMD_VM_RESUME lost");
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.lazySyncValue * c.lazySyncValues);
        for (int i = 0; i < numGprs; ++i) {
            vcpuL2InL0_->setGpr(static_cast<Gpr>(i),
                                vcpuL2InL1_->gpr(static_cast<Gpr>(i)));
        }
        if (resume)
            transformVmcs12ToVmcs02();
        return resume;
    }
    {
        // L0 observes the response and reads the payload back.
        TimeScope ch(machine_, "stage.channel");
        ringFromSvt_->consumeWake(config_.channel);
        resp = ringFromSvt_->pop();
    }
    for (int i = 0; i < numGprs; ++i) {
        vcpuL2InL0_->setGpr(static_cast<Gpr>(i),
                            resp.gprs[static_cast<std::size_t>(i)]);
    }
    if (resume)
        transformVmcs12ToVmcs02();
    return resume;
}

bool
VirtStack::reflectHwSvt(const ExitInfo &info)
{
    const CostModel &c = machine_.costs();
    VmxEngine &e0 = *engines_[0];
    {
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch + c.nestedExitCheck);
        e0.vmptrld(vmcs01_.get());
        svt_->loadFromVmcs(*vmcs01_);
        // Exit information lands in the L1-visible memory; registers
        // need no copying at all (they sit in context-2).
        vmcs12_->recordExit(info);
        machine_.consume(10 * c.vmcsFieldCopy);
        machine_.consume(c.nestedStateMachine);
    }
    {
        TimeScope sw(machine_, "stage.switch_l0_l1");
        svt_->vmResume();
    }
    bool resume;
    {
        TimeScope l1(machine_, "stage.l1_handler");
        l1ViaSvt_ = true;
        resume = guestHv_->handleNestedExit(info, *ctxtBackend_);
        l1ViaSvt_ = false;
    }
    {
        // L1's VMRESUME traps: a thread stall/resume pair.
        TimeScope sw(machine_, "stage.switch_l0_l1");
        svt_->vmTrap();
    }
    {
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch);
        if (resume)
            e0.vmptrld(vmcs02_.get());
    }
    if (resume)
        transformVmcs12ToVmcs02();
    return resume;
}

void
VirtStack::svtSwitchOwner(int level)
{
    simAssert(level == 1 || level == 2, "svtSwitchOwner level");
    if (!svtMultiplexed_ || svtCtx1Owner_ == level)
        return;
    const CostModel &c = machine_.costs();
    HwContext &ctx = core_.context(1);
    // Spill the displaced level's architectural state into its vCPU
    // struct, reload the incoming level's — the software context
    // switch SVt was designed to avoid, reintroduced by the capacity
    // limit (Section 3.1).
    Vcpu &out = (svtCtx1Owner_ == 2) ? *vcpuL2InL0_ : *vcpuL1_;
    for (int i = 0; i < numGprs; ++i) {
        out.setGpr(static_cast<Gpr>(i),
                   ctx.readGpr(static_cast<Gpr>(i)));
    }
    out.rip = ctx.rip;
    out.rflags = ctx.rflags;
    machine_.consume(c.thunkRegSave * c.thunkRegs);
    Vcpu &in = (level == 2) ? *vcpuL2InL0_ : *vcpuL1_;
    for (int i = 0; i < numGprs; ++i) {
        ctx.writeGpr(static_cast<Gpr>(i),
                     in.gpr(static_cast<Gpr>(i)));
    }
    ctx.rip = in.rip;
    ctx.rflags = in.rflags;
    machine_.consume(c.thunkRegRestore * c.thunkRegs);
    ctxMultiplexMetric_.inc();
    svtCtx1Owner_ = level;
}

bool
VirtStack::reflectHwSvtMultiplexed(const ExitInfo &info)
{
    const CostModel &c = machine_.costs();
    VmxEngine &e0 = *engines_[0];
    HwContext &ctx1 = core_.context(1);
    {
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch + c.nestedExitCheck);
        e0.vmptrld(vmcs01_.get());
        svt_->loadFromVmcs(*vmcs01_);
        // Lazy sync of L2's trap context: the reads are cheap ctxtld
        // accesses, but the values must land in memory because L2 is
        // about to be displaced from the shared context.
        machine_.consume(numGprs * (c.ctxtRegAccess + c.memAccess) +
                         10 * c.vmcsFieldCopy);
        for (int i = 0; i < numGprs; ++i) {
            vcpuL2InL1_->setGpr(static_cast<Gpr>(i),
                                ctx1.readGpr(static_cast<Gpr>(i)));
        }
        vmcs12_->recordExit(info);
        vmcs12_->write(VmcsField::GuestRip, ctx1.rip);
        vmcs12_->write(VmcsField::GuestRflags, ctx1.rflags);
        machine_.consume(c.nestedStateMachine);
    }
    {
        TimeScope sw(machine_, "stage.switch_l0_l1");
        svtSwitchOwner(1);
        svt_->vmResume();
    }
    bool resume;
    {
        TimeScope l1(machine_, "stage.l1_handler");
        l1ViaSvt_ = true;
        resume = guestHv_->handleNestedExit(info, *muxBackend_);
        l1ViaSvt_ = false;
    }
    {
        TimeScope sw(machine_, "stage.switch_l0_l1");
        svt_->vmTrap();
    }
    {
        TimeScope l0(machine_, "stage.l0_handler");
        machine_.consume(c.handlerDispatch);
        if (resume)
            e0.vmptrld(vmcs02_.get());
    }
    if (resume)
        transformVmcs12ToVmcs02();
    return resume;
}

void
VirtStack::serviceSvtThreadPreemption()
{
    if (pendingPreemption_ <= 0)
        return;
    Ticks duration = pendingPreemption_;
    pendingPreemption_ = 0;
    const CostModel &c = machine_.costs();
    const SvtWatchdogConfig &wd = config_.svtWatchdog;
    preemptionMetric_.inc();

    // Section 5.3 scenario: a kernel thread in the sibling preempts
    // the SVt-thread and IPIs the L1 vCPU, spinning for the ack. The
    // IPI is a real cross-context delivery — it has latency, and a
    // fault plan can delay or drop it.
    core_.lapic(1).sendIpi(vcpuL1_->lapic(), vec::l1Ipi);

    if (!config_.svtBlockedFix) {
        if (!wd.enabled) {
            throw DeadlockError(
                "SW SVt interrupt deadlock (paper Section 5.3): the "
                "SVt-thread was preempted by a kernel thread that "
                "IPIs the L1 vCPU and waits, while L0 waits for "
                "CMD_VM_RESUME and never runs the L1 vCPU. Enable "
                "StackConfig::svtBlockedFix (or svtWatchdog for "
                "graceful degradation).");
        }
        // No SVT_BLOCKED fix, but the heartbeat watchdog notices the
        // stalled handshake: degrade, reschedule the L1 vCPU on the
        // now-free context (draining the IPI) and carry on.
        TimeScope t(machine_, "stage.svt_watchdog");
        machine_.consume(wd.timeout);
        svtFallback("section 5.3 preemption stall");
        vcpuL1_->lapic().raise(vec::l1Ipi);
        drainL1Ipis();
        machine_.consume(duration);
        return;
    }

    // The fix: while waiting for the response, L0 checks for pending
    // interrupts to the L1 vCPU and injects a synthetic SVT_BLOCKED
    // trap so the vCPU enables interrupts and drains them, then
    // yields straight back. First wait for the IPI to land (delivery
    // latency; a fault plan can delay or drop it).
    Ticks deadline =
        machine_.now() + (wd.enabled ? wd.timeout : c.ipiLatency * 16);
    while (!vcpuL1_->lapic().hasPending() &&
           machine_.now() < deadline) {
        // idleUntil may return early under a cluster AdvanceGate, so
        // never break on its return — re-check the loop condition
        // (pending IPI / deadline) every time around.
        Ticks next = machine_.events().nextEventTime();
        machine_.idleUntil(std::min(next, deadline));
    }
    if (!vcpuL1_->lapic().hasPending()) {
        // The IPI never arrived: the spinner waits for an ack that
        // cannot come, so even the SVT_BLOCKED fix cannot make
        // progress (the fix assumes interrupt delivery works, and the
        // fault violated that assumption).
        if (!wd.enabled) {
            throw DeadlockError(
                "SW SVt interrupt deadlock (paper Section 5.3, IPI "
                "lost): the preempting kernel thread's IPI to the L1 "
                "vCPU was never delivered, so the SVT_BLOCKED fix has "
                "nothing to drain and the spinner waits forever. "
                "Enable StackConfig::svtWatchdog to degrade "
                "gracefully.");
        }
        svtFallback("section 5.3 IPI lost");
        // Watchdog recovery: L0 re-raises the vector directly (it
        // knows the kernel thread is spinning for the ack).
        vcpuL1_->lapic().raise(vec::l1Ipi);
        drainL1Ipis();
        machine_.consume(duration);
        return;
    }

    svtBlockedMetric_.inc();
    machine_.consume(c.injectPrepare);
    drainL1Ipis();
    // With the IPI acked, the preempting thread finishes its work and
    // the SVt-thread gets the CPU back.
    machine_.consume(duration);
}

void
VirtStack::drainL1Ipis()
{
    const CostModel &c = machine_.costs();
    enterL1Window();
    int v;
    while ((v = vcpuL1_->lapic().ack()) >= 0) {
        machine_.consume(c.interruptDeliver);
        runIrqHandler(1, v);
        machine_.consume(c.eoiWrite);
    }
    leaveL1Window();
}

// -------------------------------------------- SW SVt heartbeat watchdog

bool
VirtStack::svtAwaitRing(CommandRing &ring, const ChannelMessage &repost)
{
    if (ring.hasMessage())
        return true;
    const SvtWatchdogConfig &wd = config_.svtWatchdog;
    if (!wd.enabled) {
        throw DeadlockError(
            "SW SVt handshake hang: no command ever arrived on " +
            ring.name() +
            " (a lost doorbell with no watchdog stalls the "
            "L0<->SVt-thread handshake forever, the Section 5.3 "
            "failure mode); enable StackConfig::svtWatchdog to "
            "degrade gracefully");
    }
    TimeScope t(machine_, "stage.svt_watchdog");
    for (int attempt = 1; attempt <= wd.maxRetries; ++attempt) {
        // The heartbeat deadline passes; retry by re-ringing the
        // doorbell, with linear backoff between attempts.
        machine_.consume(wd.timeout +
                         static_cast<Ticks>(attempt - 1) * wd.backoff);
        svtWatchdogRetryMetric_.inc();
        SVTSIM_TRACE_INSTANT(machine_.traceSink(),
                             TraceCategory::Channel,
                             "svt.watchdog.retry");
        if (ring.post(repost) && ring.hasMessage())
            return true;
    }
    return false;
}

void
VirtStack::svtFallback(const char *why)
{
    // Tear the handshake down: discard ring state, reroute exits to
    // the conventional nested trap path and start the quiet period.
    ringToSvt_->clear();
    ringFromSvt_->clear();
    svtDegraded_ = true;
    svtRepromoteAt_ = machine_.now() + config_.svtWatchdog.quietPeriod;
    svtFallbackMetric_.inc();
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Svt,
                         "svt.fallback");
    inform(std::string("SW SVt watchdog: degrading to the "
                       "conventional nested path (") +
           why + ")");
}

void
VirtStack::maybeRepromoteSvt()
{
    if (!svtDegraded_ || machine_.now() < svtRepromoteAt_)
        return;
    // The quiet period elapsed without further trouble: re-arm the
    // SW SVt handshake.
    svtDegraded_ = false;
    svtRepromoteMetric_.inc();
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Svt,
                         "svt.repromote");
}

// ------------------------------------------ L1-grade single-level traps

std::uint64_t
VirtStack::l1TrapRound(VmxEngine &engine, const ExitInfo &info)
{
    const CostModel &c = machine_.costs();
    HwContext &ctx = engine.context();
    const Ticks round_start = machine_.now();
    engine.vmexit(info);
    machine_.consume(c.thunkRegSave * c.thunkRegs);
    for (int i = 0; i < numGprs; ++i) {
        vcpuL1_->setGpr(static_cast<Gpr>(i),
                        ctx.readGpr(static_cast<Gpr>(i)));
    }
    std::uint64_t result = handleL0Exit(info, &engine);
    engine.vmentry(false);
    for (int i = 0; i < numGprs; ++i) {
        ctx.writeGpr(static_cast<Gpr>(i),
                     vcpuL1_->gpr(static_cast<Gpr>(i)));
    }
    machine_.consume(c.thunkRegRestore * c.thunkRegs);
    l0ExitMetric_[static_cast<std::size_t>(info.reason)].latency.record(
        machine_.now() - round_start);
    return result;
}

std::uint64_t
VirtStack::svtTrapRound(const ExitInfo &info)
{
    const CostModel &c = machine_.costs();
    HwContext &ctx1 = core_.context(1);
    const Ticks round_start = machine_.now();
    // Squash + retarget to the visor context; no state movement.
    svt_->vmTrap();
    // L0 pulls the registers it needs with ctxtld (is_vm==0, lvl 1 ->
    // SVt_vm, i.e. L1's context).
    machine_.consume(4 * c.ctxtRegAccess);
    for (int i = 0; i < numGprs; ++i) {
        vcpuL1_->setGpr(static_cast<Gpr>(i),
                        ctx1.readGpr(static_cast<Gpr>(i)));
    }
    std::uint64_t result = handleL0Exit(info, nullptr);
    machine_.consume(4 * c.ctxtRegAccess);
    for (int i = 0; i < numGprs; ++i) {
        ctx1.writeGpr(static_cast<Gpr>(i),
                      vcpuL1_->gpr(static_cast<Gpr>(i)));
    }
    svt_->vmResume();
    l0ExitMetric_[static_cast<std::size_t>(info.reason)].latency.record(
        machine_.now() - round_start);
    return result;
}

std::uint64_t
VirtStack::handleL0Exit(const ExitInfo &info, VmxEngine *engine)
{
    const CostModel &c = machine_.costs();
    machine_.consume(c.handlerDispatch);
    l0ExitMetric_[static_cast<std::size_t>(info.reason)].count.inc();

    auto advance_rip = [&](std::uint64_t len) {
        if (engine) {
            std::uint64_t rip = engine->vmread(VmcsField::GuestRip);
            engine->vmwrite(VmcsField::GuestRip, rip + len);
        } else {
            std::uint64_t rip = 0;
            svt_->ctxtld(1, SvtSpecialReg::Rip, rip);
            svt_->ctxtst(1, SvtSpecialReg::Rip, rip + len);
        }
    };

    switch (info.reason) {
      case ExitReason::Cpuid: {
        machine_.consume(c.emulCpuid);
        CpuidResult r = l0CpuidView_.query(vcpuL1_->gpr(Gpr::Rax));
        vcpuL1_->setGpr(Gpr::Rax, r.eax);
        vcpuL1_->setGpr(Gpr::Rbx, r.ebx);
        vcpuL1_->setGpr(Gpr::Rcx, r.ecx);
        vcpuL1_->setGpr(Gpr::Rdx, r.edx);
        advance_rip(2);
        return r.eax;
      }
      case ExitReason::Rdmsr: {
        machine_.consume(c.emulMsr);
        auto index =
            static_cast<std::uint32_t>(vcpuL1_->gpr(Gpr::Rcx));
        std::uint64_t value = 0;
        auto it = l0Msrs_.find(index);
        if (it != l0Msrs_.end())
            value = it->second;
        vcpuL1_->setGpr(Gpr::Rax, value & 0xffffffff);
        vcpuL1_->setGpr(Gpr::Rdx, value >> 32);
        advance_rip(2);
        return value;
      }
      case ExitReason::Wrmsr: {
        machine_.consume(c.emulMsr);
        auto index =
            static_cast<std::uint32_t>(vcpuL1_->gpr(Gpr::Rcx));
        std::uint64_t value = (vcpuL1_->gpr(Gpr::Rdx) << 32) |
                              (vcpuL1_->gpr(Gpr::Rax) & 0xffffffff);
        if (index == msr::ia32TscDeadline) {
            if (value == 0) {
                vcpuL1_->lapic().cancelTscDeadline();
            } else {
                vcpuL1_->lapic().armTscDeadline(
                    static_cast<Ticks>(value), vec::l1Timer);
            }
        } else {
            l0Msrs_[index] = value;
        }
        advance_rip(2);
        return 0;
      }
      case ExitReason::Vmread: {
        machine_.consume(c.emulVmcsAccess + c.vmcsFieldCopy);
        std::uint64_t value =
            vmcs12_->read(static_cast<VmcsField>(info.field));
        vcpuL1_->setGpr(Gpr::Rax, value);
        advance_rip(3);
        return value;
      }
      case ExitReason::Vmwrite: {
        machine_.consume(c.emulVmcsAccess + c.vmcsFieldCopy);
        vmcs12_->write(static_cast<VmcsField>(info.field), info.value);
        advance_rip(3);
        return 0;
      }
      case ExitReason::EptMisconfig: {
        machine_.consume(c.mmioDecode);
        const MmioRegion *region = nullptr;
        for (const auto &r : l0Mmio_) {
            if (info.guestPhysAddr >= r.base &&
                info.guestPhysAddr < r.base + r.size) {
                region = &r;
                break;
            }
        }
        if (!region) {
            panic("L1 MMIO access to unmapped gpa %#llx",
                  static_cast<unsigned long long>(info.guestPhysAddr));
        }
        bool is_write = info.qualification & 1;
        int size = static_cast<int>(info.qualification >> 1 & 0xf);
        std::uint64_t result = region->handler(
            info.guestPhysAddr, size, info.value, is_write);
        if (!is_write)
            vcpuL1_->setGpr(Gpr::Rax, result);
        advance_rip(3);
        return result;
      }
      case ExitReason::Vmcall: {
        std::uint64_t nr = vcpuL1_->gpr(Gpr::Rax);
        std::uint64_t result = ~0ULL;
        auto it = l0Hypercalls_.find(nr);
        if (it != l0Hypercalls_.end()) {
            result = it->second(vcpuL1_->gpr(Gpr::Rbx),
                                vcpuL1_->gpr(Gpr::Rcx));
        }
        vcpuL1_->setGpr(Gpr::Rax, result);
        advance_rip(3);
        return result;
      }
      case ExitReason::IoInstruction: {
        machine_.consume(c.emulMsr);
        auto port =
            static_cast<std::uint16_t>(info.qualification >> 16);
        bool is_write = info.qualification & 1;
        std::uint64_t result = ~0ULL;
        auto it = l0IoPorts_.find(port);
        if (it != l0IoPorts_.end())
            result = it->second(port, info.value, is_write);
        if (!is_write)
            vcpuL1_->setGpr(Gpr::Rax, result);
        advance_rip(2);
        return result;
      }
      case ExitReason::Invept:
        // Emulated INVEPT tears down the shadow EPT: translations
        // re-merge lazily from ept12 on the next faults.
        machine_.consume(c.emulVmcsAccess + c.mmioDecode);
        ept02_->clear();
        advance_rip(3);
        return 0;
      case ExitReason::Hlt:
      case ExitReason::ExternalInterrupt:
        return 0;
      default:
        panic("handleL0Exit: unhandled L1 exit %s",
              exitReasonName(info.reason));
    }
}

// ----------------------------------------------------------- L1 windows

void
VirtStack::enterL1Window()
{
    simAssert(!inL1Window_, "enterL1Window: window already open");
    simAssert(!l2Running_, "enterL1Window while L2 runs");
    const CostModel &c = machine_.costs();
    VmxEngine &e0 = *engines_[0];
    if (e0.currentVmcs() != vmcs01_.get())
        e0.vmptrld(vmcs01_.get());
    machine_.consume(c.injectPrepare);
    if (config_.mode == VirtMode::HwSvt) {
        if (svtMultiplexed_)
            svtSwitchOwner(1);
        svt_->loadFromVmcs(*vmcs01_);
        svt_->vmResume();
        l1ViaSvt_ = true;
        l1Engine_ = nullptr;
    } else {
        e0.vmwrite(VmcsField::EntryIntrInfo, 1);
        e0.vmentry(false);
        machine_.consume(c.thunkRegRestore * c.thunkRegs);
        l1Engine_ = &e0;
    }
    l1Vmcs_ = vmcs01_.get();
    inL1Window_ = true;
}

void
VirtStack::leaveL1Window()
{
    simAssert(inL1Window_, "leaveL1Window without a window");
    const CostModel &c = machine_.costs();
    if (config_.mode == VirtMode::HwSvt) {
        svt_->vmTrap();
    } else {
        machine_.consume(c.thunkRegSave * c.thunkRegs);
        engines_[0]->vmexit(ExitInfo{.reason = ExitReason::Hlt});
        machine_.consume(c.handlerDispatch);
    }
    inL1Window_ = false;
    l1Engine_ = nullptr;
    l1ViaSvt_ = false;
}

int
VirtStack::maybeInjectAndResumeL2(bool l2_was_running)
{
    simAssert(inL1Window_, "maybeInjectAndResumeL2 without L1 window");
    const CostModel &c = machine_.costs();
    if (!vcpuL2InL1_->lapic().hasPending()) {
        leaveL1Window();
        if (l2_was_running && !l2Running_)
            resumeL2();
        return 0;
    }

    int v = vcpuL2InL1_->lapic().ack();
    machine_.consume(c.injectPrepare);
    // L1 fills the VM-entry interruption field of vmcs01' and updates
    // the interrupt-window / pending-event controls around it. None
    // of these fields are shadowable, so in the baseline each access
    // traps to L0.
    L1Backend &backend =
        (config_.mode == VirtMode::HwSvt)
            ? (svtMultiplexed_
                   ? static_cast<L1Backend &>(*muxBackend_)
                   : static_cast<L1Backend &>(*ctxtBackend_))
            : static_cast<L1Backend &>(*memBackend_);
    for (int i = 0; i < c.l1InjectExtraVmcsTraps; ++i)
        backend.vmcsWrite(VmcsField::EntryIntrInfo, 0);
    backend.vmcsWrite(VmcsField::EntryIntrInfo,
                      static_cast<std::uint64_t>(v) | 0x80000000ULL);
    // L1 resumes L2: trap to L0 (Algorithm 1 line 12), then the
    // return transform and the real entry.
    if (config_.mode == VirtMode::HwSvt) {
        svt_->vmTrap();
    } else {
        machine_.consume(c.thunkRegSave * c.thunkRegs);
        engines_[0]->vmexit(ExitInfo{.reason = ExitReason::Vmresume});
    }
    inL1Window_ = false;
    l1Engine_ = nullptr;
    l1ViaSvt_ = false;
    machine_.consume(c.handlerDispatch);
    transformVmcs12ToVmcs02();
    resumeL2();
    machine_.consume(c.interruptDeliver);
    l2DeliveredVector_ = v;
    runIrqHandler(2, v);
    if (config_.postedInterrupts) {
        // x2APIC virtualization (exit-elision rung 1): the EOI write
        // is satisfied from the virtual-APIC page even on the
        // injection path, so the reflected Wrmsr round below never
        // happens.
        machine_.consume(c.virtApicEoi);
        elidedEoiMetric_.inc();
        return 1;
    }
    // L2 signals EOI through the x2APIC MSR. APIC virtualization is
    // not available to nested guests, so this is a full reflected
    // exit (part of why interrupt-heavy I/O suffers so much in the
    // baseline, Section 6.2).
    machine_.consume(c.eoiWrite);
    HwContext &l2ctx = l2Context();
    l2ctx.writeGpr(Gpr::Rcx, msr::ia32X2apicEoi);
    l2ctx.writeGpr(Gpr::Rax, 0);
    l2ctx.writeGpr(Gpr::Rdx, 0);
    nestedExitFromL2(ExitInfo{.reason = ExitReason::Wrmsr,
                              .instrLength = 2});
    return 1;
}

// ----------------------------------------------------------------- L1Api

std::uint8_t
L1Api::timerVector() const
{
    return vec::l1Timer;
}

HwContext &
L1Api::ctx()
{
    if (stack_.l1ViaSvt_)
        return stack_.core_.context(1);
    simAssert(stack_.l1Engine_ != nullptr,
              "L1 code executing without an execution window");
    return stack_.l1Engine_->context();
}

std::uint64_t
L1Api::trap(ExitInfo info)
{
    if (stack_.l1ViaSvt_)
        return stack_.svtTrapRound(info);
    simAssert(stack_.l1Engine_ != nullptr,
              "L1 trap without an execution window");
    return stack_.l1TrapRound(*stack_.l1Engine_, info);
}

void
L1Api::compute(Ticks t)
{
    if (stack_.config_.mode == VirtMode::Single) {
        // Chunked so device interrupts stay responsive.
        const Ticks slice = usec(10);
        while (t > 0) {
            Ticks step = std::min(t, slice);
            stack_.machine_.consume(step);
            t -= step;
            stack_.pumpInterrupts();
        }
        return;
    }
    stack_.machine_.consume(
        static_cast<Ticks>(static_cast<double>(t) *
                           stack_.l1Slowdown_));
}

CpuidResult
L1Api::cpuid(std::uint64_t leaf)
{
    if (stack_.config_.mode == VirtMode::Single)
        stack_.pumpInterrupts();
    const CostModel &c = stack_.machine_.costs();
    stack_.machine_.consume(c.cpuidExec);
    ctx().writeGpr(Gpr::Rax, leaf);
    trap(ExitInfo{.reason = ExitReason::Cpuid, .instrLength = 2});
    return CpuidResult{ctx().readGpr(Gpr::Rax), ctx().readGpr(Gpr::Rbx),
                       ctx().readGpr(Gpr::Rcx),
                       ctx().readGpr(Gpr::Rdx)};
}

std::uint64_t
L1Api::rdmsr(std::uint32_t index)
{
    if (stack_.config_.mode == VirtMode::Single)
        stack_.pumpInterrupts();
    ctx().writeGpr(Gpr::Rcx, index);
    trap(ExitInfo{.reason = ExitReason::Rdmsr, .instrLength = 2});
    return (ctx().readGpr(Gpr::Rdx) << 32) |
           (ctx().readGpr(Gpr::Rax) & 0xffffffff);
}

void
L1Api::wrmsr(std::uint32_t index, std::uint64_t value)
{
    if (stack_.config_.mode == VirtMode::Single)
        stack_.pumpInterrupts();
    ctx().writeGpr(Gpr::Rcx, index);
    ctx().writeGpr(Gpr::Rax, value & 0xffffffff);
    ctx().writeGpr(Gpr::Rdx, value >> 32);
    trap(ExitInfo{.reason = ExitReason::Wrmsr, .instrLength = 2,
                  .value = value});
}

std::uint64_t
L1Api::mmioRead(Gpa addr, int size)
{
    if (stack_.config_.mode == VirtMode::Single)
        stack_.pumpInterrupts();
    auto r = stack_.ept01_->translate(addr, EptAccess::Read);
    if (r.kind == Ept::Result::Kind::Misconfig) {
        ExitInfo info;
        info.reason = ExitReason::EptMisconfig;
        info.qualification = static_cast<std::uint64_t>(size) << 1;
        info.guestPhysAddr = addr;
        info.instrLength = 3;
        return trap(info);
    }
    panic("L1 MMIO read of unregistered gpa %#llx",
          static_cast<unsigned long long>(addr));
}

void
L1Api::mmioWrite(Gpa addr, int size, std::uint64_t value)
{
    if (stack_.config_.mode == VirtMode::Single)
        stack_.pumpInterrupts();
    auto r = stack_.ept01_->translate(addr, EptAccess::Write);
    if (r.kind == Ept::Result::Kind::Misconfig) {
        ExitInfo info;
        info.reason = ExitReason::EptMisconfig;
        info.qualification = 1 | static_cast<std::uint64_t>(size) << 1;
        info.guestPhysAddr = addr;
        info.instrLength = 3;
        info.value = value;
        trap(info);
        return;
    }
    panic("L1 MMIO write to unregistered gpa %#llx",
          static_cast<unsigned long long>(addr));
}

void
L1Api::ioOut(std::uint16_t port, std::uint64_t value)
{
    if (stack_.config_.mode == VirtMode::Single)
        stack_.pumpInterrupts();
    ExitInfo info;
    info.reason = ExitReason::IoInstruction;
    info.qualification = (static_cast<std::uint64_t>(port) << 16) |
                         (4ULL << 1) | 1;
    info.value = value;
    info.instrLength = 2;
    trap(info);
}

std::uint64_t
L1Api::ioIn(std::uint16_t port)
{
    if (stack_.config_.mode == VirtMode::Single)
        stack_.pumpInterrupts();
    ExitInfo info;
    info.reason = ExitReason::IoInstruction;
    info.qualification = (static_cast<std::uint64_t>(port) << 16) |
                         (4ULL << 1);
    info.instrLength = 2;
    return trap(info);
}

std::uint64_t
L1Api::vmcall(std::uint64_t nr, std::uint64_t a0, std::uint64_t a1)
{
    ctx().writeGpr(Gpr::Rax, nr);
    ctx().writeGpr(Gpr::Rbx, a0);
    ctx().writeGpr(Gpr::Rcx, a1);
    return trap(
        ExitInfo{.reason = ExitReason::Vmcall, .instrLength = 3});
}

int
L1Api::halt()
{
    simAssert(stack_.config_.mode == VirtMode::Single,
              "L1Api::halt outside Single mode");
    const CostModel &c = stack_.machine_.costs();
    VmxEngine &e0 = *stack_.engines_[0];
    stack_.machine_.consume(c.thunkRegSave * c.thunkRegs);
    e0.vmexit(ExitInfo{.reason = ExitReason::Hlt, .instrLength = 1});
    stack_.singleGuestRunning_ = false;
    stack_.machine_.consume(c.handlerDispatch);
    for (;;) {
        stack_.l2DeliveredVector_ = -1;
        stack_.pumpInterrupts();
        if (stack_.l2DeliveredVector_ >= 0)
            return stack_.l2DeliveredVector_;
        Ticks next = stack_.machine_.events().nextEventTime();
        if (next == maxTick)
            panic("L1Api::halt with no pending events (workload "
                  "deadlock)");
        stack_.machine_.idleUntil(next);
    }
}

int
L1Api::pollInterrupt()
{
    stack_.l2DeliveredVector_ = -1;
    stack_.pumpInterrupts();
    return stack_.l2DeliveredVector_;
}

// ----------------------------------------------------------------- L2Api

std::uint8_t
L2Api::timerVector() const
{
    return vec::l2Timer;
}

void
L2Api::compute(Ticks t)
{
    simAssert(stack_.isNestedMode(), "L2Api outside nested mode");
    // Chunked so device interrupts stay responsive during long
    // computations (frame decode, request processing).
    const Ticks slice = usec(10);
    while (t > 0) {
        Ticks step = std::min(t, slice);
        {
            TimeScope s(stack_.machine_, "stage.l2");
            stack_.machine_.consume(step);
        }
        t -= step;
        stack_.pumpInterrupts();
    }
}

CpuidResult
L2Api::cpuid(std::uint64_t leaf)
{
    simAssert(stack_.isNestedMode(), "L2Api outside nested mode");
    stack_.pumpInterrupts();
    const CostModel &c = stack_.machine_.costs();
    {
        TimeScope s(stack_.machine_, "stage.l2");
        stack_.machine_.consume(c.cpuidExec);
        ctx().writeGpr(Gpr::Rax, leaf);
    }
    stack_.nestedExitFromL2(
        ExitInfo{.reason = ExitReason::Cpuid, .instrLength = 2});
    return CpuidResult{ctx().readGpr(Gpr::Rax), ctx().readGpr(Gpr::Rbx),
                       ctx().readGpr(Gpr::Rcx),
                       ctx().readGpr(Gpr::Rdx)};
}

std::uint64_t
L2Api::rdmsr(std::uint32_t index)
{
    stack_.pumpInterrupts();
    if (stack_.guestHv_->msrPassthrough(index)) {
        // The combined MSR bitmaps permit direct access: no exit.
        stack_.machine_.consume(stack_.machine_.costs().msrNative);
        return ctx().rdmsr(index);
    }
    {
        TimeScope s(stack_.machine_, "stage.l2");
        stack_.machine_.consume(stack_.machine_.costs().regOp);
        ctx().writeGpr(Gpr::Rcx, index);
    }
    stack_.nestedExitFromL2(
        ExitInfo{.reason = ExitReason::Rdmsr, .instrLength = 2});
    return (ctx().readGpr(Gpr::Rdx) << 32) |
           (ctx().readGpr(Gpr::Rax) & 0xffffffff);
}

void
L2Api::wrmsr(std::uint32_t index, std::uint64_t value)
{
    stack_.pumpInterrupts();
    if (stack_.guestHv_->msrPassthrough(index)) {
        stack_.machine_.consume(stack_.machine_.costs().msrNative);
        ctx().wrmsr(index, value);
        return;
    }
    {
        TimeScope s(stack_.machine_, "stage.l2");
        stack_.machine_.consume(3 * stack_.machine_.costs().regOp);
        ctx().writeGpr(Gpr::Rcx, index);
        ctx().writeGpr(Gpr::Rax, value & 0xffffffff);
        ctx().writeGpr(Gpr::Rdx, value >> 32);
    }
    stack_.nestedExitFromL2(ExitInfo{.reason = ExitReason::Wrmsr,
                                     .instrLength = 2,
                                     .value = value});
}

Ept::Result
L2Api::resolveGpa(Gpa addr, EptAccess access)
{
    for (int tries = 0; tries < 4; ++tries) {
        auto r = stack_.ept02_->translate(addr, access);
        if (r.kind != Ept::Result::Kind::Violation)
            return r;
        ExitInfo info;
        info.reason = ExitReason::EptViolation;
        info.qualification = (access == EptAccess::Write) ? 1 : 0;
        info.guestPhysAddr = addr;
        stack_.nestedExitFromL2(info);
    }
    panic("L2 gpa %#llx failed to resolve",
          static_cast<unsigned long long>(addr));
}

std::uint64_t
L2Api::mmioRead(Gpa addr, int size)
{
    stack_.pumpInterrupts();
    auto r = resolveGpa(addr, EptAccess::Read);
    if (r.kind == Ept::Result::Kind::Ok) {
        stack_.machine_.consume(stack_.machine_.costs().memAccess);
        return 0;
    }
    ExitInfo info;
    info.reason = ExitReason::EptMisconfig;
    info.qualification = static_cast<std::uint64_t>(size) << 1;
    info.guestPhysAddr = addr;
    info.instrLength = 3;
    stack_.nestedExitFromL2(info);
    return ctx().readGpr(Gpr::Rax);
}

void
L2Api::mmioWrite(Gpa addr, int size, std::uint64_t value)
{
    stack_.pumpInterrupts();
    auto r = resolveGpa(addr, EptAccess::Write);
    if (r.kind == Ept::Result::Kind::Ok) {
        stack_.machine_.consume(stack_.machine_.costs().memAccess);
        return;
    }
    ExitInfo info;
    info.reason = ExitReason::EptMisconfig;
    info.qualification = 1 | static_cast<std::uint64_t>(size) << 1;
    info.guestPhysAddr = addr;
    info.instrLength = 3;
    info.value = value;
    stack_.nestedExitFromL2(info);
}

void
L2Api::ioOut(std::uint16_t port, std::uint64_t value)
{
    stack_.pumpInterrupts();
    {
        TimeScope s(stack_.machine_, "stage.l2");
        stack_.machine_.consume(stack_.machine_.costs().regOp);
    }
    ExitInfo info;
    info.reason = ExitReason::IoInstruction;
    info.qualification = (static_cast<std::uint64_t>(port) << 16) |
                         (4ULL << 1) | 1;
    info.value = value;
    info.instrLength = 2;
    stack_.nestedExitFromL2(info);
}

std::uint64_t
L2Api::ioIn(std::uint16_t port)
{
    stack_.pumpInterrupts();
    {
        TimeScope s(stack_.machine_, "stage.l2");
        stack_.machine_.consume(stack_.machine_.costs().regOp);
    }
    ExitInfo info;
    info.reason = ExitReason::IoInstruction;
    info.qualification = (static_cast<std::uint64_t>(port) << 16) |
                         (4ULL << 1);
    info.instrLength = 2;
    stack_.nestedExitFromL2(info);
    return ctx().readGpr(Gpr::Rax);
}

std::uint64_t
L2Api::vmcall(std::uint64_t nr, std::uint64_t a0, std::uint64_t a1)
{
    stack_.pumpInterrupts();
    {
        TimeScope s(stack_.machine_, "stage.l2");
        stack_.machine_.consume(3 * stack_.machine_.costs().regOp);
        ctx().writeGpr(Gpr::Rax, nr);
        ctx().writeGpr(Gpr::Rbx, a0);
        ctx().writeGpr(Gpr::Rcx, a1);
    }
    stack_.nestedExitFromL2(
        ExitInfo{.reason = ExitReason::Vmcall, .instrLength = 3});
    return ctx().readGpr(Gpr::Rax);
}

int
L2Api::halt()
{
    stack_.l2DeliveredVector_ = -1;
    stack_.pumpInterrupts();
    if (stack_.l2DeliveredVector_ >= 0)
        return stack_.l2DeliveredVector_;
    {
        TimeScope s(stack_.machine_, "stage.l2");
        stack_.machine_.consume(stack_.machine_.costs().regOp);
    }
    stack_.nestedExitFromL2(
        ExitInfo{.reason = ExitReason::Hlt, .instrLength = 1});
    for (;;) {
        stack_.pumpInterrupts();
        if (stack_.l2DeliveredVector_ >= 0)
            return stack_.l2DeliveredVector_;
        Ticks next = stack_.machine_.events().nextEventTime();
        if (next == maxTick)
            panic("L2Api::halt with no pending events (workload "
                  "deadlock)");
        stack_.machine_.idleUntil(next);
    }
}

int
L2Api::pollInterrupt()
{
    stack_.l2DeliveredVector_ = -1;
    stack_.pumpInterrupts();
    return stack_.l2DeliveredVector_;
}

// ------------------------------------------------------------- backends

std::uint64_t
MemL1Backend::vmcsRead(VmcsField field)
{
    VmxEngine *e = stack_.l1Engine_;
    simAssert(e != nullptr && e->inGuest(),
              "L1 vmread outside an execution window");
    std::uint64_t value = 0;
    if (e->guestVmread(field, value))
        return value;
    ExitInfo info;
    info.reason = ExitReason::Vmread;
    info.field = static_cast<std::uint64_t>(field);
    info.instrLength = 3;
    return stack_.l1TrapRound(*e, info);
}

void
MemL1Backend::vmcsWrite(VmcsField field, std::uint64_t value)
{
    VmxEngine *e = stack_.l1Engine_;
    simAssert(e != nullptr && e->inGuest(),
              "L1 vmwrite outside an execution window");
    if (e->guestVmwrite(field, value))
        return;
    ExitInfo info;
    info.reason = ExitReason::Vmwrite;
    info.field = static_cast<std::uint64_t>(field);
    info.value = value;
    info.instrLength = 3;
    stack_.l1TrapRound(*e, info);
}

std::uint64_t
MemL1Backend::l2Gpr(Gpr reg)
{
    stack_.machine_.consume(costs().memAccess);
    return stack_.vcpuL2InL1_->gpr(reg);
}

void
MemL1Backend::setL2Gpr(Gpr reg, std::uint64_t value)
{
    stack_.machine_.consume(costs().memAccess);
    stack_.vcpuL2InL1_->setGpr(reg, value);
}

void
MemL1Backend::compute(Ticks t)
{
    stack_.machine_.consume(static_cast<Ticks>(
        static_cast<double>(t) * stack_.l1Slowdown_));
}

std::uint64_t
MuxL1Backend::vmcsRead(VmcsField field)
{
    const CostModel &c = costs();
    if (stack_.config_.hwVmcsShadowing &&
        vmcsFieldIsShadowable(field)) {
        stack_.machine_.consume(c.vmShadowAccess);
        return stack_.vmcs12_->read(field);
    }
    ExitInfo info;
    info.reason = ExitReason::Vmread;
    info.field = static_cast<std::uint64_t>(field);
    return stack_.svtTrapRound(info);
}

void
MuxL1Backend::vmcsWrite(VmcsField field, std::uint64_t value)
{
    const CostModel &c = costs();
    if (stack_.config_.hwVmcsShadowing &&
        vmcsFieldIsShadowable(field)) {
        stack_.machine_.consume(c.vmShadowAccess);
        stack_.vmcs12_->write(field, value);
        return;
    }
    ExitInfo info;
    info.reason = ExitReason::Vmwrite;
    info.field = static_cast<std::uint64_t>(field);
    info.value = value;
    stack_.svtTrapRound(info);
}

std::uint64_t
MuxL1Backend::l2Gpr(Gpr reg)
{
    // L2 has been displaced from the shared context: its registers
    // live in the in-memory vCPU struct.
    stack_.machine_.consume(costs().memAccess);
    return stack_.vcpuL2InL1_->gpr(reg);
}

void
MuxL1Backend::setL2Gpr(Gpr reg, std::uint64_t value)
{
    stack_.machine_.consume(costs().memAccess);
    stack_.vcpuL2InL1_->setGpr(reg, value);
}

void
MuxL1Backend::compute(Ticks t)
{
    stack_.machine_.consume(t);
}

std::uint64_t
CtxtL1Backend::vmcsRead(VmcsField field)
{
    const CostModel &c = costs();
    if (field == VmcsField::GuestRip ||
        field == VmcsField::GuestRflags) {
        std::uint64_t value = 0;
        auto reg = (field == VmcsField::GuestRip) ? SvtSpecialReg::Rip
                                                  : SvtSpecialReg::Rflags;
        auto a = stack_.svt_->ctxtld(1, reg, value);
        simAssert(a == SvtUnit::Access::Ok, "ctxtld trap unexpected");
        return value;
    }
    if (stack_.config_.hwVmcsShadowing &&
        vmcsFieldIsShadowable(field)) {
        stack_.machine_.consume(c.vmShadowAccess);
        return stack_.vmcs12_->read(field);
    }
    ExitInfo info;
    info.reason = ExitReason::Vmread;
    info.field = static_cast<std::uint64_t>(field);
    return stack_.svtTrapRound(info);
}

void
CtxtL1Backend::vmcsWrite(VmcsField field, std::uint64_t value)
{
    const CostModel &c = costs();
    if (field == VmcsField::GuestRip ||
        field == VmcsField::GuestRflags) {
        auto reg = (field == VmcsField::GuestRip) ? SvtSpecialReg::Rip
                                                  : SvtSpecialReg::Rflags;
        auto a = stack_.svt_->ctxtst(1, reg, value);
        simAssert(a == SvtUnit::Access::Ok, "ctxtst trap unexpected");
        stack_.vmcs12_->write(field, value);
        return;
    }
    if (stack_.config_.hwVmcsShadowing &&
        vmcsFieldIsShadowable(field)) {
        stack_.machine_.consume(c.vmShadowAccess);
        stack_.vmcs12_->write(field, value);
        return;
    }
    ExitInfo info;
    info.reason = ExitReason::Vmwrite;
    info.field = static_cast<std::uint64_t>(field);
    info.value = value;
    stack_.svtTrapRound(info);
}

std::uint64_t
CtxtL1Backend::l2Gpr(Gpr reg)
{
    std::uint64_t value = 0;
    auto a = stack_.svt_->ctxtld(1, reg, value);
    simAssert(a == SvtUnit::Access::Ok, "ctxtld trap unexpected");
    return value;
}

void
CtxtL1Backend::setL2Gpr(Gpr reg, std::uint64_t value)
{
    auto a = stack_.svt_->ctxtst(1, reg, value);
    simAssert(a == SvtUnit::Access::Ok, "ctxtst trap unexpected");
}

void
CtxtL1Backend::compute(Ticks t)
{
    stack_.machine_.consume(t);
}

// ------------------------------------------------------ NativeApi extras

std::uint8_t
NativeApi::timerVector() const
{
    return vec::hostTimer;
}

} // namespace svtsim
