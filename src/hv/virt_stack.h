/**
 * @file
 * VirtStack: the assembled virtualization stack.
 *
 * One object wires together the host hypervisor (L0), the guest
 * hypervisor (L1), the VMX engines, EPTs, virtual APICs, the SVt
 * hardware unit (HW SVt) or the command channels (SW SVt), and exposes
 * GuestApi implementations for running workloads at the configured
 * top level. The same workload program produces identical
 * architectural results in every mode; only the modeled time differs.
 */

#ifndef SVTSIM_HV_VIRT_STACK_H
#define SVTSIM_HV_VIRT_STACK_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "arch/machine.h"
#include "hv/channel.h"
#include "hv/cpuid_db.h"
#include "hv/guest_api.h"
#include "hv/guest_hypervisor.h"
#include "hv/stack_config.h"
#include "hv/vcpu.h"
#include "sim/log.h"
#include "svt/svt_unit.h"
#include "virt/ept.h"
#include "virt/vmx.h"

namespace svtsim {

/** Raised when the Section 5.3 interrupt deadlock manifests (only
 *  possible with StackConfig::svtBlockedFix disabled). */
class DeadlockError : public SimError
{
  public:
    explicit DeadlockError(const std::string &what) : SimError(what) {}
};

/** Handler for an L1 MMIO access emulated by L0 (L1's virtio devs). */
using L0MmioHandler = std::function<std::uint64_t(
    Gpa addr, int size, std::uint64_t value, bool is_write)>;

/**
 * The assembled stack. See DESIGN.md section 3 for the execution
 * model: guest code runs synchronously; sensitive operations walk the
 * real trap paths; asynchronous device events are pumped at
 * instruction boundaries.
 */
class VirtStack
{
  public:
    VirtStack(Machine &machine, StackConfig config);
    ~VirtStack();

    VirtStack(const VirtStack &) = delete;
    VirtStack &operator=(const VirtStack &) = delete;

    Machine &machine() { return machine_; }
    const StackConfig &config() const { return config_; }

    /** The GuestApi of the configured top level (L0/L1/L2). */
    GuestApi &api();

    /** GuestApi of a specific level (0, 1 or 2 where applicable). */
    GuestApi &apiAt(int level);

    /** Run @p program at the top level. */
    void run(const GuestProgram &program);

    /** The guest (L1) hypervisor, for registering L2 devices. */
    GuestHypervisor &l1Hv() { return *guestHv_; }

    // -- Device plumbing ---------------------------------------------------
    /** Register an L0-emulated MMIO region in L1's physical space. */
    void registerL0Mmio(Gpa base, std::uint64_t size,
                        L0MmioHandler handler);

    /** Register an I/O port emulated by L0 (L1's devices). */
    void registerL0IoPort(
        std::uint16_t port,
        std::function<std::uint64_t(std::uint16_t, std::uint64_t,
                                    bool)>
            handler);

    /** Register an L1->L0 hypercall (e.g. the SW SVt pairing call). */
    void registerL0Hypercall(
        std::uint64_t nr,
        std::function<std::uint64_t(std::uint64_t, std::uint64_t)>
            handler);

    /** A physical device interrupt arriving at L0. */
    void raiseHostIrq(std::uint8_t vector);

    /** Raise a virtual interrupt for L1 (L0-side device backends). */
    void raiseL1Irq(std::uint8_t vector);

    /** Raise a virtual interrupt for L2 (L1-side device backends). */
    void raiseL2Irq(std::uint8_t vector);

    /** Register the interrupt handler for @p vector at @p level. */
    void setIrqHandler(int level, std::uint8_t vector,
                       std::function<void()> handler);

    /**
     * Deliver every deliverable pending interrupt now.
     * @return Number of interrupts delivered (at any level).
     */
    int pumpInterrupts();

    // -- SW SVt test/fault-injection hooks ----------------------------------
    /**
     * Arm the Section 5.3 scenario: during the next SVt-thread command,
     * a kernel thread preempts the SVt-thread for @p duration and IPIs
     * the L1 vCPU, waiting for the ack.
     */
    void armSvtThreadPreemption(Ticks duration);

    // -- L1 housekeeping interference (Section 6.3.1) -----------------------
    /**
     * Post one unit of L1-kernel housekeeping (scheduler tick, RCU
     * callback, vhost bookkeeping) of cost @p cost. In the baseline
     * and HW SVt (one effective thread) it is serviced serially before
     * the next L2 exit is handled; in SW SVt the L1 vCPU drains it on
     * its own hardware thread while the SVt-thread handles the exit,
     * so it overlaps (the paper's "less noisy" latency effect). The
     * overlap assumption holds when @p cost is below the exit-handling
     * time; keep individual units small.
     */
    void postL1Housekeeping(Ticks cost);

    /** Pending housekeeping work (for tests). */
    Ticks pendingL1Housekeeping() const { return l1Housekeeping_; }

    // -- Introspection -------------------------------------------------------
    /** Nested exits reflected to L1 so far. */
    std::uint64_t reflectedExits() const { return reflected_; }

    /** SW SVt: whether the watchdog degraded the stack onto the
     *  conventional nested trap path (until the quiet period ends). */
    bool svtDegraded() const { return svtDegraded_; }

    /** Hardware context running L2 guest register state. */
    HwContext &l2Context();

    /** L0's vCPU bookkeeping for L1 (virtual APIC lives here). */
    Vcpu &vcpuL1() { return *vcpuL1_; }

    /** L1's vCPU bookkeeping for L2. */
    Vcpu &vcpuL2() { return *vcpuL2InL1_; }

    Vmcs &vmcs01() { return *vmcs01_; }
    Vmcs &vmcs12() { return *vmcs12_; }
    Vmcs &vmcs02() { return *vmcs02_; }
    Ept &ept02() { return *ept02_; }
    SvtUnit &svtUnit() { return *svt_; }

  private:
    friend class NativeApi;
    friend class L1Api;
    friend class L2Api;
    friend class MemL1Backend;
    friend class CtxtL1Backend;
    friend class MuxL1Backend;

    // -- Construction helpers ---------------------------------------------
    void setupCommon();
    void setupSingle();
    void setupNested();

    // -- Mode predicates ------------------------------------------------------
    bool isNestedMode() const
    {
        return config_.mode == VirtMode::Nested ||
               config_.mode == VirtMode::SwSvt ||
               config_.mode == VirtMode::HwSvt;
    }

    // -- L2 trap machinery (Algorithm 1) -------------------------------------
    /** Full nested exit round: trap, reflect, handle in L1, resume. */
    void nestedExitFromL2(const ExitInfo &info);

    /** Stage 1/9: the L2<->L0 boundary. */
    void exitFromL2(const ExitInfo &info);
    void resumeL2();

    /** Stage 3/8: VMCS transformation passes (Section 2.2). */
    void transformVmcs02ToVmcs12();
    void transformVmcs12ToVmcs02();
    Ticks transformPassCost() const;

    /** Stage 4-6: deliver the trap to L1, run its handler, return.
     *  @return False if L2 halted instead of resuming. */
    bool reflectToL1(const ExitInfo &info);

    bool reflectBaseline(const ExitInfo &info);
    bool reflectSwSvt(const ExitInfo &info);
    bool reflectHwSvt(const ExitInfo &info);
    bool reflectHwSvtMultiplexed(const ExitInfo &info);

    /**
     * Context multiplexing (Section 3.1): on a core with fewer
     * hardware contexts than virtualization levels, L1 and L2 share
     * a context; switching levels spills/reloads the architectural
     * state through the hypervisor's vCPU structs.
     *
     * @param level 1 or 2: which level must own the shared context.
     */
    void svtSwitchOwner(int level);

    /** SW SVt: handle a pending preemption + IPI against the
     *  SVt-thread (Section 5.3); returns extra delay consumed. */
    void serviceSvtThreadPreemption();

    // -- SW SVt watchdog (graceful degradation) --------------------------
    /**
     * Wait for a message on @p ring under the heartbeat watchdog:
     * each missed deadline re-posts @p repost (re-ringing the
     * doorbell) with linear backoff. Without the watchdog a missed
     * message raises DeadlockError (the Section 5.3 hang).
     *
     * @return True when a message arrived; false when retries were
     *         exhausted (caller degrades via svtFallback()).
     */
    bool svtAwaitRing(CommandRing &ring, const ChannelMessage &repost);

    /** Degrade from SW SVt to the conventional nested trap path:
     *  reset the rings, start the quiet period, bump svt.fallback. */
    void svtFallback(const char *why);

    /** Re-promote to SW SVt once the quiet period has elapsed. */
    void maybeRepromoteSvt();

    /** Deliver every pending L1 vector through an L1 window (the
     *  SVT_BLOCKED drain loop of Section 5.3). */
    void drainL1Ipis();

    // -- L1's own exits (single-level rounds) ---------------------------------
    /**
     * One complete single-level trap round for L1 code: exit on the
     * given engine, dispatch in L0, resume. Returns the emulation
     * result where applicable (rdmsr, mmio read, vmcall).
     */
    std::uint64_t l1TrapRound(VmxEngine &engine, const ExitInfo &info);

    /** Dispatch of an L1-grade exit inside L0. @p engine is the VMX
     *  engine the exit occurred on, or null for the SVt path. */
    std::uint64_t handleL0Exit(const ExitInfo &info, VmxEngine *engine);

    /** Cost-only trap round used by the HW SVt backend for trapped
     *  VMCS accesses. */
    std::uint64_t svtTrapRound(const ExitInfo &info);

    // -- Interrupt delivery ----------------------------------------------------
    int deliverHostIrqs();
    int deliverL1Irqs();

    /** Enter/leave an L1 execution window from L0 control. */
    void enterL1Window();
    void leaveL1Window();

    /**
     * After an L1 window: inject pending L2 vectors (running the L2
     * handlers) and/or resume L2 if it was running before the window.
     * @return Number of vectors delivered to L2.
     */
    int maybeInjectAndResumeL2(bool l2_was_running);

    /**
     * Posted-interrupt delivery into a *running* L2: sync the PIR into
     * the IRR and run the L2 handlers without a nested exit (the
     * notification microcode path). Requires l2Running_.
     * @return Number of vectors delivered.
     */
    int deliverPostedToL2();

    void runIrqHandler(int level, int vector);

    /** Single-level (mode Single) interrupt delivery. */
    int pumpSingle();
    int pumpNative();

    // -- Members -----------------------------------------------------------------
    Machine &machine_;
    StackConfig config_;
    SmtCore &core_;

    std::vector<std::unique_ptr<VmxEngine>> engines_;
    std::unique_ptr<SvtUnit> svt_;

    std::unique_ptr<Vmcs> vmcs01_;  ///< L0's descriptor of L1.
    std::unique_ptr<Vmcs> vmcs12_;  ///< Shadow of L1's vmcs01'.
    std::unique_ptr<Vmcs> vmcs02_;  ///< L0's descriptor of L2.
    std::unique_ptr<Vmcs> vmcs01s_; ///< SW SVt: sibling vCPU of L1.

    std::unique_ptr<Ept> ept01_; ///< L0's EPT for L1.
    std::unique_ptr<Ept> ept02_; ///< L0's merged EPT for L2.

    std::unique_ptr<Vcpu> vcpuL1_;     ///< L0's vcpu struct for L1.
    std::unique_ptr<Vcpu> vcpuL2InL0_; ///< L0's vcpu struct for L2.
    std::unique_ptr<Vcpu> vcpuL2InL1_; ///< L1's vcpu struct for L2.

    std::unique_ptr<GuestHypervisor> guestHv_;
    CpuidDb l0CpuidView_; ///< what L0 exposes to its guest.

    std::unique_ptr<class NativeApi> nativeApi_;
    std::unique_ptr<class L1Api> l1Api_;
    std::unique_ptr<class L2Api> l2Api_;
    std::unique_ptr<class MemL1Backend> memBackend_;
    std::unique_ptr<class CtxtL1Backend> ctxtBackend_;
    std::unique_ptr<class MuxL1Backend> muxBackend_;

    std::unique_ptr<CommandRing> ringToSvt_;
    std::unique_ptr<CommandRing> ringFromSvt_;

    struct MmioRegion
    {
        Gpa base;
        std::uint64_t size;
        L0MmioHandler handler;
    };
    std::vector<MmioRegion> l0Mmio_;

    std::array<std::map<std::uint8_t, std::function<void()>>, 3>
        irqHandlers_;

    /** L0's emulated MSR state for L1. */
    std::map<std::uint32_t, std::uint64_t> l0Msrs_;

    /** L0's emulated I/O ports (for L1). */
    std::map<std::uint16_t,
             std::function<std::uint64_t(std::uint16_t, std::uint64_t,
                                         bool)>>
        l0IoPorts_;

    /** L0's hypercall table. */
    std::map<std::uint64_t,
             std::function<std::uint64_t(std::uint64_t, std::uint64_t)>>
        l0Hypercalls_;

    /** Armed Section 5.3 preemption scenario. */
    Ticks pendingPreemption_ = 0;

    /** Watchdog degradation state: while true, SW SVt exits route
     *  through the conventional path. */
    bool svtDegraded_ = false;
    /** When the degraded stack may re-promote to SW SVt. */
    Ticks svtRepromoteAt_ = 0;

    /** Accumulated L1 housekeeping work not yet serviced. */
    Ticks l1Housekeeping_ = 0;

    /** Service pending housekeeping per the mode's concurrency. */
    void serviceL1Housekeeping(bool overlapped);

    // -- Execution bookkeeping -------------------------------------------
    /** Whether the L2 guest is logically executing. */
    bool l2Running_ = false;
    /** Whether the Single-mode guest is logically executing. */
    bool singleGuestRunning_ = false;
    /** HW SVt with fewer contexts than levels (Section 3.1). */
    bool svtMultiplexed_ = false;
    /** Which level currently owns the shared context (1 or 2). */
    int svtCtx1Owner_ = 2;

    /** Engine and VMCS on which L1 code currently executes (null in
     *  the HW SVt handler path, which uses the SVt unit instead). */
    VmxEngine *l1Engine_ = nullptr;
    Vmcs *l1Vmcs_ = nullptr;
    bool l1ViaSvt_ = false;
    /** Slowdown applied to L1 handler compute (poll-channel SMT
     *  interference, Section 6.1). */
    double l1Slowdown_ = 1.0;
    /** Vector most recently delivered into L2 (-1 if none). */
    int l2DeliveredVector_ = -1;

    std::uint64_t reflected_ = 0;
    bool inL1Window_ = false;
    bool pumping_ = false;

    // -- PMU handles (interned in setupCommon) -----------------------------
    /** Per-exit-reason count plus simulated-latency histogram. */
    struct ReasonMetrics
    {
        Counter count;
        LatencyHistogram latency;
    };
    using PerReason =
        std::array<ReasonMetrics,
                   static_cast<std::size_t>(ExitReason::NumReasons)>;

    /** L2 trap rounds keyed by exit reason (nested rounds). */
    PerReason l2ExitMetric_;
    /** L1-grade exits handled by L0 (single-level rounds). */
    PerReason l0ExitMetric_;

    Counter transform0212Metric_;
    Counter transform1202Metric_;
    Counter reflectMetric_;
    Counter directReflectMetric_;
    Counter ept02FillMetric_;
    Counter ept02MmioMetric_;
    Counter hkOverlappedMetric_;
    Counter hkSerialMetric_;
    Counter ctxMultiplexMetric_;
    Counter preemptionMetric_;
    Counter svtBlockedMetric_;
    Counter swsvtPairedMetric_;
    Counter svtFallbackMetric_;
    Counter svtRepromoteMetric_;
    Counter svtWatchdogRetryMetric_;
    std::array<Counter, 3> irqDeliveredMetric_;
    /** Exit-elision ladder: nested exits avoided by posted-interrupt
     *  delivery, EOI traps avoided by x2APIC virtualization, and
     *  posted-interrupt notifications sent. */
    Counter elidedExitMetric_;
    Counter elidedEoiMetric_;
    Counter postedNotifyMetric_;
    /** The HW SVt exit path bumps the same vmx.exit* slots VmxEngine
     *  registers (an SVt trap replaces the exit microcode). */
    Counter vmxExitMetric_;
    std::array<Counter,
               static_cast<std::size_t>(ExitReason::NumReasons)>
        vmxExitReasonMetric_;
};

} // namespace svtsim

#endif // SVTSIM_HV_VIRT_STACK_H
