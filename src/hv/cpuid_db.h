/**
 * @file
 * cpuid emulation: the feature view each virtualization level exposes
 * to its guests.
 *
 * Real hypervisors mask host features when emulating cpuid; modeling
 * that gives the cross-mode transparency tests something meaningful to
 * compare (the same L2 program must observe the same cpuid values in
 * the baseline and in both SVt variants).
 */

#ifndef SVTSIM_HV_CPUID_DB_H
#define SVTSIM_HV_CPUID_DB_H

#include <cstdint>
#include <map>

#include "arch/regs.h"

namespace svtsim {

/** Feature bits the modeled platform reports in leaf 1 (ecx). */
namespace cpuid_feature {

constexpr std::uint64_t vmx = 1ULL << 5;
constexpr std::uint64_t x2apic = 1ULL << 21;
constexpr std::uint64_t tscDeadline = 1ULL << 24;
/** Set when running under any hypervisor (leaf 1 ecx bit 31). */
constexpr std::uint64_t hypervisorPresent = 1ULL << 31;

} // namespace cpuid_feature

/**
 * A level's cpuid table: host values filtered through the masks each
 * hypervisor applies.
 */
class CpuidDb
{
  public:
    /** Bare-metal (L0) view of the modeled Xeon E5-2630v3. */
    static CpuidDb host();

    /**
     * Derive the view a hypervisor at this level exposes to its guest:
     * sets the hypervisor-present bit and applies the feature mask.
     * @param keep_vmx Whether nested virtualization is advertised.
     */
    CpuidDb guestView(bool keep_vmx) const;

    /** Look up a leaf (unknown leaves return zeros, like hardware). */
    CpuidResult query(std::uint64_t leaf) const;

    void set(std::uint64_t leaf, CpuidResult value);

  private:
    std::map<std::uint64_t, CpuidResult> leaves_;
};

} // namespace svtsim

#endif // SVTSIM_HV_CPUID_DB_H
