#include "hv/stack_config.h"

#include "sim/log.h"

namespace svtsim {

namespace {

bool
isSvtMode(VirtMode mode)
{
    return mode == VirtMode::SwSvt || mode == VirtMode::HwSvt;
}

bool
isNestedMode(VirtMode mode)
{
    return mode == VirtMode::Nested || isSvtMode(mode);
}

} // namespace

void
validateStackConfig(const StackConfig &config)
{
    const char *mode = virtModeName(config.mode);

    if (config.svtDirectReflect && config.mode != VirtMode::HwSvt) {
        fatal("StackConfig: svtDirectReflect models the Section 3.1 "
              "HW SVt level bypass and requires mode hw-svt (mode is "
              "%s); clear svtDirectReflect or use VirtMode::HwSvt",
              mode);
    }

    StackConfig defaults;
    bool channel_tuned =
        config.channel.mechanism != defaults.channel.mechanism ||
        config.channel.placement != defaults.channel.placement;
    if (channel_tuned && config.mode != VirtMode::SwSvt) {
        fatal("StackConfig: channel (mechanism=%s, placement=%s) "
              "tunes the SW SVt command rings, which mode %s does not "
              "use; leave channel at its default or use "
              "VirtMode::SwSvt",
              waitMechanismName(config.channel.mechanism),
              placementName(config.channel.placement), mode);
    }

    if (config.svtWatchdog.enabled) {
        if (config.mode != VirtMode::SwSvt) {
            fatal("StackConfig: svtWatchdog guards the SW SVt "
                  "L0<->SVt-thread handshake, which mode %s does not "
                  "have; disable svtWatchdog or use VirtMode::SwSvt",
                  mode);
        }
        if (config.svtWatchdog.timeout <= 0 ||
            config.svtWatchdog.maxRetries < 1 ||
            config.svtWatchdog.backoff < 0 ||
            config.svtWatchdog.quietPeriod <= 0) {
            fatal("StackConfig: svtWatchdog needs timeout > 0, "
                  "maxRetries >= 1, backoff >= 0 and quietPeriod > 0");
        }
    }

    if (!config.svtBlockedFix && !isSvtMode(config.mode)) {
        fatal("StackConfig: svtBlockedFix=false disables the Section "
              "5.3 SVT_BLOCKED deadlock fix in the SVt trap path, but "
              "mode %s has no SVt; use VirtMode::SwSvt or "
              "VirtMode::HwSvt to study the deadlock",
              mode);
    }

    if (!config.hwVmcsShadowing && !isNestedMode(config.mode)) {
        fatal("StackConfig: hwVmcsShadowing only matters when a "
              "nested L1 issues vmread/vmwrite, so it cannot be "
              "disabled in mode %s; use a nested mode "
              "(nested-baseline, sw-svt, hw-svt)",
              mode);
    }

    if (config.eagerStateLoad && config.mode == VirtMode::Native) {
        fatal("StackConfig: eagerStateLoad tunes VM-entry state "
              "loading and native mode performs no VM entries; clear "
              "eagerStateLoad or pick a virtualized mode");
    }

    if (config.postedInterrupts && !isNestedMode(config.mode)) {
        fatal("StackConfig: postedInterrupts elides *nested* exits on "
              "the L2 interrupt delivery path, which mode %s does not "
              "take; clear postedInterrupts or use a nested mode "
              "(nested-baseline, sw-svt, hw-svt)",
              mode);
    }

    if (config.virtioQueues < 1 || config.virtioQueues > 8) {
        fatal("StackConfig: virtioQueues must be in [1, 8] (got %d)",
              config.virtioQueues);
    }
    if (config.virtioQueues > 1 && !isNestedMode(config.mode)) {
        fatal("StackConfig: virtioQueues=%d configures multi-queue "
              "virtio devices for the nested exit-elision sweep, which "
              "mode %s does not run; use 1 queue or a nested mode",
              config.virtioQueues, mode);
    }

    if (config.virtioCoalesceCount < 1) {
        fatal("StackConfig: virtioCoalesceCount must be >= 1 (got %d); "
              "1 fires an interrupt per completion (no coalescing)",
              config.virtioCoalesceCount);
    }
    if (config.virtioCoalesceTimeout < 0) {
        fatal("StackConfig: virtioCoalesceTimeout must be >= 0 (got "
              "%lld); 0 disables the coalescing timer",
              static_cast<long long>(config.virtioCoalesceTimeout));
    }
    if (config.virtioCoalesceCount > 1 &&
        config.virtioCoalesceTimeout <= 0) {
        fatal("StackConfig: virtioCoalesceCount=%d without a "
              "virtioCoalesceTimeout would strand a tail batch smaller "
              "than the count forever; set virtioCoalesceTimeout > 0",
              config.virtioCoalesceCount);
    }
    bool coalesce_tuned = config.virtioCoalesceCount > 1 ||
                          config.virtioCoalesceTimeout > 0;
    if (coalesce_tuned && !isNestedMode(config.mode)) {
        fatal("StackConfig: virtio interrupt coalescing (count=%d, "
              "timeout=%lld) tunes the nested vhost completion path, "
              "which mode %s does not have; reset the coalescing knobs "
              "or use a nested mode",
              config.virtioCoalesceCount,
              static_cast<long long>(config.virtioCoalesceTimeout),
              mode);
    }

    if (config.coreIndex < 0) {
        fatal("StackConfig: coreIndex must be non-negative (got %d)",
              config.coreIndex);
    }
}

} // namespace svtsim
