/**
 * @file
 * VirtStack assembly, the per-level GuestApi implementations and the
 * interrupt pump. The nested trap machinery (Algorithm 1) lives in
 * nested_flow.cc.
 */

#include "hv/virt_stack.h"

#include "hv/vectors.h"
#include "hv/virt_stack_impl.h"
#include "sim/log.h"

namespace svtsim {

const char *
virtModeName(VirtMode mode)
{
    switch (mode) {
      case VirtMode::Native: return "native";
      case VirtMode::Single: return "single-level";
      case VirtMode::Nested: return "nested-baseline";
      case VirtMode::SwSvt: return "sw-svt";
      case VirtMode::HwSvt: return "hw-svt";
    }
    return "?";
}

namespace {

/** Validate the config before any member construction touches it. */
int
checkedCoreIndex(Machine &machine, const StackConfig &config)
{
    validateStackConfig(config);
    if (config.coreIndex >= machine.numCores()) {
        fatal("StackConfig: coreIndex %d out of range; the machine "
              "has %d cores",
              config.coreIndex, machine.numCores());
    }
    return config.coreIndex;
}

} // namespace

VirtStack::VirtStack(Machine &machine, StackConfig config)
    : machine_(machine), config_(config),
      core_(machine.core(checkedCoreIndex(machine, config)))
{
    setupCommon();
    switch (config_.mode) {
      case VirtMode::Native:
        break;
      case VirtMode::Single:
        setupSingle();
        break;
      case VirtMode::Nested:
      case VirtMode::SwSvt:
      case VirtMode::HwSvt:
        setupNested();
        break;
    }
}

VirtStack::~VirtStack() = default;

void
VirtStack::setupCommon()
{
    for (int i = 0; i < core_.numContexts(); ++i) {
        engines_.push_back(
            std::make_unique<VmxEngine>(machine_, core_, i));
    }
    svt_ = std::make_unique<SvtUnit>(machine_, core_);

    vmcs01_ = std::make_unique<Vmcs>("vmcs01");
    vmcs12_ = std::make_unique<Vmcs>("vmcs12");
    vmcs02_ = std::make_unique<Vmcs>("vmcs02");
    vmcs01s_ = std::make_unique<Vmcs>("vmcs01-sibling");

    ept01_ = std::make_unique<Ept>("ept01");
    ept02_ = std::make_unique<Ept>("ept02");

    vcpuL1_ = std::make_unique<Vcpu>(machine_, "l0.vcpu[l1]");
    vcpuL2InL0_ = std::make_unique<Vcpu>(machine_, "l0.vcpu[l2]");
    vcpuL2InL1_ = std::make_unique<Vcpu>(machine_, "l1.vcpu[l2]");

    // cpuid views: the host table, what L0 shows L1 (keeps VMX so L1
    // can nest), and what L1 shows L2 (no further nesting).
    CpuidDb host_db = CpuidDb::host();
    l0CpuidView_ = host_db.guestView(/*keep_vmx=*/true);
    guestHv_ = std::make_unique<GuestHypervisor>(
        l0CpuidView_.guestView(/*keep_vmx=*/false));

    nativeApi_ = std::make_unique<NativeApi>(*this, host_db);
    l1Api_ = std::make_unique<L1Api>(*this);
    l2Api_ = std::make_unique<L2Api>(*this);
    memBackend_ = std::make_unique<MemL1Backend>(*this);
    ctxtBackend_ = std::make_unique<CtxtL1Backend>(*this);
    muxBackend_ = std::make_unique<MuxL1Backend>(*this);

    ringToSvt_ =
        std::make_unique<CommandRing>(machine_, "ring.to_svt");
    ringFromSvt_ =
        std::make_unique<CommandRing>(machine_, "ring.from_svt");

    // Simulated-PMU registration: every counter the nested flow (and
    // the benches/tests querying Machine::counter) touches must exist
    // before first use. Registered for every mode so zero-valued
    // lookups stay valid and the export schema is mode-independent.
    MetricsRegistry &reg = machine_.metrics();
    for (std::size_t r = 0;
         r < static_cast<std::size_t>(ExitReason::NumReasons); ++r) {
        const char *rn = exitReasonName(static_cast<ExitReason>(r));
        l2ExitMetric_[r].count = reg.counter(
            MetricScope::L2, "hv", std::string("l2.exit.") + rn);
        l2ExitMetric_[r].latency = reg.histogram(
            MetricScope::L2, "hv",
            std::string("l2.exit_latency.") + rn);
        l0ExitMetric_[r].count = reg.counter(
            MetricScope::L0, "hv", std::string("l0.exit.") + rn);
        l0ExitMetric_[r].latency = reg.histogram(
            MetricScope::L0, "hv",
            std::string("l0.exit_latency.") + rn);
    }
    transform0212Metric_ =
        reg.counter(MetricScope::L0, "hv", "l0.transform_02_to_12");
    transform1202Metric_ =
        reg.counter(MetricScope::L0, "hv", "l0.transform_12_to_02");
    reflectMetric_ = reg.counter(MetricScope::L0, "hv", "l0.reflect");
    directReflectMetric_ =
        reg.counter(MetricScope::L0, "hv", "l0.direct_reflect");
    ept02FillMetric_ =
        reg.counter(MetricScope::L0, "hv", "l0.ept02_fill");
    ept02MmioMetric_ =
        reg.counter(MetricScope::L0, "hv", "l0.ept02_mmio");
    hkOverlappedMetric_ = reg.counter(MetricScope::L1, "hv",
                                      "l1.housekeeping.overlapped");
    hkSerialMetric_ =
        reg.counter(MetricScope::L1, "hv", "l1.housekeeping.serial");
    ctxMultiplexMetric_ =
        reg.counter(MetricScope::Svt, "hv", "svt.ctx_multiplex");
    preemptionMetric_ =
        reg.counter(MetricScope::Svt, "hv", "swsvt.preemption");
    svtBlockedMetric_ =
        reg.counter(MetricScope::Svt, "hv", "swsvt.svt_blocked");
    swsvtPairedMetric_ =
        reg.counter(MetricScope::Svt, "hv", "swsvt.paired");
    svtFallbackMetric_ =
        reg.counter(MetricScope::Svt, "hv", "svt.fallback");
    svtRepromoteMetric_ =
        reg.counter(MetricScope::Svt, "hv", "svt.repromote");
    svtWatchdogRetryMetric_ =
        reg.counter(MetricScope::Svt, "hv", "svt.watchdog.retry");
    for (int level = 0; level < 3; ++level) {
        irqDeliveredMetric_[static_cast<std::size_t>(level)] =
            reg.counter(level == 0   ? MetricScope::L0
                        : level == 1 ? MetricScope::L1
                                     : MetricScope::L2,
                        "irq",
                        "irq.delivered.l" + std::to_string(level));
    }
    elidedExitMetric_ =
        reg.counter(MetricScope::L2, "hv", "l2.exit.elided.posted");
    elidedEoiMetric_ =
        reg.counter(MetricScope::L2, "hv", "l2.exit.elided.eoi");
    postedNotifyMetric_ =
        reg.counter(MetricScope::L2, "irq", "irq.posted.notify");
    // Re-open the aggregate vmx.exit slots the engines registered.
    vmxExitMetric_ =
        reg.counter(MetricScope::Machine, "vmx", "vmx.exit");
    for (std::size_t r = 0;
         r < static_cast<std::size_t>(ExitReason::NumReasons); ++r) {
        vmxExitReasonMetric_[r] = reg.counter(
            MetricScope::Machine, "vmx",
            std::string("vmx.exit.") +
                exitReasonName(static_cast<ExitReason>(r)));
    }

    // L1's virtual timer interrupt forwards L2's deadline (the
    // GuestHypervisor owns the bookkeeping).
    guestHv_->wireL2IrqRaiser(
        [this](std::uint8_t v) { raiseL2Irq(v); });
    setIrqHandler(1, vec::l1Timer,
                  [this] { guestHv_->onL1TimerFired(); });
}

void
VirtStack::setupSingle()
{
    VmxEngine &e0 = *engines_[0];
    e0.vmxon();
    vmcs01_->write(VmcsField::HostRip, 0xffffffff81000000ULL);
    vmcs01_->write(VmcsField::GuestRip, 0xffffffff80000000ULL);
    e0.vmptrld(vmcs01_.get());
    e0.vmentry(true);
    singleGuestRunning_ = true;
    l1Engine_ = &e0;
    l1Vmcs_ = vmcs01_.get();
}

void
VirtStack::setupNested()
{
    VmxEngine &e0 = *engines_[0];
    e0.vmxon();

    // vmcs01 describes L1: a hypervisor-grade guest (MSR switch lists,
    // Table 1 row 4), optionally with the hardware shadow VMCS linked.
    vmcs01_->write(VmcsField::EntryControls,
                   entryCtlLoadHypervisorState);
    vmcs01_->write(VmcsField::HostRip, 0xffffffff81000000ULL);
    vmcs01_->write(VmcsField::GuestRip, 0xffffffff80000000ULL);
    if (config_.hwVmcsShadowing) {
        vmcs01_->write(VmcsField::ProcControls2, procCtl2ShadowVmcs);
        vmcs01_->setShadowLink(vmcs12_.get());
    }

    vmcs02_->write(VmcsField::HostRip, 0xffffffff81000000ULL);
    vmcs02_->write(VmcsField::GuestRip, 0x400000);

    if (config_.mode == VirtMode::HwSvt) {
        if (core_.numContexts() < 2) {
            fatal("HW SVt needs >= 2 hardware contexts on core %d",
                  core_.id());
        }
        // Section 3.1: with fewer hardware contexts than
        // virtualization levels, the hypervisor multiplexes L1 and
        // L2 on the shared context.
        svtMultiplexed_ = core_.numContexts() < 3;
        if (svtMultiplexed_ && config_.svtDirectReflect) {
            fatal("direct reflect needs a dedicated context per "
                  "level");
        }
        int l2_ctx = svtMultiplexed_ ? 1 : 2;
        svt_->enable();
        // Section 4: L0 on context-0, L1 on context-1, L2 on
        // context-2; vmcs01 carries virtualized ids for L1's view.
        vmcs01_->write(VmcsField::SvtVisor, 0);
        vmcs01_->write(VmcsField::SvtVm, 1);
        vmcs01_->write(VmcsField::SvtNested,
                       svtMultiplexed_ ? svtInvalidContext : 2);
        vmcs02_->write(VmcsField::SvtVisor, 0);
        vmcs02_->write(VmcsField::SvtVm,
                       static_cast<std::uint64_t>(l2_ctx));
        // All external interrupts steered to the hypervisor context
        // (Section 3.1).
        for (int i = 1; i < core_.numContexts(); ++i)
            core_.lapic(i).redirect = &core_.lapic(0);

        // Boot bookkeeping: both VMCSs count as launched.
        vmcs01_->setState(Vmcs::State::Launched);
        vmcs02_->setState(Vmcs::State::Launched);
        e0.vmptrld(vmcs02_.get());
        svt_->loadFromVmcs(*vmcs02_);
        svt_->vmResume();
        svtCtx1Owner_ = 2;
        l2Running_ = true;
        return;
    }

    // Boot L1 once (launch, then it halts into L0).
    e0.vmptrld(vmcs01_.get());
    e0.vmentry(true);
    e0.vmexit(ExitInfo{.reason = ExitReason::Hlt});

    if (config_.mode == VirtMode::SwSvt) {
        if (core_.numContexts() < 2) {
            fatal("SW SVt needs an SMT sibling on core %d",
                  core_.id());
        }
        // The SVt-thread (L1's second vCPU) parks on the sibling
        // hardware thread, inside the guest, waiting on the ring.
        VmxEngine &e1 = *engines_[1];
        e1.vmxon();
        vmcs01s_->write(VmcsField::EntryControls,
                        entryCtlLoadHypervisorState);
        vmcs01s_->write(VmcsField::HostRip, 0xffffffff81000000ULL);
        vmcs01s_->write(VmcsField::GuestRip, 0xffffffff80000000ULL);
        if (config_.hwVmcsShadowing) {
            vmcs01s_->write(VmcsField::ProcControls2,
                            procCtl2ShadowVmcs);
            vmcs01s_->setShadowLink(vmcs12_.get());
        }
        e1.vmptrld(vmcs01s_.get());
        e1.vmentry(true);
        // L1 pairs the vCPU and the SVt-thread through a hypercall so
        // L0 reschedules them together (Section 5.2).
        swsvtPairedMetric_.inc();
    }

    // L1 launches L2; L0 runs it on vmcs02 (Turtles, Figure 2).
    e0.vmptrld(vmcs02_.get());
    e0.vmentry(true);
    l2Running_ = true;
}

GuestApi &
VirtStack::api()
{
    switch (config_.mode) {
      case VirtMode::Native:
        return *nativeApi_;
      case VirtMode::Single:
        return *l1Api_;
      default:
        return *l2Api_;
    }
}

GuestApi &
VirtStack::apiAt(int level)
{
    switch (level) {
      case 0:
        return *nativeApi_;
      case 1:
        return *l1Api_;
      case 2:
        return *l2Api_;
      default:
        panic("VirtStack::apiAt: invalid level %d", level);
    }
}

void
VirtStack::run(const GuestProgram &program)
{
    program(api());
}

HwContext &
VirtStack::l2Context()
{
    if (config_.mode != VirtMode::HwSvt)
        return core_.context(0);
    return core_.context(svtMultiplexed_ ? 1 : 2);
}

void
VirtStack::registerL0Mmio(Gpa base, std::uint64_t size,
                          L0MmioHandler handler)
{
    l0Mmio_.push_back(MmioRegion{base, size, std::move(handler)});
    ept01_->markMmio(base, (size + pageSize - 1) / pageSize);
}

void
VirtStack::registerL0IoPort(
    std::uint16_t port,
    std::function<std::uint64_t(std::uint16_t, std::uint64_t, bool)>
        handler)
{
    l0IoPorts_[port] = std::move(handler);
}

void
VirtStack::registerL0Hypercall(
    std::uint64_t nr,
    std::function<std::uint64_t(std::uint64_t, std::uint64_t)> handler)
{
    l0Hypercalls_[nr] = std::move(handler);
}

void
VirtStack::raiseHostIrq(std::uint8_t vector)
{
    int target = 0;
    if (config_.mode == VirtMode::HwSvt)
        target = static_cast<int>(svt_->uregs().current);
    core_.lapic(target).assertExternal(vector);
}

void
VirtStack::raiseL1Irq(std::uint8_t vector)
{
    vcpuL1_->lapic().raise(vector);
}

void
VirtStack::raiseL2Irq(std::uint8_t vector)
{
    if (config_.postedInterrupts) {
        // Exit-elision rung 1: write the vector into the posted
        // descriptor; the notification (if one is needed) is the
        // pump's job, so a raise from any context stays cheap.
        if (vcpuL2InL1_->lapic().postInterrupt(vector))
            postedNotifyMetric_.inc();
        return;
    }
    vcpuL2InL1_->lapic().raise(vector);
}

void
VirtStack::setIrqHandler(int level, std::uint8_t vector,
                         std::function<void()> handler)
{
    if (level < 0 || level > 2)
        panic("setIrqHandler: invalid level %d", level);
    irqHandlers_[static_cast<std::size_t>(level)][vector] =
        std::move(handler);
}

void
VirtStack::runIrqHandler(int level, int vector)
{
    auto &table = irqHandlers_[static_cast<std::size_t>(level)];
    auto it = table.find(static_cast<std::uint8_t>(vector));
    irqDeliveredMetric_[static_cast<std::size_t>(level)].inc();
    if (it != table.end() && it->second)
        it->second();
}

void
VirtStack::armSvtThreadPreemption(Ticks duration)
{
    if (config_.mode != VirtMode::SwSvt)
        fatal("SVt-thread preemption only exists in SW SVt mode");
    pendingPreemption_ = duration;
}

// --------------------------------------------------------------- pumping

int
VirtStack::pumpInterrupts()
{
    if (pumping_)
        return 0;
    pumping_ = true;
    int total = 0;
    switch (config_.mode) {
      case VirtMode::Native:
        total = pumpNative();
        break;
      case VirtMode::Single:
        total = pumpSingle();
        break;
      default: {
        // L2 is logically runnable if it was executing when the pump
        // started, or once any interrupt delivery woke it from HLT.
        bool runnable = l2Running_;
        Lapic &phys = core_.lapic(0);
        for (;;) {
            if (phys.hasPending()) {
                if (l2Running_)
                    exitFromL2(ExitInfo{
                        .reason = ExitReason::ExternalInterrupt});
                int v = phys.ack();
                machine_.consume(machine_.costs().interruptDeliver);
                runIrqHandler(0, v);
                ++total;
                continue;
            }
            if (vcpuL1_->lapic().hasPending()) {
                if (l2Running_)
                    exitFromL2(ExitInfo{
                        .reason = ExitReason::ExternalInterrupt});
                int n = deliverL1Irqs();
                total += n;
                if (l2DeliveredVector_ >= 0)
                    runnable = true;
                continue;
            }
            if (config_.postedInterrupts &&
                (vcpuL2InL1_->lapic().hasPosted() ||
                 vcpuL2InL1_->lapic().hasPending())) {
                if (l2Running_) {
                    // Rung 1 of the exit-elision ladder: the
                    // notification lands on the running L2 without a
                    // nested exit.
                    total += deliverPostedToL2();
                    runnable = true;
                    continue;
                }
                // L2 halted: nothing recognizes the notification, so
                // sync the PIR into the IRR and fall through to the
                // conventional injection path below (no interrupt is
                // ever lost to a halted vCPU).
                vcpuL2InL1_->lapic().syncPosted();
            }
            if (vcpuL2InL1_->lapic().hasPending()) {
                if (l2Running_)
                    exitFromL2(ExitInfo{
                        .reason = ExitReason::ExternalInterrupt});
                enterL1Window();
                total += maybeInjectAndResumeL2(runnable);
                if (l2DeliveredVector_ >= 0)
                    runnable = true;
                continue;
            }
            break;
        }
        if (runnable && !l2Running_)
            resumeL2();
        break;
      }
    }
    pumping_ = false;
    return total;
}

int
VirtStack::deliverL1Irqs()
{
    // Precondition: L0 in control (L2 exited).
    enterL1Window();
    int n = 0;
    int v;
    const CostModel &costs = machine_.costs();
    while ((v = vcpuL1_->lapic().ack()) >= 0) {
        machine_.consume(costs.interruptDeliver);
        runIrqHandler(1, v);
        machine_.consume(costs.eoiWrite);
        ++n;
    }
    // Piggyback injection of any L2 vectors the handlers raised;
    // otherwise the L1 vCPU idles again.
    n += maybeInjectAndResumeL2(/*l2_was_running=*/false);
    return n;
}

int
VirtStack::deliverPostedToL2()
{
    if (!l2Running_)
        panic("deliverPostedToL2 with L2 halted");
    const CostModel &costs = machine_.costs();
    Lapic &apic = vcpuL2InL1_->lapic();
    // The notification microcode scans the descriptor and merges the
    // PIR into the IRR; delivery then goes through the guest IDT with
    // no VM exit at any level.
    apic.syncPosted();
    int n = 0;
    int v;
    while ((v = apic.ack()) >= 0) {
        machine_.consume(costs.postedIntrNotify +
                         costs.interruptDeliver);
        elidedExitMetric_.inc();
        l2DeliveredVector_ = v;
        runIrqHandler(2, v);
        // x2APIC-virtualized EOI: the write is satisfied from the
        // virtual-APIC page, so the trap-to-L1-to-L0 round is elided.
        machine_.consume(costs.virtApicEoi);
        elidedEoiMetric_.inc();
        ++n;
        if (!l2Running_)
            break;
        // The handler may have completed more I/O and posted again.
        apic.syncPosted();
    }
    return n;
}

int
VirtStack::pumpNative()
{
    int total = 0;
    Lapic &phys = core_.lapic(0);
    const CostModel &costs = machine_.costs();
    int v;
    while ((v = phys.ack()) >= 0) {
        machine_.consume(costs.interruptDeliver);
        runIrqHandler(0, v);
        machine_.consume(costs.eoiWrite);
        l2DeliveredVector_ = v;
        ++total;
    }
    return total;
}

int
VirtStack::pumpSingle()
{
    int total = 0;
    Lapic &phys = core_.lapic(0);
    VmxEngine &e0 = *engines_[0];
    const CostModel &costs = machine_.costs();
    bool was_running = singleGuestRunning_;
    for (;;) {
        if (phys.hasPending()) {
            if (singleGuestRunning_) {
                machine_.consume(costs.thunkRegSave * costs.thunkRegs);
                e0.vmexit(ExitInfo{
                    .reason = ExitReason::ExternalInterrupt});
                singleGuestRunning_ = false;
            }
            int v = phys.ack();
            machine_.consume(costs.interruptDeliver);
            runIrqHandler(0, v);
            ++total;
            continue;
        }
        if (vcpuL1_->lapic().hasPending()) {
            // Inject into the (single-level) guest and resume it.
            if (singleGuestRunning_) {
                machine_.consume(costs.thunkRegSave * costs.thunkRegs);
                e0.vmexit(ExitInfo{
                    .reason = ExitReason::ExternalInterrupt});
                singleGuestRunning_ = false;
            }
            int v = vcpuL1_->lapic().ack();
            machine_.consume(costs.injectPrepare);
            e0.vmwrite(VmcsField::EntryIntrInfo,
                       static_cast<std::uint64_t>(v));
            e0.vmentry(false);
            machine_.consume(costs.thunkRegRestore * costs.thunkRegs);
            singleGuestRunning_ = true;
            machine_.consume(costs.interruptDeliver);
            l2DeliveredVector_ = v;
            runIrqHandler(1, v);
            machine_.consume(costs.eoiWrite);
            ++total;
            continue;
        }
        break;
    }
    if (was_running && !singleGuestRunning_) {
        // Resume the guest if an external-interrupt exit stranded it
        // in L0 (a halted guest only resumes through injection).
        e0.vmentry(false);
        machine_.consume(costs.thunkRegRestore * costs.thunkRegs);
        singleGuestRunning_ = true;
    }
    return total;
}

// ------------------------------------------------------------ NativeApi

void
NativeApi::compute(Ticks t)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(t);
}

CpuidResult
NativeApi::cpuid(std::uint64_t leaf)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(stack_.machine_.costs().cpuidExec);
    return db_.query(leaf);
}

std::uint64_t
NativeApi::rdmsr(std::uint32_t index)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(stack_.machine_.costs().msrNative);
    auto it = msrs_.find(index);
    return it == msrs_.end() ? 0 : it->second;
}

void
NativeApi::wrmsr(std::uint32_t index, std::uint64_t value)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(stack_.machine_.costs().msrNative);
    if (index == msr::ia32TscDeadline) {
        if (value == 0)
            stack_.core_.lapic(0).cancelTscDeadline();
        else
            stack_.core_.lapic(0).armTscDeadline(
                static_cast<Ticks>(value), vec::hostTimer);
        return;
    }
    msrs_[index] = value;
}

std::uint64_t
NativeApi::mmioRead(Gpa addr, int size)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(stack_.machine_.costs().llcAccess);
    for (const auto &r : stack_.l0Mmio_) {
        if (addr >= r.base && addr < r.base + r.size)
            return r.handler(addr, size, 0, false);
    }
    panic("NativeApi: MMIO read of unmapped address %#llx",
          static_cast<unsigned long long>(addr));
}

void
NativeApi::mmioWrite(Gpa addr, int size, std::uint64_t value)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(stack_.machine_.costs().llcAccess);
    for (const auto &r : stack_.l0Mmio_) {
        if (addr >= r.base && addr < r.base + r.size) {
            r.handler(addr, size, value, true);
            return;
        }
    }
    panic("NativeApi: MMIO write to unmapped address %#llx",
          static_cast<unsigned long long>(addr));
}

void
NativeApi::ioOut(std::uint16_t port, std::uint64_t value)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(stack_.machine_.costs().llcAccess);
    auto it = stack_.l0IoPorts_.find(port);
    if (it != stack_.l0IoPorts_.end())
        it->second(port, value, true);
}

std::uint64_t
NativeApi::ioIn(std::uint16_t port)
{
    stack_.pumpInterrupts();
    stack_.machine_.consume(stack_.machine_.costs().llcAccess);
    auto it = stack_.l0IoPorts_.find(port);
    if (it != stack_.l0IoPorts_.end())
        return it->second(port, 0, false);
    return ~0ULL;
}

std::uint64_t
NativeApi::vmcall(std::uint64_t, std::uint64_t, std::uint64_t)
{
    panic("NativeApi: vmcall on bare metal");
}

int
NativeApi::halt()
{
    for (;;) {
        stack_.l2DeliveredVector_ = -1;
        stack_.pumpInterrupts();
        if (stack_.l2DeliveredVector_ >= 0)
            return stack_.l2DeliveredVector_;
        Ticks next = stack_.machine_.events().nextEventTime();
        if (next == maxTick)
            panic("NativeApi::halt with no pending events (workload "
                  "deadlock)");
        stack_.machine_.idleUntil(next);
    }
}

int
NativeApi::pollInterrupt()
{
    stack_.l2DeliveredVector_ = -1;
    stack_.pumpInterrupts();
    return stack_.l2DeliveredVector_;
}

} // namespace svtsim
