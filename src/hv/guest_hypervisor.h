/**
 * @file
 * The guest hypervisor (L1): the KVM-like kernel that believes it runs
 * on bare hardware and services its nested VM's (L2's) traps.
 *
 * The handler logic is written once and runs identically in the
 * nested baseline, SW SVt (on the SVt-thread) and HW SVt; only the
 * L1Backend implementation differs, which is exactly the paper's
 * claim that hypervisor changes for SVt are modest (Section 5.1).
 */

#ifndef SVTSIM_HV_GUEST_HYPERVISOR_H
#define SVTSIM_HV_GUEST_HYPERVISOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "arch/cost_model.h"
#include "arch/regs.h"
#include "hv/cpuid_db.h"
#include "hv/guest_api.h"
#include "virt/ept.h"
#include "virt/exit_reason.h"
#include "virt/vmcs.h"

namespace svtsim {

/**
 * Mechanism interface the L1 handler code uses to reach its guest's
 * (L2's) state and to finish an exit. Implementations:
 *
 *  - nested baseline / SW SVt: in-memory vCPU cache synced by L0 plus
 *    vmread/vmwrite that hit the shadow VMCS or trap to L0;
 *  - HW SVt: ctxtld/ctxtst into the L2 hardware context.
 */
class L1Backend
{
  public:
    virtual ~L1Backend() = default;

    /** Read a field of vmcs01' (L1's VMCS for L2). */
    virtual std::uint64_t vmcsRead(VmcsField field) = 0;

    /** Write a field of vmcs01'. */
    virtual void vmcsWrite(VmcsField field, std::uint64_t value) = 0;

    /** Read one of L2's general-purpose registers. */
    virtual std::uint64_t l2Gpr(Gpr reg) = 0;

    /** Write one of L2's general-purpose registers. */
    virtual void setL2Gpr(Gpr reg, std::uint64_t value) = 0;

    /** L1 handler compute time (charged to the L1 handler stage). */
    virtual void compute(Ticks t) = 0;

    /** The GuestApi of L1 itself (for vhost-side device work, timer
     *  reprogramming, kicks of L1's own virtio devices). */
    virtual GuestApi &l1Api() = 0;

    /** Cost model, for charging handler logic time. */
    virtual const CostModel &costs() const = 0;
};

/** Handler for an L2 MMIO access emulated by L1 (virtio backends). */
using L1MmioHandler = std::function<std::uint64_t(
    Gpa addr, int size, std::uint64_t value, bool is_write)>;

/** Handler for an L2 hypercall into L1. */
using L1HypercallHandler = std::function<std::uint64_t(
    std::uint64_t a0, std::uint64_t a1)>;

/** Handler for an L2 port I/O access emulated by L1. */
using L1IoPortHandler = std::function<std::uint64_t(
    std::uint16_t port, std::uint64_t value, bool is_write)>;

/**
 * The L1 (guest) hypervisor's exit-handling logic for its nested VM.
 */
class GuestHypervisor
{
  public:
    /**
     * @param cpuid_view The cpuid table L1 exposes to L2.
     */
    explicit GuestHypervisor(CpuidDb cpuid_view);

    /**
     * Handle one VM trap from L2. Runs the real vmread/vmwrite and
     * register-access sequences through @p backend; every step costs
     * modeled time through the backend.
     *
     * @return True if the exit was handled and L2 should resume;
     *         false if L2 halted (Hlt exit).
     */
    bool handleNestedExit(const ExitInfo &info, L1Backend &backend);

    /** Register an emulated-device MMIO region for L2. */
    void registerMmio(Gpa base, std::uint64_t size,
                      L1MmioHandler handler);

    /** Register a hypercall number. */
    void registerHypercall(std::uint64_t nr, L1HypercallHandler handler);

    /** Register an emulated I/O port for L2. */
    void registerIoPort(std::uint16_t port, L1IoPortHandler handler);

    /** L2's extended page table as maintained by L1 (ept12/vmcs12's
     *  EPT in the paper's naming). */
    Ept &ept() { return ept12_; }

    /** MSR values L1 emulates for L2 (non-passthrough set). */
    void setMsr(std::uint32_t index, std::uint64_t value);

    /**
     * MSR-bitmap passthrough: accesses to these MSRs do not exit (the
     * combined L0/L1 MSR bitmaps permit them); the guest reads and
     * writes the hardware registers directly. Defaults to the FS/GS
     * base family, like KVM.
     */
    bool msrPassthrough(std::uint32_t index) const;
    void setMsrPassthrough(std::uint32_t index, bool passthrough);

    /**
     * Wire the callback used to raise a virtual interrupt for L2 (the
     * VirtStack provides it at assembly time).
     */
    void wireL2IrqRaiser(std::function<void(std::uint8_t)> raiser);

    /**
     * L1's local timer fired: forward the timer interrupt to L2 (the
     * virtual TSC-deadline mechanism). Registered by VirtStack as the
     * handler for vec::l1Timer.
     */
    void onL1TimerFired();

    /** Number of exits this hypervisor handled, per reason. */
    std::uint64_t handledCount(ExitReason reason) const;

  private:
    void handleCpuid(L1Backend &backend);
    void handleRdmsr(L1Backend &backend);
    void handleWrmsr(L1Backend &backend, const ExitInfo &info);
    void handleMmio(L1Backend &backend, const ExitInfo &info);
    void handleIoInstruction(L1Backend &backend, const ExitInfo &info);
    void handleEptViolation(L1Backend &backend, const ExitInfo &info);
    void handleVmcall(L1Backend &backend);

    /** Advance L2's RIP past the trapped instruction. */
    void skipInstruction(L1Backend &backend);

    /** The event-injection housekeeping every KVM exit handler runs:
     *  touches the (non-shadowable) VM-entry interruption field, which
     *  is the L1->L0 trap Algorithm 1 folds into stage 5. */
    void eventInjectionHousekeeping(L1Backend &backend);

    CpuidDb cpuidView_;
    Ept ept12_;
    std::map<std::uint32_t, std::uint64_t> msrs_;
    std::set<std::uint32_t> passthroughMsrs_;
    std::map<std::uint64_t, L1HypercallHandler> hypercalls_;
    std::map<std::uint16_t, L1IoPortHandler> ioPorts_;
    std::function<void(std::uint8_t)> raiseL2Irq_;
    /** Whether L2 armed its TSC-deadline timer (pending forward). */
    bool l2TimerArmed_ = false;

    struct MmioRegion
    {
        Gpa base;
        std::uint64_t size;
        L1MmioHandler handler;
    };
    std::vector<MmioRegion> mmio_;

    std::array<std::uint64_t,
               static_cast<std::size_t>(ExitReason::NumReasons)>
        handled_{};
};

} // namespace svtsim

#endif // SVTSIM_HV_GUEST_HYPERVISOR_H
