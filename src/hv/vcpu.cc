#include "hv/vcpu.h"

namespace svtsim {

namespace {

int nextVcpuApicId = 1000;

} // namespace

Vcpu::Vcpu(Machine &machine, std::string name)
    : name_(std::move(name)),
      lapic_(std::make_unique<Lapic>(machine.events(), machine.costs(),
                                     nextVcpuApicId++))
{
}

} // namespace svtsim
