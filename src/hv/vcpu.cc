#include "hv/vcpu.h"

namespace svtsim {

Vcpu::Vcpu(Machine &machine, std::string name)
    : name_(std::move(name)),
      lapic_(std::make_unique<Lapic>(machine.events(), machine.costs(),
                                     machine.allocApicId(),
                                     &machine.metrics()))
{
}

} // namespace svtsim
