#include "workloads/tenant_drivers.h"

#include <algorithm>

namespace svtsim {

OpenLoopEtcLoadgen::OpenLoopEtcLoadgen(Machine &machine,
                                       std::uint64_t seed)
    : machine_(machine), seed_(seed)
{}

int
OpenLoopEtcLoadgen::addFlow(NetPort &port, double qps)
{
    const std::uint64_t seed = seed_ + flows_.size();
    flows_.push_back(std::make_unique<Flow>(port, qps, seed));
    return static_cast<int>(flows_.size()) - 1;
}

void
OpenLoopEtcLoadgen::arm(Flow &flow, Ticks end)
{
    Machine &m = machine_;
    const Ticks gap = std::max<Ticks>(
        static_cast<Ticks>(flow.rng.exponential(1e12 / flow.qps)), 1);
    const Ticks when = m.now() + gap;
    if (when >= end)
        return;
    m.events().schedule(when, [this, &flow, end] {
        Machine &mm = machine_;
        const std::uint64_t id = flow.nextId++;
        const bool get = flow.etc.isGet(flow.rng);
        const std::uint32_t vsize = flow.etc.sampleValueSize(flow.rng);
        const std::uint32_t req_bytes =
            flow.etc.sampleKeySize(flow.rng) + (get ? 24 : 24 + vsize);
        flow.inflight[id] = mm.now();
        ++flow.stats.sent;
        flow.port.send(NetPacket{
            id, req_bytes,
            (static_cast<std::uint64_t>(vsize) << 1) | (get ? 1 : 0)});
        arm(flow, end);
    }, "mutilate-arrival");
}

void
OpenLoopEtcLoadgen::run(Ticks duration, Ticks grace)
{
    Machine &m = machine_;
    const Ticks end = m.now() + duration;
    for (auto &flowp : flows_) {
        Flow &flow = *flowp;
        flow.port.setReceiveHandler([&flow, &m](NetPacket pkt) {
            auto it = flow.inflight.find(pkt.id);
            if (it != flow.inflight.end()) {
                flow.stats.latency.add(toUsec(m.now() - it->second));
                flow.inflight.erase(it);
                ++flow.stats.completed;
            }
        });
        arm(flow, end);
    }
    const Ticks drained = end + grace;
    while (m.now() < drained)
        m.idleUntil(drained);
    for (auto &flowp : flows_)
        flowp->port.setReceiveHandler([](NetPacket) {});
}

} // namespace svtsim
