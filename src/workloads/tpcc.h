/**
 * @file
 * sysbench-TPCC over a PostgreSQL-like server (Section 6.3.2): a
 * closed-loop client on the peer machine drives transactions against
 * a database in the nested guest; every statement is a network round
 * trip, commits write and flush the WAL through the virtio disk.
 */

#ifndef SVTSIM_WORKLOADS_TPCC_H
#define SVTSIM_WORKLOADS_TPCC_H

#include <deque>

#include "hv/virt_stack.h"
#include "io/net_fabric.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "sim/random.h"

namespace svtsim {

/** Result of a TPC-C run. */
struct TpccResult
{
    double tpm = 0;
    std::uint64_t transactions = 0;
    double meanTxnMsec = 0;
};

/** Shape of one TPC-C transaction type. */
struct TpccTxnProfile
{
    const char *name;
    /** Mix weight (percent). */
    int weight;
    /** Client-server statement round trips. */
    int statements;
    /** Buffer-cache misses served from the virtio disk. */
    int diskReads;
    /** Data page writes beyond the WAL (checkpoint amortization). */
    int diskWrites;
    /** Mean per-statement server CPU. */
    Ticks statementCpu;
};

/**
 * The TPC-C benchmark harness: database server at the top level of
 * the stack, closed-loop client on the peer.
 */
class Tpcc
{
  public:
    /**
     * @param l1_housekeeping_per_statement Load-proportional L1-kernel
     *        work (vhost bookkeeping on the paired vCPU) per statement;
     *        serial in the baseline, overlapped under SW SVt.
     * @param cpu_scale Multiplier on per-statement server CPU (the
     *        fleet scheduler uses it to model SMT-sibling contention
     *        under the sibling-share policy).
     */
    Tpcc(VirtStack &stack, VirtioNetStack &net, NetFabric &fabric,
         VirtioBlkStack &blk, std::uint64_t seed = 7,
         double l1_housekeeping_per_statement = 4.5,
         Ticks l1_housekeeping_cost = usec(13),
         double cpu_scale = 1.0);

    /** Run for @p duration; returns throughput in transactions/min. */
    TpccResult run(Ticks duration);

    /** The standard transaction mix. */
    static const TpccTxnProfile *profiles(int &count);

  private:
    VirtStack &stack_;
    VirtioNetStack &net_;
    NetFabric &fabric_;
    VirtioBlkStack &blk_;
    Rng rng_;
    double housekeepingPerStatement_;
    Ticks housekeepingCost_;
    double cpuScale_;
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_TPCC_H
