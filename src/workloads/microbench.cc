#include "workloads/microbench.h"

namespace svtsim {

MicrobenchResult
CpuidMicrobench::run(Machine &machine, GuestApi &api, int reg_ops,
                     ConfidenceRunner runner)
{
    // Warm up: first-touch faults and lazy state loads.
    for (int i = 0; i < 4; ++i)
        api.cpuid(1);

    auto result = runner.run([&]() -> double {
        Ticks t0 = machine.now();
        api.compute(machine.costs().regOp * reg_ops);
        api.cpuid(1);
        return toUsec(machine.now() - t0);
    });

    MicrobenchResult r;
    r.meanUsec = result.mean;
    r.stddevUsec = result.stddev;
    r.samples = result.accepted;
    r.converged = result.converged;
    return r;
}

} // namespace svtsim
