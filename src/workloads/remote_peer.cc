#include "workloads/remote_peer.h"

#include <algorithm>
#include <unordered_map>

#include "sim/log.h"
#include "stats/summary.h"
#include "workloads/guest_os.h"

namespace svtsim {

NetserverPeer::NetserverPeer(Machine &machine, NetPort &port)
    : machine_(machine), port_(port)
{
    port_.setReceiveHandler(
        [this](NetPacket pkt) { onRequest(pkt); });
}

void
NetserverPeer::onRequest(NetPacket pkt)
{
    ++received_;
    switch (peerwire::tagOf(pkt.payload)) {
      case peerwire::rrTag: {
        const auto resp_bytes =
            static_cast<std::uint32_t>(peerwire::argOf(pkt.payload));
        machine_.events().scheduleIn(
            machine_.costs().remotePeerTurnaround,
            [this, pkt, resp_bytes] {
                port_.send(NetPacket{pkt.id, resp_bytes, pkt.payload});
            },
            "netserver-rr");
        break;
      }
      case peerwire::streamTag: {
        ++streamRxed_;
        const auto ack_every = peerwire::argOf(pkt.payload);
        if (ack_every == 0)
            panic("NetserverPeer: STREAM segment with ack_every=0");
        if (streamRxed_ % ack_every == 0) {
            // Delayed ack + NIC interrupt moderation, as in the
            // single-machine peer model.
            const std::uint64_t acked = streamRxed_;
            machine_.events().scheduleIn(
                usec(2),
                [this, acked] {
                    port_.send(NetPacket{acked, 60, acked});
                },
                "netserver-ack");
        }
        break;
      }
      default:
        panic("NetserverPeer: packet with unknown wire tag %llu",
              static_cast<unsigned long long>(
                  peerwire::tagOf(pkt.payload)));
    }
}

ClusterNetperf::ClusterNetperf(VirtStack &stack, VirtioNetStack &net)
    : stack_(stack), net_(net)
{
}

NetperfRrResult
ClusterNetperf::runRr(std::uint32_t req_bytes,
                      std::uint32_t resp_bytes, int transactions)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    std::uint64_t received = 0;
    net_.setRxHandler([&](NetPacket) { ++received; });

    Percentiles lat;
    const std::uint64_t payload = peerwire::rrRequest(resp_bytes);
    // One warm-up transaction outside the measurement.
    int total = transactions + 1;
    for (int i = 0; i < total; ++i) {
        std::uint64_t want = received + 1;
        Ticks t0 = machine.now();
        net_.send(req_bytes, static_cast<std::uint64_t>(i), payload);
        GuestOs::idleWait(api, [&] { return received >= want; });
        if (i > 0)
            lat.add(toUsec(machine.now() - t0));
    }
    // The machine keeps running as a cluster follower after the
    // driver returns; nothing may reference this frame.
    net_.setRxHandler([](NetPacket) {});

    NetperfRrResult r;
    r.meanUsec = lat.mean();
    r.p99Usec = lat.p99();
    r.transactions = lat.count();
    return r;
}

NetperfStreamResult
ClusterNetperf::runStream(std::uint32_t seg_bytes, Ticks duration,
                          int window, int ack_every)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();
    if (window < ack_every)
        fatal("netperf stream window must cover the ack interval");

    std::uint64_t acked = 0;
    net_.setRxHandler([&](NetPacket pkt) {
        // Cumulative acknowledgement from the remote netserver.
        if (pkt.payload > acked)
            acked = pkt.payload;
    });

    const std::uint64_t payload = peerwire::streamSegment(
        static_cast<std::uint32_t>(ack_every));
    Ticks end = machine.now() + duration;
    std::uint64_t sent = 0;
    while (machine.now() < end) {
        if (sent - acked < static_cast<std::uint64_t>(window)) {
            net_.send(seg_bytes, sent, payload);
            ++sent;
        } else {
            std::uint64_t limit = sent;
            GuestOs::idleWait(api, [&] {
                return machine.now() >= end ||
                       limit - acked <
                           static_cast<std::uint64_t>(window);
            });
        }
    }
    net_.setRxHandler([](NetPacket) {});

    NetperfStreamResult r;
    r.segments = acked;
    double bits = static_cast<double>(acked) *
                  static_cast<double>(seg_bytes) * 8.0;
    r.mbps = bits / toSec(duration) / 1e6;
    return r;
}

MutilateClient::MutilateClient(Machine &machine, NetPort &port,
                               std::uint64_t seed)
    : machine_(machine), port_(port), rng_(seed)
{
}

MemcachedPoint
MutilateClient::runLoad(double qps, Ticks duration)
{
    Machine &m = machine_;

    std::unordered_map<std::uint64_t, Ticks> sent;
    Percentiles lat;
    std::uint64_t completed = 0;

    Ticks t0 = m.now();
    Ticks end = t0 + duration;

    // mutilate measures the full round trip at the client.
    port_.setReceiveHandler([&](NetPacket pkt) {
        auto it = sent.find(pkt.id);
        if (it != sent.end()) {
            lat.add(toUsec(m.now() - it->second));
            sent.erase(it);
            ++completed;
        }
    });

    // Open-loop Poisson arrival process; each arrival samples the ETC
    // distributions and ships the value size in the payload.
    std::function<void()> arm = [&] {
        Ticks gap = static_cast<Ticks>(rng_.exponential(1e12 / qps));
        Ticks when = m.now() + std::max<Ticks>(gap, 1);
        if (when >= end)
            return;
        m.events().schedule(when, [&] {
            std::uint64_t id = nextId_++;
            bool get = etc_.isGet(rng_);
            std::uint32_t vsize = etc_.sampleValueSize(rng_);
            std::uint32_t req_bytes =
                etc_.sampleKeySize(rng_) + (get ? 24 : 24 + vsize);
            sent[id] = m.now();
            port_.send(NetPacket{
                id, req_bytes,
                (static_cast<std::uint64_t>(vsize) << 1) |
                    (get ? 1 : 0)});
            arm();
        }, "mutilate-arrival");
    };
    arm();

    // Idle through the run plus the drain grace (requests dropped
    // under overload never complete; the grace bounds the wait).
    // Under a cluster gate idleUntil can return early at an epoch
    // boundary, so loop until the clock really arrives.
    const Ticks grace = end + msec(5);
    while (m.now() < grace)
        m.idleUntil(grace);
    port_.setReceiveHandler([](NetPacket) {});

    MemcachedPoint point;
    point.offeredQps = qps;
    point.completed = completed;
    point.achievedQps =
        static_cast<double>(completed) / toSec(m.now() - t0);
    if (lat.count()) {
        point.avgUsec = lat.mean();
        point.p99Usec = lat.p99();
    }
    return point;
}

MemcachedServer::MemcachedServer(VirtStack &stack, VirtioNetStack &net,
                                 std::uint64_t seed,
                                 double l1_housekeeping_rate_hz,
                                 Ticks l1_housekeeping_cost,
                                 double l1_housekeeping_per_request)
    : stack_(stack), net_(net), rng_(seed),
      housekeepingRate_(l1_housekeeping_rate_hz),
      housekeepingCost_(l1_housekeeping_cost),
      housekeepingPerRequest_(l1_housekeeping_per_request)
{
}

void
MemcachedServer::scheduleHousekeeping(Ticks end)
{
    if (housekeepingRate_ <= 0)
        return;
    Machine &m = stack_.machine();
    Ticks gap = static_cast<Ticks>(
        rng_.exponential(1e12 / housekeepingRate_));
    Ticks when = m.now() + std::max<Ticks>(gap, 1);
    if (when >= end)
        return;
    m.events().schedule(when, [this, end] {
        stack_.postL1Housekeeping(housekeepingCost_);
        scheduleHousekeeping(end);
    }, "l1-housekeeping");
}

std::uint64_t
MemcachedServer::serveUntil(Ticks end)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    inbox_.clear();
    std::uint64_t served = 0;

    // Requests land in the connection inbox under the receive
    // interrupt; each also triggers the load-proportional L1-kernel
    // work (vhost bookkeeping on the paired vCPU).
    net_.setRxHandler([this](NetPacket pkt) {
        inbox_.push_back(Request{pkt.id, (pkt.payload & 1) != 0,
                                 static_cast<std::uint32_t>(
                                     pkt.payload >> 1)});
        double events = housekeepingPerRequest_;
        while (events >= 1.0 || rng_.chance(events)) {
            stack_.postL1Housekeeping(housekeepingCost_);
            events -= 1.0;
            if (events <= 0)
                break;
        }
    });
    scheduleHousekeeping(end);

    auto serve_one = [&] {
        Request req = inbox_.front();
        inbox_.pop_front();
        // Parse + hash lookup + LRU bookkeeping + value access.
        Ticks service = usec(1.6) +
                        static_cast<Ticks>(req.valueBytes) * psec(40);
        if (!req.get)
            service += usec(1.1); // allocation + store
        api.compute(service);
        std::uint32_t resp_bytes = req.get ? 28 + req.valueBytes : 28;
        net_.send(resp_bytes, req.id);
        ++served;
    };
    while (machine.now() < end) {
        if (inbox_.empty()) {
            GuestOs::idleWait(api, [&] {
                return !inbox_.empty() || machine.now() >= end;
            });
            continue;
        }
        serve_one();
    }
    // Drain the backlog and keep serving stragglers through a grace
    // period so late in-flight requests still get responses.
    while (!inbox_.empty())
        serve_one();
    Ticks grace = machine.now() + msec(5);
    GuestOs::idleWait(api, [&] {
        while (!inbox_.empty())
            serve_one();
        return machine.now() >= grace;
    });
    net_.setRxHandler([](NetPacket) {});
    return served;
}

} // namespace svtsim
