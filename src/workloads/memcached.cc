#include "workloads/memcached.h"

#include <algorithm>
#include <unordered_map>

#include "workloads/guest_os.h"

namespace svtsim {

std::uint32_t
EtcWorkload::sampleValueSize(Rng &rng) const
{
    double v = rng.generalizedPareto(valueLocation, valueScale,
                                     valueShape);
    auto bytes = static_cast<std::uint32_t>(std::max(1.0, v));
    return std::min(bytes, valueCap);
}

std::uint32_t
EtcWorkload::sampleKeySize(Rng &rng) const
{
    return keyMin + static_cast<std::uint32_t>(
                        rng.below(keyMax - keyMin + 1));
}

MemcachedBench::MemcachedBench(VirtStack &stack, VirtioNetStack &net,
                               NetFabric &fabric, std::uint64_t seed,
                               double l1_housekeeping_rate_hz,
                               Ticks l1_housekeeping_cost,
                               double l1_housekeeping_per_request)
    : stack_(stack), net_(net), fabric_(fabric), rng_(seed),
      housekeepingRate_(l1_housekeeping_rate_hz),
      housekeepingCost_(l1_housekeeping_cost),
      housekeepingPerRequest_(l1_housekeeping_per_request)
{
}

void
MemcachedBench::scheduleHousekeeping(Ticks end)
{
    if (housekeepingRate_ <= 0)
        return;
    Machine &m = stack_.machine();
    Ticks gap = static_cast<Ticks>(
        rng_.exponential(1e12 / housekeepingRate_));
    Ticks when = m.now() + std::max<Ticks>(gap, 1);
    if (when >= end)
        return;
    m.events().schedule(when, [this, end] {
        stack_.postL1Housekeeping(housekeepingCost_);
        scheduleHousekeeping(end);
    }, "l1-housekeeping");
}

MemcachedPoint
MemcachedBench::runLoad(double qps, Ticks duration)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    // Client-side bookkeeping (lives on the peer machine).
    std::unordered_map<std::uint64_t, Ticks> sent;
    Percentiles lat;
    std::uint64_t completed = 0;

    Ticks t0 = machine.now();
    Ticks end = t0 + duration;

    // mutilate measures the full round trip of each request at the
    // client.
    fabric_.setPeerHandler([&](NetPacket pkt) {
        auto it = sent.find(pkt.id);
        if (it != sent.end()) {
            lat.add(toUsec(machine.now() - it->second));
            sent.erase(it);
            ++completed;
        }
    });

    // Server side: requests land in the connection inbox under the
    // receive interrupt; the serving loop below drains it.
    inbox_.clear();
    net_.setRxHandler([&](NetPacket pkt) {
        inbox_.push_back(Request{pkt.id, (pkt.payload & 1) != 0,
                                 static_cast<std::uint32_t>(
                                     pkt.payload >> 1)});
    });

    // Open-loop Poisson arrival process at the client.
    std::function<void()> arm = [&] {
        Ticks gap = static_cast<Ticks>(rng_.exponential(1e12 / qps));
        Ticks when = machine.now() + std::max<Ticks>(gap, 1);
        if (when >= end)
            return;
        machine.events().schedule(when, [&] {
            std::uint64_t id = nextId_++;
            bool get = etc_.isGet(rng_);
            std::uint32_t vsize = etc_.sampleValueSize(rng_);
            std::uint32_t req_bytes =
                etc_.sampleKeySize(rng_) + (get ? 24 : 24 + vsize);
            sent[id] = machine.now();
            fabric_.sendToLocal(NetPacket{
                id, req_bytes,
                (static_cast<std::uint64_t>(vsize) << 1) |
                    (get ? 1 : 0)});
            // Load-proportional L1-kernel work triggered by serving
            // this request (vhost bookkeeping on the paired vCPU).
            double events = housekeepingPerRequest_;
            while (events >= 1.0 || rng_.chance(events)) {
                stack_.postL1Housekeeping(housekeepingCost_);
                events -= 1.0;
                if (events <= 0)
                    break;
            }
            arm();
        }, "mutilate-arrival");
    };
    arm();
    scheduleHousekeeping(end);

    // The memcached serving loop in the guest.
    auto serve_one = [&] {
        Request req = inbox_.front();
        inbox_.pop_front();
        // Parse + hash lookup + LRU bookkeeping + value access.
        Ticks service = usec(1.6) +
                        static_cast<Ticks>(req.valueBytes) * psec(40);
        if (!req.get)
            service += usec(1.1); // allocation + store
        api.compute(service);
        std::uint32_t resp_bytes = req.get ? 28 + req.valueBytes : 28;
        net_.send(resp_bytes, req.id);
    };
    while (machine.now() < end) {
        if (inbox_.empty()) {
            GuestOs::idleWait(api, [&] {
                return !inbox_.empty() || machine.now() >= end;
            });
            continue;
        }
        serve_one();
    }
    // Drain: serve the backlog and wait for in-flight responses so no
    // event references this invocation's state after it returns.
    // Requests dropped under overload never complete, so the wait is
    // bounded by a grace period.
    while (!inbox_.empty())
        serve_one();
    Ticks grace = machine.now() + msec(5);
    GuestOs::idleWait(api, [&] {
        while (!inbox_.empty())
            serve_one();
        return sent.empty() || machine.now() >= grace;
    });
    fabric_.setPeerHandler([](NetPacket) {});
    net_.setRxHandler([](NetPacket) {});

    MemcachedPoint point;
    point.offeredQps = qps;
    point.completed = completed;
    point.achievedQps =
        static_cast<double>(completed) / toSec(machine.now() - t0);
    if (lat.count()) {
        point.avgUsec = lat.mean();
        point.p99Usec = lat.p99();
    }
    return point;
}

} // namespace svtsim
