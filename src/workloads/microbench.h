/**
 * @file
 * The Section 6.1 micro-benchmark: a loop with the operation under
 * scrutiny surrounded by dependent register increments simulating a
 * variable workload, repeated to the paper's confidence criterion.
 */

#ifndef SVTSIM_WORKLOADS_MICROBENCH_H
#define SVTSIM_WORKLOADS_MICROBENCH_H

#include "arch/machine.h"
#include "hv/guest_api.h"
#include "stats/confidence.h"

namespace svtsim {

/** Result of a micro-benchmark run. */
struct MicrobenchResult
{
    double meanUsec = 0;
    double stddevUsec = 0;
    std::uint64_t samples = 0;
    bool converged = false;
};

/** cpuid-latency micro-benchmark. */
class CpuidMicrobench
{
  public:
    /**
     * Measure the latency of one cpuid with @p reg_ops dependent
     * register increments of surrounding workload.
     */
    static MicrobenchResult run(Machine &machine, GuestApi &api,
                                int reg_ops = 0,
                                ConfidenceRunner runner = {});
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_MICROBENCH_H
