#include "workloads/netperf.h"

#include "sim/log.h"
#include "workloads/guest_os.h"

namespace svtsim {

Netperf::Netperf(VirtStack &stack, VirtioNetStack &net,
                 NetFabric &fabric)
    : stack_(stack), net_(net), fabric_(fabric)
{
}

NetperfRrResult
Netperf::runRr(std::uint32_t req_bytes, std::uint32_t resp_bytes,
               int transactions)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    // Peer: netserver echoes a response after its turnaround time.
    fabric_.setPeerHandler([this, resp_bytes,
                            &machine](NetPacket pkt) {
        machine.events().scheduleIn(
            machine.costs().remotePeerTurnaround,
            [this, pkt, resp_bytes] {
                fabric_.sendToLocal(
                    NetPacket{pkt.id, resp_bytes, pkt.payload});
            });
    });

    std::uint64_t received = 0;
    net_.setRxHandler([&](NetPacket) { ++received; });

    Percentiles lat;
    // One warm-up transaction outside the measurement.
    int total = transactions + 1;
    for (int i = 0; i < total; ++i) {
        std::uint64_t want = received + 1;
        Ticks t0 = machine.now();
        net_.send(req_bytes, static_cast<std::uint64_t>(i));
        GuestOs::idleWait(api, [&] { return received >= want; });
        if (i > 0)
            lat.add(toUsec(machine.now() - t0));
    }

    NetperfRrResult r;
    r.meanUsec = lat.mean();
    r.p99Usec = lat.p99();
    r.transactions = lat.count();
    return r;
}

NetperfStreamResult
Netperf::runStream(std::uint32_t seg_bytes, Ticks duration, int window,
                   int ack_every)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();
    if (window < ack_every)
        fatal("Netperf stream window must cover the ack interval");

    // Peer: count segments, send a cumulative ACK every ack_every
    // segments (delayed ack; the NIC's interrupt moderation batches
    // at a similar scale).
    std::uint64_t peer_rxed = 0;
    fabric_.setPeerHandler([this, &peer_rxed, ack_every,
                            &machine](NetPacket) {
        ++peer_rxed;
        if (peer_rxed % static_cast<std::uint64_t>(ack_every) == 0) {
            std::uint64_t acked = peer_rxed;
            machine.events().scheduleIn(usec(2), [this, acked] {
                fabric_.sendToLocal(NetPacket{acked, 60, acked});
            });
        }
    });

    std::uint64_t acked = 0;
    net_.setRxHandler([&](NetPacket pkt) {
        // Cumulative acknowledgement.
        if (pkt.payload > acked)
            acked = pkt.payload;
    });

    Ticks end = machine.now() + duration;
    std::uint64_t sent = 0;
    while (machine.now() < end) {
        if (sent - acked <
            static_cast<std::uint64_t>(window)) {
            net_.send(seg_bytes, sent);
            ++sent;
        } else {
            std::uint64_t limit = sent;
            GuestOs::idleWait(api, [&] {
                return machine.now() >= end ||
                       limit - acked <
                           static_cast<std::uint64_t>(window);
            });
        }
    }

    NetperfStreamResult r;
    r.segments = acked;
    double bits = static_cast<double>(acked) *
                  static_cast<double>(seg_bytes) * 8.0;
    r.mbps = bits / toSec(duration) / 1e6;
    return r;
}

} // namespace svtsim
