#include "workloads/guest_os.h"

#include "arch/regs.h"

namespace svtsim {

void
GuestOs::idleWait(GuestApi &api, const std::function<bool()> &pred,
                  Ticks tick)
{
    while (!pred()) {
        api.wrmsr(msr::ia32TscDeadline,
                  static_cast<std::uint64_t>(api.now() + tick));
        // The wakeup may already have been delivered while arming the
        // watchdog (the arm itself traps, and interrupts are accepted
        // at instruction boundaries): the idle governor re-checks the
        // wake condition before actually halting.
        if (!pred())
            api.halt();
        // Wakeup path: the kernel cancels the idle watchdog before
        // running the woken task.
        api.wrmsr(msr::ia32TscDeadline, 0);
    }
}

} // namespace svtsim
