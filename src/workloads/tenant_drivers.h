/**
 * @file
 * Multi-flow open-loop ETC load generator for fleet scenarios.
 *
 * A memcached tenant in the fleet owns one bare-metal loadgen machine
 * fanned out over one CrossLink per serving slot (the cluster_speed
 * pool, promoted to a reusable driver). Each flow is an independent
 * open-loop Poisson arrival process sampling the ETC request mix;
 * response latency is measured per flow so the tenant rollup can merge
 * the distributions.
 */

#ifndef SVTSIM_WORKLOADS_TENANT_DRIVERS_H
#define SVTSIM_WORKLOADS_TENANT_DRIVERS_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/machine.h"
#include "io/net_port.h"
#include "sim/random.h"
#include "stats/summary.h"
#include "workloads/memcached.h"

namespace svtsim {

/**
 * N open-loop ETC flows on one bare-metal machine. Add one flow per
 * serving slot, then call run() from the machine's cluster driver.
 */
class OpenLoopEtcLoadgen
{
  public:
    /** Per-flow outcome. */
    struct FlowStats
    {
        std::uint64_t sent = 0;
        std::uint64_t completed = 0;
        Percentiles latency;
    };

    OpenLoopEtcLoadgen(Machine &machine, std::uint64_t seed);

    /** Register a flow offering @p qps on @p port; flows are seeded
     *  seed+index. Call before run(). Returns the flow index. */
    int addFlow(NetPort &port, double qps);

    /**
     * Offer every flow's load for @p duration (from the machine's
     * current clock), then idle through @p grace to drain in-flight
     * responses. Synchronous: call from the loadgen machine's cluster
     * driver. Receive handlers are cleared on return.
     */
    void run(Ticks duration, Ticks grace = msec(5));

    int flowCount() const { return static_cast<int>(flows_.size()); }
    const FlowStats &flow(int i) const { return flows_[i]->stats; }

  private:
    struct Flow
    {
        NetPort &port;
        double qps;
        Rng rng;
        EtcWorkload etc;
        std::uint64_t nextId = 1;
        std::unordered_map<std::uint64_t, Ticks> inflight;
        FlowStats stats;

        Flow(NetPort &p, double q, std::uint64_t seed)
            : port(p), qps(q), rng(seed)
        {}
    };

    void arm(Flow &flow, Ticks end);

    Machine &machine_;
    std::uint64_t seed_;
    std::vector<std::unique_ptr<Flow>> flows_;
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_TENANT_DRIVERS_H
