#include "workloads/diskbench.h"

#include <unordered_map>

#include "workloads/guest_os.h"

namespace svtsim {

namespace {

/** 1 GiB test file, in 512 B sectors. */
constexpr std::uint64_t testSectors = (1ULL << 30) / 512;

} // namespace

IoPing::IoPing(VirtStack &stack, VirtioBlkStack &blk)
    : stack_(stack), blk_(blk), rng_(0x10)
{
}

IoPingResult
IoPing::run(std::uint32_t bytes, bool write, int requests)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    std::uint64_t done_id = 0;
    blk_.setCompletionHandler(
        [&](std::uint64_t id) { done_id = id; });

    Percentiles lat;
    int total = requests + 1; // one warm-up
    for (int i = 0; i < total; ++i) {
        Ticks t0 = machine.now();
        // Guest syscall + filesystem path.
        api.compute(machine.costs().guestBlockSyscall);
        std::uint64_t id = nextId_++;
        blk_.submit(id, rng_.below(testSectors), bytes, write);
        GuestOs::idleWait(api, [&] { return done_id == id; });
        if (write) {
            // O_SYNC: a flush request follows the data.
            std::uint64_t flush_id = nextId_++;
            blk_.submit(flush_id, 0, 0, true);
            GuestOs::idleWait(api,
                              [&] { return done_id == flush_id; });
        }
        if (i > 0)
            lat.add(toUsec(machine.now() - t0));
    }

    IoPingResult r;
    r.meanUsec = lat.mean();
    r.p99Usec = lat.p99();
    r.requests = lat.count();
    return r;
}

Fio::Fio(VirtStack &stack, VirtioBlkStack &blk)
    : stack_(stack), blk_(blk), rng_(0x11)
{
}

FioResult
Fio::run(std::uint32_t bytes, bool write, int iodepth, Ticks duration)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    std::uint64_t completed = 0;
    std::unordered_map<std::uint64_t, Ticks> started;
    Summary lat;
    blk_.setCompletionHandler([&](std::uint64_t id) {
        // Only count requests of this run (completions of a previous
        // run's stragglers may still arrive).
        auto it = started.find(id);
        if (it == started.end())
            return;
        lat.add(toUsec(machine.now() - it->second));
        started.erase(it);
        ++completed;
    });

    auto submit_one = [&] {
        api.compute(machine.costs().guestBlockSyscall);
        std::uint64_t id = nextId_++;
        started[id] = machine.now();
        blk_.submit(id, rng_.below(testSectors), bytes, write);
    };

    Ticks t0 = machine.now();
    Ticks end = t0 + duration;
    std::uint64_t submitted = 0;
    for (int i = 0; i < iodepth; ++i) {
        submit_one();
        ++submitted;
    }
    while (machine.now() < end) {
        std::uint64_t before = completed;
        GuestOs::idleWait(api, [&] {
            return completed > before || machine.now() >= end;
        });
        while (submitted - completed <
               static_cast<std::uint64_t>(iodepth) &&
               machine.now() < end) {
            submit_one();
            ++submitted;
        }
    }

    // Drain the in-flight tail so the next run starts clean.
    GuestOs::idleWait(api, [&] { return started.empty(); });

    FioResult r;
    r.operations = completed;
    r.meanLatencyUsec = lat.mean();
    double kb = static_cast<double>(completed) *
                static_cast<double>(bytes) / 1024.0;
    r.kbPerSec = kb / toSec(machine.now() - t0);
    return r;
}

} // namespace svtsim
