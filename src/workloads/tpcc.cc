#include "workloads/tpcc.h"

#include <iterator>

#include <unordered_map>

#include "stats/summary.h"
#include "workloads/guest_os.h"

namespace svtsim {

namespace {

const TpccTxnProfile kProfiles[] = {
    // name, weight, statements, reads, writes, per-statement CPU
    {"new-order", 45, 48, 5, 2, usec(55)},
    {"payment", 43, 26, 3, 1, usec(45)},
    {"order-status", 4, 22, 4, 0, usec(50)},
    {"delivery", 4, 42, 6, 3, usec(60)},
    {"stock-level", 4, 30, 8, 0, usec(65)},
};

} // namespace

const TpccTxnProfile *
Tpcc::profiles(int &count)
{
    count = static_cast<int>(std::size(kProfiles));
    return kProfiles;
}

Tpcc::Tpcc(VirtStack &stack, VirtioNetStack &net, NetFabric &fabric,
           VirtioBlkStack &blk, std::uint64_t seed,
           double l1_housekeeping_per_statement,
           Ticks l1_housekeeping_cost, double cpu_scale)
    : stack_(stack), net_(net), fabric_(fabric), blk_(blk), rng_(seed),
      housekeepingPerStatement_(l1_housekeeping_per_statement),
      housekeepingCost_(l1_housekeeping_cost), cpuScale_(cpu_scale)
{
}

TpccResult
Tpcc::run(Ticks duration)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    // ---- client state machine (on the peer machine) -----------------
    // The closed-loop sysbench client sends the next statement as
    // soon as it receives the previous response.
    std::uint64_t completed_txns = 0;
    Summary txn_ms;
    std::deque<std::uint64_t> pending_queries; // server inbox
    std::uint64_t next_query_id = 1;

    struct ClientState
    {
        const TpccTxnProfile *profile = nullptr;
        int remaining_statements = 0;
        Ticks txn_start = 0;
    } client;

    auto pick_profile = [&]() -> const TpccTxnProfile * {
        int r = static_cast<int>(rng_.below(100));
        int acc = 0;
        for (const auto &p : kProfiles) {
            acc += p.weight;
            if (r < acc)
                return &p;
        }
        return &kProfiles[0];
    };

    auto client_send_statement = [&] {
        std::uint64_t id = next_query_id++;
        fabric_.sendToLocal(NetPacket{id, 180, 0});
        // Load-proportional L1-kernel work triggered by this
        // statement's I/O (vhost bookkeeping on the paired vCPU).
        double events = housekeepingPerStatement_;
        while (events >= 1.0 || rng_.chance(events)) {
            stack_.postL1Housekeeping(housekeepingCost_);
            events -= 1.0;
            if (events <= 0)
                break;
        }
    };

    auto client_begin_txn = [&] {
        client.profile = pick_profile();
        client.remaining_statements = client.profile->statements;
        client.txn_start = machine.now();
        client_send_statement();
    };

    Ticks t0 = machine.now();
    Ticks end = t0 + duration;

    // Client-side events capture this frame by reference. Under a
    // cluster the machine keeps draining its queue as an event
    // follower after this function returns, so any straggler (a
    // statement scheduled just before the loop exited) must become a
    // no-op instead of touching a dead frame.
    auto alive = std::make_shared<bool>(true);

    fabric_.setPeerHandler([&](NetPacket) {
        // A statement response arrived at the client.
        --client.remaining_statements;
        if (client.remaining_statements > 0) {
            machine.events().scheduleIn(usec(25), [&, alive] {
                if (*alive)
                    client_send_statement();
            });
            return;
        }
        // Transaction committed.
        ++completed_txns;
        txn_ms.add(toUsec(machine.now() - client.txn_start) / 1000.0);
        if (machine.now() < end) {
            machine.events().scheduleIn(usec(40), [&, alive] {
                if (*alive)
                    client_begin_txn();
            });
        }
    });

    // ---- server side --------------------------------------------------
    net_.setRxHandler([&](NetPacket pkt) {
        pending_queries.push_back(pkt.id);
    });

    std::uint64_t io_done = 0;
    blk_.setCompletionHandler([&](std::uint64_t) { ++io_done; });
    std::uint64_t next_io_id = 1ULL << 40;

    auto blocking_io = [&](std::uint32_t bytes, bool write) {
        std::uint64_t want = io_done + 1;
        blk_.submit(next_io_id++, rng_.below(1 << 20), bytes, write);
        GuestOs::idleWait(api, [&] { return io_done >= want; });
    };

    client_begin_txn();

    // The database worker: execute each arriving statement; the last
    // statement of a transaction carries the commit work (WAL write
    // plus flush), and buffer-cache misses are spread over the
    // transaction's statements.
    const TpccTxnProfile *server_profile = nullptr;
    int server_stmt_idx = 0;
    while (machine.now() < end || !pending_queries.empty()) {
        if (pending_queries.empty()) {
            if (machine.now() >= end)
                break;
            GuestOs::idleWait(api, [&] {
                return !pending_queries.empty() ||
                       machine.now() >= end;
            });
            continue;
        }
        std::uint64_t id = pending_queries.front();
        pending_queries.pop_front();

        if (!server_profile) {
            server_profile = client.profile;
            server_stmt_idx = 0;
        }
        // Parse/plan/execute.
        api.compute(static_cast<Ticks>(
            server_profile->statementCpu * cpuScale_));
        // Spread the buffer-cache misses across the statements.
        int stmts = server_profile->statements;
        int reads_before = server_profile->diskReads *
                           server_stmt_idx / stmts;
        int reads_after = server_profile->diskReads *
                          (server_stmt_idx + 1) / stmts;
        for (int r = reads_before; r < reads_after; ++r)
            blocking_io(8192, false);

        ++server_stmt_idx;
        bool is_commit = (server_stmt_idx >= stmts);
        if (is_commit) {
            // Data-page writes plus the WAL write and its flush.
            for (int w = 0; w < server_profile->diskWrites; ++w)
                blocking_io(8192, true);
            blocking_io(16384, true); // WAL
            blocking_io(0, true);     // fsync/flush
            server_profile = nullptr;
        }
        net_.send(is_commit ? 64 : 220, id);
    }

    TpccResult result;
    result.transactions = completed_txns;
    result.tpm = static_cast<double>(completed_txns) /
                 (toSec(machine.now() - t0) / 60.0);
    result.meanTxnMsec = txn_ms.mean();
    // Detach handlers from this invocation's state.
    *alive = false;
    fabric_.setPeerHandler([](NetPacket) {});
    net_.setRxHandler([](NetPacket) {});
    blk_.setCompletionHandler([](std::uint64_t) {});
    return result;
}

} // namespace svtsim
