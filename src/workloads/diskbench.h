/**
 * @file
 * Disk benchmarks of Section 6.2:
 *  - ioping: 512 B random read/write latency (synchronous, O_SYNC
 *    writes flush);
 *  - fio: 4 KB random read/write throughput at a small iodepth.
 */

#ifndef SVTSIM_WORKLOADS_DISKBENCH_H
#define SVTSIM_WORKLOADS_DISKBENCH_H

#include "hv/virt_stack.h"
#include "io/virtio_blk.h"
#include "sim/random.h"
#include "stats/summary.h"

namespace svtsim {

/** Result of an ioping run. */
struct IoPingResult
{
    double meanUsec = 0;
    double p99Usec = 0;
    std::uint64_t requests = 0;
};

/** Result of a fio run. */
struct FioResult
{
    double kbPerSec = 0;
    double meanLatencyUsec = 0;
    std::uint64_t operations = 0;
};

/** ioping-style synchronous random access latency probe. */
class IoPing
{
  public:
    IoPing(VirtStack &stack, VirtioBlkStack &blk);

    /**
     * @param bytes Request size (the paper uses 512 B).
     * @param write Random writes instead of reads; writes are synced
     *        with a flush request, like ioping's O_SYNC behaviour.
     * @param requests Number of measured requests.
     */
    IoPingResult run(std::uint32_t bytes, bool write, int requests);

  private:
    VirtStack &stack_;
    VirtioBlkStack &blk_;
    Rng rng_;
    std::uint64_t nextId_ = 1;
};

/** fio-style fixed-iodepth random access throughput probe. */
class Fio
{
  public:
    Fio(VirtStack &stack, VirtioBlkStack &blk);

    /**
     * @param bytes Block size (the paper uses 4 KB).
     * @param write Random writes instead of reads.
     * @param iodepth Concurrent requests kept in flight.
     * @param duration Measured run length.
     */
    FioResult run(std::uint32_t bytes, bool write, int iodepth,
                  Ticks duration);

  private:
    VirtStack &stack_;
    VirtioBlkStack &blk_;
    Rng rng_;
    std::uint64_t nextId_ = 1000000;
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_DISKBENCH_H
