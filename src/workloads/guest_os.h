/**
 * @file
 * Small guest-kernel behaviours the workloads share.
 */

#ifndef SVTSIM_WORKLOADS_GUEST_OS_H
#define SVTSIM_WORKLOADS_GUEST_OS_H

#include <functional>

#include "hv/guest_api.h"

namespace svtsim {

/** Guest-kernel idioms. */
class GuestOs
{
  public:
    /**
     * Tickless idle loop: arm the TSC-deadline timer, halt until
     * @p pred holds, cancel/re-arm on wakeups. In a nested guest both
     * MSR writes are reflected exits (the MSR_WRITE profile entries
     * of Section 6.2), exactly like a tickless Linux kernel's
     * cpuidle + hrtimer reprogramming behaves.
     *
     * @param tick Idle watchdog period (the kernel never sleeps
     *        unbounded).
     */
    static void idleWait(GuestApi &api,
                         const std::function<bool()> &pred,
                         Ticks tick = msec(1));
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_GUEST_OS_H
