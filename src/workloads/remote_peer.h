/**
 * @file
 * Bare-metal peer machines for the cluster benches.
 *
 * The classic single-machine benches model the netperf/mutilate peer
 * as event handlers on the *same* EventQueue (NetFabric's far end).
 * These classes are the same peers promoted to real second Machines
 * driven through a CrossLink, for the parallel cluster engine:
 *
 *  - NetserverPeer  — fig7's netserver on a VirtMode::Native machine;
 *    purely event-driven (no driver thread needed), it reacts to
 *    tagged request packets: RR requests are echoed after the peer
 *    turnaround time, STREAM segments are acknowledged cumulatively.
 *  - ClusterNetperf — the netperf client in the guest, identical to
 *    Netperf except the peer lives across a CrossLink, so requests
 *    carry a wire tag telling the remote netserver what to do.
 *  - MutilateClient — fig8's open-loop load generator on a Native
 *    machine (a synchronous cluster driver: arrivals are events, the
 *    driver just idles the machine to the end of the run).
 *  - MemcachedServer — fig8's serving loop alone (the client half of
 *    MemcachedBench removed); a synchronous cluster driver on the
 *    virtualized machine.
 *
 * The timing structure is identical to the NetFabric versions: a
 * request sent at t arrives at t + serialization + latency, the peer
 * turns it around, and the response lands after its own
 * serialization + latency. Only the event-queue *ownership* moved.
 */

#ifndef SVTSIM_WORKLOADS_REMOTE_PEER_H
#define SVTSIM_WORKLOADS_REMOTE_PEER_H

#include <cstdint>

#include "hv/virt_stack.h"
#include "io/net_port.h"
#include "io/virtio_net.h"
#include "sim/random.h"
#include "workloads/memcached.h"
#include "workloads/netperf.h"

namespace svtsim {

/**
 * Wire tags for cross-machine netperf requests. The top byte of the
 * packet payload selects the peer behavior; the low bits carry the
 * request parameter. (The single-machine Netperf needs no tags — its
 * peer handler is installed per run.)
 */
namespace peerwire {

constexpr std::uint64_t rrTag = 1;
constexpr std::uint64_t streamTag = 2;

/** RR request: the peer echoes @p resp_bytes after its turnaround. */
inline std::uint64_t
rrRequest(std::uint32_t resp_bytes)
{
    return (rrTag << 56) | resp_bytes;
}

/** STREAM segment: the peer acks every @p ack_every segments. */
inline std::uint64_t
streamSegment(std::uint32_t ack_every)
{
    return (streamTag << 56) | ack_every;
}

inline std::uint64_t
tagOf(std::uint64_t payload)
{
    return payload >> 56;
}

inline std::uint64_t
argOf(std::uint64_t payload)
{
    return payload & ((std::uint64_t{1} << 56) - 1);
}

} // namespace peerwire

/**
 * The netserver process on a bare-metal peer machine. Install it on
 * the peer's end of the CrossLink; it needs no cluster driver (every
 * reaction is an event on the peer's own queue).
 */
class NetserverPeer
{
  public:
    NetserverPeer(Machine &machine, NetPort &port);

    /** Segments received so far (tests/diagnostics). */
    std::uint64_t received() const { return received_; }

  private:
    void onRequest(NetPacket pkt);

    Machine &machine_;
    NetPort &port_;
    std::uint64_t received_ = 0;
    /** STREAM segments seen (the cumulative-ack counter). */
    std::uint64_t streamRxed_ = 0;
};

/**
 * The netperf client in the guest, peered with a NetserverPeer across
 * a CrossLink. Run from the client machine's cluster driver.
 */
class ClusterNetperf
{
  public:
    ClusterNetperf(VirtStack &stack, VirtioNetStack &net);

    /** TCP_RR against the remote netserver (see Netperf::runRr). */
    NetperfRrResult runRr(std::uint32_t req_bytes,
                          std::uint32_t resp_bytes, int transactions);

    /** TCP_STREAM against the remote netserver (see
     *  Netperf::runStream). */
    NetperfStreamResult runStream(std::uint32_t seg_bytes,
                                  Ticks duration, int window = 128,
                                  int ack_every = 16);

  private:
    VirtStack &stack_;
    VirtioNetStack &net_;
};

/**
 * mutilate on a bare-metal client machine: the open-loop Poisson
 * arrival process and the per-request latency measurement, talking
 * raw packets on its CrossLink end (no virtio on bare metal). The
 * ETC request sampling lives here, like real mutilate: the sampled
 * value size rides in the packet payload for the server to decode.
 */
class MutilateClient
{
  public:
    MutilateClient(Machine &machine, NetPort &port,
                   std::uint64_t seed = 42);

    /**
     * Offer @p qps for @p duration and idle the machine through the
     * run plus a drain grace period. Synchronous: call from the
     * client machine's cluster driver.
     */
    MemcachedPoint runLoad(double qps, Ticks duration);

  private:
    Machine &machine_;
    NetPort &port_;
    Rng rng_;
    EtcWorkload etc_;
    std::uint64_t nextId_ = 1;
};

/**
 * The memcached serving half of MemcachedBench alone: the in-guest
 * serving loop plus the L1-kernel housekeeping interference. The
 * load-proportional housekeeping (vhost bookkeeping on the paired L1
 * vCPU) is posted when a request is *received* — in the single-machine
 * model it was posted at the client's send, which is the same tick
 * stream shifted by the wire.
 */
class MemcachedServer
{
  public:
    /** Parameter semantics match MemcachedBench. */
    MemcachedServer(VirtStack &stack, VirtioNetStack &net,
                    std::uint64_t seed = 42,
                    double l1_housekeeping_rate_hz = 1000.0,
                    Ticks l1_housekeeping_cost = usec(14.5),
                    double l1_housekeeping_per_request = 0.9);

    /**
     * Serve until the machine clock reaches @p end, then drain the
     * backlog through a grace period. Synchronous: call from the
     * server machine's cluster driver. Returns requests served.
     */
    std::uint64_t serveUntil(Ticks end);

  private:
    struct Request
    {
        std::uint64_t id;
        bool get;
        std::uint32_t valueBytes;
    };

    void scheduleHousekeeping(Ticks end);

    VirtStack &stack_;
    VirtioNetStack &net_;
    Rng rng_;
    double housekeepingRate_;
    Ticks housekeepingCost_;
    double housekeepingPerRequest_;
    std::deque<Request> inbox_;
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_REMOTE_PEER_H
