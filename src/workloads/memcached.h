/**
 * @file
 * memcached + mutilate (Section 6.3.1): a key-value store in the
 * nested guest serving Facebook's ETC workload from an open-loop
 * client on the peer machine; latency measured at the client against
 * a 500 us 99th-percentile SLA.
 */

#ifndef SVTSIM_WORKLOADS_MEMCACHED_H
#define SVTSIM_WORKLOADS_MEMCACHED_H

#include <deque>

#include "hv/virt_stack.h"
#include "io/net_fabric.h"
#include "io/virtio_net.h"
#include "sim/random.h"
#include "stats/summary.h"

namespace svtsim {

/** Facebook ETC request distributions (Atikoglu et al. 2012). */
struct EtcWorkload
{
    /** Fraction of GETs (ETC is read-dominated). */
    double getRatio = 0.97;
    /** Value sizes: generalized Pareto (bytes). */
    double valueLocation = 0.0;
    double valueScale = 214.48;
    double valueShape = 0.348;
    /** Cap for the value-size tail. */
    std::uint32_t valueCap = 8192;
    /** Key sizes: roughly 16-40 bytes. */
    std::uint32_t keyMin = 16;
    std::uint32_t keyMax = 40;

    std::uint32_t sampleValueSize(Rng &rng) const;
    std::uint32_t sampleKeySize(Rng &rng) const;
    bool isGet(Rng &rng) const { return rng.chance(getRatio); }
};

/** One measured load point of the latency-vs-throughput curve. */
struct MemcachedPoint
{
    double offeredQps = 0;
    double achievedQps = 0;
    double avgUsec = 0;
    double p99Usec = 0;
    std::uint64_t completed = 0;
};

/**
 * The memcached server (at the stack's top level) plus the mutilate
 * open-loop client on the bare-metal peer.
 */
class MemcachedBench
{
  public:
    /**
     * @param l1_housekeeping_rate_hz Background rate of L1-kernel
     *        housekeeping (scheduler ticks, RCU) interfering with the
     *        serving vCPU (0 disables).
     * @param l1_housekeeping_cost Cost of each event.
     * @param l1_housekeeping_per_request Load-proportional L1 work
     *        (vhost bookkeeping, irqfd signalling on the paired L1
     *        vCPU) in events per request. Serviced serially in the
     *        baseline; overlapped by the SVt-thread in SW SVt.
     */
    MemcachedBench(VirtStack &stack, VirtioNetStack &net,
                   NetFabric &fabric, std::uint64_t seed = 42,
                   double l1_housekeeping_rate_hz = 1000.0,
                   Ticks l1_housekeeping_cost = usec(14.5),
                   double l1_housekeeping_per_request = 0.9);

    /** Run one open-loop load point (Poisson arrivals at @p qps). */
    MemcachedPoint runLoad(double qps, Ticks duration);

  private:
    struct Request
    {
        std::uint64_t id;
        bool get;
        std::uint32_t valueBytes;
    };

    void scheduleHousekeeping(Ticks end);

    VirtStack &stack_;
    VirtioNetStack &net_;
    NetFabric &fabric_;
    Rng rng_;
    EtcWorkload etc_;
    double housekeepingRate_;
    Ticks housekeepingCost_;
    double housekeepingPerRequest_;
    std::deque<Request> inbox_;
    std::uint64_t nextId_ = 1;
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_MEMCACHED_H
