/**
 * @file
 * netperf-style network benchmarks (Section 6.2):
 *  - TCP_RR: round-trip time of 1-byte transactions;
 *  - TCP_STREAM: throughput of 16 KB segments.
 * The peer is a bare-metal machine of the same configuration on the
 * other side of the 10 GbE link (Table 4).
 */

#ifndef SVTSIM_WORKLOADS_NETPERF_H
#define SVTSIM_WORKLOADS_NETPERF_H

#include "hv/virt_stack.h"
#include "io/net_fabric.h"
#include "io/virtio_net.h"
#include "stats/summary.h"

namespace svtsim {

/** Result of a request/response (TCP_RR) run. */
struct NetperfRrResult
{
    double meanUsec = 0;
    double p99Usec = 0;
    std::uint64_t transactions = 0;
};

/** Result of a bulk-transfer (TCP_STREAM) run. */
struct NetperfStreamResult
{
    double mbps = 0;
    std::uint64_t segments = 0;
};

/**
 * The netperf client running in the guest, plus the peer model.
 */
class Netperf
{
  public:
    Netperf(VirtStack &stack, VirtioNetStack &net, NetFabric &fabric);

    /**
     * TCP_RR: @p transactions request/response rounds of
     * @p req_bytes / @p resp_bytes.
     */
    NetperfRrResult runRr(std::uint32_t req_bytes,
                          std::uint32_t resp_bytes, int transactions);

    /**
     * TCP_STREAM: transmit @p seg_bytes segments for @p duration with
     * a send window of @p window segments; the peer acknowledges
     * every @p ack_every segments (delayed-ack + NIC coalescing).
     */
    NetperfStreamResult runStream(std::uint32_t seg_bytes,
                                  Ticks duration, int window = 128,
                                  int ack_every = 16);

  private:
    VirtStack &stack_;
    VirtioNetStack &net_;
    NetFabric &fabric_;
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_NETPERF_H
