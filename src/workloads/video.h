/**
 * @file
 * Video playback (Section 6.3.3): an mplayer-like soft-realtime
 * player in the nested guest reproducing a 4K movie repackaged at
 * 24/60/120 FPS, counting dropped frames. Frame pacing relies on the
 * TSC-deadline timer; stream data is read from the virtio disk.
 *
 * Frames drop for two reasons, per the paper's analysis:
 *  - the decoder missed the display deadline (heavy frames), and
 *  - the pacing timer interrupt was delivered too late ("they are
 *    enough to deliver interrupts too late for 40 frames"), which
 *    happens when the wakeup path serializes behind L1-kernel
 *    housekeeping in the baseline.
 */

#ifndef SVTSIM_WORKLOADS_VIDEO_H
#define SVTSIM_WORKLOADS_VIDEO_H

#include "hv/virt_stack.h"
#include "io/virtio_blk.h"
#include "sim/random.h"

namespace svtsim {

/** Result of a playback run. */
struct VideoResult
{
    int totalFrames = 0;
    int droppedFrames = 0;
    /** Drops caused by late timer delivery (subset of dropped). */
    int lateWakeupDrops = 0;
    /** Fraction of time the player vCPU was busy. */
    double busyFraction = 0;
};

/** Decode-time and interference model of the 4K stream. */
struct VideoProfile
{
    /** Median frame decode time (4K HEVC on one core). */
    Ticks decodeMedian = msec(2.9);
    /** Lognormal sigma of ordinary frames. */
    double decodeSigma = 0.16;
    /** Fraction of heavy frames (scene cuts, I-frames). */
    double heavyProb = 0.02;
    /** Decode multiplier of heavy frames. */
    double heavyFactor = 1.68;
    /** Lognormal sigma of heavy frames. */
    double heavySigma = 0.28;
    /** Stream bitrate (demuxer reads), Mbit/s. */
    double bitrateMbps = 40.0;
    /** Frames per buffered stream read. */
    int framesPerRead = 8;
    /** A/V desync tolerance, as a fraction of the frame period:
     *  a wakeup later than this drops the frame. */
    double dropSlackFraction = 0.0295;
    /** Background L1-kernel housekeeping rate (events/s). */
    double housekeepingRateHz = 230.0;
    /** Cost of one housekeeping event. */
    Ticks housekeepingCost = usec(35);
};

/**
 * The playback loop: decode ahead of each display deadline; count
 * frames that miss it, exactly like mplayer's -framedrop accounting.
 */
class VideoPlayback
{
  public:
    VideoPlayback(VirtStack &stack, VirtioBlkStack &blk,
                  VideoProfile profile = {}, std::uint64_t seed = 99);

    VideoResult run(double fps, Ticks duration);

  private:
    void scheduleHousekeeping(Ticks end);

    VirtStack &stack_;
    VirtioBlkStack &blk_;
    VideoProfile profile_;
    Rng rng_;
    std::uint64_t nextIo_ = 1ULL << 32;
};

} // namespace svtsim

#endif // SVTSIM_WORKLOADS_VIDEO_H
