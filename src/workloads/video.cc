#include "workloads/video.h"

#include <algorithm>
#include <cmath>

#include "arch/regs.h"
#include "workloads/guest_os.h"

namespace svtsim {

VideoPlayback::VideoPlayback(VirtStack &stack, VirtioBlkStack &blk,
                             VideoProfile profile, std::uint64_t seed)
    : stack_(stack), blk_(blk), profile_(profile), rng_(seed)
{
}

void
VideoPlayback::scheduleHousekeeping(Ticks end)
{
    if (profile_.housekeepingRateHz <= 0)
        return;
    Machine &m = stack_.machine();
    Ticks gap = static_cast<Ticks>(
        rng_.exponential(1e12 / profile_.housekeepingRateHz));
    Ticks when = m.now() + std::max<Ticks>(gap, 1);
    if (when >= end)
        return;
    m.events().schedule(when, [this, end] {
        stack_.postL1Housekeeping(profile_.housekeepingCost);
        scheduleHousekeeping(end);
    }, "l1-housekeeping");
}

VideoResult
VideoPlayback::run(double fps, Ticks duration)
{
    Machine &machine = stack_.machine();
    GuestApi &api = stack_.api();

    Ticks period = static_cast<Ticks>(1e12 / fps);
    Ticks drop_slack = static_cast<Ticks>(
        static_cast<double>(period) * profile_.dropSlackFraction);
    int total = static_cast<int>(toSec(duration) * fps);
    auto bytes_per_read = static_cast<std::uint32_t>(
        profile_.bitrateMbps * 1e6 / 8.0 / fps *
        profile_.framesPerRead);

    std::uint64_t io_done_id = 0;
    blk_.setCompletionHandler(
        [&](std::uint64_t id) { io_done_id = id; });

    VideoResult result;
    result.totalFrames = total;

    Ticks busy = 0;
    Ticks start = machine.now();
    scheduleHousekeeping(start + duration);

    Ticks next_deadline = machine.now() + period;
    for (int frame = 0; frame < total; ++frame) {
        Ticks frame_busy_start = machine.now();

        // Demuxer: refill the stream buffer every few frames.
        if (frame % profile_.framesPerRead == 0) {
            std::uint64_t id = nextIo_++;
            blk_.submit(id, rng_.below(1 << 20), bytes_per_read,
                        false);
            GuestOs::idleWait(api,
                              [&] { return io_done_id == id; });
        }

        // Decode.
        double median = toSec(profile_.decodeMedian);
        double t;
        if (rng_.chance(profile_.heavyProb)) {
            t = rng_.logNormal(
                std::log(median * profile_.heavyFactor),
                profile_.heavySigma);
        } else {
            t = rng_.logNormal(std::log(median),
                               profile_.decodeSigma);
        }
        api.compute(sec(t));
        busy += machine.now() - frame_busy_start;

        if (machine.now() > next_deadline) {
            // Decoder overran the display deadline.
            ++result.droppedFrames;
        } else {
            // Frame pacing: sleep until the display deadline. A
            // wakeup that arrives too late (timer delivery delayed
            // behind exit handling and L1 housekeeping) also drops
            // the frame.
            api.wrmsr(msr::ia32TscDeadline,
                      static_cast<std::uint64_t>(next_deadline));
            while (machine.now() < next_deadline)
                api.halt();
            api.wrmsr(msr::ia32TscDeadline, 0);
            Ticks lateness = machine.now() - next_deadline;
            if (lateness > drop_slack) {
                ++result.droppedFrames;
                ++result.lateWakeupDrops;
            }
        }
        next_deadline += period;
    }

    result.busyFraction =
        static_cast<double>(busy) /
        static_cast<double>(machine.now() - start);
    blk_.setCompletionHandler([](std::uint64_t) {});
    return result;
}

} // namespace svtsim
