/**
 * @file
 * Bench-facing trace plumbing: `--trace=<file>` flag parsing and a
 * ScopedTrace that attaches a TraceSink to a Machine for the duration
 * of a measured run and exports Chrome trace JSON (`<file>`) plus a
 * CSV stage summary (`<file>.csv`) on the way out.
 */

#ifndef SVTSIM_SYSTEM_TRACE_SESSION_H
#define SVTSIM_SYSTEM_TRACE_SESSION_H

#include <memory>
#include <string>

#include "arch/machine.h"
#include "sim/trace.h"

namespace svtsim {

/**
 * Parse a `--trace=<file>` option out of (argc, argv).
 *
 * @return The file path, or an empty string when the flag is absent.
 *         Unrecognized arguments are left alone (benches have their
 *         own, mostly empty, CLI surface).
 */
std::string parseTraceFlag(int argc, char **argv);

/**
 * RAII trace session over one Machine.
 *
 * Construction attaches and enables a TraceSink; destruction writes
 * the Chrome trace to @p path and the CSV summary to `<path>.csv`,
 * prints a one-line conservation report to stderr, and detaches.
 * With an empty @p path the session is inert (benches construct one
 * unconditionally and let the flag decide).
 */
class ScopedTrace
{
  public:
    /** @param label Suffix inserted before the file extension when a
     *  bench traces several machines (e.g. one per Figure 6 bar). */
    ScopedTrace(Machine &machine, const std::string &path,
                const std::string &label = {});
    ~ScopedTrace();

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

    bool active() const { return sink_ != nullptr; }
    TraceSink *sink() { return sink_.get(); }

  private:
    Machine &machine_;
    std::string tracePath_;
    std::unique_ptr<TraceSink> sink_;
};

} // namespace svtsim

#endif // SVTSIM_SYSTEM_TRACE_SESSION_H
