/**
 * @file
 * Bench-facing trace plumbing: a ScopedTrace that attaches a
 * TraceSink to a Machine for the duration of a measured run and
 * exports Chrome trace JSON (`<file>`) plus a CSV stage summary
 * (`<file>.csv`) on the way out. The `--trace=<file>` flag itself is
 * parsed by BenchHarness, which labels one session per sweep
 * scenario.
 */

#ifndef SVTSIM_SYSTEM_TRACE_SESSION_H
#define SVTSIM_SYSTEM_TRACE_SESSION_H

#include <memory>
#include <string>

#include "arch/machine.h"
#include "sim/trace.h"

namespace svtsim {

/**
 * RAII trace session over one Machine.
 *
 * Construction attaches and enables a TraceSink; destruction writes
 * the Chrome trace to @p path and the CSV summary to `<path>.csv`,
 * prints a one-line conservation report to stderr, and detaches.
 * With an empty @p path the session is inert (benches construct one
 * unconditionally and let the flag decide).
 */
class ScopedTrace
{
  public:
    /** @param label Suffix inserted before the file extension when a
     *  bench traces several machines (e.g. one per Figure 6 bar). */
    ScopedTrace(Machine &machine, const std::string &path,
                const std::string &label = {});
    ~ScopedTrace();

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

    bool active() const { return sink_ != nullptr; }
    TraceSink *sink() { return sink_.get(); }

    /**
     * Export the trace files, detach the sink and return the one-line
     * conservation report (empty for an inert session). Idempotent;
     * when the caller does not invoke it, the destructor does and
     * prints the report to stderr. The parallel sweep engine calls it
     * explicitly so reports can be emitted in scenario declaration
     * order instead of thread completion order.
     */
    std::string finish();

  private:
    Machine &machine_;
    std::string tracePath_;
    std::unique_ptr<TraceSink> sink_;
    bool finished_ = false;
};

} // namespace svtsim

#endif // SVTSIM_SYSTEM_TRACE_SESSION_H
