/**
 * @file
 * Conservative-time-window parallel execution engine for multi-machine
 * scenarios.
 *
 * A Cluster owns N NestedSystems — each with its own Machine,
 * EventQueue, RNG streams and MetricsRegistry — connected by
 * CrossLinks. Execution proceeds in epochs:
 *
 *   1. The coordinator computes each machine's *floor*: the earliest
 *      simulated time at which it can next act (min of its next event
 *      time and, for a parked synchronous driver, the advance target
 *      it is blocked on; 0 for a driver that has not started).
 *   2. Each machine gets a *per-pair* conservative horizon
 *      H_i = min over all j of (floor_j + C[j][i]), where C is the
 *      at-least-one-hop all-pairs shortest-path matrix over link
 *      latencies — C's diagonal is the shortest *cycle* through i,
 *      covering the echo of i's own sends (request out, response
 *      back); maxTick when no path into i exists, so an unreachable
 *      machine runs to completion in one window. Any packet that can
 *      reach i was caused by some machine j's state at the barrier,
 *      i.e. by an action at local time t >= floor_j, and arrives at
 *      t + serialization + path latency >= H_i, so i advancing below
 *      H_i cannot miss it. With homogeneous links this is within one
 *      hop of the classic min(floors) + min(latency); with
 *      heterogeneous links machines behind slow wires get
 *      proportionally larger windows instead of everyone collapsing
 *      to the slowest wire.
 *   3. Every machine with work below its H_i advances to it
 *      concurrently on a WorkerPool worker (or inline, in machine-id
 *      order, when jobs <= 1 — the sequential oracle). Machines never
 *      touch each other's state inside a window; outbound packets are
 *      staged in the links.
 *   4. At the barrier the staged packets are merged into destination
 *      queues in canonical (deliveryTick, srcMachineId, seq) order.
 *
 * Within a window machines do not interact, so per-machine execution
 * is a pure function of the machine's own state at the window start;
 * the merge order is canonical; hence the whole run is byte-identical
 * for any --cluster-jobs count (enforced by a differential test).
 *
 * Synchronous workload code (a netperf loop, a memcached serving
 * loop) cannot be chopped into horizon-sized calls, so each machine
 * with a driver runs it on a dedicated thread whose EventQueue wears
 * an AdvanceGate: an advance that would cross the horizon drains what
 * it owns and parks at the gate; the epoch step unparks it with the
 * new horizon and waits for it to park again (or finish). Concurrency
 * is still bounded by the worker count — a driver thread only ever
 * runs while its machine's epoch step is waiting on it.
 */

#ifndef SVTSIM_SYSTEM_CLUSTER_H
#define SVTSIM_SYSTEM_CLUSTER_H

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/cross_link.h"
#include "sim/fault.h"
#include "system/nested_system.h"

namespace svtsim {

class WorkerPool;

/** Aggregate run statistics (diagnostics and the speed bench). */
struct ClusterStats
{
    /** Epoch barriers executed. */
    std::uint64_t epochs = 0;
    /** Per-machine epoch steps actually run (skipped idle windows
     *  excluded). */
    std::uint64_t steps = 0;
    /** Cross-link packets merged at barriers. */
    std::uint64_t merged = 0;
};

/**
 * N machines + cross links + drivers, advanced in conservative epochs.
 */
class Cluster
{
  public:
    /** @param baseSeed Seed mixed with each machine's seed offset. */
    explicit Cluster(std::uint64_t baseSeed = 1);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /**
     * Add a machine built like a sweep scenario's NestedSystem:
     * paper topology for @p mode, validated config, seeded with
     * baseSeed + seedOffset (default offset: the machine index, so
     * machines get decorrelated RNG streams).
     *
     * @return The machine id (dense, starting at 0) used in merge
     *         ordering and CrossLink construction.
     */
    int addMachine(const std::string &name, VirtMode mode,
                   StackConfig config = {},
                   std::optional<std::uint64_t> seedOffset = {});

    /**
     * Add a machine with an explicit topology (the fleet scheduler's
     * per-slot machines model a single core, not the whole Table 4
     * box); the mode comes from @p config.mode.
     */
    int addMachine(const std::string &name,
                   const MachineTopology &topo, StackConfig config,
                   std::optional<std::uint64_t> seedOffset = {});

    int size() const { return static_cast<int>(nodes_.size()); }
    NestedSystem &system(int id);
    Machine &machine(int id);
    const std::string &machineName(int id) const;

    /**
     * Connect two machines with a CrossLink. Link latencies feed the
     * per-pair lookahead matrix computed at run(). Must be called
     * before run().
     */
    CrossLink &connect(int a, int b, Ticks latency,
                       double bits_per_sec);

    /**
     * Install @p fn as machine @p id's synchronous driver: it runs on
     * a dedicated thread under the machine's AdvanceGate for the
     * duration of run(). Machines without a driver are advanced as
     * pure event followers.
     */
    void setDriver(int id, std::function<void(NestedSystem &)> fn);

    /** Install a fault plan on every machine (PR 4 semantics; each
     *  machine's injector streams key off its own seed). */
    void installFaultPlan(const FaultPlan &plan);

    /**
     * Run to completion: until every driver has returned (or, with no
     * drivers at all, until every queue drains). @p jobs <= 1 runs
     * every epoch step inline on the caller, in machine-id order —
     * the sequential oracle whose output any parallel run must match
     * byte for byte.
     *
     * May be called once per Cluster. Rethrows the first driver
     * error (SimError) after all drivers have unwound.
     */
    ClusterStats run(int jobs);

    /** min link latency (the worst-case lookahead bound), maxTick
     *  with no links. Per-pair horizons are at least this far past
     *  the global floor. */
    Ticks lookahead() const { return lookahead_; }

  private:
    /**
     * Gate shared between a driver thread and the coordinator. The
     * mutex hand-off at park/unpark is also the memory barrier that
     * publishes the machine's state between threads.
     */
    struct DriverGate : AdvanceGate
    {
        Ticks awaitHorizon(Ticks target) override;

        std::mutex mutex;
        std::condition_variable cv;
        /** True while the driver thread owns the machine. */
        bool running = true;
        bool finished = false;
        /** Advance target the driver is parked on (valid !running). */
        Ticks parkedTarget = maxTick;
        /** Horizon to hand the driver on next unpark. */
        Ticks grant = 0;
    };

    struct Node
    {
        std::string name;
        std::unique_ptr<NestedSystem> system;
        std::function<void(NestedSystem &)> driver;
        std::unique_ptr<DriverGate> gate;
        std::thread thread;
        /** Reusable epoch-step slot handed to WorkerPool::runTasks. */
        std::function<void()> step;
        /** This machine's horizon for the current epoch (written by
         *  the coordinator before the step runs, read by step). */
        Ticks horizon = 0;
        /** Largest horizon ever granted: staged arrivals below this
         *  would land in the machine's executed past. */
        Ticks granted = 0;
    };

    /** Earliest time machine @p n can next act (coordinator side;
     *  requires the machine parked/finished/follower). */
    Ticks floorOf(const Node &n) const;
    /** Advance machine @p n's window to @p horizon (worker side). */
    void stepMachine(Node &n, Ticks horizon);
    /** Block until @p n's driver is parked or finished. */
    static void waitQuiescent(DriverGate &gate);
    /** Merge staged link packets canonically; returns count. Checks
     *  each arrival against the destination's granted horizon. */
    std::uint64_t mergeStaged();
    /** At-least-one-hop all-pairs shortest-path latency matrix over
     *  the links (Floyd-Warshall with the diagonal seeded
     *  unreachable, so [i][i] is the shortest cycle through i;
     *  maxTick = unreachable). */
    std::vector<Ticks> pairLookahead() const;

    std::uint64_t baseSeed_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<CrossLink>> links_;
    /** Link endpoints + latency, for the lookahead matrix. */
    struct LinkEnds
    {
        int a;
        int b;
        Ticks latency;
    };
    std::vector<LinkEnds> linkEnds_;
    Ticks lookahead_ = maxTick;
    bool ran_ = false;
    /** Barrier-merge scratch (reused across epochs). */
    std::vector<CrossLink::Delivery> scratch_;
    /** First driver error, rethrown from run(). */
    std::string driverError_;
    std::mutex errorMutex_;
};

} // namespace svtsim

#endif // SVTSIM_SYSTEM_CLUSTER_H
