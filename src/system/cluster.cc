#include "system/cluster.h"

#include <algorithm>

#include "sim/log.h"
#include "sim/trace.h"
#include "sim/worker_pool.h"

namespace svtsim {

/*
 * Lookahead safety argument (see also the header and DESIGN.md):
 *
 * Let floor_i be machine i's floor at a barrier and
 * H' = min_i(floor_i) + L with L = min link latency. Machine i's
 * first action in the next window — an event firing, or its parked
 * driver resuming — happens at local time t >= floor_i >= H' - L, and
 * every later action in the window is later still. A packet sent at
 * time t arrives at t + serialization + latency >= t + L >= H'. So
 * every packet staged during the window lands at or after H', i.e.
 * never in simulated time any machine (which executes strictly below
 * H') has already passed: merging at the barrier loses nothing and
 * reorders nothing. Progress: H' > H because every floor is >= the
 * previous horizon's base and L > 0.
 *
 * Byte-identity across worker counts: within a window machines only
 * touch their own state plus the src side of their links, so each
 * machine's window execution is a pure function of its state at the
 * window start; the barrier merge orders staged packets canonically
 * by (deliveryTick, srcMachineId, seq) (ties across distinct links
 * broken by link creation order via stable_sort over the fixed drain
 * order); horizons are computed from simulated state only. Nothing
 * anywhere depends on wall-clock interleaving.
 */

Ticks
Cluster::DriverGate::awaitHorizon(Ticks target)
{
    std::unique_lock<std::mutex> lk(mutex);
    parkedTarget = target;
    running = false;
    cv.notify_all();
    cv.wait(lk, [this] { return running; });
    parkedTarget = maxTick;
    return grant;
}

Cluster::Cluster(std::uint64_t baseSeed) : baseSeed_(baseSeed) {}

Cluster::~Cluster()
{
    // run() joins every driver thread on all paths; a Cluster that
    // never ran never spawned any.
    for (auto &np : nodes_)
        simAssert(!np->thread.joinable(),
                  "Cluster destroyed with a live driver thread");
}

int
Cluster::addMachine(const std::string &name, VirtMode mode,
                    StackConfig config,
                    std::optional<std::uint64_t> seedOffset)
{
    simAssert(!ran_, "Cluster::addMachine after run()");
    const int id = size();
    const std::uint64_t offset =
        seedOffset ? *seedOffset : static_cast<std::uint64_t>(id);
    auto node = std::make_unique<Node>();
    node->name = name;
    node->system =
        std::make_unique<NestedSystem>(mode, config, baseSeed_ + offset);
    nodes_.push_back(std::move(node));
    return id;
}

NestedSystem &
Cluster::system(int id)
{
    simAssert(id >= 0 && id < size(), "Cluster::system bad id");
    return *nodes_[static_cast<std::size_t>(id)]->system;
}

Machine &
Cluster::machine(int id)
{
    return system(id).machine();
}

const std::string &
Cluster::machineName(int id) const
{
    simAssert(id >= 0 && id < size(), "Cluster::machineName bad id");
    return nodes_[static_cast<std::size_t>(id)]->name;
}

CrossLink &
Cluster::connect(int a, int b, Ticks latency, double bits_per_sec)
{
    simAssert(!ran_, "Cluster::connect after run()");
    simAssert(a != b, "Cluster::connect machine to itself");
    links_.push_back(std::make_unique<CrossLink>(
        machine(a), a, machine(b), b, latency, bits_per_sec));
    lookahead_ = std::min(lookahead_, latency);
    return *links_.back();
}

void
Cluster::setDriver(int id, std::function<void(NestedSystem &)> fn)
{
    simAssert(!ran_, "Cluster::setDriver after run()");
    simAssert(id >= 0 && id < size(), "Cluster::setDriver bad id");
    nodes_[static_cast<std::size_t>(id)]->driver = std::move(fn);
}

void
Cluster::installFaultPlan(const FaultPlan &plan)
{
    for (auto &np : nodes_)
        np->system->machine().installFaultPlan(plan);
}

Ticks
Cluster::floorOf(const Node &n) const
{
    // Only called while the machine is quiescent (parked driver or
    // barrier), so reading queue state and the parked target is
    // ordered by the gate mutex hand-off.
    const Ticks next = n.system->machine().events().nextEventTime();
    if (n.gate && !n.gate->finished)
        return std::min(next, n.gate->parkedTarget);
    return next;
}

void
Cluster::waitQuiescent(DriverGate &gate)
{
    std::unique_lock<std::mutex> lk(gate.mutex);
    gate.cv.wait(lk, [&gate] { return !gate.running; });
}

void
Cluster::stepMachine(Node &n, Ticks horizon)
{
    if (n.gate) {
        std::unique_lock<std::mutex> lk(n.gate->mutex);
        if (!n.gate->finished) {
            // Hand the driver thread the new horizon and lend it this
            // worker's slot until it parks again (or finishes) — so
            // the number of simultaneously *running* machines never
            // exceeds the worker count.
            n.gate->grant = horizon;
            n.gate->running = true;
            n.gate->cv.notify_all();
            n.gate->cv.wait(lk, [&n] { return !n.gate->running; });
            return;
        }
    }
    // Follower (or finished-driver) machine: plain horizon drain on
    // the worker itself. The drain moves the clock from event to
    // event with no driver code in between, so any advancement not
    // already attributed by handler consume() calls is idle time —
    // charge it, or the trace conservation invariant (attributed +
    // idle + unattributed == elapsed) breaks on follower machines.
    Machine &m = n.system->machine();
    TraceSink *sink = m.events().traceSink();
    if (SVTSIM_UNLIKELY(sink != nullptr)) {
        const TraceSink::Conservation before = sink->checkConservation();
        const Ticks t0 = m.now();
        m.events().runUntilTick(horizon);
        const TraceSink::Conservation after = sink->checkConservation();
        const Ticks accounted =
            (after.attributed + after.idle + after.unattributed) -
            (before.attributed + before.idle + before.unattributed);
        sink->attributeIdle((m.now() - t0) - accounted);
        return;
    }
    m.events().runUntilTick(horizon);
}

std::uint64_t
Cluster::mergeStaged(Ticks grantedHorizon)
{
    scratch_.clear();
    for (auto &l : links_)
        l->drainStaged(scratch_);
    if (scratch_.empty())
        return 0;
    std::stable_sort(scratch_.begin(), scratch_.end(),
                     CrossLink::canonicalLess);
    for (const CrossLink::Delivery &d : scratch_) {
        if (d.arrival < grantedHorizon)
            panic("Cluster: staged arrival %lld below the epoch "
                  "horizon %lld (lookahead violated)",
                  static_cast<long long>(d.arrival),
                  static_cast<long long>(grantedHorizon));
        d.link->deliver(d);
    }
    return scratch_.size();
}

ClusterStats
Cluster::run(int jobs)
{
    simAssert(!ran_, "Cluster::run may only be called once");
    ran_ = true;
    ClusterStats stats;
    if (nodes_.empty())
        return stats;

    bool anyDriver = false;
    for (auto &np : nodes_) {
        Node &n = *np;
        if (!n.driver)
            continue;
        anyDriver = true;
        n.gate = std::make_unique<DriverGate>();
        // The driver owns the machine from spawn (setup code runs
        // before the first epoch); horizon 0 parks it at its first
        // advance, which is where the coordinator picks it up.
        n.system->machine().events().setAdvanceGate(n.gate.get(), 0);
        n.thread = std::thread([this, &n] {
            try {
                n.driver(*n.system);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lk(errorMutex_);
                if (driverError_.empty())
                    driverError_ = n.name + ": " + e.what();
            }
            std::lock_guard<std::mutex> lk(n.gate->mutex);
            n.gate->finished = true;
            n.gate->running = false;
            n.gate->cv.notify_all();
        });
    }

    try {
        for (auto &np : nodes_)
            if (np->gate)
                waitQuiescent(*np->gate);

        std::unique_ptr<WorkerPool> pool;
        if (jobs > 1)
            pool = std::make_unique<WorkerPool>(
                std::min(jobs, size()));

        // Reusable per-machine epoch-step slots (WorkerPool bulk
        // path): built once, borrowed by pointer every window.
        Ticks epochHorizon = 0;
        for (auto &np : nodes_) {
            Node *n = np.get();
            // Pool tasks must not throw: a follower drain that panics
            // (an event handler bug) is recorded and surfaced after
            // the barrier instead of escaping into the pool.
            n->step = [this, n, &epochHorizon] {
                try {
                    stepMachine(*n, epochHorizon);
                } catch (const std::exception &e) {
                    std::lock_guard<std::mutex> lk(errorMutex_);
                    if (driverError_.empty())
                        driverError_ = n->name + ": " + e.what();
                }
            };
        }
        std::vector<std::function<void()> *> active;
        active.reserve(nodes_.size());

        Ticks horizon = 0;
        for (;;) {
            stats.merged += mergeStaged(horizon);

            bool driverAlive = false;
            Ticks minFloor = maxTick;
            for (auto &np : nodes_) {
                if (np->gate && !np->gate->finished)
                    driverAlive = true;
                minFloor = std::min(minFloor, floorOf(*np));
            }
            // Termination: every driver returned (driver mode), or
            // every queue drained (pure event-follower mode).
            if (anyDriver ? !driverAlive : minFloor == maxTick)
                break;
            if (minFloor == maxTick)
                panic("Cluster: deadlock — drivers outstanding but no "
                      "machine can ever advance");

            const Ticks next = lookahead_ >= maxTick - minFloor
                                   ? maxTick
                                   : minFloor + lookahead_;
            simAssert(next > horizon,
                      "Cluster: epoch horizon failed to advance");
            epochHorizon = next;

            active.clear();
            for (auto &np : nodes_) {
                Node &n = *np;
                bool needs =
                    n.system->machine().events().nextEventTime() < next;
                if (n.gate && !n.gate->finished)
                    needs = needs || n.gate->parkedTarget < next;
                if (needs)
                    active.push_back(&n.step);
            }
            ++stats.epochs;
            stats.steps += active.size();
            if (pool)
                pool->runTasks(active.data(), active.size());
            else
                for (auto *s : active)
                    (*s)();
            {
                std::lock_guard<std::mutex> lk(errorMutex_);
                if (!driverError_.empty())
                    throw SimError(driverError_);
            }
            horizon = next;
        }
    } catch (...) {
        // Release every parked driver (maxTick un-gates its queue) so
        // the threads unwind — a driver that then hits its own error
        // records it — and rethrow the coordinator's error.
        for (auto &np : nodes_) {
            if (!np->gate)
                continue;
            std::lock_guard<std::mutex> lk(np->gate->mutex);
            np->gate->grant = maxTick;
            np->gate->running = true;
            np->gate->cv.notify_all();
        }
        for (auto &np : nodes_)
            if (np->thread.joinable())
                np->thread.join();
        for (auto &np : nodes_)
            np->system->machine().events().setAdvanceGate(nullptr, 0);
        throw;
    }

    for (auto &np : nodes_)
        if (np->thread.joinable())
            np->thread.join();
    for (auto &np : nodes_)
        np->system->machine().events().setAdvanceGate(nullptr, 0);
    if (!driverError_.empty())
        throw SimError(driverError_);
    return stats;
}

} // namespace svtsim
