#include "system/cluster.h"

#include <algorithm>

#include "sim/log.h"
#include "sim/trace.h"
#include "sim/worker_pool.h"

namespace svtsim {

/*
 * Lookahead safety argument (see also the header and DESIGN.md):
 *
 * Let floor_j be machine j's floor at a barrier and C[j][i] the
 * at-least-one-hop shortest-path latency from j to i over the links
 * (Floyd-Warshall with the diagonal seeded unreachable, so C[i][i]
 * converges to the shortest *cycle* through i; links are
 * bidirectional so C is symmetric; maxTick = no path). Machine i's
 * horizon is H_i = min over ALL j of (floor_j + C[j][i]) — the
 * j = i term is load-bearing: i's own state can cause a future
 * arrival back at itself (send a request at floor_i, the neighbor
 * responds), and that echo lands no earlier than floor_i + C[i][i].
 * Any packet that can reach i originates from some machine j's
 * current state, i.e. from an action at local time t >= floor_j (j's
 * first action in the window is at its floor, every later action —
 * including reactions to packets merged at later barriers — is later
 * still), and arrives after >= 1 hops, so at
 * t + serialization + path latency >= floor_j + C[j][i] >= H_i.
 *
 * Horizons granted earlier stay safe across later epochs because H_i
 * is monotone: a stepped machine's floor rises to >= its horizon,
 * an unstepped machine's floor can only drop to a merged arrival
 * time >= H_j(E) = min_k(floor_k(E) + C[k][j]), and C obeys the
 * triangle inequality (concatenating >=1-hop paths k->j and j->i
 * yields a >=1-hop path k->i), so
 * H_i(E+1) >= min_k(floor_k(E) + C[k][i]) = H_i(E). Hence every
 * staged arrival is >= the destination's largest granted horizon
 * (asserted per delivery in mergeStaged): merging at the barrier
 * loses nothing and reorders nothing. A machine with no inbound path
 * can never receive anything and runs to completion in one window
 * (H = maxTick); having no links it cannot send either.
 *
 * Progress: the machine with the global min floor gets
 * H >= minFloor + (min latency or cycle) > its floor, so it is
 * always steppable, and stepping it raises its floor to >= H — the
 * global min floor strictly increases every epoch.
 *
 * Byte-identity across worker counts: within a window machines only
 * touch their own state plus the src side of their links, so each
 * machine's window execution is a pure function of its state at the
 * window start; the barrier merge orders staged packets canonically
 * by (deliveryTick, srcMachineId, seq) (ties across distinct links
 * broken by link creation order via stable_sort over the fixed drain
 * order); horizons are computed from simulated state only. Nothing
 * anywhere depends on wall-clock interleaving.
 */

Ticks
Cluster::DriverGate::awaitHorizon(Ticks target)
{
    std::unique_lock<std::mutex> lk(mutex);
    parkedTarget = target;
    running = false;
    cv.notify_all();
    cv.wait(lk, [this] { return running; });
    parkedTarget = maxTick;
    return grant;
}

Cluster::Cluster(std::uint64_t baseSeed) : baseSeed_(baseSeed) {}

Cluster::~Cluster()
{
    // run() joins every driver thread on all paths; a Cluster that
    // never ran never spawned any.
    for (auto &np : nodes_)
        simAssert(!np->thread.joinable(),
                  "Cluster destroyed with a live driver thread");
}

int
Cluster::addMachine(const std::string &name, VirtMode mode,
                    StackConfig config,
                    std::optional<std::uint64_t> seedOffset)
{
    simAssert(!ran_, "Cluster::addMachine after run()");
    const int id = size();
    const std::uint64_t offset =
        seedOffset ? *seedOffset : static_cast<std::uint64_t>(id);
    auto node = std::make_unique<Node>();
    node->name = name;
    node->system =
        std::make_unique<NestedSystem>(mode, config, baseSeed_ + offset);
    nodes_.push_back(std::move(node));
    return id;
}

int
Cluster::addMachine(const std::string &name,
                    const MachineTopology &topo, StackConfig config,
                    std::optional<std::uint64_t> seedOffset)
{
    simAssert(!ran_, "Cluster::addMachine after run()");
    const int id = size();
    const std::uint64_t offset =
        seedOffset ? *seedOffset : static_cast<std::uint64_t>(id);
    auto node = std::make_unique<Node>();
    node->name = name;
    node->system =
        std::make_unique<NestedSystem>(topo, config, baseSeed_ + offset);
    nodes_.push_back(std::move(node));
    return id;
}

NestedSystem &
Cluster::system(int id)
{
    simAssert(id >= 0 && id < size(), "Cluster::system bad id");
    return *nodes_[static_cast<std::size_t>(id)]->system;
}

Machine &
Cluster::machine(int id)
{
    return system(id).machine();
}

const std::string &
Cluster::machineName(int id) const
{
    simAssert(id >= 0 && id < size(), "Cluster::machineName bad id");
    return nodes_[static_cast<std::size_t>(id)]->name;
}

CrossLink &
Cluster::connect(int a, int b, Ticks latency, double bits_per_sec)
{
    simAssert(!ran_, "Cluster::connect after run()");
    simAssert(a != b, "Cluster::connect machine to itself");
    links_.push_back(std::make_unique<CrossLink>(
        machine(a), a, machine(b), b, latency, bits_per_sec));
    linkEnds_.push_back({a, b, latency});
    lookahead_ = std::min(lookahead_, latency);
    return *links_.back();
}

void
Cluster::setDriver(int id, std::function<void(NestedSystem &)> fn)
{
    simAssert(!ran_, "Cluster::setDriver after run()");
    simAssert(id >= 0 && id < size(), "Cluster::setDriver bad id");
    nodes_[static_cast<std::size_t>(id)]->driver = std::move(fn);
}

void
Cluster::installFaultPlan(const FaultPlan &plan)
{
    for (auto &np : nodes_)
        np->system->machine().installFaultPlan(plan);
}

Ticks
Cluster::floorOf(const Node &n) const
{
    // Only called while the machine is quiescent (parked driver or
    // barrier), so reading queue state and the parked target is
    // ordered by the gate mutex hand-off.
    const Ticks next = n.system->machine().events().nextEventTime();
    if (n.gate && !n.gate->finished)
        return std::min(next, n.gate->parkedTarget);
    return next;
}

void
Cluster::waitQuiescent(DriverGate &gate)
{
    std::unique_lock<std::mutex> lk(gate.mutex);
    gate.cv.wait(lk, [&gate] { return !gate.running; });
}

void
Cluster::stepMachine(Node &n, Ticks horizon)
{
    if (n.gate) {
        std::unique_lock<std::mutex> lk(n.gate->mutex);
        if (!n.gate->finished) {
            // Hand the driver thread the new horizon and lend it this
            // worker's slot until it parks again (or finishes) — so
            // the number of simultaneously *running* machines never
            // exceeds the worker count.
            n.gate->grant = horizon;
            n.gate->running = true;
            n.gate->cv.notify_all();
            n.gate->cv.wait(lk, [&n] { return !n.gate->running; });
            return;
        }
    }
    // Follower (or finished-driver) machine: plain horizon drain on
    // the worker itself. The drain moves the clock from event to
    // event with no driver code in between, so any advancement not
    // already attributed by handler consume() calls is idle time —
    // charge it, or the trace conservation invariant (attributed +
    // idle + unattributed == elapsed) breaks on follower machines.
    Machine &m = n.system->machine();
    TraceSink *sink = m.events().traceSink();
    if (SVTSIM_UNLIKELY(sink != nullptr)) {
        const TraceSink::Conservation before = sink->checkConservation();
        const Ticks t0 = m.now();
        m.events().runUntilTick(horizon);
        const TraceSink::Conservation after = sink->checkConservation();
        const Ticks accounted =
            (after.attributed + after.idle + after.unattributed) -
            (before.attributed + before.idle + before.unattributed);
        sink->attributeIdle((m.now() - t0) - accounted);
        return;
    }
    m.events().runUntilTick(horizon);
}

std::uint64_t
Cluster::mergeStaged()
{
    scratch_.clear();
    for (auto &l : links_)
        l->drainStaged(scratch_);
    if (scratch_.empty())
        return 0;
    std::stable_sort(scratch_.begin(), scratch_.end(),
                     CrossLink::canonicalLess);
    for (const CrossLink::Delivery &d : scratch_) {
        const Ticks granted =
            nodes_[static_cast<std::size_t>(d.dstId)]->granted;
        if (d.arrival < granted)
            panic("Cluster: staged arrival %lld below machine %d's "
                  "granted horizon %lld (lookahead violated)",
                  static_cast<long long>(d.arrival), d.dstId,
                  static_cast<long long>(granted));
        d.link->deliver(d);
    }
    return scratch_.size();
}

std::vector<Ticks>
Cluster::pairLookahead() const
{
    const int n = size();
    std::vector<Ticks> dist(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
        maxTick);
    auto at = [&dist, n](int i, int j) -> Ticks & {
        return dist[static_cast<std::size_t>(i) * n + j];
    };
    for (const LinkEnds &l : linkEnds_) {
        at(l.a, l.b) = std::min(at(l.a, l.b), l.latency);
        at(l.b, l.a) = std::min(at(l.b, l.a), l.latency);
    }
    for (int k = 0; k < n; ++k)
        for (int i = 0; i < n; ++i) {
            const Ticks dik = at(i, k);
            if (dik >= maxTick)
                continue;
            for (int j = 0; j < n; ++j) {
                const Ticks dkj = at(k, j);
                if (dkj >= maxTick)
                    continue;
                const Ticks via =
                    dik >= maxTick - dkj ? maxTick : dik + dkj;
                if (via < at(i, j))
                    at(i, j) = via;
            }
        }
    return dist;
}

ClusterStats
Cluster::run(int jobs)
{
    simAssert(!ran_, "Cluster::run may only be called once");
    ran_ = true;
    ClusterStats stats;
    if (nodes_.empty())
        return stats;

    bool anyDriver = false;
    for (auto &np : nodes_) {
        Node &n = *np;
        if (!n.driver)
            continue;
        anyDriver = true;
        n.gate = std::make_unique<DriverGate>();
        // The driver owns the machine from spawn (setup code runs
        // before the first epoch); horizon 0 parks it at its first
        // advance, which is where the coordinator picks it up.
        n.system->machine().events().setAdvanceGate(n.gate.get(), 0);
        n.thread = std::thread([this, &n] {
            try {
                n.driver(*n.system);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lk(errorMutex_);
                if (driverError_.empty())
                    driverError_ = n.name + ": " + e.what();
            }
            std::lock_guard<std::mutex> lk(n.gate->mutex);
            n.gate->finished = true;
            n.gate->running = false;
            n.gate->cv.notify_all();
        });
    }

    try {
        for (auto &np : nodes_)
            if (np->gate)
                waitQuiescent(*np->gate);

        std::unique_ptr<WorkerPool> pool;
        if (jobs > 1)
            pool = std::make_unique<WorkerPool>(
                std::min(jobs, size()));

        // Reusable per-machine epoch-step slots (WorkerPool bulk
        // path): built once, borrowed by pointer every window.
        for (auto &np : nodes_) {
            Node *n = np.get();
            // Pool tasks must not throw: a follower drain that panics
            // (an event handler bug) is recorded and surfaced after
            // the barrier instead of escaping into the pool.
            n->step = [this, n] {
                try {
                    stepMachine(*n, n->horizon);
                } catch (const std::exception &e) {
                    std::lock_guard<std::mutex> lk(errorMutex_);
                    if (driverError_.empty())
                        driverError_ = n->name + ": " + e.what();
                }
            };
        }
        std::vector<std::function<void()> *> active;
        active.reserve(nodes_.size());

        // Per-pair lookahead matrix; fixed once links are final.
        const std::vector<Ticks> dist = pairLookahead();
        const int n = size();
        std::vector<Ticks> floors(static_cast<std::size_t>(n));

        for (;;) {
            stats.merged += mergeStaged();

            bool driverAlive = false;
            Ticks minFloor = maxTick;
            for (int i = 0; i < n; ++i) {
                Node &node = *nodes_[static_cast<std::size_t>(i)];
                if (node.gate && !node.gate->finished)
                    driverAlive = true;
                floors[static_cast<std::size_t>(i)] = floorOf(node);
                minFloor = std::min(
                    minFloor, floors[static_cast<std::size_t>(i)]);
            }
            // Termination: every driver returned (driver mode), or
            // every queue drained (pure event-follower mode).
            if (anyDriver ? !driverAlive : minFloor == maxTick)
                break;
            if (minFloor == maxTick)
                panic("Cluster: deadlock — drivers outstanding but no "
                      "machine can ever advance");

            active.clear();
            for (int i = 0; i < n; ++i) {
                Node &node = *nodes_[static_cast<std::size_t>(i)];
                // H_i = min over ALL j of floor_j + C[j][i], where
                // C's diagonal is the shortest cycle through i: a
                // machine's own state can cause a future arrival back
                // at itself via a round trip (request out, response
                // in), so the self-term is load-bearing — without it
                // a request/response neighbor gets over-granted.
                // maxTick when nothing can ever reach i.
                Ticks h = maxTick;
                for (int j = 0; j < n; ++j) {
                    const Ticks d =
                        dist[static_cast<std::size_t>(j) * n + i];
                    const Ticks fj = floors[static_cast<std::size_t>(j)];
                    if (d >= maxTick || fj >= maxTick - d)
                        continue;
                    h = std::min(h, fj + d);
                }
                bool needs =
                    node.system->machine().events().nextEventTime() < h;
                if (node.gate && !node.gate->finished)
                    needs = needs || node.gate->parkedTarget < h;
                if (!needs)
                    continue;
                node.horizon = h;
                node.granted = std::max(node.granted, h);
                active.push_back(&node.step);
            }
            // The global-min-floor machine always gets a horizon
            // above its floor, so someone can step.
            simAssert(!active.empty(),
                      "Cluster: epoch horizon failed to advance");
            ++stats.epochs;
            stats.steps += active.size();
            if (pool)
                pool->runTasks(active.data(), active.size());
            else
                for (auto *s : active)
                    (*s)();
            {
                std::lock_guard<std::mutex> lk(errorMutex_);
                if (!driverError_.empty())
                    throw SimError(driverError_);
            }
        }
    } catch (...) {
        // Release every parked driver (maxTick un-gates its queue) so
        // the threads unwind — a driver that then hits its own error
        // records it — and rethrow the coordinator's error.
        for (auto &np : nodes_) {
            if (!np->gate)
                continue;
            std::lock_guard<std::mutex> lk(np->gate->mutex);
            np->gate->grant = maxTick;
            np->gate->running = true;
            np->gate->cv.notify_all();
        }
        for (auto &np : nodes_)
            if (np->thread.joinable())
                np->thread.join();
        for (auto &np : nodes_)
            np->system->machine().events().setAdvanceGate(nullptr, 0);
        throw;
    }

    for (auto &np : nodes_)
        if (np->thread.joinable())
            np->thread.join();
    for (auto &np : nodes_)
        np->system->machine().events().setAdvanceGate(nullptr, 0);
    if (!driverError_.empty())
        throw SimError(driverError_);
    return stats;
}

} // namespace svtsim
