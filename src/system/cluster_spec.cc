#include "system/cluster_spec.h"

#include <unordered_set>

#include "sim/log.h"

namespace svtsim {

ClusterSpec &
ClusterSpec::machine(std::string name, VirtMode mode,
                     StackConfig config)
{
    MachineDecl decl;
    decl.name = std::move(name);
    decl.mode = mode;
    decl.config = config;
    machines_.push_back(std::move(decl));
    return *this;
}

ClusterSpec &
ClusterSpec::machine(std::string name, const MachineTopology &topo,
                     StackConfig config)
{
    MachineDecl decl;
    decl.name = std::move(name);
    decl.topo = topo;
    decl.mode = config.mode;
    decl.config = config;
    machines_.push_back(std::move(decl));
    return *this;
}

ClusterSpec &
ClusterSpec::link(const std::string &a, const std::string &b)
{
    links_.push_back({a, b, {}, {}});
    return *this;
}

ClusterSpec &
ClusterSpec::link(const std::string &a, const std::string &b,
                  Ticks latency, double bits_per_sec)
{
    links_.push_back({a, b, latency, bits_per_sec});
    return *this;
}

int
ClusterSpec::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < machines_.size(); ++i)
        if (machines_[i].name == name)
            return static_cast<int>(i);
    return -1;
}

void
ClusterSpec::validate() const
{
    if (machines_.empty())
        fatal("ClusterSpec: no machines declared; call "
              "machine(name, mode) at least once before realize()");
    std::unordered_set<std::string> seen;
    for (const MachineDecl &m : machines_) {
        if (m.name.empty())
            fatal("ClusterSpec: machine declared with an empty name; "
                  "every machine needs a unique non-empty name (it "
                  "keys port/driver lookup)");
        if (!seen.insert(m.name).second)
            fatal("ClusterSpec: machine '%s' declared twice; names "
                  "must be unique (they key port/driver lookup)",
                  m.name.c_str());
    }
    std::unordered_set<std::string> pairs;
    for (const LinkDecl &l : links_) {
        if (indexOf(l.a) < 0)
            fatal("ClusterSpec: link endpoint '%s' is not a declared "
                  "machine; declare it with machine('%s', mode) "
                  "before linking",
                  l.a.c_str(), l.a.c_str());
        if (indexOf(l.b) < 0)
            fatal("ClusterSpec: link endpoint '%s' is not a declared "
                  "machine; declare it with machine('%s', mode) "
                  "before linking",
                  l.b.c_str(), l.b.c_str());
        if (l.a == l.b)
            fatal("ClusterSpec: link connects machine '%s' to "
                  "itself; a CrossLink needs two distinct machines "
                  "(same-machine peers use NetFabric)",
                  l.a.c_str());
        const std::string key = l.a < l.b ? l.a + "\n" + l.b
                                          : l.b + "\n" + l.a;
        if (!pairs.insert(key).second)
            fatal("ClusterSpec: machines '%s' and '%s' are linked "
                  "twice; declare one link per pair (port(name, "
                  "peer) resolution must be unambiguous)",
                  l.a.c_str(), l.b.c_str());
        if (l.latency && *l.latency <= 0)
            fatal("ClusterSpec: link '%s'-'%s' has non-positive "
                  "latency %lld; the propagation delay is the "
                  "conservative lookahead and must be > 0",
                  l.a.c_str(), l.b.c_str(),
                  static_cast<long long>(*l.latency));
        if (l.bitsPerSec && *l.bitsPerSec <= 0)
            fatal("ClusterSpec: link '%s'-'%s' has non-positive "
                  "rate %g bits/s",
                  l.a.c_str(), l.b.c_str(), *l.bitsPerSec);
    }
}

ClusterBuild
ClusterSpec::realize(std::uint64_t seed) const
{
    validate();
    ClusterBuild build;
    build.cluster_ = std::make_unique<Cluster>(seed);
    for (const MachineDecl &m : machines_) {
        if (m.topo) {
            StackConfig config = m.config;
            config.mode = m.mode;
            build.cluster_->addMachine(m.name, *m.topo, config);
        } else {
            build.cluster_->addMachine(m.name, m.mode, m.config);
        }
        build.names_.push_back(m.name);
    }
    for (const LinkDecl &l : links_) {
        const int a = indexOf(l.a);
        const int b = indexOf(l.b);
        // Defaults: the paper testbed wire, from machine a's (live)
        // cost model so post-construction cost tweaks are honored.
        const CostModel &costs = build.cluster_->machine(a).costs();
        CrossLink &link = build.cluster_->connect(
            a, b, l.latency ? *l.latency : costs.wireLatency,
            l.bitsPerSec ? *l.bitsPerSec : costs.linkBitsPerSec);
        build.links_.push_back({l.a, l.b, &link});
    }
    return build;
}

ClusterBuild
ClusterSpec::realize(const ClusterContext &ctx) const
{
    return realize(ctx.seed());
}

int
ClusterBuild::id(const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<int>(i);
    fatal("ClusterBuild: unknown machine '%s'", name.c_str());
}

CrossLink &
ClusterBuild::link(const std::string &a, const std::string &b)
{
    for (const BuiltLink &l : links_)
        if ((l.a == a && l.b == b) || (l.a == b && l.b == a))
            return *l.link;
    fatal("ClusterBuild: no link between '%s' and '%s' was declared",
          a.c_str(), b.c_str());
}

NetPort &
ClusterBuild::port(const std::string &name, const std::string &peer)
{
    for (const BuiltLink &l : links_) {
        if (l.a == name && l.b == peer)
            return l.link->port(0);
        if (l.a == peer && l.b == name)
            return l.link->port(1);
    }
    fatal("ClusterBuild: no link between '%s' and '%s' was declared",
          name.c_str(), peer.c_str());
}

ClusterBuild &
ClusterBuild::driver(const std::string &name,
                     std::function<void(NestedSystem &)> fn)
{
    cluster_->setDriver(id(name), std::move(fn));
    return *this;
}

ClusterStats
ClusterBuild::run(ClusterContext &ctx)
{
    ctx.prepare(*cluster_);
    return cluster_->run(ctx.jobs());
}

} // namespace svtsim
