/**
 * @file
 * Unified bench entry point.
 *
 * Every bench binary declares its scenarios (the sweep) and a report
 * callback (the tables), then delegates main() to a BenchHarness. The
 * harness owns the whole CLI surface — `--jobs`, `--seed`, `--trace`,
 * `--json`, `--metrics`, `--faults`, `--breakdown`, `--list`,
 * `--help` — runs the sweep on the deterministic
 * parallel engine, writes machine-readable JSON results and invokes
 * the report with results in declaration order. Output (tables, JSON,
 * per-scenario tick counts) is byte-identical for any `--jobs` value.
 *
 * Benches that are not scenario sweeps (the google-benchmark wall
 * clock micro-benchmarks) install a custom main instead; the harness
 * still parses and strips its own flags and forwards the rest.
 */

#ifndef SVTSIM_SYSTEM_BENCH_HARNESS_H
#define SVTSIM_SYSTEM_BENCH_HARNESS_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "system/sweep.h"

namespace svtsim {

/** Parsed harness CLI options. */
struct BenchOptions
{
    /** --jobs=N: worker threads (0 = one per hardware thread). */
    int jobs = 1;
    /** --seed=S: base seed for every scenario's NestedSystem. */
    std::uint64_t seed = 1;
    /** --trace=FILE: per-scenario Chrome trace + CSV export. */
    std::string tracePath;
    /** --json=FILE: machine-readable results ("-" for stdout). */
    std::string jsonPath;
    /** --metrics=FILE: per-scenario simulated-PMU dump ("-" for
     *  stdout). */
    std::string metricsPath;
    /** --faults=SPEC: fault plan installed on every scenario's
     *  machine (see FaultPlan::parse for the grammar). */
    std::string faultsSpec;
    /** --cluster-jobs=N: workers *inside* each cluster scenario
     *  (0 = one per hardware thread). Results are byte-identical for
     *  any value; 1 is the sequential oracle. */
    int clusterJobs = 1;
    /** --breakdown: print the Table 1-style per-scenario report. */
    bool breakdown = false;
};

/**
 * Declarative bench definition plus the shared main() implementation.
 */
class BenchHarness
{
  public:
    using ReportFn = std::function<void(const SweepResults &results)>;
    using CustomMainFn = std::function<int(
        int argc, char **argv, const BenchOptions &options)>;

    /** @param name Bench identifier (JSON "bench" field).
     *  @param title One-line description for --help/--list. */
    BenchHarness(std::string name, std::string title);

    /** Append a scenario; runs in declaration order. */
    Scenario &add(Scenario scenario);

    /** Shorthand for the common default-config case. */
    Scenario &add(std::string name, VirtMode mode, ScenarioFn run);

    /** Shorthand with a custom StackConfig. */
    Scenario &add(std::string name, VirtMode mode, StackConfig config,
                  ScenarioFn run);

    /** Append a multi-machine (cluster) scenario; `mode` labels the
     *  scenario in JSON (the callback builds its own machines). */
    Scenario &addCluster(std::string name, VirtMode mode,
                         ClusterScenarioFn run);

    /** Install the report callback (prints the human tables). */
    void onReport(ReportFn fn) { report_ = std::move(fn); }

    /**
     * Replace the sweep with a custom main. The harness parses and
     * strips its own flags; unrecognized arguments are forwarded (the
     * google-benchmark bench owns them).
     */
    void onCustomMain(CustomMainFn fn) { customMain_ = std::move(fn); }

    /**
     * The shared main(): parse flags, run the sweep on `--jobs`
     * workers, write JSON, report. Returns a process exit status:
     * 0 on success, 1 when a scenario failed, 2 on a CLI error.
     */
    int main(int argc, char **argv);

    const std::vector<Scenario> &scenarios() const
    {
        return scenarios_;
    }

    /** Serialize results as JSON (stable field and metric order). */
    void writeJson(std::ostream &os, const SweepResults &results,
                   const BenchOptions &options) const;

    /**
     * Serialize the per-scenario simulated-PMU snapshots as JSON.
     * Like writeJson, the output is a pure function of (scenarios,
     * seed): byte-identical for any `--jobs` value.
     */
    void writeMetricsJson(std::ostream &os,
                          const SweepResults &results,
                          const BenchOptions &options) const;

  private:
    int usage(std::ostream &os, int status) const;

    std::string name_;
    std::string title_;
    std::vector<Scenario> scenarios_;
    ReportFn report_;
    CustomMainFn customMain_;
};

} // namespace svtsim

#endif // SVTSIM_SYSTEM_BENCH_HARNESS_H
