#include "system/trace_session.h"

#include <cstdio>
#include <fstream>

#include "sim/log.h"

namespace svtsim {

namespace {

/** Insert @p label before the extension: t.json + "sw" -> t.sw.json. */
std::string
labeledPath(const std::string &path, const std::string &label)
{
    if (label.empty())
        return path;
    auto dot = path.rfind('.');
    auto slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + "." + label;
    }
    return path.substr(0, dot) + "." + label + path.substr(dot);
}

} // namespace

ScopedTrace::ScopedTrace(Machine &machine, const std::string &path,
                         const std::string &label)
    : machine_(machine), tracePath_(labeledPath(path, label))
{
    if (path.empty())
        return;
    sink_ = std::make_unique<TraceSink>(machine.events());
    machine_.setTraceSink(sink_.get());
    sink_->setEnabled(true);
}

ScopedTrace::~ScopedTrace()
{
    if (finished_ || !sink_)
        return;
    std::string report = finish();
    if (!report.empty())
        std::fprintf(stderr, "%s\n", report.c_str());
}

std::string
ScopedTrace::finish()
{
    if (finished_ || !sink_)
        return {};
    finished_ = true;
    std::string report;
    {
        std::ofstream json(tracePath_);
        if (json)
            sink_->writeChromeTrace(json);
        else
            report = "trace: cannot write " + tracePath_ + "\n";
    }
    std::string csv_path = tracePath_ + ".csv";
    {
        std::ofstream csv(csv_path);
        if (csv)
            sink_->writeCsvSummary(csv);
    }
    auto c = sink_->checkConservation();
    report += log_detail::format(
        "trace: %s (+.csv) events=%zu dropped=%llu "
        "elapsed=%.3fus attributed=%.3fus idle=%.3fus "
        "unattributed=%.3fus %s",
        tracePath_.c_str(), sink_->events().size(),
        static_cast<unsigned long long>(sink_->droppedEvents()),
        toUsec(c.elapsed), toUsec(c.attributed), toUsec(c.idle),
        toUsec(c.unattributed),
        c.conserved() ? "conserved" : "NOT CONSERVED");
    machine_.setTraceSink(nullptr);
    return report;
}

} // namespace svtsim
