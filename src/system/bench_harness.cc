#include "system/bench_harness.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "sim/log.h"
#include "sim/worker_pool.h"

namespace svtsim {

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers). */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

/** Shortest round-trippable double representation; deterministic
 *  across worker counts because the values themselves are. */
std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

BenchHarness::BenchHarness(std::string name, std::string title)
    : name_(std::move(name)), title_(std::move(title))
{
}

Scenario &
BenchHarness::add(Scenario scenario)
{
    scenarios_.push_back(std::move(scenario));
    return scenarios_.back();
}

Scenario &
BenchHarness::add(std::string name, VirtMode mode, ScenarioFn run)
{
    return add(std::move(name), mode, StackConfig{}, std::move(run));
}

Scenario &
BenchHarness::add(std::string name, VirtMode mode, StackConfig config,
                  ScenarioFn run)
{
    Scenario s;
    s.name = std::move(name);
    s.mode = mode;
    s.config = config;
    s.run = std::move(run);
    return add(std::move(s));
}

Scenario &
BenchHarness::addCluster(std::string name, VirtMode mode,
                         ClusterScenarioFn run)
{
    Scenario s;
    s.name = std::move(name);
    s.mode = mode;
    s.clusterRun = std::move(run);
    return add(std::move(s));
}

int
BenchHarness::usage(std::ostream &os, int status) const
{
    os << "usage: " << name_
       << " [--jobs=N] [--cluster-jobs=N] [--seed=S] [--trace=FILE]"
          " [--json=FILE] [--metrics=FILE] [--faults=SPEC]"
          " [--breakdown] [--list]\n\n"
       << title_ << "\n\n"
       << "  --jobs=N        run scenarios on N worker threads\n"
       << "                  (0 = one per hardware thread; default 1)\n"
       << "  --cluster-jobs=N  workers inside each cluster scenario\n"
       << "                  (0 = one per hardware thread; default 1 =\n"
       << "                  sequential oracle; results byte-identical\n"
       << "                  for any value)\n"
       << "  --seed=S        base seed for every scenario's "
          "NestedSystem (default 1)\n"
       << "  --trace=FILE    export per-scenario Chrome trace JSON and "
          "a CSV summary\n"
       << "  --json=FILE     write machine-readable results "
          "(\"-\" = stdout)\n"
       << "  --metrics=FILE  write the per-scenario simulated-PMU "
          "dump (\"-\" = stdout)\n"
       << "  --faults=SPEC   inject deterministic faults; SPEC is "
          "';'-separated\n"
       << "                  site@trigger clauses, e.g. "
          "'ipi.drop@n3;ipi.delay@p0.1,d2us'\n"
       << "  --breakdown     print a Table 1-style breakdown per "
          "scenario\n"
       << "  --list          list scenarios and exit\n"
       << "  --help          this text\n";
    if (customMain_)
        os << "\nremaining arguments are forwarded to the underlying "
              "benchmark runner\n";
    return status;
}

void
BenchHarness::writeJson(std::ostream &os, const SweepResults &results,
                        const BenchOptions &options) const
{
    // --jobs is deliberately absent: the JSON is a *result* artifact
    // and must be byte-identical regardless of the worker count.
    os << "{\n  \"bench\": ";
    jsonString(os, name_);
    os << ",\n  \"title\": ";
    jsonString(os, title_);
    os << ",\n  \"seed\": " << options.seed;
    if (!options.faultsSpec.empty()) {
        os << ",\n  \"faults\": ";
        jsonString(os, options.faultsSpec);
    }
    os << ",\n  \"scenarios\": [";
    bool first_scenario = true;
    for (const auto &r : results.all()) {
        os << (first_scenario ? "\n" : ",\n");
        first_scenario = false;
        os << "    {\"name\": ";
        jsonString(os, r.name());
        os << ", \"mode\": ";
        jsonString(os, virtModeName(r.mode()));
        os << ", \"seed\": " << r.seed();
        os << ", \"final_ticks\": " << r.finalTicks();
        if (!r.ok()) {
            os << ", \"error\": ";
            jsonString(os, r.error());
        }
        os << ", \"metrics\": {";
        bool first_metric = true;
        for (const auto &[key, value] : r.metrics()) {
            if (!first_metric)
                os << ", ";
            first_metric = false;
            jsonString(os, key);
            os << ": " << jsonNumber(value);
        }
        os << "}}";
    }
    os << "\n  ]\n}\n";
}

void
BenchHarness::writeMetricsJson(std::ostream &os,
                               const SweepResults &results,
                               const BenchOptions &options) const
{
    // Same contract as writeJson: --jobs is absent by design, the
    // snapshots are deterministic per scenario, and samples are
    // name-sorted, so the dump is byte-identical across worker counts.
    os << "{\n  \"bench\": ";
    jsonString(os, name_);
    os << ",\n  \"title\": ";
    jsonString(os, title_);
    os << ",\n  \"seed\": " << options.seed;
    if (!options.faultsSpec.empty()) {
        os << ",\n  \"faults\": ";
        jsonString(os, options.faultsSpec);
    }
    os << ",\n  \"scenarios\": [";
    bool first = true;
    for (const auto &r : results.all()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\n      \"name\": ";
        jsonString(os, r.name());
        os << ",\n      \"mode\": ";
        jsonString(os, virtModeName(r.mode()));
        os << ",\n      \"seed\": " << r.seed();
        os << ",\n      \"final_ticks\": " << r.finalTicks();
        if (!r.ok()) {
            os << ",\n      \"error\": ";
            jsonString(os, r.error());
        }
        os << ",\n      \"pmu\": ";
        r.metricsSnapshot().writeJson(os, "      ");
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

int
BenchHarness::main(int argc, char **argv)
{
    BenchOptions options;
    std::vector<char *> forwarded;
    if (argc > 0)
        forwarded.push_back(argv[0]);
    bool list_only = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::string(prefix).size());
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout, 0);
            return 0;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            std::uint64_t n = 0;
            if (!parseUint(value("--jobs="), n) || n > 4096) {
                std::cerr << name_ << ": bad --jobs value '"
                          << value("--jobs=") << "'\n";
                return usage(std::cerr, 2);
            }
            options.jobs = n == 0 ? WorkerPool::defaultWorkers()
                                  : static_cast<int>(n);
        } else if (arg.rfind("--cluster-jobs=", 0) == 0) {
            std::uint64_t n = 0;
            if (!parseUint(value("--cluster-jobs="), n) || n > 4096) {
                std::cerr << name_ << ": bad --cluster-jobs value '"
                          << value("--cluster-jobs=") << "'\n";
                return usage(std::cerr, 2);
            }
            options.clusterJobs = n == 0 ? WorkerPool::defaultWorkers()
                                         : static_cast<int>(n);
        } else if (arg.rfind("--seed=", 0) == 0) {
            if (!parseUint(value("--seed="), options.seed)) {
                std::cerr << name_ << ": bad --seed value '"
                          << value("--seed=") << "'\n";
                return usage(std::cerr, 2);
            }
        } else if (arg.rfind("--trace=", 0) == 0) {
            options.tracePath = value("--trace=");
        } else if (arg.rfind("--json=", 0) == 0) {
            options.jsonPath = value("--json=");
        } else if (arg.rfind("--metrics=", 0) == 0) {
            options.metricsPath = value("--metrics=");
        } else if (arg.rfind("--faults=", 0) == 0) {
            options.faultsSpec = value("--faults=");
            try {
                FaultPlan::parse(options.faultsSpec);
            } catch (const FatalError &e) {
                std::cerr << name_ << ": bad --faults value: "
                          << e.what() << "\n";
                return usage(std::cerr, 2);
            }
        } else if (arg == "--breakdown") {
            options.breakdown = true;
        } else if (customMain_) {
            forwarded.push_back(argv[i]);
        } else {
            std::cerr << name_ << ": unknown argument '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (list_only) {
        std::cout << name_ << ": " << title_ << "\n";
        for (const auto &s : scenarios_)
            std::cout << "  " << s.name << "  ["
                      << virtModeName(s.mode) << "]\n";
        return 0;
    }

    if (customMain_) {
        return customMain_(static_cast<int>(forwarded.size()),
                           forwarded.data(), options);
    }

    SweepOptions sweep_options;
    sweep_options.jobs = options.jobs;
    sweep_options.clusterJobs = options.clusterJobs;
    sweep_options.baseSeed = options.seed;
    sweep_options.tracePath = options.tracePath;
    if (!options.faultsSpec.empty())
        sweep_options.faults = FaultPlan::parse(options.faultsSpec);

    SweepResults results;
    try {
        results = runSweep(scenarios_, sweep_options);
    } catch (const SimError &e) {
        std::cerr << name_ << ": " << e.what() << "\n";
        return 1;
    }

    if (!options.jsonPath.empty()) {
        if (options.jsonPath == "-") {
            writeJson(std::cout, results, options);
        } else {
            std::ofstream out(options.jsonPath);
            if (!out) {
                std::cerr << name_ << ": cannot write "
                          << options.jsonPath << "\n";
                return 1;
            }
            writeJson(out, results, options);
        }
    }

    if (!options.metricsPath.empty()) {
        if (options.metricsPath == "-") {
            writeMetricsJson(std::cout, results, options);
        } else {
            std::ofstream out(options.metricsPath);
            if (!out) {
                std::cerr << name_ << ": cannot write "
                          << options.metricsPath << "\n";
                return 1;
            }
            writeMetricsJson(out, results, options);
        }
    }

    if (options.breakdown) {
        for (const auto &r : results.all()) {
            std::cout << "== " << r.name() << " ["
                      << virtModeName(r.mode()) << "] ==\n";
            r.metricsSnapshot().writeBreakdown(std::cout);
            std::cout << "\n";
        }
    }

    if (!results.allOk()) {
        for (const auto &r : results.all()) {
            if (!r.ok())
                std::cerr << name_ << ": scenario '" << r.name()
                          << "' failed: " << r.error() << "\n";
        }
        return 1;
    }

    if (report_) {
        try {
            report_(results);
        } catch (const SimError &e) {
            std::cerr << name_ << ": report failed: " << e.what()
                      << "\n";
            return 1;
        }
    }
    return 0;
}

} // namespace svtsim
