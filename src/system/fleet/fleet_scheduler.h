/**
 * @file
 * L0 fleet scheduler: realizes a FleetSpec into a Cluster and runs it.
 *
 * Each placement slot becomes one single-core machine in the cluster
 * (topology 1x1xSMT) hosting the slot's full L0/L1/L2 stack — the
 * fleet is a rack of such per-core stacks, exactly how an L0 operator
 * carves a Table 4 box into tenant slots. The placement policy decides
 * what the slot's SMT sibling does:
 *
 *  - svt-pair: the slot runs an SVt stack (SwSvt/HwSvt per
 *    FleetSpec::pairedMode); the sibling is the SVt thread.
 *  - sibling-share: the slot runs a conventional Nested stack and the
 *    sibling hosts *another tenant's* vCPU; both pay an SMT-contention
 *    tax on their CPU-bound costs (FleetSpec::smtContention).
 *  - isolate: conventional Nested stack, sibling idle, no tax.
 *
 * Tenant drivers ride the conservative parallel engine: memcached
 * tenants get a bare-metal loadgen machine fanned out over per-slot
 * CrossLinks (per-pair lookahead keeps those windows at the ToR-wire
 * scale), while TPC-C and video slots are link-less and run to
 * completion in a single window. The whole run is a pure function of
 * (spec, seed): byte-identical for any --jobs/--cluster-jobs.
 */

#ifndef SVTSIM_SYSTEM_FLEET_FLEET_SCHEDULER_H
#define SVTSIM_SYSTEM_FLEET_FLEET_SCHEDULER_H

#include <cstdint>

#include "stats/fleet_rollup.h"
#include "system/cluster_spec.h"
#include "system/fleet/fleet_spec.h"

namespace svtsim {

class FleetScheduler
{
  public:
    /** Validates @p spec (FatalError on a malformed one) and computes
     *  the placement; nothing is built until run(). */
    FleetScheduler(const FleetSpec &spec, std::uint64_t seed);

    const FleetSpec &spec() const { return spec_; }
    const FleetPlacement &placement() const { return placement_; }

    /** Cluster machine name of placement slot @p i. */
    std::string slotMachineName(int i) const;

    /**
     * Build the fleet, run it with ctx.jobs() workers under the
     * harness context (fault plan, traces, fingerprints), record the
     * per-tenant and fleet metrics on @p result, and return the
     * rollup. Call from a ClusterScenarioFn.
     */
    FleetOutcome run(ClusterContext &ctx, ScenarioResult &result);

    /** Standalone run (tests): no harness context. */
    FleetOutcome run(int clusterJobs);

  private:
    FleetOutcome execute(ClusterContext *ctx, ScenarioResult *result,
                         int jobs);

    FleetSpec spec_;
    std::uint64_t seed_;
    FleetPlacement placement_;
};

/** Scale the CPU-bound cost-model fields of a sibling-sharing slot by
 *  (1 + contention) — wire latency, link bandwidth and SVt wake
 *  latencies are physical constants and stay put. Exposed for tests. */
void applySmtContention(CostModel &costs, double contention);

} // namespace svtsim

#endif // SVTSIM_SYSTEM_FLEET_FLEET_SCHEDULER_H
