#include "system/fleet/fleet_scheduler.h"

#include <memory>
#include <string>
#include <vector>

#include "io/net_fabric.h"
#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "sim/log.h"
#include "workloads/remote_peer.h"
#include "workloads/tenant_drivers.h"
#include "workloads/tpcc.h"
#include "workloads/video.h"

namespace svtsim {

void
applySmtContention(CostModel &costs, double contention)
{
    const double f = 1.0 + contention;
    auto scale = [f](Ticks &t) {
        t = static_cast<Ticks>(t * f);
    };
    // Execution-slot-bound work slows when the sibling computes;
    // wire latency, link bandwidth and wake latencies are physical
    // constants of the fabric and the sleep machinery.
    scale(costs.cpuidExec);
    scale(costs.regOp);
    scale(costs.memAccess);
    scale(costs.llcAccess);
    scale(costs.dramAccess);
    scale(costs.msrNative);
    scale(costs.handlerDispatch);
    scale(costs.nestedExitCheck);
    scale(costs.nestedStateMachine);
    scale(costs.lazySyncValue);
    scale(costs.emulVmcsAccess);
    scale(costs.emulCpuid);
    scale(costs.emulMsr);
    scale(costs.mmioDecode);
    scale(costs.l1HandlerLogic);
    scale(costs.tcpStackPerSegment);
    scale(costs.vhostPerBuffer);
    scale(costs.blockLayerPerRequest);
    scale(costs.blockWriteSurcharge);
    scale(costs.guestBlockSyscall);
    scale(costs.l1IoThreadWake);
    scale(costs.netCopyPerByte);
    scale(costs.diskCopyPerByte);
}

FleetScheduler::FleetScheduler(const FleetSpec &spec,
                               std::uint64_t seed)
    : spec_(spec), seed_(seed), placement_(placeFleet(spec, seed))
{}

std::string
FleetScheduler::slotMachineName(int i) const
{
    const PlacementSlot &slot = placement_.slots[i];
    return spec_.tenants[slot.tenant].name + "-v" +
           std::to_string(slot.vcpu);
}

FleetOutcome
FleetScheduler::run(ClusterContext &ctx, ScenarioResult &result)
{
    return execute(&ctx, &result, 0);
}

FleetOutcome
FleetScheduler::run(int clusterJobs)
{
    return execute(nullptr, nullptr, clusterJobs);
}

namespace {

/** Per-slot workload state kept alive across Cluster::run. */
struct SlotRuntime
{
    // memcached serving slot
    std::unique_ptr<VirtioNetStack> net;
    std::unique_ptr<MemcachedServer> server;
    std::uint64_t served = 0;
    /** Loadgen flow index serving this slot (memcached only). */
    int flowIdx = -1;

    // tpcc slot (self-contained client+server machine, as fig9)
    std::unique_ptr<NetFabric> fabric;
    std::unique_ptr<RamDisk> disk;
    std::unique_ptr<VirtioBlkStack> blk;
    std::unique_ptr<Tpcc> tpcc;
    TpccResult tpccResult;

    // video slot
    std::unique_ptr<VideoPlayback> video;
    VideoResult videoResult;
};

/** One memcached tenant's bare-metal loadgen machine. */
struct LoadgenRuntime
{
    std::string machineName;
    std::unique_ptr<OpenLoopEtcLoadgen> gen;
};

} // namespace

FleetOutcome
FleetScheduler::execute(ClusterContext *ctx, ScenarioResult *result,
                        int jobs)
{
    const VirtMode slotMode = spec_.policy == PlacementPolicy::SvtPair
                                  ? spec_.pairedMode
                                  : VirtMode::Nested;
    // One single-core machine per slot; HW SVt needs the third
    // hardware context per core (paperTopology(HwSvt) likewise).
    const MachineTopology slotTopo{
        1, 1, slotMode == VirtMode::HwSvt ? 3 : 2};
    const int ntenants = static_cast<int>(spec_.tenants.size());
    const int nslots = static_cast<int>(placement_.slots.size());

    // ---- Declare the cluster -------------------------------------
    ClusterSpec cs;
    std::vector<std::string> slotNames(nslots);
    for (int i = 0; i < nslots; ++i) {
        slotNames[i] = slotMachineName(i);
        StackConfig config;
        config.mode = slotMode;
        cs.machine(slotNames[i], slotTopo, config);
    }
    std::vector<LoadgenRuntime> loadgens(ntenants);
    for (int t = 0; t < ntenants; ++t) {
        if (spec_.tenants[t].workload != TenantWorkload::Memcached)
            continue;
        loadgens[t].machineName = spec_.tenants[t].name + "-lg";
        StackConfig config;
        config.mode = VirtMode::Native;
        cs.machine(loadgens[t].machineName, MachineTopology{1, 1, 2},
                   config);
        for (int i = 0; i < nslots; ++i)
            if (placement_.slots[i].tenant == t)
                cs.link(loadgens[t].machineName, slotNames[i],
                        spec_.linkLatency, CostModel{}.linkBitsPerSec);
    }

    ClusterBuild build = cs.realize(seed_);

    // ---- Policy effects on slot machines -------------------------
    for (int i = 0; i < nslots; ++i)
        if (placement_.slots[i].sharedSibling)
            applySmtContention(build.machine(slotNames[i]).costs(),
                               spec_.smtContention);

    // ---- Wire workloads and drivers ------------------------------
    std::vector<std::unique_ptr<SlotRuntime>> runtimes;
    runtimes.reserve(nslots);
    for (int i = 0; i < nslots; ++i) {
        const PlacementSlot &slot = placement_.slots[i];
        const TenantSpec &tenant = spec_.tenants[slot.tenant];
        const std::string &name = slotNames[i];
        const double cpuScale =
            slot.sharedSibling ? 1.0 + spec_.smtContention : 1.0;
        auto rtp = std::make_unique<SlotRuntime>();
        SlotRuntime *rt = rtp.get();
        Machine &m = build.machine(name);
        const Ticks duration = tenant.duration;
        switch (tenant.workload) {
        case TenantWorkload::Memcached: {
            rt->net = std::make_unique<VirtioNetStack>(
                build.stack(name),
                build.port(name, loadgens[slot.tenant].machineName));
            rt->server = std::make_unique<MemcachedServer>(
                build.stack(name), *rt->net,
                42 + static_cast<std::uint64_t>(i));
            build.driver(name, [rt, duration](NestedSystem &) {
                rt->served = rt->server->serveUntil(duration);
            });
            break;
        }
        case TenantWorkload::Tpcc: {
            rt->fabric = std::make_unique<NetFabric>(
                m, m.costs().wireLatency, m.costs().linkBitsPerSec);
            rt->net = std::make_unique<VirtioNetStack>(
                build.stack(name), *rt->fabric);
            rt->disk = std::make_unique<RamDisk>(m, "pgdata");
            rt->blk = std::make_unique<VirtioBlkStack>(
                build.stack(name), *rt->disk);
            rt->tpcc = std::make_unique<Tpcc>(
                build.stack(name), *rt->net, *rt->fabric, *rt->blk,
                7 + static_cast<std::uint64_t>(i), 4.5, usec(13),
                cpuScale);
            build.driver(name, [rt, duration](NestedSystem &) {
                rt->tpccResult = rt->tpcc->run(duration);
            });
            break;
        }
        case TenantWorkload::Video: {
            rt->disk = std::make_unique<RamDisk>(m, "media");
            rt->blk = std::make_unique<VirtioBlkStack>(
                build.stack(name), *rt->disk);
            VideoProfile profile;
            profile.decodeMedian = static_cast<Ticks>(
                profile.decodeMedian * cpuScale);
            rt->video = std::make_unique<VideoPlayback>(
                build.stack(name), *rt->blk, profile,
                99 + static_cast<std::uint64_t>(i));
            const double fps = tenant.fps;
            build.driver(name, [rt, fps, duration](NestedSystem &) {
                rt->videoResult = rt->video->run(fps, duration);
            });
            break;
        }
        }
        runtimes.push_back(std::move(rtp));
    }
    for (int t = 0; t < ntenants; ++t) {
        if (spec_.tenants[t].workload != TenantWorkload::Memcached)
            continue;
        LoadgenRuntime &lg = loadgens[t];
        lg.gen = std::make_unique<OpenLoopEtcLoadgen>(
            build.machine(lg.machineName),
            seed_ + 1000 + static_cast<std::uint64_t>(t) * 100);
        for (int i = 0; i < nslots; ++i)
            if (placement_.slots[i].tenant == t)
                runtimes[i]->flowIdx = lg.gen->addFlow(
                    build.port(lg.machineName, slotNames[i]),
                    spec_.tenants[t].qpsPerVcpu);
        OpenLoopEtcLoadgen *gen = lg.gen.get();
        const Ticks duration = spec_.tenants[t].duration;
        build.driver(lg.machineName,
                     [gen, duration](NestedSystem &) {
                         gen->run(duration);
                     });
    }

    // ---- Run ------------------------------------------------------
    const ClusterStats stats =
        ctx ? build.run(*ctx) : build.run(jobs);

    // ---- Roll up --------------------------------------------------
    FleetOutcome out;
    Percentiles fleetLat;
    for (int t = 0; t < ntenants; ++t) {
        const TenantSpec &tenant = spec_.tenants[t];
        TenantOutcome to;
        to.name = tenant.name;
        to.workload = tenantWorkloadName(tenant.workload);
        to.vcpus = tenant.vcpus;
        to.sloTarget = tenant.sloTarget;

        Percentiles lat;
        double interference = 0, meanTxnSum = 0;
        int slots = 0;
        for (int i = 0; i < nslots; ++i) {
            if (placement_.slots[i].tenant != t)
                continue;
            const SlotRuntime &rt = *runtimes[i];
            Machine &m = build.machine(slotNames[i]);
            interference +=
                exitOverheadFraction(m.snapshotMetrics(), m.now());
            ++slots;
            switch (tenant.workload) {
            case TenantWorkload::Memcached:
                lat.merge(loadgens[t].gen->flow(rt.flowIdx).latency);
                to.completed +=
                    loadgens[t].gen->flow(rt.flowIdx).completed;
                break;
            case TenantWorkload::Tpcc:
                to.tpm += rt.tpccResult.tpm;
                meanTxnSum += rt.tpccResult.meanTxnMsec;
                to.completed += rt.tpccResult.transactions;
                break;
            case TenantWorkload::Video:
                to.frames += rt.videoResult.totalFrames;
                to.droppedFrames += rt.videoResult.droppedFrames;
                to.completed += static_cast<std::uint64_t>(
                    rt.videoResult.totalFrames);
                break;
            }
        }
        to.interference = slots ? interference / slots : 0;
        switch (tenant.workload) {
        case TenantWorkload::Memcached:
            to.offeredQps = tenant.qpsPerVcpu * tenant.vcpus;
            to.achievedQps = static_cast<double>(to.completed) /
                             toSec(tenant.duration);
            if (lat.count()) {
                to.meanUsec = lat.mean();
                to.p99Usec = lat.p99();
            }
            to.sloValue = to.p99Usec;
            to.sloMet = lat.count() > 0 && to.sloValue <= to.sloTarget;
            fleetLat.merge(lat);
            break;
        case TenantWorkload::Tpcc:
            to.meanTxnMsec = slots ? meanTxnSum / slots : 0;
            to.sloValue = to.meanTxnMsec;
            to.sloMet = to.completed > 0 && to.sloValue <= to.sloTarget;
            break;
        case TenantWorkload::Video:
            to.dropFraction =
                to.frames ? static_cast<double>(to.droppedFrames) /
                                to.frames
                          : 0;
            to.sloValue = to.dropFraction;
            to.sloMet = to.frames > 0 && to.sloValue <= to.sloTarget;
            break;
        }
        out.tenants.push_back(std::move(to));
    }
    out.fleetP99Usec = fleetLat.count() ? fleetLat.p99() : 0;
    finalizeFleetOutcome(out);

    if (result) {
        for (const TenantOutcome &to : out.tenants) {
            result->record(to.name + "_slo_value", to.sloValue);
            result->record(to.name + "_slo_met", to.sloMet ? 1 : 0);
            result->record(to.name + "_interference",
                           to.interference);
            if (to.workload == std::string("memcached")) {
                result->record(to.name + "_p99_usec", to.p99Usec);
                result->record(to.name + "_achieved_qps",
                               to.achievedQps);
            } else if (to.workload == std::string("tpcc")) {
                result->record(to.name + "_tpm", to.tpm);
            } else {
                result->record(to.name + "_dropped_frames",
                               to.droppedFrames);
            }
        }
        result->record("fleet_p99_usec", out.fleetP99Usec);
        result->record("fleet_qps_under_sla", out.qpsUnderSla);
        result->record("fleet_offered_qps", out.offeredQps);
        result->record("fleet_tenants_met", out.tenantsMet);
        result->record("fleet_sla_fraction", out.slaFraction);
        result->record("fleet_mean_interference",
                       out.meanInterference);
        result->record("cluster_epochs",
                       static_cast<double>(stats.epochs));
        result->record("cluster_steps",
                       static_cast<double>(stats.steps));
        result->record("cluster_merged",
                       static_cast<double>(stats.merged));
    }
    if (ctx)
        ctx->finish(build.cluster(), *result);
    return out;
}

} // namespace svtsim
