#include "system/fleet/fleet_spec.h"

#include <unordered_set>
#include <utility>

#include "sim/log.h"
#include "sim/random.h"

namespace svtsim {

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::SvtPair:
        return "svt-pair";
    case PlacementPolicy::SiblingShare:
        return "sibling-share";
    case PlacementPolicy::Isolate:
        return "isolate";
    }
    return "?";
}

const char *
tenantWorkloadName(TenantWorkload workload)
{
    switch (workload) {
    case TenantWorkload::Memcached:
        return "memcached";
    case TenantWorkload::Tpcc:
        return "tpcc";
    case TenantWorkload::Video:
        return "video";
    }
    return "?";
}

TenantSpec
memcachedTenant(std::string name, int vcpus, double qps_per_vcpu,
                double slo_p99_usec)
{
    TenantSpec t;
    t.name = std::move(name);
    t.workload = TenantWorkload::Memcached;
    t.vcpus = vcpus;
    t.qpsPerVcpu = qps_per_vcpu;
    t.sloTarget = slo_p99_usec;
    return t;
}

TenantSpec
tpccTenant(std::string name, int vcpus, double slo_mean_txn_msec)
{
    TenantSpec t;
    t.name = std::move(name);
    t.workload = TenantWorkload::Tpcc;
    t.vcpus = vcpus;
    t.sloTarget = slo_mean_txn_msec;
    return t;
}

TenantSpec
videoTenant(std::string name, int vcpus, double fps,
            double slo_drop_fraction)
{
    TenantSpec t;
    t.name = std::move(name);
    t.workload = TenantWorkload::Video;
    t.vcpus = vcpus;
    t.fps = fps;
    t.sloTarget = slo_drop_fraction;
    return t;
}

int
policyCapacity(const TopologySpec &topo, PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::SvtPair:
    case PlacementPolicy::Isolate:
        return topo.totalCores();
    case PlacementPolicy::SiblingShare:
        return topo.totalCores() * topo.smtWays;
    }
    return 0;
}

int
totalVcpuDemand(const FleetSpec &spec)
{
    int demand = 0;
    for (const TenantSpec &t : spec.tenants)
        demand += t.vcpus;
    return demand;
}

void
validateTopologySpec(const TopologySpec &topo)
{
    if (topo.sockets < 1 || topo.coresPerSocket < 1 ||
        topo.smtWays < 1)
        fatal("TopologySpec: %d sockets x %d cores x %d-way SMT is "
              "not a machine; every dimension must be >= 1",
              topo.sockets, topo.coresPerSocket, topo.smtWays);
}

void
validateTenantSpec(const TenantSpec &tenant)
{
    if (tenant.name.empty())
        fatal("TenantSpec: tenant with an empty name; every tenant "
              "needs a unique non-empty name (it keys per-tenant "
              "metrics and SLO reporting)");
    const char *name = tenant.name.c_str();
    if (tenant.vcpus < 1)
        fatal("TenantSpec '%s': demands %d vCPUs; a tenant must "
              "demand at least one",
              name, tenant.vcpus);
    if (tenant.sloTarget <= 0)
        fatal("TenantSpec '%s': SLO target %g must be > 0 (%s "
              "tenants express it as %s)",
              name, tenant.sloTarget,
              tenantWorkloadName(tenant.workload),
              tenant.workload == TenantWorkload::Memcached
                  ? "p99 latency in usec"
                  : (tenant.workload == TenantWorkload::Tpcc
                         ? "mean transaction latency in msec"
                         : "a dropped-frame fraction"));
    if (tenant.duration <= 0)
        fatal("TenantSpec '%s': duration %lld ticks must be > 0",
              name, static_cast<long long>(tenant.duration));
    if (tenant.workload == TenantWorkload::Memcached &&
        tenant.qpsPerVcpu <= 0)
        fatal("TenantSpec '%s': memcached tenants need an offered "
              "load; qpsPerVcpu %g must be > 0",
              name, tenant.qpsPerVcpu);
    if (tenant.workload == TenantWorkload::Video && tenant.fps <= 0)
        fatal("TenantSpec '%s': video tenants need a frame rate; "
              "fps %g must be > 0",
              name, tenant.fps);
}

void
validateFleetSpec(const FleetSpec &spec)
{
    validateTopologySpec(spec.topology);
    if (spec.tenants.empty())
        fatal("FleetSpec: empty tenant set; a fleet with nothing to "
              "place is almost certainly a harness bug — declare at "
              "least one TenantSpec");
    std::unordered_set<std::string> names;
    for (const TenantSpec &t : spec.tenants) {
        validateTenantSpec(t);
        if (!names.insert(t.name).second)
            fatal("FleetSpec: tenant '%s' declared twice; tenant "
                  "names must be unique (they key per-tenant metrics "
                  "and SLO reporting)",
                  t.name.c_str());
    }
    if (spec.policy == PlacementPolicy::SvtPair) {
        if (spec.topology.smtWays % 2 != 0)
            fatal("FleetSpec: policy svt-pair pairs each vCPU with an "
                  "SVt thread on its SMT sibling, which needs an even "
                  "number of SMT ways per core; this topology has %d. "
                  "Use smtWays=2 (the Table 4 testbed) or a non-paired "
                  "policy (sibling-share, isolate)",
                  spec.topology.smtWays);
        if (spec.pairedMode != VirtMode::SwSvt &&
            spec.pairedMode != VirtMode::HwSvt)
            fatal("FleetSpec: pairedMode %s is not an SVt mode; "
                  "svt-pair slots run SwSvt or HwSvt stacks",
                  virtModeName(spec.pairedMode));
    }
    const int demand = totalVcpuDemand(spec);
    const int capacity = policyCapacity(spec.topology, spec.policy);
    if (demand > capacity)
        fatal("FleetSpec: tenants demand %d vCPUs but policy %s on "
              "%d sockets x %d cores x %d-way SMT offers only %d "
              "slots; shrink the tenant set%s",
              demand, placementPolicyName(spec.policy),
              spec.topology.sockets, spec.topology.coresPerSocket,
              spec.topology.smtWays, capacity,
              spec.policy == PlacementPolicy::SiblingShare
                  ? ""
                  : " or switch to sibling-share (smtWays vCPUs per "
                    "core)");
    if (spec.smtContention < 0)
        fatal("FleetSpec: smtContention %g must be >= 0 (a "
              "fractional slowdown)",
              spec.smtContention);
    if (spec.linkLatency <= 0)
        fatal("FleetSpec: linkLatency %lld ticks must be > 0 (it is "
              "the conservative lookahead of the loadgen links)",
              static_cast<long long>(spec.linkLatency));
}

FleetPlacement
placeFleet(const FleetSpec &spec, std::uint64_t seed)
{
    validateFleetSpec(spec);

    // Demand list, round-robin across tenants so consecutive slots
    // belong to different tenants and sibling-share genuinely
    // co-schedules cross-tenant pairs.
    struct Demand
    {
        int tenant;
        int vcpu;
    };
    std::vector<Demand> demand;
    std::vector<int> next(spec.tenants.size(), 0);
    for (bool placed = true; placed;) {
        placed = false;
        for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
            if (next[t] < spec.tenants[t].vcpus) {
                demand.push_back(
                    {static_cast<int>(t), next[t]++});
                placed = true;
            }
        }
    }

    // Seed-shuffled core order (Fisher-Yates over Rng): the placement
    // is a pure function of (spec, seed).
    std::vector<int> cores(spec.topology.totalCores());
    for (std::size_t i = 0; i < cores.size(); ++i)
        cores[i] = static_cast<int>(i);
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xf1ee7u);
    for (std::size_t i = cores.size(); i > 1; --i) {
        const std::size_t j = rng.below(i);
        std::swap(cores[i - 1], cores[j]);
    }

    FleetPlacement placement;
    placement.slots.reserve(demand.size());
    const int perCore = spec.policy == PlacementPolicy::SiblingShare
                            ? spec.topology.smtWays
                            : 1;
    for (std::size_t i = 0; i < demand.size(); ++i) {
        const int core = cores[i / perCore];
        PlacementSlot slot;
        slot.tenant = demand[i].tenant;
        slot.vcpu = demand[i].vcpu;
        slot.socket = core / spec.topology.coresPerSocket;
        slot.core = core;
        slot.thread = static_cast<int>(i % perCore);
        placement.slots.push_back(slot);
    }
    // Mark sibling sharing after the fact (the last slot on a core
    // may have no sibling when demand doesn't fill the core).
    if (perCore > 1) {
        for (std::size_t i = 0; i < placement.slots.size(); ++i) {
            for (std::size_t j = i + 1;
                 j < placement.slots.size() &&
                 placement.slots[j].core == placement.slots[i].core;
                 ++j) {
                placement.slots[i].sharedSibling = true;
                placement.slots[j].sharedSibling = true;
                placement.slots[i].siblingTenant =
                    placement.slots[j].tenant;
                placement.slots[j].siblingTenant =
                    placement.slots[i].tenant;
            }
        }
    }
    return placement;
}

} // namespace svtsim
