/**
 * @file
 * Declarative fleet description: topology, tenants, placement policy.
 *
 * The paper's central claim — pairing each L2 vCPU with an SVt thread
 * on the adjacent SMT sibling beats both sharing the sibling with
 * another vCPU and leaving it idle — is exercised here at rack scale:
 * an L0 fleet scheduler places many L1 hypervisors (each hosting an
 * L2 vCPU) across the full Table 4 topology under one of three
 * SMT-sibling policies, all first-class sweepable knobs:
 *
 *  - svt-pair: each placed vCPU owns a core; the SMT sibling runs its
 *    SVt thread (SW SVt, or the HW SVt context when pairedMode says
 *    so). Capacity: one vCPU per core.
 *  - sibling-share: consolidation — both SMT ways of a core host
 *    independent vCPUs (conventional nested stacks), which contend
 *    for the core's execution slots. Capacity: smtWays vCPUs per
 *    core.
 *  - isolate: each vCPU owns a core and the sibling idles
 *    (conventional nested stack, no SMT interference, half the
 *    machine wasted). Capacity: one vCPU per core.
 *
 * Following the validateStackConfig discipline, a FleetSpec is
 * validated at construction: overcommitting vCPUs beyond the policy
 * capacity, SVt pairing on a topology without sibling pairs, empty
 * tenant sets and malformed tenants are FatalErrors with actionable
 * messages, raised before anything is built.
 */

#ifndef SVTSIM_SYSTEM_FLEET_FLEET_SPEC_H
#define SVTSIM_SYSTEM_FLEET_FLEET_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "hv/stack_config.h"
#include "sim/ticks.h"

namespace svtsim {

/** Physical topology the fleet is placed on (Table 4 defaults:
 *  2 sockets x 8 cores x 2-way SMT). */
struct TopologySpec
{
    int sockets = 2;
    int coresPerSocket = 8;
    int smtWays = 2;

    int totalCores() const { return sockets * coresPerSocket; }
    int totalThreads() const { return totalCores() * smtWays; }
};

/** SMT-sibling placement policy (see the file comment). */
enum class PlacementPolicy
{
    SvtPair,
    SiblingShare,
    Isolate,
};

/** Canonical knob spelling: "svt-pair" | "sibling-share" | "isolate". */
const char *placementPolicyName(PlacementPolicy policy);

/** Workload class a tenant runs (the paper's Section 6.3 set). */
enum class TenantWorkload
{
    Memcached, ///< ETC key-value serving under an open-loop loadgen.
    Tpcc,      ///< sysbench-TPCC over a PostgreSQL-like server.
    Video,     ///< Soft-realtime 4K playback.
};

const char *tenantWorkloadName(TenantWorkload workload);

/**
 * One tenant: a workload class, its vCPU demand, and its SLO. The SLO
 * target's unit depends on the workload:
 *  - Memcached: p99 request latency in usec (paper SLA: 500);
 *  - Tpcc: mean transaction latency in msec;
 *  - Video: dropped-frame fraction.
 * The SLO is met iff the measured value is <= sloTarget.
 */
struct TenantSpec
{
    std::string name;
    TenantWorkload workload = TenantWorkload::Memcached;
    /** L2 vCPUs demanded; each becomes one placement slot. */
    int vcpus = 1;
    double sloTarget = 500.0;
    /** Offered load per vCPU (Memcached only). */
    double qpsPerVcpu = 8000.0;
    /** Frame rate (Video only). */
    double fps = 60.0;
    /** Simulated run length of this tenant's drivers. */
    Ticks duration = msec(200);
};

/** Convenience constructors with workload-appropriate defaults. */
TenantSpec memcachedTenant(std::string name, int vcpus,
                           double qps_per_vcpu,
                           double slo_p99_usec = 500.0);
TenantSpec tpccTenant(std::string name, int vcpus,
                      double slo_mean_txn_msec = 120.0);
TenantSpec videoTenant(std::string name, int vcpus, double fps = 60.0,
                       double slo_drop_fraction = 0.01);

/** The whole fleet: topology + policy + tenants + fabric. */
struct FleetSpec
{
    TopologySpec topology{};
    PlacementPolicy policy = PlacementPolicy::SvtPair;
    /** Stack mode of svt-pair slots (SwSvt or HwSvt; other policies
     *  always run conventional Nested stacks). */
    VirtMode pairedMode = VirtMode::SwSvt;
    std::vector<TenantSpec> tenants;
    /** Wire between a memcached tenant's loadgen box and its serving
     *  slots (ToR-switch scale). */
    Ticks linkLatency = usec(25);
    /** Fractional slowdown of CPU-bound work on a core whose SMT
     *  sibling runs another tenant's vCPU (sibling-share only;
     *  Section 6.1 measures 0.28 for a busy-polling sibling). */
    double smtContention = 0.35;
};

/** vCPU capacity of @p topo under @p policy (see file comment). */
int policyCapacity(const TopologySpec &topo, PlacementPolicy policy);

/** Total vCPU demand across tenants. */
int totalVcpuDemand(const FleetSpec &spec);

// Construction-time validation (FatalError with actionable messages).
void validateTopologySpec(const TopologySpec &topo);
void validateTenantSpec(const TenantSpec &tenant);
void validateFleetSpec(const FleetSpec &spec);

/** One placed vCPU: which tenant, where, and with whom. */
struct PlacementSlot
{
    /** Tenant index into FleetSpec::tenants. */
    int tenant = 0;
    /** vCPU ordinal within the tenant. */
    int vcpu = 0;
    int socket = 0;
    /** Global core index (socket-major). */
    int core = 0;
    /** SMT way on the core. */
    int thread = 0;
    /** True when another slot occupies a sibling way of this core. */
    bool sharedSibling = false;
    /** Tenant index of the sibling slot (-1 when none). */
    int siblingTenant = -1;
};

/** Deterministic placement of every tenant vCPU. */
struct FleetPlacement
{
    std::vector<PlacementSlot> slots;
};

/**
 * Place the fleet: validates @p spec, then assigns vCPUs (round-robin
 * across tenants, so sibling-share actually co-schedules *different*
 * tenants on a core) to cores in a seed-shuffled deterministic order.
 * A pure function of (spec, seed): same inputs, identical placement.
 */
FleetPlacement placeFleet(const FleetSpec &spec, std::uint64_t seed);

} // namespace svtsim

#endif // SVTSIM_SYSTEM_FLEET_FLEET_SPEC_H
