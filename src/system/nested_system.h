/**
 * @file
 * Top-level assembly: the Table 4 machine plus a VirtStack in a given
 * mode, with the paper's default devices wired (virtio-net over a
 * 10 GbE link, virtio-blk over a ramdisk).
 */

#ifndef SVTSIM_SYSTEM_NESTED_SYSTEM_H
#define SVTSIM_SYSTEM_NESTED_SYSTEM_H

#include <memory>

#include "arch/machine.h"
#include "hv/stack_config.h"
#include "hv/virt_stack.h"

namespace svtsim {

/** Machine topology of the evaluation testbed (Table 4):
 *  2x Intel E5-2630v3 (8 cores, 2-SMT each, 2.4 GHz).
 *  HW SVt studies assume one extra hardware context per core. */
MachineTopology paperTopology(VirtMode mode);

/** The calibrated cost model (see arch/cost_model.h). */
CostModel paperCosts();

/**
 * One assembled experiment platform: machine + virtualization stack.
 */
class NestedSystem
{
  public:
    /** Paper topology for @p mode; @p config's knobs are validated
     *  (see validateStackConfig) and its mode overridden by @p mode. */
    explicit NestedSystem(VirtMode mode, StackConfig config = {},
                          std::uint64_t seed = 1);

    /** Custom topology; the mode comes from @p config.mode (used by
     *  the context-capacity ablation and topology sweeps). */
    NestedSystem(const MachineTopology &topo, StackConfig config,
                 std::uint64_t seed = 1);

    Machine &machine() { return *machine_; }
    VirtStack &stack() { return *stack_; }
    GuestApi &api() { return stack_->api(); }

  private:
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<VirtStack> stack_;
};

} // namespace svtsim

#endif // SVTSIM_SYSTEM_NESTED_SYSTEM_H
