#include "system/sweep.h"

#include <cstdio>
#include <set>

#include "sim/log.h"
#include "sim/worker_pool.h"
#include "system/cluster.h"
#include "system/trace_session.h"

namespace svtsim {

ClusterContext::ClusterContext(std::uint64_t seed, int jobs,
                               const SweepOptions &options,
                               std::string name)
    : seed_(seed), jobs_(jobs), options_(options),
      scenarioName_(std::move(name))
{
}

ClusterContext::~ClusterContext() = default;

void
ClusterContext::prepare(Cluster &cluster)
{
    if (!options_.faults.empty())
        cluster.installFaultPlan(options_.faults);
    for (int i = 0; i < cluster.size(); ++i)
        traces_.push_back(std::make_unique<ScopedTrace>(
            cluster.machine(i), options_.tracePath,
            scenarioName_ + "-m" + std::to_string(i)));
}

void
ClusterContext::finish(Cluster &cluster, ScenarioResult &result)
{
    simAssert(!finished_, "ClusterContext::finish called twice");
    finished_ = true;
    // Every machine's final clock joins the determinism fingerprint:
    // a divergence anywhere in the cluster shows up in the JSON diff,
    // not just on machine 0.
    for (int i = 0; i < cluster.size(); ++i)
        result.record("final_ticks_m" + std::to_string(i),
                      static_cast<double>(cluster.machine(i).now()));
    finalTicks_ = cluster.size() > 0 ? cluster.machine(0).now() : 0;
    if (cluster.size() > 0)
        snapshot_ = cluster.machine(0).snapshotMetrics();
    for (auto &t : traces_) {
        std::string report = t->finish();
        if (!report.empty()) {
            if (!traceReport_.empty())
                traceReport_ += '\n';
            traceReport_ += report;
        }
    }
}

void
ScenarioResult::record(const std::string &key, double value)
{
    for (auto &kv : metrics_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    metrics_.emplace_back(key, value);
}

bool
ScenarioResult::has(const std::string &key) const
{
    for (const auto &kv : metrics_) {
        if (kv.first == key)
            return true;
    }
    return false;
}

double
ScenarioResult::metric(const std::string &key) const
{
    for (const auto &kv : metrics_) {
        if (kv.first == key)
            return kv.second;
    }
    fatal("scenario '%s' has no metric '%s'", name_.c_str(),
          key.c_str());
}

const ScenarioResult &
SweepResults::at(const std::string &name) const
{
    for (const auto &r : results_) {
        if (r.name() == name)
            return r;
    }
    fatal("sweep has no scenario '%s'", name.c_str());
}

bool
SweepResults::allOk() const
{
    for (const auto &r : results_) {
        if (!r.ok())
            return false;
    }
    return true;
}

/** Internal executor; friend of the result types. */
class SweepRunner
{
  public:
    static SweepResults run(const std::vector<Scenario> &scenarios,
                            const SweepOptions &options);

  private:
    /** Run one scenario into its slot; never throws (SimError is
     *  captured on the result so pool tasks stay noexcept). */
    static void runOne(const Scenario &scenario,
                       const SweepOptions &options,
                       ScenarioResult &result);
};

void
SweepRunner::runOne(const Scenario &scenario,
                    const SweepOptions &options, ScenarioResult &result)
{
    result.name_ = scenario.name;
    result.mode_ = scenario.mode;
    result.seed_ = options.baseSeed + scenario.seedOffset;
    if (scenario.clusterRun) {
        try {
            ClusterContext ctx(result.seed_, options.clusterJobs,
                               options, scenario.name);
            scenario.clusterRun(ctx, result);
            result.finalTicks_ = ctx.finalTicks_;
            result.metricsSnapshot_ = std::move(ctx.snapshot_);
            result.traceReport_ = std::move(ctx.traceReport_);
        } catch (const SimError &e) {
            result.error_ = e.what();
        }
        return;
    }
    try {
        StackConfig config = scenario.config;
        config.mode = scenario.mode;
        NestedSystem sys =
            scenario.topology
                ? NestedSystem(*scenario.topology, config,
                               result.seed_)
                : NestedSystem(scenario.mode, config, result.seed_);
        ScopedTrace trace(sys.machine(), options.tracePath,
                          scenario.name);
        if (!options.faults.empty())
            sys.machine().installFaultPlan(options.faults);
        scenario.run(sys, result);
        result.finalTicks_ = sys.machine().now();
        result.metricsSnapshot_ = sys.machine().snapshotMetrics();
        // Capture instead of letting the destructor print: workers
        // must not write to stderr in completion order.
        result.traceReport_ = trace.finish();
    } catch (const SimError &e) {
        result.error_ = e.what();
    }
}

SweepResults
SweepRunner::run(const std::vector<Scenario> &scenarios,
                 const SweepOptions &options)
{
    std::set<std::string> names;
    for (const auto &s : scenarios) {
        if (!names.insert(s.name).second)
            fatal("sweep: duplicate scenario name '%s'",
                  s.name.c_str());
        if (!s.run && !s.clusterRun)
            fatal("sweep: scenario '%s' has no run callback",
                  s.name.c_str());
        if (s.run && s.clusterRun)
            fatal("sweep: scenario '%s' has both run and clusterRun",
                  s.name.c_str());
    }

    SweepResults results;
    results.results_.resize(scenarios.size());

    if (options.jobs <= 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i)
            runOne(scenarios[i], options, results.results_[i]);
        return results;
    }

    WorkerPool pool(options.jobs);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario *scenario = &scenarios[i];
        ScenarioResult *slot = &results.results_[i];
        pool.submit(
            [scenario, slot, &options] {
                runOne(*scenario, options, *slot);
            });
    }
    pool.wait();
    return results;
}

SweepResults
runSweep(const std::vector<Scenario> &scenarios,
         const SweepOptions &options)
{
    SweepResults results = SweepRunner::run(scenarios, options);
    // Conservation reports surface once the pool has drained, in
    // declaration order, so stderr is reproducible across --jobs.
    for (const auto &r : results.all()) {
        if (!r.traceReport().empty())
            std::fprintf(stderr, "%s\n", r.traceReport().c_str());
    }
    return results;
}

} // namespace svtsim
