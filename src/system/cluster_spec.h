/**
 * @file
 * Declarative cluster construction.
 *
 * Before this existed, every multi-machine bench hand-wired its
 * Cluster: addMachine calls with positional ids, connect calls
 * repeating the cost-model wire parameters, drivers keyed by integer
 * id. A ClusterSpec declares the same thing as data — named machines
 * and named links — validated up front (the validateStackConfig
 * discipline: a malformed spec is a FatalError with an actionable
 * message, not a crash three layers down), then realized into a
 * ClusterBuild that resolves names to machines, stacks and link
 * ports:
 *
 *     ClusterBuild b = ClusterSpec()
 *                          .machine("server", VirtMode::SwSvt)
 *                          .machine("client", VirtMode::Native)
 *                          .link("server", "client")
 *                          .realize(ctx.seed());
 *     VirtioNetStack net(b.stack("server"), b.port("server", "client"));
 *     ...
 *     b.driver("server", [&](NestedSystem &) { ... });
 *     b.run(ctx);          // ctx.prepare + Cluster::run(ctx.jobs())
 *     ...record metrics...
 *     ctx.finish(b.cluster(), result);
 *
 * A link declared without wire parameters gets the paper testbed wire
 * (CostModel::wireLatency / linkBitsPerSec).
 */

#ifndef SVTSIM_SYSTEM_CLUSTER_SPEC_H
#define SVTSIM_SYSTEM_CLUSTER_SPEC_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "system/cluster.h"
#include "system/sweep.h"

namespace svtsim {

class ClusterBuild;

/** Declarative machine + link list; validated before realization. */
class ClusterSpec
{
  public:
    /** Declare a machine with the paper topology for @p mode. */
    ClusterSpec &machine(std::string name, VirtMode mode,
                         StackConfig config = {});

    /** Declare a machine with an explicit topology; the mode comes
     *  from @p config.mode. */
    ClusterSpec &machine(std::string name, const MachineTopology &topo,
                         StackConfig config);

    /** Link two declared machines with the paper testbed wire. */
    ClusterSpec &link(const std::string &a, const std::string &b);

    /** Link with explicit wire parameters. */
    ClusterSpec &link(const std::string &a, const std::string &b,
                      Ticks latency, double bits_per_sec);

    /**
     * Validate the declaration: at least one machine, unique non-empty
     * machine names, link endpoints declared and distinct, at most one
     * link per machine pair (so ClusterBuild::port(name, peer) is
     * unambiguous), positive wire parameters. FatalError with an
     * actionable message otherwise. realize() validates implicitly.
     */
    void validate() const;

    /** Build the Cluster (machine ids in declaration order). */
    ClusterBuild realize(std::uint64_t seed) const;

    /** Shorthand: seed from the harness context. */
    ClusterBuild realize(const ClusterContext &ctx) const;

    int machineCount() const
    {
        return static_cast<int>(machines_.size());
    }

  private:
    struct MachineDecl
    {
        std::string name;
        std::optional<MachineTopology> topo;
        VirtMode mode = VirtMode::Nested;
        StackConfig config{};
    };

    struct LinkDecl
    {
        std::string a;
        std::string b;
        /** Unset = paper testbed wire. */
        std::optional<Ticks> latency;
        std::optional<double> bitsPerSec;
    };

    int indexOf(const std::string &name) const;

    std::vector<MachineDecl> machines_;
    std::vector<LinkDecl> links_;
};

/** A realized ClusterSpec: the Cluster plus name-based resolution. */
class ClusterBuild
{
  public:
    ClusterBuild(ClusterBuild &&) = default;
    ClusterBuild &operator=(ClusterBuild &&) = default;

    Cluster &cluster() { return *cluster_; }

    /** Machine id of @p name (FatalError on unknown names). */
    int id(const std::string &name) const;

    NestedSystem &system(const std::string &name)
    {
        return cluster_->system(id(name));
    }

    Machine &machine(const std::string &name)
    {
        return cluster_->machine(id(name));
    }

    VirtStack &stack(const std::string &name)
    {
        return system(name).stack();
    }

    /** The link between @p a and @p b (FatalError when not declared). */
    CrossLink &link(const std::string &a, const std::string &b);

    /** @p name's end of its link to @p peer — the NetPort a NIC model
     *  or bare-metal workload on @p name plugs into. */
    NetPort &port(const std::string &name, const std::string &peer);

    /** Install @p name's synchronous driver (Cluster::setDriver). */
    ClusterBuild &driver(const std::string &name,
                         std::function<void(NestedSystem &)> fn);

    /** ctx.prepare(cluster) + Cluster::run(ctx.jobs()). The caller
     *  still records metrics and then calls ctx.finish(). */
    ClusterStats run(ClusterContext &ctx);

    /** Standalone run (tests): no harness context. */
    ClusterStats run(int jobs) { return cluster_->run(jobs); }

  private:
    friend class ClusterSpec;
    ClusterBuild() = default;

    struct BuiltLink
    {
        std::string a;
        std::string b;
        CrossLink *link;
    };

    std::unique_ptr<Cluster> cluster_;
    std::vector<std::string> names_;
    std::vector<BuiltLink> links_;
};

} // namespace svtsim

#endif // SVTSIM_SYSTEM_CLUSTER_SPEC_H
