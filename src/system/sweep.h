/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * A sweep runs a declarative list of independent scenarios — each a
 * (VirtMode, StackConfig, seed) triple plus a run callback — on a
 * fixed-size worker pool, one fully isolated NestedSystem per task.
 * Scenarios share no mutable state (each NestedSystem owns its
 * machine, event queue and RNG), so results are bit-identical
 * regardless of the worker count: every scenario writes into its own
 * pre-allocated result slot and aggregation happens in declaration
 * order after the pool drains.
 *
 * Determinism contract:
 *  - a scenario's result is a pure function of (mode, config,
 *    topology, seed) and its run callback;
 *  - runSweep(jobs=1) and runSweep(jobs=N) produce identical
 *    SweepResults, including scenario order, metric order and the
 *    finalTicks fingerprint;
 *  - trace conservation reports are emitted in declaration order,
 *    never in thread completion order.
 */

#ifndef SVTSIM_SYSTEM_SWEEP_H
#define SVTSIM_SYSTEM_SWEEP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault.h"
#include "stats/metrics.h"
#include "system/nested_system.h"

namespace svtsim {

class Cluster;
class ScenarioResult;
class ClusterContext;
class ScopedTrace;
struct SweepOptions;

/** Per-scenario measurement callback; records metrics on the result. */
using ScenarioFn =
    std::function<void(NestedSystem &sys, ScenarioResult &result)>;

/**
 * Multi-machine scenario callback: builds a Cluster (machines, cross
 * links, drivers), brackets it with ctx.prepare()/ctx.finish(), and
 * runs it with ctx.jobs() workers. See ClusterContext.
 */
using ClusterScenarioFn =
    std::function<void(ClusterContext &ctx, ScenarioResult &result)>;

/**
 * One point of the design space: the system to assemble and the
 * measurement to run on it. Scenario names must be unique within a
 * sweep; they key result lookup, label trace files and name JSON
 * records.
 */
struct Scenario
{
    std::string name;
    VirtMode mode = VirtMode::Nested;
    StackConfig config{};
    /** Added to the sweep's base seed (scenarios that want decorrelated
     *  streams set distinct offsets; most leave 0). */
    std::uint64_t seedOffset = 0;
    /** Topology override; defaults to paperTopology(mode). */
    std::optional<MachineTopology> topology;
    ScenarioFn run;
    /** Cluster (multi-machine) scenario body; a scenario has exactly
     *  one of run / clusterRun. The engine passes the sweep seed and
     *  --cluster-jobs through the ClusterContext; mode/config here
     *  describe the scenario for JSON, the callback builds the
     *  machines itself. */
    ClusterScenarioFn clusterRun;
};

/**
 * Execution context handed to a ClusterScenarioFn.
 *
 * Usage inside the callback:
 *
 *     Cluster cluster(ctx.seed());
 *     ... addMachine / connect / setDriver ...
 *     ctx.prepare(cluster);     // faults + per-machine traces
 *     cluster.run(ctx.jobs());
 *     ... record workload metrics ...
 *     ctx.finish(cluster, result);  // fingerprints + PMU + traces
 *
 * finish() records one `final_ticks_m<i>` metric per machine (the
 * cluster determinism fingerprint, compared byte-for-byte across
 * --cluster-jobs counts) and captures machine 0's PMU snapshot and
 * the per-machine trace conservation reports into the result.
 */
class ClusterContext
{
  public:
    ~ClusterContext();

    /** Base seed for the Cluster (already includes the scenario's
     *  seed offset). */
    std::uint64_t seed() const { return seed_; }
    /** --cluster-jobs: worker count for Cluster::run (1 = the
     *  sequential oracle). */
    int jobs() const { return jobs_; }

    /** Call after building the cluster, before run(): installs the
     *  sweep-level fault plan on every machine and attaches one trace
     *  session per machine (labeled `<scenario>-m<i>`). */
    void prepare(Cluster &cluster);

    /** Call after run(): records per-machine fingerprint metrics on
     *  @p result and captures PMU snapshot + trace reports. */
    void finish(Cluster &cluster, ScenarioResult &result);

  private:
    friend class SweepRunner;
    ClusterContext(std::uint64_t seed, int jobs,
                   const SweepOptions &options, std::string name);

    std::uint64_t seed_;
    int jobs_;
    const SweepOptions &options_;
    std::string scenarioName_;
    std::vector<std::unique_ptr<ScopedTrace>> traces_;
    Ticks finalTicks_ = 0;
    MetricsSnapshot snapshot_;
    std::string traceReport_;
    bool finished_ = false;
};

/** Outcome of one scenario, in a caller-owned slot. */
class ScenarioResult
{
  public:
    /** Record a named metric; order is preserved (it is the JSON and
     *  comparison order). Re-recording a name overwrites in place. */
    void record(const std::string &key, double value);

    bool has(const std::string &key) const;

    /** Value of @p key; raises FatalError naming the scenario and key
     *  when absent (typo-proofing report callbacks). */
    double metric(const std::string &key) const;

    const std::vector<std::pair<std::string, double>> &metrics() const
    {
        return metrics_;
    }

    const std::string &name() const { return name_; }
    VirtMode mode() const { return mode_; }
    std::uint64_t seed() const { return seed_; }

    /** machine.now() when the run callback returned: the determinism
     *  fingerprint (identical across reruns and worker counts). */
    Ticks finalTicks() const { return finalTicks_; }

    /** Non-empty when the scenario raised a SimError. */
    const std::string &error() const { return error_; }
    bool ok() const { return error_.empty(); }

    /** The trace conservation report line ("" without --trace). */
    const std::string &traceReport() const { return traceReport_; }

    /** Simulated-PMU snapshot taken when the run callback returned
     *  (deterministic: a pure function of the scenario inputs). */
    const MetricsSnapshot &metricsSnapshot() const
    {
        return metricsSnapshot_;
    }

  private:
    friend class SweepRunner;

    std::string name_;
    VirtMode mode_ = VirtMode::Nested;
    std::uint64_t seed_ = 0;
    Ticks finalTicks_ = 0;
    std::string error_;
    std::string traceReport_;
    std::vector<std::pair<std::string, double>> metrics_;
    MetricsSnapshot metricsSnapshot_;
};

/** Results of a sweep, in scenario declaration order. */
class SweepResults
{
  public:
    const std::vector<ScenarioResult> &all() const { return results_; }

    /** Result of the named scenario; FatalError when absent. */
    const ScenarioResult &at(const std::string &name) const;

    /** Shorthand for at(scenario).metric(key). */
    double metric(const std::string &scenario,
                  const std::string &key) const
    {
        return at(scenario).metric(key);
    }

    /** True when every scenario completed without error. */
    bool allOk() const;

  private:
    friend class SweepRunner;

    std::vector<ScenarioResult> results_;
};

/** Execution knobs of a sweep (the BenchHarness CLI surface). */
struct SweepOptions
{
    /** Worker threads; 1 runs inline on the calling thread. */
    int jobs = 1;
    /** Base seed; each scenario runs at baseSeed + seedOffset. */
    std::uint64_t baseSeed = 1;
    /** When non-empty, each scenario exports a trace labeled with its
     *  name (see ScopedTrace). */
    std::string tracePath;
    /** Fault plan installed on every scenario's machine before the run
     *  callback executes (see FaultPlan::parse). Per-site streams are
     *  seeded from the scenario's seed, so injections stay part of the
     *  deterministic fingerprint regardless of jobs. */
    FaultPlan faults{};
    /** Workers for intra-scenario (cluster) parallelism, passed to
     *  cluster scenarios via ClusterContext::jobs(). 1 is the
     *  sequential oracle; any value produces byte-identical results.
     *  Multiplies with `jobs` when both exceed 1. */
    int clusterJobs = 1;
};

/**
 * Run every scenario and aggregate results in declaration order.
 *
 * Scenario names must be unique and every scenario must have a run
 * callback (FatalError otherwise, before anything executes). SimError
 * raised inside a scenario is captured on its result, not propagated;
 * callers check SweepResults::allOk().
 */
SweepResults runSweep(const std::vector<Scenario> &scenarios,
                      const SweepOptions &options);

} // namespace svtsim

#endif // SVTSIM_SYSTEM_SWEEP_H
