#include "system/nested_system.h"

namespace svtsim {

MachineTopology
paperTopology(VirtMode mode)
{
    MachineTopology topo;
    topo.numaNodes = 2;
    topo.coresPerNode = 8;
    topo.threadsPerCore = (mode == VirtMode::HwSvt) ? 3 : 2;
    return topo;
}

CostModel
paperCosts()
{
    return CostModel{};
}

NestedSystem::NestedSystem(VirtMode mode, StackConfig config,
                           std::uint64_t seed)
{
    config.mode = mode;
    validateStackConfig(config);
    machine_ = std::make_unique<Machine>(paperTopology(mode),
                                         paperCosts(), seed);
    stack_ = std::make_unique<VirtStack>(*machine_, config);
}

NestedSystem::NestedSystem(const MachineTopology &topo,
                           StackConfig config, std::uint64_t seed)
{
    validateStackConfig(config);
    machine_ = std::make_unique<Machine>(topo, paperCosts(), seed);
    stack_ = std::make_unique<VirtStack>(*machine_, config);
}

} // namespace svtsim
