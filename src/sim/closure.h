/**
 * @file
 * EventClosure: the event queue's callable type.
 *
 * std::function is the wrong tool for a discrete-event hot path: its
 * inline buffer is small (16 bytes on libstdc++) and restricted to
 * trivially-copyable callables, so the typical simulator closure — a
 * lambda capturing a device pointer plus a packet or a couple of ids —
 * heap-allocates on every schedule(). EventClosure is a move-only
 * type-erased callable with a 48-byte inline buffer sized for the
 * repo's event lambdas (the largest steady-state capture today is a
 * NetFabric handler reference + NetPacket + counter pointer = 40
 * bytes), so the schedule->fire cycle does zero mallocs. Callables
 * that do not fit (or are not nothrow-movable) transparently fall
 * back to the heap.
 *
 * Dispatch is one indirect call through a per-type operations table —
 * no virtual destructors, no shared_ptr control blocks.
 */

#ifndef SVTSIM_SIM_CLOSURE_H
#define SVTSIM_SIM_CLOSURE_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace svtsim {

class EventClosure
{
  public:
    /** Inline capture capacity; larger callables go to the heap. */
    static constexpr std::size_t inlineCapacity = 48;

    EventClosure() = default;

    /** Implicit, so call sites keep passing plain lambdas. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventClosure> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventClosure(F &&fn)
    {
        using D = std::decay_t<F>;
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(fn));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(buf_) = new D(std::forward<F>(fn));
            ops_ = &heapOps<D>;
        }
    }

    EventClosure(EventClosure &&other) noexcept { moveFrom(other); }

    EventClosure &
    operator=(EventClosure &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventClosure(const EventClosure &) = delete;
    EventClosure &operator=(const EventClosure &) = delete;

    ~EventClosure() { reset(); }

    /** Destroy the held callable (and release what it captured). */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Whether the callable lives in the inline buffer (tests). */
    bool
    storedInline() const
    {
        return ops_ != nullptr && ops_->isInline;
    }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *buf);
        void (*destroy)(void *buf);
        /** Move-construct into @p dst's raw buffer, destroy @p src. */
        void (*relocate)(void *dst, void *src) noexcept;
        bool isInline;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= inlineCapacity &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops inlineOps{
        [](void *buf) { (*std::launder(reinterpret_cast<D *>(buf)))(); },
        [](void *buf) { std::launder(reinterpret_cast<D *>(buf))->~D(); },
        [](void *dst, void *src) noexcept {
            D *s = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        true,
    };

    template <typename D>
    static constexpr Ops heapOps{
        [](void *buf) { (**reinterpret_cast<D **>(buf))(); },
        [](void *buf) { delete *reinterpret_cast<D **>(buf); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<D **>(dst) = *reinterpret_cast<D **>(src);
        },
        false,
    };

    void
    moveFrom(EventClosure &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineCapacity];
    const Ops *ops_ = nullptr;
};

} // namespace svtsim

#endif // SVTSIM_SIM_CLOSURE_H
