#include "sim/event_queue.h"

#include "sim/log.h"

namespace svtsim {

EventId
EventQueue::schedule(Ticks when, std::function<void()> fn,
                     std::string label)
{
    if (when < now_) {
        panic("EventQueue::schedule in the past (when=%lld now=%lld %s)",
              static_cast<long long>(when), static_cast<long long>(now_),
              label.c_str());
    }
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(fn),
                     std::move(label)});
    pending_.insert(id);
    ++live_;
    return id;
}

EventId
EventQueue::scheduleIn(Ticks delta, std::function<void()> fn,
                       std::string label)
{
    return schedule(now_ + delta, std::move(fn), std::move(label));
}

bool
EventQueue::deschedule(EventId id)
{
    // Cancelling an already-fired, already-cancelled or unknown handle
    // is a no-op, matching the forgiving semantics of timer APIs.
    auto it = pending_.find(id);
    if (it == pending_.end())
        return false;
    pending_.erase(it);
    --live_;
    return true;
}

Ticks
EventQueue::nextEventTime() const
{
    const_cast<EventQueue *>(this)->popCancelled();
    if (heap_.empty())
        return maxTick;
    return heap_.top().when;
}

void
EventQueue::popCancelled()
{
    // Cancelled entries stay in the heap (lazy deletion) and are
    // discarded when they surface.
    while (!heap_.empty() && !pending_.count(heap_.top().id))
        heap_.pop();
}

void
EventQueue::advanceTo(Ticks when)
{
    if (when < now_) {
        panic("EventQueue::advanceTo into the past (when=%lld now=%lld)",
              static_cast<long long>(when),
              static_cast<long long>(now_));
    }
    for (;;) {
        popCancelled();
        if (heap_.empty() || heap_.top().when > when)
            break;
        Entry e = heap_.top();
        heap_.pop();
        pending_.erase(e.id);
        --live_;
        now_ = e.when;
        ++executed_;
        e.fn();
    }
    now_ = when;
}

void
EventQueue::advanceBy(Ticks delta)
{
    simAssert(delta >= 0, "EventQueue::advanceBy negative delta");
    advanceTo(now_ + delta);
}

bool
EventQueue::runNext()
{
    popCancelled();
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    pending_.erase(e.id);
    --live_;
    now_ = e.when;
    ++executed_;
    e.fn();
    return true;
}

bool
EventQueue::runUntil(const std::function<bool()> &pred)
{
    if (pred())
        return true;
    while (runNext()) {
        if (pred())
            return true;
    }
    return false;
}

} // namespace svtsim
