#include "sim/event_queue.h"

#include <algorithm>

namespace svtsim {

/*
 * Hierarchical timing wheel.
 *
 * Level k buckets pending events by byte k of their absolute
 * timestamp: an event goes to the level of the highest byte in which
 * its timestamp differs from now_ (its "distance magnitude"), into
 * slot (when >> 8k) & 255. Three invariants carry the design:
 *
 *  1. Level-0 slots are exact-tick buckets: every event in a level-0
 *     slot has timestamp == window_base + slot, so firing a slot in
 *     list order is firing one tick's events.
 *
 *  2. For every level k >= 1, the slot whose window contains now_ is
 *     empty — its contents were cascaded down when now_ entered it
 *     (moveTimeTo). Hence all occupied level-k slots lie strictly in
 *     the future, and every event at level k is later than every
 *     event at any level < k (they differ from now_ in a higher
 *     byte). The next event therefore lives in the first occupied
 *     slot of the lowest occupied level.
 *
 *  3. Slot lists append on every insertion — direct schedule or
 *     cascade — and cascades walk lists in order, so within a tick
 *     list order is seq order (same-tick FIFO; see DESIGN.md for why
 *     a direct insert can never be overtaken by a later cascade).
 *
 * Events whose timestamp differs from now_ above the wheel's top
 * level (2^56 ticks, ~20 simulated hours — saturated maxTick timers)
 * wait in far_, an ordered map, and are pulled into the wheel when
 * now_ enters their epoch. All far events are later than all wheel
 * events (they differ from now_ in a byte above the wheel).
 */

EventQueue::~EventQueue() = default;

EventId
EventQueue::schedule(Ticks when, EventClosure fn, std::string_view label)
{
    if (SVTSIM_UNLIKELY(when < now_)) {
        panic("EventQueue::schedule in the past (when=%lld now=%lld %.*s)",
              static_cast<long long>(when), static_cast<long long>(now_),
              static_cast<int>(label.size()),
              label.empty() ? "" : label.data());
    }
    const std::uint32_t idx = allocRecord();
    Record &rec = recordAt(idx);
    rec.fn = std::move(fn);
    rec.when = when;
    rec.seq = nextSeq_++;
    rec.labelId = label.empty() ? 0 : internLabel(label);
    placeRecord(idx, rec);
    ++liveCount_;
    return makeId(idx, rec.gen);
}

EventId
EventQueue::scheduleIn(Ticks delta, EventClosure fn,
                       std::string_view label)
{
    // Saturate instead of overflowing: now_ + delta past maxTick is
    // signed overflow (UB) and then a nonsense schedule-in-the-past
    // panic. A saturated timeout pends forever, which is what an
    // "infinite" deadline means. Negative deltas still reach the
    // schedule-in-the-past panic below.
    const Ticks when =
        delta >= maxTick - now_ ? maxTick : now_ + delta;
    return schedule(when, std::move(fn), label);
}

bool
EventQueue::deschedule(EventId id)
{
    // Cancelling an already-fired, already-cancelled or unknown handle
    // is a no-op, matching the forgiving semantics of timer APIs. A
    // live handle is unlinked from its slot eagerly — no lazy-deletion
    // debris — and the closure (and anything it captured) is released
    // right here.
    if (lookup(id) == nullptr)
        return false;
    const std::uint32_t idx = static_cast<std::uint32_t>(id) - 1;
    Record &rec = recordAt(idx);
    unlink(rec, idx);
    freeRecord(idx, rec);
    --liveCount_;
    return true;
}

const EventQueue::Record *
EventQueue::lookup(EventId id) const
{
    const std::uint32_t low = static_cast<std::uint32_t>(id);
    if (low == 0 || low - 1 >= allocated_)
        return nullptr;
    const Record &rec = recordAt(low - 1);
    if (rec.level == levelFree ||
        rec.gen != static_cast<std::uint32_t>(id >> 32))
        return nullptr;
    return &rec;
}

std::string_view
EventQueue::eventLabel(EventId id) const
{
    const Record *rec = lookup(id);
    return rec ? std::string_view(labels_[rec->labelId])
               : std::string_view();
}

std::uint32_t
EventQueue::allocRecord()
{
    if (SVTSIM_LIKELY(freeHead_ != nil)) {
        const std::uint32_t idx = freeHead_;
        freeHead_ = recordAt(idx).next;
        return idx;
    }
    if ((allocated_ >> 8) == chunks_.size())
        chunks_.emplace_back(new Record[chunkSize]);
    return allocated_++;
}

void
EventQueue::freeRecord(std::uint32_t idx, Record &rec)
{
    rec.fn.reset();
    ++rec.gen;
    rec.level = levelFree;
    rec.next = freeHead_;
    freeHead_ = idx;
}

void
EventQueue::placeRecord(std::uint32_t idx, Record &rec)
{
    const std::uint64_t diff =
        static_cast<std::uint64_t>(rec.when ^ now_);
    if (SVTSIM_UNLIKELY(diff >> wheelBits)) {
        rec.level = levelFar;
        far_.emplace(std::make_pair(rec.when, rec.seq), idx);
        return;
    }
    const int level = diff ? topBitIndex(diff) / slotBits : 0;
    const int slot = static_cast<int>(
        (rec.when >> (level * slotBits)) & slotMask);
    linkTail(level, slot, idx, rec);
}

void
EventQueue::linkTail(int level, int slot, std::uint32_t idx,
                     Record &rec)
{
    rec.level = static_cast<std::uint8_t>(level);
    rec.slot = static_cast<std::uint8_t>(slot);
    rec.next = nil;
    Slot &sl = slots_[level][slot];
    if (sl.tail == nil) {
        rec.prev = nil;
        sl.head = sl.tail = idx;
        markOccupied(level, slot);
    } else {
        rec.prev = sl.tail;
        recordAt(sl.tail).next = idx;
        sl.tail = idx;
    }
}

void
EventQueue::unlink(Record &rec, std::uint32_t idx)
{
    if (SVTSIM_UNLIKELY(rec.level == levelFar)) {
        far_.erase(std::make_pair(rec.when, rec.seq));
        return;
    }
    Slot &sl = slots_[rec.level][rec.slot];
    if (rec.prev != nil)
        recordAt(rec.prev).next = rec.next;
    else
        sl.head = rec.next;
    if (rec.next != nil)
        recordAt(rec.next).prev = rec.prev;
    else
        sl.tail = rec.prev;
    if (sl.head == nil)
        clearOccupied(rec.level, rec.slot);
    (void)idx;
}

void
EventQueue::markOccupied(int level, int slot)
{
    occupied_[level][slot >> 6] |= 1ull << (slot & 63);
    levelSummary_ |= 1u << level;
}

void
EventQueue::clearOccupied(int level, int slot)
{
    occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
    const std::uint64_t *w = occupied_[level];
    if ((w[0] | w[1] | w[2] | w[3]) == 0)
        levelSummary_ &= ~(1u << level);
}

int
EventQueue::firstOccupied(int level) const
{
    const std::uint64_t *w = occupied_[level];
    for (int i = 0; i < numSlots / 64; ++i)
        if (w[i])
            return i * 64 + bottomBitIndex(w[i]);
    return -1;
}

int
EventQueue::lowestOccupiedLevel() const
{
    return levelSummary_ ? bottomBitIndex(levelSummary_) : -1;
}

Ticks
EventQueue::slotBase(int level, int slot) const
{
    const int shift = (level + 1) * slotBits;
    return ((now_ >> shift) << shift) |
           (static_cast<Ticks>(slot) << (level * slotBits));
}

void
EventQueue::moveTimeTo(Ticks t)
{
    if (t == now_)
        return;
    const Ticks old = now_;
    now_ = t;
    const std::uint64_t diff = static_cast<std::uint64_t>(old ^ t);
    if (SVTSIM_LIKELY(!(diff >> slotBits)))
        return; // still inside the same level-0 window everywhere
    // Entered new windows at levels [1, top]: cascade each level's
    // now-current slot down, highest level first so its events land
    // in already-cascaded lower levels. Skipped slots between the old
    // and new positions are empty by the caller's precondition (no
    // live event earlier than t).
    int top = topBitIndex(diff) / slotBits;
    top = std::min(top, numLevels - 1);
    for (int k = top; k >= 1; --k)
        cascade(k,
                static_cast<int>((t >> (k * slotBits)) & slotMask));
    if (diff >> wheelBits)
        pullFar();
}

void
EventQueue::cascade(int level, int slot)
{
    Slot &sl = slots_[level][slot];
    std::uint32_t idx = sl.head;
    if (idx == nil)
        return;
    sl.head = sl.tail = nil;
    clearOccupied(level, slot);
    // Walk in list order so same-tick events keep their seq order in
    // the destination slots.
    while (idx != nil) {
        Record &rec = recordAt(idx);
        const std::uint32_t next = rec.next;
        placeRecord(idx, rec);
        idx = next;
    }
}

void
EventQueue::pullFar()
{
    while (!far_.empty()) {
        const auto it = far_.begin();
        const Ticks when = it->first.first;
        if (static_cast<std::uint64_t>(when ^ now_) >> wheelBits)
            break; // still beyond the wheel horizon
        const std::uint32_t idx = it->second;
        far_.erase(it);
        placeRecord(idx, recordAt(idx));
    }
}

Ticks
EventQueue::nextEventTime() const
{
    const int level = lowestOccupiedLevel();
    if (level < 0)
        return far_.empty() ? maxTick : far_.begin()->first.first;
    const int slot = firstOccupied(level);
    if (level == 0)
        return level0Time(slot);
    // An upper-level slot spans a window; its earliest entry is the
    // list minimum (slots hold insertion order, not time order).
    Ticks best = maxTick;
    for (std::uint32_t idx = slots_[level][slot].head; idx != nil;
         idx = recordAt(idx).next)
        best = std::min(best, recordAt(idx).when);
    return best;
}

void
EventQueue::fireCurrentSlot(Ticks t)
{
    const int slot = static_cast<int>(t & slotMask);
    // A handler may schedule at the current tick (appended to this
    // slot's tail: runs in this loop) or advance time recursively
    // (now_ moves past t: the recursion fired the rest, stop).
    while (now_ == t) {
        const std::uint32_t idx = slots_[0][slot].head;
        if (idx == nil)
            break;
        Record &rec = recordAt(idx);
        unlink(rec, idx);
        EventClosure fn = std::move(rec.fn);
        freeRecord(idx, rec);
        --liveCount_;
        ++executed_;
        fn();
    }
}

void
EventQueue::advanceTo(Ticks when)
{
    if (SVTSIM_UNLIKELY(when < now_)) {
        panic("EventQueue::advanceTo into the past (when=%lld now=%lld)",
              static_cast<long long>(when),
              static_cast<long long>(now_));
    }
    // A target at or past the horizon would fire events this queue
    // does not own yet; hand off to the gate. Ungated queues only
    // take this branch for a saturated advanceTo(maxTick), where
    // gatedAdvance degenerates to the plain loop.
    if (SVTSIM_UNLIKELY(when >= horizon_)) {
        gatedAdvance(when, /*idle=*/false);
        return;
    }
    advanceUngated(when);
}

void
EventQueue::idleTo(Ticks when)
{
    if (SVTSIM_UNLIKELY(when < now_)) {
        panic("EventQueue::idleTo into the past (when=%lld now=%lld)",
              static_cast<long long>(when),
              static_cast<long long>(now_));
    }
    if (SVTSIM_UNLIKELY(when >= horizon_)) {
        gatedAdvance(when, /*idle=*/true);
        return;
    }
    advanceUngated(when);
}

void
EventQueue::gatedAdvance(Ticks when, bool idle)
{
    for (;;) {
        if (when < horizon_) {
            advanceUngated(when);
            return;
        }
        runUntilTick(horizon_);
        if (gate_ == nullptr || horizon_ == maxTick) {
            // No coordinator (saturated advance on an ungated queue),
            // or the gate granted maxTick to release the queue: fall
            // through to the plain loop.
            advanceUngated(when);
            return;
        }
        const Ticks granted = gate_->awaitHorizon(when);
        simAssert(granted > horizon_,
                  "AdvanceGate horizon did not move forward");
        horizon_ = granted;
        if (idle) {
            // Idle waits hand control back after every epoch so the
            // caller's halt loop sees barrier-merged packets promptly:
            // either the grant now covers the wait target (finish the
            // advance) or fire the new window and return early with
            // now() < when.
            if (when < horizon_)
                advanceUngated(when);
            else
                runUntilTick(horizon_);
            return;
        }
    }
}

std::uint64_t
EventQueue::runUntilTick(Ticks limit)
{
    std::uint64_t fired = 0;
    for (;;) {
        const int level = lowestOccupiedLevel();
        if (level < 0) {
            if (far_.empty())
                break;
            const Ticks farWhen = far_.begin()->first.first;
            if (farWhen >= limit)
                break;
            moveTimeTo(farWhen); // pulls the far epoch into the wheel
            continue;
        }
        const int slot = firstOccupied(level);
        if (level > 0) {
            const Ticks base = slotBase(level, slot);
            if (base >= limit)
                break; // every event in the slot is >= base >= limit
            moveTimeTo(base); // cascades the slot down; re-scan
            continue;
        }
        const Ticks t = level0Time(slot);
        if (t >= limit)
            break;
        const std::uint64_t before = executed_;
        moveTimeTo(t);
        fireCurrentSlot(t);
        fired += executed_ - before;
    }
    return fired;
}

void
EventQueue::advanceUngated(Ticks when)
{
    for (;;) {
        const int level = lowestOccupiedLevel();
        if (level < 0) {
            if (far_.empty())
                break;
            const Ticks farWhen = far_.begin()->first.first;
            if (farWhen > when)
                break;
            moveTimeTo(farWhen); // pulls the far epoch into the wheel
            continue;
        }
        const int slot = firstOccupied(level);
        if (level > 0) {
            const Ticks base = slotBase(level, slot);
            if (base > when)
                break;
            moveTimeTo(base); // cascades the slot down; re-scan
            continue;
        }
        const Ticks t = level0Time(slot);
        if (t > when)
            break;
        moveTimeTo(t);
        fireCurrentSlot(t);
    }
    if (when > now_)
        moveTimeTo(when);
}

void
EventQueue::advanceBy(Ticks delta)
{
    simAssert(delta >= 0, "EventQueue::advanceBy negative delta");
    // Saturate instead of overflowing (see scheduleIn).
    advanceTo(delta >= maxTick - now_ ? maxTick : now_ + delta);
}

bool
EventQueue::runNext()
{
    for (;;) {
        const int level = lowestOccupiedLevel();
        if (level < 0) {
            if (far_.empty())
                return false;
            moveTimeTo(far_.begin()->first.first);
            continue;
        }
        const int slot = firstOccupied(level);
        if (level > 0) {
            moveTimeTo(slotBase(level, slot));
            continue;
        }
        const Ticks t = level0Time(slot);
        moveTimeTo(t);
        const std::uint32_t idx = slots_[0][slot].head;
        simAssert(idx != nil,
                  "EventQueue: occupied level-0 slot with no records");
        Record &rec = recordAt(idx);
        unlink(rec, idx);
        EventClosure fn = std::move(rec.fn);
        freeRecord(idx, rec);
        --liveCount_;
        ++executed_;
        fn();
        return true;
    }
}

bool
EventQueue::runUntil(const std::function<bool()> &pred)
{
    if (pred())
        return true;
    while (runNext()) {
        if (pred())
            return true;
    }
    return false;
}

std::uint16_t
EventQueue::internLabel(std::string_view label)
{
    // Hot call sites pass the same string literal every time: a tiny
    // direct-mapped cache keyed on the literal's address turns repeat
    // interning into a pointer compare. The content check against the
    // interned copy keeps a recycled allocation at the same address
    // from aliasing a stale entry.
    LabelCacheEntry &e = labelCache_
        [(reinterpret_cast<std::uintptr_t>(label.data()) >> 4) & 15];
    if (e.data == label.data() && e.size == label.size() &&
        labels_[e.id] == label)
        return e.id;
    auto it = labelIds_.find(std::string(label));
    if (it == labelIds_.end()) {
        if (labels_.size() > 0xffff)
            panic("EventQueue: too many distinct event labels");
        const std::uint16_t id =
            static_cast<std::uint16_t>(labels_.size());
        labels_.emplace_back(label);
        it = labelIds_.emplace(labels_.back(), id).first;
    }
    e.data = label.data();
    e.size = label.size();
    e.id = it->second;
    return it->second;
}

} // namespace svtsim
