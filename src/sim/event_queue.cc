#include "sim/event_queue.h"

#include "sim/log.h"

namespace svtsim {

EventId
EventQueue::schedule(Ticks when, std::function<void()> fn,
                     std::string label)
{
    if (when < now_) {
        panic("EventQueue::schedule in the past (when=%lld now=%lld %s)",
              static_cast<long long>(when), static_cast<long long>(now_),
              label.c_str());
    }
    EventId id = nextId_++;
    heap_.push(HeapEntry{when, nextSeq_++, id});
    records_.emplace(id, Record{std::move(fn), std::move(label)});
    return id;
}

EventId
EventQueue::scheduleIn(Ticks delta, std::function<void()> fn,
                       std::string label)
{
    return schedule(now_ + delta, std::move(fn), std::move(label));
}

bool
EventQueue::deschedule(EventId id)
{
    // Cancelling an already-fired, already-cancelled or unknown handle
    // is a no-op, matching the forgiving semantics of timer APIs. The
    // heap entry stays behind (lazy deletion), but the closure — and
    // anything it captured — is released right here.
    return records_.erase(id) != 0;
}

Ticks
EventQueue::nextEventTime() const
{
    popCancelled();
    if (heap_.empty())
        return maxTick;
    return heap_.top().when;
}

void
EventQueue::popCancelled() const
{
    // Cancelled entries stay in the heap (lazy deletion) and are
    // discarded when they surface.
    while (!heap_.empty() && !records_.count(heap_.top().id))
        heap_.pop();
}

EventQueue::Record
EventQueue::takeTop()
{
    auto it = records_.find(heap_.top().id);
    simAssert(it != records_.end(),
              "EventQueue: live heap entry without a record");
    Record rec = std::move(it->second);
    records_.erase(it);
    now_ = heap_.top().when;
    heap_.pop();
    ++executed_;
    return rec;
}

void
EventQueue::advanceTo(Ticks when)
{
    if (when < now_) {
        panic("EventQueue::advanceTo into the past (when=%lld now=%lld)",
              static_cast<long long>(when),
              static_cast<long long>(now_));
    }
    for (;;) {
        popCancelled();
        if (heap_.empty() || heap_.top().when > when)
            break;
        Record rec = takeTop();
        rec.fn();
    }
    now_ = when;
}

void
EventQueue::advanceBy(Ticks delta)
{
    simAssert(delta >= 0, "EventQueue::advanceBy negative delta");
    advanceTo(now_ + delta);
}

bool
EventQueue::runNext()
{
    popCancelled();
    if (heap_.empty())
        return false;
    Record rec = takeTop();
    rec.fn();
    return true;
}

bool
EventQueue::runUntil(const std::function<bool()> &pred)
{
    if (pred())
        return true;
    while (runNext()) {
        if (pred())
            return true;
    }
    return false;
}

} // namespace svtsim
