/**
 * @file
 * Discrete-event core: EventQueue and the Clock view used by the
 * synchronous execution model.
 *
 * The simulator mixes two styles:
 *
 *  - Asynchronous entities (devices, timers, network links) schedule
 *    zero-duration callbacks on the EventQueue. Handlers must not
 *    consume time; they flip state (assert an IRQ line, complete a
 *    descriptor) that synchronous code observes later.
 *
 *  - Synchronous code (guest programs, hypervisor exit handlers)
 *    consumes modeled time via Clock::consume(). Consuming time runs
 *    every event whose timestamp is passed, in order, so device
 *    completions and interrupts appear at the right simulated instant.
 *
 * Implementation (since the hot-path overhaul): a hierarchical timing
 * wheel — numLevels levels of numSlots slots, level k bucketing events
 * by byte k of their absolute timestamp — backed by an arena/freelist
 * of event records linked into per-slot intrusive lists. schedule(),
 * deschedule() and fire are O(1) (plus at most numLevels cascades over
 * an event's lifetime), the steady-state schedule->fire cycle performs
 * zero heap allocations (closures live inline in the record via
 * EventClosure, labels are interned once), and deschedule() unlinks
 * the record from its slot eagerly — there is no lazy-deletion debris,
 * so empty()/size()/nextEventTime() always agree. Events beyond the
 * wheel horizon (2^56 ticks ~ 20 simulated hours) sit in an ordered
 * far map until the wheel advances into their epoch.
 *
 * Determinism contract (unchanged): events at the same tick run in
 * scheduling order. Level-0 slots are exact-tick buckets and every
 * insertion — direct or via cascade — appends, so slot order is seq
 * order; see DESIGN.md "Event core" for the argument.
 */

#ifndef SVTSIM_SIM_EVENT_QUEUE_H
#define SVTSIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/closure.h"
#include "sim/compiler.h"
#include "sim/log.h"
#include "sim/ticks.h"

namespace svtsim {

class TraceSink;
class FaultInjector;

/**
 * Handle used to cancel a scheduled event. Encodes the record's arena
 * index plus a generation stamp, so handles to fired or cancelled
 * events go stale instead of aliasing the slot's next tenant.
 */
using EventId = std::uint64_t;

/**
 * Conservative-execution hook: bounds how far an EventQueue may
 * advance before synchronizing with an external coordinator (the
 * parallel cluster engine's epoch barrier).
 *
 * While a gate is installed the queue owns simulated time strictly
 * below its current horizon: it may fire events with timestamp
 * < horizon and move now() up to (but never onto) the horizon. An
 * advance that needs to cross the horizon drains everything below it
 * and then calls awaitHorizon(), which blocks the calling thread at
 * the cluster barrier until a larger horizon is granted.
 */
class AdvanceGate
{
  public:
    virtual ~AdvanceGate() = default;

    /**
     * Called on the advancing thread once everything below the
     * current horizon has fired and the advance wants to continue to
     * @p target. Blocks until more time is granted.
     *
     * @return The new exclusive horizon; must be strictly greater
     *         than the previous one (maxTick un-gates the queue).
     */
    virtual Ticks awaitHorizon(Ticks target) = 0;
};

/** Invalid/none event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Time-ordered queue of zero-duration callbacks.
 *
 * Events at the same tick run in scheduling order (FIFO), which keeps
 * runs deterministic.
 *
 * Cancellation is eager end to end: deschedule() unlinks the record
 * from its wheel slot (or the far map) and releases the closure — and
 * anything it captured — immediately, so a schedule/cancel churn loop
 * (a re-armed watchdog) leaves no debris behind.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Ticks now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @return A handle that can be passed to deschedule().
     * @pre when >= now().
     */
    EventId schedule(Ticks when, EventClosure fn,
                     std::string_view label = {});

    /**
     * Schedule @p fn to run @p delta ticks from now. A delta that
     * would overflow past maxTick saturates at maxTick (an "infinite
     * timeout" stays pending forever instead of tripping the
     * schedule-in-the-past panic with a wrapped timestamp).
     */
    EventId scheduleIn(Ticks delta, EventClosure fn,
                       std::string_view label = {});

    /**
     * Cancel a pending event, unlinking it and releasing its closure
     * immediately. Cancelling an already-fired or unknown handle is a
     * no-op (matches typical timer APIs).
     *
     * @return True if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Whether any events are pending. */
    bool empty() const { return liveCount_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveCount_; }

    /** Time of the next pending event, or maxTick if none. */
    Ticks nextEventTime() const;

    /**
     * Advance time to @p when, running every event with timestamp
     * <= @p when in order. Each event runs with now() set to its own
     * timestamp; afterwards now() == when.
     *
     * @pre when >= now().
     */
    void advanceTo(Ticks when);

    /**
     * Advance time by @p delta ticks (see advanceTo()). Saturates at
     * maxTick instead of overflowing.
     */
    void advanceBy(Ticks delta);

    /**
     * Run every event with timestamp < @p limit, in order, leaving
     * now() at the last fired event's timestamp (or unchanged if
     * nothing fired). Unlike advanceTo(), time never moves onto
     * @p limit itself, and unlike runUntil() no predicate call is
     * paid per event — this is the cluster epoch drain ("fire
     * everything this machine owns below the horizon").
     *
     * @return Number of events fired.
     */
    std::uint64_t runUntilTick(Ticks limit);

    /**
     * Advance toward @p when for an idle wait (Machine::idleUntil).
     * Ungated this is exactly advanceTo(when). Under an AdvanceGate
     * it may instead return early — after one more horizon window has
     * been granted and drained — with now() < when, so a halt/idle
     * loop re-evaluates its wakeup condition against packets merged
     * in at the epoch barrier rather than sleeping blindly through
     * them to a watchdog deadline.
     */
    void idleTo(Ticks when);

    /**
     * Install (or clear, gate == nullptr) the conservative-execution
     * gate. @p horizon is the initial exclusive bound on event
     * execution; clearing the gate resets the horizon to maxTick.
     */
    void
    setAdvanceGate(AdvanceGate *gate, Ticks horizon)
    {
        gate_ = gate;
        horizon_ = gate ? horizon : maxTick;
    }

    /** Current exclusive advance horizon (maxTick when un-gated). */
    Ticks horizon() const { return horizon_; }

    /**
     * Run the next pending event, advancing now() to its timestamp.
     *
     * @return True if an event ran, false if the queue was empty.
     */
    bool runNext();

    /**
     * Run events until @p pred returns true or the queue drains.
     * @p pred is evaluated after every event.
     *
     * @return True if pred held; false if the queue drained first.
     */
    bool runUntil(const std::function<bool()> &pred);

    /** Total number of events executed so far (for stats/tests). */
    std::uint64_t executedCount() const { return executed_; }

    /**
     * Optional trace sink, reachable from anything that holds the
     * queue (Machine, devices). Not owned; whoever attaches it must
     * detach (set nullptr) before destroying it. TraceSink is a
     * concrete (non-virtual) class, so the disabled configuration
     * costs exactly one pointer test at each hook site.
     */
    SVTSIM_ALWAYS_INLINE TraceSink *traceSink() const
    {
        return traceSink_;
    }
    void setTraceSink(TraceSink *sink) { traceSink_ = sink; }

    /**
     * Optional fault injector, published here (like the trace sink)
     * so hook points that only hold the queue — LAPICs, rings,
     * devices — can reach it. Not owned; null means no faults.
     */
    SVTSIM_ALWAYS_INLINE FaultInjector *faultInjector() const
    {
        return faultInjector_;
    }
    void setFaultInjector(FaultInjector *inj) { faultInjector_ = inj; }

    /**
     * Whether @p id refers to a still-pending event. Lets owners of
     * tracked event handles prune fired ones without descheduling.
     */
    bool pending(EventId id) const { return lookup(id) != nullptr; }

    /** Interned label of a pending event ("" if none/unknown). */
    std::string_view eventLabel(EventId id) const;

    /** Number of distinct interned labels (introspection/tests). */
    std::size_t internedLabelCount() const { return labels_.size() - 1; }

    // -- Wheel geometry (public for tests and the speed bench) ------------
    /** log2 of slots per level. */
    static constexpr int slotBits = 8;
    /** Slots per wheel level. */
    static constexpr int numSlots = 1 << slotBits;
    /** Wheel levels; level k spans ticks [2^(8k), 2^(8(k+1))). */
    static constexpr int numLevels = 7;
    /** Ticks covered by the wheel before the far map takes over. */
    static constexpr int wheelBits = slotBits * numLevels;

  private:
    static constexpr std::uint32_t nil = 0xffffffffu;
    static constexpr int slotMask = numSlots - 1;
    /** Record::level value for events parked in the far map. */
    static constexpr std::uint8_t levelFar = 0xfe;
    /** Record::level value for free arena slots. */
    static constexpr std::uint8_t levelFree = 0xff;
    static constexpr std::uint32_t chunkSize = 256;

    /**
     * One event. Lives in the arena; linked into exactly one wheel
     * slot (via prev/next) or the far map while pending.
     */
    struct Record
    {
        EventClosure fn;
        Ticks when = 0;
        std::uint64_t seq = 0;
        std::uint32_t prev = nil;
        std::uint32_t next = nil;
        /** Bumped on every free; stale EventIds fail the gen check. */
        std::uint32_t gen = 0;
        std::uint16_t labelId = 0;
        std::uint8_t level = levelFree;
        std::uint8_t slot = 0;
    };

    struct Slot
    {
        std::uint32_t head = nil;
        std::uint32_t tail = nil;
    };

    SVTSIM_ALWAYS_INLINE Record &
    recordAt(std::uint32_t idx)
    {
        return chunks_[idx >> 8][idx & (chunkSize - 1)];
    }
    SVTSIM_ALWAYS_INLINE const Record &
    recordAt(std::uint32_t idx) const
    {
        return chunks_[idx >> 8][idx & (chunkSize - 1)];
    }

    static EventId
    makeId(std::uint32_t idx, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) |
               (static_cast<EventId>(idx) + 1);
    }

    /** Resolve @p id to its live record, or null if fired/stale. */
    const Record *lookup(EventId id) const;

    std::uint32_t allocRecord();
    void freeRecord(std::uint32_t idx, Record &rec);

    /** Bucket a record by when vs now_ and append to its slot. */
    void placeRecord(std::uint32_t idx, Record &rec);
    void linkTail(int level, int slot, std::uint32_t idx, Record &rec);
    void unlink(Record &rec, std::uint32_t idx);

    void markOccupied(int level, int slot);
    void clearOccupied(int level, int slot);
    /** First occupied slot of @p level, or -1. */
    int firstOccupied(int level) const;
    /** Lowest level with any occupied slot, or -1 (wheel empty). */
    int lowestOccupiedLevel() const;

    /** Absolute time of level-0 slot @p slot in the current window. */
    Ticks level0Time(int slot) const
    {
        return (now_ & ~static_cast<Ticks>(slotMask)) | slot;
    }
    /** Window base of level-k slot @p slot (k >= 1). */
    Ticks slotBase(int level, int slot) const;

    /**
     * Jump now_ to @p t, cascading the wheel slots that t's windows
     * enter and pulling newly-reachable far events in.
     * @pre no live event has a timestamp < t.
     */
    void moveTimeTo(Ticks t);
    /** Re-bucket every record in level-k slot @p slot vs new now_. */
    void cascade(int level, int slot);
    void pullFar();

    /** Fire all events at tick t (== now_) in seq order. */
    void fireCurrentSlot(Ticks t);

    /** advanceTo() body without the horizon check. */
    void advanceUngated(Ticks when);
    /**
     * Slow path for an advance whose target crosses the horizon:
     * drain below it, block at the gate for more time, repeat. An
     * idle advance returns after the first re-grant (see idleTo()).
     */
    void gatedAdvance(Ticks when, bool idle);

    std::uint16_t internLabel(std::string_view label);

    // -- Arena -------------------------------------------------------------
    std::vector<std::unique_ptr<Record[]>> chunks_;
    std::uint32_t freeHead_ = nil;
    std::uint32_t allocated_ = 0;

    // -- Wheel -------------------------------------------------------------
    Slot slots_[numLevels][numSlots];
    std::uint64_t occupied_[numLevels][numSlots / 64] = {};
    /** Bit k set iff level k has any occupied slot. */
    std::uint32_t levelSummary_ = 0;
    /** Events beyond the wheel horizon, ordered by (when, seq). */
    std::map<std::pair<Ticks, std::uint64_t>, std::uint32_t> far_;

    // -- Labels ------------------------------------------------------------
    /** labels_[0] is the empty label. */
    std::vector<std::string> labels_{std::string()};
    std::unordered_map<std::string, std::uint16_t> labelIds_;
    struct LabelCacheEntry
    {
        const char *data = nullptr;
        std::size_t size = 0;
        std::uint16_t id = 0;
    };
    /** Direct-mapped cache keyed on the literal's address, so hot
     *  call sites skip the hash lookup after the first schedule. */
    LabelCacheEntry labelCache_[16];

    Ticks now_ = 0;
    /** Exclusive bound on event execution while a gate is installed. */
    Ticks horizon_ = maxTick;
    AdvanceGate *gate_ = nullptr;
    std::uint64_t nextSeq_ = 0;
    std::size_t liveCount_ = 0;
    std::uint64_t executed_ = 0;
    TraceSink *traceSink_ = nullptr;
    FaultInjector *faultInjector_ = nullptr;
};

/**
 * A per-executor view of simulated time.
 *
 * Synchronous code holds a Clock and calls consume() to model the cost
 * of the work it performs. The clock forwards to the shared EventQueue
 * so device events interleave correctly.
 *
 * The Clock also tracks an "accounting scope" stack so benchmarks can
 * attribute elapsed time to stages (e.g., the six parts of Table 1).
 */
class Clock
{
  public:
    explicit Clock(EventQueue &eq) : eq_(&eq) {}

    /** Current simulated time. */
    Ticks now() const { return eq_->now(); }

    /**
     * Consume @p t ticks of simulated time (runs due events).
     * A negative @p t is a cost-model arithmetic bug (a subtraction
     * that went past zero) and panics — silently ignoring it used to
     * mask exactly the bugs advanceBy's own assert was written to
     * catch.
     */
    void
    consume(Ticks t)
    {
        simAssert(t >= 0, "Clock::consume negative time");
        if (t > 0)
            eq_->advanceBy(t);
    }

    /** Underlying event queue. */
    EventQueue &queue() { return *eq_; }

  private:
    EventQueue *eq_;
};

} // namespace svtsim

#endif // SVTSIM_SIM_EVENT_QUEUE_H
