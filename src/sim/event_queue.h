/**
 * @file
 * Discrete-event core: EventQueue and the Clock view used by the
 * synchronous execution model.
 *
 * The simulator mixes two styles:
 *
 *  - Asynchronous entities (devices, timers, network links) schedule
 *    zero-duration callbacks on the EventQueue. Handlers must not
 *    consume time; they flip state (assert an IRQ line, complete a
 *    descriptor) that synchronous code observes later.
 *
 *  - Synchronous code (guest programs, hypervisor exit handlers)
 *    consumes modeled time via Clock::consume(). Consuming time runs
 *    every event whose timestamp is passed, in order, so device
 *    completions and interrupts appear at the right simulated instant.
 */

#ifndef SVTSIM_SIM_EVENT_QUEUE_H
#define SVTSIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/ticks.h"

namespace svtsim {

class TraceSink;
class FaultInjector;

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Invalid/none event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Time-ordered queue of zero-duration callbacks.
 *
 * Events at the same tick run in scheduling order (FIFO), which keeps
 * runs deterministic.
 *
 * Cancellation is lazy in the heap but eager for the payload: the
 * heap holds only (when, seq, id) triples, and deschedule() releases
 * the closure immediately, so resources captured by a cancelled event
 * (device or vCPU references) never outlive the cancellation.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Ticks now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @return A handle that can be passed to deschedule().
     * @pre when >= now().
     */
    EventId schedule(Ticks when, std::function<void()> fn,
                     std::string label = {});

    /** Schedule @p fn to run @p delta ticks from now. */
    EventId scheduleIn(Ticks delta, std::function<void()> fn,
                       std::string label = {});

    /**
     * Cancel a pending event, releasing its closure immediately.
     * Cancelling an already-fired or unknown handle is a no-op
     * (matches typical timer APIs).
     *
     * @return True if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Whether any events are pending. */
    bool empty() const { return records_.empty(); }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return records_.size(); }

    /** Time of the next pending event, or maxTick if none. */
    Ticks nextEventTime() const;

    /**
     * Advance time to @p when, running every event with timestamp
     * <= @p when in order. Each event runs with now() set to its own
     * timestamp; afterwards now() == when.
     *
     * @pre when >= now().
     */
    void advanceTo(Ticks when);

    /** Advance time by @p delta ticks (see advanceTo()). */
    void advanceBy(Ticks delta);

    /**
     * Run the next pending event, advancing now() to its timestamp.
     *
     * @return True if an event ran, false if the queue was empty.
     */
    bool runNext();

    /**
     * Run events until @p pred returns true or the queue drains.
     * @p pred is evaluated after every event.
     *
     * @return True if pred held; false if the queue drained first.
     */
    bool runUntil(const std::function<bool()> &pred);

    /** Total number of events executed so far (for stats/tests). */
    std::uint64_t executedCount() const { return executed_; }

    /**
     * Optional trace sink, reachable from anything that holds the
     * queue (Machine, devices). Not owned; whoever attaches it must
     * detach (set nullptr) before destroying it.
     */
    TraceSink *traceSink() const { return traceSink_; }
    void setTraceSink(TraceSink *sink) { traceSink_ = sink; }

    /**
     * Optional fault injector, published here (like the trace sink)
     * so hook points that only hold the queue — LAPICs, rings,
     * devices — can reach it. Not owned; null means no faults.
     */
    FaultInjector *faultInjector() const { return faultInjector_; }
    void setFaultInjector(FaultInjector *inj) { faultInjector_ = inj; }

    /**
     * Whether @p id refers to a still-pending event. Lets owners of
     * tracked event handles prune fired ones without descheduling.
     */
    bool pending(EventId id) const
    {
        return records_.find(id) != records_.end();
    }

  private:
    /** Heap key; the closure lives in records_ so cancellation can
     *  release it eagerly. */
    struct HeapEntry
    {
        Ticks when;
        std::uint64_t seq;
        EventId id;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    struct Record
    {
        std::function<void()> fn;
        std::string label;
    };

    void popCancelled() const;

    /** Pop the next live event's heap entry and take its record.
     *  @pre the heap has a live entry at the top (popCancelled ran). */
    Record takeTop();

    /** mutable: nextEventTime() prunes cancelled heap entries without
     *  changing observable state, keeping the method genuinely const. */
    mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                std::greater<>>
        heap_;
    std::unordered_map<EventId, Record> records_;
    Ticks now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    TraceSink *traceSink_ = nullptr;
    FaultInjector *faultInjector_ = nullptr;
};

/**
 * A per-executor view of simulated time.
 *
 * Synchronous code holds a Clock and calls consume() to model the cost
 * of the work it performs. The clock forwards to the shared EventQueue
 * so device events interleave correctly.
 *
 * The Clock also tracks an "accounting scope" stack so benchmarks can
 * attribute elapsed time to stages (e.g., the six parts of Table 1).
 */
class Clock
{
  public:
    explicit Clock(EventQueue &eq) : eq_(&eq) {}

    /** Current simulated time. */
    Ticks now() const { return eq_->now(); }

    /** Consume @p t ticks of simulated time (runs due events). */
    void
    consume(Ticks t)
    {
        if (t > 0)
            eq_->advanceBy(t);
    }

    /** Underlying event queue. */
    EventQueue &queue() { return *eq_; }

  private:
    EventQueue *eq_;
};

} // namespace svtsim

#endif // SVTSIM_SIM_EVENT_QUEUE_H
