/**
 * @file
 * Error reporting and status messages.
 *
 * Follows the gem5 idiom (panic/fatal/warn/inform), adapted to a library
 * setting: contract violations raise SimError exceptions instead of
 * aborting the process, so tests can exercise error paths.
 *
 *  - panic():  a bug in the simulator itself; should never happen.
 *  - fatal():  the user configured something invalid.
 *  - warn():   suspicious but recoverable condition.
 *  - inform(): informational status.
 */

#ifndef SVTSIM_SIM_LOG_H
#define SVTSIM_SIM_LOG_H

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace svtsim {

/** Base class for all simulator errors. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what) {}
};

/** Raised by panic(): an internal invariant was violated. */
class PanicError : public SimError
{
  public:
    explicit PanicError(const std::string &what) : SimError(what) {}
};

/** Raised by fatal(): the user supplied an invalid configuration. */
class FatalError : public SimError
{
  public:
    explicit FatalError(const std::string &what) : SimError(what) {}
};

namespace log_detail {

std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace log_detail

/** Global verbosity switch for warn()/inform() output. */
enum class LogLevel { Quiet, Warn, Inform };

/** Get/set the process-wide log level (default: Warn). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Report an internal simulator bug and raise PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        throw PanicError(std::string("panic: ") + fmt);
    } else {
        throw PanicError("panic: " +
                         log_detail::format(fmt,
                                            std::forward<Args>(args)...));
    }
}

/** Report an invalid user configuration and raise FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        throw FatalError(std::string("fatal: ") + fmt);
    } else {
        throw FatalError("fatal: " +
                         log_detail::format(fmt,
                                            std::forward<Args>(args)...));
    }
}

/** Print a warning to stderr (honours the log level). */
void warn(const std::string &msg);

/** Print a status message to stderr (honours the log level). */
void inform(const std::string &msg);

/** Assert an internal invariant; raises PanicError on failure. */
inline void
simAssert(bool cond, const char *what)
{
    if (!cond)
        panic("%s", what);
}

} // namespace svtsim

#endif // SVTSIM_SIM_LOG_H
