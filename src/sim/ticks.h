/**
 * @file
 * Simulation time base.
 *
 * One tick is one picosecond. Picosecond resolution lets the cost model
 * express sub-nanosecond per-operation costs (e.g., a single physical
 * register file access at 2.4 GHz is ~417 ps) without losing determinism
 * to floating point.
 */

#ifndef SVTSIM_SIM_TICKS_H
#define SVTSIM_SIM_TICKS_H

#include <cstdint>

namespace svtsim {

/** Simulation time, in picoseconds. */
using Ticks = std::int64_t;

/** A point that compares later than any schedulable event. */
constexpr Ticks maxTick = INT64_MAX;

/** Convert picoseconds to ticks (identity; for call-site clarity). */
constexpr Ticks
psec(double v)
{
    return static_cast<Ticks>(v);
}

/** Convert nanoseconds to ticks. */
constexpr Ticks
nsec(double v)
{
    return static_cast<Ticks>(v * 1e3);
}

/** Convert microseconds to ticks. */
constexpr Ticks
usec(double v)
{
    return static_cast<Ticks>(v * 1e6);
}

/** Convert milliseconds to ticks. */
constexpr Ticks
msec(double v)
{
    return static_cast<Ticks>(v * 1e9);
}

/** Convert seconds to ticks. */
constexpr Ticks
sec(double v)
{
    return static_cast<Ticks>(v * 1e12);
}

/** Convert ticks back to fractional microseconds (for reporting). */
constexpr double
toUsec(Ticks t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert ticks back to fractional nanoseconds (for reporting). */
constexpr double
toNsec(Ticks t)
{
    return static_cast<double>(t) / 1e3;
}

/** Convert ticks back to fractional seconds (for reporting). */
constexpr double
toSec(Ticks t)
{
    return static_cast<double>(t) / 1e12;
}

/**
 * Convert a cycle count at a given frequency to ticks.
 *
 * @param cycles Number of core cycles.
 * @param ghz Core frequency in GHz.
 */
constexpr Ticks
cycles(double cycles, double ghz)
{
    return static_cast<Ticks>(cycles * 1e3 / ghz);
}

} // namespace svtsim

#endif // SVTSIM_SIM_TICKS_H
