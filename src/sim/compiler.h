/**
 * @file
 * Compiler portability helpers for the simulator hot paths.
 *
 * The discrete-event core runs tens of millions of events per wall
 * second; the observability hooks (trace sink, fault injector) must
 * cost a single statically-predicted branch when disabled. These
 * macros keep that contract explicit at the hook sites.
 */

#ifndef SVTSIM_SIM_COMPILER_H
#define SVTSIM_SIM_COMPILER_H

#if defined(__GNUC__) || defined(__clang__)

/** Branch is expected to be taken / not taken (static prediction). */
#define SVTSIM_LIKELY(x) __builtin_expect(!!(x), 1)
#define SVTSIM_UNLIKELY(x) __builtin_expect(!!(x), 0)

/** Force inlining of tiny hot-path accessors even at -O0/-Og. */
#define SVTSIM_ALWAYS_INLINE inline __attribute__((always_inline))

#else

#define SVTSIM_LIKELY(x) (x)
#define SVTSIM_UNLIKELY(x) (x)
#define SVTSIM_ALWAYS_INLINE inline

#endif

namespace svtsim {

/** Index of the highest set bit of @p v. @pre v != 0. */
SVTSIM_ALWAYS_INLINE int
topBitIndex(unsigned long long v)
{
#if defined(__GNUC__) || defined(__clang__)
    return 63 - __builtin_clzll(v);
#else
    int i = 0;
    while (v >>= 1)
        ++i;
    return i;
#endif
}

/** Index of the lowest set bit of @p v. @pre v != 0. */
SVTSIM_ALWAYS_INLINE int
bottomBitIndex(unsigned long long v)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(v);
#else
    int i = 0;
    while (!(v & 1)) {
        v >>= 1;
        ++i;
    }
    return i;
#endif
}

} // namespace svtsim

#endif // SVTSIM_SIM_COMPILER_H
