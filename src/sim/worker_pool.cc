#include "sim/worker_pool.h"

#include <algorithm>

namespace svtsim {

WorkerPool::WorkerPool(int workers)
{
    int n = std::max(1, workers);
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(Item{std::move(task), nullptr});
    }
    taskReady_.notify_one();
}

void
WorkerPool::runTasks(std::function<void()> *const *tasks,
                     std::size_t count)
{
    if (count == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < count; ++i)
            queue_.push_back(Item{{}, tasks[i]});
    }
    if (count == 1)
        taskReady_.notify_one();
    else
        taskReady_.notify_all();
    wait();
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && inFlight_ == 0; });
}

int
WorkerPool::defaultWorkers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        Item item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and nothing left to drain.
                return;
            }
            item = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        if (item.borrowed != nullptr)
            (*item.borrowed)();
        else
            item.owned();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace svtsim
