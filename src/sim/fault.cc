#include "sim/fault.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "sim/log.h"

namespace svtsim {

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::RingPostDrop: return "ring.post.drop";
      case FaultSite::RingDoorbellDelay: return "ring.doorbell.delay";
      case FaultSite::RingSpuriousWake: return "ring.wake.spurious";
      case FaultSite::IpiDrop: return "ipi.drop";
      case FaultSite::IpiDelay: return "ipi.delay";
      case FaultSite::VirtioCompletionDelay:
        return "virtio.completion.delay";
      case FaultSite::VirtioBackpressure: return "virtio.backpressure";
      case FaultSite::NumSites: break;
    }
    return "?";
}

bool
faultSiteIsDelay(FaultSite site)
{
    return site == FaultSite::RingDoorbellDelay ||
           site == FaultSite::IpiDelay ||
           site == FaultSite::VirtioCompletionDelay;
}

namespace {

/** All site names, for the error message of an unknown site. */
std::string
knownSites()
{
    std::string out;
    for (std::size_t i = 0; i < numFaultSites; ++i) {
        if (!out.empty())
            out += ", ";
        out += faultSiteName(static_cast<FaultSite>(i));
    }
    return out;
}

bool
lookupSite(const std::string &name, FaultSite &out)
{
    for (std::size_t i = 0; i < numFaultSites; ++i) {
        auto site = static_cast<FaultSite>(i);
        if (name == faultSiteName(site)) {
            out = site;
            return true;
        }
    }
    return false;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Parse "NUMBER(ns|us|ms)" into Ticks. */
bool
parseTime(const std::string &text, Ticks &out)
{
    std::size_t unit = text.size();
    while (unit > 0 &&
           !std::isdigit(static_cast<unsigned char>(text[unit - 1])) &&
           text[unit - 1] != '.') {
        --unit;
    }
    double value = 0;
    if (!parseDouble(text.substr(0, unit), value) || value < 0)
        return false;
    std::string suffix = text.substr(unit);
    if (suffix == "ns")
        out = nsec(value);
    else if (suffix == "us")
        out = usec(value);
    else if (suffix == "ms")
        out = usec(value * 1000.0);
    else
        return false;
    return true;
}

std::vector<std::string>
splitTrimmed(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        std::size_t end = text.find(sep, begin);
        if (end == std::string::npos)
            end = text.size();
        std::size_t lo = begin, hi = end;
        while (lo < hi &&
               std::isspace(static_cast<unsigned char>(text[lo])))
            ++lo;
        while (hi > lo &&
               std::isspace(static_cast<unsigned char>(text[hi - 1])))
            --hi;
        parts.push_back(text.substr(lo, hi - lo));
        if (end == text.size())
            break;
        begin = end + 1;
    }
    return parts;
}

FaultClause
parseClause(const std::string &text)
{
    std::size_t at = text.find('@');
    if (at == std::string::npos) {
        fatal("fault spec clause '%s' has no '@trigger' part "
              "(expected site@trigger[,dTIME])",
              text.c_str());
    }

    FaultClause clause;
    std::string site_name = text.substr(0, at);
    if (!lookupSite(site_name, clause.site)) {
        fatal("fault spec names unknown site '%s' (known sites: %s)",
              site_name.c_str(), knownSites().c_str());
    }

    std::vector<std::string> parts =
        splitTrimmed(text.substr(at + 1), ',');
    const std::string &trigger = parts[0];
    if (trigger.empty()) {
        fatal("fault spec clause '%s' has an empty trigger",
              text.c_str());
    }
    if (trigger[0] == 'n') {
        std::string body = trigger.substr(1);
        std::size_t plus = body.find('+');
        std::string first = body.substr(0, plus);
        if (!parseU64(first, clause.first) || clause.first == 0) {
            fatal("fault trigger '%s': occurrence index must be a "
                  "positive integer (occurrences are 1-based)",
                  trigger.c_str());
        }
        if (plus != std::string::npos) {
            if (!parseU64(body.substr(plus + 1), clause.count) ||
                clause.count == 0) {
                fatal("fault trigger '%s': occurrence count must be a "
                      "positive integer",
                      trigger.c_str());
            }
        }
    } else if (trigger[0] == 'p') {
        clause.probabilistic = true;
        if (!parseDouble(trigger.substr(1), clause.probability) ||
            clause.probability < 0.0 || clause.probability > 1.0) {
            fatal("fault trigger '%s': probability must be in [0, 1]",
                  trigger.c_str());
        }
    } else {
        fatal("fault trigger '%s': expected 'n<N>[+COUNT]' or "
              "'p<PROB>'",
              trigger.c_str());
    }

    bool have_delay = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &param = parts[i];
        if (param.empty() || param[0] != 'd') {
            fatal("fault spec clause '%s': unknown parameter '%s' "
                  "(only 'dTIME' is defined)",
                  text.c_str(), param.c_str());
        }
        if (!parseTime(param.substr(1), clause.delay)) {
            fatal("fault spec clause '%s': bad delay '%s' (expected "
                  "NUMBER followed by ns, us or ms)",
                  text.c_str(), param.c_str());
        }
        have_delay = true;
    }

    if (faultSiteIsDelay(clause.site) && !have_delay) {
        fatal("fault site %s shifts time and needs a ',dTIME' "
              "parameter (e.g. %s@p0.5,d2us)",
              faultSiteName(clause.site), faultSiteName(clause.site));
    }
    if (!faultSiteIsDelay(clause.site) && have_delay) {
        fatal("fault site %s does not take a delay; drop the ',dTIME' "
              "parameter",
              faultSiteName(clause.site));
    }
    return clause;
}

/** SplitMix64 finalizer; decorrelates the per-site RNG streams. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t site)
{
    std::uint64_t z = seed + (site + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    plan.spec_ = spec;
    for (const std::string &clause : splitTrimmed(spec, ';')) {
        if (clause.empty())
            continue;
        plan.clauses_.push_back(parseClause(clause));
    }
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan))
{
    for (std::size_t i = 0; i < numFaultSites; ++i)
        sites_[i].rng = Rng(mixSeed(seed, i));
}

FaultDecision
FaultInjector::decide(FaultSite site)
{
    SiteState &state = sites_[static_cast<std::size_t>(site)];
    std::uint64_t occurrence = ++state.occurrences;

    FaultDecision decision;
    for (const FaultClause &clause : plan_.clauses()) {
        if (clause.site != site)
            continue;
        bool hit;
        if (clause.probabilistic) {
            // Draw unconditionally so a clause's own history is the
            // only input to its stream.
            hit = state.rng.chance(clause.probability);
        } else {
            hit = occurrence >= clause.first &&
                  occurrence < clause.first + clause.count;
        }
        if (hit) {
            decision.fire = true;
            decision.delay += clause.delay;
        }
    }
    if (decision.fire) {
        ++state.injected;
        if (onInject_)
            onInject_(site);
    }
    return decision;
}

std::uint64_t
FaultInjector::injectedCount(FaultSite site) const
{
    return sites_[static_cast<std::size_t>(site)].injected;
}

std::uint64_t
FaultInjector::occurrenceCount(FaultSite site) const
{
    return sites_[static_cast<std::size_t>(site)].occurrences;
}

} // namespace svtsim
