/**
 * @file
 * Structured per-trap tracing with verifiable time attribution.
 *
 * The stage-scope accounting in Machine answers "how much time went to
 * each Table 1 stage in total"; the TraceSink answers "where did every
 * individual nanosecond of this run go, in order". It records:
 *
 *  - spans (begin/end pairs, strictly nested, RAII via TraceSpan) with
 *    a category and a name — the `stage.*` spans are the six Table 1
 *    stages plus `stage.channel` / `stage.l1_housekeeping`;
 *  - instant events (a VM entry, an SVt fetch retarget, a virtqueue
 *    kick);
 *  - counters (ring payload sizes, queue depths).
 *
 * Time attribution is *exclusive*: every tick consumed through
 * Machine::consume() is charged to the innermost open `stage.*` span
 * (or to the `unattributed` bucket when none is open), and ticks spent
 * idle through Machine::idleUntil() are charged to `idle`. That makes
 * the central invariant checkable:
 *
 *   conservation:  attributed + idle + unattributed == elapsed ticks
 *                  and, in a fully instrumented run, unattributed == 0.
 *
 * A double-charged or dropped consume() — e.g. a channel pop billed
 * outside any stage — shows up as a non-zero `unattributed` total (or
 * as elapsed time no bucket saw), so the invariant turns silent cost
 * accounting bugs into test failures.
 *
 * The event buffer is bounded: when full, new events are dropped and
 * counted (attribution totals are exact regardless of drops). When the
 * sink is disabled — the default — every entry point is a single
 * branch on a bool, and builds can hard-disable tracing by defining
 * SVTSIM_DISABLE_TRACING, which compiles the TraceSpan helper macro
 * away entirely.
 */

#ifndef SVTSIM_SIM_TRACE_H
#define SVTSIM_SIM_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/compiler.h"
#include "sim/event_queue.h"
#include "sim/ticks.h"

namespace svtsim {

/** Coarse event taxonomy; becomes the Chrome trace "cat" field. */
enum class TraceCategory : std::uint8_t
{
    Stage,   ///< Table 1 stage attribution scopes (`stage.*`).
    Exit,    ///< One nested trap round, named by exit reason.
    Vmx,     ///< VMX transitions: entry/exit/vmptrld.
    Vmcs,    ///< VMCS transforms and shadow accesses.
    Svt,     ///< SVt unit: trap/resume retargets, ctxtld/ctxtst.
    Channel, ///< SW SVt command rings and wake latencies.
    Irq,     ///< Interrupt raise/deliver paths.
    Io,      ///< Virtqueue kicks and completions.
    Sim,     ///< Everything else (workloads, harness).
};

const char *traceCategoryName(TraceCategory c);

/** One recorded event. */
struct TraceEvent
{
    enum class Phase : std::uint8_t
    {
        Complete, ///< A span: [start, start + duration).
        Instant,  ///< A point event.
        Counter,  ///< A named value sampled at `start`.
    };

    Phase phase = Phase::Instant;
    TraceCategory category = TraceCategory::Sim;
    std::string name;
    Ticks start = 0;
    Ticks duration = 0;
    std::int64_t value = 0;
};

/**
 * Bounded event buffer plus exclusive per-stage time attribution.
 *
 * Non-owning observers (Machine, the instrumented devices) reach the
 * sink through EventQueue::traceSink(); whoever created the sink
 * (tests, a bench's ScopedTrace) owns it and must detach before
 * destroying it.
 */
class TraceSink
{
  public:
    /** Default event-buffer capacity (events beyond it are dropped
     *  and counted; attribution stays exact). */
    static constexpr std::size_t defaultCapacity = 1 << 20;

    explicit TraceSink(EventQueue &eq,
                       std::size_t capacity = defaultCapacity);

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Tracing is off until enabled; disabled calls are one branch. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on);

    /** Drop all events and attribution; re-anchor the conservation
     *  origin at the queue's current time. */
    void reset();

    // -- Event recording -------------------------------------------------
    /** Open a span; returns a handle for endSpan(). Spans must close
     *  in LIFO order (use TraceSpan / Machine scopes). */
    std::size_t beginSpan(TraceCategory category, std::string name);
    void endSpan(std::size_t handle);

    void instant(TraceCategory category, std::string name,
                 std::int64_t value = 0);
    void counter(std::string name, std::int64_t value);

    // -- Time attribution (driven by Machine) -----------------------------
    /** Charge @p t consumed ticks to the innermost open stage span. */
    void attribute(Ticks t);
    /** Charge @p t ticks of idle/wait time. */
    void attributeIdle(Ticks t);

    // -- Conservation -----------------------------------------------------
    struct Conservation
    {
        Ticks elapsed = 0;      ///< Queue time since enable/reset.
        Ticks attributed = 0;   ///< Sum of per-stage exclusive ticks.
        Ticks idle = 0;         ///< Ticks passed via idleUntil().
        Ticks unattributed = 0; ///< Consumed with no stage span open.
        /** attributed + idle + unattributed == elapsed. A violation
         *  means time advanced behind the accounting's back. */
        bool conserved() const
        {
            return attributed + idle + unattributed == elapsed;
        }
        /** Strict form: conserved and every consumed tick landed in a
         *  named stage (what checked nested-trap runs assert). */
        bool fullyAttributed() const
        {
            return conserved() && unattributed == 0;
        }
    };

    /** Snapshot the invariant relative to the last enable/reset. */
    Conservation checkConservation() const;

    // -- Introspection ----------------------------------------------------
    const std::vector<TraceEvent> &events() const { return events_; }
    std::uint64_t droppedEvents() const { return dropped_; }
    std::size_t openSpanDepth() const { return open_.size(); }

    /** Exclusive (self-time) ticks per stage span name. */
    const std::map<std::string, Ticks> &stageSelfTotals() const
    {
        return stageSelf_;
    }

    // -- Exporters --------------------------------------------------------
    /** Chrome trace-event JSON (chrome://tracing, Perfetto). */
    void writeChromeTrace(std::ostream &os) const;

    /** CSV stage summary: one row per stage plus idle/unattributed;
     *  the tick column sums exactly to the elapsed ticks. */
    void writeCsvSummary(std::ostream &os) const;

  private:
    struct OpenSpan
    {
        TraceCategory category;
        std::string name;
        Ticks start;
        bool isStage;
    };

    void push(TraceEvent ev);

    EventQueue &eq_;
    std::size_t capacity_;
    bool enabled_ = false;
    Ticks origin_ = 0;

    std::vector<TraceEvent> events_;
    std::uint64_t dropped_ = 0;

    std::vector<OpenSpan> open_;
    /** Indices into open_ of the open stage spans (innermost last). */
    std::vector<std::size_t> openStages_;

    std::map<std::string, Ticks> stageSelf_;
    Ticks attributed_ = 0;
    Ticks idle_ = 0;
    Ticks unattributed_ = 0;
};

/**
 * RAII span. Does nothing (and records nothing) when @p sink is null
 * or disabled, so instrumentation points cost one test+branch.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceSink *sink, TraceCategory category, const char *name)
        : sink_(SVTSIM_UNLIKELY(sink && sink->enabled()) ? sink
                                                         : nullptr)
    {
        if (SVTSIM_UNLIKELY(sink_ != nullptr))
            handle_ = sink_->beginSpan(category, name);
    }

    ~TraceSpan()
    {
        if (SVTSIM_UNLIKELY(sink_ != nullptr))
            sink_->endSpan(handle_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceSink *sink_;
    std::size_t handle_ = 0;
};

/** Record an instant event if @p sink_expr yields an enabled sink. */
#ifdef SVTSIM_DISABLE_TRACING
#define SVTSIM_TRACE_INSTANT(sink_expr, category, name)                \
    do {                                                               \
    } while (0)
#define SVTSIM_TRACE_SPAN(var, sink_expr, category, name)              \
    do {                                                               \
    } while (0)
#else
#define SVTSIM_TRACE_INSTANT(sink_expr, category, name)                \
    do {                                                               \
        ::svtsim::TraceSink *sink_ = (sink_expr);                      \
        if (SVTSIM_UNLIKELY(sink_ && sink_->enabled()))                \
            sink_->instant((category), (name));                        \
    } while (0)
#define SVTSIM_TRACE_SPAN(var, sink_expr, category, name)              \
    ::svtsim::TraceSpan var((sink_expr), (category), (name))
#endif

} // namespace svtsim

#endif // SVTSIM_SIM_TRACE_H
