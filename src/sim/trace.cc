#include "sim/trace.h"

#include <cinttypes>
#include <ostream>

#include "sim/log.h"

namespace svtsim {

namespace {

/** Stage spans are the attribution targets of the conservation
 *  invariant; everything named `stage.*` participates. */
bool
isStageName(const std::string &name)
{
    return name.rfind("stage.", 0) == 0;
}

/** Minimal JSON string escaping (names are ASCII identifiers, but be
 *  safe about quotes/backslashes/control bytes). */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

} // namespace

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Stage: return "stage";
      case TraceCategory::Exit: return "exit";
      case TraceCategory::Vmx: return "vmx";
      case TraceCategory::Vmcs: return "vmcs";
      case TraceCategory::Svt: return "svt";
      case TraceCategory::Channel: return "channel";
      case TraceCategory::Irq: return "irq";
      case TraceCategory::Io: return "io";
      case TraceCategory::Sim: return "sim";
    }
    return "?";
}

TraceSink::TraceSink(EventQueue &eq, std::size_t capacity)
    : eq_(eq), capacity_(capacity), origin_(eq.now())
{
    if (capacity_ == 0)
        fatal("TraceSink requires a non-zero event capacity");
}

void
TraceSink::setEnabled(bool on)
{
    if (on && !enabled_)
        reset();
    enabled_ = on;
}

void
TraceSink::reset()
{
    events_.clear();
    dropped_ = 0;
    // Open spans survive a reset (RAII holders still reference them);
    // their self time restarts from here.
    for (auto &span : open_)
        span.start = eq_.now();
    stageSelf_.clear();
    attributed_ = 0;
    idle_ = 0;
    unattributed_ = 0;
    origin_ = eq_.now();
}

void
TraceSink::push(TraceEvent ev)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(ev));
}

std::size_t
TraceSink::beginSpan(TraceCategory category, std::string name)
{
    if (!enabled_)
        return 0;
    bool stage = isStageName(name);
    open_.push_back(
        OpenSpan{category, std::move(name), eq_.now(), stage});
    if (stage)
        openStages_.push_back(open_.size() - 1);
    return open_.size() - 1;
}

void
TraceSink::endSpan(std::size_t handle)
{
    if (!enabled_)
        return;
    if (open_.empty() || handle != open_.size() - 1) {
        panic("TraceSink: span closed out of LIFO order (handle=%zu "
              "depth=%zu)",
              handle, open_.size());
    }
    OpenSpan span = std::move(open_.back());
    open_.pop_back();
    if (span.isStage) {
        simAssert(!openStages_.empty() &&
                      openStages_.back() == open_.size(),
                  "TraceSink: stage span stack corrupted");
        openStages_.pop_back();
    }
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Complete;
    ev.category = span.category;
    ev.name = std::move(span.name);
    ev.start = span.start;
    ev.duration = eq_.now() - span.start;
    push(std::move(ev));
}

void
TraceSink::instant(TraceCategory category, std::string name,
                   std::int64_t value)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Instant;
    ev.category = category;
    ev.name = std::move(name);
    ev.start = eq_.now();
    ev.value = value;
    push(std::move(ev));
}

void
TraceSink::counter(std::string name, std::int64_t value)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Counter;
    ev.category = TraceCategory::Sim;
    ev.name = std::move(name);
    ev.start = eq_.now();
    ev.value = value;
    push(std::move(ev));
}

void
TraceSink::attribute(Ticks t)
{
    if (!enabled_ || t <= 0)
        return;
    if (openStages_.empty()) {
        unattributed_ += t;
        return;
    }
    stageSelf_[open_[openStages_.back()].name] += t;
    attributed_ += t;
}

void
TraceSink::attributeIdle(Ticks t)
{
    if (!enabled_ || t <= 0)
        return;
    idle_ += t;
}

TraceSink::Conservation
TraceSink::checkConservation() const
{
    Conservation c;
    c.elapsed = eq_.now() - origin_;
    c.attributed = attributed_;
    c.idle = idle_;
    c.unattributed = unattributed_;
    return c;
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // Chrome trace-event format: timestamps ("ts") and durations
    // ("dur") are fractional microseconds; ticks are picoseconds.
    auto us = [](Ticks t) { return static_cast<double>(t) / 1e6; };
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const auto &ev : events_) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":";
        writeJsonString(os, ev.name);
        os << ",\"cat\":\"" << traceCategoryName(ev.category)
           << "\",\"pid\":0,\"tid\":0,\"ts\":" << us(ev.start);
        switch (ev.phase) {
          case TraceEvent::Phase::Complete:
            os << ",\"ph\":\"X\",\"dur\":" << us(ev.duration);
            break;
          case TraceEvent::Phase::Instant:
            os << ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"value\":"
               << ev.value << "}";
            break;
          case TraceEvent::Phase::Counter:
            os << ",\"ph\":\"C\",\"args\":{\"value\":" << ev.value
               << "}";
            break;
        }
        os << '}';
    }
    os << "]}";
}

void
TraceSink::writeCsvSummary(std::ostream &os) const
{
    Conservation c = checkConservation();
    os << "stage,ticks,usec,percent\n";
    auto row = [&](const std::string &name, Ticks t) {
        double pct = c.elapsed > 0 ? 100.0 * static_cast<double>(t) /
                                         static_cast<double>(c.elapsed)
                                   : 0.0;
        os << name << ',' << t << ',' << toUsec(t) << ',' << pct
           << '\n';
    };
    for (const auto &[name, ticks] : stageSelf_)
        row(name, ticks);
    row("idle", c.idle);
    row("unattributed", c.unattributed);
    os << "total," << c.elapsed << ',' << toUsec(c.elapsed) << ",100\n";
}

} // namespace svtsim
