#include "sim/random.h"

#include <cmath>

#include "sim/log.h"

namespace svtsim {

std::uint64_t
Rng::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    simAssert(n > 0, "Rng::below requires n > 0");
    // Multiply-shift bounded sampling; bias is negligible for our n.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * n) >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    simAssert(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    simAssert(mean > 0, "Rng::exponential requires mean > 0");
    double u = uniform();
    // Guard against log(0).
    if (u <= 0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0)
        u1 = 0x1.0p-53;
    double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::generalizedPareto(double location, double scale, double shape)
{
    simAssert(scale > 0, "generalizedPareto requires scale > 0");
    double u = uniform();
    if (u >= 1.0)
        u = 1.0 - 0x1.0p-53;
    if (shape == 0.0)
        return location - scale * std::log(1.0 - u);
    return location + scale * (std::pow(1.0 - u, -shape) - 1.0) / shape;
}

Rng
Rng::fork()
{
    // Two draws keep the child stream decorrelated from the parent's
    // subsequent output.
    std::uint64_t a = next();
    std::uint64_t b = next();
    return Rng(a ^ (b << 1) ^ 0xa5a5a5a5a5a5a5a5ULL);
}

// ZipfSampler: rejection-inversion (Hörmann & Derflinger 1996), sampling
// ranks in [1, n] internally and returning rank-1.

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
    : n_(n), s_(s)
{
    simAssert(n > 0, "ZipfSampler requires n > 0");
    simAssert(s > 0 && s != 1.0,
              "ZipfSampler requires exponent s > 0, s != 1");
    hx0_ = h(0.5) - 1.0;
    hxn_ = h(static_cast<double>(n_) + 0.5);
    cut_ = 1.0 - hInv(h(1.5) - std::pow(2.0, -s_));
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-s: x^(1-s) / (1-s).
    return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double
ZipfSampler::hInv(double x) const
{
    return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    for (;;) {
        double u = hxn_ + rng.uniform() * (hx0_ - hxn_);
        double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        double kd = static_cast<double>(k);
        if (kd - x <= cut_ ||
            u >= h(kd + 0.5) - std::pow(kd, -s_)) {
            return k - 1;
        }
    }
}

} // namespace svtsim
