/**
 * @file
 * Deterministic random number generation for workload models.
 *
 * All stochastic behaviour in the simulator flows through Rng so that a
 * run is reproducible from its seed. The generator is SplitMix64: tiny,
 * fast, and passes BigCrush for this use case.
 */

#ifndef SVTSIM_SIM_RANDOM_H
#define SVTSIM_SIM_RANDOM_H

#include <cstdint>
#include <vector>

namespace svtsim {

/** Deterministic PRNG plus the distributions the workloads need. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value (SplitMix64). */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Exponential variate with the given mean. @pre mean > 0. */
    double exponential(double mean);

    /** Normal variate (Box-Muller). */
    double normal(double mean, double stddev);

    /**
     * Log-normal variate parameterized by the mean and stddev of the
     * underlying normal (the classic service-time model for key-value
     * store request sizes).
     */
    double logNormal(double mu, double sigma);

    /**
     * Generalized-Pareto variate, used by the ETC key-value workload
     * model for value sizes (Atikoglu et al., SIGMETRICS'12).
     */
    double generalizedPareto(double location, double scale, double shape);

    /** Fork an independent stream (for per-entity generators). */
    Rng fork();

  private:
    std::uint64_t state_;
};

/**
 * Zipf-distributed integer sampler over [0, n), exponent s.
 *
 * Used for key popularity in the key-value store workload. Uses the
 * rejection-inversion method of Hörmann and Derflinger so construction
 * is O(1) and sampling is O(1) expected, independent of n.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double s);

    /** Sample a rank in [0, n); rank 0 is the most popular. */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double s() const { return s_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    std::uint64_t n_;
    double s_;
    double hx0_;
    double hxn_;
    double cut_;
};

} // namespace svtsim

#endif // SVTSIM_SIM_RANDOM_H
