/**
 * @file
 * Fixed-size thread pool for running independent simulations in
 * parallel.
 *
 * The pool is deliberately minimal: submit() enqueues fire-and-forget
 * tasks, wait() blocks until every submitted task has finished. Task
 * completion order is unspecified — callers that need deterministic
 * output (the sweep engine does) must write results into
 * caller-owned, per-task slots and aggregate in submission order.
 * Tasks must not throw; exceptions that would escape a task terminate
 * the process, so callers wrap their work in a catch-all.
 */

#ifndef SVTSIM_SIM_WORKER_POOL_H
#define SVTSIM_SIM_WORKER_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace svtsim {

/** Fixed-size worker pool; threads live for the pool's lifetime. */
class WorkerPool
{
  public:
    /** @param workers Number of threads; clamped to at least 1. */
    explicit WorkerPool(int workers);

    /** Joins all workers; pending tasks are completed first. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue a task. Thread-safe. */
    void submit(std::function<void()> task);

    /** Block until every task submitted so far has completed. */
    void wait();

    int workers() const { return static_cast<int>(threads_.size()); }

    /** Reasonable default worker count for this host (>= 1). */
    static int defaultWorkers();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

} // namespace svtsim

#endif // SVTSIM_SIM_WORKER_POOL_H
