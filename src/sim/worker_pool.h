/**
 * @file
 * Fixed-size thread pool for running independent simulations in
 * parallel.
 *
 * The pool is deliberately minimal: submit() enqueues fire-and-forget
 * tasks, wait() blocks until every submitted task has finished. Task
 * completion order is unspecified — callers that need deterministic
 * output (the sweep engine does) must write results into
 * caller-owned, per-task slots and aggregate in submission order.
 * Tasks must not throw; exceptions that would escape a task terminate
 * the process, so callers wrap their work in a catch-all.
 */

#ifndef SVTSIM_SIM_WORKER_POOL_H
#define SVTSIM_SIM_WORKER_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace svtsim {

/** Fixed-size worker pool; threads live for the pool's lifetime. */
class WorkerPool
{
  public:
    /** @param workers Number of threads; clamped to at least 1. */
    explicit WorkerPool(int workers);

    /** Joins all workers; pending tasks are completed first. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue a task. Thread-safe. */
    void submit(std::function<void()> task);

    /**
     * Epoch/bulk path: run @p count persistent tasks and block until
     * all of them (and any earlier submit()s) have completed. The
     * tasks are borrowed by pointer — nothing is copied or
     * heap-allocated per task — so a caller that re-runs the same
     * task set every window (the cluster engine's per-machine epoch
     * slots) pays no per-window allocation. The pointed-to callables
     * must stay alive and unmodified until this call returns.
     */
    void runTasks(std::function<void()> *const *tasks,
                  std::size_t count);

    /** Block until every task submitted so far has completed. */
    void wait();

    int workers() const { return static_cast<int>(threads_.size()); }

    /** Reasonable default worker count for this host (>= 1). */
    static int defaultWorkers();

  private:
    /**
     * Queue entry: either an owned callable (submit()) or a borrowed
     * pointer to a caller-owned persistent slot (runTasks()).
     */
    struct Item
    {
        std::function<void()> owned;
        std::function<void()> *borrowed = nullptr;
    };

    void workerLoop();

    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::deque<Item> queue_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

} // namespace svtsim

#endif // SVTSIM_SIM_WORKER_POOL_H
