#include "sim/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace svtsim {

namespace {

/** Atomic so parallel sweep workers can warn() while another thread
 *  adjusts verbosity without a data race. */
std::atomic<LogLevel> g_level{LogLevel::Warn};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace log_detail {

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace log_detail

void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace svtsim
