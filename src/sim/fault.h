/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultPlan is a parsed `--faults=<spec>` description of which fault
 * sites fire and when; a FaultInjector executes the plan against one
 * machine. Determinism contract: decisions are a pure function of
 * (plan, seed, per-site occurrence sequence). Each site draws from its
 * own seeded SplitMix64 stream, so consulting one site never perturbs
 * another and results are byte-identical for any `--jobs` value.
 *
 * Spec grammar (clauses separated by `;`):
 *
 *     clause  := site '@' trigger (',' 'd' TIME)?
 *     trigger := 'n' N ('+' COUNT)?   nth occurrence (1-based), or a
 *                                     window of COUNT occurrences
 *              | 'p' PROB             each occurrence fires with
 *                                     probability PROB in [0, 1]
 *     TIME    := NUMBER ('ns'|'us'|'ms')
 *
 * Examples: `ipi.drop@n2`, `ipi.delay@p0.5,d2us`,
 * `ring.post.drop@n1+3;virtio.completion.delay@p0.1,d50us`.
 */

#ifndef SVTSIM_SIM_FAULT_H
#define SVTSIM_SIM_FAULT_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/ticks.h"

namespace svtsim {

/** Where a fault can be injected (the hook points in the model). */
enum class FaultSite : std::uint8_t
{
    /** SW SVt command ring: the posted command is lost (the doorbell
     *  store never reaches the waiter). */
    RingPostDrop,
    /** SW SVt command ring: the waiter observes the doorbell late. */
    RingDoorbellDelay,
    /** SW SVt command ring: spurious mwait wakeup — the waiter wakes,
     *  finds no command and re-arms the monitor. */
    RingSpuriousWake,
    /** LAPIC: an in-flight IPI is lost on the interconnect. */
    IpiDrop,
    /** LAPIC: an in-flight IPI is delivered late. */
    IpiDelay,
    /** Virtio completion path: the device-side completion is delayed
     *  (latency spike). */
    VirtioCompletionDelay,
    /** Virtqueue: a post behaves as if the ring were full (consumer
     *  stalled), forcing producer back-pressure. */
    VirtioBackpressure,

    NumSites,
};

constexpr std::size_t numFaultSites =
    static_cast<std::size_t>(FaultSite::NumSites);

/** Stable spec/metric name of a site, e.g. "ipi.drop". */
const char *faultSiteName(FaultSite site);

/** Whether the site's effect is a time shift (takes/needs `dTIME`). */
bool faultSiteIsDelay(FaultSite site);

/** One parsed spec clause. */
struct FaultClause
{
    FaultSite site = FaultSite::RingPostDrop;
    /** Probabilistic trigger (`pPROB`) vs occurrence window (`nN+C`). */
    bool probabilistic = false;
    double probability = 0.0;
    /** First occurrence that fires, 1-based (occurrence triggers). */
    std::uint64_t first = 1;
    /** Number of consecutive occurrences that fire. */
    std::uint64_t count = 1;
    /** Injected delay (delay sites only). */
    Ticks delay = 0;
};

/**
 * A parsed, validated fault plan. Immutable; shareable across the
 * scenarios of a sweep (each scenario gets its own FaultInjector).
 */
class FaultPlan
{
  public:
    /** The empty plan (no clauses, nothing ever fires). */
    FaultPlan() = default;

    /**
     * Parse a spec string (see the file comment for the grammar).
     * Raises FatalError with an actionable message on invalid input;
     * an empty spec yields the empty plan.
     */
    static FaultPlan parse(const std::string &spec);

    bool empty() const { return clauses_.empty(); }
    const std::vector<FaultClause> &clauses() const { return clauses_; }

    /** The original spec text (for JSON provenance fields). */
    const std::string &spec() const { return spec_; }

  private:
    std::string spec_;
    std::vector<FaultClause> clauses_;
};

/** Outcome of consulting the injector at one site occurrence. */
struct FaultDecision
{
    bool fire = false;
    Ticks delay = 0;
};

/**
 * Executes a FaultPlan against one machine. Hook points call fires()
 * or delay() once per occurrence; the injector advances that site's
 * occurrence counter and RNG stream and reports injections through
 * the onInject callback (the owning Machine bumps the
 * `fault.injected.<site>` PMU counters there).
 */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    /**
     * Consult the plan for the next occurrence of @p site. Every call
     * counts as one occurrence, whether or not anything fires.
     */
    FaultDecision decide(FaultSite site);

    /** decide().fire shorthand for drop-style sites. */
    bool fires(FaultSite site) { return decide(site).fire; }

    /** decide().delay shorthand for delay-style sites (0 = no fault). */
    Ticks delay(FaultSite site) { return decide(site).delay; }

    /** Total injections at @p site so far. */
    std::uint64_t injectedCount(FaultSite site) const;

    /** Occurrences (consultations) of @p site so far. */
    std::uint64_t occurrenceCount(FaultSite site) const;

    const FaultPlan &plan() const { return plan_; }

    /** Invoked on every injection, before decide() returns. */
    void setOnInject(std::function<void(FaultSite)> fn)
    {
        onInject_ = std::move(fn);
    }

  private:
    struct SiteState
    {
        std::uint64_t occurrences = 0;
        std::uint64_t injected = 0;
        Rng rng{0};
    };

    FaultPlan plan_;
    std::array<SiteState, numFaultSites> sites_;
    std::function<void(FaultSite)> onInject_;
};

} // namespace svtsim

#endif // SVTSIM_SIM_FAULT_H
