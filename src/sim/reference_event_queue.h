/**
 * @file
 * ReferenceEventQueue: the pre-timing-wheel event queue, kept as an
 * executable specification.
 *
 * This is the binary-heap + unordered_map implementation that
 * sim/event_queue shipped with through PR 5. It is retained for two
 * purposes only:
 *
 *  - the differential test (tests/event_wheel_test.cc) replays long
 *    randomized schedule/cancel/advance sequences against both
 *    implementations and asserts identical fire order, now()
 *    trajectory and executedCount();
 *
 *  - bench/sim_speed measures the timing wheel's events/sec against
 *    this queue on the same workloads, so the committed
 *    BENCH_SPEED.json speedup is reproducible on any machine.
 *
 * Do not use it in the simulator proper. It heap-allocates a record
 * per event and leaks cancelled heap entries until they surface —
 * exactly the costs the timing wheel removes.
 *
 * One deliberate delta from the PR 5 code: scheduleIn()/advanceBy()
 * mirror the wheel's maxTick saturation (the PR 6 overflow bugfix), so
 * differential runs agree at the overflow boundary too.
 */

#ifndef SVTSIM_SIM_REFERENCE_EVENT_QUEUE_H
#define SVTSIM_SIM_REFERENCE_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/log.h"
#include "sim/ticks.h"

namespace svtsim {

/** Handle type mirroring EventQueue's EventId (both start at 1). */
using ReferenceEventId = std::uint64_t;

class ReferenceEventQueue
{
  public:
    ReferenceEventQueue() = default;

    ReferenceEventQueue(const ReferenceEventQueue &) = delete;
    ReferenceEventQueue &operator=(const ReferenceEventQueue &) = delete;

    Ticks now() const { return now_; }

    ReferenceEventId
    schedule(Ticks when, std::function<void()> fn)
    {
        if (when < now_) {
            panic("ReferenceEventQueue::schedule in the past "
                  "(when=%lld now=%lld)",
                  static_cast<long long>(when),
                  static_cast<long long>(now_));
        }
        ReferenceEventId id = nextId_++;
        heap_.push(HeapEntry{when, nextSeq_++, id});
        records_.emplace(id, std::move(fn));
        return id;
    }

    ReferenceEventId
    scheduleIn(Ticks delta, std::function<void()> fn)
    {
        Ticks when =
            delta >= maxTick - now_ ? maxTick : now_ + delta;
        return schedule(when, std::move(fn));
    }

    bool deschedule(ReferenceEventId id)
    {
        return records_.erase(id) != 0;
    }

    bool empty() const { return records_.empty(); }
    std::size_t size() const { return records_.size(); }

    Ticks
    nextEventTime() const
    {
        popCancelled();
        if (heap_.empty())
            return maxTick;
        return heap_.top().when;
    }

    void
    advanceTo(Ticks when)
    {
        if (when < now_) {
            panic("ReferenceEventQueue::advanceTo into the past "
                  "(when=%lld now=%lld)",
                  static_cast<long long>(when),
                  static_cast<long long>(now_));
        }
        for (;;) {
            popCancelled();
            if (heap_.empty() || heap_.top().when > when)
                break;
            std::function<void()> fn = takeTop();
            fn();
        }
        now_ = when;
    }

    void
    advanceBy(Ticks delta)
    {
        simAssert(delta >= 0,
                  "ReferenceEventQueue::advanceBy negative delta");
        advanceTo(delta >= maxTick - now_ ? maxTick : now_ + delta);
    }

    bool
    runNext()
    {
        popCancelled();
        if (heap_.empty())
            return false;
        std::function<void()> fn = takeTop();
        fn();
        return true;
    }

    bool
    runUntil(const std::function<bool()> &pred)
    {
        if (pred())
            return true;
        while (runNext()) {
            if (pred())
                return true;
        }
        return false;
    }

    std::uint64_t executedCount() const { return executed_; }

    bool
    pending(ReferenceEventId id) const
    {
        return records_.find(id) != records_.end();
    }

  private:
    struct HeapEntry
    {
        Ticks when;
        std::uint64_t seq;
        ReferenceEventId id;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    void
    popCancelled() const
    {
        while (!heap_.empty() && !records_.count(heap_.top().id))
            heap_.pop();
    }

    std::function<void()>
    takeTop()
    {
        auto it = records_.find(heap_.top().id);
        simAssert(it != records_.end(),
                  "ReferenceEventQueue: live heap entry without record");
        std::function<void()> fn = std::move(it->second);
        records_.erase(it);
        now_ = heap_.top().when;
        heap_.pop();
        ++executed_;
        return fn;
    }

    mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                std::greater<>>
        heap_;
    std::unordered_map<ReferenceEventId, std::function<void()>> records_;
    Ticks now_ = 0;
    std::uint64_t nextSeq_ = 0;
    ReferenceEventId nextId_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_SIM_REFERENCE_EVENT_QUEUE_H
