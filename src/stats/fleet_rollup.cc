#include "stats/fleet_rollup.h"

namespace svtsim {

double
exitOverheadFraction(const MetricsSnapshot &snap, Ticks elapsed)
{
    if (elapsed <= 0)
        return 0.0;
    Ticks exitTicks = 0;
    for (const auto &[name, ticks] : snap.scopes)
        if (name.rfind("exit.", 0) == 0)
            exitTicks += ticks;
    return static_cast<double>(exitTicks) /
           static_cast<double>(elapsed);
}

void
finalizeFleetOutcome(FleetOutcome &out)
{
    out.qpsUnderSla = 0;
    out.offeredQps = 0;
    out.tenantsMet = 0;
    out.meanInterference = 0;
    for (const TenantOutcome &t : out.tenants) {
        if (t.sloMet) {
            ++out.tenantsMet;
            out.qpsUnderSla += t.achievedQps;
        }
        out.offeredQps += t.offeredQps;
        out.meanInterference += t.interference;
    }
    const double n = static_cast<double>(out.tenants.size());
    out.slaFraction = out.tenants.empty() ? 0.0 : out.tenantsMet / n;
    out.meanInterference =
        out.tenants.empty() ? 0.0 : out.meanInterference / n;
}

} // namespace svtsim
