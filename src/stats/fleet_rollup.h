/**
 * @file
 * Fleet-level result aggregation.
 *
 * The fleet scheduler (system/fleet) runs one machine per placement
 * slot; what the operator cares about is per-*tenant* and per-*fleet*
 * numbers: did each tenant meet its SLO, how much throughput does the
 * fleet sustain within SLA, and how much of each tenant's time went
 * to virtualization overhead (the interference the placement policy
 * is supposed to control). This module holds the value types and the
 * arithmetic; it knows nothing about machines or placement, so the
 * rollup is trivially a pure function of its inputs and stays
 * byte-identical across worker counts.
 */

#ifndef SVTSIM_STATS_FLEET_ROLLUP_H
#define SVTSIM_STATS_FLEET_ROLLUP_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ticks.h"
#include "stats/metrics.h"

namespace svtsim {

/** One tenant's rolled-up result across all of its placement slots. */
struct TenantOutcome
{
    std::string name;
    /** Workload class label ("memcached" | "tpcc" | "video"). */
    std::string workload;
    int vcpus = 0;

    /** Primary SLO metric: met iff sloValue <= sloTarget. */
    double sloValue = 0;
    double sloTarget = 0;
    bool sloMet = false;

    // Workload-specific detail (zero when not applicable).
    double offeredQps = 0;
    double achievedQps = 0;
    double meanUsec = 0;
    double p99Usec = 0;
    double tpm = 0;
    double meanTxnMsec = 0;
    int frames = 0;
    int droppedFrames = 0;
    double dropFraction = 0;
    std::uint64_t completed = 0;

    /**
     * Interference: the fraction of the tenant's machine time spent
     * in virtualization-exit handling (sum of the `exit.*` PMU
     * attribution scopes over elapsed time), averaged across the
     * tenant's slots. The knob the placement policy turns.
     */
    double interference = 0;
};

/** Whole-fleet rollup. */
struct FleetOutcome
{
    std::vector<TenantOutcome> tenants;

    /** p99 over the union of all request-serving tenants' latency
     *  samples (0 with no request tenants); set by the caller who
     *  owns the sample sets. */
    double fleetP99Usec = 0;

    // Computed by finalizeFleetOutcome:
    /** Sum of achieved qps over request tenants that met their p99
     *  SLO — the paper's "throughput within SLA" at fleet scale. */
    double qpsUnderSla = 0;
    /** Sum of offered qps over request tenants. */
    double offeredQps = 0;
    int tenantsMet = 0;
    /** tenantsMet / tenants.size() (0 with no tenants). */
    double slaFraction = 0;
    /** Mean interference across tenants. */
    double meanInterference = 0;
};

/**
 * Fraction of @p elapsed machine time accrued to `exit.*` attribution
 * scopes in @p snap — the virtualization-overhead share of one slot.
 * Returns 0 when @p elapsed is 0.
 */
double exitOverheadFraction(const MetricsSnapshot &snap, Ticks elapsed);

/**
 * Fill the aggregate fields of @p out from its per-tenant entries
 * (sloMet flags and per-tenant numbers must already be set).
 */
void finalizeFleetOutcome(FleetOutcome &out);

} // namespace svtsim

#endif // SVTSIM_STATS_FLEET_ROLLUP_H
