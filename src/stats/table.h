/**
 * @file
 * ASCII table rendering for benchmark output, so each bench binary can
 * print rows in the same shape the paper reports.
 */

#ifndef SVTSIM_STATS_TABLE_H
#define SVTSIM_STATS_TABLE_H

#include <string>
#include <vector>

namespace svtsim {

/** Column-aligned ASCII table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with a fixed precision. */
    static std::string num(double v, int precision = 2);

    /** Render with column padding and a separator under the header. */
    std::string render() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace svtsim

#endif // SVTSIM_STATS_TABLE_H
