/**
 * @file
 * Simulated PMU: a typed per-context metrics registry.
 *
 * The trace layer (sim/trace.h) answers "where did every nanosecond
 * go, in order"; the metrics registry answers the PMU-style question
 * the paper's Table 1 and Section 6 ablations are built on: "how many
 * events of each kind happened, and what did each cost". It replaces
 * the ad-hoc string-keyed counter map that Machine used to carry.
 *
 * Components register their metrics once, at construction time, and
 * receive small interned handles (registry pointer + slot index), so
 * the hot path — a VMX exit, an SVt switch, a ring post — is a plain
 * vector-indexed add with no string hashing. Three kinds exist:
 *
 *  - Counter: monotonically increasing event count;
 *  - Gauge: instantaneous level (ring depth, queue occupancy) with a
 *    high-water mark;
 *  - LatencyHistogram: count/sum/min/max plus log2-spaced bins over
 *    tick values, cheap enough to sit on the exit dispatch path and
 *    deterministic enough to export byte-identically.
 *
 * Every metric carries a hardware-context scope (L0 / L1 / L2 /
 * SVt-thread / whole machine) and a component label; both are export
 * attributes, while the name alone is the identity. Registration is
 * idempotent: registering the same name again returns the same slot
 * (and panics on a kind mismatch), which lets several instances of a
 * component (two VMX engines, many lapics) share one aggregate metric
 * exactly like the old shared string keys did.
 *
 * A MetricsSnapshot is a value-type copy of the registry contents
 * (plus the Machine's stage-scope totals), sorted by name, with a
 * stable JSON serialization and a human-readable Table 1-style
 * breakdown report. Snapshots taken from isolated per-scenario
 * machines are pure functions of (config, seed), so the sweep
 * engine's `--metrics` export is byte-identical for any worker count.
 */

#ifndef SVTSIM_STATS_METRICS_H
#define SVTSIM_STATS_METRICS_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/ticks.h"

namespace svtsim {

/** Hardware context a metric is attributed to (Table 2's worldview:
 *  the hypervisor context, the SVt-thread, the guest contexts). */
enum class MetricScope : std::uint8_t
{
    Machine, ///< Whole-machine / not context-specific.
    L0,      ///< Host hypervisor context.
    L1,      ///< Guest hypervisor (SVt-thread in SW SVt).
    L2,      ///< Nested guest context.
    Svt,     ///< The SVt unit / command channel itself.
};

const char *metricScopeName(MetricScope scope);

enum class MetricKind : std::uint8_t
{
    Counter,
    Gauge,
    Histogram,
};

const char *metricKindName(MetricKind kind);

/**
 * Log2-binned latency distribution over non-negative tick values.
 *
 * Exact count/sum/min/max; quantiles are deterministic upper-bound
 * estimates from the bins, clamped to [min, max] (bin b holds values
 * whose bit width is b, i.e. [2^(b-1), 2^b - 1], bin 0 holds zeros).
 */
struct HistogramData
{
    static constexpr int numBins = 64;

    std::uint64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::array<std::uint64_t, numBins> bins{};

    void record(std::int64_t value);

    double mean() const;

    /** Deterministic bin-estimate of quantile @p q in [0, 1]. */
    double quantile(double q) const;
};

class MetricsRegistry;

/** Interned counter handle: O(1) increment, no string hashing. A
 *  default-constructed handle is inert (increments are dropped). */
class Counter
{
  public:
    Counter() = default;

    inline void inc(std::uint64_t n = 1);
    inline std::uint64_t value() const;

    bool valid() const { return reg_ != nullptr; }

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *reg, std::uint32_t slot)
        : reg_(reg), slot_(slot)
    {
    }

    MetricsRegistry *reg_ = nullptr;
    std::uint32_t slot_ = 0;
};

/** Interned gauge handle: tracks a level and its high-water mark. */
class Gauge
{
  public:
    Gauge() = default;

    inline void set(std::int64_t v);
    inline std::int64_t value() const;
    inline std::int64_t maxValue() const;

    bool valid() const { return reg_ != nullptr; }

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry *reg, std::uint32_t slot)
        : reg_(reg), slot_(slot)
    {
    }

    MetricsRegistry *reg_ = nullptr;
    std::uint32_t slot_ = 0;
};

/** Interned histogram handle; record() is a few shifts and adds. */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;

    inline void record(std::int64_t value);
    inline const HistogramData &data() const;

    bool valid() const { return reg_ != nullptr; }

  private:
    friend class MetricsRegistry;
    LatencyHistogram(MetricsRegistry *reg, std::uint32_t slot)
        : reg_(reg), slot_(slot)
    {
    }

    MetricsRegistry *reg_ = nullptr;
    std::uint32_t slot_ = 0;
};

/** Value-type copy of one metric, for snapshots. */
struct MetricSample
{
    std::string name;
    std::string component;
    MetricScope scope = MetricScope::Machine;
    MetricKind kind = MetricKind::Counter;

    /** Counter value / gauge level. */
    std::int64_t value = 0;
    /** Gauge high-water mark. */
    std::int64_t maxValue = 0;
    /** Histogram contents (kind == Histogram only). */
    HistogramData hist;
};

/**
 * Point-in-time copy of a registry plus the owning Machine's
 * stage-scope totals. Samples are sorted by name and the exporters
 * emit them in that order, so serialization is stable across runs
 * and across sweep worker counts.
 */
struct MetricsSnapshot
{
    std::vector<MetricSample> samples;
    /** Machine attribution buckets (stage.* / exit.*), name-sorted. */
    std::vector<std::pair<std::string, Ticks>> scopes;

    /** Sample by name, or nullptr. */
    const MetricSample *find(const std::string &name) const;

    /** Ticks accrued to an attribution scope (0 when absent). */
    Ticks scopeTicks(const std::string &name) const;

    /**
     * Stable JSON object: {"metrics": [...], "stages": [...]}. Every
     * line is prefixed with @p indent so callers can nest the object
     * inside their own documents.
     */
    void writeJson(std::ostream &os, const std::string &indent) const;

    /** Human-readable Table 1-style report: the stage breakdown plus
     *  per-exit-reason count/latency tables for levels 2 and 1. */
    void writeBreakdown(std::ostream &os) const;
};

/**
 * The registry: owns metric storage, hands out interned handles.
 *
 * Not thread-safe by design — one registry belongs to one Machine,
 * and the sweep engine gives every scenario its own machine.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register (or re-open) a metric. Idempotent on @p name: a second
     * registration returns a handle to the same slot and keeps the
     * first registration's scope/component; a kind mismatch panics.
     */
    Counter counter(MetricScope scope, std::string component,
                    std::string name);
    Gauge gauge(MetricScope scope, std::string component,
                std::string name);
    LatencyHistogram histogram(MetricScope scope, std::string component,
                               std::string name);

    bool has(const std::string &name) const;
    std::size_t size() const { return slots_.size(); }

    // -- Name-based compat surface (cold path) -------------------------
    /** Add to a registered counter by name; fatal on unknown names or
     *  non-counter kinds (the Machine::count() compat shim). */
    void addByName(const std::string &name, std::uint64_t n);

    /** Value of a registered counter; fatal on unknown names. */
    std::uint64_t counterValue(const std::string &name) const;

    /** All counters as a name -> value map (legacy Machine::counters()
     *  surface; includes registered-but-untouched zeros). */
    std::map<std::string, std::uint64_t> counterValues() const;

    /** Zero every value (counters, gauges, histogram contents) while
     *  keeping all registrations and handles alive. */
    void reset();

    /** Copy out every metric, sorted by name. */
    MetricsSnapshot snapshot() const;

  private:
    friend class Counter;
    friend class Gauge;
    friend class LatencyHistogram;

    struct Slot
    {
        MetricScope scope;
        MetricKind kind;
        std::string component;
        std::string name;
        std::uint64_t value = 0;  ///< Counter.
        std::int64_t gauge = 0;   ///< Gauge level.
        std::int64_t gaugeMax = 0;
        HistogramData hist;
    };

    std::uint32_t intern(MetricScope scope, std::string component,
                         std::string name, MetricKind kind);

    std::vector<Slot> slots_;
    std::map<std::string, std::uint32_t> index_;
};

// ---------------------------------------------------- inline hot path

inline void
Counter::inc(std::uint64_t n)
{
    if (reg_)
        reg_->slots_[slot_].value += n;
}

inline std::uint64_t
Counter::value() const
{
    return reg_ ? reg_->slots_[slot_].value : 0;
}

inline void
Gauge::set(std::int64_t v)
{
    if (!reg_)
        return;
    auto &s = reg_->slots_[slot_];
    s.gauge = v;
    if (v > s.gaugeMax)
        s.gaugeMax = v;
}

inline std::int64_t
Gauge::value() const
{
    return reg_ ? reg_->slots_[slot_].gauge : 0;
}

inline std::int64_t
Gauge::maxValue() const
{
    return reg_ ? reg_->slots_[slot_].gaugeMax : 0;
}

inline void
LatencyHistogram::record(std::int64_t value)
{
    if (reg_)
        reg_->slots_[slot_].hist.record(value);
}

inline const HistogramData &
LatencyHistogram::data() const
{
    static const HistogramData empty{};
    return reg_ ? reg_->slots_[slot_].hist : empty;
}

} // namespace svtsim

#endif // SVTSIM_STATS_METRICS_H
