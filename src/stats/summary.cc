#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace svtsim {

void
Summary::add(double x)
{
    ++n_;
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    double delta = other.mean_ - mean_;
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Summary::reset()
{
    *this = Summary();
}

double
Summary::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::sem() const
{
    if (n_ == 0)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n_));
}

void
Percentiles::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
Percentiles::merge(const Percentiles &other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

void
Percentiles::reset()
{
    samples_.clear();
    sorted_ = true;
}

void
Percentiles::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Percentiles::quantile(double q) const
{
    simAssert(!samples_.empty(), "Percentiles::quantile on empty set");
    simAssert(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    double pos = q * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
Percentiles::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

} // namespace svtsim
