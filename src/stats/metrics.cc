#include "stats/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>

#include "sim/log.h"
#include "stats/table.h"

namespace svtsim {

namespace {

/** Minimal JSON string escaping (metric names are ASCII). */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

/** Shortest round-trippable double; deterministic because the
 *  underlying integer data is. */
std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

const char *
metricScopeName(MetricScope scope)
{
    switch (scope) {
      case MetricScope::Machine: return "machine";
      case MetricScope::L0: return "l0";
      case MetricScope::L1: return "l1";
      case MetricScope::L2: return "l2";
      case MetricScope::Svt: return "svt";
    }
    return "?";
}

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

// ------------------------------------------------------- HistogramData

void
HistogramData::record(std::int64_t value)
{
    if (value < 0)
        panic("HistogramData::record of negative value");
    if (count == 0) {
        min = max = value;
    } else {
        min = std::min(min, value);
        max = std::max(max, value);
    }
    ++count;
    sum += value;
    int bin = 0;
    for (auto u = static_cast<std::uint64_t>(value); u != 0; u >>= 1)
        ++bin;
    bins[static_cast<std::size_t>(std::min(bin, numBins - 1))] += 1;
}

double
HistogramData::mean() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(count);
}

double
HistogramData::quantile(double q) const
{
    simAssert(q >= 0.0 && q <= 1.0, "histogram quantile out of [0,1]");
    if (count == 0)
        return 0.0;
    if (count == 1)
        return static_cast<double>(min);
    // Rank of the requested quantile (nearest-rank, 1-based), then
    // walk the bins until the cumulative count covers it and report
    // the bin's upper bound clamped into the observed [min, max].
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count - 1)) + 1;
    std::uint64_t cum = 0;
    for (int b = 0; b < numBins; ++b) {
        cum += bins[static_cast<std::size_t>(b)];
        if (cum >= rank) {
            double upper =
                b == 0 ? 0.0
                       : static_cast<double>((std::uint64_t{1} << b) - 1);
            return std::min(std::max(upper, static_cast<double>(min)),
                            static_cast<double>(max));
        }
    }
    return static_cast<double>(max);
}

// ----------------------------------------------------- MetricsRegistry

std::uint32_t
MetricsRegistry::intern(MetricScope scope, std::string component,
                        std::string name, MetricKind kind)
{
    if (name.empty())
        fatal("MetricsRegistry: empty metric name");
    auto it = index_.find(name);
    if (it != index_.end()) {
        const Slot &slot = slots_[it->second];
        if (slot.kind != kind) {
            panic("MetricsRegistry: metric '%s' re-registered as %s "
                  "(was %s)",
                  name.c_str(), metricKindName(kind),
                  metricKindName(slot.kind));
        }
        return it->second;
    }
    if (slots_.size() >=
        static_cast<std::size_t>(
            std::numeric_limits<std::uint32_t>::max())) {
        fatal("MetricsRegistry: too many metrics");
    }
    auto idx = static_cast<std::uint32_t>(slots_.size());
    Slot slot;
    slot.scope = scope;
    slot.kind = kind;
    slot.component = std::move(component);
    slot.name = name;
    slots_.push_back(std::move(slot));
    index_.emplace(std::move(name), idx);
    return idx;
}

Counter
MetricsRegistry::counter(MetricScope scope, std::string component,
                         std::string name)
{
    return Counter(this, intern(scope, std::move(component),
                                std::move(name), MetricKind::Counter));
}

Gauge
MetricsRegistry::gauge(MetricScope scope, std::string component,
                       std::string name)
{
    return Gauge(this, intern(scope, std::move(component),
                              std::move(name), MetricKind::Gauge));
}

LatencyHistogram
MetricsRegistry::histogram(MetricScope scope, std::string component,
                           std::string name)
{
    return LatencyHistogram(
        this, intern(scope, std::move(component), std::move(name),
                     MetricKind::Histogram));
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

void
MetricsRegistry::addByName(const std::string &name, std::uint64_t n)
{
    auto it = index_.find(name);
    if (it == index_.end())
        fatal("MetricsRegistry: count of unregistered metric '%s'",
              name.c_str());
    Slot &slot = slots_[it->second];
    if (slot.kind != MetricKind::Counter)
        fatal("MetricsRegistry: count of non-counter metric '%s' (%s)",
              name.c_str(), metricKindName(slot.kind));
    slot.value += n;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        fatal("MetricsRegistry: lookup of unregistered metric '%s'",
              name.c_str());
    const Slot &slot = slots_[it->second];
    if (slot.kind != MetricKind::Counter)
        fatal("MetricsRegistry: counter lookup of %s metric '%s'",
              metricKindName(slot.kind), name.c_str());
    return slot.value;
}

std::map<std::string, std::uint64_t>
MetricsRegistry::counterValues() const
{
    std::map<std::string, std::uint64_t> out;
    for (const Slot &slot : slots_) {
        if (slot.kind == MetricKind::Counter)
            out.emplace(slot.name, slot.value);
    }
    return out;
}

void
MetricsRegistry::reset()
{
    for (Slot &slot : slots_) {
        slot.value = 0;
        slot.gauge = 0;
        slot.gaugeMax = 0;
        slot.hist = HistogramData{};
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.samples.reserve(slots_.size());
    // index_ is name-ordered, giving the stable export order.
    for (const auto &[name, idx] : index_) {
        const Slot &slot = slots_[idx];
        MetricSample s;
        s.name = name;
        s.component = slot.component;
        s.scope = slot.scope;
        s.kind = slot.kind;
        switch (slot.kind) {
          case MetricKind::Counter:
            s.value = static_cast<std::int64_t>(slot.value);
            break;
          case MetricKind::Gauge:
            s.value = slot.gauge;
            s.maxValue = slot.gaugeMax;
            break;
          case MetricKind::Histogram:
            s.hist = slot.hist;
            break;
        }
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

// ----------------------------------------------------- MetricsSnapshot

const MetricSample *
MetricsSnapshot::find(const std::string &name) const
{
    auto it = std::lower_bound(
        samples.begin(), samples.end(), name,
        [](const MetricSample &s, const std::string &n) {
            return s.name < n;
        });
    if (it == samples.end() || it->name != name)
        return nullptr;
    return &*it;
}

Ticks
MetricsSnapshot::scopeTicks(const std::string &name) const
{
    for (const auto &[scope, ticks] : scopes) {
        if (scope == name)
            return ticks;
    }
    return 0;
}

void
MetricsSnapshot::writeJson(std::ostream &os,
                           const std::string &indent) const
{
    const std::string in1 = indent + "  ";
    const std::string in2 = indent + "    ";
    os << "{\n" << in1 << "\"metrics\": [";
    bool first = true;
    for (const MetricSample &s : samples) {
        os << (first ? "\n" : ",\n") << in2 << "{\"name\": ";
        first = false;
        jsonString(os, s.name);
        os << ", \"scope\": \"" << metricScopeName(s.scope)
           << "\", \"component\": ";
        jsonString(os, s.component);
        os << ", \"kind\": \"" << metricKindName(s.kind) << "\"";
        switch (s.kind) {
          case MetricKind::Counter:
            os << ", \"value\": " << s.value;
            break;
          case MetricKind::Gauge:
            os << ", \"value\": " << s.value
               << ", \"max\": " << s.maxValue;
            break;
          case MetricKind::Histogram:
            os << ", \"count\": " << s.hist.count
               << ", \"sum\": " << s.hist.sum
               << ", \"min\": " << s.hist.min
               << ", \"max\": " << s.hist.max
               << ", \"mean\": " << jsonNumber(s.hist.mean())
               << ", \"p50\": " << jsonNumber(s.hist.quantile(0.50))
               << ", \"p99\": " << jsonNumber(s.hist.quantile(0.99));
            break;
        }
        os << "}";
    }
    os << (first ? "]" : "\n" + in1 + "]");
    os << ",\n" << in1 << "\"stages\": [";
    first = true;
    for (const auto &[name, ticks] : scopes) {
        os << (first ? "\n" : ",\n") << in2 << "{\"name\": ";
        first = false;
        jsonString(os, name);
        os << ", \"ticks\": " << ticks << "}";
    }
    os << (first ? "]" : "\n" + in1 + "]");
    os << "\n" << indent << "}";
}

namespace {

/** One exit-reason table: rows for every `<prefix><reason>` histogram
 *  with samples, alongside its `<count_prefix><reason>` counter. */
void
writeExitTable(std::ostream &os, const MetricsSnapshot &snap,
               const char *title, const std::string &count_prefix,
               const std::string &latency_prefix)
{
    Table table({"Reason", "Count", "Total (us)", "Mean (us)",
                 "p50 (us)", "p99 (us)"});
    int rows = 0;
    for (const MetricSample &s : snap.samples) {
        if (s.kind != MetricKind::Histogram ||
            s.name.rfind(latency_prefix, 0) != 0) {
            continue;
        }
        if (s.hist.count == 0)
            continue;
        std::string reason = s.name.substr(latency_prefix.size());
        const MetricSample *c = snap.find(count_prefix + reason);
        std::uint64_t n = c ? static_cast<std::uint64_t>(c->value)
                            : s.hist.count;
        table.addRow({reason, std::to_string(n),
                      Table::num(toUsec(s.hist.sum), 2),
                      Table::num(toUsec(static_cast<Ticks>(
                                     s.hist.mean())), 2),
                      Table::num(toUsec(static_cast<Ticks>(
                                     s.hist.quantile(0.50))), 2),
                      Table::num(toUsec(static_cast<Ticks>(
                                     s.hist.quantile(0.99))), 2)});
        ++rows;
    }
    if (rows == 0)
        return;
    os << title << "\n" << table.render() << "\n";
}

} // namespace

void
MetricsSnapshot::writeBreakdown(std::ostream &os) const
{
    // Stage breakdown (the Table 1 shape): every stage.* attribution
    // bucket, with its share of the stage total.
    Ticks stage_total = 0;
    for (const auto &[name, ticks] : scopes) {
        if (name.rfind("stage.", 0) == 0)
            stage_total += ticks;
    }
    if (stage_total > 0) {
        Table table({"Stage", "Time (us)", "Perc. (%)"});
        for (const auto &[name, ticks] : scopes) {
            if (name.rfind("stage.", 0) != 0)
                continue;
            table.addRow({name, Table::num(toUsec(ticks), 2),
                          Table::num(100.0 *
                                         static_cast<double>(ticks) /
                                         static_cast<double>(
                                             stage_total),
                                     2)});
        }
        table.addRow({"total", Table::num(toUsec(stage_total), 2),
                      Table::num(100.0, 2)});
        os << "Stage breakdown\n" << table.render() << "\n";
    }

    writeExitTable(os, *this, "L2 exits (nested trap rounds)",
                   "l2.exit.", "l2.exit_latency.");
    writeExitTable(os, *this, "L1 exits (single-level trap rounds)",
                   "l0.exit.", "l0.exit_latency.");
}

} // namespace svtsim
