/**
 * @file
 * Fixed-bin histogram for distribution inspection in benches/tests.
 */

#ifndef SVTSIM_STATS_HISTOGRAM_H
#define SVTSIM_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace svtsim {

/** Linear-binned histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the binned range.
     * @param hi Upper bound of the binned range.
     * @param bins Number of equal-width bins. @pre bins > 0, hi > lo.
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void reset();

    std::uint64_t count() const { return total_; }
    std::uint64_t underflow() const { return under_; }
    std::uint64_t overflow() const { return over_; }

    /** Count in bin @p i. @pre i < bins(). */
    std::uint64_t binCount(std::size_t i) const;

    /** Lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    std::size_t bins() const { return counts_.size(); }

    /** Render a compact ASCII view (one line per non-empty bin). */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    double binWidth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t under_ = 0;
    std::uint64_t over_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_STATS_HISTOGRAM_H
