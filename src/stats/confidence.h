/**
 * @file
 * The paper's measurement methodology (§6): repeat an experiment until
 * the standard deviation is below 1% of the mean with 2-sigma
 * confidence, after rejecting outliers with 4-sigma confidence.
 */

#ifndef SVTSIM_STATS_CONFIDENCE_H
#define SVTSIM_STATS_CONFIDENCE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/summary.h"

namespace svtsim {

/** Result of a ConfidenceRunner execution. */
struct ConfidenceResult
{
    /** Mean of the accepted samples. */
    double mean = 0.0;
    /** Standard deviation of the accepted samples. */
    double stddev = 0.0;
    /** Samples kept after outlier rejection. */
    std::uint64_t accepted = 0;
    /** Samples rejected as 4-sigma outliers. */
    std::uint64_t rejected = 0;
    /** Whether the 2-sigma / 1% criterion was met before maxSamples. */
    bool converged = false;
};

/**
 * Drives a sampled experiment to statistical convergence.
 *
 * Mirrors the paper: "repeated until standard deviation and timing
 * overheads are below 1% of the mean with 2σ confidence, after removing
 * outliers with 4σ confidence".
 */
class ConfidenceRunner
{
  public:
    /** Relative half-width target: 2*sem <= tolerance*mean. */
    double tolerance = 0.01;
    /** Reject samples more than this many sigmas from the mean. */
    double outlierSigmas = 4.0;
    /** Always take at least this many samples. */
    std::uint64_t minSamples = 30;
    /** Give up (converged=false) after this many samples. */
    std::uint64_t maxSamples = 200000;

    /**
     * Repeatedly invoke @p sample (returning one measurement) until
     * convergence or maxSamples.
     */
    ConfidenceResult run(const std::function<double()> &sample) const;

    /**
     * Apply outlier rejection + convergence test to a fixed sample set
     * (for offline series).
     */
    ConfidenceResult evaluate(const std::vector<double> &samples) const;
};

} // namespace svtsim

#endif // SVTSIM_STATS_CONFIDENCE_H
