#include "stats/table.h"

#include <algorithm>
#include <cstdio>

#include "sim/log.h"

namespace svtsim {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        fatal("Table row arity %zu != header arity %zu", row.size(),
              header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row,
                    std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.append(width[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit(header_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        emit(row, out);
    return out;
}

} // namespace svtsim
