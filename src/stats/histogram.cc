#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>

#include "sim/log.h"

namespace svtsim {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0)
        fatal("Histogram requires at least one bin");
    if (hi <= lo)
        fatal("Histogram requires hi > lo");
    binWidth_ = (hi - lo) / static_cast<double>(bins);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++under_;
        return;
    }
    if (x >= hi_) {
        ++over_;
        return;
    }
    auto i = static_cast<std::size_t>((x - lo_) / binWidth_);
    i = std::min(i, counts_.size() - 1);
    ++counts_[i];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    under_ = over_ = total_ = 0;
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    simAssert(i < counts_.size(), "Histogram bin index out of range");
    return counts_[i];
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i);
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 0;
    for (auto c : counts_)
        peak = std::max(peak, c);
    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (!counts_[i])
            continue;
        std::size_t bar =
            peak ? static_cast<std::size_t>(
                       counts_[i] * width / peak)
                 : 0;
        std::snprintf(line, sizeof(line), "%12.3f | %-8llu ",
                      binLow(i),
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace svtsim
