/**
 * @file
 * Sample accumulators: streaming moments and exact percentiles.
 */

#ifndef SVTSIM_STATS_SUMMARY_H
#define SVTSIM_STATS_SUMMARY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace svtsim {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm,
 * numerically stable for long runs).
 */
class Summary
{
  public:
    void add(double x);

    /** Merge another summary into this one (parallel Welford). */
    void merge(const Summary &other);

    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard error of the mean. */
    double sem() const;

    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile tracker that retains all samples.
 *
 * Workload runs produce at most a few million samples, so exact
 * percentiles are affordable and avoid estimator error in the p99
 * numbers that Figure 8 hinges on.
 */
class Percentiles
{
  public:
    void add(double x);

    /** Merge another sample set into this one (fleet rollups: a
     *  tenant's latency distribution is the union of its per-vCPU
     *  flow distributions). */
    void merge(const Percentiles &other);

    void reset();

    std::size_t count() const { return samples_.size(); }

    /**
     * Value at quantile @p q in [0, 1] (nearest-rank on the sorted
     * sample set). @pre count() > 0.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p99() const { return quantile(0.99); }

    double mean() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

} // namespace svtsim

#endif // SVTSIM_STATS_SUMMARY_H
