#include "stats/confidence.h"

#include <cmath>

#include "sim/log.h"

namespace svtsim {

namespace {

/**
 * One rejection + convergence evaluation pass over @p samples.
 * Returns the accepted-sample statistics.
 */
ConfidenceResult
evaluateOnce(const std::vector<double> &samples, double tolerance,
             double outlier_sigmas)
{
    Summary all;
    for (double s : samples)
        all.add(s);

    // Outlier rejection with k-sigma confidence relative to the raw
    // sample statistics.
    double lo = all.mean() - outlier_sigmas * all.stddev();
    double hi = all.mean() + outlier_sigmas * all.stddev();

    Summary kept;
    std::uint64_t rejected = 0;
    for (double s : samples) {
        if (samples.size() >= 2 && (s < lo || s > hi)) {
            ++rejected;
            continue;
        }
        kept.add(s);
    }

    ConfidenceResult r;
    r.mean = kept.mean();
    r.stddev = kept.stddev();
    r.accepted = kept.count();
    r.rejected = rejected;
    // 2-sigma confidence half-width of the mean under the tolerance.
    double half_width = 2.0 * kept.sem();
    r.converged = kept.count() >= 2 &&
                  half_width <= tolerance * std::abs(kept.mean());
    // A zero-variance series is trivially converged.
    if (kept.count() >= 2 && kept.stddev() == 0.0)
        r.converged = true;
    return r;
}

} // namespace

ConfidenceResult
ConfidenceRunner::run(const std::function<double()> &sample) const
{
    if (minSamples < 2)
        fatal("ConfidenceRunner requires minSamples >= 2");
    std::vector<double> samples;
    samples.reserve(minSamples);
    for (std::uint64_t i = 0; i < minSamples; ++i)
        samples.push_back(sample());

    for (;;) {
        ConfidenceResult r =
            evaluateOnce(samples, tolerance, outlierSigmas);
        if (r.converged || samples.size() >= maxSamples) {
            r.converged = r.converged && samples.size() <= maxSamples;
            return r;
        }
        // Grow the sample set geometrically to bound re-evaluation
        // cost at O(n log n) overall.
        std::uint64_t target = samples.size() + samples.size() / 2 + 1;
        if (target > maxSamples)
            target = maxSamples;
        while (samples.size() < target)
            samples.push_back(sample());
    }
}

ConfidenceResult
ConfidenceRunner::evaluate(const std::vector<double> &samples) const
{
    if (samples.empty())
        fatal("ConfidenceRunner::evaluate on empty sample set");
    return evaluateOnce(samples, tolerance, outlierSigmas);
}

} // namespace svtsim
