/**
 * @file
 * SVt hardware support (paper Sections 3-4, Table 2).
 *
 * The SvtUnit is the per-core block the paper adds to an SMT core:
 *
 *  - three VMCS fields (SVt_visor, SVt_vm, SVt_nested) cached into
 *    per-core micro-architectural registers at VMPTRLD;
 *  - an SVt_current register selecting the context to fetch from;
 *  - the existing is_vm register;
 *  - VM trap / VM resume turned into thread stall/resume events that
 *    retarget instruction fetch (no state movement);
 *  - ctxtld/ctxtst instructions that access another context's
 *    registers through the shared physical register file, with the
 *    target selected *indirectly* through the lvl argument so context
 *    identifiers stay virtualizable.
 */

#ifndef SVTSIM_SVT_SVT_UNIT_H
#define SVTSIM_SVT_SVT_UNIT_H

#include <bitset>
#include <cstdint>

#include "arch/machine.h"
#include "arch/regs.h"
#include "virt/vmcs.h"

namespace svtsim {

/** Non-GPR registers reachable by ctxtld/ctxtst. */
enum class SvtSpecialReg : std::uint8_t
{
    Rip,
    Rflags,
    Cr0,
    Cr3,
    Cr4,
};

/** Per-core micro-architectural registers added by SVt (Table 2). */
struct SvtUregs
{
    /** Target context for instruction fetch (SVt_current). */
    std::uint64_t current = 0;
    /** Cached SVt_visor field of the loaded VMCS. */
    std::uint64_t visor = svtInvalidContext;
    /** Cached SVt_vm field of the loaded VMCS. */
    std::uint64_t vm = svtInvalidContext;
    /** Cached SVt_nested field of the loaded VMCS. */
    std::uint64_t nested = svtInvalidContext;
    /** Whether a VM is executing (pre-existing is_vm register). */
    bool isVm = false;
};

/**
 * The per-core SVt block.
 *
 * The unit must be enabled before use; a disabled unit leaves the core
 * behaving exactly like a baseline SMT core (Section 3.3 coexistence).
 */
class SvtUnit
{
  public:
    SvtUnit(Machine &machine, SmtCore &core);

    bool enabled() const { return enabled_; }

    /**
     * Enable SVt on this core. Per the paper's simple design the whole
     * core switches mode (per-context enabling is listed as a simple
     * extension in Section 4.1).
     */
    void enable();
    void disable();

    const SvtUregs &uregs() const { return uregs_; }
    SmtCore &core() { return core_; }

    // -- VMCS interactions -----------------------------------------------
    /**
     * Cache the SVt_* VMCS fields into the micro-architectural
     * registers (happens during VMPTRLD, Section 4 step B).
     */
    void loadFromVmcs(const Vmcs &vmcs);

    /**
     * VM resume in SVt: stall the current context and retarget fetch
     * to SVt_vm; set is_vm. Replaces the state save/restore of a
     * baseline VM entry (Section 4 step C).
     */
    void vmResume();

    /**
     * VM trap in SVt: stall the current context and retarget fetch to
     * SVt_visor; clear is_vm. All in-flight speculative instructions
     * are squashed before fetching from the new context, which is why
     * SVt does not inherit SMT's cross-domain speculation problems
     * (Section 3.4).
     */
    void vmTrap();

    /**
     * Selective level bypass (Section 3.1 extension): deliver a trap
     * straight to another guest context (the guest hypervisor)
     * without visiting the visor. is_vm stays set — the handler is
     * itself a VM.
     *
     * @pre The current VMCS's SVt fields must already identify
     *      @p handler_ctx as a valid context.
     */
    void directReflect(int handler_ctx);

    // -- Cross-context register access (ctxtld / ctxtst) ------------------
    /** Outcome of a cross-context access. */
    enum class Access
    {
        Ok,
        /** Combination of lvl and is_vm is invalid, or the register
         *  was configured to trap: the hypervisor must emulate
         *  (Section 4: "produces a trap into the hypervisor"). */
        Trap,
    };

    /**
     * Resolve the lvl argument to a physical context index per the
     * Section 4 rules:
     *   is_vm == 0: lvl 1 -> SVt_vm, lvl 2 -> SVt_nested
     *   is_vm == 1: lvl 1 -> SVt_nested
     * @return The context index, or -1 when the combination traps.
     */
    int resolveTarget(int lvl) const;

    Access ctxtld(int lvl, Gpr reg, std::uint64_t &out);
    Access ctxtst(int lvl, Gpr reg, std::uint64_t value);
    Access ctxtld(int lvl, SvtSpecialReg reg, std::uint64_t &out);
    Access ctxtst(int lvl, SvtSpecialReg reg, std::uint64_t value);

    // -- Guest access traps (Section 3.1) ----------------------------------
    /**
     * Configure whether guest-mode cross-context accesses to @p reg
     * trap into the hypervisor (mirrors how existing hardware traps
     * accesses to certain registers).
     */
    void setGuestGprTrap(Gpr reg, bool trap);
    bool guestGprTraps(Gpr reg) const;

    // -- Statistics ------------------------------------------------------------
    std::uint64_t switchCount() const { return switches_; }
    std::uint64_t crossAccessCount() const { return crossAccesses_; }

  private:
    void requireEnabled(const char *op) const;
    HwContext *targetContext(int lvl, bool &traps);

    Machine &machine_;
    SmtCore &core_;
    bool enabled_ = false;
    SvtUregs uregs_;
    std::bitset<numGprs> guestTrapMask_;
    std::uint64_t switches_ = 0;
    std::uint64_t crossAccesses_ = 0;
    /** PMU handles for stall/resume transitions and cross-context
     *  register traffic; shared across all SvtUnits on a machine. */
    Counter switchMetric_;
    Counter vmResumeMetric_;
    Counter vmTrapMetric_;
    Counter directReflectMetric_;
    Counter ctxtldMetric_;
    Counter ctxtstMetric_;
};

} // namespace svtsim

#endif // SVTSIM_SVT_SVT_UNIT_H
