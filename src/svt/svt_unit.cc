#include "svt/svt_unit.h"

#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

SvtUnit::SvtUnit(Machine &machine, SmtCore &core)
    : machine_(machine), core_(core)
{
    MetricsRegistry &reg = machine_.metrics();
    switchMetric_ = reg.counter(MetricScope::Svt, "svt", "svt.switch");
    vmResumeMetric_ =
        reg.counter(MetricScope::Svt, "svt", "svt.vm_resume");
    vmTrapMetric_ = reg.counter(MetricScope::Svt, "svt", "svt.vm_trap");
    directReflectMetric_ =
        reg.counter(MetricScope::Svt, "svt", "svt.direct_reflect");
    ctxtldMetric_ = reg.counter(MetricScope::Svt, "svt", "svt.ctxtld");
    ctxtstMetric_ = reg.counter(MetricScope::Svt, "svt", "svt.ctxtst");
}

void
SvtUnit::enable()
{
    enabled_ = true;
    uregs_ = SvtUregs{};
    uregs_.current = static_cast<std::uint64_t>(core_.activeContext());
    // SVt gives the illusion of a single hardware thread: every
    // context except the active one is stalled from here on.
    for (int i = 0; i < core_.numContexts(); ++i)
        core_.context(i).stalled = (i != core_.activeContext());
}

void
SvtUnit::disable()
{
    enabled_ = false;
    // Undo enable()'s single-thread illusion: with SVt off the core
    // must behave exactly like a baseline SMT core again (Section 3.3
    // coexistence), so every hardware context becomes runnable.
    for (int i = 0; i < core_.numContexts(); ++i)
        core_.context(i).stalled = false;
}

void
SvtUnit::requireEnabled(const char *op) const
{
    if (!enabled_)
        panic("SvtUnit: %s with SVt disabled", op);
}

void
SvtUnit::loadFromVmcs(const Vmcs &vmcs)
{
    requireEnabled("loadFromVmcs");
    machine_.consume(machine_.costs().svtFieldLoad);
    uregs_.visor = vmcs.read(VmcsField::SvtVisor);
    uregs_.vm = vmcs.read(VmcsField::SvtVm);
    uregs_.nested = vmcs.read(VmcsField::SvtNested);
}

void
SvtUnit::vmResume()
{
    requireEnabled("vmResume");
    if (uregs_.vm == svtInvalidContext ||
        uregs_.vm >= static_cast<std::uint64_t>(core_.numContexts())) {
        panic("SvtUnit::vmResume with invalid SVt_vm %llu",
              static_cast<unsigned long long>(uregs_.vm));
    }
    machine_.consume(machine_.costs().svtSwitch);
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Svt,
                         "svt.vm_resume");
    uregs_.current = uregs_.vm;
    uregs_.isVm = true;
    core_.retargetFetch(static_cast<int>(uregs_.current));
    ++switches_;
    switchMetric_.inc();
    vmResumeMetric_.inc();
}

void
SvtUnit::vmTrap()
{
    requireEnabled("vmTrap");
    if (uregs_.visor == svtInvalidContext ||
        uregs_.visor >=
            static_cast<std::uint64_t>(core_.numContexts())) {
        panic("SvtUnit::vmTrap with invalid SVt_visor %llu",
              static_cast<unsigned long long>(uregs_.visor));
    }
    machine_.consume(machine_.costs().svtSwitch);
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Svt,
                         "svt.vm_trap");
    uregs_.current = uregs_.visor;
    uregs_.isVm = false;
    core_.retargetFetch(static_cast<int>(uregs_.current));
    ++switches_;
    switchMetric_.inc();
    vmTrapMetric_.inc();
}

void
SvtUnit::directReflect(int handler_ctx)
{
    requireEnabled("directReflect");
    if (handler_ctx < 0 || handler_ctx >= core_.numContexts()) {
        panic("SvtUnit::directReflect to invalid context %d",
              handler_ctx);
    }
    machine_.consume(machine_.costs().svtSwitch);
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Svt,
                         "svt.direct_reflect");
    uregs_.current = static_cast<std::uint64_t>(handler_ctx);
    uregs_.isVm = true;
    core_.retargetFetch(handler_ctx);
    ++switches_;
    switchMetric_.inc();
    directReflectMetric_.inc();
}

int
SvtUnit::resolveTarget(int lvl) const
{
    std::uint64_t target = svtInvalidContext;
    if (!uregs_.isVm) {
        if (lvl == 1)
            target = uregs_.vm;
        else if (lvl == 2)
            target = uregs_.nested;
    } else {
        if (lvl == 1)
            target = uregs_.nested;
    }
    if (target == svtInvalidContext ||
        target >= static_cast<std::uint64_t>(core_.numContexts())) {
        return -1;
    }
    return static_cast<int>(target);
}

HwContext *
SvtUnit::targetContext(int lvl, bool &traps)
{
    requireEnabled("cross-context access");
    traps = false;
    int target = resolveTarget(lvl);
    if (target < 0) {
        traps = true;
        return nullptr;
    }
    return &core_.context(target);
}

SvtUnit::Access
SvtUnit::ctxtld(int lvl, Gpr reg, std::uint64_t &out)
{
    bool traps;
    HwContext *ctx = targetContext(lvl, traps);
    if (traps || (uregs_.isVm && guestTrapMask_.test(
                                     static_cast<std::size_t>(reg)))) {
        return Access::Trap;
    }
    machine_.consume(machine_.costs().ctxtRegAccess);
    out = ctx->readGpr(reg);
    ++crossAccesses_;
    ctxtldMetric_.inc();
    return Access::Ok;
}

SvtUnit::Access
SvtUnit::ctxtst(int lvl, Gpr reg, std::uint64_t value)
{
    bool traps;
    HwContext *ctx = targetContext(lvl, traps);
    if (traps || (uregs_.isVm && guestTrapMask_.test(
                                     static_cast<std::size_t>(reg)))) {
        return Access::Trap;
    }
    machine_.consume(machine_.costs().ctxtRegAccess);
    ctx->writeGpr(reg, value);
    ++crossAccesses_;
    ctxtstMetric_.inc();
    return Access::Ok;
}

SvtUnit::Access
SvtUnit::ctxtld(int lvl, SvtSpecialReg reg, std::uint64_t &out)
{
    bool traps;
    HwContext *ctx = targetContext(lvl, traps);
    if (traps)
        return Access::Trap;
    machine_.consume(machine_.costs().ctxtRegAccess);
    switch (reg) {
      case SvtSpecialReg::Rip: out = ctx->rip; break;
      case SvtSpecialReg::Rflags: out = ctx->rflags; break;
      case SvtSpecialReg::Cr0: out = ctx->readCr(Ctrl::Cr0); break;
      case SvtSpecialReg::Cr3: out = ctx->readCr(Ctrl::Cr3); break;
      case SvtSpecialReg::Cr4: out = ctx->readCr(Ctrl::Cr4); break;
    }
    ++crossAccesses_;
    ctxtldMetric_.inc();
    return Access::Ok;
}

SvtUnit::Access
SvtUnit::ctxtst(int lvl, SvtSpecialReg reg, std::uint64_t value)
{
    bool traps;
    HwContext *ctx = targetContext(lvl, traps);
    if (traps)
        return Access::Trap;
    machine_.consume(machine_.costs().ctxtRegAccess);
    switch (reg) {
      case SvtSpecialReg::Rip: ctx->rip = value; break;
      case SvtSpecialReg::Rflags: ctx->rflags = value; break;
      case SvtSpecialReg::Cr0: ctx->writeCr(Ctrl::Cr0, value); break;
      case SvtSpecialReg::Cr3: ctx->writeCr(Ctrl::Cr3, value); break;
      case SvtSpecialReg::Cr4: ctx->writeCr(Ctrl::Cr4, value); break;
    }
    ++crossAccesses_;
    ctxtstMetric_.inc();
    return Access::Ok;
}

void
SvtUnit::setGuestGprTrap(Gpr reg, bool trap)
{
    guestTrapMask_.set(static_cast<std::size_t>(reg), trap);
}

bool
SvtUnit::guestGprTraps(Gpr reg) const
{
    return guestTrapMask_.test(static_cast<std::size_t>(reg));
}

} // namespace svtsim
