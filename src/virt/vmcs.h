/**
 * @file
 * VM state descriptor (VMCS in Intel terms), including the three SVt
 * fields the paper adds (Table 2).
 */

#ifndef SVTSIM_VIRT_VMCS_H
#define SVTSIM_VIRT_VMCS_H

#include <array>
#include <cstdint>
#include <string>

#include "virt/exit_reason.h"

namespace svtsim {

/**
 * VMCS fields modeled by the simulator.
 *
 * A practical subset of the Intel layout: guest state, host state,
 * execution/entry/exit controls, read-only exit information, and the
 * three SVt extension fields.
 */
enum class VmcsField : std::uint16_t
{
    // Guest-state area.
    GuestRip,
    GuestRsp,
    GuestRflags,
    GuestCr0,
    GuestCr3,
    GuestCr4,
    GuestEfer,
    GuestInterruptibility,
    GuestActivityState,
    GuestPendingDbg,

    // Host-state area.
    HostRip,
    HostRsp,
    HostCr0,
    HostCr3,
    HostCr4,
    HostEfer,

    // Control fields.
    PinControls,
    ProcControls,
    ProcControls2,
    ExitControls,
    EntryControls,
    ExceptionBitmap,
    IoBitmapA,
    IoBitmapB,
    MsrBitmap,
    EptPointer,
    VmcsLinkPointer,
    TscOffset,
    PreemptionTimerValue,
    EntryIntrInfo,
    EntryIntrErrCode,
    EntryInstrLen,

    // Read-only exit information.
    ExitReasonField,
    ExitQualification,
    GuestPhysAddr,
    GuestLinearAddr,
    ExitIntrInfo,
    ExitIntrErrCode,
    ExitInstrLen,
    ExitInstrInfo,

    // SVt extension fields (paper Table 2).
    SvtVisor,
    SvtVm,
    SvtNested,

    NumFields,
};

/** Number of modeled VMCS fields. */
constexpr std::size_t numVmcsFields =
    static_cast<std::size_t>(VmcsField::NumFields);

/** Broad class of a VMCS field. */
enum class VmcsFieldClass
{
    GuestState,
    HostState,
    Control,
    ExitInfo,
    Svt,
};

/** Classify a field. */
VmcsFieldClass vmcsFieldClass(VmcsField field);

/** Field name for diagnostics. */
const char *vmcsFieldName(VmcsField field);

/**
 * Whether a field holds a (guest-)physical address that a nested
 * hypervisor must translate when transforming vmcs12 to vmcs02
 * (Section 2.1: "a VMCS contains many pointers to physical memory
 * addresses").
 */
bool vmcsFieldIsAddress(VmcsField field);

/**
 * Whether hardware VMCS shadowing can satisfy guest vmread/vmwrite on
 * this field without a trap. Mirrors the paper's observation that the
 * CPU "can only shadow some of the VMCS fields, which do not require
 * complicated handling": address fields, entry-event injection and the
 * SVt context fields always trap.
 */
bool vmcsFieldIsShadowable(VmcsField field);

/** Distinct invalid value for the SVt context fields (Section 4). */
constexpr std::uint64_t svtInvalidContext = ~0ULL;

/**
 * A VM state descriptor.
 *
 * Plain storage plus launch-state tracking; permission and cost
 * semantics live in VmxEngine and the hypervisor layers. The paper's
 * naming convention (vmcsNM = managed by LN, describes LM) is kept in
 * the @ref name field for diagnostics.
 */
class Vmcs
{
  public:
    /** Launch state per the VMX state machine. */
    enum class State { Clear, Launched };

    explicit Vmcs(std::string name);

    const std::string &name() const { return name_; }

    std::uint64_t read(VmcsField field) const;
    void write(VmcsField field, std::uint64_t value);

    State state() const { return state_; }
    void setState(State s) { state_ = s; }

    /**
     * Shadow VMCS linked for trap-less guest vmread/vmwrite (Intel
     * VMCS shadowing). Null when shadowing is disabled.
     */
    Vmcs *shadowLink() const { return shadowLink_; }
    void setShadowLink(Vmcs *shadow) { shadowLink_ = shadow; }

    /** Deposit hardware exit information into the exit-info fields. */
    void recordExit(const ExitInfo &info);

    /** Reconstruct exit information from the exit-info fields. */
    ExitInfo exitInfo() const;

    /** Count of writes (for dirty-tracking tests). */
    std::uint64_t writeCount() const { return writes_; }

  private:
    void check(VmcsField field) const;

    std::string name_;
    std::array<std::uint64_t, numVmcsFields> values_{};
    State state_ = State::Clear;
    Vmcs *shadowLink_ = nullptr;
    std::uint64_t writes_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_VIRT_VMCS_H
