#include "virt/exit_reason.h"

namespace svtsim {

const char *
exitReasonName(ExitReason reason)
{
    switch (reason) {
      case ExitReason::None: return "NONE";
      case ExitReason::ExternalInterrupt: return "EXTERNAL_INTERRUPT";
      case ExitReason::InterruptWindow: return "INTERRUPT_WINDOW";
      case ExitReason::Cpuid: return "CPUID";
      case ExitReason::Hlt: return "HLT";
      case ExitReason::Vmcall: return "VMCALL";
      case ExitReason::Vmclear: return "VMCLEAR";
      case ExitReason::Vmlaunch: return "VMLAUNCH";
      case ExitReason::Vmptrld: return "VMPTRLD";
      case ExitReason::Vmread: return "VMREAD";
      case ExitReason::Vmresume: return "VMRESUME";
      case ExitReason::Vmwrite: return "VMWRITE";
      case ExitReason::Vmxoff: return "VMXOFF";
      case ExitReason::Vmxon: return "VMXON";
      case ExitReason::CrAccess: return "CR_ACCESS";
      case ExitReason::IoInstruction: return "IO_INSTRUCTION";
      case ExitReason::Rdmsr: return "MSR_READ";
      case ExitReason::Wrmsr: return "MSR_WRITE";
      case ExitReason::EptViolation: return "EPT_VIOLATION";
      case ExitReason::EptMisconfig: return "EPT_MISCONFIG";
      case ExitReason::PreemptionTimer: return "PREEMPTION_TIMER";
      case ExitReason::Invept: return "INVEPT";
      case ExitReason::Pause: return "PAUSE";
      case ExitReason::SvtBlocked: return "SVT_BLOCKED";
      case ExitReason::NumReasons: break;
    }
    return "UNKNOWN";
}

} // namespace svtsim
