#include "virt/vmx.h"

#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

VmxEngine::VmxEngine(Machine &machine, SmtCore &core, int ctx)
    : machine_(machine), core_(core), ctx_(ctx)
{
    if (ctx < 0 || ctx >= core.numContexts())
        fatal("VmxEngine context %d out of range", ctx);

    MetricsRegistry &reg = machine_.metrics();
    entryMetric_ = reg.counter(MetricScope::Machine, "vmx", "vmx.entry");
    exitMetric_ = reg.counter(MetricScope::Machine, "vmx", "vmx.exit");
    shadowReadMetric_ =
        reg.counter(MetricScope::Machine, "vmx", "vmx.shadow_read");
    shadowWriteMetric_ =
        reg.counter(MetricScope::Machine, "vmx", "vmx.shadow_write");
    for (std::size_t r = 0; r < exitReasonMetric_.size(); ++r) {
        exitReasonMetric_[r] = reg.counter(
            MetricScope::Machine, "vmx",
            std::string("vmx.exit.") +
                exitReasonName(static_cast<ExitReason>(r)));
    }
}

void
VmxEngine::vmxon()
{
    if (vmxOn_)
        panic("vmxon while already in VMX operation");
    machine_.consume(machine_.costs().vmptrld);
    vmxOn_ = true;
}

void
VmxEngine::vmxoff()
{
    if (!vmxOn_)
        panic("vmxoff outside VMX operation");
    if (inGuest_)
        panic("vmxoff in guest mode");
    vmxOn_ = false;
    current_ = nullptr;
}

void
VmxEngine::vmptrld(Vmcs *vmcs)
{
    if (!vmxOn_)
        panic("vmptrld outside VMX operation");
    if (!vmcs)
        panic("vmptrld of null VMCS");
    machine_.consume(machine_.costs().vmptrld);
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Vmx,
                         "vmx.vmptrld");
    current_ = vmcs;
}

void
VmxEngine::vmclear(Vmcs *vmcs)
{
    if (!vmxOn_)
        panic("vmclear outside VMX operation");
    if (!vmcs)
        panic("vmclear of null VMCS");
    machine_.consume(machine_.costs().vmptrld);
    vmcs->setState(Vmcs::State::Clear);
    if (current_ == vmcs)
        current_ = nullptr;
}

std::uint64_t
VmxEngine::vmread(VmcsField field)
{
    if (!current_)
        panic("vmread with no current VMCS");
    machine_.consume(machine_.costs().vmread);
    return current_->read(field);
}

void
VmxEngine::vmwrite(VmcsField field, std::uint64_t value)
{
    if (!current_)
        panic("vmwrite with no current VMCS");
    if (vmcsFieldClass(field) == VmcsFieldClass::ExitInfo)
        panic("vmwrite to read-only exit-info field %s",
              vmcsFieldName(field));
    machine_.consume(machine_.costs().vmwrite);
    current_->write(field, value);
}

Ticks
VmxEngine::hypervisorStateSwitchCost() const
{
    const CostModel &costs = machine_.costs();
    if (current_->read(VmcsField::EntryControls) &
        entryCtlLoadHypervisorState) {
        return costs.msrSwitch * costs.msrSwitchCount;
    }
    return 0;
}

void
VmxEngine::vmentry(bool launch)
{
    if (!vmxOn_)
        panic("vmentry outside VMX operation");
    if (inGuest_)
        panic("vmentry while already in guest mode");
    if (!current_)
        panic("vmentry with no current VMCS");
    if (launch && current_->state() == Vmcs::State::Launched)
        panic("vmlaunch of an already-launched VMCS");
    if (!launch && current_->state() == Vmcs::State::Clear)
        panic("vmresume of a clear VMCS");

    const CostModel &costs = machine_.costs();
    machine_.consume(costs.vmEntryHw + hypervisorStateSwitchCost());

    // Load the guest's special registers from the VMCS. GPRs are NOT
    // switched by hardware (the hypervisor's thunk handles those).
    HwContext &ctx = context();
    ctx.rip = current_->read(VmcsField::GuestRip);
    ctx.rflags = current_->read(VmcsField::GuestRflags);
    ctx.writeCr(Ctrl::Cr0, current_->read(VmcsField::GuestCr0));
    ctx.writeCr(Ctrl::Cr3, current_->read(VmcsField::GuestCr3));
    ctx.writeCr(Ctrl::Cr4, current_->read(VmcsField::GuestCr4));

    current_->setState(Vmcs::State::Launched);
    inGuest_ = true;
    ++entries_;
    entryMetric_.inc();
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Vmx,
                         "vmx.entry");
}

void
VmxEngine::vmexit(const ExitInfo &info)
{
    if (!inGuest_)
        panic("vmexit outside guest mode");
    if (!current_)
        panic("vmexit with no current VMCS");

    const CostModel &costs = machine_.costs();
    machine_.consume(costs.vmExitHw + hypervisorStateSwitchCost());

    // Save guest special state, record why we exited, load host state.
    HwContext &ctx = context();
    current_->write(VmcsField::GuestRip, ctx.rip);
    current_->write(VmcsField::GuestRflags, ctx.rflags);
    current_->write(VmcsField::GuestCr0, ctx.readCr(Ctrl::Cr0));
    current_->write(VmcsField::GuestCr3, ctx.readCr(Ctrl::Cr3));
    current_->write(VmcsField::GuestCr4, ctx.readCr(Ctrl::Cr4));
    current_->recordExit(info);

    ctx.rip = current_->read(VmcsField::HostRip);
    ctx.writeCr(Ctrl::Cr0, current_->read(VmcsField::HostCr0));
    ctx.writeCr(Ctrl::Cr3, current_->read(VmcsField::HostCr3));
    ctx.writeCr(Ctrl::Cr4, current_->read(VmcsField::HostCr4));

    inGuest_ = false;
    ++exits_;
    exitMetric_.inc();
    exitReasonMetric_[static_cast<std::size_t>(info.reason)].inc();
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Vmx,
                         std::string("vmx.exit.") +
                             exitReasonName(info.reason));
}

bool
VmxEngine::guestVmread(VmcsField field, std::uint64_t &value)
{
    if (!inGuest_)
        panic("guestVmread outside guest mode");
    Vmcs *shadow = current_ ? current_->shadowLink() : nullptr;
    bool shadowing = current_ &&
                     (current_->read(VmcsField::ProcControls2) &
                      procCtl2ShadowVmcs);
    if (shadowing && shadow && vmcsFieldIsShadowable(field)) {
        machine_.consume(machine_.costs().vmShadowAccess);
        value = shadow->read(field);
        ++shadowAccesses_;
        shadowReadMetric_.inc();
        SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Vmcs,
                             "vmcs.shadow_read");
        return true;
    }
    return false;
}

bool
VmxEngine::guestVmwrite(VmcsField field, std::uint64_t value)
{
    if (!inGuest_)
        panic("guestVmwrite outside guest mode");
    Vmcs *shadow = current_ ? current_->shadowLink() : nullptr;
    bool shadowing = current_ &&
                     (current_->read(VmcsField::ProcControls2) &
                      procCtl2ShadowVmcs);
    if (shadowing && shadow && vmcsFieldIsShadowable(field) &&
        vmcsFieldClass(field) != VmcsFieldClass::ExitInfo) {
        machine_.consume(machine_.costs().vmShadowAccess);
        shadow->write(field, value);
        ++shadowAccesses_;
        shadowWriteMetric_.inc();
        SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Vmcs,
                             "vmcs.shadow_write");
        return true;
    }
    return false;
}

} // namespace svtsim
