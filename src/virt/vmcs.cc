#include "virt/vmcs.h"

#include "sim/log.h"

namespace svtsim {

VmcsFieldClass
vmcsFieldClass(VmcsField field)
{
    switch (field) {
      case VmcsField::GuestRip:
      case VmcsField::GuestRsp:
      case VmcsField::GuestRflags:
      case VmcsField::GuestCr0:
      case VmcsField::GuestCr3:
      case VmcsField::GuestCr4:
      case VmcsField::GuestEfer:
      case VmcsField::GuestInterruptibility:
      case VmcsField::GuestActivityState:
      case VmcsField::GuestPendingDbg:
        return VmcsFieldClass::GuestState;

      case VmcsField::HostRip:
      case VmcsField::HostRsp:
      case VmcsField::HostCr0:
      case VmcsField::HostCr3:
      case VmcsField::HostCr4:
      case VmcsField::HostEfer:
        return VmcsFieldClass::HostState;

      case VmcsField::PinControls:
      case VmcsField::ProcControls:
      case VmcsField::ProcControls2:
      case VmcsField::ExitControls:
      case VmcsField::EntryControls:
      case VmcsField::ExceptionBitmap:
      case VmcsField::IoBitmapA:
      case VmcsField::IoBitmapB:
      case VmcsField::MsrBitmap:
      case VmcsField::EptPointer:
      case VmcsField::VmcsLinkPointer:
      case VmcsField::TscOffset:
      case VmcsField::PreemptionTimerValue:
      case VmcsField::EntryIntrInfo:
      case VmcsField::EntryIntrErrCode:
      case VmcsField::EntryInstrLen:
        return VmcsFieldClass::Control;

      case VmcsField::ExitReasonField:
      case VmcsField::ExitQualification:
      case VmcsField::GuestPhysAddr:
      case VmcsField::GuestLinearAddr:
      case VmcsField::ExitIntrInfo:
      case VmcsField::ExitIntrErrCode:
      case VmcsField::ExitInstrLen:
      case VmcsField::ExitInstrInfo:
        return VmcsFieldClass::ExitInfo;

      case VmcsField::SvtVisor:
      case VmcsField::SvtVm:
      case VmcsField::SvtNested:
        return VmcsFieldClass::Svt;

      case VmcsField::NumFields:
        break;
    }
    panic("vmcsFieldClass: invalid field %u",
          static_cast<unsigned>(field));
}

const char *
vmcsFieldName(VmcsField field)
{
    switch (field) {
      case VmcsField::GuestRip: return "GUEST_RIP";
      case VmcsField::GuestRsp: return "GUEST_RSP";
      case VmcsField::GuestRflags: return "GUEST_RFLAGS";
      case VmcsField::GuestCr0: return "GUEST_CR0";
      case VmcsField::GuestCr3: return "GUEST_CR3";
      case VmcsField::GuestCr4: return "GUEST_CR4";
      case VmcsField::GuestEfer: return "GUEST_EFER";
      case VmcsField::GuestInterruptibility:
        return "GUEST_INTERRUPTIBILITY";
      case VmcsField::GuestActivityState: return "GUEST_ACTIVITY_STATE";
      case VmcsField::GuestPendingDbg: return "GUEST_PENDING_DBG";
      case VmcsField::HostRip: return "HOST_RIP";
      case VmcsField::HostRsp: return "HOST_RSP";
      case VmcsField::HostCr0: return "HOST_CR0";
      case VmcsField::HostCr3: return "HOST_CR3";
      case VmcsField::HostCr4: return "HOST_CR4";
      case VmcsField::HostEfer: return "HOST_EFER";
      case VmcsField::PinControls: return "PIN_CONTROLS";
      case VmcsField::ProcControls: return "PROC_CONTROLS";
      case VmcsField::ProcControls2: return "PROC_CONTROLS2";
      case VmcsField::ExitControls: return "EXIT_CONTROLS";
      case VmcsField::EntryControls: return "ENTRY_CONTROLS";
      case VmcsField::ExceptionBitmap: return "EXCEPTION_BITMAP";
      case VmcsField::IoBitmapA: return "IO_BITMAP_A";
      case VmcsField::IoBitmapB: return "IO_BITMAP_B";
      case VmcsField::MsrBitmap: return "MSR_BITMAP";
      case VmcsField::EptPointer: return "EPT_POINTER";
      case VmcsField::VmcsLinkPointer: return "VMCS_LINK_POINTER";
      case VmcsField::TscOffset: return "TSC_OFFSET";
      case VmcsField::PreemptionTimerValue:
        return "PREEMPTION_TIMER_VALUE";
      case VmcsField::EntryIntrInfo: return "ENTRY_INTR_INFO";
      case VmcsField::EntryIntrErrCode: return "ENTRY_INTR_ERR_CODE";
      case VmcsField::EntryInstrLen: return "ENTRY_INSTR_LEN";
      case VmcsField::ExitReasonField: return "EXIT_REASON";
      case VmcsField::ExitQualification: return "EXIT_QUALIFICATION";
      case VmcsField::GuestPhysAddr: return "GUEST_PHYS_ADDR";
      case VmcsField::GuestLinearAddr: return "GUEST_LINEAR_ADDR";
      case VmcsField::ExitIntrInfo: return "EXIT_INTR_INFO";
      case VmcsField::ExitIntrErrCode: return "EXIT_INTR_ERR_CODE";
      case VmcsField::ExitInstrLen: return "EXIT_INSTR_LEN";
      case VmcsField::ExitInstrInfo: return "EXIT_INSTR_INFO";
      case VmcsField::SvtVisor: return "SVT_VISOR";
      case VmcsField::SvtVm: return "SVT_VM";
      case VmcsField::SvtNested: return "SVT_NESTED";
      case VmcsField::NumFields: break;
    }
    return "INVALID";
}

bool
vmcsFieldIsAddress(VmcsField field)
{
    switch (field) {
      case VmcsField::IoBitmapA:
      case VmcsField::IoBitmapB:
      case VmcsField::MsrBitmap:
      case VmcsField::EptPointer:
      case VmcsField::VmcsLinkPointer:
        return true;
      default:
        return false;
    }
}

bool
vmcsFieldIsShadowable(VmcsField field)
{
    if (vmcsFieldIsAddress(field))
        return false;
    switch (field) {
      // Event injection and the SVt context fields need L0-side
      // handling (virtualized context ids, injection bookkeeping).
      case VmcsField::EntryIntrInfo:
      case VmcsField::EntryIntrErrCode:
      case VmcsField::EntryInstrLen:
      case VmcsField::SvtVisor:
      case VmcsField::SvtVm:
      case VmcsField::SvtNested:
      // Host state of the shadow is L0's secret.
      case VmcsField::HostRip:
      case VmcsField::HostRsp:
      case VmcsField::HostCr0:
      case VmcsField::HostCr3:
      case VmcsField::HostCr4:
      case VmcsField::HostEfer:
        return false;
      default:
        return true;
    }
}

Vmcs::Vmcs(std::string name)
    : name_(std::move(name))
{
    values_[static_cast<std::size_t>(VmcsField::SvtVisor)] =
        svtInvalidContext;
    values_[static_cast<std::size_t>(VmcsField::SvtVm)] =
        svtInvalidContext;
    values_[static_cast<std::size_t>(VmcsField::SvtNested)] =
        svtInvalidContext;
    values_[static_cast<std::size_t>(VmcsField::VmcsLinkPointer)] = ~0ULL;
}

void
Vmcs::check(VmcsField field) const
{
    if (static_cast<std::size_t>(field) >= numVmcsFields)
        panic("Vmcs %s: invalid field %u", name_.c_str(),
              static_cast<unsigned>(field));
}

std::uint64_t
Vmcs::read(VmcsField field) const
{
    check(field);
    return values_[static_cast<std::size_t>(field)];
}

void
Vmcs::write(VmcsField field, std::uint64_t value)
{
    check(field);
    values_[static_cast<std::size_t>(field)] = value;
    ++writes_;
}

void
Vmcs::recordExit(const ExitInfo &info)
{
    write(VmcsField::ExitReasonField,
          static_cast<std::uint64_t>(info.reason));
    write(VmcsField::ExitQualification, info.qualification);
    write(VmcsField::GuestPhysAddr, info.guestPhysAddr);
    write(VmcsField::ExitInstrLen, info.instrLength);
    write(VmcsField::ExitIntrInfo, info.vector);
    write(VmcsField::ExitInstrInfo, info.field);
    write(VmcsField::GuestLinearAddr, info.value);
}

ExitInfo
Vmcs::exitInfo() const
{
    ExitInfo info;
    info.reason = static_cast<ExitReason>(
        read(VmcsField::ExitReasonField));
    info.qualification = read(VmcsField::ExitQualification);
    info.guestPhysAddr = read(VmcsField::GuestPhysAddr);
    info.instrLength = read(VmcsField::ExitInstrLen);
    info.vector =
        static_cast<std::uint8_t>(read(VmcsField::ExitIntrInfo));
    info.field = read(VmcsField::ExitInstrInfo);
    info.value = read(VmcsField::GuestLinearAddr);
    return info;
}

} // namespace svtsim
