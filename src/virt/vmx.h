/**
 * @file
 * The single-level hardware virtualization engine (VMX-like).
 *
 * One engine exists per hardware context. It models the architectural
 * contract the paper's baseline relies on (Section 2.1): one level of
 * virtualization in hardware, every nested exit lands in the host
 * hypervisor, and guest vmread/vmwrite traps unless satisfied by the
 * shadow VMCS.
 */

#ifndef SVTSIM_VIRT_VMX_H
#define SVTSIM_VIRT_VMX_H

#include <array>
#include <cstdint>

#include "arch/machine.h"
#include "virt/exit_reason.h"
#include "virt/vmcs.h"

namespace svtsim {

/** EntryControls bit: the guest is itself a hypervisor, so entry/exit
 *  switch the long MSR load/store lists (makes the L0<->L1 switch more
 *  expensive than L0<->L2, matching Table 1 rows 1 vs 4). */
constexpr std::uint64_t entryCtlLoadHypervisorState = 1ULL << 0;

/** ProcControls2 bit: VMCS shadowing enabled for this guest. */
constexpr std::uint64_t procCtl2ShadowVmcs = 1ULL << 1;

/** ProcControls bit: external interrupts cause VM exits. */
constexpr std::uint64_t procCtlExtIntExit = 1ULL << 2;

/**
 * Per-hardware-context VMX engine.
 *
 * All operations consume modeled time on the machine. Misuse of the
 * VMX state machine (vmread with no current VMCS, entry while in
 * guest mode, ...) raises PanicError: in this codebase the hypervisor
 * is trusted code and such states are simulator bugs.
 */
class VmxEngine
{
  public:
    /**
     * @param machine Owning machine (time and counters).
     * @param core Core this engine's context belongs to.
     * @param ctx Hardware context index within the core.
     */
    VmxEngine(Machine &machine, SmtCore &core, int ctx);

    bool vmxOn() const { return vmxOn_; }
    bool inGuest() const { return inGuest_; }
    Vmcs *currentVmcs() { return current_; }
    const Vmcs *currentVmcs() const { return current_; }
    HwContext &context() { return core_.context(ctx_); }
    SmtCore &core() { return core_; }
    int contextIndex() const { return ctx_; }

    // -- Root-mode operations (host hypervisor software) ---------------
    void vmxon();
    void vmxoff();

    /** Make @p vmcs current (VMPTRLD). */
    void vmptrld(Vmcs *vmcs);

    /** Clear launch state (VMCLEAR). */
    void vmclear(Vmcs *vmcs);

    /** Read a field of the current VMCS (root mode: never traps). */
    std::uint64_t vmread(VmcsField field);

    /** Write a field of the current VMCS (root mode: never traps). */
    void vmwrite(VmcsField field, std::uint64_t value);

    /**
     * Enter the guest described by the current VMCS (VMLAUNCH when
     * @p launch, else VMRESUME). Applies guest state to the hardware
     * context and charges the entry microcode cost.
     */
    void vmentry(bool launch);

    /**
     * Leave guest mode: deposit @p info in the current VMCS, save the
     * guest state, reload host state and charge exit microcode cost.
     */
    void vmexit(const ExitInfo &info);

    // -- Non-root (guest) shadow access -----------------------------------
    /**
     * A guest vmread: satisfied by the shadow VMCS without a trap when
     * shadowing is on and the field is shadowable.
     *
     * @param[out] value The value read, if no trap is needed.
     * @return True if satisfied in hardware; false if the access must
     *         trap to the host hypervisor.
     */
    bool guestVmread(VmcsField field, std::uint64_t &value);

    /** A guest vmwrite; same contract as guestVmread(). */
    bool guestVmwrite(VmcsField field, std::uint64_t value);

    // -- Statistics ----------------------------------------------------------
    std::uint64_t entryCount() const { return entries_; }
    std::uint64_t exitCount() const { return exits_; }
    std::uint64_t shadowAccessCount() const { return shadowAccesses_; }

  private:
    /** MSR-list switch cost applicable to the current VMCS. */
    Ticks hypervisorStateSwitchCost() const;

    Machine &machine_;
    SmtCore &core_;
    int ctx_;
    bool vmxOn_ = false;
    bool inGuest_ = false;
    Vmcs *current_ = nullptr;
    std::uint64_t entries_ = 0;
    std::uint64_t exits_ = 0;
    std::uint64_t shadowAccesses_ = 0;
    /** Interned PMU handles; every engine on a machine shares the same
     *  aggregate slots (registration is idempotent on name). */
    Counter entryMetric_;
    Counter exitMetric_;
    Counter shadowReadMetric_;
    Counter shadowWriteMetric_;
    std::array<Counter, static_cast<std::size_t>(ExitReason::NumReasons)>
        exitReasonMetric_;
};

} // namespace svtsim

#endif // SVTSIM_VIRT_VMX_H
