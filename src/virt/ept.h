/**
 * @file
 * Extended page tables (EPT): second-dimension address translation for
 * guest-physical to host-physical addresses.
 */

#ifndef SVTSIM_VIRT_EPT_H
#define SVTSIM_VIRT_EPT_H

#include <cstdint>
#include <string>
#include <unordered_map>

namespace svtsim {

/** Guest-physical address. */
using Gpa = std::uint64_t;
/** Host-physical address. */
using Hpa = std::uint64_t;

constexpr std::uint64_t pageShift = 12;
constexpr std::uint64_t pageSize = 1ULL << pageShift;

/** Access type for a translation. */
enum class EptAccess { Read, Write, Exec };

/** Permissions of an EPT mapping. */
struct EptPerms
{
    bool read = true;
    bool write = true;
    bool exec = true;
};

/**
 * One guest's EPT.
 *
 * Modeled as a page-granular map. A translation reports how many
 * paging levels were walked so callers can charge walk costs. MMIO
 * regions are deliberately misconfigured so accesses take the
 * EPT_MISCONFIG fast path, exactly like KVM marks virtio doorbell
 * pages (the EPT_MISCONFIG profile entries of Section 6.2 come from
 * this path).
 */
class Ept
{
  public:
    explicit Ept(std::string name);

    /** Map @p npages starting at @p gpa to @p hpa with @p perms. */
    void map(Gpa gpa, Hpa hpa, EptPerms perms = {},
             std::uint64_t npages = 1);

    /** Remove mappings; unmapped pages fault as violations. */
    void unmap(Gpa gpa, std::uint64_t npages = 1);

    /** Mark a region as misconfigured MMIO (device doorbells). */
    void markMmio(Gpa gpa, std::uint64_t npages = 1);

    /** Outcome of a translation attempt. */
    struct Result
    {
        enum class Kind { Ok, Violation, Misconfig };
        Kind kind = Kind::Violation;
        Hpa hpa = 0;
        /** Page-table levels touched (for walk-cost accounting). */
        int levelsWalked = 4;
    };

    /** Translate @p gpa for @p access. */
    Result translate(Gpa gpa, EptAccess access) const;

    /** Invalidate cached translations (INVEPT); counts invocations. */
    void invalidate();

    /** Drop every mapping (shadow-EPT teardown on INVEPT emulation:
     *  translations re-merge lazily on the next faults). */
    void clear();

    std::uint64_t mappedPages() const { return entries_.size(); }
    std::uint64_t invalidations() const { return invalidations_; }
    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        Hpa hpa;
        EptPerms perms;
        bool mmio;
    };

    std::string name_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::uint64_t invalidations_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_VIRT_EPT_H
