#include "virt/ept.h"

#include "sim/log.h"

namespace svtsim {

Ept::Ept(std::string name)
    : name_(std::move(name))
{
}

void
Ept::map(Gpa gpa, Hpa hpa, EptPerms perms, std::uint64_t npages)
{
    if (gpa % pageSize || hpa % pageSize)
        fatal("Ept::map requires page-aligned addresses");
    for (std::uint64_t i = 0; i < npages; ++i) {
        entries_[(gpa >> pageShift) + i] =
            Entry{hpa + i * pageSize, perms, false};
    }
}

void
Ept::unmap(Gpa gpa, std::uint64_t npages)
{
    if (gpa % pageSize)
        fatal("Ept::unmap requires a page-aligned address");
    for (std::uint64_t i = 0; i < npages; ++i)
        entries_.erase((gpa >> pageShift) + i);
}

void
Ept::markMmio(Gpa gpa, std::uint64_t npages)
{
    if (gpa % pageSize)
        fatal("Ept::markMmio requires a page-aligned address");
    for (std::uint64_t i = 0; i < npages; ++i)
        entries_[(gpa >> pageShift) + i] = Entry{0, EptPerms{}, true};
}

Ept::Result
Ept::translate(Gpa gpa, EptAccess access) const
{
    auto it = entries_.find(gpa >> pageShift);
    Result r;
    r.levelsWalked = 4;
    if (it == entries_.end()) {
        r.kind = Result::Kind::Violation;
        return r;
    }
    if (it->second.mmio) {
        r.kind = Result::Kind::Misconfig;
        return r;
    }
    const EptPerms &perms = it->second.perms;
    bool allowed = (access == EptAccess::Read && perms.read) ||
                   (access == EptAccess::Write && perms.write) ||
                   (access == EptAccess::Exec && perms.exec);
    if (!allowed) {
        r.kind = Result::Kind::Violation;
        return r;
    }
    r.kind = Result::Kind::Ok;
    r.hpa = it->second.hpa + (gpa & (pageSize - 1));
    return r;
}

void
Ept::invalidate()
{
    ++invalidations_;
}

void
Ept::clear()
{
    entries_.clear();
    ++invalidations_;
}

} // namespace svtsim
