/**
 * @file
 * VM exit reasons and exit information for the modeled virtualization
 * hardware (a subset of Intel VMX exit reasons, plus the SVT_BLOCKED
 * pseudo-trap used by the SW SVt prototype, Section 5.3).
 */

#ifndef SVTSIM_VIRT_EXIT_REASON_H
#define SVTSIM_VIRT_EXIT_REASON_H

#include <cstdint>

namespace svtsim {

/** Why a VM exited to its hypervisor. */
enum class ExitReason : std::uint16_t
{
    None = 0,
    ExternalInterrupt,
    InterruptWindow,
    Cpuid,
    Hlt,
    Vmcall,
    Vmclear,
    Vmlaunch,
    Vmptrld,
    Vmread,
    Vmresume,
    Vmwrite,
    Vmxoff,
    Vmxon,
    CrAccess,
    IoInstruction,
    Rdmsr,
    Wrmsr,
    EptViolation,
    EptMisconfig,
    PreemptionTimer,
    Invept,
    Pause,
    /** SW SVt pseudo-trap: L0 tells the L1 vCPU thread it is blocked
     *  waiting on the SVt-thread so it must drain interrupts
     *  (Section 5.3). Not a hardware exit reason. */
    SvtBlocked,
    NumReasons,
};

/** Human-readable exit reason name (for profiles and counters). */
const char *exitReasonName(ExitReason reason);

/** Exit information the hardware deposits in the VMCS on a VM exit. */
struct ExitInfo
{
    ExitReason reason = ExitReason::None;
    /** Exit qualification (meaning depends on the reason). */
    std::uint64_t qualification = 0;
    /** Faulting guest-physical address (EPT exits, MMIO). */
    std::uint64_t guestPhysAddr = 0;
    /** Length of the exiting instruction (to advance RIP). */
    std::uint64_t instrLength = 0;
    /** Interrupt vector (external-interrupt exits). */
    std::uint8_t vector = 0;
    /** Accessed VMCS field (vmread/vmwrite exits). */
    std::uint64_t field = 0;
    /** Value operand (vmwrite exits, MSR writes). */
    std::uint64_t value = 0;
};

} // namespace svtsim

#endif // SVTSIM_VIRT_EXIT_REASON_H
