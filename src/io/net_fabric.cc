#include "io/net_fabric.h"

#include <algorithm>

#include "sim/compiler.h"
#include "sim/fault.h"
#include "sim/log.h"

namespace svtsim {

namespace {

/** Ethernet + IP + TCP framing per segment. */
constexpr std::uint32_t framingBytes = 78;

} // namespace

NetFabric::NetFabric(Machine &machine, Ticks latency,
                     double bits_per_sec)
    : machine_(machine), latency_(latency), bitsPerSec_(bits_per_sec)
{
    if (bits_per_sec <= 0)
        fatal("NetFabric requires a positive link rate");
}

void
NetFabric::setPeerHandler(std::function<void(NetPacket)> handler)
{
    peerHandler_ = std::move(handler);
}

void
NetFabric::setLocalHandler(std::function<void(NetPacket)> handler)
{
    localHandler_ = std::move(handler);
}

Ticks
NetFabric::serialization(std::uint32_t bytes) const
{
    double bits = static_cast<double>(bytes + framingBytes) * 8.0;
    return static_cast<Ticks>(bits / bitsPerSec_ * 1e12);
}

void
NetFabric::transmit(const NetPacket &pkt, Ticks &free_at,
                    std::function<void(NetPacket)> &handler,
                    std::uint64_t &counter)
{
    if (!handler)
        panic("NetFabric: transmit with no receiver configured");
    Ticks now = machine_.now();
    Ticks start = std::max(now, free_at);
    Ticks done = start + serialization(pkt.bytes);
    free_at = done;
    Ticks arrival = done + latency_;
    if (FaultInjector *faults = machine_.events().faultInjector();
        SVTSIM_UNLIKELY(faults != nullptr))
        arrival += faults->delay(FaultSite::VirtioCompletionDelay);
    auto &h = handler;
    NetPacket copy = pkt;
    std::uint64_t *ctr = &counter;
    machine_.events().schedule(arrival, [&h, copy, ctr] {
        ++*ctr;
        h(copy);
    }, "net-fabric");
}

void
NetFabric::sendToPeer(const NetPacket &pkt)
{
    transmit(pkt, txFreeAt_, peerHandler_, toPeer_);
}

void
NetFabric::sendToLocal(const NetPacket &pkt)
{
    transmit(pkt, rxFreeAt_, localHandler_, toLocal_);
}

} // namespace svtsim
