#include "io/net_fabric.h"

#include <algorithm>
#include <cmath>

#include "sim/compiler.h"
#include "sim/fault.h"
#include "sim/log.h"

namespace svtsim {

NetFabric::NetFabric(Machine &machine, Ticks latency,
                     double bits_per_sec)
    : machine_(machine), latency_(latency),
      bitsPerSec_(std::llround(bits_per_sec))
{
    if (bitsPerSec_ <= 0)
        fatal("NetFabric requires a positive link rate");
}

void
NetFabric::setPeerHandler(std::function<void(NetPacket)> handler)
{
    dirs_[0].handler = std::move(handler);
}

void
NetFabric::setLocalHandler(std::function<void(NetPacket)> handler)
{
    dirs_[1].handler = std::move(handler);
}

Ticks
NetFabric::serialization(std::uint32_t bytes) const
{
    return netlink::serializationTicks(bytes, bitsPerSec_);
}

void
NetFabric::transmit(const NetPacket &pkt, Direction &dir)
{
    if (!dir.handler)
        panic("NetFabric: transmit with no receiver configured");
    Ticks now = machine_.now();
    Ticks start = std::max(now, dir.freeAt);
    Ticks done = start + serialization(pkt.bytes);
    dir.freeAt = done;
    Ticks arrival = done + latency_;
    if (FaultInjector *faults = machine_.events().faultInjector();
        SVTSIM_UNLIKELY(faults != nullptr))
        arrival += faults->delay(FaultSite::VirtioCompletionDelay);
    // The closure carries a Direction pointer and the packet — the
    // stored handler is invoked in place, never copied per delivery —
    // and fits EventClosure's inline buffer.
    Direction *d = &dir;
    machine_.events().schedule(arrival, [d, pkt] {
        ++d->delivered;
        d->handler(pkt);
    }, "net-fabric");
}

void
NetFabric::sendToPeer(const NetPacket &pkt)
{
    transmit(pkt, dirs_[0]);
}

void
NetFabric::sendToLocal(const NetPacket &pkt)
{
    transmit(pkt, dirs_[1]);
}

} // namespace svtsim
