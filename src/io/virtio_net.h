/**
 * @file
 * The nested virtio-net plumbing of the evaluation platform (Table 4:
 * "virtio-net-pci + vhost" at both L1 and L2):
 *
 *   L2 driver --kick--> L1 vhost --kick--> L0 vhost --> NIC --> wire
 *   wire --> NIC --> L0 IRQ --> L1 IRQ --> L2 IRQ --> L2 driver
 *
 * Every arrow that crosses a virtualization boundary goes through the
 * real trap paths of the VirtStack, so the exit structure (and its
 * cost under baseline / SW SVt / HW SVt) emerges mechanistically.
 *
 * With StackConfig::virtioQueues > 1 the L2-facing device becomes a
 * multi-queue virtio-net: each queue pair gets its own doorbell page,
 * tx/rx Virtqueues and L1 vhost worker, and completions are sharded
 * by packet id (id % queues). Completion interrupts per rx queue run
 * through an IrqCoalescer (exit-elision ladder rung 2).
 */

#ifndef SVTSIM_IO_VIRTIO_NET_H
#define SVTSIM_IO_VIRTIO_NET_H

#include <functional>
#include <memory>
#include <vector>

#include "hv/virt_stack.h"
#include "io/async_stage.h"
#include "io/irq_coalescer.h"
#include "io/net_port.h"
#include "io/virtqueue.h"

namespace svtsim {

/** Guest-physical doorbell addresses of the modeled devices. */
namespace ioaddr {

/** L2's virtio-net doorbell (in L2's physical space); queue q rings
 *  page q of the region. */
constexpr Gpa l2NetDoorbell = 0xfe000000;
/** L2's virtio-blk doorbell (one page per queue). */
constexpr Gpa l2BlkDoorbell = 0xfe010000;
/** L1's virtio-net doorbell (in L1's physical space). */
constexpr Gpa l1NetDoorbell = 0xfd000000;
/** L1's virtio-blk doorbell. */
constexpr Gpa l1BlkDoorbell = 0xfd010000;

} // namespace ioaddr

/**
 * The full nested virtio-net stack plus its guest-driver interface.
 *
 * Requires a VirtStack in one of the nested modes. The L2-visible
 * driver interface (send / rx handler) is what the network workloads
 * program against.
 */
class VirtioNetStack
{
  public:
    /**
     * @param port The wire attachment: a NetFabric end for the
     *             classic single-machine benches, or a CrossLink end
     *             when the peer is a real second machine.
     */
    VirtioNetStack(VirtStack &stack, NetPort &port);

    // -- L2 guest driver interface -------------------------------------
    /**
     * Transmit a segment: guest TCP/IP stack work, a descriptor and
     * (when the device is idle) a doorbell kick. Multi-queue shards
     * by @p id (the flow hash stand-in).
     */
    void send(std::uint32_t bytes, std::uint64_t id,
              std::uint64_t payload = 0);

    /** Handler invoked (in L2 interrupt context) per received
     *  segment. */
    void setRxHandler(std::function<void(NetPacket)> handler);

    // -- Statistics -------------------------------------------------------
    std::uint64_t txPackets() const { return txPackets_; }
    std::uint64_t rxPackets() const { return rxPackets_; }
    int queues() const { return queues_; }

  private:
    /** Per-queue tx state: the ring plus its L1 vhost worker. */
    struct TxQueue
    {
        TxQueue(Machine &machine, const std::string &name)
            : ring(machine, name)
        {
        }

        Virtqueue ring;
        /** vhost tx worker in L1 (separate vCPU), one per queue. */
        AsyncStage l1Vhost;
        bool pollScheduled = false;
        /** Last time this worker found work (busy-poll base). */
        Ticks lastDrain = -sec(1);
        /** Consumed tx descriptors not yet reaped by the guest. */
        std::uint64_t unreaped = 0;
    };

    /** L1 kick handler: signal the vhost worker, schedule the
     *  off-vCPU tx pipeline for the kicked queue. */
    std::uint64_t l1VhostTx(int q, Gpa addr, int size,
                            std::uint64_t value, bool is_write);
    /** Drain queue @p q's L2 tx ring into the off-vCPU pipeline;
     *  re-polls itself while the pipeline is busy (kick
     *  suppression). */
    void vhostTxPoll(int q);
    /** Wire delivery at the local NIC (event context). */
    void onWireRx(NetPacket pkt);
    /** L0 host IRQ: move packets into L1's rx ring. */
    void l0NicIrq();
    /** L1 IRQ: forward to L2's rx rings (vhost for L2). */
    void l1NetIrq();
    /** L2 IRQ: guest driver receive path (drains every queue). */
    void l2NetIrq();

    VirtStack &stack_;
    NetPort &port_;
    int queues_;
    std::vector<std::unique_ptr<TxQueue>> tx_;
    std::vector<std::unique_ptr<Virtqueue>> l2Rx_;
    /** Per-rx-queue completion-interrupt coalescing. */
    std::vector<std::unique_ptr<IrqCoalescer>> rxCoalesce_;
    Virtqueue l1Rx_;
    /** vhost-net tx worker in L0 (separate core) + NIC; shared by
     *  every queue (one physical NIC). */
    AsyncStage l0TxVhost_;
    /** vhost-net rx worker in L0 (separate core). */
    AsyncStage l0RxVhost_;
    std::function<void(NetPacket)> rxHandler_;
    std::uint64_t txPackets_ = 0;
    std::uint64_t rxPackets_ = 0;
    /** Packets dropped on an overrun rx ring (L0->L1 or L1->L2). */
    Counter rxDropMetric_;
    /** Polls re-armed by the idle-tick guard (a buffer landed in the
     *  ring at the exact tick the worker drained it empty). */
    Counter pollRearmMetric_;
};

} // namespace svtsim

#endif // SVTSIM_IO_VIRTIO_NET_H
