/**
 * @file
 * The nested virtio-net plumbing of the evaluation platform (Table 4:
 * "virtio-net-pci + vhost" at both L1 and L2):
 *
 *   L2 driver --kick--> L1 vhost --kick--> L0 vhost --> NIC --> wire
 *   wire --> NIC --> L0 IRQ --> L1 IRQ --> L2 IRQ --> L2 driver
 *
 * Every arrow that crosses a virtualization boundary goes through the
 * real trap paths of the VirtStack, so the exit structure (and its
 * cost under baseline / SW SVt / HW SVt) emerges mechanistically.
 */

#ifndef SVTSIM_IO_VIRTIO_NET_H
#define SVTSIM_IO_VIRTIO_NET_H

#include <functional>

#include "hv/virt_stack.h"
#include "io/async_stage.h"
#include "io/net_port.h"
#include "io/virtqueue.h"

namespace svtsim {

/** Guest-physical doorbell addresses of the modeled devices. */
namespace ioaddr {

/** L2's virtio-net doorbell (in L2's physical space). */
constexpr Gpa l2NetDoorbell = 0xfe000000;
/** L2's virtio-blk doorbell. */
constexpr Gpa l2BlkDoorbell = 0xfe001000;
/** L1's virtio-net doorbell (in L1's physical space). */
constexpr Gpa l1NetDoorbell = 0xfd000000;
/** L1's virtio-blk doorbell. */
constexpr Gpa l1BlkDoorbell = 0xfd001000;

} // namespace ioaddr

/**
 * The full nested virtio-net stack plus its guest-driver interface.
 *
 * Requires a VirtStack in one of the nested modes. The L2-visible
 * driver interface (send / rx handler) is what the network workloads
 * program against.
 */
class VirtioNetStack
{
  public:
    /**
     * @param port The wire attachment: a NetFabric end for the
     *             classic single-machine benches, or a CrossLink end
     *             when the peer is a real second machine.
     */
    VirtioNetStack(VirtStack &stack, NetPort &port);

    // -- L2 guest driver interface -------------------------------------
    /**
     * Transmit a segment: guest TCP/IP stack work, a descriptor and
     * (when the device is idle) a doorbell kick.
     */
    void send(std::uint32_t bytes, std::uint64_t id,
              std::uint64_t payload = 0);

    /** Handler invoked (in L2 interrupt context) per received
     *  segment. */
    void setRxHandler(std::function<void(NetPacket)> handler);

    // -- Statistics -------------------------------------------------------
    std::uint64_t txPackets() const { return txPackets_; }
    std::uint64_t rxPackets() const { return rxPackets_; }

  private:
    /** L1 kick handler: signal the vhost worker, schedule the
     *  off-vCPU tx pipeline. */
    std::uint64_t l1VhostTx(Gpa addr, int size, std::uint64_t value,
                            bool is_write);
    /** Drain the L2 tx ring into the off-vCPU pipeline; re-polls
     *  itself while the pipeline is busy (kick suppression). */
    void vhostTxPoll();
    /** Wire delivery at the local NIC (event context). */
    void onWireRx(NetPacket pkt);
    /** L0 host IRQ: move packets into L1's rx ring. */
    void l0NicIrq();
    /** L1 IRQ: forward to L2's rx ring (vhost for L2). */
    void l1NetIrq();
    /** L2 IRQ: guest driver receive path. */
    void l2NetIrq();

    VirtStack &stack_;
    NetPort &port_;
    Virtqueue l2Tx_;
    Virtqueue l2Rx_;
    Virtqueue l1Rx_;
    /** vhost tx worker in L1 (separate vCPU). */
    AsyncStage l1TxVhost_;
    /** vhost-net tx worker in L0 (separate core) + NIC. */
    AsyncStage l0TxVhost_;
    /** vhost-net rx worker in L0 (separate core). */
    AsyncStage l0RxVhost_;
    bool txPollScheduled_ = false;
    /** Last time the tx worker found work (busy-poll window base). */
    Ticks lastTxDrain_ = -sec(1);
    /** Consumed tx descriptors not yet reaped by the guest. */
    std::uint64_t txUnreaped_ = 0;
    std::function<void(NetPacket)> rxHandler_;
    std::uint64_t txPackets_ = 0;
    std::uint64_t rxPackets_ = 0;
    /** Packets dropped on an overrun rx ring (L0->L1 or L1->L2). */
    Counter rxDropMetric_;
};

} // namespace svtsim

#endif // SVTSIM_IO_VIRTIO_NET_H
