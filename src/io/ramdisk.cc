#include "io/ramdisk.h"

#include <algorithm>

#include "sim/compiler.h"
#include "sim/fault.h"
#include "sim/log.h"

namespace svtsim {

RamDisk::RamDisk(Machine &machine, std::string name)
    : machine_(machine), name_(std::move(name))
{
}

void
RamDisk::setCompletionHandler(std::function<void(std::uint64_t)> fn)
{
    completion_ = std::move(fn);
}

Ticks
RamDisk::serviceTime(std::uint32_t bytes, bool write) const
{
    const CostModel &c = machine_.costs();
    Ticks t = c.blockLayerPerRequest +
              static_cast<Ticks>(bytes) * c.diskCopyPerByte;
    if (write)
        t += c.blockWriteSurcharge;
    return t;
}

void
RamDisk::submit(std::uint64_t id, std::uint64_t lba,
                std::uint32_t bytes, bool write)
{
    if (!completion_)
        panic("RamDisk %s: submit with no completion handler",
              name_.c_str());
    (void)lba;
    Ticks start = std::max(machine_.now(), freeAt_);
    Ticks done = start + serviceTime(bytes, write);
    if (FaultInjector *faults = machine_.events().faultInjector();
        SVTSIM_UNLIKELY(faults != nullptr))
        done += faults->delay(FaultSite::VirtioCompletionDelay);
    freeAt_ = done;
    machine_.events().schedule(done, [this, id] {
        ++completed_;
        completion_(id);
    }, "ramdisk");
}

} // namespace svtsim
