/**
 * @file
 * Wire-side abstraction of a network attachment point.
 *
 * A NetPort is what a NIC model (VirtioNetStack) or a bare-metal
 * workload plugs into: transmit toward the remote end, register one
 * receive handler. Two implementations exist:
 *
 *  - NetFabric: both wire ends live on the same Machine/EventQueue
 *    (the classic single-machine benches, where the peer is a handler
 *    inside the DUT's own queue).
 *
 *  - CrossLink: the ends live on different Machines; delivery crosses
 *    event queues through the cluster engine's staged epoch merge.
 */

#ifndef SVTSIM_IO_NET_PORT_H
#define SVTSIM_IO_NET_PORT_H

#include <cstdint>
#include <functional>

#include "sim/ticks.h"

namespace svtsim {

/** One packet on the wire. */
struct NetPacket
{
    std::uint64_t id = 0;
    std::uint32_t bytes = 0;
    std::uint64_t payload = 0;
};

/** One end of a point-to-point link. */
class NetPort
{
  public:
    virtual ~NetPort() = default;

    /** Transmit toward the remote end of the wire. */
    virtual void send(const NetPacket &pkt) = 0;

    /**
     * Install the receive handler for packets arriving at this end.
     * The handler is stored once and invoked in event context per
     * delivered packet; it is not copied on the delivery hot path.
     */
    virtual void setReceiveHandler(std::function<void(NetPacket)> handler) = 0;

    /** Serialization time of @p bytes at link rate (with framing). */
    virtual Ticks serialization(std::uint32_t bytes) const = 0;
};

namespace netlink {

/** Ethernet + IP + TCP framing per segment. */
constexpr std::uint32_t framingBytes = 78;

/**
 * Serialization delay of a frame on a link of @p bitsPerSec, as an
 * exact integer computation: ticks are picoseconds, so
 * bits * 10^12 / rate with 128-bit intermediate — no double rounding
 * whose last ulp could differ across platforms/FPU modes and break
 * cross-host byte-identity of link timing.
 */
inline Ticks
serializationTicks(std::uint32_t bytes, std::int64_t bitsPerSec)
{
    const auto bits =
        static_cast<unsigned __int128>(bytes + framingBytes) * 8u;
    return static_cast<Ticks>(
        bits * 1000000000000ull /
        static_cast<unsigned __int128>(bitsPerSec));
}

} // namespace netlink

} // namespace svtsim

#endif // SVTSIM_IO_NET_PORT_H
