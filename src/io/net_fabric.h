/**
 * @file
 * The physical network: a 10 GbE link between the device-under-test
 * machine and a bare-metal peer (Table 4's Intel X540-AT2).
 */

#ifndef SVTSIM_IO_NET_FABRIC_H
#define SVTSIM_IO_NET_FABRIC_H

#include <cstdint>
#include <functional>

#include "arch/machine.h"

namespace svtsim {

/** One packet on the wire. */
struct NetPacket
{
    std::uint64_t id = 0;
    std::uint32_t bytes = 0;
    std::uint64_t payload = 0;
};

/**
 * Point-to-point link with propagation latency and serialization
 * bandwidth. Serialization is modeled with a per-direction "link free
 * at" horizon, so back-to-back large segments queue behind each other
 * and the STREAM workloads saturate at line rate.
 */
class NetFabric
{
  public:
    NetFabric(Machine &machine, Ticks latency, double bits_per_sec);

    /** Handler invoked (as an event) when a packet reaches the peer. */
    void setPeerHandler(std::function<void(NetPacket)> handler);

    /** Handler invoked when a packet reaches the local machine. */
    void setLocalHandler(std::function<void(NetPacket)> handler);

    /** Transmit from the local machine toward the peer. */
    void sendToPeer(const NetPacket &pkt);

    /** Transmit from the peer toward the local machine. */
    void sendToLocal(const NetPacket &pkt);

    /** Serialization time of @p bytes at link rate (with framing). */
    Ticks serialization(std::uint32_t bytes) const;

    std::uint64_t deliveredToPeer() const { return toPeer_; }
    std::uint64_t deliveredToLocal() const { return toLocal_; }

  private:
    void transmit(const NetPacket &pkt, Ticks &free_at,
                  std::function<void(NetPacket)> &handler,
                  std::uint64_t &counter);

    Machine &machine_;
    Ticks latency_;
    double bitsPerSec_;
    Ticks txFreeAt_ = 0;
    Ticks rxFreeAt_ = 0;
    std::function<void(NetPacket)> peerHandler_;
    std::function<void(NetPacket)> localHandler_;
    std::uint64_t toPeer_ = 0;
    std::uint64_t toLocal_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_IO_NET_FABRIC_H
