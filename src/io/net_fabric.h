/**
 * @file
 * The physical network: a 10 GbE link between the device-under-test
 * machine and a bare-metal peer (Table 4's Intel X540-AT2).
 */

#ifndef SVTSIM_IO_NET_FABRIC_H
#define SVTSIM_IO_NET_FABRIC_H

#include <cstdint>
#include <functional>

#include "arch/machine.h"
#include "io/net_port.h"

namespace svtsim {

/**
 * Point-to-point link with propagation latency and serialization
 * bandwidth, both ends on one Machine. Serialization is modeled with
 * a per-direction "link free at" horizon, so back-to-back large
 * segments queue behind each other and the STREAM workloads saturate
 * at line rate.
 *
 * The NetPort view exposes the local end: send() transmits toward the
 * peer and setReceiveHandler() installs the local delivery handler —
 * so workloads written against NetPort run unchanged whether the peer
 * is an in-queue handler (this class) or a real second machine
 * (CrossLink).
 */
class NetFabric : public NetPort
{
  public:
    NetFabric(Machine &machine, Ticks latency, double bits_per_sec);

    /** Handler invoked (as an event) when a packet reaches the peer. */
    void setPeerHandler(std::function<void(NetPacket)> handler);

    /** Handler invoked when a packet reaches the local machine. */
    void setLocalHandler(std::function<void(NetPacket)> handler);

    /** Transmit from the local machine toward the peer. */
    void sendToPeer(const NetPacket &pkt);

    /** Transmit from the peer toward the local machine. */
    void sendToLocal(const NetPacket &pkt);

    // -- NetPort (the local end) ------------------------------------------
    void send(const NetPacket &pkt) override { sendToPeer(pkt); }
    void
    setReceiveHandler(std::function<void(NetPacket)> handler) override
    {
        setLocalHandler(std::move(handler));
    }
    /** Serialization time of @p bytes at link rate (with framing). */
    Ticks serialization(std::uint32_t bytes) const override;

    std::uint64_t deliveredToPeer() const { return dirs_[0].delivered; }
    std::uint64_t deliveredToLocal() const { return dirs_[1].delivered; }

  private:
    /** One direction's state; delivery closures capture a pointer to
     *  this (plus the packet) instead of copying the handler. */
    struct Direction
    {
        Ticks freeAt = 0;
        std::function<void(NetPacket)> handler;
        std::uint64_t delivered = 0;
    };

    void transmit(const NetPacket &pkt, Direction &dir);

    Machine &machine_;
    Ticks latency_;
    /** Link rate in bits/sec (integral; see netlink::serializationTicks). */
    std::int64_t bitsPerSec_;
    /** [0] local -> peer, [1] peer -> local. */
    Direction dirs_[2];
};

} // namespace svtsim

#endif // SVTSIM_IO_NET_FABRIC_H
