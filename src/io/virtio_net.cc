#include "io/virtio_net.h"

#include <algorithm>

#include "hv/vectors.h"
#include "sim/log.h"

namespace svtsim {

VirtioNetStack::VirtioNetStack(VirtStack &stack, NetPort &port)
    : stack_(stack), port_(port),
      l2Tx_(stack.machine(), "l2.net.tx"),
      l2Rx_(stack.machine(), "l2.net.rx"),
      l1Rx_(stack.machine(), "l1.net.rx")
{
    rxDropMetric_ = stack_.machine().metrics().counter(
        MetricScope::Machine, "virtio", "net.rx_drop");
    // L2's device: emulated by L1 (vhost in L1's kernel).
    stack_.l1Hv().registerMmio(
        ioaddr::l2NetDoorbell, pageSize,
        [this](Gpa addr, int size, std::uint64_t value,
               bool is_write) {
            return l1VhostTx(addr, size, value, is_write);
        });
    // L1's own virtio-net doorbell: its vhost thread kicks it from a
    // different vCPU, so this handler only exists for completeness.
    stack_.registerL0Mmio(
        ioaddr::l1NetDoorbell, pageSize,
        [](Gpa, int, std::uint64_t, bool) -> std::uint64_t {
            return 0;
        });

    port_.setReceiveHandler([this](NetPacket pkt) { onWireRx(pkt); });

    stack_.setIrqHandler(0, vec::hostNic, [this] { l0NicIrq(); });
    stack_.setIrqHandler(1, vec::l1VirtioNet, [this] { l1NetIrq(); });
    stack_.setIrqHandler(2, vec::l2VirtioNet, [this] { l2NetIrq(); });
}

void
VirtioNetStack::setRxHandler(std::function<void(NetPacket)> handler)
{
    rxHandler_ = std::move(handler);
}

void
VirtioNetStack::send(std::uint32_t bytes, std::uint64_t id,
                     std::uint64_t payload)
{
    GuestApi &l2 = stack_.apiAt(2);
    // Guest TCP/IP stack per segment.
    l2.compute(stack_.machine().costs().tcpStackPerSegment);
    bool kick = l2Tx_.post(VirtioBuffer{id, bytes, payload, false});
    if (kick)
        l2.mmioWrite(ioaddr::l2NetDoorbell, 4, 1);
    ++txPackets_;
}

std::uint64_t
VirtioNetStack::l1VhostTx(Gpa, int, std::uint64_t, bool)
{
    // Runs in L1 context inside the reflected EPT_MISCONFIG handler.
    // KVM's side of the kick only signals the vhost worker's eventfd;
    // the packet processing itself happens on the vhost threads (L1)
    // and L0's vhost-net, which run on other vCPUs/cores: wall-clock
    // pipeline delay, not measured-vCPU time.
    GuestApi &l1 = stack_.apiAt(1);
    l1.compute(nsec(400)); // eventfd signal
    vhostTxPoll();
    return 0;
}

void
VirtioNetStack::vhostTxPoll()
{
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    VirtioBuffer buf;
    bool drained_any = false;
    while (l2Tx_.takeQuiet(buf)) {
        drained_any = true;
        Ticks l1_done = l1TxVhost_.completeAt(
            m.now() + c.l1IoThreadWake,
            c.vhostPerBuffer +
                static_cast<Ticks>(buf.bytes) * c.netCopyPerByte);
        Ticks l0_done = l0TxVhost_.completeAt(
            l1_done,
            c.nicPerPacket +
                static_cast<Ticks>(buf.bytes) * c.netCopyPerByte);
        NetPacket pkt{buf.id, buf.bytes, buf.payload};
        auto *port = &port_;
        m.events().schedule(l0_done,
                            [port, pkt] { port->send(pkt); },
                            "vhost-tx");
        l2Tx_.completeQuiet(buf);
        ++txUnreaped_;
    }
    if (drained_any)
        lastTxDrain_ = m.now();
    // The worker keeps polling the ring while its pipeline is busy
    // (virtio EVENT_IDX) and for a busy-poll linger window after the
    // last drained buffer (vhost busyloop_timeout): a bulk sender
    // posts descriptors without paying a doorbell exit per segment.
    bool pipeline_busy = l1TxVhost_.freeAt() > m.now();
    bool lingering = m.now() - lastTxDrain_ <= c.vhostLingerPoll;
    if (pipeline_busy || lingering) {
        l2Tx_.deviceBusy();
        if (!txPollScheduled_) {
            txPollScheduled_ = true;
            Ticks cadence = std::max(l1TxVhost_.freeAt() - m.now(),
                                     usec(10));
            m.events().scheduleIn(cadence, [this] {
                txPollScheduled_ = false;
                vhostTxPoll();
            }, "vhost-tx-poll");
        }
    }
    // Tx-completion interrupts are heavily suppressed (NAPI tx): the
    // guest reaps descriptors when the worker goes idle or when a
    // large batch has accumulated, not per segment.
    if (txUnreaped_ > 0 &&
        ((!pipeline_busy && !lingering) || txUnreaped_ >= 64)) {
        txUnreaped_ = 0;
        stack_.raiseL2Irq(vec::l2VirtioNet);
    }
}

void
VirtioNetStack::onWireRx(NetPacket pkt)
{
    // Event context: the NIC DMA-ed the packet. The host IRQ fires
    // now; L0's vhost-net worker (separate core) copies the packet
    // into L1's rx ring and only then is L1's interrupt delivered.
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    stack_.raiseHostIrq(vec::hostNic);
    Ticks done = l0RxVhost_.completeAt(
        m.now(), c.nicPerPacket + c.vhostPerBuffer +
                     static_cast<Ticks>(pkt.bytes) * c.netCopyPerByte);
    m.events().schedule(done, [this, pkt] {
        if (l1Rx_.usedFull()) {
            // L1 is overloaded: the NIC ring overruns and the packet
            // is dropped.
            rxDropMetric_.inc();
            return;
        }
        l1Rx_.completeQuiet(
            VirtioBuffer{pkt.id, pkt.bytes, pkt.payload, true});
        stack_.raiseL1Irq(vec::l1VirtioNet);
    }, "vhost-rx");
}

void
VirtioNetStack::l0NicIrq()
{
    // The host-side interrupt handler: ack the NIC and schedule NAPI;
    // the heavy lifting happens on the vhost worker.
    stack_.machine().consume(nsec(600));
}

void
VirtioNetStack::l1NetIrq()
{
    // L1 context (its vCPU took the virtio-net interrupt): receive,
    // then the vhost backend for L2 forwards into L2's rx ring.
    GuestApi &l1 = stack_.apiAt(1);
    const CostModel &c = stack_.machine().costs();
    VirtioBuffer buf;
    bool any = false;
    while (l1Rx_.popUsed(buf)) {
        l1.compute(c.vhostPerBuffer +
                   static_cast<Ticks>(buf.bytes) * c.netCopyPerByte);
        if (l2Rx_.usedFull()) {
            // The guest is not keeping up: the ring is full and the
            // packet is dropped, exactly like an overloaded virtio
            // queue.
            rxDropMetric_.inc();
            continue;
        }
        l2Rx_.complete(buf);
        any = true;
    }
    if (any) {
        // L1-grade sensitive housekeeping per interrupt (its own EOI,
        // irqfd signalling, TPR updates).
        for (int i = 0; i < c.l1IoBackendTraps; ++i)
            l1.wrmsr(msr::ia32X2apicEoi, 0);
        stack_.raiseL2Irq(vec::l2VirtioNet);
    }
}

void
VirtioNetStack::l2NetIrq()
{
    GuestApi &l2 = stack_.apiAt(2);
    const CostModel &c = stack_.machine().costs();
    VirtioBuffer buf;
    // Reap tx completions (skb freeing).
    while (l2Tx_.popUsed(buf))
        l2.compute(c.memAccess * 8);
    while (l2Rx_.popUsed(buf)) {
        l2.compute(c.tcpStackPerSegment);
        ++rxPackets_;
        if (rxHandler_)
            rxHandler_(NetPacket{buf.id, buf.bytes, buf.payload});
    }
}

} // namespace svtsim
