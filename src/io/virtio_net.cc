#include "io/virtio_net.h"

#include <algorithm>
#include <string>

#include "hv/vectors.h"
#include "sim/log.h"

namespace svtsim {

namespace {

/** Queue-suffixed counter prefix; the single-queue name matches the
 *  pre-multi-queue schema ("l2.net.tx", not "l2.net.tx.q0"). */
std::string
qname(const char *base, int q, int queues)
{
    if (queues == 1)
        return base;
    return std::string(base) + ".q" + std::to_string(q);
}

} // namespace

VirtioNetStack::VirtioNetStack(VirtStack &stack, NetPort &port)
    : stack_(stack), port_(port),
      queues_(stack.config().virtioQueues),
      l1Rx_(stack.machine(), "l1.net.rx")
{
    Machine &m = stack_.machine();
    const StackConfig &cfg = stack_.config();
    for (int q = 0; q < queues_; ++q) {
        tx_.push_back(std::make_unique<TxQueue>(
            m, qname("l2.net.tx", q, queues_)));
        l2Rx_.push_back(std::make_unique<Virtqueue>(
            m, qname("l2.net.rx", q, queues_)));
        rxCoalesce_.push_back(std::make_unique<IrqCoalescer>(
            m, qname("l2.net.rx", q, queues_) + ".coalesce",
            cfg.virtioCoalesceCount, cfg.virtioCoalesceTimeout,
            [this] { stack_.raiseL2Irq(vec::l2VirtioNet); }));
    }
    rxDropMetric_ = m.metrics().counter(MetricScope::Machine, "virtio",
                                        "net.rx_drop");
    pollRearmMetric_ = m.metrics().counter(
        MetricScope::Machine, "virtio", "net.poll_rearm");
    // L2's device: emulated by L1 (vhost in L1's kernel). One doorbell
    // page per queue.
    stack_.l1Hv().registerMmio(
        ioaddr::l2NetDoorbell,
        static_cast<std::uint64_t>(queues_) * pageSize,
        [this](Gpa addr, int size, std::uint64_t value,
               bool is_write) {
            int q = static_cast<int>((addr - ioaddr::l2NetDoorbell) /
                                     pageSize);
            return l1VhostTx(q, addr, size, value, is_write);
        });
    // L1's own virtio-net doorbell: its vhost thread kicks it from a
    // different vCPU, so this handler only exists for completeness.
    stack_.registerL0Mmio(
        ioaddr::l1NetDoorbell, pageSize,
        [](Gpa, int, std::uint64_t, bool) -> std::uint64_t {
            return 0;
        });

    port_.setReceiveHandler([this](NetPacket pkt) { onWireRx(pkt); });

    stack_.setIrqHandler(0, vec::hostNic, [this] { l0NicIrq(); });
    stack_.setIrqHandler(1, vec::l1VirtioNet, [this] { l1NetIrq(); });
    stack_.setIrqHandler(2, vec::l2VirtioNet, [this] { l2NetIrq(); });
}

void
VirtioNetStack::setRxHandler(std::function<void(NetPacket)> handler)
{
    rxHandler_ = std::move(handler);
}

void
VirtioNetStack::send(std::uint32_t bytes, std::uint64_t id,
                     std::uint64_t payload)
{
    GuestApi &l2 = stack_.apiAt(2);
    // Guest TCP/IP stack per segment.
    l2.compute(stack_.machine().costs().tcpStackPerSegment);
    int q = static_cast<int>(id % static_cast<std::uint64_t>(queues_));
    bool kick = tx_[static_cast<std::size_t>(q)]->ring.post(
        VirtioBuffer{id, bytes, payload, false});
    if (kick)
        l2.mmioWrite(ioaddr::l2NetDoorbell +
                         static_cast<Gpa>(q) * pageSize,
                     4, 1);
    ++txPackets_;
}

std::uint64_t
VirtioNetStack::l1VhostTx(int q, Gpa, int, std::uint64_t, bool)
{
    // Runs in L1 context inside the reflected EPT_MISCONFIG handler.
    // KVM's side of the kick only signals the vhost worker's eventfd;
    // the packet processing itself happens on the vhost threads (L1)
    // and L0's vhost-net, which run on other vCPUs/cores: wall-clock
    // pipeline delay, not measured-vCPU time.
    if (q < 0 || q >= queues_)
        panic("virtio-net doorbell for queue %d of %d", q, queues_);
    GuestApi &l1 = stack_.apiAt(1);
    l1.compute(nsec(400)); // eventfd signal
    vhostTxPoll(q);
    return 0;
}

void
VirtioNetStack::vhostTxPoll(int q)
{
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    TxQueue &txq = *tx_[static_cast<std::size_t>(q)];
    VirtioBuffer buf;
    bool drained_any = false;
    while (txq.ring.takeQuiet(buf)) {
        drained_any = true;
        Ticks l1_done = txq.l1Vhost.completeAt(
            m.now() + c.l1IoThreadWake,
            c.vhostPerBuffer +
                static_cast<Ticks>(buf.bytes) * c.netCopyPerByte);
        Ticks l0_done = l0TxVhost_.completeAt(
            l1_done,
            c.nicPerPacket +
                static_cast<Ticks>(buf.bytes) * c.netCopyPerByte);
        NetPacket pkt{buf.id, buf.bytes, buf.payload};
        auto *port = &port_;
        m.events().schedule(l0_done,
                            [port, pkt] { port->send(pkt); },
                            "vhost-tx");
        txq.ring.completeQuiet(buf);
        ++txq.unreaped;
    }
    if (drained_any)
        txq.lastDrain = m.now();
    // The worker keeps polling the ring while its pipeline is busy
    // (virtio EVENT_IDX) and for a busy-poll linger window after the
    // last drained buffer (vhost busyloop_timeout): a bulk sender
    // posts descriptors without paying a doorbell exit per segment.
    bool pipeline_busy = txq.l1Vhost.freeAt() > m.now();
    bool lingering = m.now() - txq.lastDrain <= c.vhostLingerPoll;
    bool repoll = pipeline_busy || lingering;
    if (!repoll && !txq.ring.availEmpty()) {
        // A descriptor landed at the exact tick the worker drained
        // the ring empty: its kick was suppressed while we ran, so
        // going idle now would strand it. Re-arm one more poll.
        repoll = true;
        pollRearmMetric_.inc();
    }
    if (repoll) {
        txq.ring.deviceBusy();
        if (!txq.pollScheduled) {
            txq.pollScheduled = true;
            Ticks cadence = std::max(txq.l1Vhost.freeAt() - m.now(),
                                     usec(10));
            m.events().scheduleIn(cadence, [this, q] {
                tx_[static_cast<std::size_t>(q)]->pollScheduled =
                    false;
                vhostTxPoll(q);
            }, "vhost-tx-poll");
        }
    }
    // Tx-completion interrupts are heavily suppressed (NAPI tx): the
    // guest reaps descriptors when the worker goes idle or when a
    // large batch has accumulated, not per segment.
    if (txq.unreaped > 0 &&
        ((!pipeline_busy && !lingering) || txq.unreaped >= 64)) {
        txq.unreaped = 0;
        stack_.raiseL2Irq(vec::l2VirtioNet);
    }
}

void
VirtioNetStack::onWireRx(NetPacket pkt)
{
    // Event context: the NIC DMA-ed the packet. The host IRQ fires
    // now; L0's vhost-net worker (separate core) copies the packet
    // into L1's rx ring and only then is L1's interrupt delivered.
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    stack_.raiseHostIrq(vec::hostNic);
    Ticks done = l0RxVhost_.completeAt(
        m.now(), c.nicPerPacket + c.vhostPerBuffer +
                     static_cast<Ticks>(pkt.bytes) * c.netCopyPerByte);
    m.events().schedule(done, [this, pkt] {
        if (l1Rx_.usedFull()) {
            // L1 is overloaded: the NIC ring overruns and the packet
            // is dropped.
            rxDropMetric_.inc();
            return;
        }
        l1Rx_.completeQuiet(
            VirtioBuffer{pkt.id, pkt.bytes, pkt.payload, true});
        stack_.raiseL1Irq(vec::l1VirtioNet);
    }, "vhost-rx");
}

void
VirtioNetStack::l0NicIrq()
{
    // The host-side interrupt handler: ack the NIC and schedule NAPI;
    // the heavy lifting happens on the vhost worker.
    stack_.machine().consume(nsec(600));
}

void
VirtioNetStack::l1NetIrq()
{
    // L1 context (its vCPU took the virtio-net interrupt): receive,
    // then the vhost backend for L2 forwards into L2's rx rings
    // (sharded by packet id, the flow-hash stand-in).
    GuestApi &l1 = stack_.apiAt(1);
    const CostModel &c = stack_.machine().costs();
    VirtioBuffer buf;
    bool any = false;
    while (l1Rx_.popUsed(buf)) {
        l1.compute(c.vhostPerBuffer +
                   static_cast<Ticks>(buf.bytes) * c.netCopyPerByte);
        auto q = static_cast<std::size_t>(
            buf.id % static_cast<std::uint64_t>(queues_));
        if (l2Rx_[q]->usedFull()) {
            // The guest is not keeping up: the ring is full and the
            // packet is dropped, exactly like an overloaded virtio
            // queue.
            rxDropMetric_.inc();
            continue;
        }
        l2Rx_[q]->complete(buf);
        rxCoalesce_[q]->note();
        any = true;
    }
    if (any) {
        // L1-grade sensitive housekeeping per interrupt (its own EOI,
        // irqfd signalling, TPR updates).
        for (int i = 0; i < c.l1IoBackendTraps; ++i)
            l1.wrmsr(msr::ia32X2apicEoi, 0);
    }
}

void
VirtioNetStack::l2NetIrq()
{
    GuestApi &l2 = stack_.apiAt(2);
    const CostModel &c = stack_.machine().costs();
    VirtioBuffer buf;
    // Reap tx completions (skb freeing).
    for (auto &txq : tx_)
        while (txq->ring.popUsed(buf))
            l2.compute(c.memAccess * 8);
    for (auto &rxq : l2Rx_) {
        while (rxq->popUsed(buf)) {
            l2.compute(c.tcpStackPerSegment);
            ++rxPackets_;
            if (rxHandler_)
                rxHandler_(NetPacket{buf.id, buf.bytes, buf.payload});
        }
    }
}

} // namespace svtsim
