/**
 * @file
 * AsyncStage: a single-server pipeline stage with a busy horizon,
 * used to model work that happens off the measured vCPU (vhost worker
 * threads, NIC DMA engines). Such work adds wall-clock delay but does
 * not consume the measured vCPU's cycles.
 */

#ifndef SVTSIM_IO_ASYNC_STAGE_H
#define SVTSIM_IO_ASYNC_STAGE_H

#include <algorithm>

#include "sim/ticks.h"

namespace svtsim {

/** One FIFO server: jobs start at max(ready, freeAt) and hold the
 *  server for their service time. */
class AsyncStage
{
  public:
    /**
     * Enqueue a job that becomes ready at @p ready and needs
     * @p service time.
     * @return The completion time.
     */
    Ticks
    completeAt(Ticks ready, Ticks service)
    {
        Ticks start = std::max(ready, freeAt_);
        freeAt_ = start + service;
        return freeAt_;
    }

    Ticks freeAt() const { return freeAt_; }

  private:
    Ticks freeAt_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_IO_ASYNC_STAGE_H
