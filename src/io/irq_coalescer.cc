#include "io/irq_coalescer.h"

#include <utility>

#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

IrqCoalescer::IrqCoalescer(Machine &machine, std::string name,
                           int count, Ticks timeout,
                           std::function<void()> fire)
    : machine_(machine), name_(std::move(name)), count_(count),
      timeout_(timeout), fire_(std::move(fire))
{
    if (count_ < 1)
        fatal("IrqCoalescer %s: count must be >= 1 (got %d)",
              name_.c_str(), count_);
    if (count_ > 1 && timeout_ <= 0)
        fatal("IrqCoalescer %s: count %d needs a timeout so a tail "
              "batch smaller than the count is never stranded",
              name_.c_str(), count_);
    MetricsRegistry &reg = machine_.metrics();
    countFireMetric_ = reg.counter(MetricScope::Machine, "virtio",
                                   name_ + ".count_fire");
    timerFireMetric_ = reg.counter(MetricScope::Machine, "virtio",
                                   name_ + ".timer_fire");
    emptyTimerMetric_ = reg.counter(MetricScope::Machine, "virtio",
                                    name_ + ".empty_timer");
    notedMetric_ = reg.counter(MetricScope::Machine, "virtio",
                               name_ + ".noted");
    batchMetric_ = reg.histogram(MetricScope::Machine, "virtio",
                                 name_ + ".batch");
}

IrqCoalescer::~IrqCoalescer()
{
    if (timer_ != invalidEventId)
        machine_.events().deschedule(timer_);
}

void
IrqCoalescer::note()
{
    ++pending_;
    notedMetric_.inc();
    if (pending_ >= count_) {
        countFireMetric_.inc();
        fireNow();
        return;
    }
    // Below the count threshold: make sure a timer bounds the wait
    // from the *first* undelivered completion.
    if (timer_ == invalidEventId) {
        timer_ = machine_.events().scheduleIn(
            timeout_, [this] { onTimer(); }, "irq-coalesce");
    }
}

void
IrqCoalescer::onTimer()
{
    timer_ = invalidEventId;
    if (pending_ == 0) {
        // A count-threshold fire already delivered this batch; the
        // leftover timer is a deliberate no-op (see class comment).
        emptyTimerMetric_.inc();
        return;
    }
    timerFireMetric_.inc();
    fireNow();
}

void
IrqCoalescer::fireNow()
{
    batchMetric_.record(pending_);
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Irq,
                         "irq.coalesce." + name_);
    pending_ = 0;
    fire_();
}

} // namespace svtsim
