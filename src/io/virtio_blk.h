/**
 * @file
 * The nested virtio-blk plumbing (Table 4: "virtio disk @ ramfs" at
 * both L1 and L2):
 *
 *   L2 driver --kick--> L1 vhost-blk (L2 image on L1's ramfs)
 *      --kick--> L0 vhost-blk --> RamDisk
 *   completion --> L0 IRQ --> L1 IRQ --> L2 IRQ --> completion cb
 *
 * With StackConfig::virtioQueues > 1 the L2-facing device becomes a
 * multi-queue virtio-blk: per-queue doorbell pages, submission and
 * completion Virtqueues and L1 backend workers, sharded by request id.
 * Completion interrupts per queue run through an IrqCoalescer
 * (exit-elision ladder rung 2).
 */

#ifndef SVTSIM_IO_VIRTIO_BLK_H
#define SVTSIM_IO_VIRTIO_BLK_H

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hv/virt_stack.h"
#include "io/async_stage.h"
#include "io/irq_coalescer.h"
#include "io/ramdisk.h"
#include "io/virtio_net.h" // ioaddr
#include "io/virtqueue.h"

namespace svtsim {

/**
 * The full nested virtio-blk stack plus its L2 driver interface.
 */
class VirtioBlkStack
{
  public:
    VirtioBlkStack(VirtStack &stack, RamDisk &disk);

    // -- L2 guest driver interface --------------------------------------
    /** Submit a request; the completion handler fires in L2 interrupt
     *  context. Multi-queue shards by @p id. */
    void submit(std::uint64_t id, std::uint64_t lba,
                std::uint32_t bytes, bool write);

    void setCompletionHandler(std::function<void(std::uint64_t)> fn);

    std::uint64_t completedCount() const { return completed_; }
    int queues() const { return queues_; }

    /** L1 virtio-blk interrupt batches handled so far. The L1-grade
     *  EOI/housekeeping traps are charged once per batch (not per
     *  completion), so `l0.exit.WRMSR` grows by exactly
     *  l1IoBackendTraps per batch — the invariant the EOI-attribution
     *  metrics test locks in. */
    std::uint64_t l1IrqBatches() const { return l1IrqBatches_; }

  private:
    struct Request
    {
        std::uint64_t lba;
        std::uint32_t bytes;
        bool write;
    };

    /** Per-queue state: submission + completion rings and the L1
     *  backend worker that services the submissions. */
    struct BlkQueue
    {
        BlkQueue(Machine &machine, const std::string &qn,
                 const std::string &cn)
            : ring(machine, qn), complq(machine, cn)
        {
        }

        Virtqueue ring;
        Virtqueue complq;
        /** L1's vhost-blk / file-backend worker (separate vCPU). */
        AsyncStage l1Worker;
        bool pollScheduled = false;
        Ticks lastDrain = -sec(1);
    };

    std::uint64_t l1VhostBlk(int q, Gpa addr, int size,
                             std::uint64_t value, bool is_write);
    /** Drain queue @p q into the off-vCPU backend pipeline; lingers
     *  like the net path (QEMU iothread adaptive polling). */
    void vhostBlkPoll(int q);
    void onDiskComplete(std::uint64_t id);
    void l0DiskIrq();
    void l1BlkIrq();
    void l2BlkIrq();

    VirtStack &stack_;
    RamDisk &disk_;
    int queues_;
    std::vector<std::unique_ptr<BlkQueue>> qs_;
    /** Per-queue completion-interrupt coalescing. */
    std::vector<std::unique_ptr<IrqCoalescer>> coalesce_;
    Virtqueue l1Compl_;
    /** L0's vhost-blk worker (separate core), shared (one disk). */
    AsyncStage l0BlkWorker_;
    std::deque<std::uint64_t> l0Backlog_;
    std::unordered_map<std::uint64_t, Request> inflight_;
    std::function<void(std::uint64_t)> completionHandler_;
    std::uint64_t completed_ = 0;
    std::uint64_t l1IrqBatches_ = 0;
    /** Polls re-armed by the idle-tick guard (see virtio-net). */
    Counter pollRearmMetric_;
};

} // namespace svtsim

#endif // SVTSIM_IO_VIRTIO_BLK_H
