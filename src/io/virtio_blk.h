/**
 * @file
 * The nested virtio-blk plumbing (Table 4: "virtio disk @ ramfs" at
 * both L1 and L2):
 *
 *   L2 driver --kick--> L1 vhost-blk (L2 image on L1's ramfs)
 *      --kick--> L0 vhost-blk --> RamDisk
 *   completion --> L0 IRQ --> L1 IRQ --> L2 IRQ --> completion cb
 */

#ifndef SVTSIM_IO_VIRTIO_BLK_H
#define SVTSIM_IO_VIRTIO_BLK_H

#include <functional>
#include <unordered_map>

#include "hv/virt_stack.h"
#include "io/async_stage.h"
#include "io/ramdisk.h"
#include "io/virtio_net.h" // ioaddr
#include "io/virtqueue.h"

namespace svtsim {

/**
 * The full nested virtio-blk stack plus its L2 driver interface.
 */
class VirtioBlkStack
{
  public:
    VirtioBlkStack(VirtStack &stack, RamDisk &disk);

    // -- L2 guest driver interface --------------------------------------
    /** Submit a request; the completion handler fires in L2 interrupt
     *  context. */
    void submit(std::uint64_t id, std::uint64_t lba,
                std::uint32_t bytes, bool write);

    void setCompletionHandler(std::function<void(std::uint64_t)> fn);

    std::uint64_t completedCount() const { return completed_; }

  private:
    struct Request
    {
        std::uint64_t lba;
        std::uint32_t bytes;
        bool write;
    };

    std::uint64_t l1VhostBlk(Gpa addr, int size, std::uint64_t value,
                             bool is_write);
    /** Drain L2's queue into the off-vCPU backend pipeline; lingers
     *  like the net path (QEMU iothread adaptive polling). */
    void vhostBlkPoll();
    void onDiskComplete(std::uint64_t id);
    void l0DiskIrq();
    void l1BlkIrq();
    void l2BlkIrq();

    VirtStack &stack_;
    RamDisk &disk_;
    Virtqueue l2Q_;
    Virtqueue l1Compl_;
    Virtqueue l2Compl_;
    /** L1's vhost-blk / file-backend worker (separate vCPU). */
    AsyncStage l1BlkWorker_;
    /** L0's vhost-blk worker (separate core). */
    AsyncStage l0BlkWorker_;
    bool blkPollScheduled_ = false;
    Ticks lastBlkDrain_ = -sec(1);
    std::deque<std::uint64_t> l0Backlog_;
    std::unordered_map<std::uint64_t, Request> inflight_;
    std::function<void(std::uint64_t)> completionHandler_;
    std::uint64_t completed_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_IO_VIRTIO_BLK_H
