#include "io/virtqueue.h"

#include "sim/compiler.h"
#include "sim/fault.h"
#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

Virtqueue::Virtqueue(Machine &machine, std::string name,
                     std::size_t size)
    : machine_(machine), name_(std::move(name)), size_(size)
{
    if (size == 0)
        fatal("Virtqueue requires a non-zero ring size");
    MetricsRegistry &reg = machine_.metrics();
    postedMetric_ =
        reg.counter(MetricScope::Machine, "virtio", name_ + ".posted");
    kicksMetric_ =
        reg.counter(MetricScope::Machine, "virtio", name_ + ".kicks");
    fullMetric_ =
        reg.counter(MetricScope::Machine, "virtio", name_ + ".full");
    availDepthMetric_ = reg.gauge(MetricScope::Machine, "virtio",
                                  name_ + ".avail_depth");
}

void
Virtqueue::noteAvailDepth()
{
    auto depth = static_cast<std::int64_t>(avail_.size());
    availDepthMetric_.set(depth);
    TraceSink *sink = machine_.traceSink();
    if (SVTSIM_UNLIKELY(sink && sink->enabled()))
        sink->counter(name_ + ".avail_depth", depth);
}

bool
Virtqueue::post(const VirtioBuffer &buf)
{
    FaultInjector *faults = machine_.events().faultInjector();
    bool pressured = SVTSIM_UNLIKELY(faults != nullptr) &&
                     faults->fires(FaultSite::VirtioBackpressure);
    if (avail_.size() >= size_ || pressured) {
        // Back-pressure, not a protocol violation: the driver spins
        // until the device frees a slot. The buffer is never lost.
        ++full_;
        fullMetric_.inc();
        SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Io,
                             "virtqueue.full." + name_);
        machine_.consume(machine_.costs().ringFullWait);
    }
    machine_.consume(machine_.costs().virtqueueDescriptor);
    avail_.push_back(buf);
    ++posted_;
    postedMetric_.inc();
    noteAvailDepth();
    if (!deviceRunning_) {
        deviceRunning_ = true;
        ++kicks_;
        kicksMetric_.inc();
        SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Io,
                             "virtqueue.kick." + name_);
        return true;
    }
    return false;
}

bool
Virtqueue::popUsed(VirtioBuffer &out)
{
    if (used_.empty())
        return false;
    machine_.consume(machine_.costs().memAccess * 2);
    out = used_.front();
    used_.pop_front();
    return true;
}

bool
Virtqueue::take(VirtioBuffer &out)
{
    if (avail_.empty()) {
        deviceRunning_ = false;
        return false;
    }
    machine_.consume(machine_.costs().memAccess * 2);
    out = avail_.front();
    avail_.pop_front();
    noteAvailDepth();
    return true;
}

bool
Virtqueue::takeQuiet(VirtioBuffer &out)
{
    if (avail_.empty()) {
        deviceRunning_ = false;
        return false;
    }
    out = avail_.front();
    avail_.pop_front();
    noteAvailDepth();
    return true;
}

void
Virtqueue::complete(const VirtioBuffer &buf)
{
    if (used_.size() >= size_)
        panic("Virtqueue %s used-ring overflow", name_.c_str());
    machine_.consume(machine_.costs().memAccess * 2);
    SVTSIM_TRACE_INSTANT(machine_.traceSink(), TraceCategory::Io,
                         "virtqueue.complete." + name_);
    used_.push_back(buf);
}

void
Virtqueue::completeQuiet(const VirtioBuffer &buf)
{
    if (used_.size() >= size_)
        panic("Virtqueue %s used-ring overflow", name_.c_str());
    used_.push_back(buf);
}

} // namespace svtsim
