/**
 * @file
 * Machine-to-machine network link for the parallel cluster engine.
 *
 * A CrossLink is a point-to-point wire like NetFabric — propagation
 * latency plus per-direction serialization at link rate — except its
 * two ends live on *different* Machines (different EventQueues). A
 * packet sent during a cluster epoch is not scheduled into the remote
 * queue immediately (the remote machine may be advancing concurrently
 * on another worker); it is staged in a per-direction buffer, tagged
 * (deliveryTick, srcMachineId, seq), and merged into the destination
 * queue by the Cluster at the epoch barrier in that canonical order.
 * The merge order is a pure function of simulated behavior — never of
 * worker count or wall-clock interleaving — which is what makes a
 * cluster run byte-identical for any --cluster-jobs value.
 *
 * The link's propagation latency is the conservative lookahead: a
 * packet sent at local time t arrives at t + serialization + latency,
 * so with epoch horizons H' <= min(machine floors) + min(latency) no
 * staged arrival can land in simulated time a machine has already
 * executed past (DESIGN.md "Parallel cluster engine" has the full
 * argument).
 */

#ifndef SVTSIM_IO_CROSS_LINK_H
#define SVTSIM_IO_CROSS_LINK_H

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/machine.h"
#include "io/net_port.h"

namespace svtsim {

/** Point-to-point link between two Machines with staged delivery. */
class CrossLink
{
  public:
    /**
     * One staged packet delivery, exposed so the Cluster barrier can
     * merge deliveries from many links into one canonical sequence.
     */
    struct Delivery
    {
        Ticks arrival = 0;
        int srcId = 0;
        int dstId = 0;
        /** Per-direction send sequence (ties same-tick arrivals). */
        std::uint64_t seq = 0;
        NetPacket pkt;
        CrossLink *link = nullptr;
        /** Direction index: 0 = end0 -> end1, 1 = end1 -> end0. */
        int dir = 0;
    };

    /**
     * @param a,idA   Machine (and cluster machine id) at end 0.
     * @param b,idB   Machine (and cluster machine id) at end 1.
     * @param latency One-way propagation delay; must be > 0, it is
     *                the conservative lookahead this link grants.
     */
    CrossLink(Machine &a, int idA, Machine &b, int idB, Ticks latency,
              double bits_per_sec);

    CrossLink(const CrossLink &) = delete;
    CrossLink &operator=(const CrossLink &) = delete;

    /** The NetPort at end 0 (machine a) / end 1 (machine b). */
    NetPort &port(int end);

    Ticks latency() const { return latency_; }

    /** Packets delivered *to* @p end so far. */
    std::uint64_t delivered(int end) const
    {
        return dirs_[end == 0 ? 1 : 0].delivered;
    }

    /** Packets currently staged (both directions; tests/diagnostics). */
    std::size_t stagedCount() const
    {
        return dirs_[0].staged.size() + dirs_[1].staged.size();
    }

    /**
     * Move every staged delivery of both directions into @p out
     * (unsorted). Called by the Cluster coordinator at the barrier;
     * the caller sorts canonically across all links and then calls
     * deliver() per entry.
     */
    void drainStaged(std::vector<Delivery> &out);

    /**
     * Schedule one drained delivery into its destination queue. Must
     * run while the destination machine is quiescent (at the epoch
     * barrier). Panics if the destination end never installed a
     * receive handler, or if the arrival lies in the destination's
     * past (a lookahead/horizon bug).
     */
    void deliver(const Delivery &d);

    /** Canonical merge order: (deliveryTick, srcMachineId, seq). */
    static bool
    canonicalLess(const Delivery &x, const Delivery &y)
    {
        if (x.arrival != y.arrival)
            return x.arrival < y.arrival;
        if (x.srcId != y.srcId)
            return x.srcId < y.srcId;
        return x.seq < y.seq;
    }

    /**
     * Standalone drain-sort-deliver of this link's staged packets
     * (unit tests and single-link setups without a Cluster).
     */
    void deliverStaged();

  private:
    /** One direction of the wire (src end -> dst end). */
    struct Direction
    {
        Machine *src = nullptr;
        Machine *dst = nullptr;
        int srcId = 0;
        int dstId = 0;
        /** Link-busy horizon for serialization queueing. */
        Ticks freeAt = 0;
        std::uint64_t sendSeq = 0;
        std::uint64_t delivered = 0;
        std::function<void(NetPacket)> handler;
        std::vector<Delivery> staged;
    };

    /** NetPort adapter for one end. */
    class Port : public NetPort
    {
      public:
        void
        send(const NetPacket &pkt) override
        {
            link_->stageSend(outDir_, pkt);
        }
        void
        setReceiveHandler(std::function<void(NetPacket)> handler) override
        {
            link_->dirs_[outDir_ ^ 1].handler = std::move(handler);
        }
        Ticks
        serialization(std::uint32_t bytes) const override
        {
            return netlink::serializationTicks(bytes,
                                               link_->bitsPerSec_);
        }

      private:
        friend class CrossLink;
        CrossLink *link_ = nullptr;
        /** Direction index of packets sent *from* this end. */
        int outDir_ = 0;
    };

    void stageSend(int dirIdx, const NetPacket &pkt);

    Ticks latency_;
    std::int64_t bitsPerSec_;
    /** [0] end0 -> end1, [1] end1 -> end0. */
    Direction dirs_[2];
    Port ports_[2];
};

} // namespace svtsim

#endif // SVTSIM_IO_CROSS_LINK_H
