/**
 * @file
 * RamDisk: the ramfs-backed storage of Table 4 ("virtio disk @
 * ramfs"), so access times are independent of storage technology.
 */

#ifndef SVTSIM_IO_RAMDISK_H
#define SVTSIM_IO_RAMDISK_H

#include <cstdint>
#include <functional>

#include "arch/machine.h"

namespace svtsim {

/**
 * Asynchronous ramfs-backed disk: a request completes after the
 * in-memory copy/bookkeeping time; completions are delivered through
 * a callback (the host driver raises the disk interrupt from it).
 */
class RamDisk
{
  public:
    RamDisk(Machine &machine, std::string name);

    /** Completion callback (request id). */
    void setCompletionHandler(std::function<void(std::uint64_t)> fn);

    /** Submit a request; completes asynchronously. */
    void submit(std::uint64_t id, std::uint64_t lba,
                std::uint32_t bytes, bool write);

    /** Pure service time of a request (no queueing). */
    Ticks serviceTime(std::uint32_t bytes, bool write) const;

    std::uint64_t completedCount() const { return completed_; }

  private:
    Machine &machine_;
    std::string name_;
    std::function<void(std::uint64_t)> completion_;
    /** Device busy horizon: one request in service at a time. */
    Ticks freeAt_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_IO_RAMDISK_H
