#include "io/virtio_blk.h"

#include <algorithm>

#include "hv/vectors.h"
#include "sim/log.h"

namespace svtsim {

VirtioBlkStack::VirtioBlkStack(VirtStack &stack, RamDisk &disk)
    : stack_(stack), disk_(disk),
      l2Q_(stack.machine(), "l2.blk.q"),
      l1Compl_(stack.machine(), "l1.blk.compl"),
      l2Compl_(stack.machine(), "l2.blk.compl")
{
    stack_.l1Hv().registerMmio(
        ioaddr::l2BlkDoorbell, pageSize,
        [this](Gpa addr, int size, std::uint64_t value,
               bool is_write) {
            return l1VhostBlk(addr, size, value, is_write);
        });
    // L1's own virtio-blk doorbell is kicked by L1's I/O thread from
    // a different vCPU; register a no-op for completeness.
    stack_.registerL0Mmio(
        ioaddr::l1BlkDoorbell, pageSize,
        [](Gpa, int, std::uint64_t, bool) -> std::uint64_t {
            return 0;
        });
    disk_.setCompletionHandler(
        [this](std::uint64_t id) { onDiskComplete(id); });

    stack_.setIrqHandler(0, vec::hostDisk, [this] { l0DiskIrq(); });
    stack_.setIrqHandler(1, vec::l1VirtioBlk, [this] { l1BlkIrq(); });
    stack_.setIrqHandler(2, vec::l2VirtioBlk, [this] { l2BlkIrq(); });
}

void
VirtioBlkStack::setCompletionHandler(
    std::function<void(std::uint64_t)> fn)
{
    completionHandler_ = std::move(fn);
}

void
VirtioBlkStack::submit(std::uint64_t id, std::uint64_t lba,
                       std::uint32_t bytes, bool write)
{
    GuestApi &l2 = stack_.apiAt(2);
    inflight_[id] = Request{lba, bytes, write};
    bool kick = l2Q_.post(VirtioBuffer{id, bytes, lba, !write});
    if (kick)
        l2.mmioWrite(ioaddr::l2BlkDoorbell, 4, 1);
}

std::uint64_t
VirtioBlkStack::l1VhostBlk(Gpa, int, std::uint64_t, bool)
{
    // Runs in L1 context inside the reflected kick. KVM's side only
    // signals the backend; the filesystem work on L2's image file
    // (a file in L1's ramfs) happens on L1's I/O thread, which runs
    // on a different vCPU.
    GuestApi &l1 = stack_.apiAt(1);
    l1.compute(nsec(400)); // eventfd signal
    vhostBlkPoll();
    return 0;
}

void
VirtioBlkStack::vhostBlkPoll()
{
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    VirtioBuffer buf;
    bool drained_any = false;
    while (l2Q_.takeQuiet(buf)) {
        drained_any = true;
        auto it = inflight_.find(buf.id);
        simAssert(it != inflight_.end(), "unknown blk request");
        const Request &req = it->second;
        // L1's file backend: block layer + page-cache copy.
        Ticks fs = c.blockLayerPerRequest +
                   static_cast<Ticks>(req.bytes) * c.diskCopyPerByte;
        if (req.write)
            fs += c.blockWriteSurcharge;
        Ticks l1_done = l1BlkWorker_.completeAt(
            m.now() + c.l1IoThreadWake, fs);
        // L0's vhost-blk picks the request off L1's own virtio disk
        // (the kick there comes from L1's I/O thread, not from the
        // measured vCPU) and hands it to the ramdisk.
        Ticks l0_done =
            l0BlkWorker_.completeAt(l1_done, c.vhostPerBuffer);
        std::uint64_t id = buf.id;
        std::uint64_t lba = req.lba;
        std::uint32_t bytes = req.bytes;
        bool write = req.write;
        m.events().schedule(l0_done, [this, id, lba, bytes, write] {
            disk_.submit(id, lba, bytes, write);
        }, "vhost-blk");
    }
    if (drained_any)
        lastBlkDrain_ = m.now();
    bool pipeline_busy = l1BlkWorker_.freeAt() > m.now();
    bool lingering = m.now() - lastBlkDrain_ <= c.vhostLingerPoll;
    if (pipeline_busy || lingering) {
        l2Q_.deviceBusy();
        if (!blkPollScheduled_) {
            blkPollScheduled_ = true;
            Ticks cadence = std::max(l1BlkWorker_.freeAt() - m.now(),
                                     usec(10));
            m.events().scheduleIn(cadence, [this] {
                blkPollScheduled_ = false;
                vhostBlkPoll();
            }, "vhost-blk-poll");
        }
    }
}

void
VirtioBlkStack::onDiskComplete(std::uint64_t id)
{
    // Event context: host storage completion interrupt.
    l0Backlog_.push_back(id);
    stack_.raiseHostIrq(vec::hostDisk);
}

void
VirtioBlkStack::l0DiskIrq()
{
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    while (!l0Backlog_.empty()) {
        std::uint64_t id = l0Backlog_.front();
        l0Backlog_.pop_front();
        m.consume(c.vhostPerBuffer);
        auto it = inflight_.find(id);
        simAssert(it != inflight_.end(), "unknown blk completion");
        l1Compl_.complete(
            VirtioBuffer{id, it->second.bytes, it->second.lba, true});
        stack_.raiseL1Irq(vec::l1VirtioBlk);
    }
}

void
VirtioBlkStack::l1BlkIrq()
{
    // L1 context: complete its own virtio request, copy data back
    // through the page cache, complete L2's request.
    GuestApi &l1 = stack_.apiAt(1);
    const CostModel &c = stack_.machine().costs();
    VirtioBuffer buf;
    while (l1Compl_.popUsed(buf)) {
        l1.compute(c.vhostPerBuffer +
                   static_cast<Ticks>(buf.bytes) * c.diskCopyPerByte);
        for (int i = 0; i < c.l1IoBackendTraps; ++i)
            l1.wrmsr(msr::ia32X2apicEoi, 0);
        l2Compl_.complete(buf);
        stack_.raiseL2Irq(vec::l2VirtioBlk);
    }
}

void
VirtioBlkStack::l2BlkIrq()
{
    const CostModel &c = stack_.machine().costs();
    GuestApi &l2 = stack_.apiAt(2);
    VirtioBuffer buf;
    while (l2Compl_.popUsed(buf)) {
        // Guest block layer completion path.
        l2.compute(c.blockLayerPerRequest / 2);
        ++completed_;
        inflight_.erase(buf.id);
        if (completionHandler_)
            completionHandler_(buf.id);
    }
}

} // namespace svtsim
