#include "io/virtio_blk.h"

#include <algorithm>
#include <string>

#include "hv/vectors.h"
#include "sim/log.h"

namespace svtsim {

namespace {

/** Queue-suffixed counter prefix; single-queue keeps the legacy
 *  names ("l2.blk.q", "l2.blk.compl"). */
std::string
qname(const char *base, int q, int queues)
{
    if (queues == 1)
        return base;
    return std::string(base) + ".q" + std::to_string(q);
}

} // namespace

VirtioBlkStack::VirtioBlkStack(VirtStack &stack, RamDisk &disk)
    : stack_(stack), disk_(disk),
      queues_(stack.config().virtioQueues),
      l1Compl_(stack.machine(), "l1.blk.compl")
{
    Machine &m = stack_.machine();
    const StackConfig &cfg = stack_.config();
    for (int q = 0; q < queues_; ++q) {
        qs_.push_back(std::make_unique<BlkQueue>(
            m, qname("l2.blk.q", q, queues_),
            qname("l2.blk.compl", q, queues_)));
        coalesce_.push_back(std::make_unique<IrqCoalescer>(
            m, qname("l2.blk.compl", q, queues_) + ".coalesce",
            cfg.virtioCoalesceCount, cfg.virtioCoalesceTimeout,
            [this] { stack_.raiseL2Irq(vec::l2VirtioBlk); }));
    }
    pollRearmMetric_ = m.metrics().counter(
        MetricScope::Machine, "virtio", "blk.poll_rearm");
    stack_.l1Hv().registerMmio(
        ioaddr::l2BlkDoorbell,
        static_cast<std::uint64_t>(queues_) * pageSize,
        [this](Gpa addr, int size, std::uint64_t value,
               bool is_write) {
            int q = static_cast<int>((addr - ioaddr::l2BlkDoorbell) /
                                     pageSize);
            return l1VhostBlk(q, addr, size, value, is_write);
        });
    // L1's own virtio-blk doorbell is kicked by L1's I/O thread from
    // a different vCPU; register a no-op for completeness.
    stack_.registerL0Mmio(
        ioaddr::l1BlkDoorbell, pageSize,
        [](Gpa, int, std::uint64_t, bool) -> std::uint64_t {
            return 0;
        });
    disk_.setCompletionHandler(
        [this](std::uint64_t id) { onDiskComplete(id); });

    stack_.setIrqHandler(0, vec::hostDisk, [this] { l0DiskIrq(); });
    stack_.setIrqHandler(1, vec::l1VirtioBlk, [this] { l1BlkIrq(); });
    stack_.setIrqHandler(2, vec::l2VirtioBlk, [this] { l2BlkIrq(); });
}

void
VirtioBlkStack::setCompletionHandler(
    std::function<void(std::uint64_t)> fn)
{
    completionHandler_ = std::move(fn);
}

void
VirtioBlkStack::submit(std::uint64_t id, std::uint64_t lba,
                       std::uint32_t bytes, bool write)
{
    GuestApi &l2 = stack_.apiAt(2);
    inflight_[id] = Request{lba, bytes, write};
    int q = static_cast<int>(id % static_cast<std::uint64_t>(queues_));
    bool kick = qs_[static_cast<std::size_t>(q)]->ring.post(
        VirtioBuffer{id, bytes, lba, !write});
    if (kick)
        l2.mmioWrite(ioaddr::l2BlkDoorbell +
                         static_cast<Gpa>(q) * pageSize,
                     4, 1);
}

std::uint64_t
VirtioBlkStack::l1VhostBlk(int q, Gpa, int, std::uint64_t, bool)
{
    // Runs in L1 context inside the reflected kick. KVM's side only
    // signals the backend; the filesystem work on L2's image file
    // (a file in L1's ramfs) happens on L1's I/O thread, which runs
    // on a different vCPU.
    if (q < 0 || q >= queues_)
        panic("virtio-blk doorbell for queue %d of %d", q, queues_);
    GuestApi &l1 = stack_.apiAt(1);
    l1.compute(nsec(400)); // eventfd signal
    vhostBlkPoll(q);
    return 0;
}

void
VirtioBlkStack::vhostBlkPoll(int q)
{
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    BlkQueue &bq = *qs_[static_cast<std::size_t>(q)];
    VirtioBuffer buf;
    bool drained_any = false;
    while (bq.ring.takeQuiet(buf)) {
        drained_any = true;
        auto it = inflight_.find(buf.id);
        simAssert(it != inflight_.end(), "unknown blk request");
        const Request &req = it->second;
        // L1's file backend: block layer + page-cache copy.
        Ticks fs = c.blockLayerPerRequest +
                   static_cast<Ticks>(req.bytes) * c.diskCopyPerByte;
        if (req.write)
            fs += c.blockWriteSurcharge;
        Ticks l1_done = bq.l1Worker.completeAt(
            m.now() + c.l1IoThreadWake, fs);
        // L0's vhost-blk picks the request off L1's own virtio disk
        // (the kick there comes from L1's I/O thread, not from the
        // measured vCPU) and hands it to the ramdisk.
        Ticks l0_done =
            l0BlkWorker_.completeAt(l1_done, c.vhostPerBuffer);
        std::uint64_t id = buf.id;
        std::uint64_t lba = req.lba;
        std::uint32_t bytes = req.bytes;
        bool write = req.write;
        m.events().schedule(l0_done, [this, id, lba, bytes, write] {
            disk_.submit(id, lba, bytes, write);
        }, "vhost-blk");
    }
    if (drained_any)
        bq.lastDrain = m.now();
    bool pipeline_busy = bq.l1Worker.freeAt() > m.now();
    bool lingering = m.now() - bq.lastDrain <= c.vhostLingerPoll;
    bool repoll = pipeline_busy || lingering;
    if (!repoll && !bq.ring.availEmpty()) {
        // Idle-tick guard: a request posted at the exact tick the
        // worker drained the ring empty would otherwise be stranded
        // (its kick was suppressed while we ran).
        repoll = true;
        pollRearmMetric_.inc();
    }
    if (repoll) {
        bq.ring.deviceBusy();
        if (!bq.pollScheduled) {
            bq.pollScheduled = true;
            Ticks cadence = std::max(bq.l1Worker.freeAt() - m.now(),
                                     usec(10));
            m.events().scheduleIn(cadence, [this, q] {
                qs_[static_cast<std::size_t>(q)]->pollScheduled =
                    false;
                vhostBlkPoll(q);
            }, "vhost-blk-poll");
        }
    }
}

void
VirtioBlkStack::onDiskComplete(std::uint64_t id)
{
    // Event context: host storage completion interrupt.
    l0Backlog_.push_back(id);
    stack_.raiseHostIrq(vec::hostDisk);
}

void
VirtioBlkStack::l0DiskIrq()
{
    Machine &m = stack_.machine();
    const CostModel &c = m.costs();
    while (!l0Backlog_.empty()) {
        std::uint64_t id = l0Backlog_.front();
        l0Backlog_.pop_front();
        m.consume(c.vhostPerBuffer);
        auto it = inflight_.find(id);
        simAssert(it != inflight_.end(), "unknown blk completion");
        l1Compl_.complete(
            VirtioBuffer{id, it->second.bytes, it->second.lba, true});
        stack_.raiseL1Irq(vec::l1VirtioBlk);
    }
}

void
VirtioBlkStack::l1BlkIrq()
{
    // L1 context: complete its own virtio request, copy data back
    // through the page cache, complete L2's request.
    GuestApi &l1 = stack_.apiAt(1);
    const CostModel &c = stack_.machine().costs();
    VirtioBuffer buf;
    bool any = false;
    while (l1Compl_.popUsed(buf)) {
        l1.compute(c.vhostPerBuffer +
                   static_cast<Ticks>(buf.bytes) * c.diskCopyPerByte);
        auto q = static_cast<std::size_t>(
            buf.id % static_cast<std::uint64_t>(queues_));
        qs_[q]->complq.complete(buf);
        coalesce_[q]->note();
        any = true;
    }
    if (any) {
        ++l1IrqBatches_;
        // L1-grade sensitive housekeeping per *interrupt* (its own
        // EOI, irqfd signalling, TPR updates). Charging this inside
        // the completion loop double-billed the EOI per buffer and
        // inflated l0.exit.WRMSR whenever a batch carried more than
        // one completion.
        for (int i = 0; i < c.l1IoBackendTraps; ++i)
            l1.wrmsr(msr::ia32X2apicEoi, 0);
    }
}

void
VirtioBlkStack::l2BlkIrq()
{
    const CostModel &c = stack_.machine().costs();
    GuestApi &l2 = stack_.apiAt(2);
    VirtioBuffer buf;
    for (auto &bq : qs_) {
        while (bq->complq.popUsed(buf)) {
            // Guest block layer completion path.
            l2.compute(c.blockLayerPerRequest / 2);
            ++completed_;
            inflight_.erase(buf.id);
            if (completionHandler_)
                completionHandler_(buf.id);
        }
    }
}

} // namespace svtsim
