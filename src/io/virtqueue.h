/**
 * @file
 * Virtqueue: the descriptor ring abstraction shared by the virtio
 * device models (split-ring semantics, EVENT_IDX-style notification
 * suppression).
 */

#ifndef SVTSIM_IO_VIRTQUEUE_H
#define SVTSIM_IO_VIRTQUEUE_H

#include <cstdint>
#include <deque>

#include "arch/machine.h"

namespace svtsim {

/** One buffer travelling through a virtqueue. */
struct VirtioBuffer
{
    /** Caller-chosen identifier (request id, packet id). */
    std::uint64_t id = 0;
    /** Payload length in bytes. */
    std::uint32_t bytes = 0;
    /** Opaque payload word (sector number, flags, ...). */
    std::uint64_t payload = 0;
    /** Whether the device writes the buffer (reads/rx) or reads it. */
    bool deviceWrites = false;
};

/**
 * A split virtqueue: the driver posts buffers to the available ring
 * and the device returns them on the used ring.
 *
 * Notification suppression follows the virtio EVENT_IDX scheme in
 * spirit: the driver needs to notify (kick) only when the device has
 * drained the available ring; batched submissions ride on one kick,
 * which is what keeps the exit count per byte low in the bandwidth
 * workloads (Figure 7).
 */
class Virtqueue
{
  public:
    /**
     * @param machine Cost accounting.
     * @param name Diagnostic/counter prefix, e.g. "l2.net.tx".
     * @param size Ring capacity.
     */
    Virtqueue(Machine &machine, std::string name,
              std::size_t size = 256);

    const std::string &name() const { return name_; }

    // -- Driver side --------------------------------------------------
    /**
     * Post a buffer on the available ring (descriptor write costs).
     * A full available ring back-pressures the producer: the driver
     * is charged CostModel::ringFullWait (spinning until the device
     * frees a slot) and the `<name>.full` counter increments; the
     * buffer is never lost. A FaultSite::VirtioBackpressure injection
     * forces the same stall on a non-full ring.
     * @return True if the device must be notified (kick needed);
     *         false while the device is still processing the ring.
     */
    bool post(const VirtioBuffer &buf);

    /** Pop one completion off the used ring (null if empty). */
    bool popUsed(VirtioBuffer &out);

    bool usedEmpty() const { return used_.empty(); }
    bool usedFull() const { return used_.size() >= size_; }

    // -- Device side --------------------------------------------------
    /** Device takes the next available buffer. */
    bool take(VirtioBuffer &out);

    /**
     * Cost-free variant of take() for event-context device workers
     * (their per-buffer time is modeled by the worker's service time,
     * and event handlers must not consume vCPU time).
     */
    bool takeQuiet(VirtioBuffer &out);

    bool availEmpty() const { return avail_.empty(); }
    std::size_t availDepth() const { return avail_.size(); }

    /** Device returns a processed buffer on the used ring. */
    void complete(const VirtioBuffer &buf);

    /** Cost-free variant of complete() for event-context workers. */
    void completeQuiet(const VirtioBuffer &buf);

    /** Device marks itself idle: the next post() requires a kick. */
    void deviceIdle() { deviceRunning_ = false; }

    /** Device declares it will keep polling the ring (EVENT_IDX-style
     *  kick suppression while the backend pipeline is busy). */
    void deviceBusy() { deviceRunning_ = true; }

    /** Whether the device still claims the ring (the next post() is
     *  kick-suppressed). Device backends use this to verify the
     *  no-stall invariant: a non-empty avail ring with the device
     *  idle means a lost kick. */
    bool deviceRunning() const { return deviceRunning_; }

    // -- Statistics ------------------------------------------------------
    std::uint64_t postedCount() const { return posted_; }
    std::uint64_t kicksNeeded() const { return kicks_; }
    std::uint64_t fullCount() const { return full_; }

  private:
    /** Update the avail-depth gauge and mirror it as a trace counter. */
    void noteAvailDepth();

    Machine &machine_;
    std::string name_;
    std::size_t size_;
    std::deque<VirtioBuffer> avail_;
    std::deque<VirtioBuffer> used_;
    bool deviceRunning_ = false;
    std::uint64_t posted_ = 0;
    std::uint64_t kicks_ = 0;
    std::uint64_t full_ = 0;
    Counter postedMetric_;
    Counter kicksMetric_;
    Counter fullMetric_;
    Gauge availDepthMetric_;
};

} // namespace svtsim

#endif // SVTSIM_IO_VIRTQUEUE_H
