/**
 * @file
 * Time/count-based completion-interrupt coalescing for the vhost
 * pipelines (exit-elision ladder rung 2).
 */

#ifndef SVTSIM_IO_IRQ_COALESCER_H
#define SVTSIM_IO_IRQ_COALESCER_H

#include <cstdint>
#include <functional>
#include <string>

#include "arch/machine.h"

namespace svtsim {

/**
 * Per-queue interrupt coalescer: the device backend calls note() once
 * per completion pushed to the used ring, and the coalescer invokes
 * the fire callback (which raises the guest IRQ) when either
 *
 *  - `count` completions are pending (count threshold), or
 *  - `timeout` has elapsed since the first undelivered completion
 *    (the timer is a one-shot event on the machine's queue).
 *
 * Determinism: the timer is an ordinary simulated event, so firing
 * order is part of the event-queue total order — coalescing produces
 * byte-identical schedules for any worker count. A count-threshold
 * fire intentionally leaves an armed timer in place; it later fires
 * with an empty batch and does nothing except bump the
 * `<name>.empty_timer` counter (re-arming on every fire would make
 * the hot path pay a deschedule per batch for no modeled benefit —
 * real NICs show the same spurious-timer behavior).
 *
 * count <= 1 with timeout == 0 degenerates to an interrupt per
 * completion (the ladder's baseline).
 */
class IrqCoalescer
{
  public:
    /**
     * @param machine Event queue + metrics.
     * @param name Counter prefix, e.g. "l2.net.rx.q0.coalesce".
     * @param count Completions per interrupt (>= 1).
     * @param timeout Max delay from first undelivered completion
     *        (0 disables the timer; count must then be 1).
     * @param fire Raises the guest interrupt.
     */
    IrqCoalescer(Machine &machine, std::string name, int count,
                 Ticks timeout, std::function<void()> fire);

    ~IrqCoalescer();

    IrqCoalescer(const IrqCoalescer &) = delete;
    IrqCoalescer &operator=(const IrqCoalescer &) = delete;

    /** One completion is ready for the guest; maybe fire. */
    void note();

    /** Completions noted but not yet delivered by a fire. */
    int pending() const { return pending_; }

    bool timerArmed() const { return timer_ != invalidEventId; }

  private:
    void onTimer();
    void fireNow();

    Machine &machine_;
    std::string name_;
    int count_;
    Ticks timeout_;
    std::function<void()> fire_;
    int pending_ = 0;
    EventId timer_ = invalidEventId;
    Counter countFireMetric_;
    Counter timerFireMetric_;
    Counter emptyTimerMetric_;
    Counter notedMetric_;
    LatencyHistogram batchMetric_;
};

} // namespace svtsim

#endif // SVTSIM_IO_IRQ_COALESCER_H
