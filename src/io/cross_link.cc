#include "io/cross_link.h"

#include <algorithm>
#include <cmath>

#include "sim/compiler.h"
#include "sim/fault.h"
#include "sim/log.h"

namespace svtsim {

CrossLink::CrossLink(Machine &a, int idA, Machine &b, int idB,
                     Ticks latency, double bits_per_sec)
    : latency_(latency), bitsPerSec_(std::llround(bits_per_sec))
{
    if (bitsPerSec_ <= 0)
        fatal("CrossLink requires a positive link rate");
    if (latency <= 0)
        fatal("CrossLink requires a positive latency "
              "(it is the conservative lookahead)");
    dirs_[0] = Direction{&a, &b, idA, idB, 0, 0, 0, {}, {}};
    dirs_[1] = Direction{&b, &a, idB, idA, 0, 0, 0, {}, {}};
    ports_[0].link_ = this;
    ports_[0].outDir_ = 0;
    ports_[1].link_ = this;
    ports_[1].outDir_ = 1;
}

NetPort &
CrossLink::port(int end)
{
    simAssert(end == 0 || end == 1, "CrossLink::port bad end");
    return ports_[end];
}

void
CrossLink::stageSend(int dirIdx, const NetPacket &pkt)
{
    // Runs on the sending machine's executing thread, inside its
    // epoch window: only src-side state is touched; nothing crosses
    // to the destination queue until the barrier merge.
    Direction &dir = dirs_[dirIdx];
    const Ticks now = dir.src->now();
    const Ticks start = std::max(now, dir.freeAt);
    const Ticks done =
        start + netlink::serializationTicks(pkt.bytes, bitsPerSec_);
    dir.freeAt = done;
    Ticks arrival = done + latency_;
    if (FaultInjector *faults = dir.src->events().faultInjector();
        SVTSIM_UNLIKELY(faults != nullptr))
        arrival += faults->delay(FaultSite::VirtioCompletionDelay);
    dir.staged.push_back(Delivery{arrival, dir.srcId, dir.dstId,
                                  dir.sendSeq++, pkt, this, dirIdx});
}

void
CrossLink::drainStaged(std::vector<Delivery> &out)
{
    for (Direction &dir : dirs_) {
        out.insert(out.end(), dir.staged.begin(), dir.staged.end());
        dir.staged.clear();
    }
}

void
CrossLink::deliver(const Delivery &d)
{
    Direction *dir = &dirs_[d.dir];
    if (!dir->handler)
        panic("CrossLink: delivery with no receive handler at the "
              "destination end");
    if (d.arrival < dir->dst->now())
        panic("CrossLink: staged arrival %lld is in the destination's "
              "past (now=%lld) — lookahead/horizon bug",
              static_cast<long long>(d.arrival),
              static_cast<long long>(dir->dst->now()));
    // The closure holds a Direction pointer plus the packet (fits the
    // inline EventClosure buffer); the handler is invoked in place,
    // never copied per delivery.
    dir->dst->events().schedule(d.arrival, [dir, pkt = d.pkt] {
        ++dir->delivered;
        dir->handler(pkt);
    }, "cross-link");
}

void
CrossLink::deliverStaged()
{
    std::vector<Delivery> all;
    drainStaged(all);
    std::stable_sort(all.begin(), all.end(), canonicalLess);
    for (const Delivery &d : all)
        deliver(d);
}

} // namespace svtsim
