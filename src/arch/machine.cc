#include "arch/machine.h"

#include <limits>

#include "sim/compiler.h"
#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

namespace {

/** Sentinel for "no trace span was opened for this scope". */
constexpr std::size_t noTraceSpan =
    std::numeric_limits<std::size_t>::max();

/** Attribution scope names map onto trace categories by prefix. */
TraceCategory
scopeCategory(const std::string &name)
{
    if (name.rfind("stage.", 0) == 0)
        return TraceCategory::Stage;
    if (name.rfind("exit.", 0) == 0)
        return TraceCategory::Exit;
    return TraceCategory::Sim;
}

} // namespace

Machine::Machine(MachineTopology topo, CostModel costs,
                 std::uint64_t seed)
    : topo_(topo), costs_(costs), rng_(seed), seed_(seed)
{
    if (topo_.numaNodes < 1 || topo_.coresPerNode < 1 ||
        topo_.threadsPerCore < 1) {
        fatal("Machine topology must have at least one of everything");
    }
    int id = 0;
    for (int node = 0; node < topo_.numaNodes; ++node) {
        for (int c = 0; c < topo_.coresPerNode; ++c) {
            cores_.push_back(std::make_unique<SmtCore>(
                eq_, costs_, id++, topo_.threadsPerCore, node,
                SmtCore::defaultPrfSize, &metrics_));
        }
    }
}

SmtCore &
Machine::core(int i)
{
    if (i < 0 || i >= numCores())
        panic("Machine::core index %d out of range", i);
    return *cores_[static_cast<std::size_t>(i)];
}

void
Machine::consume(Ticks t)
{
    if (SVTSIM_UNLIKELY(t < 0))
        panic("Machine::consume negative time");
    if (t == 0)
        return;
    for (const auto &scope : scopeStack_)
        buckets_[scope] += t;
    if (TraceSink *sink = eq_.traceSink(); SVTSIM_UNLIKELY(sink != nullptr))
        sink->attribute(t);
    eq_.advanceBy(t);
}

void
Machine::idleUntil(Ticks when)
{
    // idleTo() may return early under a cluster AdvanceGate (with
    // now() < when), so idle time is attributed from the actual
    // distance advanced, keeping the trace conservation check exact.
    const Ticks before = now();
    eq_.idleTo(when);
    if (TraceSink *sink = eq_.traceSink(); SVTSIM_UNLIKELY(sink != nullptr))
        sink->attributeIdle(now() - before);
}

void
Machine::pushScope(const std::string &name)
{
    scopeStack_.push_back(name);
    TraceSink *sink = eq_.traceSink();
    scopeSpans_.push_back(sink && sink->enabled()
                              ? sink->beginSpan(scopeCategory(name), name)
                              : noTraceSpan);
}

void
Machine::popScope()
{
    if (scopeStack_.empty())
        panic("Machine::popScope with no open scope");
    if (scopeSpans_.back() != noTraceSpan) {
        if (TraceSink *sink = eq_.traceSink())
            sink->endSpan(scopeSpans_.back());
    }
    scopeSpans_.pop_back();
    scopeStack_.pop_back();
}

Ticks
Machine::scopeTotal(const std::string &name) const
{
    auto it = buckets_.find(name);
    return it == buckets_.end() ? 0 : it->second;
}

void
Machine::resetAttribution()
{
    buckets_.clear();
}

void
Machine::count(const std::string &key, std::uint64_t n)
{
    metrics_.addByName(key, n);
}

std::uint64_t
Machine::counter(const std::string &key) const
{
    return metrics_.counterValue(key);
}

void
Machine::installFaultPlan(const FaultPlan &plan)
{
    faults_ = std::make_unique<FaultInjector>(plan, seed_);
    for (std::size_t i = 0; i < numFaultSites; ++i) {
        faultMetric_[i] = metrics_.counter(
            MetricScope::Machine, "fault",
            std::string("fault.injected.") +
                faultSiteName(static_cast<FaultSite>(i)));
    }
    faults_->setOnInject([this](FaultSite site) {
        faultMetric_[static_cast<std::size_t>(site)].inc();
        if (TraceSink *sink = eq_.traceSink()) {
            sink->instant(TraceCategory::Sim,
                          std::string("fault.") + faultSiteName(site));
        }
    });
    eq_.setFaultInjector(faults_.get());
}

MetricsSnapshot
Machine::snapshotMetrics() const
{
    MetricsSnapshot snap = metrics_.snapshot();
    snap.scopes.assign(buckets_.begin(), buckets_.end());
    return snap;
}

} // namespace svtsim
