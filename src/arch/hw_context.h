/**
 * @file
 * Architectural state of one SMT hardware context.
 */

#ifndef SVTSIM_ARCH_HW_CONTEXT_H
#define SVTSIM_ARCH_HW_CONTEXT_H

#include <cstdint>
#include <unordered_map>

#include "arch/phys_reg_file.h"
#include "arch/regs.h"

namespace svtsim {

/**
 * One hardware thread's worth of architectural state: GPRs (through the
 * core's shared physical register file), RIP/RFLAGS, control registers
 * and an MSR map. Permission/cost semantics live in higher layers
 * (SmtCore, VmxEngine); this class is raw storage.
 */
class HwContext
{
  public:
    /**
     * @param prf The owning core's physical register file.
     * @param index Context number within the core.
     */
    HwContext(PhysRegFile &prf, int index);

    int index() const { return index_; }

    // -- General-purpose registers (shared physical storage) ---------
    std::uint64_t readGpr(Gpr reg) const { return rename_.read(reg); }
    void writeGpr(Gpr reg, std::uint64_t v) { rename_.write(reg, v); }
    PhysReg physOf(Gpr reg) const { return rename_.physOf(reg); }

    // -- Special registers --------------------------------------------
    std::uint64_t rip = 0;
    std::uint64_t rflags = 0x2;

    std::uint64_t readCr(Ctrl cr) const;
    void writeCr(Ctrl cr, std::uint64_t v);

    /** Raw MSR read; unset MSRs read as zero. */
    std::uint64_t rdmsr(std::uint32_t index) const;
    void wrmsr(std::uint32_t index, std::uint64_t v);

    // -- Thread state --------------------------------------------------
    /** Whether the fetch unit is stalled for this context (SVt thread
     *  stall, or mwait). */
    bool stalled = false;

    /** Copy the full architectural register state from another
     *  context (used by tests and by eager state loads). */
    void copyArchStateFrom(const HwContext &other);

  private:
    int index_;
    RenameMap rename_;
    std::uint64_t crs_[numCtrls] = {};
    std::unordered_map<std::uint32_t, std::uint64_t> msrs_;
};

} // namespace svtsim

#endif // SVTSIM_ARCH_HW_CONTEXT_H
