/**
 * @file
 * Per-operation timing parameters for the machine model.
 *
 * Every simulated hardware or software step consumes time through one of
 * these constants. The defaults are calibrated (see
 * tests/calibration_test.cc and bench/table1_breakdown.cc) so that the
 * six stages of the paper's Table 1 land on the measured values for a
 * cpuid round trip in a nested VM (10.40 us total on 2x Xeon E5-2630v3).
 * All other experiments reuse the same constants; there is no
 * per-benchmark tuning of trap costs.
 */

#ifndef SVTSIM_ARCH_COST_MODEL_H
#define SVTSIM_ARCH_COST_MODEL_H

#include "sim/ticks.h"

namespace svtsim {

/**
 * Calibrated per-operation costs.
 *
 * Units are Ticks (picoseconds); the helpers in sim/ticks.h (nsec/usec)
 * keep call sites readable.
 */
struct CostModel
{
    /** Core frequency, GHz (Table 4: Xeon E5-2630v3 @ 2.4 GHz). */
    double freqGhz = 2.4;

    /** One core cycle. */
    Ticks cycle() const { return svtsim::cycles(1, freqGhz); }

    // ---- Plain execution -------------------------------------------
    /** Native (unvirtualized) execution of a cpuid instruction.
     *  Table 1 row 0: 0.05 us of L2 time per iteration. */
    Ticks cpuidExec = nsec(50);
    /** One dependent register ALU operation. */
    Ticks regOp = nsec(0.42);
    /** L1-hit memory access (load or store). */
    Ticks memAccess = nsec(1.5);
    /** Last-level-cache hit. */
    Ticks llcAccess = nsec(15);
    /** DRAM access. */
    Ticks dramAccess = nsec(80);
    /** Native (unvirtualized) MSR access. */
    Ticks msrNative = nsec(35);

    // ---- Hardware VM transition costs ------------------------------
    /** VM exit microcode: squash, save guest state to the VMCS and
     *  load minimal host state. */
    Ticks vmExitHw = nsec(300);
    /** VM entry microcode: validity checks plus guest-state load. */
    Ticks vmEntryHw = nsec(330);
    /** Software save of one GPR in the trap thunk. */
    Ticks thunkRegSave = nsec(6);
    /** Software restore of one GPR in the resume thunk. */
    Ticks thunkRegRestore = nsec(6);
    /** GPRs saved/restored by the hypervisor assembly thunk. */
    int thunkRegs = 15;
    /** Per-MSR cost of switching hypervisor-grade state when entering
     *  or leaving an L1 that is itself a hypervisor (MSR load lists,
     *  CR state, segment caches). Explains why the L0<->L1 switch
     *  (Table 1 row 4, 1.40 us) costs more than L0<->L2 (row 1). */
    Ticks msrSwitch = nsec(29.5);
    /** Number of MSRs on the hypervisor-state switch lists. */
    int msrSwitchCount = 10;

    // ---- VMX instruction costs (executed by a hypervisor) ----------
    /** vmread from the current (hardware) VMCS. */
    Ticks vmread = nsec(45);
    /** vmwrite to the current (hardware) VMCS. */
    Ticks vmwrite = nsec(17);
    /** vmread/vmwrite satisfied by the shadow VMCS (no trap). */
    Ticks vmShadowAccess = nsec(10);
    /** vmptrld: making a VMCS current. */
    Ticks vmptrld = nsec(130);
    /** In-memory copy of one cached VMCS field (KVM keeps software
     *  copies of vmcs12; transforms are memory-to-memory). */
    Ticks vmcsFieldCopy = nsec(5);
    /** Surcharge for transforming a field that holds a guest-physical
     *  address (walk + translate + validate). */
    Ticks vmcsFieldXlate = nsec(70);
    /** Fixed overhead per transform pass (function setup, dirty
     *  tracking). */
    Ticks vmcsXformFixed = nsec(56);

    // ---- Hypervisor software path costs ----------------------------
    /** Exit-reason decode and handler dispatch in the hypervisor. */
    Ticks handlerDispatch = nsec(150);
    /** Deciding whether an exit must be reflected to L1 (checks of
     *  vmcs12 exec controls). */
    Ticks nestedExitCheck = nsec(400);
    /** Bookkeeping of the emulated virtualization state machine in L0
     *  (per reflected exit; the bulk of Table 1 row 3). */
    Ticks nestedStateMachine = nsec(2380);
    /** Injecting one value of the trap context (a register or an exit
     *  info field) into the L1-visible state by vmread-from-vmcs02 +
     *  store. Elidable under HW SVt (becomes ctxtRegAccess). */
    Ticks lazySyncValue = nsec(62);
    /** Number of values synced per reflected exit (15 GPRs plus the
     *  exit-information fields). */
    int lazySyncValues = 25;
    /** Emulating one trapped vmread/vmwrite in L0 (lookup in vmcs12
     *  plus permission checks). */
    Ticks emulVmcsAccess = nsec(100);
    /** Emulating a cpuid in a hypervisor handler (table lookup and
     *  feature masking). */
    Ticks emulCpuid = nsec(150);
    /** Emulating an MSR access (capability checks, bitmap lookup). */
    Ticks emulMsr = nsec(250);
    /** Instruction decode for MMIO emulation (fetch + decode of the
     *  faulting instruction from guest memory). */
    Ticks mmioDecode = nsec(450);
    /** Fixed handler-logic cost of the L1 cpuid handler beyond its
     *  VMCS accesses (Table 1 row 5 residue). */
    Ticks l1HandlerLogic = nsec(55);

    // ---- Interrupts -------------------------------------------------
    /** Delivering an interrupt through the IDT to a handler. */
    Ticks interruptDeliver = nsec(200);
    /** Latency of an IPI between hardware contexts. */
    Ticks ipiLatency = nsec(500);
    /** APIC EOI write. */
    Ticks eoiWrite = nsec(80);
    /** Software cost of preparing event injection (filling the
     *  VM-entry interruption-information field and checks). */
    Ticks injectPrepare = nsec(350);
    /** Posted-interrupt recognition: the notification microcode scans
     *  the posted-interrupt descriptor and merges PIR bits into the
     *  running guest's IRR without a VM exit. */
    Ticks postedIntrNotify = nsec(180);
    /** x2APIC-virtualized EOI write: the store is satisfied from the
     *  virtual-APIC page in microcode, no trap. */
    Ticks virtApicEoi = nsec(50);

    // ---- SVt hardware (Table 2 machinery) ---------------------------
    /** Thread stall + fetch retarget on an SVt trap/resume: squash of
     *  in-flight instructions only; no state movement. */
    Ticks svtSwitch = nsec(20);
    /** One ctxtld/ctxtst cross-context register access (rename-map
     *  indexed physical register file read/write). */
    Ticks ctxtRegAccess = nsec(2);
    /** Loading the SVt_* VMCS fields into the per-core u-registers at
     *  vmptrld (three field reads). */
    Ticks svtFieldLoad = nsec(6);

    // ---- SW SVt channel / wait mechanisms (Section 5.2, 6.1) -------
    /** Posting a command descriptor to a ring (few stores + flag). */
    Ticks ringPost = nsec(60);
    /** Copying one payload value into/out of a command (the GPRs and
     *  trap info travel with the command in SW SVt). */
    Ticks ringPayloadValue = nsec(12);
    /** monitor setup on a cache line. */
    Ticks monitorSetup = nsec(40);
    /** mwait wake when the writer is the SMT sibling (C1 exit plus
     *  pipeline refill; the line is already in the shared L1D). */
    Ticks mwaitWakeSmt = nsec(260);
    /** mwait wake from a different core on the same NUMA node. */
    Ticks mwaitWakeCore = nsec(900);
    /** mwait wake across NUMA nodes (order of magnitude worse,
     *  Section 6.1). */
    Ticks mwaitWakeNuma = nsec(6500);
    /** Busy-poll observation latency for an SMT sibling's store. */
    Ticks pollLatencySmt = nsec(80);
    /** Busy-poll observation latency, same NUMA different core. */
    Ticks pollLatencyCore = nsec(220);
    /** Busy-poll observation latency across NUMA nodes. */
    Ticks pollLatencyNuma = nsec(2400);
    /** Fraction of the sibling's execution slots a busy-polling SMT
     *  thread steals (Section 6.1: polling overheads grow with the
     *  workload under SMT). */
    double pollSmtSlowdown = 0.28;
    /** Mutex (futex) wake: syscall + scheduler + wakeup IPI. */
    Ticks mutexWake = nsec(2600);
    /** Mutex fast-path spin window before sleeping. */
    Ticks mutexSpinWindow = nsec(700);
    /** Producer-side wait when a command ring (or virtqueue) is full:
     *  the producer spins until the consumer frees a slot. Charged
     *  once per back-pressured post. */
    Ticks ringFullWait = usec(1);

    // ---- I/O building blocks ----------------------------------------
    /** Writing one virtqueue descriptor (few cache lines). */
    Ticks virtqueueDescriptor = nsec(120);
    /** Device-side processing of one virtio buffer (vhost worker). */
    Ticks vhostPerBuffer = nsec(900);
    /** Host NIC processing (DMA + driver) per packet. */
    Ticks nicPerPacket = nsec(1200);
    /** One-way wire latency between the two testbed machines. */
    Ticks wireLatency = usec(4.5);
    /** Physical link bandwidth, bits per second (Table 4: 10 GbE). */
    double linkBitsPerSec = 10e9;
    /** Per-byte copy cost through the paravirtual network stack. */
    Ticks netCopyPerByte = psec(85);
    /** Guest TCP/IP stack cost per segment (send or receive). */
    Ticks tcpStackPerSegment = usec(2.4);
    /** Remote (bare-metal) netperf peer turnaround time. */
    Ticks remotePeerTurnaround = usec(3.0);
    /** L1 filesystem + block layer cost per request (ramfs-backed
     *  virtio disk, Table 4). */
    Ticks blockLayerPerRequest = usec(2.1);
    /** Extra filesystem work for a write request (journalling and
     *  page dirtying on the ramfs backing store). */
    Ticks blockWriteSurcharge = usec(3.4);
    /** Data copy per byte for disk requests (two copies: guest ring
     *  to L1 page cache to backing store). */
    Ticks diskCopyPerByte = psec(160);

    // ---- Nested I/O trap structure ----------------------------------
    /** Non-shadowable VMCS accesses the L1 KVM performs per L2 I/O
     *  exit on top of the common housekeeping (interrupt state, TPR
     *  threshold, pending events). Each is an extra L1->L0 trap in
     *  the baseline; Section 2.3: "L1 handlers for other types of
     *  traps trigger many more traps into L0". */
    int l1IoExtraVmcsTraps = 10;
    /** L1-internal wakeup of the userspace/vhost I/O thread per kick
     *  (scheduler + context switch inside L1; no exit). */
    Ticks l1IoThreadWake = usec(2.0);
    /** L1-grade sensitive ops (EOI, irq bookkeeping) per *interrupt
     *  batch* handled by L1's device backend (one batch may carry many
     *  packets/completions; the EOI is per interrupt, not per buffer). */
    int l1IoBackendTraps = 5;
    /** Non-shadowable VMCS accesses per event injection into L2
     *  (interrupt-window request, pending-event rollback). */
    int l1InjectExtraVmcsTraps = 4;
    /** Guest-side (L2) syscall + filesystem path per disk request. */
    Ticks guestBlockSyscall = usec(5);
    /** vhost-net busy-poll window after draining a tx ring
     *  (busyloop_timeout): bulk senders rarely pay doorbell kicks. */
    Ticks vhostLingerPoll = usec(50);
    /** SW SVt: how much L1-vCPU housekeeping can overlap one
     *  SVt-thread exit-handling window (Section 6.3's "less noisy"
     *  latencies); the excess spills onto the measured path. */
    Ticks swSvtOverlapWindow = usec(60);
};

} // namespace svtsim

#endif // SVTSIM_ARCH_COST_MODEL_H
