#include "arch/lapic.h"

#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

Lapic::Lapic(EventQueue &eq, const CostModel &costs, int id,
             MetricsRegistry *metrics)
    : eq_(eq), costs_(costs), id_(id)
{
    if (metrics) {
        raisedMetric_ = metrics->counter(MetricScope::Machine, "irq",
                                         "irq.raised");
        ipiMetric_ = metrics->counter(MetricScope::Machine, "irq",
                                      "irq.ipi");
    }
}

Lapic::~Lapic()
{
    if (timerEvent_ != invalidEventId)
        eq_.deschedule(timerEvent_);
}

void
Lapic::raise(std::uint8_t vector)
{
    pending_.set(vector);
    ++raised_;
    raisedMetric_.inc();
    if (TraceSink *sink = eq_.traceSink())
        sink->instant(TraceCategory::Irq, "irq.raise", vector);
}

void
Lapic::assertExternal(std::uint8_t vector)
{
    Lapic *target = this;
    int hops = 0;
    while (target->redirect) {
        target = target->redirect;
        if (++hops > 8)
            panic("Lapic redirection cycle");
    }
    target->raise(vector);
}

int
Lapic::highestPending() const
{
    // x86 priority: the higher vector number wins.
    for (int v = 255; v >= 0; --v)
        if (pending_.test(static_cast<std::size_t>(v)))
            return v;
    return -1;
}

int
Lapic::ack()
{
    int v = highestPending();
    if (v >= 0) {
        pending_.reset(static_cast<std::size_t>(v));
        if (TraceSink *sink = eq_.traceSink())
            sink->instant(TraceCategory::Irq, "irq.ack", v);
    }
    return v;
}

bool
Lapic::isPending(std::uint8_t vector) const
{
    return pending_.test(vector);
}

void
Lapic::clear(std::uint8_t vector)
{
    pending_.reset(vector);
}

void
Lapic::sendIpi(Lapic &dst, std::uint8_t vector)
{
    Lapic *target = &dst;
    ipiMetric_.inc();
    eq_.scheduleIn(costs_.ipiLatency,
                   [target, vector] { target->raise(vector); },
                   "ipi");
}

void
Lapic::armTscDeadline(Ticks when, std::uint8_t vector)
{
    cancelTscDeadline();
    if (when <= eq_.now()) {
        // Deadline already passed: fires immediately.
        raise(vector);
        return;
    }
    timerEvent_ = eq_.schedule(when, [this, vector] {
        timerEvent_ = invalidEventId;
        raise(vector);
    }, "tsc-deadline");
}

void
Lapic::cancelTscDeadline()
{
    if (timerEvent_ != invalidEventId) {
        eq_.deschedule(timerEvent_);
        timerEvent_ = invalidEventId;
    }
}

} // namespace svtsim
