#include "arch/lapic.h"

#include <algorithm>

#include "sim/compiler.h"
#include "sim/fault.h"
#include "sim/log.h"
#include "sim/trace.h"

namespace svtsim {

Lapic::Lapic(EventQueue &eq, const CostModel &costs, int id,
             MetricsRegistry *metrics)
    : eq_(eq), costs_(costs), id_(id)
{
    if (metrics) {
        raisedMetric_ = metrics->counter(MetricScope::Machine, "irq",
                                         "irq.raised");
        ipiMetric_ = metrics->counter(MetricScope::Machine, "irq",
                                      "irq.ipi");
        postedMetric_ = metrics->counter(MetricScope::Machine, "irq",
                                         "irq.posted");
    }
}

Lapic::~Lapic()
{
    if (timerEvent_ != invalidEventId)
        eq_.deschedule(timerEvent_);
    // In-flight IPIs captured a pointer to us; cancel them so the
    // closures cannot fire into a destroyed object (already-fired
    // handles are no-ops).
    for (EventId id : inflightIpis_)
        eq_.deschedule(id);
}

void
Lapic::raise(std::uint8_t vector)
{
    pending_.set(vector);
    ++raised_;
    raisedMetric_.inc();
    if (TraceSink *sink = eq_.traceSink(); SVTSIM_UNLIKELY(sink != nullptr))
        sink->instant(TraceCategory::Irq, "irq.raise", vector);
}

Lapic *
Lapic::resolveRedirect()
{
    Lapic *target = this;
    int hops = 0;
    while (target->redirect) {
        target = target->redirect;
        if (++hops > 8)
            panic("Lapic redirection cycle");
    }
    return target;
}

void
Lapic::pruneInflight()
{
    inflightIpis_.erase(
        std::remove_if(inflightIpis_.begin(), inflightIpis_.end(),
                       [this](EventId id) { return !eq_.pending(id); }),
        inflightIpis_.end());
}

void
Lapic::assertExternal(std::uint8_t vector)
{
    resolveRedirect()->raise(vector);
}

int
Lapic::highestPending() const
{
    // x86 priority: the higher vector number wins.
    for (int v = 255; v >= 0; --v)
        if (pending_.test(static_cast<std::size_t>(v)))
            return v;
    return -1;
}

int
Lapic::ack()
{
    int v = highestPending();
    if (v >= 0) {
        pending_.reset(static_cast<std::size_t>(v));
        if (TraceSink *sink = eq_.traceSink();
            SVTSIM_UNLIKELY(sink != nullptr))
            sink->instant(TraceCategory::Irq, "irq.ack", v);
    }
    return v;
}

bool
Lapic::isPending(std::uint8_t vector) const
{
    return pending_.test(vector);
}

void
Lapic::clear(std::uint8_t vector)
{
    pending_.reset(vector);
}

bool
Lapic::postInterrupt(std::uint8_t vector)
{
    pir_.set(vector);
    ++posted_;
    postedMetric_.inc();
    if (TraceSink *sink = eq_.traceSink(); SVTSIM_UNLIKELY(sink != nullptr))
        sink->instant(TraceCategory::Irq, "irq.post", vector);
    if (notifOutstanding_)
        return false;
    notifOutstanding_ = true;
    return true;
}

int
Lapic::syncPosted()
{
    int moved = static_cast<int>(pir_.count());
    pending_ |= pir_;
    pir_.reset();
    notifOutstanding_ = false;
    return moved;
}

void
Lapic::sendIpi(Lapic &dst, std::uint8_t vector)
{
    ipiMetric_.inc();
    Ticks latency = costs_.ipiLatency;
    if (FaultInjector *faults = eq_.faultInjector();
        SVTSIM_UNLIKELY(faults != nullptr)) {
        if (faults->fires(FaultSite::IpiDrop)) {
            // Lost on the interconnect: never becomes pending.
            if (TraceSink *sink = eq_.traceSink())
                sink->instant(TraceCategory::Irq, "irq.ipi.lost",
                              vector);
            return;
        }
        latency += faults->delay(FaultSite::IpiDelay);
    }
    // The event captures the destination, not the final target: the
    // redirect chain is walked when the IPI lands, so redirection
    // changes during flight behave like the hardware steering.
    Lapic *target = &dst;
    EventId id = eq_.scheduleIn(latency,
                                [target, vector] {
                                    target->pruneInflight();
                                    target->resolveRedirect()->raise(
                                        vector);
                                },
                                "ipi");
    dst.inflightIpis_.push_back(id);
}

void
Lapic::armTscDeadline(Ticks when, std::uint8_t vector)
{
    cancelTscDeadline();
    if (when <= eq_.now()) {
        // Deadline already passed: fires immediately.
        raise(vector);
        return;
    }
    timerEvent_ = eq_.schedule(when, [this, vector] {
        timerEvent_ = invalidEventId;
        raise(vector);
    }, "tsc-deadline");
}

void
Lapic::cancelTscDeadline()
{
    if (timerEvent_ != invalidEventId) {
        eq_.deschedule(timerEvent_);
        timerEvent_ = invalidEventId;
    }
}

} // namespace svtsim
