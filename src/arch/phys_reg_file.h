/**
 * @file
 * Shared physical register file and per-context rename maps.
 *
 * SMT threads of one core share a single physical register file; each
 * hardware context owns a committed rename map from architectural to
 * physical registers. This is the structural property SVt exploits:
 * a hypervisor context can reach a subordinate VM's registers by
 * indexing the *other* context's rename map into the same physical
 * file (ctxtld/ctxtst), with no memory traffic.
 */

#ifndef SVTSIM_ARCH_PHYS_REG_FILE_H
#define SVTSIM_ARCH_PHYS_REG_FILE_H

#include <cstdint>
#include <vector>

#include "arch/regs.h"

namespace svtsim {

/** Index of a physical register. */
using PhysReg = std::uint32_t;

/** Invalid physical register index. */
constexpr PhysReg invalidPhysReg = UINT32_MAX;

/**
 * The per-core pool of physical registers.
 *
 * Models only the committed storage (no speculative state): enough to
 * capture the sharing structure and capacity constraints.
 */
class PhysRegFile
{
  public:
    /** @param size Number of physical registers in the pool. */
    explicit PhysRegFile(std::size_t size);

    /** Allocate a free physical register. Raises PanicError when the
     *  pool is exhausted (rename deadlock in a real core). */
    PhysReg alloc();

    /** Return a register to the free pool. */
    void free(PhysReg reg);

    std::uint64_t read(PhysReg reg) const;
    void write(PhysReg reg, std::uint64_t value);

    std::size_t size() const { return values_.size(); }
    std::size_t freeCount() const { return freeList_.size(); }

  private:
    void check(PhysReg reg) const;

    std::vector<std::uint64_t> values_;
    std::vector<bool> allocated_;
    std::vector<PhysReg> freeList_;
};

/**
 * Committed rename map of one hardware context.
 *
 * Owns one physical register per architectural GPR; writes allocate a
 * fresh physical register and free the previous mapping, mirroring how
 * a rename stage recycles registers at commit.
 */
class RenameMap
{
  public:
    explicit RenameMap(PhysRegFile &prf);
    ~RenameMap();

    RenameMap(const RenameMap &) = delete;
    RenameMap &operator=(const RenameMap &) = delete;

    std::uint64_t read(Gpr reg) const;
    void write(Gpr reg, std::uint64_t value);

    /** Physical register currently mapped to @p reg (what a
     *  cross-context access indexes). */
    PhysReg physOf(Gpr reg) const;

  private:
    PhysRegFile &prf_;
    std::vector<PhysReg> map_;
};

} // namespace svtsim

#endif // SVTSIM_ARCH_PHYS_REG_FILE_H
