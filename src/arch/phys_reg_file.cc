#include "arch/phys_reg_file.h"

#include "sim/log.h"

namespace svtsim {

PhysRegFile::PhysRegFile(std::size_t size)
    : values_(size, 0), allocated_(size, false)
{
    if (size == 0)
        fatal("PhysRegFile requires a non-empty pool");
    freeList_.reserve(size);
    // Hand out low indices first for deterministic tests.
    for (std::size_t i = size; i-- > 0;)
        freeList_.push_back(static_cast<PhysReg>(i));
}

PhysReg
PhysRegFile::alloc()
{
    if (freeList_.empty())
        panic("PhysRegFile exhausted (%zu registers)", values_.size());
    PhysReg reg = freeList_.back();
    freeList_.pop_back();
    allocated_[reg] = true;
    values_[reg] = 0;
    return reg;
}

void
PhysRegFile::free(PhysReg reg)
{
    check(reg);
    allocated_[reg] = false;
    freeList_.push_back(reg);
}

void
PhysRegFile::check(PhysReg reg) const
{
    if (reg >= values_.size())
        panic("PhysRegFile index %u out of range", reg);
    if (!allocated_[reg])
        panic("PhysRegFile access to unallocated register %u", reg);
}

std::uint64_t
PhysRegFile::read(PhysReg reg) const
{
    check(reg);
    return values_[reg];
}

void
PhysRegFile::write(PhysReg reg, std::uint64_t value)
{
    check(reg);
    values_[reg] = value;
}

RenameMap::RenameMap(PhysRegFile &prf)
    : prf_(prf), map_(numGprs, invalidPhysReg)
{
    for (auto &m : map_)
        m = prf_.alloc();
}

RenameMap::~RenameMap()
{
    for (auto m : map_)
        if (m != invalidPhysReg)
            prf_.free(m);
}

std::uint64_t
RenameMap::read(Gpr reg) const
{
    return prf_.read(map_[static_cast<std::size_t>(reg)]);
}

void
RenameMap::write(Gpr reg, std::uint64_t value)
{
    auto idx = static_cast<std::size_t>(reg);
    // Commit-time recycling: new physical register, old one freed.
    PhysReg fresh = prf_.alloc();
    prf_.write(fresh, value);
    prf_.free(map_[idx]);
    map_[idx] = fresh;
}

PhysReg
RenameMap::physOf(Gpr reg) const
{
    return map_[static_cast<std::size_t>(reg)];
}

} // namespace svtsim
