#include "arch/smt_core.h"

#include "sim/log.h"

namespace svtsim {

SmtCore::SmtCore(EventQueue &eq, const CostModel &costs, int id,
                 int num_contexts, int numa_node, std::size_t prf_size,
                 MetricsRegistry *metrics)
    : eq_(eq), costs_(costs), id_(id), numaNode_(numa_node),
      prf_(prf_size)
{
    if (num_contexts < 1)
        fatal("SmtCore requires at least one hardware context");
    if (prf_size < static_cast<std::size_t>(num_contexts) * numGprs * 2) {
        fatal("PhysRegFile too small for %d contexts", num_contexts);
    }
    for (int i = 0; i < num_contexts; ++i) {
        contexts_.push_back(std::make_unique<HwContext>(prf_, i));
        lapics_.push_back(std::make_unique<Lapic>(
            eq_, costs_, id_ * 64 + i, metrics));
    }
}

HwContext &
SmtCore::context(int i)
{
    if (i < 0 || i >= numContexts())
        panic("SmtCore::context index %d out of range", i);
    return *contexts_[static_cast<std::size_t>(i)];
}

const HwContext &
SmtCore::context(int i) const
{
    if (i < 0 || i >= numContexts())
        panic("SmtCore::context index %d out of range", i);
    return *contexts_[static_cast<std::size_t>(i)];
}

Lapic &
SmtCore::lapic(int i)
{
    if (i < 0 || i >= numContexts())
        panic("SmtCore::lapic index %d out of range", i);
    return *lapics_[static_cast<std::size_t>(i)];
}

void
SmtCore::retargetFetch(int target)
{
    if (target < 0 || target >= numContexts())
        panic("SmtCore::retargetFetch to invalid context %d", target);
    if (target == active_)
        return;
    context(active_).stalled = true;
    context(target).stalled = false;
    active_ = target;
    ++retargets_;
}

} // namespace svtsim
