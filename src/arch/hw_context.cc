#include "arch/hw_context.h"

#include "sim/log.h"

namespace svtsim {

HwContext::HwContext(PhysRegFile &prf, int index)
    : index_(index), rename_(prf)
{
}

std::uint64_t
HwContext::readCr(Ctrl cr) const
{
    return crs_[static_cast<std::size_t>(cr)];
}

void
HwContext::writeCr(Ctrl cr, std::uint64_t v)
{
    crs_[static_cast<std::size_t>(cr)] = v;
}

std::uint64_t
HwContext::rdmsr(std::uint32_t index) const
{
    auto it = msrs_.find(index);
    return it == msrs_.end() ? 0 : it->second;
}

void
HwContext::wrmsr(std::uint32_t index, std::uint64_t v)
{
    msrs_[index] = v;
}

void
HwContext::copyArchStateFrom(const HwContext &other)
{
    for (int i = 0; i < numGprs; ++i) {
        writeGpr(static_cast<Gpr>(i),
                 other.readGpr(static_cast<Gpr>(i)));
    }
    rip = other.rip;
    rflags = other.rflags;
    for (int i = 0; i < numCtrls; ++i) {
        writeCr(static_cast<Ctrl>(i),
                other.readCr(static_cast<Ctrl>(i)));
    }
    msrs_ = other.msrs_;
}

} // namespace svtsim
