/**
 * @file
 * SMT core: N hardware contexts over one shared physical register file.
 */

#ifndef SVTSIM_ARCH_SMT_CORE_H
#define SVTSIM_ARCH_SMT_CORE_H

#include <memory>
#include <vector>

#include "arch/cost_model.h"
#include "arch/hw_context.h"
#include "arch/lapic.h"
#include "arch/phys_reg_file.h"
#include "sim/event_queue.h"

namespace svtsim {

/**
 * A physical core with SMT hardware contexts.
 *
 * The baseline core knows nothing about SVt; it provides the raw
 * resources (replicated per-thread state, shared physical register
 * file, one local APIC per context) plus an "active context" notion
 * used by the single-effective-thread execution styles (SVt, and the
 * baseline where SMT is disabled for security per Section 1).
 */
class SmtCore
{
  public:
    static constexpr std::size_t defaultPrfSize = 320;

    /**
     * @param eq Shared event queue.
     * @param costs Cost model.
     * @param id Core number.
     * @param num_contexts SMT width (Table 4: 2; HW SVt studies 3+).
     * @param numa_node NUMA node the core belongs to.
     * @param prf_size Physical register file capacity.
     * @param metrics Owning machine's registry (nullptr for bare cores
     *        built in unit tests: lapic metrics become inert).
     */
    SmtCore(EventQueue &eq, const CostModel &costs, int id,
            int num_contexts, int numa_node,
            std::size_t prf_size = defaultPrfSize,
            MetricsRegistry *metrics = nullptr);

    int id() const { return id_; }
    int numaNode() const { return numaNode_; }
    int numContexts() const { return static_cast<int>(contexts_.size()); }

    HwContext &context(int i);
    const HwContext &context(int i) const;
    Lapic &lapic(int i);

    PhysRegFile &prf() { return prf_; }

    /** Context currently being fetched from. */
    int activeContext() const { return active_; }

    /**
     * Retarget instruction fetch to @p target, stalling the current
     * context. The caller supplies the cost (a full VM-transition for
     * the baseline, CostModel::svtSwitch for SVt) and accounts it.
     */
    void retargetFetch(int target);

    /** Number of fetch retargets (for stats/tests). */
    std::uint64_t retargetCount() const { return retargets_; }

  private:
    EventQueue &eq_;
    const CostModel &costs_;
    int id_;
    int numaNode_;
    PhysRegFile prf_;
    std::vector<std::unique_ptr<HwContext>> contexts_;
    std::vector<std::unique_ptr<Lapic>> lapics_;
    int active_ = 0;
    std::uint64_t retargets_ = 0;
};

} // namespace svtsim

#endif // SVTSIM_ARCH_SMT_CORE_H
