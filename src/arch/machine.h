/**
 * @file
 * Top-level machine: cores, event queue, cost model, time attribution.
 */

#ifndef SVTSIM_ARCH_MACHINE_H
#define SVTSIM_ARCH_MACHINE_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/cost_model.h"
#include "arch/smt_core.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/random.h"
#include "stats/metrics.h"

namespace svtsim {

/** Physical machine shape (Table 4: 2x 8-core 2-SMT Xeon). */
struct MachineTopology
{
    int numaNodes = 2;
    int coresPerNode = 8;
    int threadsPerCore = 2;

    int totalCores() const { return numaNodes * coresPerNode; }
};

/**
 * The simulated machine: owns the event queue, cost model, RNG and the
 * cores, and provides the time-attribution machinery that benches use
 * to regenerate stage breakdowns (Table 1) and exit-reason profiles
 * (Section 6.2).
 */
class Machine
{
  public:
    explicit Machine(MachineTopology topo = {}, CostModel costs = {},
                     std::uint64_t seed = 1);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineTopology &topology() const { return topo_; }
    const CostModel &costs() const { return costs_; }
    CostModel &costs() { return costs_; }

    EventQueue &events() { return eq_; }
    Rng &rng() { return rng_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Attach/detach a trace sink (not owned). While attached and
     * enabled, consume()/idleUntil() feed the sink's time-conservation
     * accounting and pushScope()/popScope() mirror into trace spans.
     */
    void setTraceSink(TraceSink *sink) { eq_.setTraceSink(sink); }
    TraceSink *traceSink() const { return eq_.traceSink(); }

    SmtCore &core(int i);
    int numCores() const { return static_cast<int>(cores_.size()); }

    // -- Time ------------------------------------------------------------
    Ticks now() const { return eq_.now(); }

    /**
     * Consume @p t ticks of simulated time. Runs due events and adds
     * @p t to every open attribution scope.
     */
    void consume(Ticks t);

    /** Let simulated time pass without attributing it to any open
     *  scope (used for idle/wait periods). */
    void idleUntil(Ticks when);

    // -- Attribution scopes ----------------------------------------------
    /** Open an attribution scope; time consumed while open accrues to
     *  the named bucket. Scopes nest; all open scopes accrue. */
    void pushScope(const std::string &name);
    void popScope();

    /** Total ticks accrued to @p name since the last reset. */
    Ticks scopeTotal(const std::string &name) const;

    /** All buckets (name -> ticks), for rendering breakdown tables. */
    const std::map<std::string, Ticks> &scopeTotals() const
    {
        return buckets_;
    }

    void resetAttribution();

    // -- Simulated PMU -----------------------------------------------------
    /** The machine's metrics registry (the simulated PMU). Components
     *  intern handles here at construction time. */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Compat shim over the old string-keyed counter map: adds to a
     * pre-registered counter by name. Raises FatalError on keys no
     * component registered — a typo'd key is a config bug, not a new
     * counter.
     */
    void count(const std::string &key, std::uint64_t n = 1);
    std::uint64_t counter(const std::string &key) const;

    // -- Fault injection ---------------------------------------------------
    /**
     * Install a fault plan: builds a FaultInjector keyed off this
     * machine's seed, registers a `fault.injected.<site>` PMU counter
     * per site and publishes the injector on the event queue so hook
     * points (rings, LAPICs, devices) can consult it. Installing a
     * new plan replaces the previous one; the decision streams
     * restart from the seed.
     */
    void installFaultPlan(const FaultPlan &plan);

    /** The installed injector, or null when no plan is active. */
    FaultInjector *faults() { return faults_.get(); }

    /**
     * Allocate the next local-APIC id on this machine. Per-machine
     * (not process-global) so concurrently constructed machines get
     * identical, deterministic id sequences.
     */
    int allocApicId() { return nextApicId_++; }

    /** All registered counters as a name -> value map (by value now
     *  that the backing store is the registry). */
    std::map<std::string, std::uint64_t> counters() const
    {
        return metrics_.counterValues();
    }
    void resetCounters() { metrics_.reset(); }

    /** Registry snapshot plus this machine's attribution buckets. */
    MetricsSnapshot snapshotMetrics() const;

  private:
    MachineTopology topo_;
    CostModel costs_;
    EventQueue eq_;
    Rng rng_;
    std::uint64_t seed_;
    /** Declared before cores_: cores (and their lapics) intern metric
     *  handles during construction. */
    MetricsRegistry metrics_;
    std::vector<std::unique_ptr<SmtCore>> cores_;
    std::vector<std::string> scopeStack_;
    /** Trace-span handle per open scope; noTraceSpan when the sink was
     *  absent/disabled at pushScope() time. */
    std::vector<std::size_t> scopeSpans_;
    std::map<std::string, Ticks> buckets_;
    std::unique_ptr<FaultInjector> faults_;
    std::array<Counter, numFaultSites> faultMetric_;
    int nextApicId_ = 1000;
};

/** RAII attribution scope. */
class TimeScope
{
  public:
    TimeScope(Machine &machine, std::string name)
        : machine_(machine)
    {
        machine_.pushScope(std::move(name));
    }

    ~TimeScope() { machine_.popScope(); }

    TimeScope(const TimeScope &) = delete;
    TimeScope &operator=(const TimeScope &) = delete;

  private:
    Machine &machine_;
};

} // namespace svtsim

#endif // SVTSIM_ARCH_MACHINE_H
