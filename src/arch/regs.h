/**
 * @file
 * Architectural register identifiers for the modeled x86-like core.
 */

#ifndef SVTSIM_ARCH_REGS_H
#define SVTSIM_ARCH_REGS_H

#include <cstdint>

namespace svtsim {

/** General-purpose registers (x86-64 names). */
enum class Gpr : std::uint8_t
{
    Rax, Rbx, Rcx, Rdx, Rsi, Rdi, Rbp, Rsp,
    R8, R9, R10, R11, R12, R13, R14, R15,
};

/** Number of architectural GPRs. */
constexpr int numGprs = 16;

/** Control registers relevant to virtualization. */
enum class Ctrl : std::uint8_t
{
    Cr0, Cr2, Cr3, Cr4,
};

/** Number of modeled control registers. */
constexpr int numCtrls = 4;

/** MSR indices used by the model (subset of the x86 MSR space). */
namespace msr {

constexpr std::uint32_t ia32Efer = 0xc0000080;
constexpr std::uint32_t ia32FsBase = 0xc0000100;
constexpr std::uint32_t ia32GsBase = 0xc0000101;
constexpr std::uint32_t ia32KernelGsBase = 0xc0000102;
constexpr std::uint32_t ia32Star = 0xc0000081;
constexpr std::uint32_t ia32Lstar = 0xc0000082;
constexpr std::uint32_t ia32Tsc = 0x10;
constexpr std::uint32_t ia32TscDeadline = 0x6e0;
constexpr std::uint32_t ia32ApicBase = 0x1b;
constexpr std::uint32_t ia32SpecCtrl = 0x48;
constexpr std::uint32_t ia32PredCmd = 0x49;
/** x2APIC end-of-interrupt register (wrmsr-based EOI). */
constexpr std::uint32_t ia32X2apicEoi = 0x80b;

} // namespace msr

/** Result of a cpuid query. */
struct CpuidResult
{
    std::uint64_t eax = 0;
    std::uint64_t ebx = 0;
    std::uint64_t ecx = 0;
    std::uint64_t edx = 0;

    bool
    operator==(const CpuidResult &other) const = default;
};

} // namespace svtsim

#endif // SVTSIM_ARCH_REGS_H
