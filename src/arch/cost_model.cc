// CostModel is a plain aggregate; this translation unit exists so the
// library has a home for future non-inline helpers and so the header's
// defaults are compiled once under -Wall.

#include "arch/cost_model.h"

namespace svtsim {

// Intentionally empty.

} // namespace svtsim
