/**
 * @file
 * Per-hardware-context local interrupt controller (APIC-like).
 */

#ifndef SVTSIM_ARCH_LAPIC_H
#define SVTSIM_ARCH_LAPIC_H

#include <bitset>
#include <cstdint>
#include <vector>

#include "arch/cost_model.h"
#include "sim/event_queue.h"
#include "stats/metrics.h"

namespace svtsim {

/**
 * Local APIC model: pending-vector bitmap with x86 priority (higher
 * vector wins), IPIs with delivery latency, and a TSC-deadline timer.
 *
 * SVt's interrupt-redirection rule (Section 3.1: treat all SVt-enabled
 * contexts as one target CPU by steering external interrupts to the
 * context where L0 executes) is modeled by the @ref redirect pointer.
 */
class Lapic
{
  public:
    /**
     * @param eq Shared event queue (IPIs and timers are events).
     * @param costs Cost model for delivery latencies.
     * @param id Global identifier (for diagnostics).
     * @param metrics Optional registry; all lapics on a machine share
     *        the aggregate irq.raised / irq.ipi counters.
     */
    Lapic(EventQueue &eq, const CostModel &costs, int id,
          MetricsRegistry *metrics = nullptr);

    ~Lapic();

    Lapic(const Lapic &) = delete;
    Lapic &operator=(const Lapic &) = delete;

    int id() const { return id_; }

    // -- Pending interrupt state --------------------------------------
    /** Mark @p vector pending on this APIC (no redirection). */
    void raise(std::uint8_t vector);

    /**
     * Deliver an external (device) interrupt. Follows the SVt
     * redirection chain so an SVt-enabled core's device interrupts
     * land on the hypervisor context.
     */
    void assertExternal(std::uint8_t vector);

    bool hasPending() const { return pending_.any(); }

    /** Highest-priority pending vector, or -1 if none. */
    int highestPending() const;

    /** Pop and return the highest-priority pending vector (-1 if
     *  none). The caller models delivery cost. */
    int ack();

    /** Whether a specific vector is pending. */
    bool isPending(std::uint8_t vector) const;

    /** Clear a specific pending vector (used by emulated injection). */
    void clear(std::uint8_t vector);

    // -- Posted interrupts (exit-elision ladder rung 1) ----------------
    /**
     * Set @p vector in the posted-interrupt request bitmap instead of
     * the IRR. Returns true when a notification is needed (the bit is
     * new and no notification is outstanding); the caller then models
     * the notification cost and eventually calls syncPosted(). A false
     * return means an earlier notification is still pending and will
     * pick this vector up too (the ON-bit semantics of the hardware
     * descriptor).
     */
    bool postInterrupt(std::uint8_t vector);

    /**
     * Merge the posted bitmap into the pending IRR and clear the
     * outstanding-notification flag (the microcode's PIR scan at
     * notification or VM entry). Returns the number of vectors moved.
     */
    int syncPosted();

    /** Whether any posted vectors await a sync. */
    bool hasPosted() const { return pir_.any(); }

    /** Interrupts posted so far (for tests). */
    std::uint64_t postedCount() const { return posted_; }

    // -- Inter-processor interrupts ------------------------------------
    /**
     * Send an IPI to @p dst; it becomes pending there after the
     * modeled IPI latency. The SVt redirection chain is resolved at
     * delivery time (matching assertExternal), so a redirect installed
     * while the IPI is in flight still takes effect. A fault plan can
     * drop or delay the delivery.
     */
    void sendIpi(Lapic &dst, std::uint8_t vector);

    // -- TSC-deadline timer ---------------------------------------------
    /**
     * Arm the TSC-deadline timer to raise @p vector at absolute time
     * @p when. Re-arming replaces any armed deadline; @p when in the
     * past fires immediately (matches the architecture: deadline
     * already reached).
     */
    void armTscDeadline(Ticks when, std::uint8_t vector);

    /** Disarm the deadline timer (wrmsr of zero). */
    void cancelTscDeadline();

    bool tscDeadlineArmed() const { return timerEvent_ != invalidEventId; }

    // -- SVt external-interrupt redirection ------------------------------
    /** When set, assertExternal() forwards to this APIC instead. */
    Lapic *redirect = nullptr;

    /** Count of interrupts that became pending here (for tests). */
    std::uint64_t raisedCount() const { return raised_; }

  private:
    /** Follow the redirect chain to the delivery target (8-hop cycle
     *  guard, shared by assertExternal and in-flight IPI delivery). */
    Lapic *resolveRedirect();

    /** Drop handles of already-fired inbound IPI events. */
    void pruneInflight();

    EventQueue &eq_;
    const CostModel &costs_;
    int id_;
    std::bitset<256> pending_;
    /** Posted-interrupt requests awaiting a syncPosted(). */
    std::bitset<256> pir_;
    /** The descriptor's outstanding-notification (ON) bit: set while a
     *  notification is in flight, so repeated posts coalesce. */
    bool notifOutstanding_ = false;
    EventId timerEvent_ = invalidEventId;
    /** In-flight IPI events targeting this APIC; the destructor
     *  deschedules them so their closures cannot outlive us. */
    std::vector<EventId> inflightIpis_;
    std::uint64_t raised_ = 0;
    std::uint64_t posted_ = 0;
    Counter raisedMetric_;
    Counter ipiMetric_;
    Counter postedMetric_;
};

} // namespace svtsim

#endif // SVTSIM_ARCH_LAPIC_H
