/**
 * @file
 * Ablation: sensitivity of the memcached SLA result (Figure 8) to the
 * L1 housekeeping interference model — the mechanism behind the
 * paper's "lower and less noisy latencies" observation (Section
 * 6.3.1). Sweeping the per-request interference shows how much of
 * the SW SVt win comes from overlap vs from cheaper trap handling.
 */

#include <cstdio>

#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/nested_system.h"
#include "workloads/memcached.h"

using namespace svtsim;

namespace {

MemcachedPoint
onePoint(VirtMode mode, double qps, double per_request)
{
    NestedSystem sys(mode);
    NetFabric fabric(sys.machine(), sys.machine().costs().wireLatency,
                     sys.machine().costs().linkBitsPerSec);
    VirtioNetStack net(sys.stack(), fabric);
    MemcachedBench bench(sys.stack(), net, fabric, 42, 1000.0,
                         usec(14.5), per_request);
    return bench.runLoad(qps, msec(250));
}

} // namespace

int
main()
{
    const double qps = 10000;
    Table t({"HK events/request", "base avg (us)", "base p99 (us)",
             "SVt avg (us)", "SVt p99 (us)", "p99 gain"});
    for (double per_req : {0.0, 0.3, 0.6, 0.9, 1.2, 1.8}) {
        MemcachedPoint base =
            onePoint(VirtMode::Nested, qps, per_req);
        MemcachedPoint svt = onePoint(VirtMode::SwSvt, qps, per_req);
        t.addRow({Table::num(per_req, 1),
                  Table::num(base.avgUsec, 0),
                  Table::num(base.p99Usec, 0),
                  Table::num(svt.avgUsec, 0),
                  Table::num(svt.p99Usec, 0),
                  Table::num(base.p99Usec / svt.p99Usec, 2) + "x"});
    }
    std::printf("Ablation: L1 housekeeping interference at %.0f qps "
                "(memcached, ETC)\n\n%s\n",
                qps, t.render().c_str());
    std::printf("At 0 events/request the SW SVt win is pure trap "
                "acceleration; the tail gap widens with interference\n"
                "because the SVt-thread lets the L1 vCPU drain its "
                "housekeeping concurrently.\n");
    return 0;
}
