/**
 * @file
 * Ablation: sensitivity of the memcached SLA result (Figure 8) to the
 * L1 housekeeping interference model — the mechanism behind the
 * paper's "lower and less noisy latencies" observation (Section
 * 6.3.1). Sweeping the per-request interference shows how much of
 * the SW SVt win comes from overlap vs from cheaper trap handling.
 */

#include <cstdio>
#include <string>

#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/memcached.h"

using namespace svtsim;

namespace {

constexpr double qps = 10000;
const double hkRates[] = {0.0, 0.3, 0.6, 0.9, 1.2, 1.8};

std::string
hkName(VirtMode mode, double per_req)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fhk", per_req);
    return std::string(virtModeName(mode)) + "-" + buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("ablation_housekeeping",
                       "Ablation: L1 housekeeping interference "
                       "(memcached, ETC)");
    for (VirtMode mode : {VirtMode::Nested, VirtMode::SwSvt}) {
        for (double per_req : hkRates) {
            bench.add(
                hkName(mode, per_req), mode,
                [per_req](NestedSystem &sys, ScenarioResult &r) {
                    NetFabric fabric(
                        sys.machine(),
                        sys.machine().costs().wireLatency,
                        sys.machine().costs().linkBitsPerSec);
                    VirtioNetStack net(sys.stack(), fabric);
                    MemcachedBench mc(sys.stack(), net, fabric, 42,
                                      1000.0, usec(14.5), per_req);
                    MemcachedPoint pt = mc.runLoad(qps, msec(250));
                    r.record("avg_usec", pt.avgUsec);
                    r.record("p99_usec", pt.p99Usec);
                });
        }
    }

    bench.onReport([](const SweepResults &res) {
        Table t({"HK events/request", "base avg (us)",
                 "base p99 (us)", "SVt avg (us)", "SVt p99 (us)",
                 "p99 gain"});
        for (double per_req : hkRates) {
            const auto &base =
                res.at(hkName(VirtMode::Nested, per_req));
            const auto &svt =
                res.at(hkName(VirtMode::SwSvt, per_req));
            t.addRow({Table::num(per_req, 1),
                      Table::num(base.metric("avg_usec"), 0),
                      Table::num(base.metric("p99_usec"), 0),
                      Table::num(svt.metric("avg_usec"), 0),
                      Table::num(svt.metric("p99_usec"), 0),
                      Table::num(base.metric("p99_usec") /
                                     svt.metric("p99_usec"),
                                 2) +
                          "x"});
        }
        std::printf("Ablation: L1 housekeeping interference at %.0f "
                    "qps (memcached, ETC)\n\n%s\n",
                    qps, t.render().c_str());
        std::printf(
            "At 0 events/request the SW SVt win is pure trap "
            "acceleration; the tail gap widens with interference\n"
            "because the SVt-thread lets the L1 vCPU drain its "
            "housekeeping concurrently.\n");
    });
    return bench.main(argc, argv);
}
