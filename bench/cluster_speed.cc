/**
 * @file
 * Cluster-engine speed bench: wall-clock scaling of the conservative
 * parallel cluster engine on an N-machine memcached pool (N nested
 * servers, one bare-metal mutilate client fanned out over N
 * CrossLinks).
 *
 * The same scenario runs twice — `--cluster-jobs`-style parallel and
 * with the sequential oracle (1 worker) — and the bench enforces that
 * both produce the identical simulation fingerprint (per-flow
 * latencies and counts, per-machine final clocks, epoch statistics)
 * before reporting the wall-clock ratio. Wall time is host-dependent,
 * so the JSON records the host core count and CI applies a core-aware
 * floor (no speedup is physically possible on a 1-core runner).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arch/cost_model.h"
#include "io/virtio_net.h"
#include "sim/random.h"
#include "sim/worker_pool.h"
#include "stats/summary.h"
#include "system/bench_harness.h"
#include "system/cluster_spec.h"
#include "workloads/remote_peer.h"

using namespace svtsim;

namespace {

struct RunConfig
{
    int machines = 8;      ///< Server machines (plus 1 client).
    int jobs = 0;          ///< Parallel workers (0 = hw threads).
    double qps = 8000;     ///< Offered load per server.
    Ticks duration = msec(200);
    Ticks latency = usec(25); ///< ToR-switch scale wire latency.
    std::uint64_t seed = 1;
};

struct RunOutcome
{
    std::string fingerprint;
    double wallSec = 0;
};

/** One client-side request flow against one server machine. */
struct Flow
{
    Rng rng;
    EtcWorkload etc;
    std::uint64_t nextId = 1;
    std::uint64_t completed = 0;
    std::unordered_map<std::uint64_t, Ticks> sent;
    Percentiles lat;

    explicit Flow(std::uint64_t seed) : rng(seed) {}
};

/**
 * Build the pool, run it with @p jobs workers, and reduce the whole
 * simulation to a deterministic fingerprint string. Every call
 * constructs a fresh Cluster from the same seed, so any two calls
 * must produce byte-identical fingerprints regardless of @p jobs.
 */
RunOutcome
runOnce(const RunConfig &cfg, int jobs)
{
    ClusterSpec spec;
    spec.machine("client", VirtMode::Native);
    std::vector<std::string> servers;
    for (int i = 0; i < cfg.machines; ++i) {
        servers.push_back("server" + std::to_string(i));
        spec.machine(servers.back(), VirtMode::Nested);
        spec.link("client", servers.back(), cfg.latency,
                  CostModel{}.linkBitsPerSec);
    }
    ClusterBuild b = spec.realize(cfg.seed);

    // Server side: one nested virtio-net stack + serving loop each.
    std::vector<std::unique_ptr<VirtioNetStack>> nets;
    std::vector<std::unique_ptr<MemcachedServer>> mcs;
    std::vector<std::uint64_t> served(servers.size(), 0);
    for (std::size_t i = 0; i < servers.size(); ++i) {
        nets.push_back(std::make_unique<VirtioNetStack>(
            b.stack(servers[i]), b.port(servers[i], "client")));
        mcs.push_back(std::make_unique<MemcachedServer>(
            b.stack(servers[i]), *nets.back(),
            42 + static_cast<std::uint64_t>(i)));
        auto *mc = mcs.back().get();
        auto *out = &served[i];
        b.driver(servers[i], [mc, out, &cfg](NestedSystem &) {
            *out = mc->serveUntil(cfg.duration);
        });
    }

    // Client side: N independent open-loop ETC flows, one per link,
    // all event-driven on the single bare-metal client machine.
    std::vector<NetPort *> ports;
    for (const std::string &s : servers)
        ports.push_back(&b.port("client", s));
    std::vector<Flow> flows;
    for (std::size_t i = 0; i < servers.size(); ++i)
        flows.emplace_back(cfg.seed + 1000 + i);

    b.driver("client", [&](NestedSystem &sys) {
        Machine &m = sys.machine();
        const Ticks t0 = m.now();
        const Ticks end = t0 + cfg.duration;

        std::vector<std::function<void()>> arms(flows.size());
        for (std::size_t i = 0; i < flows.size(); ++i) {
            Flow &flow = flows[i];
            NetPort &port = *ports[i];
            port.setReceiveHandler([&flow, &m](NetPacket pkt) {
                auto it = flow.sent.find(pkt.id);
                if (it != flow.sent.end()) {
                    flow.lat.add(toUsec(m.now() - it->second));
                    flow.sent.erase(it);
                    ++flow.completed;
                }
            });
            arms[i] = [&flow, &port, &m, &arms, i, end, &cfg] {
                Ticks gap = static_cast<Ticks>(
                    flow.rng.exponential(1e12 / cfg.qps));
                Ticks when = m.now() + std::max<Ticks>(gap, 1);
                if (when >= end)
                    return;
                m.events().schedule(when, [&flow, &port, &m, &arms, i] {
                    std::uint64_t id = flow.nextId++;
                    bool get = flow.etc.isGet(flow.rng);
                    std::uint32_t vsize =
                        flow.etc.sampleValueSize(flow.rng);
                    std::uint32_t req_bytes =
                        flow.etc.sampleKeySize(flow.rng) +
                        (get ? 24 : 24 + vsize);
                    flow.sent[id] = m.now();
                    port.send(NetPacket{
                        id, req_bytes,
                        (static_cast<std::uint64_t>(vsize) << 1) |
                            (get ? 1 : 0)});
                    arms[i]();
                }, "mutilate-arrival");
            };
            arms[i]();
        }

        const Ticks grace = end + msec(5);
        while (m.now() < grace)
            m.idleUntil(grace);
        for (auto *port : ports)
            port->setReceiveHandler([](NetPacket) {});
    });

    const auto t0 = std::chrono::steady_clock::now();
    ClusterStats stats = b.run(jobs);
    RunOutcome out;
    out.wallSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    Cluster &cluster = b.cluster();
    std::ostringstream fp;
    fp << "epochs=" << stats.epochs << " steps=" << stats.steps
       << " merged=" << stats.merged;
    for (int i = 0; i < cluster.size(); ++i)
        fp << " t" << i << "=" << cluster.machine(i).now();
    for (std::size_t i = 0; i < flows.size(); ++i) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      " f%zu=%llu/%llu/%.17g/%.17g", i,
                      static_cast<unsigned long long>(
                          flows[i].completed),
                      static_cast<unsigned long long>(served[i]),
                      flows[i].lat.mean(), flows[i].lat.p99());
        fp << buf;
    }
    out.fingerprint = fp.str();
    return out;
}

int
runClusterSpeed(int argc, char **argv, const BenchOptions &options)
{
    RunConfig cfg;
    cfg.seed = options.seed;
    std::string outPath = "-";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto num = [&](const char *prefix) {
            return std::strtod(arg + std::strlen(prefix), nullptr);
        };
        if (std::strncmp(arg, "--machines=", 11) == 0) {
            cfg.machines = static_cast<int>(num("--machines="));
        } else if (std::strncmp(arg, "--workers=", 10) == 0) {
            cfg.jobs = static_cast<int>(num("--workers="));
        } else if (std::strncmp(arg, "--qps=", 6) == 0) {
            cfg.qps = num("--qps=");
        } else if (std::strncmp(arg, "--duration-ms=", 14) == 0) {
            cfg.duration = msec(num("--duration-ms="));
        } else if (std::strncmp(arg, "--latency-us=", 13) == 0) {
            cfg.latency = usec(num("--latency-us="));
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            outPath = arg + 6;
        } else if (std::strcmp(arg, "--quick") == 0) {
            quick = true;
        } else {
            std::cerr
                << "cluster_speed: unknown argument '" << arg
                << "'\n"
                << "usage: cluster_speed [--machines=N] [--workers=N]"
                   " [--qps=Q] [--duration-ms=D] [--latency-us=L]"
                   " [--out=FILE] [--quick]\n";
            return 2;
        }
    }
    if (quick) {
        cfg.machines = std::min(cfg.machines, 4);
        cfg.duration = msec(40);
    }
    if (cfg.machines < 1 || cfg.latency <= 0 || cfg.qps <= 0) {
        std::cerr << "cluster_speed: bad configuration\n";
        return 2;
    }
    if (cfg.jobs <= 0)
        cfg.jobs = WorkerPool::defaultWorkers();

    const unsigned cores = std::thread::hardware_concurrency();

    std::printf("cluster_speed: %d servers + 1 client, %.0f qps each, "
                "%.0f ms, wire %.1f us (%u cores)\n",
                cfg.machines, cfg.qps, toUsec(cfg.duration) / 1000.0,
                toUsec(cfg.latency), cores);

    RunOutcome seq = runOnce(cfg, 1);
    RunOutcome par = runOnce(cfg, cfg.jobs);

    const bool identical = seq.fingerprint == par.fingerprint;
    if (!identical) {
        std::cerr << "cluster_speed: FINGERPRINT DIVERGENCE between "
                     "1 and "
                  << cfg.jobs << " workers\n  seq: " << seq.fingerprint
                  << "\n  par: " << par.fingerprint << "\n";
    }
    const double speedup =
        par.wallSec > 0 ? seq.wallSec / par.wallSec : 0;

    std::ostream *os = &std::cout;
    std::ofstream file;
    if (outPath != "-") {
        file.open(outPath);
        if (!file) {
            std::cerr << "cluster_speed: cannot open '" << outPath
                      << "'\n";
            return 1;
        }
        os = &file;
    }
    *os << "{\n"
        << "  \"bench\": \"cluster_speed\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"seed\": " << cfg.seed << ",\n"
        << "  \"machines\": " << cfg.machines << ",\n"
        << "  \"workers\": " << cfg.jobs << ",\n"
        << "  \"cores\": " << cores << ",\n"
        << "  \"qps\": " << cfg.qps << ",\n"
        << "  \"duration_ms\": " << toUsec(cfg.duration) / 1000.0
        << ",\n"
        << "  \"latency_us\": " << toUsec(cfg.latency) << ",\n"
        << "  \"seq_wall_s\": " << seq.wallSec << ",\n"
        << "  \"par_wall_s\": " << par.wallSec << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"identical\": " << (identical ? "true" : "false")
        << "\n}\n";

    std::printf("sequential %.3f s   %d workers %.3f s   speedup "
                "%.2fx   fingerprints %s\n",
                seq.wallSec, cfg.jobs, par.wallSec, speedup,
                identical ? "identical" : "DIVERGED");
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("cluster_speed",
                       "wall-clock scaling of the parallel cluster "
                       "engine on an N-machine memcached pool, with "
                       "byte-identity enforced between worker counts");
    bench.onCustomMain(runClusterSpeed);
    return bench.main(argc, argv);
}
