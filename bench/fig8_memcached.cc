/**
 * @file
 * Regenerates Figure 8: memcached latency as a function of request
 * load (Facebook ETC via a mutilate-style open-loop client), baseline
 * vs. the SW SVt prototype, against a 500 us 99th-percentile SLA.
 *
 * Paper: 2.20x higher throughput within the p99 SLA, 1.43x at the
 * average-latency SLA.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/bench_harness.h"
#include "system/cluster_spec.h"
#include "workloads/remote_peer.h"

using namespace svtsim;

namespace {

constexpr double slaUsec = 500.0;

std::string
pointName(VirtMode mode, double qps)
{
    return std::string(virtModeName(mode)) + "-" +
           std::to_string(static_cast<int>(qps)) + "qps";
}

/** Highest offered load whose metric stays within the SLA. */
double
slaThroughput(const SweepResults &res, VirtMode mode,
              const std::vector<double> &loads, const char *key)
{
    double best = 0;
    for (double qps : loads) {
        const auto &r = res.at(pointName(mode, qps));
        double metric = r.metric(key);
        if (metric > 0 && metric <= slaUsec)
            best = std::max(best, r.metric("achieved_qps"));
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<double> loads;
    for (double q = 2000; q <= 26000; q += 1500)
        loads.push_back(q);

    BenchHarness bench("fig8_memcached",
                       "Figure 8: memcached latency vs request load "
                       "(ETC workload)");
    // The mutilate client is a real second machine (the paper's
    // bare-metal load-generator box) across a CrossLink.
    for (VirtMode mode : {VirtMode::Nested, VirtMode::SwSvt}) {
        for (double qps : loads) {
            bench.addCluster(
                pointName(mode, qps), mode,
                [mode, qps](ClusterContext &ctx, ScenarioResult &r) {
                    ClusterBuild b =
                        ClusterSpec()
                            .machine("server", mode)
                            .machine("client", VirtMode::Native)
                            .link("server", "client")
                            .realize(ctx);

                    VirtioNetStack net(b.stack("server"),
                                       b.port("server", "client"));
                    MemcachedServer server(b.stack("server"), net);
                    MutilateClient client(b.machine("client"),
                                          b.port("client", "server"));

                    const Ticks duration = msec(300);
                    MemcachedPoint pt;
                    b.driver("server", [&](NestedSystem &) {
                        server.serveUntil(duration);
                    });
                    b.driver("client", [&](NestedSystem &) {
                        pt = client.runLoad(qps, duration);
                    });

                    b.run(ctx);
                    r.record("avg_usec", pt.avgUsec);
                    r.record("p99_usec", pt.p99Usec);
                    r.record("achieved_qps", pt.achievedQps);
                    ctx.finish(b.cluster(), r);
                });
        }
    }

    bench.onReport([&](const SweepResults &res) {
        Table t({"Offered (qps)", "base avg (us)", "base p99 (us)",
                 "SVt avg (us)", "SVt p99 (us)"});
        for (double qps : loads) {
            const auto &base = res.at(pointName(VirtMode::Nested, qps));
            const auto &svt = res.at(pointName(VirtMode::SwSvt, qps));
            t.addRow({Table::num(qps, 0),
                      Table::num(base.metric("avg_usec"), 0),
                      Table::num(base.metric("p99_usec"), 0),
                      Table::num(svt.metric("avg_usec"), 0),
                      Table::num(svt.metric("p99_usec"), 0)});
        }
        std::printf("Figure 8: memcached latency vs request load "
                    "(ETC workload)\n\n%s\n",
                    t.render().c_str());

        double base_p99 =
            slaThroughput(res, VirtMode::Nested, loads, "p99_usec");
        double svt_p99 =
            slaThroughput(res, VirtMode::SwSvt, loads, "p99_usec");
        double base_avg =
            slaThroughput(res, VirtMode::Nested, loads, "avg_usec");
        double svt_avg =
            slaThroughput(res, VirtMode::SwSvt, loads, "avg_usec");
        std::printf("throughput within %.0f us SLA:\n", slaUsec);
        std::printf("  p99: baseline %.0f qps, SVt %.0f qps -> %.2fx "
                    "(paper: 2.20x)\n",
                    base_p99, svt_p99,
                    base_p99 > 0 ? svt_p99 / base_p99 : 0.0);
        std::printf("  avg: baseline %.0f qps, SVt %.0f qps -> %.2fx "
                    "(paper: 1.43x)\n",
                    base_avg, svt_avg,
                    base_avg > 0 ? svt_avg / base_avg : 0.0);
    });
    return bench.main(argc, argv);
}
