/**
 * @file
 * Regenerates Figure 8: memcached latency as a function of request
 * load (Facebook ETC via a mutilate-style open-loop client), baseline
 * vs. the SW SVt prototype, against a 500 us 99th-percentile SLA.
 *
 * Paper: 2.20x higher throughput within the p99 SLA, 1.43x at the
 * average-latency SLA.
 */

#include <cstdio>
#include <vector>

#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/nested_system.h"
#include "system/trace_session.h"
#include "workloads/memcached.h"

using namespace svtsim;

namespace {

constexpr double slaUsec = 500.0;

struct Curve
{
    std::vector<MemcachedPoint> points;

    /** Highest achieved qps whose metric stays within the SLA. */
    double
    slaThroughput(bool p99) const
    {
        double best = 0;
        for (const auto &pt : points) {
            double metric = p99 ? pt.p99Usec : pt.avgUsec;
            if (metric > 0 && metric <= slaUsec)
                best = std::max(best, pt.achievedQps);
        }
        return best;
    }
};

Curve
sweep(VirtMode mode, const std::vector<double> &loads,
      const std::string &trace_path)
{
    Curve curve;
    for (double qps : loads) {
        NestedSystem sys(mode);
        ScopedTrace trace(
            sys.machine(), trace_path,
            std::string(virtModeName(mode)) + "-" +
                std::to_string(static_cast<int>(qps)) + "qps");
        NetFabric fabric(sys.machine(),
                         sys.machine().costs().wireLatency,
                         sys.machine().costs().linkBitsPerSec);
        VirtioNetStack net(sys.stack(), fabric);
        MemcachedBench bench(sys.stack(), net, fabric);
        curve.points.push_back(
            bench.runLoad(qps, msec(300)));
    }
    return curve;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path = parseTraceFlag(argc, argv);
    std::vector<double> loads;
    for (double q = 2000; q <= 26000; q += 1500)
        loads.push_back(q);

    Curve base = sweep(VirtMode::Nested, loads, trace_path);
    Curve svt = sweep(VirtMode::SwSvt, loads, trace_path);

    Table t({"Offered (qps)", "base avg (us)", "base p99 (us)",
             "SVt avg (us)", "SVt p99 (us)"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
        t.addRow({Table::num(loads[i], 0),
                  Table::num(base.points[i].avgUsec, 0),
                  Table::num(base.points[i].p99Usec, 0),
                  Table::num(svt.points[i].avgUsec, 0),
                  Table::num(svt.points[i].p99Usec, 0)});
    }
    std::printf("Figure 8: memcached latency vs request load "
                "(ETC workload)\n\n%s\n",
                t.render().c_str());

    double base_p99 = base.slaThroughput(true);
    double svt_p99 = svt.slaThroughput(true);
    double base_avg = base.slaThroughput(false);
    double svt_avg = svt.slaThroughput(false);
    std::printf("throughput within %.0f us SLA:\n", slaUsec);
    std::printf("  p99: baseline %.0f qps, SVt %.0f qps -> %.2fx "
                "(paper: 2.20x)\n",
                base_p99, svt_p99,
                base_p99 > 0 ? svt_p99 / base_p99 : 0.0);
    std::printf("  avg: baseline %.0f qps, SVt %.0f qps -> %.2fx "
                "(paper: 1.43x)\n",
                base_avg, svt_avg,
                base_avg > 0 ? svt_avg / base_avg : 0.0);
    return 0;
}
