/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's hot primitives
 * (wall-clock performance of the simulator itself, not simulated
 * time): event queue operations, VMCS accesses, EPT walks, and the
 * full nested-trap round in each mode.
 */

#include <benchmark/benchmark.h>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "system/bench_harness.h"
#include "system/nested_system.h"
#include "virt/ept.h"
#include "virt/vmcs.h"

using namespace svtsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.scheduleIn(nsec(10), [] {});
        eq.advanceBy(nsec(20));
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_VmcsReadWrite(benchmark::State &state)
{
    Vmcs vmcs("bench");
    std::uint64_t v = 0;
    for (auto _ : state) {
        vmcs.write(VmcsField::GuestRip, v);
        benchmark::DoNotOptimize(v = vmcs.read(VmcsField::GuestRip));
        ++v;
    }
}
BENCHMARK(BM_VmcsReadWrite);

void
BM_EptTranslate(benchmark::State &state)
{
    Ept ept("bench");
    for (Gpa g = 0; g < 1024 * pageSize; g += pageSize)
        ept.map(g, g + (1ULL << 30));
    Gpa addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ept.translate(addr, EptAccess::Read));
        addr = (addr + pageSize) % (1024 * pageSize);
    }
}
BENCHMARK(BM_EptTranslate);

void
BM_NestedCpuidRound(benchmark::State &state)
{
    auto mode = static_cast<VirtMode>(state.range(0));
    NestedSystem sys(mode);
    GuestApi &api = sys.api();
    api.cpuid(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(api.cpuid(1));
    state.SetLabel(virtModeName(mode));
}
BENCHMARK(BM_NestedCpuidRound)
    ->Arg(static_cast<int>(VirtMode::Nested))
    ->Arg(static_cast<int>(VirtMode::SwSvt))
    ->Arg(static_cast<int>(VirtMode::HwSvt));

void
BM_DiskRequestRound(benchmark::State &state)
{
    NestedSystem sys(VirtMode::Nested);
    RamDisk disk(sys.machine(), "bench");
    VirtioBlkStack blk(sys.stack(), disk);
    bool done = false;
    blk.setCompletionHandler([&](std::uint64_t) { done = true; });
    std::uint64_t id = 1;
    for (auto _ : state) {
        done = false;
        blk.submit(id++, 0, 512, false);
        while (!done)
            sys.api().halt();
    }
}
BENCHMARK(BM_DiskRequestRound);

} // namespace

int
main(int argc, char **argv)
{
    // Wall-clock benchmarks are not a deterministic sweep; the
    // harness owns the common flag surface and forwards the rest
    // (--benchmark_filter and friends) to google-benchmark.
    BenchHarness bench("primitives_gbench",
                       "google-benchmark micro-benchmarks of the "
                       "simulator's hot primitives (wall clock)");
    bench.onCustomMain(
        [](int fwd_argc, char **fwd_argv, const BenchOptions &) {
            benchmark::Initialize(&fwd_argc, fwd_argv);
            if (benchmark::ReportUnrecognizedArguments(fwd_argc,
                                                       fwd_argv))
                return 1;
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
            return 0;
        });
    return bench.main(argc, argv);
}
