/**
 * @file
 * Regenerates Figure 7: speedup of SVt on the I/O subsystems.
 *
 * Paper results (baseline absolute, then SW SVt / HW SVt speedups):
 *   network latency   163 us      1.10x / 2.38x
 *   network bandwidth 9387 Mbps   1.00x / 1.12x
 *   disk randrd lat   126 us      1.30x / 2.18x
 *   disk randrd bw    87136 KB/s  1.55x / 2.31x
 *   disk randwr lat   179 us      1.05x / 2.26x
 *   disk randwr bw    55769 KB/s  1.18x / 2.60x
 *
 * The paper's HW SVt numbers come from an analytical scaling model;
 * ours come from full simulation of the SVt hardware, which clamps
 * network bandwidth at the physical line rate (the paper's model can
 * exceed it; see EXPERIMENTS.md).
 */

#include <cstdio>
#include <memory>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/nested_system.h"
#include "system/trace_session.h"
#include "workloads/diskbench.h"
#include "workloads/netperf.h"

using namespace svtsim;

namespace {

struct IoNumbers
{
    double net_lat_us;
    double net_bw_mbps;
    double rd_lat_us;
    double rd_bw_kbps;
    double wr_lat_us;
    double wr_bw_kbps;
};

IoNumbers
measure(VirtMode mode, const std::string &trace_path)
{
    IoNumbers n{};
    {
        NestedSystem sys(mode);
        ScopedTrace trace(sys.machine(), trace_path,
                          std::string(virtModeName(mode)) + "-net");
        NetFabric fabric(sys.machine(),
                         sys.machine().costs().wireLatency,
                         sys.machine().costs().linkBitsPerSec);
        VirtioNetStack net(sys.stack(), fabric);
        Netperf netperf(sys.stack(), net, fabric);
        n.net_lat_us = netperf.runRr(1, 1, 60).meanUsec;
        n.net_bw_mbps =
            netperf.runStream(16384, msec(40)).mbps;
    }
    {
        NestedSystem sys(mode);
        ScopedTrace trace(sys.machine(), trace_path,
                          std::string(virtModeName(mode)) + "-disk");
        RamDisk disk(sys.machine(), "ramdisk");
        VirtioBlkStack blk(sys.stack(), disk);
        IoPing ioping(sys.stack(), blk);
        Fio fio(sys.stack(), blk);
        n.rd_lat_us = ioping.run(512, false, 60).meanUsec;
        n.wr_lat_us = ioping.run(512, true, 60).meanUsec;
        n.rd_bw_kbps = fio.run(4096, false, 4, msec(60)).kbPerSec;
        n.wr_bw_kbps = fio.run(4096, true, 4, msec(60)).kbPerSec;
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path = parseTraceFlag(argc, argv);
    IoNumbers base = measure(VirtMode::Nested, trace_path);
    IoNumbers sw = measure(VirtMode::SwSvt, trace_path);
    IoNumbers hw = measure(VirtMode::HwSvt, trace_path);

    Table t({"Benchmark", "Baseline", "SW SVt", "HW SVt",
             "Paper base", "Paper SW", "Paper HW"});

    auto row = [&](const char *name, double b, double s, double h,
                   bool higher_better, double pb, double ps,
                   double ph) {
        double ss = higher_better ? s / b : b / s;
        double hs = higher_better ? h / b : b / h;
        t.addRow({name, Table::num(b, 1),
                  Table::num(ss, 2) + "x", Table::num(hs, 2) + "x",
                  Table::num(pb, 0), Table::num(ps, 2) + "x",
                  Table::num(ph, 2) + "x"});
    };

    row("Network latency (us)", base.net_lat_us, sw.net_lat_us,
        hw.net_lat_us, false, 163, 1.10, 2.38);
    row("Network bandwidth (Mbps)", base.net_bw_mbps, sw.net_bw_mbps,
        hw.net_bw_mbps, true, 9387, 1.00, 1.12);
    row("Disk randrd latency (us)", base.rd_lat_us, sw.rd_lat_us,
        hw.rd_lat_us, false, 126, 1.30, 2.18);
    row("Disk randrd bandwidth (KB/s)", base.rd_bw_kbps,
        sw.rd_bw_kbps, hw.rd_bw_kbps, true, 87136, 1.55, 2.31);
    row("Disk randwr latency (us)", base.wr_lat_us, sw.wr_lat_us,
        hw.wr_lat_us, false, 179, 1.05, 2.26);
    row("Disk randwr bandwidth (KB/s)", base.wr_bw_kbps,
        sw.wr_bw_kbps, hw.wr_bw_kbps, true, 55769, 1.18, 2.60);

    std::printf("Figure 7: speedup of SVt on the I/O subsystems\n\n%s\n",
                t.render().c_str());

    // The paper's HW SVt network-bandwidth number (1.12x) comes from
    // an analytical model that ignores the physical line rate
    // (9387 x 1.12 > 10 GbE). Reproduce that methodology: measure the
    // CPU-bound speedup on a hypothetical faster link and scale the
    // baseline by it.
    auto cpu_bound_mbps = [](VirtMode mode) {
        NestedSystem sys(mode);
        NetFabric fabric(sys.machine(),
                         sys.machine().costs().wireLatency,
                         4 * sys.machine().costs().linkBitsPerSec);
        VirtioNetStack net(sys.stack(), fabric);
        Netperf netperf(sys.stack(), net, fabric);
        return netperf.runStream(16384, msec(30)).mbps;
    };
    double model_ratio = cpu_bound_mbps(VirtMode::HwSvt) /
                         cpu_bound_mbps(VirtMode::Nested);
    std::printf("Network bandwidth, paper's analytical HW SVt model "
                "(no line-rate clamp):\n"
                "  %.0f Mbps x %.2f = %.0f Mbps   (paper: 9387 x 1.12 "
                "= 10513 Mbps)\n",
                base.net_bw_mbps, model_ratio,
                base.net_bw_mbps * model_ratio);
    return 0;
}
