/**
 * @file
 * Regenerates Figure 7: speedup of SVt on the I/O subsystems.
 *
 * Paper results (baseline absolute, then SW SVt / HW SVt speedups):
 *   network latency   163 us      1.10x / 2.38x
 *   network bandwidth 9387 Mbps   1.00x / 1.12x
 *   disk randrd lat   126 us      1.30x / 2.18x
 *   disk randrd bw    87136 KB/s  1.55x / 2.31x
 *   disk randwr lat   179 us      1.05x / 2.26x
 *   disk randwr bw    55769 KB/s  1.18x / 2.60x
 *
 * The paper's HW SVt numbers come from an analytical scaling model;
 * ours come from full simulation of the SVt hardware, which clamps
 * network bandwidth at the physical line rate (the paper's model can
 * exceed it; see EXPERIMENTS.md).
 */

#include <cstdio>
#include <string>

#include "arch/cost_model.h"
#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/bench_harness.h"
#include "system/cluster_spec.h"
#include "workloads/diskbench.h"
#include "workloads/remote_peer.h"

using namespace svtsim;

namespace {

/**
 * The netperf peer is a real second machine (the paper's bare-metal
 * netserver box), driven through a CrossLink on the parallel cluster
 * engine. The wire has the same latency/rate as the old single-queue
 * NetFabric model, so the timing structure is unchanged.
 */
void
runNet(ClusterContext &ctx, ScenarioResult &r, VirtMode mode,
       double rate_mult, bool full)
{
    ClusterBuild b =
        ClusterSpec()
            .machine("client", mode)
            .machine("peer", VirtMode::Native)
            .link("client", "peer", CostModel{}.wireLatency,
                  rate_mult * CostModel{}.linkBitsPerSec)
            .realize(ctx);

    VirtioNetStack net(b.stack("client"), b.port("client", "peer"));
    NetserverPeer peer(b.machine("peer"), b.port("peer", "client"));
    ClusterNetperf netperf(b.stack("client"), net);

    double lat_us = 0, bw_mbps = 0;
    b.driver("client", [&](NestedSystem &) {
        if (full)
            lat_us = netperf.runRr(1, 1, 60).meanUsec;
        bw_mbps = netperf
                      .runStream(16384, full ? msec(40) : msec(30))
                      .mbps;
    });

    b.run(ctx);
    if (full) {
        r.record("net_lat_us", lat_us);
        r.record("net_bw_mbps", bw_mbps);
    } else {
        r.record("cpu_bw_mbps", bw_mbps);
    }
    ctx.finish(b.cluster(), r);
}

void
runDisk(NestedSystem &sys, ScenarioResult &r)
{
    RamDisk disk(sys.machine(), "ramdisk");
    VirtioBlkStack blk(sys.stack(), disk);
    IoPing ioping(sys.stack(), blk);
    Fio fio(sys.stack(), blk);
    r.record("rd_lat_us", ioping.run(512, false, 60).meanUsec);
    r.record("wr_lat_us", ioping.run(512, true, 60).meanUsec);
    r.record("rd_bw_kbps", fio.run(4096, false, 4, msec(60)).kbPerSec);
    r.record("wr_bw_kbps", fio.run(4096, true, 4, msec(60)).kbPerSec);
}

} // namespace

int
main(int argc, char **argv)
{
    const VirtMode modes[] = {VirtMode::Nested, VirtMode::SwSvt,
                              VirtMode::HwSvt};

    BenchHarness bench(
        "fig7_io", "Figure 7: speedup of SVt on the I/O subsystems");
    for (VirtMode mode : modes) {
        bench.addCluster(
            std::string(virtModeName(mode)) + "-net", mode,
            [mode](ClusterContext &ctx, ScenarioResult &r) {
                runNet(ctx, r, mode, 1.0, true);
            });
        bench.add(std::string(virtModeName(mode)) + "-disk", mode,
                  runDisk);
    }
    // The paper's analytical-model methodology: the CPU-bound stream
    // bandwidth on a hypothetical 4x faster link (no line-rate clamp).
    for (VirtMode mode : {VirtMode::Nested, VirtMode::HwSvt}) {
        bench.addCluster(
            std::string(virtModeName(mode)) + "-cpu4x", mode,
            [mode](ClusterContext &ctx, ScenarioResult &r) {
                runNet(ctx, r, mode, 4.0, false);
            });
    }

    bench.onReport([&](const SweepResults &res) {
        auto net = [&](VirtMode m, const char *key) {
            return res.metric(std::string(virtModeName(m)) + "-net",
                              key);
        };
        auto disk = [&](VirtMode m, const char *key) {
            return res.metric(std::string(virtModeName(m)) + "-disk",
                              key);
        };

        Table t({"Benchmark", "Baseline", "SW SVt", "HW SVt",
                 "Paper base", "Paper SW", "Paper HW"});
        auto row = [&](const char *name, double b, double s, double h,
                       bool higher_better, double pb, double ps,
                       double ph) {
            double ss = higher_better ? s / b : b / s;
            double hs = higher_better ? h / b : b / h;
            t.addRow({name, Table::num(b, 1),
                      Table::num(ss, 2) + "x",
                      Table::num(hs, 2) + "x", Table::num(pb, 0),
                      Table::num(ps, 2) + "x",
                      Table::num(ph, 2) + "x"});
        };

        row("Network latency (us)",
            net(VirtMode::Nested, "net_lat_us"),
            net(VirtMode::SwSvt, "net_lat_us"),
            net(VirtMode::HwSvt, "net_lat_us"), false, 163, 1.10,
            2.38);
        row("Network bandwidth (Mbps)",
            net(VirtMode::Nested, "net_bw_mbps"),
            net(VirtMode::SwSvt, "net_bw_mbps"),
            net(VirtMode::HwSvt, "net_bw_mbps"), true, 9387, 1.00,
            1.12);
        row("Disk randrd latency (us)",
            disk(VirtMode::Nested, "rd_lat_us"),
            disk(VirtMode::SwSvt, "rd_lat_us"),
            disk(VirtMode::HwSvt, "rd_lat_us"), false, 126, 1.30,
            2.18);
        row("Disk randrd bandwidth (KB/s)",
            disk(VirtMode::Nested, "rd_bw_kbps"),
            disk(VirtMode::SwSvt, "rd_bw_kbps"),
            disk(VirtMode::HwSvt, "rd_bw_kbps"), true, 87136, 1.55,
            2.31);
        row("Disk randwr latency (us)",
            disk(VirtMode::Nested, "wr_lat_us"),
            disk(VirtMode::SwSvt, "wr_lat_us"),
            disk(VirtMode::HwSvt, "wr_lat_us"), false, 179, 1.05,
            2.26);
        row("Disk randwr bandwidth (KB/s)",
            disk(VirtMode::Nested, "wr_bw_kbps"),
            disk(VirtMode::SwSvt, "wr_bw_kbps"),
            disk(VirtMode::HwSvt, "wr_bw_kbps"), true, 55769, 1.18,
            2.60);

        std::printf("Figure 7: speedup of SVt on the I/O "
                    "subsystems\n\n%s\n",
                    t.render().c_str());

        // The paper's HW SVt network-bandwidth number (1.12x) comes
        // from an analytical model that ignores the physical line
        // rate (9387 x 1.12 > 10 GbE). Reproduce that methodology:
        // the CPU-bound speedup on a hypothetical faster link scales
        // the measured baseline.
        double base_bw = net(VirtMode::Nested, "net_bw_mbps");
        double model_ratio =
            res.metric("hw-svt-cpu4x", "cpu_bw_mbps") /
            res.metric("nested-baseline-cpu4x", "cpu_bw_mbps");
        std::printf(
            "Network bandwidth, paper's analytical HW SVt model "
            "(no line-rate clamp):\n"
            "  %.0f Mbps x %.2f = %.0f Mbps   (paper: 9387 x 1.12 "
            "= 10513 Mbps)\n",
            base_bw, model_ratio, base_bw * model_ratio);
    });
    return bench.main(argc, argv);
}
