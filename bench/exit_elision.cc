/**
 * @file
 * Exit-elision ladder sweep: posted interrupts + x2APIC
 * virtualization (rung 1) and multi-queue virtio with interrupt
 * coalescing (rung 2) across the three nested stacks.
 *
 * Runs fig7-class disk workloads (ioping latency + fio bandwidth) on
 * {baseline, SW SVt, HW SVt} x {posted-intr off/on} x {1, 2, 4
 * queues}, and a fig8-class memcached point (mutilate client on a
 * second machine) on {modes} x {posted-intr off/on} with 2 queues.
 * Reports p99 latency and the per-request nested exit structure: the
 * ladder's claim is that posted interrupts drive the
 * external-interrupt and EOI-trap counts toward zero, and coalescing
 * divides the completion-interrupt count by the batch size.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/bench_harness.h"
#include "system/cluster_spec.h"
#include "workloads/diskbench.h"
#include "workloads/remote_peer.h"

using namespace svtsim;

namespace {

/** One rung combination of the ladder. */
StackConfig
elisionConfig(VirtMode mode, bool posted, int queues)
{
    StackConfig cfg;
    cfg.mode = mode;
    cfg.postedInterrupts = posted;
    cfg.virtioQueues = queues;
    if (queues > 1) {
        // Multi-queue runs also coalesce completions (the knobs ride
        // together in the sweep, like a tuned production vhost).
        cfg.virtioCoalesceCount = 4;
        cfg.virtioCoalesceTimeout = usec(25);
    }
    return cfg;
}

std::string
diskName(VirtMode mode, bool posted, int queues)
{
    return std::string(virtModeName(mode)) + "-disk-pi" +
           (posted ? "1" : "0") + "-q" + std::to_string(queues);
}

std::string
netName(VirtMode mode, bool posted)
{
    return std::string(virtModeName(mode)) + "-net-pi" +
           (posted ? "1" : "0") + "-q2";
}

/** fig7-class disk point plus the per-request exit structure. */
void
runDisk(NestedSystem &sys, ScenarioResult &r, bool quick)
{
    RamDisk disk(sys.machine(), "ramdisk");
    VirtioBlkStack blk(sys.stack(), disk);
    IoPing ioping(sys.stack(), blk);
    Fio fio(sys.stack(), blk);

    IoPingResult lat = ioping.run(4096, false, quick ? 40 : 200);
    FioResult bw = fio.run(4096, false, 4, quick ? msec(20) : msec(60));
    r.record("mean_us", lat.meanUsec);
    r.record("p99_us", lat.p99Usec);
    r.record("bw_kbps", bw.kbPerSec);

    double reqs = static_cast<double>(blk.completedCount());
    const Machine &m = sys.machine();
    r.record("requests", reqs);
    r.record("extint_per_req",
             static_cast<double>(
                 m.counter("vmx.exit.EXTERNAL_INTERRUPT")) /
                 reqs);
    r.record("wrmsr_per_req",
             static_cast<double>(m.counter("l2.exit.MSR_WRITE")) / reqs);
    r.record("elided_posted_per_req",
             static_cast<double>(m.counter("l2.exit.elided.posted")) /
                 reqs);
    r.record("elided_eoi_per_req",
             static_cast<double>(m.counter("l2.exit.elided.eoi")) /
                 reqs);
}

/** fig8-class memcached point across a CrossLink. */
void
runNet(ClusterContext &ctx, ScenarioResult &r, VirtMode mode,
       bool posted, bool quick)
{
    ClusterBuild b =
        ClusterSpec()
            .machine("server", mode, elisionConfig(mode, posted, 2))
            .machine("client", VirtMode::Native)
            .link("server", "client")
            .realize(ctx);

    VirtioNetStack net(b.stack("server"), b.port("server", "client"));
    MemcachedServer server(b.stack("server"), net);
    MutilateClient client(b.machine("client"),
                          b.port("client", "server"));

    const Ticks duration = quick ? msec(30) : msec(150);
    const double qps = 10000.0;
    MemcachedPoint pt;
    b.driver("server",
             [&](NestedSystem &) { server.serveUntil(duration); });
    b.driver("client",
             [&](NestedSystem &) { pt = client.runLoad(qps, duration); });

    b.run(ctx);
    r.record("p99_us", pt.p99Usec);
    r.record("avg_us", pt.avgUsec);
    r.record("achieved_qps", pt.achievedQps);
    double reqs = static_cast<double>(
        pt.completed > 0 ? pt.completed : 1);
    const Machine &m = b.machine("server");
    r.record("extint_per_req",
             static_cast<double>(
                 m.counter("vmx.exit.EXTERNAL_INTERRUPT")) /
                 reqs);
    r.record("wrmsr_per_req",
             static_cast<double>(m.counter("l2.exit.MSR_WRITE")) / reqs);
    r.record("elided_posted_per_req",
             static_cast<double>(m.counter("l2.exit.elided.posted")) /
                 reqs);
    ctx.finish(b.cluster(), r);
}

} // namespace

int
main(int argc, char **argv)
{
    // --quick is ours; strip it before the harness (which rejects
    // unknown arguments for sweep benches) sees the command line.
    bool quick = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
            continue;
        }
        args.push_back(argv[i]);
    }

    const VirtMode modes[] = {VirtMode::Nested, VirtMode::SwSvt,
                              VirtMode::HwSvt};

    BenchHarness bench("exit_elision",
                       "exit-elision ladder: posted interrupts + "
                       "multi-queue virtio with coalescing");
    for (VirtMode mode : modes) {
        for (bool posted : {false, true}) {
            for (int queues : {1, 2, 4}) {
                bench.add(diskName(mode, posted, queues), mode,
                          elisionConfig(mode, posted, queues),
                          [quick](NestedSystem &sys,
                                  ScenarioResult &r) {
                              runDisk(sys, r, quick);
                          });
            }
            bench.addCluster(
                netName(mode, posted), mode,
                [mode, posted, quick](ClusterContext &ctx,
                                      ScenarioResult &r) {
                    runNet(ctx, r, mode, posted, quick);
                });
        }
    }

    bench.onReport([&](const SweepResults &res) {
        Table t({"Scenario", "p99 (us)", "BW (KB/s)", "extint/req",
                 "wrmsr/req", "elided/req"});
        for (VirtMode mode : modes) {
            for (bool posted : {false, true}) {
                for (int queues : {1, 2, 4}) {
                    const auto &r =
                        res.at(diskName(mode, posted, queues));
                    t.addRow({r.name(),
                              Table::num(r.metric("p99_us"), 1),
                              Table::num(r.metric("bw_kbps"), 0),
                              Table::num(r.metric("extint_per_req"),
                                         2),
                              Table::num(r.metric("wrmsr_per_req"),
                                         2),
                              Table::num(
                                  r.metric("elided_posted_per_req"),
                                  2)});
                }
            }
        }
        std::printf("Exit-elision ladder, fig7-class disk "
                    "workloads\n\n%s\n",
                    t.render().c_str());

        Table n({"Scenario", "p99 (us)", "avg (us)", "qps",
                 "extint/req", "wrmsr/req"});
        for (VirtMode mode : modes) {
            for (bool posted : {false, true}) {
                const auto &r = res.at(netName(mode, posted));
                n.addRow({r.name(), Table::num(r.metric("p99_us"), 0),
                          Table::num(r.metric("avg_us"), 0),
                          Table::num(r.metric("achieved_qps"), 0),
                          Table::num(r.metric("extint_per_req"), 2),
                          Table::num(r.metric("wrmsr_per_req"), 2)});
            }
        }
        std::printf("Exit-elision ladder, fig8-class memcached "
                    "points (2 queues)\n\n%s\n",
                    n.render().c_str());

        // The acceptance line: how far rung 1 + rung 2 cut the
        // per-request nested exit structure on the baseline stack.
        const auto &off = res.at(diskName(VirtMode::Nested, false, 1));
        const auto &on = res.at(diskName(VirtMode::Nested, true, 4));
        std::printf(
            "Nested baseline, per request: %.2f extint + %.2f wrmsr "
            "exits (pi off, 1 queue) -> %.2f + %.2f (pi on, 4 queues "
            "coalesced)\n",
            off.metric("extint_per_req"), off.metric("wrmsr_per_req"),
            on.metric("extint_per_req"), on.metric("wrmsr_per_req"));
    });
    return bench.main(static_cast<int>(args.size()), args.data());
}
