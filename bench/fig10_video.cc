/**
 * @file
 * Regenerates Figure 10: dropped frames during 5 minutes of 4K video
 * playback repackaged at 24/60/120 FPS.
 *
 * Paper: baseline drops 0 / 3 / 40 frames; SVt drops 0 / 0 / 26
 * (0.65x at 120 FPS).
 */

#include <cstdio>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "stats/table.h"
#include "system/nested_system.h"
#include "system/trace_session.h"
#include "workloads/video.h"

using namespace svtsim;

namespace {

VideoResult
measure(VirtMode mode, double fps, const std::string &trace_path)
{
    NestedSystem sys(mode);
    ScopedTrace trace(sys.machine(), trace_path,
                      std::string(virtModeName(mode)) + "-" +
                          std::to_string(static_cast<int>(fps)) +
                          "fps");
    RamDisk disk(sys.machine(), "media");
    VirtioBlkStack blk(sys.stack(), disk);
    VideoPlayback player(sys.stack(), blk);
    return player.run(fps, sec(300));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path = parseTraceFlag(argc, argv);
    const double rates[] = {24, 60, 120};
    const char *paper_base[] = {"0", "3", "40"};
    const char *paper_svt[] = {"0", "0", "26"};

    Table t({"FPS", "Baseline drops", "SVt drops", "Paper base",
             "Paper SVt", "Busy (base)"});
    for (int i = 0; i < 3; ++i) {
        VideoResult base =
            measure(VirtMode::Nested, rates[i], trace_path);
        VideoResult svt =
            measure(VirtMode::SwSvt, rates[i], trace_path);
        t.addRow({Table::num(rates[i], 0),
                  std::to_string(base.droppedFrames),
                  std::to_string(svt.droppedFrames), paper_base[i],
                  paper_svt[i],
                  Table::num(base.busyFraction * 100, 0) + "%"});
    }
    std::printf("Figure 10: dropped frames vs video frame rate "
                "(5 min of 4K playback)\n\n%s\n",
                t.render().c_str());
    return 0;
}
