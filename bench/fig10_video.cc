/**
 * @file
 * Regenerates Figure 10: dropped frames during 5 minutes of 4K video
 * playback repackaged at 24/60/120 FPS.
 *
 * Paper: baseline drops 0 / 3 / 40 frames; SVt drops 0 / 0 / 26
 * (0.65x at 120 FPS).
 */

#include <cstdio>
#include <string>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/video.h"

using namespace svtsim;

namespace {

std::string
playName(VirtMode mode, double fps)
{
    return std::string(virtModeName(mode)) + "-" +
           std::to_string(static_cast<int>(fps)) + "fps";
}

} // namespace

int
main(int argc, char **argv)
{
    const double rates[] = {24, 60, 120};
    const char *paper_base[] = {"0", "3", "40"};
    const char *paper_svt[] = {"0", "0", "26"};

    BenchHarness bench("fig10_video",
                       "Figure 10: dropped frames vs video frame "
                       "rate (5 min of 4K playback)");
    for (VirtMode mode : {VirtMode::Nested, VirtMode::SwSvt}) {
        for (double fps : rates) {
            bench.add(playName(mode, fps), mode,
                      [fps](NestedSystem &sys, ScenarioResult &r) {
                          RamDisk disk(sys.machine(), "media");
                          VirtioBlkStack blk(sys.stack(), disk);
                          VideoPlayback player(sys.stack(), blk);
                          VideoResult v = player.run(fps, sec(300));
                          r.record("dropped_frames", v.droppedFrames);
                          r.record("busy_fraction", v.busyFraction);
                      });
        }
    }

    bench.onReport([&](const SweepResults &res) {
        Table t({"FPS", "Baseline drops", "SVt drops", "Paper base",
                 "Paper SVt", "Busy (base)"});
        for (int i = 0; i < 3; ++i) {
            const auto &base =
                res.at(playName(VirtMode::Nested, rates[i]));
            const auto &svt =
                res.at(playName(VirtMode::SwSvt, rates[i]));
            t.addRow({Table::num(rates[i], 0),
                      Table::num(base.metric("dropped_frames"), 0),
                      Table::num(svt.metric("dropped_frames"), 0),
                      paper_base[i], paper_svt[i],
                      Table::num(base.metric("busy_fraction") * 100,
                                 0) +
                          "%"});
        }
        std::printf("Figure 10: dropped frames vs video frame rate "
                    "(5 min of 4K playback)\n\n%s\n",
                    t.render().c_str());
    });
    return bench.main(argc, argv);
}
