/**
 * @file
 * Fleet-scale multi-tenant bench: the L0 fleet scheduler places a
 * mixed tenant set (a memcached pool, a TPC-C database, soft-realtime
 * video) across the full Table 4 topology (2 sockets x 8 cores x
 * 2-way SMT) under each SMT placement policy, and reports per-tenant
 * SLO attainment, interference, and fleet throughput within SLA.
 *
 * The paper's Table 4 claim at fleet scale: dedicating each slot's
 * SMT sibling to its SVt thread (svt-pair) beats leaving the sibling
 * idle (isolate) — the sibling pays for itself — and consolidating a
 * second vCPU onto the sibling (sibling-share) trades the extra
 * capacity for contention-inflated tail latencies.
 *
 * Results are byte-identical for any --jobs / --cluster-jobs value
 * (CI diffs the JSON across worker counts).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "stats/table.h"
#include "system/bench_harness.h"
#include "system/fleet/fleet_scheduler.h"

using namespace svtsim;

namespace {

/** The mixed tenant set; quick mode shrinks demand and durations so
 *  CI sanity runs stay fast. */
FleetSpec
baseSpec(bool quick)
{
    FleetSpec spec;
    spec.topology = TopologySpec{2, 8, 2};
    TenantSpec mc = memcachedTenant("mc", quick ? 2 : 6, 6000.0);
    mc.duration = quick ? msec(60) : msec(200);
    TenantSpec db = tpccTenant("db", quick ? 1 : 5);
    db.duration = quick ? msec(100) : msec(400);
    TenantSpec vid = videoTenant("video", quick ? 1 : 5, 60.0, 0.01);
    vid.duration = quick ? msec(500) : sec(2);
    spec.tenants = {mc, db, vid};
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    // --quick is ours; strip it before the harness (which rejects
    // unknown arguments for sweep benches) sees the command line.
    bool quick = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
            continue;
        }
        args.push_back(argv[i]);
    }

    const PlacementPolicy policies[] = {PlacementPolicy::SvtPair,
                                        PlacementPolicy::SiblingShare,
                                        PlacementPolicy::Isolate};

    BenchHarness bench("fleet_scale",
                       "fleet-scale multi-tenant SMT placement "
                       "policy sweep on the full 2x8x2 topology");
    for (PlacementPolicy policy : policies) {
        FleetSpec spec = baseSpec(quick);
        spec.policy = policy;
        bench.addCluster(
            placementPolicyName(policy),
            policy == PlacementPolicy::SvtPair ? spec.pairedMode
                                               : VirtMode::Nested,
            [spec](ClusterContext &ctx, ScenarioResult &r) {
                FleetScheduler scheduler(spec, ctx.seed());
                scheduler.run(ctx, r);
            });
    }

    bench.onReport([&](const SweepResults &res) {
        const FleetSpec spec = baseSpec(quick);
        std::printf("Fleet-scale SMT placement policies: %d tenants, "
                    "%d vCPUs on %dx%dx%d\n\n",
                    static_cast<int>(spec.tenants.size()),
                    totalVcpuDemand(spec), spec.topology.sockets,
                    spec.topology.coresPerSocket,
                    spec.topology.smtWays);

        Table per({"Tenant", "SLO", "svt-pair", "sibling-share",
                   "isolate"});
        for (const TenantSpec &t : spec.tenants) {
            std::vector<std::string> row{t.name,
                                         Table::num(t.sloTarget, 2)};
            for (PlacementPolicy policy : policies) {
                const ScenarioResult &r =
                    res.at(placementPolicyName(policy));
                row.push_back(
                    Table::num(r.metric(t.name + "_slo_value"), 2) +
                    (r.metric(t.name + "_slo_met") > 0 ? " ok"
                                                       : " MISS"));
            }
            per.addRow(row);
        }
        std::printf("Per-tenant SLO value (memcached: p99 us; tpcc: "
                    "mean txn ms; video: drop fraction)\n\n%s\n",
                    per.render().c_str());

        Table fleet({"Policy", "Fleet p99 (us)", "QPS under SLA",
                     "Tenants met", "Mean interference"});
        for (PlacementPolicy policy : policies) {
            const ScenarioResult &r =
                res.at(placementPolicyName(policy));
            fleet.addRow(
                {placementPolicyName(policy),
                 Table::num(r.metric("fleet_p99_usec"), 1),
                 Table::num(r.metric("fleet_qps_under_sla"), 0),
                 Table::num(r.metric("fleet_tenants_met"), 0),
                 Table::num(r.metric("fleet_mean_interference") * 100,
                            1) +
                     "%"});
        }
        std::printf("%s\n", fleet.render().c_str());

        const double pairP99 = res.metric("svt-pair", "fleet_p99_usec");
        const double isoP99 = res.metric("isolate", "fleet_p99_usec");
        std::printf("svt-pair p99 %.1f us vs isolate %.1f us: the SMT "
                    "sibling %s for itself (paper Table 4: SVt "
                    "pairing beats an idle sibling)\n",
                    pairP99, isoP99,
                    pairP99 <= isoP99 ? "pays" : "DOES NOT pay");
    });
    return bench.main(static_cast<int>(args.size()), args.data());
}
