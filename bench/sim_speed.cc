/**
 * @file
 * Simulator-speed bench: wall-clock throughput of the discrete-event
 * hot path (events/sec and simulated-us per wall-second), measured for
 * the timing-wheel EventQueue and for the retained pre-wheel
 * ReferenceEventQueue on the same workloads, so the wheel's speedup is
 * part of the committed record (BENCH_SPEED.json) and CI can catch
 * regressions.
 *
 * Workloads:
 *  - schedule_heavy: bursts of short timers, all fired — the pure
 *    schedule->fire cycle that dominates nested-trap simulation.
 *  - cancel_heavy:   watchdog churn — most events are descheduled
 *    before firing (re-armed timeouts, TSC deadlines).
 *  - mixed_fig7:     the fig7-style I/O mix — per-round completion +
 *    IPI timers at ns scale, a cancelled timeout, occasional slow
 *    timers, randomized (seeded) deltas.
 *
 * Unlike the sweep benches this measures host wall clock, so the JSON
 * is not byte-deterministic; the workload event counts and simulated
 * tick totals are, and CI compares the machine-independent
 * wheel/reference speedup ratio rather than raw rates.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/reference_event_queue.h"
#include "sim/ticks.h"
#include "system/bench_harness.h"

using namespace svtsim;

namespace {

/** One measured run of a workload against one queue implementation. */
struct SpeedResult
{
    std::uint64_t fired = 0;   ///< Events that executed.
    std::uint64_t ops = 0;     ///< schedules + cancels + fires.
    Ticks simTicks = 0;        ///< Simulated time covered.
    double wallSec = 0.0;      ///< Best-of-N wall time.

    double eventsPerSec() const
    {
        return wallSec > 0 ? static_cast<double>(fired) / wallSec : 0;
    }
    double opsPerSec() const
    {
        return wallSec > 0 ? static_cast<double>(ops) / wallSec : 0;
    }
    double simUsPerWallSec() const
    {
        return wallSec > 0 ? toUsec(simTicks) / wallSec : 0;
    }
};

double
elapsedSec(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * A self-rescheduling periodic timer: what every device completion
 * poller, TSC deadline and per-connection timeout in the simulator
 * looks like. The 24-byte capture is representative of the repo's
 * real closures (up to 40 bytes), which the old std::function-based
 * queue heap-allocated on every schedule.
 */
template <class Q>
struct PeriodicTimer
{
    Q *q;
    std::uint64_t *fired;
    Ticks period;

    void
    operator()() const
    {
        ++*fired;
        q->scheduleIn(period, *this);
    }
};

/**
 * Schedule-heavy: a large population of concurrently outstanding
 * periodic timers (many guests x devices x timeouts), every event
 * fired and rescheduled. This is the pure schedule->fire cycle at the
 * fig7 operating point, where the wheel's O(1) schedule/fire beats
 * the heap's O(log n) sift plus per-event record allocation.
 */
template <class Q>
SpeedResult
runScheduleHeavy(std::uint64_t fireTarget)
{
    constexpr int population = 32768;
    Q q;
    SpeedResult r;
    std::uint64_t fired = 0;
    // Periods from 1us to ~33us: a realistic spread of deadlines that
    // keeps all wheel levels 0-3 and the heap's full depth exercised.
    for (int i = 0; i < population; ++i) {
        const Ticks period = usec(1) + nsec(i);
        q.scheduleIn(period,
                     PeriodicTimer<Q>{&q, &fired, period});
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (fired < fireTarget)
        q.advanceBy(usec(64));
    r.wallSec = elapsedSec(t0);
    r.fired = fired;
    r.ops = 2 * fired; // every fire is paired with a reschedule
    r.simTicks = q.now();
    return r;
}

/**
 * Cancel-heavy: a large ring of outstanding watchdogs, each cancelled
 * and re-armed before its deadline (the I/O timeout pattern: armed per
 * request, cancelled on completion). Almost no event ever fires; the
 * old queue accumulated every cancelled entry as lazy-deletion heap
 * debris, the wheel unlinks eagerly.
 */
template <class Q>
SpeedResult
runCancelHeavy(std::uint64_t iters)
{
    constexpr std::size_t ring = 16384;
    Q q;
    SpeedResult r;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> watchdogs(ring);
    for (std::size_t i = 0; i < ring; ++i)
        watchdogs[i] = q.scheduleIn(msec(10) + usec(i), [] {});
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        // The ring wraps every ring * 200ns = 3.3ms of simulated time,
        // well inside the 10ms deadline: every watchdog is cancelled
        // before it can fire.
        std::uint64_t &slot = watchdogs[i % ring];
        q.deschedule(slot);
        slot = q.scheduleIn(msec(10), [] {});
        q.scheduleIn(nsec(100), [&fired] { ++fired; });
        q.advanceBy(nsec(200));
        r.ops += 4;
    }
    r.wallSec = elapsedSec(t0);
    r.fired = fired;
    r.ops += fired;
    r.simTicks = q.now();
    return r;
}

/**
 * Fig7-style I/O mix: per round a device-completion timer and an IPI
 * at randomized ns-scale deltas, a timeout armed and cancelled, and an
 * occasional slow (ms-scale) timer that exercises the upper wheel
 * levels. The delta sequence is seeded, so both implementations replay
 * the identical workload.
 */
template <class Q>
SpeedResult
runMixedFig7(std::uint64_t iters, std::uint64_t seed)
{
    constexpr int connections = 4096;
    Q q;
    Rng rng(seed);
    SpeedResult r;
    std::uint64_t fired = 0;
    // Background population: per-connection keepalive timers that
    // re-arm themselves on every fire (the memcached fig8 pattern).
    for (int i = 0; i < connections; ++i) {
        const Ticks period = usec(50) + nsec(16 * i);
        q.scheduleIn(period,
                     PeriodicTimer<Q>{&q, &fired, period});
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        q.scheduleIn(nsec(200 + static_cast<Ticks>(rng.below(800))),
                     [&fired] { ++fired; });
        q.scheduleIn(nsec(100 + static_cast<Ticks>(rng.below(300))),
                     [&fired] { ++fired; });
        const std::uint64_t timeout = q.scheduleIn(usec(20), [] {});
        r.ops += 3;
        if (rng.chance(0.05)) {
            q.scheduleIn(msec(1) +
                             static_cast<Ticks>(rng.below(1u << 20)),
                         [&fired] { ++fired; });
            ++r.ops;
        }
        q.advanceBy(nsec(500 + static_cast<Ticks>(rng.below(500))));
        q.deschedule(timeout);
        ++r.ops;
    }
    q.advanceBy(msec(5));
    r.wallSec = elapsedSec(t0);
    r.fired = fired;
    r.ops += fired;
    r.simTicks = q.now();
    return r;
}

/** Best-of-N wrapper: keeps the run with the smallest wall time. */
template <class Fn>
SpeedResult
bestOf(int reps, Fn fn)
{
    SpeedResult best = fn();
    for (int i = 1; i < reps; ++i) {
        SpeedResult r = fn();
        if (r.wallSec < best.wallSec)
            best = r;
    }
    return best;
}

struct WorkloadRow
{
    std::string name;
    SpeedResult wheel;
    SpeedResult reference;

    double speedup() const
    {
        return reference.eventsPerSec() > 0
                   ? wheel.eventsPerSec() / reference.eventsPerSec()
                   : 0;
    }
};

void
writeResult(std::ostream &os, const char *key, const SpeedResult &r,
            const char *trail)
{
    os << "    \"" << key << "\": {"
       << "\"events\": " << r.fired << ", \"ops\": " << r.ops
       << ", \"sim_ticks\": " << r.simTicks
       << ", \"wall_s\": " << r.wallSec
       << ", \"events_per_sec\": " << r.eventsPerSec()
       << ", \"ops_per_sec\": " << r.opsPerSec()
       << ", \"sim_us_per_wall_s\": " << r.simUsPerWallSec() << "}"
       << trail << "\n";
}

void
writeJson(std::ostream &os, const std::vector<WorkloadRow> &rows,
          bool quick, std::uint64_t seed)
{
    os << "{\n";
    os << "  \"bench\": \"sim_speed\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const WorkloadRow &row = rows[i];
        os << "  {\n";
        os << "    \"name\": \"" << row.name << "\",\n";
        writeResult(os, "wheel", row.wheel, ",");
        writeResult(os, "reference", row.reference, ",");
        os << "    \"speedup_events_per_sec\": " << row.speedup()
           << "\n";
        os << "  }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

int
runSpeedBench(int argc, char **argv, const BenchOptions &options)
{
    std::string outPath = "BENCH_SPEED.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--out=", 6) == 0) {
            outPath = arg + 6;
        } else if (std::strcmp(arg, "--quick") == 0) {
            quick = true;
        } else {
            std::cerr << "sim_speed: unknown argument '" << arg
                      << "'\n"
                      << "usage: sim_speed [--out=FILE] [--quick]\n";
            return 2;
        }
    }

    // Quick mode keeps sanitizer CI runs fast; the full mode sizes
    // give stable rates on an unloaded machine.
    const int reps = quick ? 1 : 3;
    const std::uint64_t scheduleIters = quick ? 200000 : 3200000;
    const std::uint64_t cancelIters = quick ? 20000 : 400000;
    const std::uint64_t mixedIters = quick ? 20000 : 300000;
    const std::uint64_t seed = options.seed;

    std::vector<WorkloadRow> rows;
    rows.push_back(
        {"schedule_heavy",
         bestOf(reps,
                [&] { return runScheduleHeavy<EventQueue>(
                          scheduleIters); }),
         bestOf(reps, [&] {
             return runScheduleHeavy<ReferenceEventQueue>(
                 scheduleIters);
         })});
    rows.push_back(
        {"cancel_heavy",
         bestOf(reps,
                [&] { return runCancelHeavy<EventQueue>(cancelIters); }),
         bestOf(reps, [&] {
             return runCancelHeavy<ReferenceEventQueue>(cancelIters);
         })});
    rows.push_back(
        {"mixed_fig7",
         bestOf(reps,
                [&] {
                    return runMixedFig7<EventQueue>(mixedIters, seed);
                }),
         bestOf(reps, [&] {
             return runMixedFig7<ReferenceEventQueue>(mixedIters,
                                                      seed);
         })});

    // Sanity: both implementations must have processed the identical
    // deterministic workload.
    for (const WorkloadRow &row : rows) {
        if (row.wheel.fired != row.reference.fired ||
            row.wheel.simTicks != row.reference.simTicks) {
            std::cerr << "sim_speed: wheel/reference divergence in "
                      << row.name << " (fired " << row.wheel.fired
                      << " vs " << row.reference.fired << ")\n";
            return 1;
        }
    }

    std::ostream *os = &std::cout;
    std::ofstream file;
    if (outPath != "-") {
        file.open(outPath);
        if (!file) {
            std::cerr << "sim_speed: cannot open '" << outPath
                      << "'\n";
            return 1;
        }
        os = &file;
    }
    writeJson(*os, rows, quick, seed);

    for (const WorkloadRow &row : rows) {
        std::printf("%-16s wheel %12.0f ev/s   reference %12.0f ev/s"
                    "   speedup %5.2fx\n",
                    row.name.c_str(), row.wheel.eventsPerSec(),
                    row.reference.eventsPerSec(), row.speedup());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("sim_speed",
                       "wall-clock event-queue throughput: timing "
                       "wheel vs reference heap (events/sec, "
                       "simulated-us per wall-second)");
    bench.onCustomMain(runSpeedBench);
    return bench.main(argc, argv);
}
