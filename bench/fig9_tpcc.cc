/**
 * @file
 * Regenerates Figure 9: TPC-C (sysbench-tpcc over a PostgreSQL-like
 * server) transaction throughput, baseline vs SW SVt.
 *
 * Paper: baseline 6.37 Ktpm, SVt speedup 1.18x.
 */

#include <cstdio>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/tpcc.h"

using namespace svtsim;

namespace {

void
runTpcc(NestedSystem &sys, ScenarioResult &r)
{
    NetFabric fabric(sys.machine(),
                     sys.machine().costs().wireLatency,
                     sys.machine().costs().linkBitsPerSec);
    VirtioNetStack net(sys.stack(), fabric);
    RamDisk disk(sys.machine(), "pgdata");
    VirtioBlkStack blk(sys.stack(), disk);
    Tpcc tpcc(sys.stack(), net, fabric, blk);
    TpccResult t = tpcc.run(sec(2));
    r.record("tpm", t.tpm);
    r.record("mean_txn_msec", t.meanTxnMsec);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("fig9_tpcc",
                       "Figure 9: TPC-C + PostgreSQL throughput");
    bench.add("baseline", VirtMode::Nested, runTpcc);
    bench.add("sw-svt", VirtMode::SwSvt, runTpcc);
    bench.add("hw-svt", VirtMode::HwSvt, runTpcc);

    bench.onReport([](const SweepResults &res) {
        double base_tpm = res.metric("baseline", "tpm");
        Table t({"System", "Ktpm", "Mean txn (ms)", "Speedup",
                 "Paper"});
        t.addRow({"Baseline", Table::num(base_tpm / 1000.0, 2),
                  Table::num(res.metric("baseline", "mean_txn_msec"),
                             2),
                  "-", "6.37 Ktpm"});
        t.addRow({"SW SVt",
                  Table::num(res.metric("sw-svt", "tpm") / 1000.0, 2),
                  Table::num(res.metric("sw-svt", "mean_txn_msec"),
                             2),
                  Table::num(res.metric("sw-svt", "tpm") / base_tpm,
                             2) +
                      "x",
                  "1.18x"});
        t.addRow({"HW SVt",
                  Table::num(res.metric("hw-svt", "tpm") / 1000.0, 2),
                  Table::num(res.metric("hw-svt", "mean_txn_msec"),
                             2),
                  Table::num(res.metric("hw-svt", "tpm") / base_tpm,
                             2) +
                      "x",
                  "(modeled)"});
        std::printf("Figure 9: TPC-C + PostgreSQL throughput\n\n%s\n",
                    t.render().c_str());
    });
    return bench.main(argc, argv);
}
