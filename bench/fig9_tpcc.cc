/**
 * @file
 * Regenerates Figure 9: TPC-C (sysbench-tpcc over a PostgreSQL-like
 * server) transaction throughput, baseline vs SW SVt.
 *
 * Paper: baseline 6.37 Ktpm, SVt speedup 1.18x.
 */

#include <cstdio>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "stats/table.h"
#include "system/nested_system.h"
#include "system/trace_session.h"
#include "workloads/tpcc.h"

using namespace svtsim;

namespace {

TpccResult
measure(VirtMode mode, const std::string &trace_path)
{
    NestedSystem sys(mode);
    ScopedTrace trace(sys.machine(), trace_path, virtModeName(mode));
    NetFabric fabric(sys.machine(), sys.machine().costs().wireLatency,
                     sys.machine().costs().linkBitsPerSec);
    VirtioNetStack net(sys.stack(), fabric);
    RamDisk disk(sys.machine(), "pgdata");
    VirtioBlkStack blk(sys.stack(), disk);
    Tpcc tpcc(sys.stack(), net, fabric, blk);
    return tpcc.run(sec(2));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path = parseTraceFlag(argc, argv);
    TpccResult base = measure(VirtMode::Nested, trace_path);
    TpccResult sw = measure(VirtMode::SwSvt, trace_path);
    TpccResult hw = measure(VirtMode::HwSvt, trace_path);

    Table t({"System", "Ktpm", "Mean txn (ms)", "Speedup", "Paper"});
    t.addRow({"Baseline", Table::num(base.tpm / 1000.0, 2),
              Table::num(base.meanTxnMsec, 2), "-", "6.37 Ktpm"});
    t.addRow({"SW SVt", Table::num(sw.tpm / 1000.0, 2),
              Table::num(sw.meanTxnMsec, 2),
              Table::num(sw.tpm / base.tpm, 2) + "x", "1.18x"});
    t.addRow({"HW SVt", Table::num(hw.tpm / 1000.0, 2),
              Table::num(hw.meanTxnMsec, 2),
              Table::num(hw.tpm / base.tpm, 2) + "x", "(modeled)"});

    std::printf("Figure 9: TPC-C + PostgreSQL throughput\n\n%s\n",
                t.render().c_str());
    return 0;
}
