/**
 * @file
 * Ablation: hardware VMCS shadowing on/off (Section 2.1 notes Intel's
 * shadowing gives "limited benefits"; this quantifies how much of the
 * nested trap cost it absorbs, and how SVt performs without it).
 */

#include <cstdio>

#include "stats/table.h"
#include "system/nested_system.h"
#include "workloads/microbench.h"

using namespace svtsim;

namespace {

double
cpuidUsec(VirtMode mode, bool shadowing, std::uint64_t &l1_traps)
{
    StackConfig cfg;
    cfg.hwVmcsShadowing = shadowing;
    NestedSystem sys(mode, cfg);
    auto r = CpuidMicrobench::run(sys.machine(), sys.api());
    l1_traps = sys.machine().counter("l0.exit.VMREAD") +
               sys.machine().counter("l0.exit.VMWRITE");
    return r.meanUsec;
}

} // namespace

int
main()
{
    Table t({"System", "Shadowing", "cpuid (us)",
             "L1 VMCS traps (total)"});
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        for (bool sh : {true, false}) {
            std::uint64_t traps = 0;
            double us = cpuidUsec(mode, sh, traps);
            t.addRow({virtModeName(mode), sh ? "on" : "off",
                      Table::num(us, 2), std::to_string(traps)});
        }
    }
    std::printf("Ablation: hardware VMCS shadowing\n\n%s\n",
                t.render().c_str());
    std::printf("Without shadowing, every L1 vmread/vmwrite traps to "
                "L0; SVt absorbs most of the extra cost because the\n"
                "trap round shrinks from a full context switch to a "
                "thread stall/resume pair.\n");
    return 0;
}
