/**
 * @file
 * Ablation: hardware VMCS shadowing on/off (Section 2.1 notes Intel's
 * shadowing gives "limited benefits"; this quantifies how much of the
 * nested trap cost it absorbs, and how SVt performs without it).
 */

#include <cstdio>
#include <string>

#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/microbench.h"

using namespace svtsim;

namespace {

std::string
shadowName(VirtMode mode, bool shadowing)
{
    return std::string(virtModeName(mode)) +
           (shadowing ? "-shadow" : "-noshadow");
}

void
runCpuid(NestedSystem &sys, ScenarioResult &r)
{
    r.record("cpuid_us",
             CpuidMicrobench::run(sys.machine(), sys.api()).meanUsec);
    r.record("l1_vmcs_traps",
             static_cast<double>(
                 sys.machine().counter("l0.exit.VMREAD") +
                 sys.machine().counter("l0.exit.VMWRITE")));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("ablation_shadowing",
                       "Ablation: hardware VMCS shadowing");
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        for (bool sh : {true, false}) {
            StackConfig cfg;
            cfg.hwVmcsShadowing = sh;
            bench.add(shadowName(mode, sh), mode, cfg, runCpuid);
        }
    }

    bench.onReport([](const SweepResults &res) {
        Table t({"System", "Shadowing", "cpuid (us)",
                 "L1 VMCS traps (total)"});
        for (VirtMode mode :
             {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
            for (bool sh : {true, false}) {
                const auto &r = res.at(shadowName(mode, sh));
                t.addRow({virtModeName(mode), sh ? "on" : "off",
                          Table::num(r.metric("cpuid_us"), 2),
                          Table::num(r.metric("l1_vmcs_traps"), 0)});
            }
        }
        std::printf("Ablation: hardware VMCS shadowing\n\n%s\n",
                    t.render().c_str());
        std::printf(
            "Without shadowing, every L1 vmread/vmwrite traps to "
            "L0; SVt absorbs most of the extra cost because the\n"
            "trap round shrinks from a full context switch to a "
            "thread stall/resume pair.\n");
    });
    return bench.main(argc, argv);
}
