/**
 * @file
 * Regenerates Figure 6: execution time of a cpuid instruction at each
 * virtualization level, with and without SVt.
 *
 * Paper: L0 0.05 us; L2 (nested baseline) 10.40 us; SW SVt 1.23x
 * speedup; HW SVt 1.94x speedup.
 */

#include <cstdio>

#include "stats/table.h"
#include "system/nested_system.h"
#include "workloads/microbench.h"

using namespace svtsim;

int
main()
{
    struct Bar
    {
        const char *name;
        VirtMode mode;
    };
    const Bar bars[] = {
        {"L0", VirtMode::Native},
        {"L1", VirtMode::Single},
        {"L2", VirtMode::Nested},
        {"SW SVt", VirtMode::SwSvt},
        {"HW SVt", VirtMode::HwSvt},
    };

    double results[5] = {};
    for (int i = 0; i < 5; ++i) {
        NestedSystem sys(bars[i].mode);
        auto r = CpuidMicrobench::run(sys.machine(), sys.api());
        results[i] = r.meanUsec;
    }

    double baseline = results[2];
    Table t({"System", "Time (us)", "Overhead vs L0", "Speedup vs L2",
             "Paper"});
    const char *paper[] = {"0.05 us", "~1.2 us", "10.40 us",
                           "1.23x", "1.94x"};
    for (int i = 0; i < 5; ++i) {
        t.addRow({bars[i].name, Table::num(results[i], 2),
                  Table::num(results[i] / results[0], 1) + "x",
                  i >= 3 ? Table::num(baseline / results[i], 2) + "x"
                         : "-",
                  paper[i]});
    }
    std::printf("Figure 6: execution time of a cpuid instruction\n\n%s\n",
                t.render().c_str());
    return 0;
}
