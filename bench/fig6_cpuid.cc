/**
 * @file
 * Regenerates Figure 6: execution time of a cpuid instruction at each
 * virtualization level, with and without SVt.
 *
 * Paper: L0 0.05 us; L2 (nested baseline) 10.40 us; SW SVt 1.23x
 * speedup; HW SVt 1.94x speedup.
 */

#include <cstdio>

#include "stats/table.h"
#include "system/nested_system.h"
#include "system/trace_session.h"
#include "workloads/microbench.h"

using namespace svtsim;

int
main(int argc, char **argv)
{
    struct Bar
    {
        const char *name;
        const char *label;
        VirtMode mode;
    };
    const Bar bars[] = {
        {"L0", "l0", VirtMode::Native},
        {"L1", "l1", VirtMode::Single},
        {"L2", "l2", VirtMode::Nested},
        {"SW SVt", "sw_svt", VirtMode::SwSvt},
        {"HW SVt", "hw_svt", VirtMode::HwSvt},
    };
    std::string trace_path = parseTraceFlag(argc, argv);

    double results[5] = {};
    for (int i = 0; i < 5; ++i) {
        NestedSystem sys(bars[i].mode);
        ScopedTrace trace(sys.machine(), trace_path, bars[i].label);
        auto r = CpuidMicrobench::run(sys.machine(), sys.api());
        results[i] = r.meanUsec;
    }

    double baseline = results[2];
    Table t({"System", "Time (us)", "Overhead vs L0", "Speedup vs L2",
             "Paper"});
    const char *paper[] = {"0.05 us", "~1.2 us", "10.40 us",
                           "1.23x", "1.94x"};
    for (int i = 0; i < 5; ++i) {
        t.addRow({bars[i].name, Table::num(results[i], 2),
                  Table::num(results[i] / results[0], 1) + "x",
                  i >= 3 ? Table::num(baseline / results[i], 2) + "x"
                         : "-",
                  paper[i]});
    }
    std::printf("Figure 6: execution time of a cpuid instruction\n\n%s\n",
                t.render().c_str());
    return 0;
}
