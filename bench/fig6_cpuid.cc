/**
 * @file
 * Regenerates Figure 6: execution time of a cpuid instruction at each
 * virtualization level, with and without SVt.
 *
 * Paper: L0 0.05 us; L2 (nested baseline) 10.40 us; SW SVt 1.23x
 * speedup; HW SVt 1.94x speedup.
 */

#include <cstdio>
#include <iterator>

#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/microbench.h"

using namespace svtsim;

int
main(int argc, char **argv)
{
    struct Bar
    {
        const char *name;
        const char *label;
        VirtMode mode;
        const char *paper;
    };
    static const Bar bars[] = {
        {"L0", "l0", VirtMode::Native, "0.05 us"},
        {"L1", "l1", VirtMode::Single, "~1.2 us"},
        {"L2", "l2", VirtMode::Nested, "10.40 us"},
        {"SW SVt", "sw_svt", VirtMode::SwSvt, "1.23x"},
        {"HW SVt", "hw_svt", VirtMode::HwSvt, "1.94x"},
    };

    BenchHarness bench(
        "fig6_cpuid",
        "Figure 6: execution time of a cpuid instruction");
    for (const Bar &bar : bars) {
        bench.add(bar.label, bar.mode,
                  [](NestedSystem &sys, ScenarioResult &r) {
                      auto m = CpuidMicrobench::run(sys.machine(),
                                                    sys.api());
                      r.record("mean_usec", m.meanUsec);
                      r.record("stddev_usec", m.stddevUsec);
                  });
    }

    bench.onReport([&](const SweepResults &res) {
        double l0 = res.metric("l0", "mean_usec");
        double baseline = res.metric("l2", "mean_usec");
        Table t({"System", "Time (us)", "Overhead vs L0",
                 "Speedup vs L2", "Paper"});
        for (std::size_t i = 0; i < std::size(bars); ++i) {
            double us = res.metric(bars[i].label, "mean_usec");
            t.addRow({bars[i].name, Table::num(us, 2),
                      Table::num(us / l0, 1) + "x",
                      i >= 3 ? Table::num(baseline / us, 2) + "x"
                             : "-",
                      bars[i].paper});
        }
        std::printf("Figure 6: execution time of a cpuid "
                    "instruction\n\n%s\n",
                    t.render().c_str());
    });
    return bench.main(argc, argv);
}
