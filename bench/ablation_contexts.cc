/**
 * @file
 * Ablation: SVt context capacity (Section 3.1: "SVt can accelerate
 * context switches between as many nested VM and hypervisor contexts
 * as hardware contexts are available in a core. Past that point, the
 * hypervisor must multiplex some of the virtualization levels on a
 * single hardware context").
 *
 * A 2-SMT core (the actual Table 4 hardware) multiplexes L1 and L2 on
 * the shared context; a 3-context core gives every level its own.
 */

#include <cstdio>

#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/microbench.h"

using namespace svtsim;

namespace {

void
runCpuid(NestedSystem &sys, ScenarioResult &r)
{
    r.record("cpuid_us",
             CpuidMicrobench::run(sys.machine(), sys.api()).meanUsec);
    r.record("ctx_multiplex",
             static_cast<double>(
                 sys.machine().counter("svt.ctx_multiplex")));
}

Scenario
contextScenario(const char *name, VirtMode mode, int threads_per_core)
{
    Scenario s;
    s.name = name;
    s.mode = mode;
    MachineTopology topo = paperTopology(mode);
    topo.threadsPerCore = threads_per_core;
    s.topology = topo;
    s.run = runCpuid;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("ablation_contexts",
                       "Ablation: SVt hardware-context capacity");
    bench.add(contextScenario("baseline-2ctx", VirtMode::Nested, 2));
    bench.add(contextScenario("hw-svt-2ctx", VirtMode::HwSvt, 2));
    bench.add(contextScenario("hw-svt-3ctx", VirtMode::HwSvt, 3));

    bench.onReport([](const SweepResults &res) {
        double base = res.metric("baseline-2ctx", "cpuid_us");
        double hw2 = res.metric("hw-svt-2ctx", "cpuid_us");
        double hw3 = res.metric("hw-svt-3ctx", "cpuid_us");

        Table t({"System", "Contexts/core", "cpuid (us)",
                 "Speedup vs baseline", "Owner swaps"});
        t.addRow(
            {"Nested baseline", "2", Table::num(base, 2), "-", "0"});
        t.addRow({"HW SVt (multiplexed)", "2", Table::num(hw2, 2),
                  Table::num(base / hw2, 2) + "x",
                  Table::num(res.metric("hw-svt-2ctx",
                                        "ctx_multiplex"),
                             0)});
        t.addRow({"HW SVt (dedicated)", "3", Table::num(hw3, 2),
                  Table::num(base / hw3, 2) + "x",
                  Table::num(res.metric("hw-svt-3ctx",
                                        "ctx_multiplex"),
                             0)});

        std::printf("Ablation: SVt hardware-context "
                    "capacity\n\n%s\n",
                    t.render().c_str());
        std::printf(
            "With only two contexts, L1 and L2 share one: every "
            "reflection pays a software spill/reload and the\n"
            "cross-context register access degenerates to memory "
            "— SVt still wins, but by less.\n");
    });
    return bench.main(argc, argv);
}
