/**
 * @file
 * Ablation: SVt context capacity (Section 3.1: "SVt can accelerate
 * context switches between as many nested VM and hypervisor contexts
 * as hardware contexts are available in a core. Past that point, the
 * hypervisor must multiplex some of the virtualization levels on a
 * single hardware context").
 *
 * A 2-SMT core (the actual Table 4 hardware) multiplexes L1 and L2 on
 * the shared context; a 3-context core gives every level its own.
 */

#include <cstdio>

#include "stats/table.h"
#include "system/nested_system.h"
#include "workloads/microbench.h"

using namespace svtsim;

namespace {

double
cpuidUsec(VirtMode mode, int threads_per_core, std::uint64_t &muxes)
{
    MachineTopology topo = paperTopology(mode);
    topo.threadsPerCore = threads_per_core;
    Machine machine(topo, paperCosts());
    StackConfig cfg;
    cfg.mode = mode;
    VirtStack stack(machine, cfg);
    auto r = CpuidMicrobench::run(machine, stack.api());
    muxes = machine.counter("svt.ctx_multiplex");
    return r.meanUsec;
}

} // namespace

int
main()
{
    std::uint64_t m0 = 0, m2 = 0, m3 = 0;
    double base = cpuidUsec(VirtMode::Nested, 2, m0);
    double hw2 = cpuidUsec(VirtMode::HwSvt, 2, m2);
    double hw3 = cpuidUsec(VirtMode::HwSvt, 3, m3);

    Table t({"System", "Contexts/core", "cpuid (us)",
             "Speedup vs baseline", "Owner swaps"});
    t.addRow({"Nested baseline", "2", Table::num(base, 2), "-", "0"});
    t.addRow({"HW SVt (multiplexed)", "2", Table::num(hw2, 2),
              Table::num(base / hw2, 2) + "x", std::to_string(m2)});
    t.addRow({"HW SVt (dedicated)", "3", Table::num(hw3, 2),
              Table::num(base / hw3, 2) + "x", std::to_string(m3)});

    std::printf("Ablation: SVt hardware-context capacity\n\n%s\n",
                t.render().c_str());
    std::printf("With only two contexts, L1 and L2 share one: every "
                "reflection pays a software spill/reload and the\n"
                "cross-context register access degenerates to memory "
                "— SVt still wins, but by less.\n");
    return 0;
}
