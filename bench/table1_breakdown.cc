/**
 * @file
 * Regenerates Table 1 of the paper: the time breakdown for executing
 * a cpuid instruction in a nested VM (baseline), attributed to the
 * six stages of Algorithm 1.
 *
 * Paper values (2x Xeon E5-2630v3): total 10.40 us, split
 *   (0) L2 0.05, (1) switch L2<->L0 0.81, (2) transform 1.29,
 *   (3) L0 handler 4.89, (4) switch L0<->L1 1.40, (5) L1 handler 1.96.
 */

#include <cstdio>

#include "stats/confidence.h"
#include "stats/table.h"
#include "system/bench_harness.h"

using namespace svtsim;

namespace {

struct Row
{
    const char *id;
    const char *name;
    const char *scope;
    double paper_us;
};

const Row rows[] = {
    {"0", "L2", "stage.l2", 0.05},
    {"1", "Switch L2<->L0", "stage.switch_l2_l0", 0.81},
    {"2", "Transform vmcs02/vmcs12", "stage.transform", 1.29},
    {"3", "L0 handler", "stage.l0_handler", 4.89},
    {"4", "Switch L0<->L1", "stage.switch_l0_l1", 1.40},
    {"5", "L1 handler", "stage.l1_handler", 1.96},
};

void
runBreakdown(NestedSystem &sys, ScenarioResult &r)
{
    GuestApi &api = sys.api();
    Machine &machine = sys.machine();

    // Warm up (EPT faults, first-touch state), then measure with the
    // paper's confidence methodology.
    for (int i = 0; i < 8; ++i)
        api.cpuid(1);
    machine.resetAttribution();

    ConfidenceRunner runner;
    auto result = runner.run([&]() -> double {
        Ticks t0 = machine.now();
        api.cpuid(1);
        return toUsec(machine.now() - t0);
    });

    // The stage times themselves ride along on the simulated-PMU
    // snapshot (ScenarioResult::metricsSnapshot); only the iteration
    // count is needed to normalize them in the report.
    r.record("iters",
             static_cast<double>(result.accepted + result.rejected));
    r.record("samples", static_cast<double>(result.accepted));
    r.record("stddev_us", result.stddev);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("table1_breakdown",
                       "Table 1: time breakdown of a cpuid "
                       "instruction in a nested VM");
    bench.add("nested", VirtMode::Nested, runBreakdown);

    bench.onReport([](const SweepResults &res) {
        const ScenarioResult &r = res.at("nested");
        // Per-iteration stage times straight from the PMU snapshot's
        // attribution scopes (what --breakdown prints raw).
        const MetricsSnapshot &snap = r.metricsSnapshot();
        double iters = r.metric("iters");
        auto stage_us = [&](const Row &row) {
            return toUsec(snap.scopeTicks(row.scope)) / iters;
        };
        double total = 0;
        for (const Row &row : rows)
            total += stage_us(row);

        Table table({"Part", "Stage", "Time (us)", "Perc. (%)",
                     "Paper (us)", "Paper (%)"});
        for (const Row &row : rows) {
            double us = stage_us(row);
            table.addRow({row.id, row.name, Table::num(us, 2),
                          Table::num(100.0 * us / total, 2),
                          Table::num(row.paper_us, 2),
                          Table::num(100.0 * row.paper_us / 10.40,
                                     2)});
        }

        std::printf("Table 1: time breakdown of a cpuid instruction "
                    "in a nested VM\n\n%s\n",
                    table.render().c_str());
        std::printf("total: %.2f us (paper: 10.40 us)   samples: "
                    "%.0f   stddev: %.3f us\n",
                    total, r.metric("samples"),
                    r.metric("stddev_us"));
    });
    return bench.main(argc, argv);
}
