/**
 * @file
 * Regenerates the Section 6.1 communication-channel study: response
 * latency of polling / mwait / mutex waiters across thread placements
 * and workload sizes, and their effect on the SW SVt cpuid
 * micro-benchmark. The paper reports the numbers qualitatively; the
 * five observations it lists are printed and checked here.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "hv/channel.h"
#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/microbench.h"

using namespace svtsim;

namespace {

const WaitMechanism mechanisms[] = {
    WaitMechanism::Poll, WaitMechanism::Mwait, WaitMechanism::Mutex};
const Placement placements[] = {
    Placement::SmtSibling, Placement::SameNode, Placement::CrossNode};

std::string
channelName(WaitMechanism m, Placement p)
{
    return std::string(waitMechanismName(m)) + "-" +
           placementName(p);
}

void
runCpuid(NestedSystem &sys, ScenarioResult &r)
{
    r.record("cpuid_us",
             CpuidMicrobench::run(sys.machine(), sys.api()).meanUsec);
}

/** The pure-model tables (no simulation): raw wake latency and the
 *  effective cost with a working SMT sibling. */
void
reportChannelModel(const CostModel &costs)
{
    Table lat({"Mechanism", "SMT sibling (us)", "Same node (us)",
               "Cross node (us)"});
    for (auto m : mechanisms) {
        std::vector<std::string> row{waitMechanismName(m)};
        for (auto p : placements) {
            ChannelModel ch{m, p};
            row.push_back(Table::num(
                toUsec(ch.waiterSetup(costs) + ch.wakeLatency(costs)),
                2));
        }
        lat.addRow(row);
    }
    std::printf("Channel study (Section 6.1): response "
                "latency\n\n%s\n",
                lat.render().c_str());

    // Polling steals execution slots from a colocated SMT thread, so
    // its advantage vanishes as the workload grows.
    Table eff({"Workload (reg ops)", "poll (us)", "mwait (us)",
               "mutex (us)"});
    for (int work : {0, 200, 1000, 5000, 20000}) {
        Ticks w = costs.regOp * work;
        std::vector<std::string> row{std::to_string(work)};
        for (auto m : mechanisms) {
            ChannelModel ch{m, Placement::SmtSibling};
            double total =
                toUsec(ch.waiterSetup(costs) + ch.wakeLatency(costs)) +
                toUsec(w) * ch.workerSlowdown(costs);
            row.push_back(Table::num(total, 2));
        }
        eff.addRow(row);
    }
    std::printf("Effective latency with a working SMT sibling "
                "(wait + slowed-down workload)\n\n%s\n",
                eff.render().c_str());
}

void
reportObservations(const CostModel &costs)
{
    auto wake = [&](WaitMechanism m, Placement p) {
        ChannelModel ch{m, p};
        return ch.waiterSetup(costs) + ch.wakeLatency(costs);
    };
    bool obs1 = wake(WaitMechanism::Poll, Placement::SmtSibling) <
                wake(WaitMechanism::Mwait, Placement::SmtSibling);
    bool obs2 = wake(WaitMechanism::Mwait, Placement::CrossNode) >=
                5 * wake(WaitMechanism::Mwait, Placement::SameNode);
    bool obs3 = wake(WaitMechanism::Mwait, Placement::SameNode) <
                wake(WaitMechanism::Mwait, Placement::CrossNode);
    ChannelModel poll_smt{WaitMechanism::Poll, Placement::SmtSibling};
    bool obs4 = poll_smt.workerSlowdown(costs) > 1.0;
    bool obs5 = wake(WaitMechanism::Mwait, Placement::SmtSibling) <
                wake(WaitMechanism::Mutex, Placement::SmtSibling);

    std::printf("Observations (Section 6.1):\n");
    std::printf("  1. polling has the lowest raw latency: %s\n",
                obs1 ? "yes" : "NO");
    std::printf("  2. cross-NUMA placement is ~an order of magnitude "
                "worse: %s\n",
                obs2 ? "yes" : "NO");
    std::printf("  3. same-node cores respond quickly: %s\n",
                obs3 ? "yes" : "NO");
    std::printf("  4. polling steals cycles from the SMT sibling: "
                "%s\n",
                obs4 ? "yes" : "NO");
    std::printf("  5. mwait beats mutex for the SVt channel: %s\n",
                obs5 ? "yes" : "NO");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("channel_micro",
                       "Section 6.1 communication-channel study");
    bench.add("baseline", VirtMode::Nested, runCpuid);
    for (auto m : mechanisms) {
        for (auto p : placements) {
            StackConfig cfg;
            cfg.channel = ChannelModel{m, p};
            bench.add(channelName(m, p), VirtMode::SwSvt, cfg,
                      runCpuid);
        }
    }

    bench.onReport([](const SweepResults &res) {
        CostModel costs;
        reportChannelModel(costs);

        Table impact({"Channel", "cpuid (us)",
                      "Speedup vs baseline"});
        double base = res.metric("baseline", "cpuid_us");
        impact.addRow(
            {"(baseline, no SVt)", Table::num(base, 2), "-"});
        for (auto m : mechanisms) {
            for (auto p : placements) {
                double t =
                    res.metric(channelName(m, p), "cpuid_us");
                impact.addRow({std::string(waitMechanismName(m)) +
                                   " / " + placementName(p),
                               Table::num(t, 2),
                               Table::num(base / t, 2) + "x"});
            }
        }
        std::printf("SW SVt cpuid latency by channel configuration "
                    "(paper: mwait on the SMT sibling, "
                    "1.23x)\n\n%s\n",
                    impact.render().c_str());

        reportObservations(costs);
    });
    return bench.main(argc, argv);
}
