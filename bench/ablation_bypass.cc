/**
 * @file
 * Ablation: the Section 3.1 direct-reflect extension ("SVt could
 * selectively bypass some virtualization levels when triggering a VM
 * trap to bring performance even closer to systems with full hardware
 * support for nested virtualization").
 *
 * With the bypass, whitelisted L2 exits (cpuid, rdmsr, vmcall, pause)
 * retarget fetch straight to the L1 context; L0 is only entered when
 * the L1 handler itself traps.
 */

#include <cstdio>

#include "stats/table.h"
#include "system/bench_harness.h"
#include "workloads/microbench.h"

using namespace svtsim;

namespace {

void
runCpuid(NestedSystem &sys, ScenarioResult &r)
{
    r.record("cpuid_us",
             CpuidMicrobench::run(sys.machine(), sys.api()).meanUsec);
    r.record("direct_reflects",
             static_cast<double>(
                 sys.machine().counter("l0.direct_reflect")));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchHarness bench("ablation_bypass",
                       "Ablation: Section 3.1 selective level "
                       "bypass");
    bench.add("baseline", VirtMode::Nested, runCpuid);
    bench.add("hw-svt", VirtMode::HwSvt, runCpuid);
    StackConfig bypass;
    bypass.svtDirectReflect = true;
    bench.add("hw-svt-bypass", VirtMode::HwSvt, bypass, runCpuid);

    bench.onReport([](const SweepResults &res) {
        double base = res.metric("baseline", "cpuid_us");
        double hw = res.metric("hw-svt", "cpuid_us");
        double hw_bypass = res.metric("hw-svt-bypass", "cpuid_us");

        Table t({"System", "cpuid (us)", "Speedup vs baseline",
                 "Direct reflects"});
        t.addRow({"Nested baseline", Table::num(base, 2), "-", "0"});
        t.addRow({"HW SVt", Table::num(hw, 2),
                  Table::num(base / hw, 2) + "x",
                  Table::num(res.metric("hw-svt", "direct_reflects"),
                             0)});
        t.addRow({"HW SVt + direct reflect", Table::num(hw_bypass, 2),
                  Table::num(base / hw_bypass, 2) + "x",
                  Table::num(res.metric("hw-svt-bypass",
                                        "direct_reflects"),
                             0)});

        std::printf("Ablation: Section 3.1 selective level "
                    "bypass\n\n%s\n",
                    t.render().c_str());
        std::printf(
            "The remaining cost is the L1 handler itself plus its "
            "own trapped operations; the VMCS transforms and the\n"
            "L0 reflection logic disappear from the whitelisted "
            "paths, approaching native nested-virtualization "
            "hardware.\n");
    });
    return bench.main(argc, argv);
}
