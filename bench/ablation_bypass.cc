/**
 * @file
 * Ablation: the Section 3.1 direct-reflect extension ("SVt could
 * selectively bypass some virtualization levels when triggering a VM
 * trap to bring performance even closer to systems with full hardware
 * support for nested virtualization").
 *
 * With the bypass, whitelisted L2 exits (cpuid, rdmsr, vmcall, pause)
 * retarget fetch straight to the L1 context; L0 is only entered when
 * the L1 handler itself traps.
 */

#include <cstdio>

#include "stats/table.h"
#include "system/nested_system.h"
#include "workloads/microbench.h"

using namespace svtsim;

namespace {

double
cpuidUsec(VirtMode mode, bool bypass, std::uint64_t &direct)
{
    StackConfig cfg;
    cfg.svtDirectReflect = bypass;
    NestedSystem sys(mode, cfg);
    auto r = CpuidMicrobench::run(sys.machine(), sys.api());
    direct = sys.machine().counter("l0.direct_reflect");
    return r.meanUsec;
}

} // namespace

int
main()
{
    std::uint64_t d0 = 0, d1 = 0, d2 = 0;
    double base = cpuidUsec(VirtMode::Nested, false, d0);
    double hw = cpuidUsec(VirtMode::HwSvt, false, d1);
    double hw_bypass = cpuidUsec(VirtMode::HwSvt, true, d2);

    Table t({"System", "cpuid (us)", "Speedup vs baseline",
             "Direct reflects"});
    t.addRow({"Nested baseline", Table::num(base, 2), "-", "0"});
    t.addRow({"HW SVt", Table::num(hw, 2),
              Table::num(base / hw, 2) + "x", std::to_string(d1)});
    t.addRow({"HW SVt + direct reflect", Table::num(hw_bypass, 2),
              Table::num(base / hw_bypass, 2) + "x",
              std::to_string(d2)});

    std::printf("Ablation: Section 3.1 selective level bypass\n\n%s\n",
                t.render().c_str());
    std::printf("The remaining cost is the L1 handler itself plus its "
                "own trapped operations; the VMCS transforms and the\n"
                "L0 reflection logic disappear from the whitelisted "
                "paths, approaching native nested-virtualization "
                "hardware.\n");
    return 0;
}
