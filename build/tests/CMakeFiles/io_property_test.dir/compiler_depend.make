# Empty compiler generated dependencies file for io_property_test.
# This may be replaced when dependencies are built.
