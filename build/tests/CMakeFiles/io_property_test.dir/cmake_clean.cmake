file(REMOVE_RECURSE
  "CMakeFiles/io_property_test.dir/io_property_test.cc.o"
  "CMakeFiles/io_property_test.dir/io_property_test.cc.o.d"
  "io_property_test"
  "io_property_test.pdb"
  "io_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
