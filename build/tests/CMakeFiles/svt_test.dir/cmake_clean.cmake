file(REMOVE_RECURSE
  "CMakeFiles/svt_test.dir/svt_test.cc.o"
  "CMakeFiles/svt_test.dir/svt_test.cc.o.d"
  "svt_test"
  "svt_test.pdb"
  "svt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
