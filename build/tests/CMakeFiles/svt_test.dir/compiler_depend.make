# Empty compiler generated dependencies file for svt_test.
# This may be replaced when dependencies are built.
