# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/virt_test[1]_include.cmake")
include("/root/repo/build/tests/svt_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_property_test[1]_include.cmake")
