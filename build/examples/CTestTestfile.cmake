# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nested_io "/root/repo/build/examples/nested_io")
set_tests_properties(example_nested_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_svt_deadlock "/root/repo/build/examples/svt_deadlock")
set_tests_properties(example_svt_deadlock PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_algorithm1_trace "/root/repo/build/examples/algorithm1_trace")
set_tests_properties(example_algorithm1_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_player "/root/repo/build/examples/video_player" "60")
set_tests_properties(example_video_player PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_player_bad_args "/root/repo/build/examples/video_player" "-5")
set_tests_properties(example_video_player_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
