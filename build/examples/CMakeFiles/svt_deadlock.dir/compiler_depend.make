# Empty compiler generated dependencies file for svt_deadlock.
# This may be replaced when dependencies are built.
