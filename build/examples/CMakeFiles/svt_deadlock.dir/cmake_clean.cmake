file(REMOVE_RECURSE
  "CMakeFiles/svt_deadlock.dir/svt_deadlock.cpp.o"
  "CMakeFiles/svt_deadlock.dir/svt_deadlock.cpp.o.d"
  "svt_deadlock"
  "svt_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svt_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
