# Empty dependencies file for nested_io.
# This may be replaced when dependencies are built.
