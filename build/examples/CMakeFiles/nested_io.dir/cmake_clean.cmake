file(REMOVE_RECURSE
  "CMakeFiles/nested_io.dir/nested_io.cpp.o"
  "CMakeFiles/nested_io.dir/nested_io.cpp.o.d"
  "nested_io"
  "nested_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
