# Empty compiler generated dependencies file for algorithm1_trace.
# This may be replaced when dependencies are built.
