file(REMOVE_RECURSE
  "CMakeFiles/algorithm1_trace.dir/algorithm1_trace.cpp.o"
  "CMakeFiles/algorithm1_trace.dir/algorithm1_trace.cpp.o.d"
  "algorithm1_trace"
  "algorithm1_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm1_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
