file(REMOVE_RECURSE
  "CMakeFiles/fig8_memcached.dir/fig8_memcached.cc.o"
  "CMakeFiles/fig8_memcached.dir/fig8_memcached.cc.o.d"
  "fig8_memcached"
  "fig8_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
