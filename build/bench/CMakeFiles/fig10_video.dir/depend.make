# Empty dependencies file for fig10_video.
# This may be replaced when dependencies are built.
