file(REMOVE_RECURSE
  "CMakeFiles/fig10_video.dir/fig10_video.cc.o"
  "CMakeFiles/fig10_video.dir/fig10_video.cc.o.d"
  "fig10_video"
  "fig10_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
