# Empty compiler generated dependencies file for channel_micro.
# This may be replaced when dependencies are built.
