file(REMOVE_RECURSE
  "CMakeFiles/channel_micro.dir/channel_micro.cc.o"
  "CMakeFiles/channel_micro.dir/channel_micro.cc.o.d"
  "channel_micro"
  "channel_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
