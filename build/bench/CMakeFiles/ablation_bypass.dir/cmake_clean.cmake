file(REMOVE_RECURSE
  "CMakeFiles/ablation_bypass.dir/ablation_bypass.cc.o"
  "CMakeFiles/ablation_bypass.dir/ablation_bypass.cc.o.d"
  "ablation_bypass"
  "ablation_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
