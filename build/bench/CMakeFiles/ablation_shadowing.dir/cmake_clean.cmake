file(REMOVE_RECURSE
  "CMakeFiles/ablation_shadowing.dir/ablation_shadowing.cc.o"
  "CMakeFiles/ablation_shadowing.dir/ablation_shadowing.cc.o.d"
  "ablation_shadowing"
  "ablation_shadowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shadowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
