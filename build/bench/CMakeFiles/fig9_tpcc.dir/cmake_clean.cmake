file(REMOVE_RECURSE
  "CMakeFiles/fig9_tpcc.dir/fig9_tpcc.cc.o"
  "CMakeFiles/fig9_tpcc.dir/fig9_tpcc.cc.o.d"
  "fig9_tpcc"
  "fig9_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
