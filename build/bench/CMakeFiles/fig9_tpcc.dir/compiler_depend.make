# Empty compiler generated dependencies file for fig9_tpcc.
# This may be replaced when dependencies are built.
