file(REMOVE_RECURSE
  "CMakeFiles/fig7_io.dir/fig7_io.cc.o"
  "CMakeFiles/fig7_io.dir/fig7_io.cc.o.d"
  "fig7_io"
  "fig7_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
