# Empty compiler generated dependencies file for fig7_io.
# This may be replaced when dependencies are built.
