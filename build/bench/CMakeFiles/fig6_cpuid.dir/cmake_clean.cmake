file(REMOVE_RECURSE
  "CMakeFiles/fig6_cpuid.dir/fig6_cpuid.cc.o"
  "CMakeFiles/fig6_cpuid.dir/fig6_cpuid.cc.o.d"
  "fig6_cpuid"
  "fig6_cpuid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cpuid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
