# Empty compiler generated dependencies file for fig6_cpuid.
# This may be replaced when dependencies are built.
