file(REMOVE_RECURSE
  "CMakeFiles/ablation_housekeeping.dir/ablation_housekeeping.cc.o"
  "CMakeFiles/ablation_housekeeping.dir/ablation_housekeeping.cc.o.d"
  "ablation_housekeeping"
  "ablation_housekeeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_housekeeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
