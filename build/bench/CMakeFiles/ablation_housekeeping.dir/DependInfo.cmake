
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_housekeeping.cc" "bench/CMakeFiles/ablation_housekeeping.dir/ablation_housekeeping.cc.o" "gcc" "bench/CMakeFiles/ablation_housekeeping.dir/ablation_housekeeping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/svtsim_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/svtsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/svtsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/svtsim_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/svt/CMakeFiles/svtsim_svt.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/svtsim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/svtsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/svtsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svtsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
