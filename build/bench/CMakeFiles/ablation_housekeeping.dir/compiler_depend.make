# Empty compiler generated dependencies file for ablation_housekeeping.
# This may be replaced when dependencies are built.
