# Empty dependencies file for primitives_gbench.
# This may be replaced when dependencies are built.
