file(REMOVE_RECURSE
  "CMakeFiles/primitives_gbench.dir/primitives_gbench.cc.o"
  "CMakeFiles/primitives_gbench.dir/primitives_gbench.cc.o.d"
  "primitives_gbench"
  "primitives_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primitives_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
