
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/net_fabric.cc" "src/io/CMakeFiles/svtsim_io.dir/net_fabric.cc.o" "gcc" "src/io/CMakeFiles/svtsim_io.dir/net_fabric.cc.o.d"
  "/root/repo/src/io/ramdisk.cc" "src/io/CMakeFiles/svtsim_io.dir/ramdisk.cc.o" "gcc" "src/io/CMakeFiles/svtsim_io.dir/ramdisk.cc.o.d"
  "/root/repo/src/io/virtio_blk.cc" "src/io/CMakeFiles/svtsim_io.dir/virtio_blk.cc.o" "gcc" "src/io/CMakeFiles/svtsim_io.dir/virtio_blk.cc.o.d"
  "/root/repo/src/io/virtio_net.cc" "src/io/CMakeFiles/svtsim_io.dir/virtio_net.cc.o" "gcc" "src/io/CMakeFiles/svtsim_io.dir/virtio_net.cc.o.d"
  "/root/repo/src/io/virtqueue.cc" "src/io/CMakeFiles/svtsim_io.dir/virtqueue.cc.o" "gcc" "src/io/CMakeFiles/svtsim_io.dir/virtqueue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/svtsim_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/svt/CMakeFiles/svtsim_svt.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/svtsim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/svtsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/svtsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svtsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
