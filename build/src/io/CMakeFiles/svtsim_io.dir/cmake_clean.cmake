file(REMOVE_RECURSE
  "CMakeFiles/svtsim_io.dir/net_fabric.cc.o"
  "CMakeFiles/svtsim_io.dir/net_fabric.cc.o.d"
  "CMakeFiles/svtsim_io.dir/ramdisk.cc.o"
  "CMakeFiles/svtsim_io.dir/ramdisk.cc.o.d"
  "CMakeFiles/svtsim_io.dir/virtio_blk.cc.o"
  "CMakeFiles/svtsim_io.dir/virtio_blk.cc.o.d"
  "CMakeFiles/svtsim_io.dir/virtio_net.cc.o"
  "CMakeFiles/svtsim_io.dir/virtio_net.cc.o.d"
  "CMakeFiles/svtsim_io.dir/virtqueue.cc.o"
  "CMakeFiles/svtsim_io.dir/virtqueue.cc.o.d"
  "libsvtsim_io.a"
  "libsvtsim_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
