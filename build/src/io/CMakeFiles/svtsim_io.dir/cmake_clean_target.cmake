file(REMOVE_RECURSE
  "libsvtsim_io.a"
)
