# Empty compiler generated dependencies file for svtsim_io.
# This may be replaced when dependencies are built.
