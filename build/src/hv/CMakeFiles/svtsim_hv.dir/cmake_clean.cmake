file(REMOVE_RECURSE
  "CMakeFiles/svtsim_hv.dir/channel.cc.o"
  "CMakeFiles/svtsim_hv.dir/channel.cc.o.d"
  "CMakeFiles/svtsim_hv.dir/cpuid_db.cc.o"
  "CMakeFiles/svtsim_hv.dir/cpuid_db.cc.o.d"
  "CMakeFiles/svtsim_hv.dir/guest_hypervisor.cc.o"
  "CMakeFiles/svtsim_hv.dir/guest_hypervisor.cc.o.d"
  "CMakeFiles/svtsim_hv.dir/nested_flow.cc.o"
  "CMakeFiles/svtsim_hv.dir/nested_flow.cc.o.d"
  "CMakeFiles/svtsim_hv.dir/vcpu.cc.o"
  "CMakeFiles/svtsim_hv.dir/vcpu.cc.o.d"
  "CMakeFiles/svtsim_hv.dir/virt_stack.cc.o"
  "CMakeFiles/svtsim_hv.dir/virt_stack.cc.o.d"
  "libsvtsim_hv.a"
  "libsvtsim_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
