file(REMOVE_RECURSE
  "libsvtsim_hv.a"
)
