# Empty dependencies file for svtsim_hv.
# This may be replaced when dependencies are built.
