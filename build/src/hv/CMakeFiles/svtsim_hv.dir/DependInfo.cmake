
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/channel.cc" "src/hv/CMakeFiles/svtsim_hv.dir/channel.cc.o" "gcc" "src/hv/CMakeFiles/svtsim_hv.dir/channel.cc.o.d"
  "/root/repo/src/hv/cpuid_db.cc" "src/hv/CMakeFiles/svtsim_hv.dir/cpuid_db.cc.o" "gcc" "src/hv/CMakeFiles/svtsim_hv.dir/cpuid_db.cc.o.d"
  "/root/repo/src/hv/guest_hypervisor.cc" "src/hv/CMakeFiles/svtsim_hv.dir/guest_hypervisor.cc.o" "gcc" "src/hv/CMakeFiles/svtsim_hv.dir/guest_hypervisor.cc.o.d"
  "/root/repo/src/hv/nested_flow.cc" "src/hv/CMakeFiles/svtsim_hv.dir/nested_flow.cc.o" "gcc" "src/hv/CMakeFiles/svtsim_hv.dir/nested_flow.cc.o.d"
  "/root/repo/src/hv/vcpu.cc" "src/hv/CMakeFiles/svtsim_hv.dir/vcpu.cc.o" "gcc" "src/hv/CMakeFiles/svtsim_hv.dir/vcpu.cc.o.d"
  "/root/repo/src/hv/virt_stack.cc" "src/hv/CMakeFiles/svtsim_hv.dir/virt_stack.cc.o" "gcc" "src/hv/CMakeFiles/svtsim_hv.dir/virt_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svt/CMakeFiles/svtsim_svt.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/svtsim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/svtsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/svtsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svtsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
