file(REMOVE_RECURSE
  "libsvtsim_sim.a"
)
