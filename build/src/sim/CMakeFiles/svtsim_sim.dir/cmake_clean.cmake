file(REMOVE_RECURSE
  "CMakeFiles/svtsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/svtsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/svtsim_sim.dir/log.cc.o"
  "CMakeFiles/svtsim_sim.dir/log.cc.o.d"
  "CMakeFiles/svtsim_sim.dir/random.cc.o"
  "CMakeFiles/svtsim_sim.dir/random.cc.o.d"
  "libsvtsim_sim.a"
  "libsvtsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
