# Empty dependencies file for svtsim_sim.
# This may be replaced when dependencies are built.
