file(REMOVE_RECURSE
  "libsvtsim_svt.a"
)
