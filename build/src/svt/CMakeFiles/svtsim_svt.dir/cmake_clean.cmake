file(REMOVE_RECURSE
  "CMakeFiles/svtsim_svt.dir/svt_unit.cc.o"
  "CMakeFiles/svtsim_svt.dir/svt_unit.cc.o.d"
  "libsvtsim_svt.a"
  "libsvtsim_svt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_svt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
