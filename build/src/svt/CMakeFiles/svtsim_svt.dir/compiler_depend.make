# Empty compiler generated dependencies file for svtsim_svt.
# This may be replaced when dependencies are built.
