file(REMOVE_RECURSE
  "CMakeFiles/svtsim_virt.dir/ept.cc.o"
  "CMakeFiles/svtsim_virt.dir/ept.cc.o.d"
  "CMakeFiles/svtsim_virt.dir/exit_reason.cc.o"
  "CMakeFiles/svtsim_virt.dir/exit_reason.cc.o.d"
  "CMakeFiles/svtsim_virt.dir/vmcs.cc.o"
  "CMakeFiles/svtsim_virt.dir/vmcs.cc.o.d"
  "CMakeFiles/svtsim_virt.dir/vmx.cc.o"
  "CMakeFiles/svtsim_virt.dir/vmx.cc.o.d"
  "libsvtsim_virt.a"
  "libsvtsim_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
