# Empty dependencies file for svtsim_virt.
# This may be replaced when dependencies are built.
