file(REMOVE_RECURSE
  "libsvtsim_virt.a"
)
