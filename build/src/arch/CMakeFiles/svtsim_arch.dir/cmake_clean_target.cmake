file(REMOVE_RECURSE
  "libsvtsim_arch.a"
)
