# Empty compiler generated dependencies file for svtsim_arch.
# This may be replaced when dependencies are built.
