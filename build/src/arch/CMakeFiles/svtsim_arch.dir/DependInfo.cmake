
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cost_model.cc" "src/arch/CMakeFiles/svtsim_arch.dir/cost_model.cc.o" "gcc" "src/arch/CMakeFiles/svtsim_arch.dir/cost_model.cc.o.d"
  "/root/repo/src/arch/hw_context.cc" "src/arch/CMakeFiles/svtsim_arch.dir/hw_context.cc.o" "gcc" "src/arch/CMakeFiles/svtsim_arch.dir/hw_context.cc.o.d"
  "/root/repo/src/arch/lapic.cc" "src/arch/CMakeFiles/svtsim_arch.dir/lapic.cc.o" "gcc" "src/arch/CMakeFiles/svtsim_arch.dir/lapic.cc.o.d"
  "/root/repo/src/arch/machine.cc" "src/arch/CMakeFiles/svtsim_arch.dir/machine.cc.o" "gcc" "src/arch/CMakeFiles/svtsim_arch.dir/machine.cc.o.d"
  "/root/repo/src/arch/phys_reg_file.cc" "src/arch/CMakeFiles/svtsim_arch.dir/phys_reg_file.cc.o" "gcc" "src/arch/CMakeFiles/svtsim_arch.dir/phys_reg_file.cc.o.d"
  "/root/repo/src/arch/smt_core.cc" "src/arch/CMakeFiles/svtsim_arch.dir/smt_core.cc.o" "gcc" "src/arch/CMakeFiles/svtsim_arch.dir/smt_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/svtsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/svtsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
