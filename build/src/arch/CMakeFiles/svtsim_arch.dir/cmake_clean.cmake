file(REMOVE_RECURSE
  "CMakeFiles/svtsim_arch.dir/cost_model.cc.o"
  "CMakeFiles/svtsim_arch.dir/cost_model.cc.o.d"
  "CMakeFiles/svtsim_arch.dir/hw_context.cc.o"
  "CMakeFiles/svtsim_arch.dir/hw_context.cc.o.d"
  "CMakeFiles/svtsim_arch.dir/lapic.cc.o"
  "CMakeFiles/svtsim_arch.dir/lapic.cc.o.d"
  "CMakeFiles/svtsim_arch.dir/machine.cc.o"
  "CMakeFiles/svtsim_arch.dir/machine.cc.o.d"
  "CMakeFiles/svtsim_arch.dir/phys_reg_file.cc.o"
  "CMakeFiles/svtsim_arch.dir/phys_reg_file.cc.o.d"
  "CMakeFiles/svtsim_arch.dir/smt_core.cc.o"
  "CMakeFiles/svtsim_arch.dir/smt_core.cc.o.d"
  "libsvtsim_arch.a"
  "libsvtsim_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
