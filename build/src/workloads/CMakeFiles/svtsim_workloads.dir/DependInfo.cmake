
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/diskbench.cc" "src/workloads/CMakeFiles/svtsim_workloads.dir/diskbench.cc.o" "gcc" "src/workloads/CMakeFiles/svtsim_workloads.dir/diskbench.cc.o.d"
  "/root/repo/src/workloads/guest_os.cc" "src/workloads/CMakeFiles/svtsim_workloads.dir/guest_os.cc.o" "gcc" "src/workloads/CMakeFiles/svtsim_workloads.dir/guest_os.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/workloads/CMakeFiles/svtsim_workloads.dir/memcached.cc.o" "gcc" "src/workloads/CMakeFiles/svtsim_workloads.dir/memcached.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/workloads/CMakeFiles/svtsim_workloads.dir/microbench.cc.o" "gcc" "src/workloads/CMakeFiles/svtsim_workloads.dir/microbench.cc.o.d"
  "/root/repo/src/workloads/netperf.cc" "src/workloads/CMakeFiles/svtsim_workloads.dir/netperf.cc.o" "gcc" "src/workloads/CMakeFiles/svtsim_workloads.dir/netperf.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/workloads/CMakeFiles/svtsim_workloads.dir/tpcc.cc.o" "gcc" "src/workloads/CMakeFiles/svtsim_workloads.dir/tpcc.cc.o.d"
  "/root/repo/src/workloads/video.cc" "src/workloads/CMakeFiles/svtsim_workloads.dir/video.cc.o" "gcc" "src/workloads/CMakeFiles/svtsim_workloads.dir/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/svtsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/svtsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/svtsim_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/svt/CMakeFiles/svtsim_svt.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/svtsim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/svtsim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svtsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
