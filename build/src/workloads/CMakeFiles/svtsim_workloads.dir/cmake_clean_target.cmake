file(REMOVE_RECURSE
  "libsvtsim_workloads.a"
)
