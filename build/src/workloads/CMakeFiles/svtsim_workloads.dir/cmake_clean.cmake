file(REMOVE_RECURSE
  "CMakeFiles/svtsim_workloads.dir/diskbench.cc.o"
  "CMakeFiles/svtsim_workloads.dir/diskbench.cc.o.d"
  "CMakeFiles/svtsim_workloads.dir/guest_os.cc.o"
  "CMakeFiles/svtsim_workloads.dir/guest_os.cc.o.d"
  "CMakeFiles/svtsim_workloads.dir/memcached.cc.o"
  "CMakeFiles/svtsim_workloads.dir/memcached.cc.o.d"
  "CMakeFiles/svtsim_workloads.dir/microbench.cc.o"
  "CMakeFiles/svtsim_workloads.dir/microbench.cc.o.d"
  "CMakeFiles/svtsim_workloads.dir/netperf.cc.o"
  "CMakeFiles/svtsim_workloads.dir/netperf.cc.o.d"
  "CMakeFiles/svtsim_workloads.dir/tpcc.cc.o"
  "CMakeFiles/svtsim_workloads.dir/tpcc.cc.o.d"
  "CMakeFiles/svtsim_workloads.dir/video.cc.o"
  "CMakeFiles/svtsim_workloads.dir/video.cc.o.d"
  "libsvtsim_workloads.a"
  "libsvtsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
