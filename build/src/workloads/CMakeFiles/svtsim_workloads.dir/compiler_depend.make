# Empty compiler generated dependencies file for svtsim_workloads.
# This may be replaced when dependencies are built.
