file(REMOVE_RECURSE
  "CMakeFiles/svtsim_system.dir/nested_system.cc.o"
  "CMakeFiles/svtsim_system.dir/nested_system.cc.o.d"
  "libsvtsim_system.a"
  "libsvtsim_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
