file(REMOVE_RECURSE
  "libsvtsim_system.a"
)
