# Empty dependencies file for svtsim_system.
# This may be replaced when dependencies are built.
