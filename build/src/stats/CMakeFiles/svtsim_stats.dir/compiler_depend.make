# Empty compiler generated dependencies file for svtsim_stats.
# This may be replaced when dependencies are built.
