file(REMOVE_RECURSE
  "libsvtsim_stats.a"
)
