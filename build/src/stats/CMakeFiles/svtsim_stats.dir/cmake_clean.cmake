file(REMOVE_RECURSE
  "CMakeFiles/svtsim_stats.dir/confidence.cc.o"
  "CMakeFiles/svtsim_stats.dir/confidence.cc.o.d"
  "CMakeFiles/svtsim_stats.dir/histogram.cc.o"
  "CMakeFiles/svtsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/svtsim_stats.dir/summary.cc.o"
  "CMakeFiles/svtsim_stats.dir/summary.cc.o.d"
  "CMakeFiles/svtsim_stats.dir/table.cc.o"
  "CMakeFiles/svtsim_stats.dir/table.cc.o.d"
  "libsvtsim_stats.a"
  "libsvtsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
