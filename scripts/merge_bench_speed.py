#!/usr/bin/env python3
"""Merge cluster_speed / fleet_scale / exit_elision runs into a
BENCH_SPEED.json doc.

The committed BENCH_SPEED.json holds the sim_speed workload records;
cluster_speed, fleet_scale and exit_elision write their own JSON. This
script grafts a run under a top-level key — "cluster" for a
cluster_speed result, "fleet" for a fleet_scale sweep, "elision" for
an exit_elision sweep — so one artifact carries all of them, without
ever regenerating (and thus churning) the sim_speed section.

The fleet record keeps only the per-policy fleet rollup metrics (p99,
QPS under SLA, tenants met, interference): they are deterministic for
a given seed, so the committed copy doubles as a golden reference for
the policy ordering (svt-pair beats isolate), while wall-clock numbers
stay out of it.

The elision record likewise keeps the per-scenario exit structure
(p99 plus per-request external-interrupt / EOI-trap / elided counts):
deterministic per seed, so the committed copy locks in the ladder's
acceptance claim — posted interrupts + coalescing shrink the
per-request nested exit counts.

Usage: merge_bench_speed.py BENCH_SPEED.json RUN.json [OUT.json]

OUT.json defaults to rewriting BENCH_SPEED.json in place.
"""

import json
import sys

FLEET_KEYS = (
    "fleet_p99_usec",
    "fleet_qps_under_sla",
    "fleet_tenants_met",
    "fleet_sla_fraction",
    "fleet_mean_interference",
)


ELISION_KEYS = (
    "p99_us",
    "extint_per_req",
    "wrmsr_per_req",
    "elided_posted_per_req",
    "elided_eoi_per_req",
)


def fleet_record(run):
    """Reduce a fleet_scale sweep JSON to its per-policy rollup."""
    policies = {}
    for scenario in run.get("scenarios", []):
        metrics = scenario.get("metrics", {})
        policies[scenario["name"]] = {
            k: metrics[k] for k in FLEET_KEYS if k in metrics
        }
    return {"seed": run.get("seed"), "policies": policies}


def elision_record(run):
    """Reduce an exit_elision sweep JSON to its exit structure."""
    scenarios = {}
    for scenario in run.get("scenarios", []):
        metrics = scenario.get("metrics", {})
        scenarios[scenario["name"]] = {
            k: metrics[k] for k in ELISION_KEYS if k in metrics
        }
    return {"seed": run.get("seed"), "scenarios": scenarios}


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    base_path, run_path = argv[1], argv[2]
    out_path = argv[3] if len(argv) == 4 else base_path

    with open(base_path) as f:
        doc = json.load(f)
    with open(run_path) as f:
        run = json.load(f)

    bench = run.get("bench")
    if bench == "cluster_speed":
        run.pop("bench", None)
        doc["cluster"] = run
    elif bench == "fleet_scale":
        doc["fleet"] = fleet_record(run)
    elif bench == "exit_elision":
        doc["elision"] = elision_record(run)
    else:
        print(f"{run_path}: not a cluster_speed, fleet_scale or "
              "exit_elision result",
              file=sys.stderr)
        return 1

    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"merged {run_path} ({bench}) into {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
