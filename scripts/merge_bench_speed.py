#!/usr/bin/env python3
"""Merge a cluster_speed run into a BENCH_SPEED.json document.

The committed BENCH_SPEED.json holds the sim_speed workload records;
cluster_speed writes its own JSON. This script grafts the cluster run
under a top-level "cluster" key so one artifact carries both, without
ever regenerating (and thus churning) the sim_speed section.

Usage: merge_bench_speed.py BENCH_SPEED.json CLUSTER.json [OUT.json]

OUT.json defaults to rewriting BENCH_SPEED.json in place.
"""

import json
import sys


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    base_path, cluster_path = argv[1], argv[2]
    out_path = argv[3] if len(argv) == 4 else base_path

    with open(base_path) as f:
        doc = json.load(f)
    with open(cluster_path) as f:
        cluster = json.load(f)

    if cluster.get("bench") != "cluster_speed":
        print(f"{cluster_path}: not a cluster_speed result",
              file=sys.stderr)
        return 1
    cluster.pop("bench", None)
    doc["cluster"] = cluster

    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"merged {cluster_path} into {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
