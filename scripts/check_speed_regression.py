#!/usr/bin/env python3
"""Compare a fresh sim_speed run against the committed baseline.

Raw events/sec numbers are machine-dependent, so CI compares the
machine-independent wheel/reference speedup ratio per workload: both
implementations run in the same process on the same host, so their
ratio cancels out CPU speed. The job fails when any workload's ratio
regresses by more than the tolerance (default 15%), i.e. the wheel got
slower relative to the reference heap than the committed record says
it should be.

When CURRENT.json carries a "cluster" section (a cluster_speed run
merged via merge_bench_speed.py), the cluster scaling gate also runs:
the run must report byte-identical fingerprints between worker
counts, and on hosts where parallelism is physically possible
(min(machines, workers, cores) >= 2) the sequential/parallel
wall-clock ratio must clear a core-aware floor of
CLUSTER_FLOOR_FACTOR x that minimum. On a 1-core runner only the
identity check applies — no speedup can exist there.

Usage: check_speed_regression.py BASELINE.json CURRENT.json [tolerance]
"""

import json
import sys

# A conservative fraction of ideal linear scaling: barriers, the
# single-client machine and epoch bookkeeping all steal from it.
CLUSTER_FLOOR_FACTOR = 0.4


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def load_ratios(doc):
    return {w["name"]: w["speedup_events_per_sec"]
            for w in doc["workloads"]}


def check_cluster(cluster):
    """Gate one cluster_speed record; returns True on failure."""
    machines = cluster["machines"]
    workers = cluster["workers"]
    cores = cluster["cores"]
    speedup = cluster["speedup"]
    if not cluster.get("identical", False):
        print("FAIL cluster: fingerprints diverged between worker "
              "counts (determinism bug)")
        return True
    effective = min(machines, workers, cores)
    if effective < 2:
        print(f"skip cluster scaling: min(machines={machines}, "
              f"workers={workers}, cores={cores}) = {effective} < 2, "
              f"no parallelism possible (measured {speedup:.2f}x)")
        return False
    floor = CLUSTER_FLOOR_FACTOR * effective
    status = "ok" if speedup >= floor else "FAIL"
    print(f"{status:4s} cluster: {speedup:.2f}x speedup at "
          f"{machines} machines / {workers} workers / {cores} cores "
          f"(floor {floor:.2f}x)")
    return status == "FAIL"


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = float(argv[3]) if len(argv) == 4 else 0.15
    current_doc = load_doc(argv[2])
    baseline = load_ratios(load_doc(argv[1]))
    current = load_ratios(current_doc)

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: missing from current run")
            failed = True
            continue
        cur = current[name]
        floor = base * (1.0 - tolerance)
        status = "ok"
        if cur < floor:
            status = "FAIL"
            failed = True
        print(f"{status:4s} {name}: speedup {cur:.2f}x vs baseline "
              f"{base:.2f}x (floor {floor:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"note {name}: not in baseline ({current[name]:.2f}x)")

    if "cluster" in current_doc:
        failed |= check_cluster(current_doc["cluster"])

    if failed:
        print("sim_speed regression: wheel speedup dropped >"
              f"{tolerance:.0%} below the committed baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
