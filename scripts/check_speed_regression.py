#!/usr/bin/env python3
"""Compare a fresh sim_speed run against the committed baseline.

Raw events/sec numbers are machine-dependent, so CI compares the
machine-independent wheel/reference speedup ratio per workload: both
implementations run in the same process on the same host, so their
ratio cancels out CPU speed. The job fails when any workload's ratio
regresses by more than the tolerance (default 15%), i.e. the wheel got
slower relative to the reference heap than the committed record says
it should be.

Usage: check_speed_regression.py BASELINE.json CURRENT.json [tolerance]
"""

import json
import sys


def load_ratios(path):
    with open(path) as f:
        doc = json.load(f)
    return {w["name"]: w["speedup_events_per_sec"]
            for w in doc["workloads"]}


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = float(argv[3]) if len(argv) == 4 else 0.15
    baseline = load_ratios(argv[1])
    current = load_ratios(argv[2])

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: missing from current run")
            failed = True
            continue
        cur = current[name]
        floor = base * (1.0 - tolerance)
        status = "ok"
        if cur < floor:
            status = "FAIL"
            failed = True
        print(f"{status:4s} {name}: speedup {cur:.2f}x vs baseline "
              f"{base:.2f}x (floor {floor:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"note {name}: not in baseline ({current[name]:.2f}x)")

    if failed:
        print("sim_speed regression: wheel speedup dropped >"
              f"{tolerance:.0%} below the committed baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
