/**
 * @file
 * Tests for the deterministic fault-injection subsystem and the SW SVt
 * heartbeat watchdog: spec parsing, per-site stream independence, the
 * LAPIC delivery-time bugfixes, ring back-pressure, the Section 5.3
 * degradation matrix and byte-identity of fault runs across --jobs.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hv/channel.h"
#include "hv/cpuid_db.h"
#include "hv/vectors.h"
#include "hv/virt_stack.h"
#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtqueue.h"
#include "sim/fault.h"
#include "sim/log.h"
#include "system/bench_harness.h"
#include "system/nested_system.h"

namespace svtsim {
namespace {

// ------------------------------------------------------------ plan parsing

TEST(FaultPlan, EmptySpecYieldsEmptyPlan)
{
    EXPECT_TRUE(FaultPlan().empty());
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse(" ; ;").empty());
}

TEST(FaultPlan, ParsesOccurrenceTrigger)
{
    FaultPlan plan = FaultPlan::parse("ipi.drop@n2");
    ASSERT_EQ(plan.clauses().size(), 1u);
    const FaultClause &c = plan.clauses()[0];
    EXPECT_EQ(c.site, FaultSite::IpiDrop);
    EXPECT_FALSE(c.probabilistic);
    EXPECT_EQ(c.first, 2u);
    EXPECT_EQ(c.count, 1u);
}

TEST(FaultPlan, ParsesOccurrenceWindow)
{
    FaultPlan plan = FaultPlan::parse("ring.post.drop@n1+3");
    ASSERT_EQ(plan.clauses().size(), 1u);
    EXPECT_EQ(plan.clauses()[0].site, FaultSite::RingPostDrop);
    EXPECT_EQ(plan.clauses()[0].first, 1u);
    EXPECT_EQ(plan.clauses()[0].count, 3u);
}

TEST(FaultPlan, ParsesProbabilisticDelay)
{
    FaultPlan plan = FaultPlan::parse("ipi.delay@p0.5,d2us");
    ASSERT_EQ(plan.clauses().size(), 1u);
    const FaultClause &c = plan.clauses()[0];
    EXPECT_EQ(c.site, FaultSite::IpiDelay);
    EXPECT_TRUE(c.probabilistic);
    EXPECT_DOUBLE_EQ(c.probability, 0.5);
    EXPECT_EQ(c.delay, usec(2));
}

TEST(FaultPlan, ParsesMultipleClauses)
{
    FaultPlan plan = FaultPlan::parse(
        "ipi.drop@n1;virtio.completion.delay@p0.1,d50us");
    EXPECT_EQ(plan.clauses().size(), 2u);
    EXPECT_EQ(plan.spec(),
              "ipi.drop@n1;virtio.completion.delay@p0.1,d50us");
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    // Unknown site, missing trigger, malformed trigger, probability
    // out of range, 1-based occurrence violated, delay on a non-delay
    // site, delay site without a delay, bad time unit.
    for (const char *bad :
         {"bogus.site@n1", "ipi.drop", "ipi.drop@x1", "ipi.drop@p1.5",
          "ipi.drop@n0", "ipi.drop@n1,d1us", "ipi.delay@n1",
          "ipi.delay@n1,d5s", "ipi.delay@n1,q5us"}) {
        EXPECT_THROW(FaultPlan::parse(bad), FatalError) << bad;
    }
}

// ------------------------------------------------------------- determinism

TEST(FaultInjector, SiteStreamsAreIndependent)
{
    // Consulting one site must not perturb another site's stream:
    // injector A interleaves both sites, injector B consults only
    // ipi.drop, and the ipi.drop decision sequences are identical.
    FaultPlan plan =
        FaultPlan::parse("ipi.drop@p0.5;ring.post.drop@p0.5");
    FaultInjector a(plan, 42), b(plan, 42);
    std::vector<bool> seq_a, seq_b;
    for (int i = 0; i < 200; ++i) {
        seq_a.push_back(a.decide(FaultSite::IpiDrop).fire);
        a.decide(FaultSite::RingPostDrop);
        seq_b.push_back(b.decide(FaultSite::IpiDrop).fire);
    }
    EXPECT_EQ(seq_a, seq_b);
    // And the stream is non-trivial at p=0.5.
    EXPECT_GT(a.injectedCount(FaultSite::IpiDrop), 0u);
    EXPECT_LT(a.injectedCount(FaultSite::IpiDrop), 200u);
}

TEST(FaultInjector, OccurrenceWindowFiresExactly)
{
    FaultInjector inj(FaultPlan::parse("ipi.drop@n2+3"), 7);
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(inj.fires(FaultSite::IpiDrop));
    EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true,
                                        false, false}));
    EXPECT_EQ(inj.occurrenceCount(FaultSite::IpiDrop), 6u);
    EXPECT_EQ(inj.injectedCount(FaultSite::IpiDrop), 3u);
}

// ------------------------------------------- LAPIC delivery-time bugfixes

class LapicFaultTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    CostModel costs;
};

TEST_F(LapicFaultTest, IpiResolvesRedirectAtDeliveryTime)
{
    // Regression: sendIpi used to capture the resolved destination at
    // send time, so a redirect installed while the IPI was in flight
    // (SVt enabling on the target core) was bypassed.
    Lapic a(eq, costs, 0), b(eq, costs, 1), c(eq, costs, 2);
    a.sendIpi(b, 0xfd);
    b.redirect = &c;
    eq.advanceBy(costs.ipiLatency);
    EXPECT_FALSE(b.hasPending());
    EXPECT_TRUE(c.isPending(0xfd));
}

TEST_F(LapicFaultTest, IpiRedirectionCycleCaughtAtDelivery)
{
    Lapic a(eq, costs, 0), b(eq, costs, 1), c(eq, costs, 2);
    a.sendIpi(b, 0xfd);
    b.redirect = &c;
    c.redirect = &b;
    EXPECT_THROW(eq.advanceBy(costs.ipiLatency), PanicError);
}

TEST_F(LapicFaultTest, DestructorDeschedulesInflightIpis)
{
    // Regression (crashed under ASan): the in-flight IPI event held a
    // raw pointer to the destination Lapic, and ~Lapic only
    // descheduled the tsc-deadline timer, so delivery after
    // destruction was a use-after-free.
    Lapic a(eq, costs, 0);
    {
        Lapic b(eq, costs, 1);
        a.sendIpi(b, 0xfd);
        a.sendIpi(b, 0xfe);
    }
    eq.advanceBy(costs.ipiLatency * 2);
}

TEST_F(LapicFaultTest, IpiDropFault)
{
    FaultInjector inj(FaultPlan::parse("ipi.drop@n1"), 1);
    eq.setFaultInjector(&inj);
    Lapic a(eq, costs, 0), b(eq, costs, 1);
    a.sendIpi(b, 0xfd);
    eq.advanceBy(costs.ipiLatency * 2);
    EXPECT_FALSE(b.hasPending());
    EXPECT_EQ(inj.injectedCount(FaultSite::IpiDrop), 1u);
    // Only the first IPI is lost.
    a.sendIpi(b, 0xfd);
    eq.advanceBy(costs.ipiLatency);
    EXPECT_TRUE(b.isPending(0xfd));
}

TEST_F(LapicFaultTest, IpiDelayFault)
{
    FaultInjector inj(FaultPlan::parse("ipi.delay@n1,d5us"), 1);
    eq.setFaultInjector(&inj);
    Lapic a(eq, costs, 0), b(eq, costs, 1);
    a.sendIpi(b, 0xfd);
    eq.advanceBy(costs.ipiLatency + usec(5) - 1);
    EXPECT_FALSE(b.hasPending());
    eq.advanceBy(1);
    EXPECT_TRUE(b.isPending(0xfd));
}

// ------------------------------------------------- command-ring faults

TEST(RingFault, PostDropLosesExactlyTheTargetPost)
{
    Machine machine(MachineTopology{1, 1, 2});
    machine.installFaultPlan(FaultPlan::parse("ring.post.drop@n1"));
    CommandRing ring(machine, "ring.test", 2);
    ChannelMessage msg;
    EXPECT_FALSE(ring.post(msg));
    EXPECT_FALSE(ring.hasMessage());
    EXPECT_EQ(machine.counter("fault.injected.ring.post.drop"), 1u);
    EXPECT_TRUE(ring.post(msg));
    EXPECT_TRUE(ring.hasMessage());
}

TEST(RingFault, SpuriousWakeAndDoorbellDelayAreCharged)
{
    Machine machine(MachineTopology{1, 1, 2});
    machine.installFaultPlan(FaultPlan::parse(
        "ring.wake.spurious@n1;ring.doorbell.delay@n1,d10us"));
    CommandRing ring(machine, "ring.test", 2);
    ChannelMessage msg;
    ring.post(msg);
    Ticks t0 = machine.now();
    ring.consumeWake(ChannelModel{});
    // One spurious wakeup re-arms the monitor, then the doorbell
    // lands 10us late: both show up as consumed waiter time.
    EXPECT_GE(machine.now() - t0, usec(10));
    EXPECT_EQ(machine.counter("fault.injected.ring.wake.spurious"),
              1u);
    EXPECT_EQ(machine.counter("fault.injected.ring.doorbell.delay"),
              1u);
}

// ----------------------------------------------------- virtio-path faults

TEST(VirtioFault, CompletionDelayShiftsTheCompletionEvent)
{
    Machine machine(MachineTopology{1, 1, 2});
    machine.installFaultPlan(
        FaultPlan::parse("virtio.completion.delay@n1,d50us"));
    RamDisk disk(machine, "disk");
    Ticks completed_at = -1;
    disk.setCompletionHandler([&](std::uint64_t) {
        completed_at = machine.now();
    });
    disk.submit(1, 0, 4096, false);
    machine.events().advanceBy(msec(10));
    EXPECT_EQ(completed_at, disk.serviceTime(4096, false) + usec(50));
    EXPECT_EQ(
        machine.counter("fault.injected.virtio.completion.delay"),
        1u);
}

TEST(VirtioFault, BackpressureStallsTheProducer)
{
    Machine machine(MachineTopology{1, 1, 2});
    machine.installFaultPlan(
        FaultPlan::parse("virtio.backpressure@n1"));
    Virtqueue q(machine, "q", 8);
    Ticks t0 = machine.now();
    q.post(VirtioBuffer{1, 512, 0, false});
    EXPECT_EQ(q.fullCount(), 1u);
    EXPECT_GE(machine.now() - t0, machine.costs().ringFullWait);
    // The buffer was stalled, not lost.
    VirtioBuffer buf;
    EXPECT_TRUE(q.take(buf));
    EXPECT_EQ(buf.id, 1u);
}

// ----------------------------------------- posted-path delivery faults

TEST(VirtioFault, PostedPathKeepsDelayedCompletionsDeliverable)
{
    // No-lost-interrupts property (exit-elision rung 1): with posted
    // interrupts enabled, completion vectors that arrive late (every
    // disk completion delayed, IPIs jittered) must still reach L2 —
    // whether the vCPU is in guest mode (posted delivery) or halted
    // (IRR merge + conventional injection) when the notification
    // lands.
    StackConfig cfg;
    cfg.mode = VirtMode::Nested;
    cfg.postedInterrupts = true;
    NestedSystem sys(VirtMode::Nested, cfg);
    sys.machine().installFaultPlan(FaultPlan::parse(
        "virtio.completion.delay@p1,d5us;ipi.delay@p0.5,d2us"));
    RamDisk disk(sys.machine(), "ramdisk");
    VirtioBlkStack blk(sys.stack(), disk);
    int done = 0;
    blk.setCompletionHandler([&](std::uint64_t) { ++done; });
    for (int i = 0; i < 8; ++i)
        blk.submit(100 + i, i * 8, 4096, false);
    while (done < 8)
        sys.api().halt();
    EXPECT_EQ(blk.completedCount(), 8u);
    EXPECT_GT(sys.machine().counter(
                  "fault.injected.virtio.completion.delay"),
              0u);
    EXPECT_GT(sys.machine().counter("irq.posted"), 0u);
}

TEST(VirtioFault, PostedPathSurvivesDelaysWhileL2StaysBusy)
{
    // Same property with the vCPU kept in guest mode: the delayed
    // notification must take the exitless posted path rather than
    // waiting for the next natural exit (or being dropped).
    StackConfig cfg;
    cfg.mode = VirtMode::Nested;
    cfg.postedInterrupts = true;
    cfg.virtioQueues = 2;
    // Timer-dominated coalescing with a timeout past the completion
    // stream: the batch is delivered by the one-shot timer event
    // while the vCPU is busy in guest mode, which is exactly when the
    // exitless posted path engages.
    cfg.virtioCoalesceCount = 64;
    cfg.virtioCoalesceTimeout = msec(1);
    NestedSystem sys(VirtMode::Nested, cfg);
    sys.machine().installFaultPlan(
        FaultPlan::parse("virtio.completion.delay@p1,d5us"));
    RamDisk disk(sys.machine(), "ramdisk");
    VirtioBlkStack blk(sys.stack(), disk);
    int done = 0;
    blk.setCompletionHandler([&](std::uint64_t) { ++done; });
    for (int i = 0; i < 8; ++i)
        blk.submit(100 + i, i * 8, 4096, false);
    for (long spins = 0; done < 8; ++spins) {
        ASSERT_LT(spins, 2000000L) << "posted delivery lost a vector";
        sys.api().compute(usec(2));
    }
    EXPECT_EQ(blk.completedCount(), 8u);
    EXPECT_GT(sys.machine().counter("l2.exit.elided.posted"), 0u);
}

// ------------------------------------------------ watchdog state machine

MachineTopology
swSvtTopo()
{
    return MachineTopology{1, 2, 2};
}

StackConfig
swSvtConfig(bool watchdog, bool blocked_fix = true)
{
    StackConfig cfg;
    cfg.mode = VirtMode::SwSvt;
    cfg.svtBlockedFix = blocked_fix;
    cfg.svtWatchdog.enabled = watchdog;
    cfg.svtWatchdog.timeout = usec(10);
    cfg.svtWatchdog.maxRetries = 2;
    cfg.svtWatchdog.backoff = usec(5);
    cfg.svtWatchdog.quietPeriod = usec(200);
    return cfg;
}

TEST(SvtWatchdog, ConfigRequiresSwSvtModeAndSaneParameters)
{
    StackConfig cfg = swSvtConfig(true);
    cfg.mode = VirtMode::Nested;
    EXPECT_THROW(validateStackConfig(cfg), FatalError);
    cfg = swSvtConfig(true);
    cfg.svtWatchdog.timeout = 0;
    EXPECT_THROW(validateStackConfig(cfg), FatalError);
    cfg = swSvtConfig(true);
    cfg.svtWatchdog.maxRetries = 0;
    EXPECT_THROW(validateStackConfig(cfg), FatalError);
    EXPECT_NO_THROW(validateStackConfig(swSvtConfig(true)));
}

TEST(SvtWatchdog, RetryRecoversADroppedTrapCommand)
{
    // The first CMD_VM_TRAP post is lost; the watchdog re-rings the
    // doorbell and the handshake completes without degrading.
    Machine machine(swSvtTopo());
    machine.installFaultPlan(FaultPlan::parse("ring.post.drop@n1"));
    VirtStack stack(machine, swSvtConfig(true));
    auto r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_FALSE(stack.svtDegraded());
    EXPECT_EQ(machine.counter("svt.watchdog.retry"), 1u);
    EXPECT_EQ(machine.counter("svt.fallback"), 0u);
}

TEST(SvtWatchdog, PersistentLossDegradesThenRepromotes)
{
    // The trap post and both retries are lost: the stack degrades to
    // the conventional nested path, keeps answering correctly, and
    // re-promotes to SW SVt after the quiet period.
    Machine machine(swSvtTopo());
    machine.installFaultPlan(FaultPlan::parse("ring.post.drop@n1+3"));
    VirtStack stack(machine, swSvtConfig(true));
    auto r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_TRUE(stack.svtDegraded());
    EXPECT_EQ(machine.counter("svt.fallback"), 1u);
    // Degraded operation still works (no rings involved).
    r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    // After the quiet period the next exit re-promotes and the
    // handshake (drop window exhausted) works again.
    machine.idleUntil(machine.now() + usec(300));
    r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_FALSE(stack.svtDegraded());
    EXPECT_EQ(machine.counter("svt.repromote"), 1u);
    EXPECT_EQ(machine.counter("svt.fallback"), 1u);
}

TEST(SvtWatchdog, WithoutWatchdogALostCommandDeadlocks)
{
    Machine machine(swSvtTopo());
    machine.installFaultPlan(FaultPlan::parse("ring.post.drop@n1+9"));
    VirtStack stack(machine, swSvtConfig(false));
    EXPECT_THROW(stack.api().cpuid(1), DeadlockError);
}

TEST(SvtWatchdog, DroppedResumeCommandDegradesGracefully)
{
    // The response leg (CMD_VM_RESUME, second post of the exit) is
    // lost persistently: L0 lazily syncs registers from the SVt
    // thread and degrades instead of hanging.
    Machine machine(swSvtTopo());
    machine.installFaultPlan(FaultPlan::parse("ring.post.drop@n2+9"));
    VirtStack stack(machine, swSvtConfig(true));
    auto r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_TRUE(stack.svtDegraded());
    EXPECT_EQ(machine.counter("svt.fallback"), 1u);
}

// --------------------------------------- Section 5.3 degradation matrix

TEST(SvtWatchdog, Section53MatrixWithLostIpis)
{
    // Every preemption IPI is lost. Without the watchdog both
    // svtBlockedFix settings deadlock (the fix itself depends on
    // interrupt delivery); with the watchdog both degrade and
    // complete.
    for (bool blocked_fix : {false, true}) {
        Machine machine(swSvtTopo());
        machine.installFaultPlan(FaultPlan::parse("ipi.drop@p1"));
        VirtStack stack(machine, swSvtConfig(false, blocked_fix));
        stack.api().cpuid(1);
        stack.armSvtThreadPreemption(usec(30));
        EXPECT_THROW(stack.api().cpuid(1), DeadlockError)
            << "blocked_fix=" << blocked_fix;
    }
    for (bool blocked_fix : {false, true}) {
        Machine machine(swSvtTopo());
        machine.installFaultPlan(FaultPlan::parse("ipi.drop@p1"));
        VirtStack stack(machine, swSvtConfig(true, blocked_fix));
        stack.api().cpuid(1);
        stack.armSvtThreadPreemption(usec(30));
        auto r = stack.api().cpuid(1);
        EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
        EXPECT_GE(machine.counter("svt.fallback"), 1u)
            << "blocked_fix=" << blocked_fix;
        // And the stack keeps answering afterwards.
        r = stack.api().cpuid(1);
        EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    }
}

TEST(SvtWatchdog, PreemptionWithDeliveredIpiStillUsesSvtBlocked)
{
    // No faults: the watchdog must not change the Section 5.3 fix
    // behaviour on the happy path.
    Machine machine(swSvtTopo());
    VirtStack stack(machine, swSvtConfig(true));
    stack.api().cpuid(1);
    stack.armSvtThreadPreemption(usec(30));
    auto r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_EQ(machine.counter("swsvt.svt_blocked"), 1u);
    EXPECT_EQ(machine.counter("svt.fallback"), 0u);
}

// --------------------------------------------- harness-level determinism

void
faultProbeScenario(NestedSystem &sys, ScenarioResult &r)
{
    GuestApi &api = sys.api();
    for (int i = 0; i < 32; ++i)
        api.cpuid(1);
    r.record("now_usec", toUsec(sys.machine().now()));
    r.record("rng_draw",
             static_cast<double>(sys.machine().rng().next() % 100000));
}

BenchHarness
makeFaultHarness()
{
    BenchHarness bench("fault_bench", "fault harness under test");
    for (VirtMode mode : {VirtMode::Nested, VirtMode::SwSvt})
        bench.add(virtModeName(mode), mode, faultProbeScenario);
    return bench;
}

int
runHarness(BenchHarness &bench, std::vector<std::string> args)
{
    std::vector<char *> argv;
    args.insert(args.begin(), "fault_bench");
    for (std::string &a : args)
        argv.push_back(a.data());
    return bench.main(static_cast<int>(argv.size()), argv.data());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(FaultHarness, FaultRunsAreByteIdenticalAcrossJobs)
{
    const std::string spec = "ipi.delay@p0.5,d2us;"
                             "ring.wake.spurious@p0.3;"
                             "virtio.completion.delay@p0.2,d5us";
    std::string j1 = testing::TempDir() + "fault_jobs1.json";
    std::string j8 = testing::TempDir() + "fault_jobs8.json";
    std::string m1 = testing::TempDir() + "fault_jobs1_pmu.json";
    std::string m8 = testing::TempDir() + "fault_jobs8_pmu.json";
    BenchHarness bench = makeFaultHarness();
    ASSERT_EQ(runHarness(bench, {"--jobs=1", "--faults=" + spec,
                                 "--json=" + j1, "--metrics=" + m1}),
              0);
    ASSERT_EQ(runHarness(bench, {"--jobs=8", "--faults=" + spec,
                                 "--json=" + j8, "--metrics=" + m8}),
              0);
    std::string json = slurp(j1);
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json, slurp(j8));
    std::string pmu = slurp(m1);
    ASSERT_FALSE(pmu.empty());
    EXPECT_EQ(pmu, slurp(m8));
    // The plan is part of the artifact's provenance.
    EXPECT_NE(json.find("\"faults\": \"" + spec + "\""),
              std::string::npos);
    // And it actually injected something.
    EXPECT_NE(pmu.find("fault.injected."), std::string::npos);
}

TEST(FaultHarness, WatchdogFallbackSurfacesInMetricsDump)
{
    // Acceptance scenario: a nested cpuid workload with an injected
    // SVt-thread stall completes via watchdog fallback and the
    // degradation counters appear in --metrics.
    std::string path = testing::TempDir() + "fault_watchdog_pmu.json";
    BenchHarness bench("fault_watchdog_bench", "watchdog acceptance");
    bench.add("swsvt-stall", VirtMode::SwSvt, swSvtConfig(true),
              faultProbeScenario);
    ASSERT_EQ(runHarness(bench,
                         {"--faults=ring.post.drop@n1+3",
                          "--metrics=" + path}),
              0);
    std::string pmu = slurp(path);
    EXPECT_NE(pmu.find("\"svt.fallback\""), std::string::npos);
    EXPECT_NE(pmu.find("\"svt.repromote\""), std::string::npos);
    EXPECT_NE(pmu.find("\"svt.watchdog.retry\""), std::string::npos);
}

TEST(FaultHarness, RejectsMalformedFaultsFlag)
{
    BenchHarness bench = makeFaultHarness();
    EXPECT_EQ(runHarness(bench, {"--faults=bogus.site@n1"}), 2);
    EXPECT_EQ(runHarness(bench, {"--faults=ipi.delay@n1"}), 2);
}

} // namespace
} // namespace svtsim
