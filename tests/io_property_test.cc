/**
 * @file
 * Property tests for the io substrate: virtqueue invariants under
 * random operation sequences, packet conservation on the fabric,
 * ramdisk ordering, and AsyncStage work conservation.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "arch/machine.h"
#include "io/async_stage.h"
#include "io/net_fabric.h"
#include "io/ramdisk.h"
#include "io/virtqueue.h"
#include "sim/random.h"

namespace svtsim {
namespace {

// ------------------------------------------------------------- virtqueue

TEST(VirtqueueProperty, RandomSequencePreservesFifoAndCounts)
{
    Rng rng(314);
    for (int trial = 0; trial < 12; ++trial) {
        Machine machine(MachineTopology{1, 1, 2});
        Virtqueue q(machine, "prop", 64);
        std::deque<std::uint64_t> model_avail;
        std::deque<std::uint64_t> model_used;
        std::uint64_t next_id = 1;
        std::uint64_t kicks = 0;

        for (int op = 0; op < 600; ++op) {
            switch (rng.below(4)) {
              case 0: // driver posts
                if (model_avail.size() < 64) {
                    std::uint64_t id = next_id++;
                    if (q.post(VirtioBuffer{id, 1, 0, false}))
                        ++kicks;
                    model_avail.push_back(id);
                }
                break;
              case 1: { // device takes
                VirtioBuffer buf;
                bool got = q.take(buf);
                EXPECT_EQ(got, !model_avail.empty());
                if (got) {
                    EXPECT_EQ(buf.id, model_avail.front());
                    model_avail.pop_front();
                    if (model_used.size() < 64) {
                        q.complete(buf);
                        model_used.push_back(buf.id);
                    }
                }
                break;
              }
              case 2: { // driver reaps
                VirtioBuffer buf;
                bool got = q.popUsed(buf);
                EXPECT_EQ(got, !model_used.empty());
                if (got) {
                    EXPECT_EQ(buf.id, model_used.front());
                    model_used.pop_front();
                }
                break;
              }
              case 3: // device declares polling
                if (rng.chance(0.5))
                    q.deviceBusy();
                break;
            }
            EXPECT_EQ(q.availDepth(), model_avail.size());
        }
        EXPECT_EQ(q.kicksNeeded(), kicks);
        EXPECT_EQ(q.postedCount(), next_id - 1);
    }
}

TEST(VirtqueueProperty, KickOnlyWhenDeviceIdle)
{
    Machine machine(MachineTopology{1, 1, 2});
    Virtqueue q(machine, "kick");
    // A post after deviceBusy() never kicks until the device drains
    // the ring and goes idle.
    q.deviceBusy();
    EXPECT_FALSE(q.post(VirtioBuffer{1, 1, 0, false}));
    VirtioBuffer buf;
    while (q.take(buf)) {
    }
    EXPECT_TRUE(q.post(VirtioBuffer{2, 1, 0, false}));
}

// ---------------------------------------------------------------- fabric

TEST(FabricProperty, EveryPacketArrivesExactlyOnceInOrder)
{
    Rng rng(271);
    Machine machine(MachineTopology{1, 1, 2});
    NetFabric fabric(machine, usec(3), 10e9);
    std::vector<std::uint64_t> to_peer, to_local;
    fabric.setPeerHandler(
        [&](NetPacket p) { to_peer.push_back(p.id); });
    fabric.setLocalHandler(
        [&](NetPacket p) { to_local.push_back(p.id); });

    std::vector<std::uint64_t> sent_peer, sent_local;
    for (int i = 0; i < 300; ++i) {
        NetPacket pkt{static_cast<std::uint64_t>(i),
                      static_cast<std::uint32_t>(
                          64 + rng.below(9000)),
                      0};
        if (rng.chance(0.5)) {
            fabric.sendToPeer(pkt);
            sent_peer.push_back(pkt.id);
        } else {
            fabric.sendToLocal(pkt);
            sent_local.push_back(pkt.id);
        }
        if (rng.chance(0.3))
            machine.events().advanceBy(usec(rng.below(30)));
    }
    machine.events().advanceBy(msec(10));
    EXPECT_EQ(to_peer, sent_peer);
    EXPECT_EQ(to_local, sent_local);
    EXPECT_EQ(fabric.deliveredToPeer(), sent_peer.size());
    EXPECT_EQ(fabric.deliveredToLocal(), sent_local.size());
}

TEST(FabricProperty, ArrivalSpacingRespectsSerialization)
{
    // Regardless of send pattern, same-direction arrivals can never
    // be closer together than the wire's serialization time.
    Machine machine(MachineTopology{1, 1, 2});
    NetFabric fabric(machine, usec(5), 10e9);
    std::vector<Ticks> arrivals;
    fabric.setPeerHandler(
        [&](NetPacket) { arrivals.push_back(machine.now()); });
    for (int i = 0; i < 50; ++i)
        fabric.sendToPeer(NetPacket{static_cast<std::uint64_t>(i),
                                    16384, 0});
    machine.events().advanceBy(msec(20));
    Ticks min_gap = fabric.serialization(16384);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i] - arrivals[i - 1], min_gap);
}

// --------------------------------------------------------------- ramdisk

TEST(RamDiskProperty, CompletionsAreFifoAndConserved)
{
    Rng rng(161);
    Machine machine(MachineTopology{1, 1, 2});
    RamDisk disk(machine, "prop");
    std::vector<std::uint64_t> completed;
    disk.setCompletionHandler(
        [&](std::uint64_t id) { completed.push_back(id); });
    std::vector<std::uint64_t> submitted;
    for (int i = 0; i < 120; ++i) {
        disk.submit(static_cast<std::uint64_t>(i), rng.below(1000),
                    static_cast<std::uint32_t>(512 << rng.below(5)),
                    rng.chance(0.4));
        submitted.push_back(static_cast<std::uint64_t>(i));
        if (rng.chance(0.25))
            machine.events().advanceBy(usec(rng.below(20)));
    }
    machine.events().advanceBy(msec(50));
    EXPECT_EQ(completed, submitted);
    EXPECT_EQ(disk.completedCount(), submitted.size());
}

// ------------------------------------------------------------ async stage

TEST(AsyncStageProperty, ServerIsWorkConservingAndOrdered)
{
    Rng rng(99);
    AsyncStage stage;
    Ticks prev_done = 0;
    Ticks total_service = 0;
    Ticks first_ready = -1;
    for (int i = 0; i < 200; ++i) {
        Ticks ready = static_cast<Ticks>(rng.below(usec(500)));
        Ticks service = nsec(50 + rng.below(3000));
        Ticks done = stage.completeAt(ready, service);
        // Completions are monotone (FIFO server).
        EXPECT_GE(done, prev_done);
        // A job never finishes before ready + service.
        EXPECT_GE(done, ready + service);
        prev_done = done;
        total_service += service;
        if (first_ready < 0)
            first_ready = ready;
    }
    // Makespan is bounded by total service plus the last idle gap:
    // the busy horizon can never exceed "everything back to back
    // from the first instant work could start".
    EXPECT_LE(stage.freeAt(), usec(500) + total_service);
}

} // namespace
} // namespace svtsim
