/**
 * @file
 * Tests for the exit-elision ladder: posted-interrupt delivery with
 * x2APIC virtualization (rung 1), multi-queue virtio with interrupt
 * coalescing (rung 2), the StackConfig validation for the new knobs,
 * and byte-identity of elision runs across --jobs/--cluster-jobs.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hv/stack_config.h"
#include "hv/virt_stack.h"
#include "io/irq_coalescer.h"
#include "io/net_fabric.h"
#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "sim/log.h"
#include "system/bench_harness.h"
#include "system/cluster_spec.h"
#include "system/nested_system.h"
#include "workloads/remote_peer.h"

namespace svtsim {
namespace {

/** One rung combination of the ladder. */
StackConfig
elisionCfg(VirtMode mode, bool posted, int queues = 1, int count = 1,
           Ticks timeout = 0)
{
    StackConfig cfg;
    cfg.mode = mode;
    cfg.postedInterrupts = posted;
    cfg.virtioQueues = queues;
    cfg.virtioCoalesceCount = count;
    cfg.virtioCoalesceTimeout = timeout;
    return cfg;
}

// --------------------------------------------------- config validation

TEST(ElisionConfig, PostedInterruptsRequireANestedStack)
{
    EXPECT_THROW(validateStackConfig(
                     elisionCfg(VirtMode::Native, true)),
                 FatalError);
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt})
        EXPECT_NO_THROW(validateStackConfig(elisionCfg(mode, true)));
}

TEST(ElisionConfig, QueueCountIsBoundedAndNestedOnly)
{
    EXPECT_THROW(
        validateStackConfig(elisionCfg(VirtMode::Nested, false, 0)),
        FatalError);
    EXPECT_THROW(
        validateStackConfig(elisionCfg(VirtMode::Nested, false, 9)),
        FatalError);
    EXPECT_THROW(
        validateStackConfig(elisionCfg(VirtMode::Native, false, 2)),
        FatalError);
    EXPECT_NO_THROW(
        validateStackConfig(elisionCfg(VirtMode::Native, false, 1)));
    EXPECT_NO_THROW(validateStackConfig(
        elisionCfg(VirtMode::Nested, false, 8, 4, usec(25))));
}

TEST(ElisionConfig, CoalescingKnobsAreValidated)
{
    // Count below 1, a count that can strand a tail batch (no
    // timeout), a negative timeout, and tuning on a non-nested stack.
    EXPECT_THROW(
        validateStackConfig(elisionCfg(VirtMode::Nested, false, 1, 0)),
        FatalError);
    EXPECT_THROW(
        validateStackConfig(elisionCfg(VirtMode::Nested, false, 1, 4)),
        FatalError);
    EXPECT_THROW(validateStackConfig(
                     elisionCfg(VirtMode::Nested, false, 1, 1, -1)),
                 FatalError);
    EXPECT_THROW(validateStackConfig(elisionCfg(VirtMode::Native,
                                                false, 1, 4,
                                                usec(25))),
                 FatalError);
    EXPECT_NO_THROW(validateStackConfig(
        elisionCfg(VirtMode::Nested, false, 1, 4, usec(25))));
}

// ------------------------------------------------- coalescer mechanics

class IrqCoalescerTest : public ::testing::Test
{
  protected:
    Machine machine{MachineTopology{1, 1, 2}};
    int fires = 0;
};

TEST_F(IrqCoalescerTest, FiresAtExactCountThreshold)
{
    IrqCoalescer co(machine, "co", 3, usec(50), [&] { ++fires; });
    co.note();
    co.note();
    EXPECT_EQ(fires, 0);
    EXPECT_EQ(co.pending(), 2);
    co.note(); // exactly the threshold
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(co.pending(), 0);
    EXPECT_EQ(machine.counter("co.count_fire"), 1u);
    EXPECT_EQ(machine.counter("co.noted"), 3u);
    EXPECT_EQ(machine.counter("co.timer_fire"), 0u);
}

TEST_F(IrqCoalescerTest, TimerDeliversAPartialBatch)
{
    IrqCoalescer co(machine, "co", 4, usec(25), [&] { ++fires; });
    co.note();
    co.note();
    EXPECT_EQ(fires, 0);
    machine.events().advanceBy(usec(25) - 1);
    EXPECT_EQ(fires, 0); // still inside the window
    machine.events().advanceBy(1);
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(machine.counter("co.timer_fire"), 1u);
    EXPECT_EQ(machine.counter("co.count_fire"), 0u);
    EXPECT_FALSE(co.timerArmed());
}

TEST_F(IrqCoalescerTest, LeftoverTimerAfterCountFireIsANoOp)
{
    // A count-threshold fire deliberately leaves the armed timer in
    // place; it later finds an empty batch and only bumps the
    // empty_timer counter (the documented boundary).
    IrqCoalescer co(machine, "co", 2, usec(25), [&] { ++fires; });
    co.note(); // arms the timer
    co.note(); // count fire; timer stays armed
    EXPECT_EQ(fires, 1);
    EXPECT_TRUE(co.timerArmed());
    machine.events().advanceBy(usec(25));
    EXPECT_EQ(fires, 1); // no spurious delivery
    EXPECT_EQ(machine.counter("co.empty_timer"), 1u);
    EXPECT_FALSE(co.timerArmed());
}

TEST_F(IrqCoalescerTest, CountOneDegeneratesToPerCompletionIrqs)
{
    IrqCoalescer co(machine, "co", 1, 0, [&] { ++fires; });
    for (int i = 0; i < 5; ++i)
        co.note();
    EXPECT_EQ(fires, 5);
    EXPECT_FALSE(co.timerArmed());
    EXPECT_EQ(machine.counter("co.count_fire"), 5u);
}

TEST_F(IrqCoalescerTest, DeliveredBatchesMatchTheFireCounters)
{
    IrqCoalescer co(machine, "co", 3, usec(10), [&] { ++fires; });
    for (int i = 0; i < 7; ++i)
        co.note(); // two count fires + one pending
    machine.events().advanceBy(usec(50)); // timer flushes the tail
    EXPECT_EQ(co.pending(), 0);
    EXPECT_EQ(static_cast<std::uint64_t>(fires),
              machine.counter("co.count_fire") +
                  machine.counter("co.timer_fire"));
    EXPECT_EQ(machine.counter("co.noted"), 7u);
}

TEST_F(IrqCoalescerTest, RejectsUnboundedBatching)
{
    EXPECT_THROW(IrqCoalescer(machine, "co", 0, 0, [] {}),
                 FatalError);
    // count > 1 without a timeout could strand a tail batch forever.
    EXPECT_THROW(IrqCoalescer(machine, "co", 4, 0, [] {}),
                 FatalError);
}

// ---------------------------------------------- posted-interrupt rung

/** Disk rig with a configurable stack. */
struct ElisionBlkRig
{
    explicit ElisionBlkRig(StackConfig cfg)
        : sys(cfg.mode, cfg), disk(sys.machine(), "ramdisk"),
          blk(sys.stack(), disk)
    {
    }

    /** Run @p n concurrent requests, halting while idle. */
    void
    runHalted(int n)
    {
        int done = 0;
        blk.setCompletionHandler([&](std::uint64_t) { ++done; });
        for (int i = 0; i < n; ++i)
            blk.submit(next_id++, i * 8, 4096, false);
        while (done < n)
            sys.api().halt();
    }

    /** Run @p n concurrent requests while L2 stays busy computing, so
     *  completion vectors find the vCPU in guest mode. */
    void
    runBusy(int n)
    {
        int done = 0;
        blk.setCompletionHandler([&](std::uint64_t) { ++done; });
        for (int i = 0; i < n; ++i)
            blk.submit(next_id++, i * 8, 4096, false);
        for (long spins = 0; done < n; ++spins) {
            ASSERT_LT(spins, 2000000L) << "requests stalled";
            sys.api().compute(usec(2));
        }
    }

    std::uint64_t
    counter(const char *key)
    {
        return sys.machine().counter(key);
    }

    NestedSystem sys;
    RamDisk disk;
    VirtioBlkStack blk;
    std::uint64_t next_id = 1;
};

TEST(PostedInterrupts, ExitlessDeliveryWhileL2Runs)
{
    // The completion interrupt must reach L2 from outside the
    // host-interrupt chain (which has already exited L2) for the
    // exitless path to be visible. Coalesce with a timeout longer
    // than the whole completion stream: the batch is delivered by the
    // one-shot timer event, which fires while the vCPU is busy in
    // guest mode with no host interrupt pending.
    ElisionBlkRig off(
        elisionCfg(VirtMode::Nested, false, 1, 64, msec(1)));
    ElisionBlkRig on(
        elisionCfg(VirtMode::Nested, true, 1, 64, msec(1)));
    off.runBusy(16);
    on.runBusy(16);
    ASSERT_EQ(on.blk.completedCount(), 16u);
    // At least part of the completion vectors hit the running vCPU
    // and were delivered through the posted path without a VM exit.
    EXPECT_GT(on.counter("l2.exit.elided.posted"), 0u);
    EXPECT_GT(on.counter("irq.posted"), 0u);
    // The exit structure shrinks on both axes: interrupt-arrival
    // exits and the x2APIC EOI trap rounds.
    EXPECT_LT(on.counter("vmx.exit.EXTERNAL_INTERRUPT"),
              off.counter("vmx.exit.EXTERNAL_INTERRUPT"));
    EXPECT_LT(on.counter("l2.exit.MSR_WRITE"),
              off.counter("l2.exit.MSR_WRITE"));
    EXPECT_EQ(off.counter("l2.exit.elided.posted"), 0u);
    EXPECT_EQ(off.counter("irq.posted"), 0u);
}

TEST(PostedInterrupts, HaltedVcpuFallsBackToInjection)
{
    // The no-lost-interrupts property: a posted vector that finds the
    // vCPU halted is merged into the IRR and delivered through the
    // conventional injection path instead of being dropped.
    ElisionBlkRig rig(elisionCfg(VirtMode::Nested, true));
    rig.runHalted(1);
    EXPECT_EQ(rig.blk.completedCount(), 1u);
    EXPECT_GT(rig.counter("irq.posted"), 0u);
    EXPECT_GT(rig.counter("irq.delivered.l2"), 0u);
}

TEST(PostedInterrupts, EoiVirtualizationElidesTheMsrTrapRound)
{
    // Sequential requests so every completion is its own interrupt
    // delivery (concurrent ones merge into a couple of batches).
    ElisionBlkRig off(elisionCfg(VirtMode::Nested, false));
    ElisionBlkRig on(elisionCfg(VirtMode::Nested, true));
    for (int i = 0; i < 20; ++i) {
        off.runHalted(1);
        on.runHalted(1);
    }
    ASSERT_EQ(on.blk.completedCount(), 20u);
    EXPECT_GT(on.counter("l2.exit.elided.eoi"), 10u);
    EXPECT_LT(on.counter("l2.exit.MSR_WRITE"),
              off.counter("l2.exit.MSR_WRITE"));
}

TEST(PostedInterrupts, WorksInAllThreeModes)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        ElisionBlkRig rig(elisionCfg(mode, true));
        rig.runHalted(4);
        EXPECT_EQ(rig.blk.completedCount(), 4u) << virtModeName(mode);
        EXPECT_GT(rig.counter("l2.exit.elided.eoi"), 0u)
            << virtModeName(mode);
    }
}

// ------------------------------------------------- multi-queue rung

TEST(MultiQueueVirtio, CompletionsStayFifoWithinEachQueue)
{
    ElisionBlkRig rig(elisionCfg(VirtMode::Nested, false, 4));
    ASSERT_EQ(rig.blk.queues(), 4);
    std::vector<std::uint64_t> order;
    int done = 0;
    rig.blk.setCompletionHandler([&](std::uint64_t id) {
        order.push_back(id);
        ++done;
    });
    for (std::uint64_t id = 0; id < 16; ++id)
        rig.blk.submit(id, id * 8, 4096, false);
    while (done < 16)
        rig.sys.api().halt();
    ASSERT_EQ(order.size(), 16u);
    // Requests shard by id % queues; within a queue (one residue
    // class) completion order must match submission order.
    std::vector<std::uint64_t> last(4, 0);
    std::vector<bool> seen(4, false);
    for (std::uint64_t id : order) {
        auto q = static_cast<std::size_t>(id % 4);
        if (seen[q])
            EXPECT_LT(last[q], id) << "queue " << q << " reordered";
        last[q] = id;
        seen[q] = true;
    }
}

TEST(MultiQueueVirtio, RequestsShardAcrossPerQueueRings)
{
    ElisionBlkRig rig(elisionCfg(VirtMode::Nested, false, 2));
    rig.runHalted(8);
    // Both submission rings saw traffic, under the suffixed names.
    EXPECT_EQ(rig.counter("l2.blk.q.q0.posted"), 4u);
    EXPECT_EQ(rig.counter("l2.blk.q.q1.posted"), 4u);
}

TEST(MultiQueueVirtio, SingleQueueKeepsTheLegacyCounterSchema)
{
    ElisionBlkRig rig(elisionCfg(VirtMode::Nested, false, 1));
    rig.runHalted(2);
    EXPECT_EQ(rig.counter("l2.blk.q.posted"), 2u);
}

TEST(MultiQueueVirtio, PostedAndCoalescedEndToEndInAllModes)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        ElisionBlkRig rig(elisionCfg(mode, true, 2, 4, usec(25)));
        rig.runHalted(8);
        EXPECT_EQ(rig.blk.completedCount(), 8u) << virtModeName(mode);
        // Every completion went through a coalescer.
        EXPECT_EQ(
            rig.counter("l2.blk.compl.q0.coalesce.noted") +
                rig.counter("l2.blk.compl.q1.coalesce.noted"),
            8u)
            << virtModeName(mode);
    }
}

TEST(MultiQueueVirtio, NetEchoAcrossTwoQueues)
{
    NestedSystem sys(VirtMode::Nested,
                     elisionCfg(VirtMode::Nested, true, 2, 4,
                                usec(25)));
    NetFabric fabric(sys.machine(), sys.machine().costs().wireLatency,
                     sys.machine().costs().linkBitsPerSec);
    VirtioNetStack net(sys.stack(), fabric);
    ASSERT_EQ(net.queues(), 2);
    fabric.setPeerHandler([&](NetPacket pkt) {
        sys.machine().events().scheduleIn(
            sys.machine().costs().remotePeerTurnaround,
            [&fabric, pkt] { fabric.sendToLocal(pkt); });
    });
    int got = 0;
    net.setRxHandler([&](NetPacket) { ++got; });
    for (std::uint64_t id = 1; id <= 8; ++id)
        net.send(512, id);
    while (got < 8)
        sys.api().halt();
    EXPECT_EQ(net.rxPackets(), 8u);
    // Odd/even flow ids landed in different rx rings, and every
    // received packet went through a per-queue coalescer.
    EXPECT_GT(sys.machine().counter("l2.net.rx.q0.coalesce.noted"),
              0u);
    EXPECT_GT(sys.machine().counter("l2.net.rx.q1.coalesce.noted"),
              0u);
    EXPECT_EQ(sys.machine().counter("l2.net.rx.q0.coalesce.noted") +
                  sys.machine().counter("l2.net.rx.q1.coalesce.noted"),
              8u);
    // The tx side sharded as well.
    EXPECT_GT(sys.machine().counter("l2.net.tx.q0.posted"), 0u);
    EXPECT_GT(sys.machine().counter("l2.net.tx.q1.posted"), 0u);
}

// ------------------------------------------------ harness determinism

void
elisionDiskScenario(NestedSystem &sys, ScenarioResult &r)
{
    RamDisk disk(sys.machine(), "ramdisk");
    VirtioBlkStack blk(sys.stack(), disk);
    int done = 0;
    blk.setCompletionHandler([&](std::uint64_t) { ++done; });
    for (int i = 0; i < 12; ++i)
        blk.submit(static_cast<std::uint64_t>(i), i * 8, 4096, false);
    while (done < 12)
        sys.api().halt();
    r.record("completed", done);
    r.record("now_usec", toUsec(sys.machine().now()));
    r.record("elided_eoi",
             static_cast<double>(
                 sys.machine().counter("l2.exit.elided.eoi")));
}

void
elisionNetScenario(ClusterContext &ctx, ScenarioResult &r)
{
    ClusterBuild b =
        ClusterSpec()
            .machine("server", VirtMode::Nested,
                     elisionCfg(VirtMode::Nested, true, 2, 4,
                                usec(25)))
            .machine("client", VirtMode::Native)
            .link("server", "client")
            .realize(ctx);
    VirtioNetStack net(b.stack("server"), b.port("server", "client"));
    MemcachedServer server(b.stack("server"), net);
    MutilateClient client(b.machine("client"),
                          b.port("client", "server"));
    MemcachedPoint pt;
    b.driver("server",
             [&](NestedSystem &) { server.serveUntil(msec(5)); });
    b.driver("client", [&](NestedSystem &) {
        pt = client.runLoad(20000.0, msec(5));
    });
    b.run(ctx);
    r.record("completed", static_cast<double>(pt.completed));
    r.record("p99_us", pt.p99Usec);
    ctx.finish(b.cluster(), r);
}

int
runHarness(BenchHarness &bench, std::vector<std::string> args)
{
    std::vector<char *> argv;
    args.insert(args.begin(), "elision_bench");
    for (std::string &a : args)
        argv.push_back(a.data());
    return bench.main(static_cast<int>(argv.size()), argv.data());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ElisionHarness, RunsAreByteIdenticalAcrossJobsAndClusterJobs)
{
    BenchHarness bench("elision_bench",
                       "elision determinism under test");
    bench.add("disk-elide", VirtMode::Nested,
              elisionCfg(VirtMode::Nested, true, 2, 4, usec(25)),
              elisionDiskScenario);
    bench.addCluster("net-elide", VirtMode::Nested,
                     elisionNetScenario);

    struct Variant
    {
        const char *tag;
        std::vector<std::string> args;
    };
    const Variant variants[] = {
        {"j1", {"--jobs=1", "--cluster-jobs=1"}},
        {"j4", {"--jobs=4", "--cluster-jobs=1"}},
        {"c4", {"--jobs=2", "--cluster-jobs=4"}},
    };
    std::string ref_json, ref_pmu;
    for (const Variant &v : variants) {
        std::string json =
            testing::TempDir() + "elision_" + v.tag + ".json";
        std::string pmu =
            testing::TempDir() + "elision_" + v.tag + "_pmu.json";
        std::vector<std::string> args = v.args;
        args.push_back("--json=" + json);
        args.push_back("--metrics=" + pmu);
        ASSERT_EQ(runHarness(bench, args), 0) << v.tag;
        if (ref_json.empty()) {
            ref_json = slurp(json);
            ref_pmu = slurp(pmu);
            ASSERT_FALSE(ref_json.empty());
            ASSERT_FALSE(ref_pmu.empty());
            // The elision counters are part of the artifact.
            EXPECT_NE(ref_pmu.find("l2.exit.elided.eoi"),
                      std::string::npos);
        } else {
            EXPECT_EQ(ref_json, slurp(json)) << v.tag;
            EXPECT_EQ(ref_pmu, slurp(pmu)) << v.tag;
        }
    }
}

} // namespace
} // namespace svtsim
