/**
 * @file
 * Fleet scheduler tests: spec validation rejection matrix, placement
 * determinism, jobs-count byte-identity of fleet outcomes, the
 * per-pair lookahead engine under heterogeneous link latencies, and
 * the Table 4 policy ordering (svt-pair beats isolate).
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "io/cross_link.h"
#include "sim/log.h"
#include "system/cluster.h"
#include "system/cluster_spec.h"
#include "system/fleet/fleet_scheduler.h"

using namespace svtsim;

namespace {

template <typename F>
void
expectFatal(F f, const std::string &needle)
{
    try {
        f();
        FAIL() << "expected FatalError containing '" << needle << "'";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "message: " << e.what();
    }
}

FleetSpec
smallSpec(PlacementPolicy policy)
{
    FleetSpec spec;
    spec.topology = TopologySpec{1, 2, 2};
    spec.policy = policy;
    TenantSpec mc = memcachedTenant("mc", 1, 4000.0);
    mc.duration = msec(40);
    TenantSpec vid = videoTenant("vid", 1, 60.0, 0.5);
    vid.duration = msec(200);
    spec.tenants = {mc, vid};
    if (policy == PlacementPolicy::SiblingShare) {
        spec.tenants[0].vcpus = 2;
        spec.tenants[1].vcpus = 2;
    }
    return spec;
}

std::string
outcomeFingerprint(const FleetOutcome &o)
{
    std::ostringstream os;
    os.precision(17);
    for (const TenantOutcome &t : o.tenants)
        os << t.name << ':' << t.sloValue << '/' << t.achievedQps
           << '/' << t.completed << '/' << t.tpm << '/' << t.frames
           << '/' << t.droppedFrames << '/' << t.interference << ' ';
    os << "p99=" << o.fleetP99Usec << " sla=" << o.qpsUnderSla;
    return os.str();
}

// ---- Validation rejection matrix --------------------------------

TEST(FleetSpecValidation, RejectsMalformedSpecs)
{
    expectFatal(
        [] {
            FleetSpec spec;
            validateFleetSpec(spec);
        },
        "empty tenant set");

    expectFatal(
        [] {
            TopologySpec topo{0, 8, 2};
            validateTopologySpec(topo);
        },
        "every dimension must be >= 1");

    expectFatal(
        [] {
            TenantSpec t = memcachedTenant("", 1, 1000);
            validateTenantSpec(t);
        },
        "empty name");

    expectFatal(
        [] {
            TenantSpec t = memcachedTenant("mc", 0, 1000);
            validateTenantSpec(t);
        },
        "at least one");

    expectFatal(
        [] {
            TenantSpec t = memcachedTenant("mc", 1, 1000, -5);
            validateTenantSpec(t);
        },
        "SLO target");

    expectFatal(
        [] {
            TenantSpec t = memcachedTenant("mc", 1, 0);
            validateTenantSpec(t);
        },
        "qpsPerVcpu");

    expectFatal(
        [] {
            TenantSpec t = videoTenant("vid", 1, 0);
            validateTenantSpec(t);
        },
        "fps");

    expectFatal(
        [] {
            FleetSpec spec;
            spec.tenants = {memcachedTenant("mc", 1, 1000),
                            memcachedTenant("mc", 1, 1000)};
            validateFleetSpec(spec);
        },
        "declared twice");

    // vCPU overcommit names the numbers and the escape hatch.
    expectFatal(
        [] {
            FleetSpec spec;
            spec.topology = TopologySpec{1, 2, 2};
            spec.tenants = {memcachedTenant("mc", 3, 1000)};
            validateFleetSpec(spec);
        },
        "only 2 slots");

    // SVt pairing needs sibling pairs.
    expectFatal(
        [] {
            FleetSpec spec;
            spec.topology = TopologySpec{1, 2, 1};
            spec.policy = PlacementPolicy::SvtPair;
            spec.tenants = {memcachedTenant("mc", 1, 1000)};
            validateFleetSpec(spec);
        },
        "even number of SMT ways");

    expectFatal(
        [] {
            FleetSpec spec;
            spec.topology = TopologySpec{1, 2, 2};
            spec.policy = PlacementPolicy::SvtPair;
            spec.pairedMode = VirtMode::Nested;
            spec.tenants = {memcachedTenant("mc", 1, 1000)};
            validateFleetSpec(spec);
        },
        "not an SVt mode");
}

TEST(ClusterSpecValidation, RejectsMalformedSpecs)
{
    expectFatal([] { ClusterSpec().validate(); }, "no machines");

    expectFatal(
        [] {
            ClusterSpec cs;
            cs.machine("a", VirtMode::Native)
                .machine("a", VirtMode::Native);
            cs.validate();
        },
        "declared twice");

    expectFatal(
        [] {
            ClusterSpec cs;
            cs.machine("a", VirtMode::Native).link("a", "ghost");
            cs.validate();
        },
        "not a declared machine");

    expectFatal(
        [] {
            ClusterSpec cs;
            cs.machine("a", VirtMode::Native).link("a", "a");
            cs.validate();
        },
        "itself");

    expectFatal(
        [] {
            ClusterSpec cs;
            cs.machine("a", VirtMode::Native)
                .machine("b", VirtMode::Native)
                .link("a", "b")
                .link("b", "a");
            cs.validate();
        },
        "linked twice");

    expectFatal(
        [] {
            ClusterSpec cs;
            cs.machine("a", VirtMode::Native)
                .machine("b", VirtMode::Native)
                .link("a", "b", 0, 10e9);
            cs.validate();
        },
        "non-positive");
}

TEST(ClusterSpecBuild, ResolvesNamesAndPorts)
{
    ClusterSpec cs;
    cs.machine("server", VirtMode::Nested)
        .machine("client", VirtMode::Native)
        .link("server", "client", usec(2), 10e9);
    ClusterBuild build = cs.realize(1);
    EXPECT_EQ(build.id("server"), 0);
    EXPECT_EQ(build.id("client"), 1);
    EXPECT_EQ(&build.port("server", "client"),
              &build.link("server", "client").port(0));
    EXPECT_EQ(&build.port("client", "server"),
              &build.link("server", "client").port(1));
    expectFatal([&] { build.id("ghost"); }, "unknown machine");
    expectFatal([&] { build.port("server", "server"); }, "no link");
}

// ---- Placement ---------------------------------------------------

TEST(FleetPlacement, DeterministicPerSeed)
{
    const FleetSpec spec = smallSpec(PlacementPolicy::SiblingShare);
    const FleetPlacement a = placeFleet(spec, 17);
    const FleetPlacement b = placeFleet(spec, 17);
    ASSERT_EQ(a.slots.size(), b.slots.size());
    for (std::size_t i = 0; i < a.slots.size(); ++i) {
        EXPECT_EQ(a.slots[i].tenant, b.slots[i].tenant);
        EXPECT_EQ(a.slots[i].vcpu, b.slots[i].vcpu);
        EXPECT_EQ(a.slots[i].core, b.slots[i].core);
        EXPECT_EQ(a.slots[i].thread, b.slots[i].thread);
        EXPECT_EQ(a.slots[i].sharedSibling, b.slots[i].sharedSibling);
    }
}

TEST(FleetPlacement, PolicyShapes)
{
    // svt-pair / isolate: one slot per core, thread 0, no sharing.
    for (PlacementPolicy policy :
         {PlacementPolicy::SvtPair, PlacementPolicy::Isolate}) {
        const FleetPlacement p = placeFleet(smallSpec(policy), 3);
        ASSERT_EQ(p.slots.size(), 2u);
        EXPECT_NE(p.slots[0].core, p.slots[1].core);
        for (const PlacementSlot &s : p.slots) {
            EXPECT_EQ(s.thread, 0);
            EXPECT_FALSE(s.sharedSibling);
            EXPECT_EQ(s.siblingTenant, -1);
        }
    }
    // sibling-share at full demand: every slot shares its core with
    // another tenant's vCPU (round-robin interleaves tenants).
    const FleetPlacement p =
        placeFleet(smallSpec(PlacementPolicy::SiblingShare), 3);
    ASSERT_EQ(p.slots.size(), 4u);
    for (const PlacementSlot &s : p.slots) {
        EXPECT_TRUE(s.sharedSibling);
        ASSERT_GE(s.siblingTenant, 0);
        EXPECT_NE(s.siblingTenant, s.tenant);
    }
}

// ---- Byte-identity across worker counts --------------------------

TEST(FleetScheduler, OutcomeIdenticalAcrossClusterJobs)
{
    const FleetSpec spec = smallSpec(PlacementPolicy::SiblingShare);
    FleetScheduler seq(spec, 11);
    FleetScheduler par(spec, 11);
    const std::string a = outcomeFingerprint(seq.run(1));
    const std::string b = outcomeFingerprint(par.run(4));
    EXPECT_EQ(a, b);
}

TEST(FleetScheduler, SvtPairOutcomeIdenticalAcrossClusterJobs)
{
    const FleetSpec spec = smallSpec(PlacementPolicy::SvtPair);
    FleetScheduler seq(spec, 5);
    FleetScheduler par(spec, 5);
    EXPECT_EQ(outcomeFingerprint(seq.run(1)),
              outcomeFingerprint(par.run(3)));
}

// ---- Per-pair lookahead engine -----------------------------------

/**
 * Heterogeneous chain a -(1us)- b -(1ms)- c plus an unlinked machine
 * d. Per-pair horizons must keep a<->b windows at the 1us scale while
 * letting c (behind the slow wire) and d (unreachable) take large
 * windows — and the result must stay byte-identical vs the
 * sequential oracle.
 */
TEST(Cluster, PerPairLookaheadHeterogeneousChain)
{
    auto fingerprint = [](int jobs) {
        Cluster cluster(7);
        const int a = cluster.addMachine("a", VirtMode::Native);
        const int b = cluster.addMachine("b", VirtMode::Native);
        const int c = cluster.addMachine("c", VirtMode::Native);
        const int d = cluster.addMachine("d", VirtMode::Native);
        CrossLink &ab = cluster.connect(a, b, usec(1), 10e9);
        CrossLink &bc = cluster.connect(b, c, msec(1), 10e9);
        EXPECT_EQ(cluster.lookahead(), usec(1));

        // b forwards every packet from a onward to c; c counts.
        std::uint64_t forwarded = 0, arrived = 0;
        Ticks lastArrival = 0;
        ab.port(1).setReceiveHandler([&](NetPacket pkt) {
            ++forwarded;
            bc.port(0).send(pkt);
        });
        Machine &mc = cluster.machine(c);
        bc.port(1).setReceiveHandler([&](NetPacket) {
            ++arrived;
            lastArrival = mc.now();
        });

        cluster.setDriver(a, [&ab](NestedSystem &sys) {
            Machine &m = sys.machine();
            for (std::uint64_t i = 0; i < 50; ++i) {
                ab.port(0).send(NetPacket{i + 1, 200, 0});
                m.idleUntil(m.now() + usec(3));
            }
            m.idleUntil(msec(5));
        });
        cluster.setDriver(d, [](NestedSystem &sys) {
            sys.machine().idleUntil(msec(2));
        });

        ClusterStats stats = cluster.run(jobs);
        std::ostringstream os;
        os << forwarded << '/' << arrived << '/' << lastArrival
           << " merged=" << stats.merged;
        for (int i = 0; i < cluster.size(); ++i)
            os << " t" << i << '=' << cluster.machine(i).now();
        return os.str();
    };
    const std::string seq = fingerprint(1);
    EXPECT_EQ(seq, fingerprint(4));
    EXPECT_NE(seq.find("50/50/"), std::string::npos) << seq;
}

// ---- The Table 4 claim at fleet scale ----------------------------

TEST(FleetScheduler, SvtPairBeatsIsolateTail)
{
    FleetSpec pair = smallSpec(PlacementPolicy::SvtPair);
    FleetSpec iso = smallSpec(PlacementPolicy::Isolate);
    const FleetOutcome a = FleetScheduler(pair, 9).run(2);
    const FleetOutcome b = FleetScheduler(iso, 9).run(2);
    ASSERT_GT(a.tenants[0].completed, 0u);
    ASSERT_GT(b.tenants[0].completed, 0u);
    // Same placement demand, same offered load; the svt-pair slots
    // run SVt stacks whose exits are cheaper, so the memcached tail
    // and the exit-time share both improve.
    EXPECT_LE(a.tenants[0].p99Usec, b.tenants[0].p99Usec);
    EXPECT_LT(a.tenants[0].interference, b.tenants[0].interference);
}

} // namespace
