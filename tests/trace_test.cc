/**
 * @file
 * Trace subsystem tests: TraceSink mechanics (spans, bounded buffer,
 * exporters) and the time-conservation invariant over full nested
 * trap round trips, including the SW SVt ring exchange.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/log.h"
#include "sim/trace.h"
#include "system/nested_system.h"

namespace svtsim {
namespace {

// ------------------------------------------------------- sink mechanics

TEST(TraceSink, DisabledSinkRecordsNothing)
{
    EventQueue eq;
    TraceSink sink(eq);
    EXPECT_FALSE(sink.enabled());
    sink.instant(TraceCategory::Sim, "x");
    sink.counter("c", 1);
    auto h = sink.beginSpan(TraceCategory::Sim, "span");
    eq.advanceBy(nsec(10));
    sink.endSpan(h);
    sink.attribute(nsec(10));
    EXPECT_TRUE(sink.events().empty());
    EXPECT_EQ(sink.checkConservation().attributed, 0);
    EXPECT_EQ(sink.checkConservation().unattributed, 0);
}

TEST(TraceSink, SpansRecordStartAndDuration)
{
    EventQueue eq;
    TraceSink sink(eq);
    sink.setEnabled(true);
    eq.advanceBy(nsec(5));
    auto h = sink.beginSpan(TraceCategory::Vmx, "vmx.window");
    eq.advanceBy(nsec(20));
    sink.endSpan(h);
    ASSERT_EQ(sink.events().size(), 1u);
    const TraceEvent &ev = sink.events()[0];
    EXPECT_EQ(ev.phase, TraceEvent::Phase::Complete);
    EXPECT_EQ(ev.name, "vmx.window");
    EXPECT_EQ(ev.start, nsec(5));
    EXPECT_EQ(ev.duration, nsec(20));
}

TEST(TraceSink, OutOfOrderSpanClosePanics)
{
    EventQueue eq;
    TraceSink sink(eq);
    sink.setEnabled(true);
    auto outer = sink.beginSpan(TraceCategory::Sim, "outer");
    sink.beginSpan(TraceCategory::Sim, "inner");
    EXPECT_THROW(sink.endSpan(outer), PanicError);
}

TEST(TraceSink, BoundedBufferDropsAndCounts)
{
    EventQueue eq;
    TraceSink sink(eq, 4);
    sink.setEnabled(true);
    for (int i = 0; i < 10; ++i)
        sink.instant(TraceCategory::Sim, "e");
    EXPECT_EQ(sink.events().size(), 4u);
    EXPECT_EQ(sink.droppedEvents(), 6u);
    // Attribution stays exact regardless of event drops.
    auto h = sink.beginSpan(TraceCategory::Stage, "stage.x");
    sink.attribute(nsec(7));
    sink.endSpan(h);
    EXPECT_EQ(sink.stageSelfTotals().at("stage.x"), nsec(7));
}

TEST(TraceSink, ExclusiveAttributionChargesInnermostStage)
{
    EventQueue eq;
    TraceSink sink(eq);
    sink.setEnabled(true);
    auto outer = sink.beginSpan(TraceCategory::Stage, "stage.outer");
    sink.attribute(nsec(10));
    auto inner = sink.beginSpan(TraceCategory::Stage, "stage.inner");
    sink.attribute(nsec(3));
    // Non-stage spans are transparent to attribution.
    auto dev = sink.beginSpan(TraceCategory::Io, "virtqueue.op");
    sink.attribute(nsec(2));
    sink.endSpan(dev);
    sink.endSpan(inner);
    sink.endSpan(outer);
    sink.attribute(nsec(4));
    EXPECT_EQ(sink.stageSelfTotals().at("stage.outer"), nsec(10));
    EXPECT_EQ(sink.stageSelfTotals().at("stage.inner"), nsec(5));
    auto c = sink.checkConservation();
    EXPECT_EQ(c.attributed, nsec(15));
    EXPECT_EQ(c.unattributed, nsec(4));
}

TEST(TraceSink, ConservationSeparatesIdleAndUnattributed)
{
    EventQueue eq;
    Machine machine(MachineTopology{1, 1, 2});
    TraceSink sink(machine.events());
    machine.setTraceSink(&sink);
    sink.setEnabled(true);

    machine.consume(nsec(10)); // no open stage -> unattributed
    {
        TimeScope s(machine, "stage.work");
        machine.consume(nsec(30));
    }
    machine.idleUntil(machine.now() + nsec(60));

    auto c = sink.checkConservation();
    EXPECT_EQ(c.elapsed, nsec(100));
    EXPECT_EQ(c.attributed, nsec(30));
    EXPECT_EQ(c.idle, nsec(60));
    EXPECT_EQ(c.unattributed, nsec(10));
    EXPECT_TRUE(c.conserved());
    EXPECT_FALSE(c.fullyAttributed());
    machine.setTraceSink(nullptr);
}

// ------------------------------------------------------------ exporters

TEST(TraceSink, ChromeTraceExportShape)
{
    EventQueue eq;
    TraceSink sink(eq);
    sink.setEnabled(true);
    auto h = sink.beginSpan(TraceCategory::Stage, "stage.\"x\"\\y");
    eq.advanceBy(usec(1));
    sink.endSpan(h);
    sink.instant(TraceCategory::Irq, "irq.raise", 33);
    sink.counter("ring.depth", 2);

    std::ostringstream os;
    sink.writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Names with quotes/backslashes are escaped.
    EXPECT_NE(json.find("stage.\\\"x\\\"\\\\y"), std::string::npos);
    EXPECT_EQ(json.find("stage.\"x\""), std::string::npos);
}

TEST(TraceSink, CsvSummarySumsToElapsed)
{
    EventQueue eq;
    Machine machine(MachineTopology{1, 1, 2});
    TraceSink sink(machine.events());
    machine.setTraceSink(&sink);
    sink.setEnabled(true);
    {
        TimeScope s(machine, "stage.a");
        machine.consume(nsec(40));
    }
    machine.consume(nsec(15));
    machine.idleUntil(machine.now() + nsec(45));

    std::ostringstream os;
    sink.writeCsvSummary(os);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "stage,ticks,usec,percent");
    Ticks sum = 0, total = -1;
    while (std::getline(is, line)) {
        auto c1 = line.find(',');
        auto c2 = line.find(',', c1 + 1);
        std::string name = line.substr(0, c1);
        Ticks ticks = std::stoll(line.substr(c1 + 1, c2 - c1 - 1));
        if (name == "total")
            total = ticks;
        else
            sum += ticks;
    }
    EXPECT_EQ(total, nsec(100));
    EXPECT_EQ(sum, total);
    machine.setTraceSink(nullptr);
}

// ------------------------------- conservation over real nested rounds

/** Attach a sink to a built system, run @p rounds cpuid round trips
 *  with tracing live, and return the conservation snapshot. */
TraceSink::Conservation
cpuidConservation(NestedSystem &sys, TraceSink &sink, int rounds)
{
    sys.machine().setTraceSink(&sink);
    sys.api().cpuid(1); // warm up (EPT fills) outside the window
    sink.setEnabled(true);
    for (int i = 0; i < rounds; ++i)
        sys.api().cpuid(1);
    auto c = sink.checkConservation();
    sys.machine().setTraceSink(nullptr);
    return c;
}

TEST(TraceConservation, NestedCpuidRoundTripFullyAttributed)
{
    NestedSystem sys(VirtMode::Nested);
    TraceSink sink(sys.machine().events());
    auto c = cpuidConservation(sys, sink, 20);
    EXPECT_GT(c.elapsed, 0);
    EXPECT_TRUE(c.conserved())
        << "attributed=" << c.attributed << " idle=" << c.idle
        << " unattributed=" << c.unattributed
        << " elapsed=" << c.elapsed;
    // Every consumed tick of a nested trap lands in a Table 1 stage.
    EXPECT_TRUE(c.fullyAttributed())
        << "unattributed=" << c.unattributed;
}

TEST(TraceConservation, SwSvtRingExchangeFullyAttributed)
{
    // The headline regression: the SW SVt ring pops used to run
    // outside any stage scope, so their (previously under-charged)
    // payload-read time was invisible to the stage accounting. With
    // the pops inside stage.channel, a full ring exchange conserves
    // and fully attributes.
    NestedSystem sys(VirtMode::SwSvt);
    TraceSink sink(sys.machine().events());
    auto c = cpuidConservation(sys, sink, 20);
    EXPECT_TRUE(c.conserved());
    EXPECT_TRUE(c.fullyAttributed())
        << "unattributed=" << c.unattributed;
    // The exchange itself is visible: channel stage self-time covers
    // two wakes plus two full payload reads per round.
    const CostModel &costs = sys.machine().costs();
    Ticks per_round =
        2 * (costs.monitorSetup + costs.mwaitWakeSmt +
             costs.ringPayloadValue * ringPayloadValues);
    EXPECT_EQ(sink.stageSelfTotals().at("stage.channel"),
              20 * per_round);
}

TEST(TraceConservation, HwSvtCpuidRoundTripConserves)
{
    NestedSystem sys(VirtMode::HwSvt);
    TraceSink sink(sys.machine().events());
    auto c = cpuidConservation(sys, sink, 10);
    EXPECT_TRUE(c.conserved());
    EXPECT_TRUE(c.fullyAttributed())
        << "unattributed=" << c.unattributed;
}

TEST(TraceConservation, InstrumentationEmitsExpectedEvents)
{
    NestedSystem sys(VirtMode::SwSvt);
    TraceSink sink(sys.machine().events());
    sys.machine().setTraceSink(&sink);
    sys.api().cpuid(1);
    sink.setEnabled(true);
    sys.api().cpuid(1);
    sys.machine().setTraceSink(nullptr);

    bool saw_channel_stage = false, saw_post = false, saw_pop = false;
    for (const auto &ev : sink.events()) {
        if (ev.name == "stage.channel" &&
            ev.phase == TraceEvent::Phase::Complete) {
            saw_channel_stage = true;
        }
        if (ev.name == "ring.post.vm_trap")
            saw_post = true;
        if (ev.name == "ring.pop")
            saw_pop = true;
    }
    EXPECT_TRUE(saw_channel_stage);
    EXPECT_TRUE(saw_post);
    EXPECT_TRUE(saw_pop);
}

} // namespace
} // namespace svtsim
