/**
 * @file
 * Property and parameterized tests across the whole stack:
 * determinism, cross-mode transparency under mixed I/O load,
 * monotonicity sweeps, and channel-configuration sweeps.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/net_fabric.h"
#include "io/virtio_net.h"
#include "sim/log.h"
#include "system/nested_system.h"
#include "workloads/guest_os.h"
#include "workloads/microbench.h"

namespace svtsim {
namespace {

MachineTopology
topoFor(VirtMode mode)
{
    MachineTopology t{1, 2, mode == VirtMode::HwSvt ? 3 : 2};
    return t;
}


/** gtest param names may only contain [A-Za-z0-9_]. */
std::string
sanitize(std::string s)
{
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

// ------------------------------------------------------------ determinism

struct RunRecord
{
    Ticks elapsed = 0;
    std::vector<std::uint64_t> outputs;
    std::map<std::string, std::uint64_t> counters;

    bool
    operator==(const RunRecord &o) const
    {
        return elapsed == o.elapsed && outputs == o.outputs &&
               counters == o.counters;
    }
};

RunRecord
mixedWorkloadRun(VirtMode mode, std::uint64_t seed)
{
    Machine machine(topoFor(mode), CostModel{}, 1);
    StackConfig cfg;
    cfg.mode = mode;
    VirtStack stack(machine, cfg);

    NetFabric fabric(machine, machine.costs().wireLatency,
                     machine.costs().linkBitsPerSec);
    VirtioNetStack net(stack, fabric);
    fabric.setPeerHandler([&](NetPacket pkt) {
        machine.events().scheduleIn(usec(3), [&fabric, pkt] {
            fabric.sendToLocal(pkt);
        });
    });
    RamDisk disk(machine, "d");
    VirtioBlkStack blk(stack, disk);

    stack.l1Hv().registerHypercall(
        5, [](std::uint64_t a, std::uint64_t b) { return a ^ b; });

    std::uint64_t net_rx = 0, io_done = 0;
    net.setRxHandler([&](NetPacket) { ++net_rx; });
    blk.setCompletionHandler([&](std::uint64_t) { ++io_done; });

    GuestApi &api = stack.api();
    Rng rng(seed);
    RunRecord rec;
    Ticks t0 = machine.now();
    std::uint64_t blk_id = 1;
    for (int op = 0; op < 60; ++op) {
        switch (rng.below(7)) {
          case 0:
            rec.outputs.push_back(api.cpuid(rng.below(3)).eax);
            break;
          case 1:
            api.wrmsr(msr::ia32Star, rng.next());
            break;
          case 2:
            rec.outputs.push_back(api.rdmsr(msr::ia32Star));
            break;
          case 3: {
            std::uint64_t want = net_rx + 1;
            net.send(64 + static_cast<std::uint32_t>(rng.below(900)),
                     rng.next());
            GuestOs::idleWait(api, [&] { return net_rx >= want; });
            rec.outputs.push_back(net_rx);
            break;
          }
          case 4: {
            std::uint64_t want = io_done + 1;
            blk.submit(blk_id++, rng.below(1 << 16),
                       512 << rng.below(4), rng.chance(0.5));
            GuestOs::idleWait(api, [&] { return io_done >= want; });
            rec.outputs.push_back(io_done);
            break;
          }
          case 5:
            api.compute(usec(rng.below(40)));
            break;
          case 6:
            rec.outputs.push_back(
                api.vmcall(5, rng.below(100), rng.below(100)));
            break;
        }
    }
    rec.elapsed = machine.now() - t0;
    rec.counters = machine.counters();
    return rec;
}

TEST(Property, RunsAreDeterministic)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        RunRecord a = mixedWorkloadRun(mode, 77);
        RunRecord b = mixedWorkloadRun(mode, 77);
        EXPECT_EQ(a, b) << virtModeName(mode);
    }
}

TEST(Property, MixedIoTransparentAcrossModes)
{
    for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        RunRecord base = mixedWorkloadRun(VirtMode::Nested, seed);
        RunRecord sw = mixedWorkloadRun(VirtMode::SwSvt, seed);
        RunRecord hw = mixedWorkloadRun(VirtMode::HwSvt, seed);
        EXPECT_EQ(base.outputs, sw.outputs) << "seed " << seed;
        EXPECT_EQ(base.outputs, hw.outputs) << "seed " << seed;
        // SVt is never slower on the same op sequence.
        EXPECT_LE(sw.elapsed, base.elapsed) << "seed " << seed;
        EXPECT_LE(hw.elapsed, sw.elapsed) << "seed " << seed;
    }
}

TEST(Property, DirectReflectPreservesResults)
{
    auto run = [](bool bypass, std::uint64_t seed) {
        Machine machine(MachineTopology{1, 1, 3});
        StackConfig cfg;
        cfg.mode = VirtMode::HwSvt;
        cfg.svtDirectReflect = bypass;
        VirtStack stack(machine, cfg);
        stack.l1Hv().registerHypercall(
            5,
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        Rng rng(seed);
        std::vector<std::uint64_t> out;
        for (int i = 0; i < 50; ++i) {
            switch (rng.below(3)) {
              case 0:
                out.push_back(stack.api().cpuid(rng.below(4)).eax);
                break;
              case 1:
                out.push_back(stack.api().rdmsr(msr::ia32Lstar));
                break;
              case 2:
                out.push_back(stack.api().vmcall(5, rng.below(9),
                                                 rng.below(9)));
                break;
            }
        }
        return out;
    };
    for (std::uint64_t seed : {1ULL, 2ULL}) {
        EXPECT_EQ(run(false, seed), run(true, seed))
            << "seed " << seed;
    }
}

// ----------------------------------------------- parameterized mode sweep

class ModeShadowing
    : public ::testing::TestWithParam<std::tuple<VirtMode, bool>>
{
};

TEST_P(ModeShadowing, CpuidWorksAndCostsAreOrdered)
{
    auto [mode, shadowing] = GetParam();
    Machine machine(topoFor(mode));
    StackConfig cfg;
    cfg.mode = mode;
    cfg.hwVmcsShadowing = shadowing;
    VirtStack stack(machine, cfg);
    auto r = stack.api().cpuid(1);
    EXPECT_TRUE(r.ecx & cpuid_feature::hypervisorPresent);
    EXPECT_FALSE(r.ecx & cpuid_feature::vmx);

    // Shadowing off is never faster than shadowing on.
    Machine machine_on(topoFor(mode));
    StackConfig cfg_on = cfg;
    cfg_on.hwVmcsShadowing = true;
    VirtStack stack_on(machine_on, cfg_on);
    stack.api().cpuid(1);
    stack_on.api().cpuid(1);
    Ticks t0 = machine.now();
    stack.api().cpuid(1);
    Ticks t_param = machine.now() - t0;
    t0 = machine_on.now();
    stack_on.api().cpuid(1);
    Ticks t_on = machine_on.now() - t0;
    EXPECT_GE(t_param, t_on);
}

INSTANTIATE_TEST_SUITE_P(
    AllNestedModes, ModeShadowing,
    ::testing::Combine(::testing::Values(VirtMode::Nested,
                                         VirtMode::SwSvt,
                                         VirtMode::HwSvt),
                       ::testing::Bool()),
    [](const auto &info) {
        return sanitize(
            std::string(virtModeName(std::get<0>(info.param))) +
            (std::get<1>(info.param) ? "_shadow" : "_noshadow"));
    });

// -------------------------------------------------- channel configuration

class ChannelSweep
    : public ::testing::TestWithParam<
          std::tuple<WaitMechanism, Placement>>
{
};

TEST_P(ChannelSweep, SwSvtRunsAndStaysTransparent)
{
    auto [mechanism, placement] = GetParam();
    Machine machine(topoFor(VirtMode::SwSvt));
    StackConfig cfg;
    cfg.mode = VirtMode::SwSvt;
    cfg.channel = ChannelModel{mechanism, placement};
    VirtStack stack(machine, cfg);
    auto got = stack.api().cpuid(1);

    Machine mb(topoFor(VirtMode::Nested));
    StackConfig cb;
    cb.mode = VirtMode::Nested;
    VirtStack base(mb, cb);
    EXPECT_EQ(got, base.api().cpuid(1));
}

INSTANTIATE_TEST_SUITE_P(
    AllChannels, ChannelSweep,
    ::testing::Combine(::testing::Values(WaitMechanism::Poll,
                                         WaitMechanism::Mwait,
                                         WaitMechanism::Mutex),
                       ::testing::Values(Placement::SmtSibling,
                                         Placement::SameNode,
                                         Placement::CrossNode)),
    [](const auto &info) {
        return sanitize(
            std::string(waitMechanismName(std::get<0>(info.param))) +
            "_" +
            std::string(placementName(std::get<1>(info.param))));
    });

// ------------------------------------------------- workload-size sweep

class WorkloadSize : public ::testing::TestWithParam<int>
{
};

TEST_P(WorkloadSize, MicrobenchScalesLinearly)
{
    int reg_ops = GetParam();
    NestedSystem sys(VirtMode::Nested);
    auto r = CpuidMicrobench::run(sys.machine(), sys.api(), reg_ops);
    double expected =
        10.40 + toUsec(sys.machine().costs().regOp) * reg_ops;
    EXPECT_NEAR(r.meanUsec, expected, expected * 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkloadSize,
                         ::testing::Values(0, 100, 1000, 10000));

// -------------------------------------------------------- halting stress

TEST(Property, RepeatedTimerSleepsStayAccurate)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        Machine machine(topoFor(mode));
        StackConfig cfg;
        cfg.mode = mode;
        VirtStack stack(machine, cfg);
        GuestApi &api = stack.api();
        api.setIrqHandler(api.timerVector(), [] {});
        api.cpuid(1);
        for (int i = 0; i < 30; ++i) {
            Ticks deadline = machine.now() + usec(200);
            api.wrmsr(msr::ia32TscDeadline,
                      static_cast<std::uint64_t>(deadline));
            api.halt();
            EXPECT_GE(machine.now(), deadline);
            EXPECT_LT(machine.now(), deadline + usec(150))
                << virtModeName(mode) << " iteration " << i;
        }
    }
}

} // namespace
} // namespace svtsim
