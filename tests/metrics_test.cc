/**
 * @file
 * Simulated-PMU tests: registry mechanics (interning, kinds, reset),
 * histogram math, the exit-reason instrumentation contract, the
 * histogram-vs-trace time-conservation invariant, and byte-identity
 * of the --metrics export across sweep worker counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/log.h"
#include "sim/trace.h"
#include "stats/metrics.h"
#include "system/bench_harness.h"
#include "system/nested_system.h"
#include "virt/exit_reason.h"

namespace svtsim {
namespace {

// ---------------------------------------------------- registry basics

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip)
{
    MetricsRegistry reg;
    Counter c = reg.counter(MetricScope::L0, "test", "c");
    Gauge g = reg.gauge(MetricScope::Svt, "test", "g");
    LatencyHistogram h = reg.histogram(MetricScope::L2, "test", "h");

    EXPECT_TRUE(c.valid());
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);

    g.set(3);
    g.set(1);
    EXPECT_EQ(g.value(), 1);
    EXPECT_EQ(g.maxValue(), 3);

    h.record(10);
    h.record(20);
    EXPECT_EQ(h.data().count, 2u);
    EXPECT_EQ(h.data().sum, 30);
    EXPECT_EQ(h.data().min, 10);
    EXPECT_EQ(h.data().max, 20);

    EXPECT_TRUE(reg.has("c"));
    EXPECT_FALSE(reg.has("nope"));
    EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, RegistrationIsIdempotentOnName)
{
    // Two components opening the same name share one slot (aggregate
    // metrics), exactly like the old shared string keys.
    MetricsRegistry reg;
    Counter a = reg.counter(MetricScope::L0, "one", "shared");
    Counter b = reg.counter(MetricScope::L1, "two", "shared");
    a.inc();
    b.inc(2);
    EXPECT_EQ(a.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);

    // The first registration's scope/component win.
    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 1u);
    EXPECT_EQ(snap.samples[0].scope, MetricScope::L0);
    EXPECT_EQ(snap.samples[0].component, "one");
}

TEST(MetricsRegistry, KindMismatchPanics)
{
    MetricsRegistry reg;
    reg.counter(MetricScope::Machine, "test", "m");
    EXPECT_THROW(reg.gauge(MetricScope::Machine, "test", "m"),
                 PanicError);
    EXPECT_THROW(reg.histogram(MetricScope::Machine, "test", "m"),
                 PanicError);
}

TEST(MetricsRegistry, InertHandlesAreNoOps)
{
    Counter c;
    Gauge g;
    LatencyHistogram h;
    EXPECT_FALSE(c.valid());
    EXPECT_FALSE(g.valid());
    EXPECT_FALSE(h.valid());
    c.inc();
    g.set(7);
    h.record(7);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.maxValue(), 0);
    EXPECT_EQ(h.data().count, 0u);
}

TEST(MetricsRegistry, ResetKeepsHandlesAlive)
{
    MetricsRegistry reg;
    Counter c = reg.counter(MetricScope::Machine, "test", "c");
    Gauge g = reg.gauge(MetricScope::Machine, "test", "g");
    LatencyHistogram h = reg.histogram(MetricScope::Machine, "test", "h");
    c.inc(9);
    g.set(9);
    h.record(9);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.maxValue(), 0);
    EXPECT_EQ(h.data().count, 0u);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsRegistry, NameCompatSurface)
{
    MetricsRegistry reg;
    reg.counter(MetricScope::Machine, "test", "known");
    reg.gauge(MetricScope::Machine, "test", "level");
    reg.addByName("known", 3);
    EXPECT_EQ(reg.counterValue("known"), 3u);
    EXPECT_THROW(reg.addByName("unknown", 1), FatalError);
    EXPECT_THROW(reg.addByName("level", 1), FatalError);
    EXPECT_THROW(reg.counterValue("unknown"), FatalError);
    EXPECT_THROW(reg.counterValue("level"), FatalError);

    auto values = reg.counterValues();
    ASSERT_EQ(values.size(), 1u); // counters only, zeros included
    EXPECT_EQ(values.at("known"), 3u);
}

// ------------------------------------------------------ histogram math

TEST(HistogramData, QuantileEdgeCases)
{
    HistogramData h;
    EXPECT_EQ(h.quantile(0.0), 0.0); // empty
    EXPECT_EQ(h.quantile(1.0), 0.0);

    h.record(42);
    EXPECT_EQ(h.quantile(0.0), 42.0); // single sample -> min
    EXPECT_EQ(h.quantile(0.5), 42.0);
    EXPECT_EQ(h.quantile(1.0), 42.0);

    EXPECT_THROW(h.quantile(-0.1), PanicError);
    EXPECT_THROW(h.quantile(1.1), PanicError);
    EXPECT_THROW(h.record(-1), PanicError);
}

TEST(HistogramData, QuantileClampedToObservedRange)
{
    HistogramData h;
    h.record(0);
    for (int i = 0; i < 99; ++i)
        h.record(1000);
    EXPECT_EQ(h.count, 100u);
    EXPECT_EQ(h.min, 0);
    EXPECT_EQ(h.max, 1000);
    EXPECT_EQ(h.quantile(0.0), 0.0);
    // The p99 bin-estimate may overshoot the bin's upper bound but is
    // clamped to the exact observed max.
    EXPECT_EQ(h.quantile(0.99), 1000.0);
    EXPECT_NEAR(h.mean(), 990.0, 1e-9);
}

// ------------------------------------- exit-reason instrumentation

TEST(MetricsPmu, EveryExitReasonNamedAndInstrumented)
{
    // One nested cpuid round trip is enough to force full registration
    // (it happens at construction time, not lazily on first event).
    NestedSystem sys(VirtMode::Nested);
    sys.api().cpuid(1);

    const MetricsRegistry &reg = sys.machine().metrics();
    for (int r = 0; r < static_cast<int>(ExitReason::NumReasons); ++r) {
        std::string name = exitReasonName(static_cast<ExitReason>(r));
        EXPECT_NE(name, "UNKNOWN") << "reason " << r;
        EXPECT_TRUE(reg.has("l2.exit." + name)) << name;
        EXPECT_TRUE(reg.has("l2.exit_latency." + name)) << name;
        EXPECT_TRUE(reg.has("l0.exit." + name)) << name;
        EXPECT_TRUE(reg.has("l0.exit_latency." + name)) << name;
        EXPECT_TRUE(reg.has("vmx.exit." + name)) << name;
    }
    // The round trip itself showed up where expected.
    EXPECT_GT(sys.machine().counter("l2.exit.CPUID"), 0u);
}

// -------------------------------------------- conservation invariant

/** Sum of the per-exit-reason latency histograms == total duration of
 *  the trace layer's exit.<reason> spans: the PMU and the trace layer
 *  must tell the same story about where nested-trap time went. */
void
expectHistogramTraceConservation(VirtMode mode)
{
    NestedSystem sys(mode);
    TraceSink sink(sys.machine().events());
    sys.machine().setTraceSink(&sink);
    sys.api().cpuid(1);            // warm up (EPT fills)
    sys.machine().resetCounters(); // drop warm-up histogram samples
    sink.setEnabled(true);
    for (int i = 0; i < 10; ++i)
        sys.api().cpuid(1);
    sys.machine().setTraceSink(nullptr);

    Ticks span_total = 0;
    for (const TraceEvent &ev : sink.events()) {
        if (ev.phase == TraceEvent::Phase::Complete &&
            ev.name.rfind("exit.", 0) == 0) {
            span_total += ev.duration;
        }
    }

    std::int64_t hist_total = 0;
    MetricsSnapshot snap = sys.machine().snapshotMetrics();
    for (const MetricSample &s : snap.samples) {
        if (s.kind == MetricKind::Histogram &&
            s.name.rfind("l2.exit_latency.", 0) == 0) {
            hist_total += s.hist.sum;
        }
    }

    EXPECT_GT(span_total, 0);
    EXPECT_EQ(hist_total, span_total);
}

TEST(MetricsPmu, NestedCpuidHistogramsConserveTraceTime)
{
    expectHistogramTraceConservation(VirtMode::Nested);
}

TEST(MetricsPmu, SwSvtCpuidHistogramsConserveTraceTime)
{
    expectHistogramTraceConservation(VirtMode::SwSvt);
}

TEST(MetricsPmu, HwSvtCpuidHistogramsConserveTraceTime)
{
    expectHistogramTraceConservation(VirtMode::HwSvt);
}

// --------------------------------------------- deterministic export

std::string
metricsDump(int jobs)
{
    BenchHarness bench("metrics_probe", "determinism probe");
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        bench.add(std::string("cpuid.") + virtModeName(mode), mode,
                  [](NestedSystem &sys, ScenarioResult &r) {
                      for (int i = 0; i < 5; ++i)
                          sys.api().cpuid(1);
                      r.record("ticks", static_cast<double>(
                                            sys.machine().now()));
                  });
    }
    SweepOptions sweep_options;
    sweep_options.jobs = jobs;
    SweepResults results = runSweep(bench.scenarios(), sweep_options);
    EXPECT_TRUE(results.allOk());
    std::ostringstream os;
    bench.writeMetricsJson(os, results, BenchOptions{});
    return os.str();
}

TEST(MetricsPmu, MetricsJsonIdenticalAcrossWorkerCounts)
{
    std::string serial = metricsDump(1);
    std::string parallel = metricsDump(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // Sanity on the shape: scenario snapshots carry PMU samples and
    // stage attribution.
    EXPECT_NE(serial.find("\"pmu\":"), std::string::npos);
    EXPECT_NE(serial.find("\"l2.exit.CPUID\""), std::string::npos);
    EXPECT_NE(serial.find("\"stages\":"), std::string::npos);
}

TEST(MetricsPmu, BreakdownReportsExitTables)
{
    NestedSystem sys(VirtMode::Nested);
    for (int i = 0; i < 3; ++i)
        sys.api().cpuid(1);
    std::ostringstream os;
    sys.machine().snapshotMetrics().writeBreakdown(os);
    std::string report = os.str();
    EXPECT_NE(report.find("CPUID"), std::string::npos);
    EXPECT_NE(report.find("Reason"), std::string::npos);
}

} // namespace
} // namespace svtsim
