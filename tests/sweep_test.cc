/**
 * @file
 * Regression tests for the deterministic parallel sweep engine, the
 * BenchHarness CLI surface and StackConfig validation: same-seed
 * reruns are identical, jobs=1 and jobs=8 produce byte-identical
 * JSON, and inconsistent knob combinations are rejected up front.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/worker_pool.h"
#include "system/bench_harness.h"
#include "system/sweep.h"
#include "workloads/microbench.h"

namespace svtsim {
namespace {

/** A measurement whose outcome depends on mode, simulated time and
 *  the machine's seeded RNG — enough surface to catch any
 *  nondeterminism in the engine. */
void
probeScenario(NestedSystem &sys, ScenarioResult &r)
{
    GuestApi &api = sys.api();
    for (int i = 0; i < 32; ++i)
        api.cpuid(1);
    r.record("now_usec", toUsec(sys.machine().now()));
    r.record("rng_draw",
             static_cast<double>(sys.machine().rng().next() % 100000));
}

std::vector<Scenario>
probeSweep()
{
    std::vector<Scenario> sweep;
    int offset = 0;
    for (VirtMode mode :
         {VirtMode::Native, VirtMode::Single, VirtMode::Nested,
          VirtMode::SwSvt, VirtMode::HwSvt}) {
        Scenario s;
        s.name = virtModeName(mode);
        s.mode = mode;
        s.seedOffset = offset++;
        s.run = probeScenario;
        sweep.push_back(std::move(s));
    }
    return sweep;
}

void
expectIdentical(const SweepResults &a, const SweepResults &b)
{
    ASSERT_EQ(a.all().size(), b.all().size());
    for (std::size_t i = 0; i < a.all().size(); ++i) {
        const ScenarioResult &ra = a.all()[i];
        const ScenarioResult &rb = b.all()[i];
        EXPECT_EQ(ra.name(), rb.name());
        EXPECT_EQ(ra.seed(), rb.seed());
        EXPECT_EQ(ra.finalTicks(), rb.finalTicks());
        ASSERT_EQ(ra.metrics().size(), rb.metrics().size());
        for (std::size_t k = 0; k < ra.metrics().size(); ++k) {
            EXPECT_EQ(ra.metrics()[k].first, rb.metrics()[k].first);
            EXPECT_EQ(ra.metrics()[k].second, rb.metrics()[k].second);
        }
    }
}

TEST(WorkerPool, RunsEveryTask)
{
    WorkerPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum, 5050);
}

TEST(WorkerPool, WaitIsReusable)
{
    WorkerPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count, 1);
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count, 11);
}

TEST(WorkerPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        WorkerPool pool(1);
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count, 20);
}

TEST(Sweep, SameSeedTwiceIsIdentical)
{
    SweepOptions opts;
    opts.baseSeed = 42;
    SweepResults first = runSweep(probeSweep(), opts);
    SweepResults second = runSweep(probeSweep(), opts);
    ASSERT_TRUE(first.allOk());
    expectIdentical(first, second);
}

TEST(Sweep, JobsOneAndJobsEightAreIdentical)
{
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions parallel;
    parallel.jobs = 8;
    SweepResults a = runSweep(probeSweep(), serial);
    SweepResults b = runSweep(probeSweep(), parallel);
    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    expectIdentical(a, b);
}

TEST(Sweep, SeedOffsetsAndBaseSeedPlumbThrough)
{
    SweepOptions opts;
    opts.baseSeed = 7;
    SweepResults res = runSweep(probeSweep(), opts);
    const auto &all = res.all();
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].seed(), 7 + i);
    // A different base seed changes the RNG-derived metric but not
    // the simulated-time fingerprint of a deterministic workload.
    SweepOptions other;
    other.baseSeed = 8;
    SweepResults res2 = runSweep(probeSweep(), other);
    EXPECT_EQ(res.at("nested-baseline").finalTicks(),
              res2.at("nested-baseline").finalTicks());
    EXPECT_NE(res.at("nested-baseline").metric("rng_draw"),
              res2.at("nested-baseline").metric("rng_draw"));
}

TEST(Sweep, ScenarioErrorIsCapturedNotPropagated)
{
    std::vector<Scenario> sweep = probeSweep();
    Scenario bad;
    bad.name = "exploder";
    bad.mode = VirtMode::Nested;
    bad.run = [](NestedSystem &, ScenarioResult &) {
        fatal("scenario exploded on purpose");
    };
    sweep.push_back(std::move(bad));
    SweepResults res = runSweep(sweep, SweepOptions{});
    EXPECT_FALSE(res.allOk());
    EXPECT_FALSE(res.at("exploder").ok());
    EXPECT_NE(res.at("exploder").error().find("exploded"),
              std::string::npos);
    EXPECT_TRUE(res.at("nested-baseline").ok());
}

TEST(Sweep, RejectsDuplicateNamesAndMissingCallbacks)
{
    std::vector<Scenario> dup = probeSweep();
    dup.push_back(dup.front());
    EXPECT_THROW(runSweep(dup, SweepOptions{}), FatalError);

    std::vector<Scenario> norun(1);
    norun[0].name = "no-callback";
    EXPECT_THROW(runSweep(norun, SweepOptions{}), FatalError);
}

TEST(ScenarioResult, MetricLookupIsTypoProof)
{
    SweepResults res = runSweep(probeSweep(), SweepOptions{});
    EXPECT_TRUE(res.at("native").has("now_usec"));
    EXPECT_FALSE(res.at("native").has("nope"));
    EXPECT_THROW(res.at("native").metric("nope"), FatalError);
    EXPECT_THROW(res.at("no-such-scenario"), FatalError);
}

BenchHarness
makeHarness()
{
    BenchHarness bench("sweep_test_bench", "harness under test");
    for (VirtMode mode : {VirtMode::Nested, VirtMode::SwSvt})
        bench.add(virtModeName(mode), mode, probeScenario);
    return bench;
}

int
runHarness(BenchHarness &bench, std::vector<std::string> args)
{
    std::vector<char *> argv;
    args.insert(args.begin(), "sweep_test_bench");
    for (std::string &a : args)
        argv.push_back(a.data());
    return bench.main(static_cast<int>(argv.size()), argv.data());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(BenchHarness, JsonIsByteIdenticalAcrossJobs)
{
    std::string p1 = testing::TempDir() + "sweep_jobs1.json";
    std::string p8 = testing::TempDir() + "sweep_jobs8.json";
    BenchHarness bench = makeHarness();
    ASSERT_EQ(runHarness(bench, {"--jobs=1", "--json=" + p1}), 0);
    ASSERT_EQ(runHarness(bench, {"--jobs=8", "--json=" + p8}), 0);
    std::string j1 = slurp(p1);
    ASSERT_FALSE(j1.empty());
    EXPECT_EQ(j1, slurp(p8));
    // The worker count must not leak into the machine-readable
    // output, or byte-identity across --jobs would be impossible.
    EXPECT_EQ(j1.find("jobs"), std::string::npos);
    EXPECT_NE(j1.find("\"final_ticks\""), std::string::npos);
}

TEST(BenchHarness, SeedFlagReachesJsonAndScenarios)
{
    std::string path = testing::TempDir() + "sweep_seed.json";
    BenchHarness bench = makeHarness();
    ASSERT_EQ(runHarness(bench, {"--seed=123", "--json=" + path}), 0);
    std::string json = slurp(path);
    EXPECT_NE(json.find("\"seed\": 123"), std::string::npos);
}

TEST(BenchHarness, RejectsUnknownFlags)
{
    BenchHarness bench = makeHarness();
    EXPECT_EQ(runHarness(bench, {"--bogus"}), 2);
    EXPECT_EQ(runHarness(bench, {"--jobs=notanumber"}), 2);
}

TEST(BenchHarness, FailingScenarioYieldsExitOne)
{
    BenchHarness bench("failing_bench", "one scenario fails");
    bench.add("boom", VirtMode::Nested,
              [](NestedSystem &, ScenarioResult &) {
                  fatal("boom");
              });
    EXPECT_EQ(runHarness(bench, {}), 1);
}

TEST(StackConfigValidation, RejectsEachInconsistentCombo)
{
    {
        // Direct reflection is the HW SVt fast path.
        StackConfig cfg;
        cfg.svtDirectReflect = true;
        EXPECT_THROW(NestedSystem(VirtMode::Nested, cfg), FatalError);
        EXPECT_THROW(NestedSystem(VirtMode::SwSvt, cfg), FatalError);
    }
    {
        // Channel tuning only exists on the SW SVt shared-memory path.
        StackConfig cfg;
        cfg.channel.mechanism = WaitMechanism::Poll;
        EXPECT_THROW(NestedSystem(VirtMode::Nested, cfg), FatalError);
        EXPECT_THROW(NestedSystem(VirtMode::HwSvt, cfg), FatalError);
    }
    {
        // The blocked-vCPU fix toggle models an SVt-only pathology.
        StackConfig cfg;
        cfg.svtBlockedFix = false;
        EXPECT_THROW(NestedSystem(VirtMode::Nested, cfg), FatalError);
    }
    {
        // VMCS shadowing only matters with an L1 hypervisor present.
        StackConfig cfg;
        cfg.hwVmcsShadowing = false;
        EXPECT_THROW(NestedSystem(VirtMode::Native, cfg), FatalError);
        EXPECT_THROW(NestedSystem(VirtMode::Single, cfg), FatalError);
    }
    {
        StackConfig cfg;
        cfg.eagerStateLoad = true;
        EXPECT_THROW(NestedSystem(VirtMode::Native, cfg), FatalError);
    }
    {
        StackConfig cfg;
        cfg.coreIndex = -1;
        EXPECT_THROW(NestedSystem(VirtMode::Nested, cfg), FatalError);
        cfg.coreIndex = 10000;
        EXPECT_THROW(NestedSystem(VirtMode::Nested, cfg), FatalError);
    }
}

TEST(StackConfigValidation, AcceptsConsistentCombos)
{
    {
        StackConfig cfg;
        cfg.svtDirectReflect = true;
        EXPECT_NO_THROW(NestedSystem(VirtMode::HwSvt, cfg));
    }
    {
        StackConfig cfg;
        cfg.channel.mechanism = WaitMechanism::Mutex;
        cfg.channel.placement = Placement::SameNode;
        cfg.svtBlockedFix = false;
        EXPECT_NO_THROW(NestedSystem(VirtMode::SwSvt, cfg));
    }
    {
        StackConfig cfg;
        cfg.hwVmcsShadowing = false;
        cfg.eagerStateLoad = true;
        EXPECT_NO_THROW(NestedSystem(VirtMode::Nested, cfg));
    }
}

} // namespace
} // namespace svtsim
