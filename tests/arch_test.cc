/**
 * @file
 * Unit tests for the arch module: physical register file, rename maps,
 * hardware contexts, SMT core, local APIC, machine and attribution.
 */

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "arch/hw_context.h"
#include "arch/lapic.h"
#include "arch/machine.h"
#include "arch/phys_reg_file.h"
#include "arch/regs.h"
#include "arch/smt_core.h"
#include "sim/log.h"

namespace svtsim {
namespace {

// -------------------------------------------------------- phys reg file

TEST(PhysRegFile, AllocateFreeRoundTrip)
{
    PhysRegFile prf(8);
    EXPECT_EQ(prf.freeCount(), 8u);
    PhysReg r = prf.alloc();
    EXPECT_EQ(prf.freeCount(), 7u);
    prf.write(r, 0xdead);
    EXPECT_EQ(prf.read(r), 0xdeadu);
    prf.free(r);
    EXPECT_EQ(prf.freeCount(), 8u);
}

TEST(PhysRegFile, ExhaustionPanics)
{
    PhysRegFile prf(2);
    prf.alloc();
    prf.alloc();
    EXPECT_THROW(prf.alloc(), PanicError);
}

TEST(PhysRegFile, UseAfterFreePanics)
{
    PhysRegFile prf(2);
    PhysReg r = prf.alloc();
    prf.free(r);
    EXPECT_THROW(prf.read(r), PanicError);
    EXPECT_THROW(prf.write(r, 1), PanicError);
    EXPECT_THROW(prf.free(r), PanicError);
}

TEST(PhysRegFile, OutOfRangePanics)
{
    PhysRegFile prf(2);
    EXPECT_THROW(prf.read(100), PanicError);
}

TEST(PhysRegFile, EmptyPoolRejected)
{
    EXPECT_THROW(PhysRegFile(0), FatalError);
}

TEST(PhysRegFile, FreshAllocationIsZeroed)
{
    PhysRegFile prf(2);
    PhysReg r = prf.alloc();
    prf.write(r, 77);
    prf.free(r);
    PhysReg r2 = prf.alloc();
    EXPECT_EQ(prf.read(r2), 0u);
}

// ------------------------------------------------------------ rename map

TEST(RenameMap, ReadsBackWrites)
{
    PhysRegFile prf(64);
    RenameMap map(prf);
    map.write(Gpr::Rax, 123);
    map.write(Gpr::R15, 456);
    EXPECT_EQ(map.read(Gpr::Rax), 123u);
    EXPECT_EQ(map.read(Gpr::R15), 456u);
}

TEST(RenameMap, WriteAllocatesFreshPhysicalRegister)
{
    PhysRegFile prf(64);
    RenameMap map(prf);
    PhysReg before = map.physOf(Gpr::Rbx);
    map.write(Gpr::Rbx, 9);
    PhysReg after = map.physOf(Gpr::Rbx);
    EXPECT_NE(before, after);
    EXPECT_EQ(prf.read(after), 9u);
}

TEST(RenameMap, SteadyStateOccupancy)
{
    PhysRegFile prf(64);
    RenameMap map(prf);
    std::size_t occupied = 64 - prf.freeCount();
    // Many writes must not leak physical registers.
    for (int i = 0; i < 1000; ++i)
        map.write(static_cast<Gpr>(i % numGprs), i);
    EXPECT_EQ(64 - prf.freeCount(), occupied);
}

TEST(RenameMap, DestructorReleasesRegisters)
{
    PhysRegFile prf(64);
    {
        RenameMap map(prf);
        EXPECT_LT(prf.freeCount(), 64u);
    }
    EXPECT_EQ(prf.freeCount(), 64u);
}

TEST(RenameMap, TwoMapsShareOnePool)
{
    // The structural property behind ctxtld/ctxtst: two contexts' maps
    // index the same physical file.
    PhysRegFile prf(64);
    RenameMap a(prf), b(prf);
    a.write(Gpr::Rcx, 11);
    b.write(Gpr::Rcx, 22);
    EXPECT_EQ(a.read(Gpr::Rcx), 11u);
    EXPECT_EQ(b.read(Gpr::Rcx), 22u);
    // Cross-context access by physical index sees the other's value.
    EXPECT_EQ(prf.read(b.physOf(Gpr::Rcx)), 22u);
}

// ------------------------------------------------------------ hw context

TEST(HwContext, IndependentArchState)
{
    PhysRegFile prf(128);
    HwContext c0(prf, 0), c1(prf, 1);
    c0.writeGpr(Gpr::Rax, 1);
    c1.writeGpr(Gpr::Rax, 2);
    c0.rip = 0x1000;
    c1.rip = 0x2000;
    c0.writeCr(Ctrl::Cr3, 0xaaa);
    c1.writeCr(Ctrl::Cr3, 0xbbb);
    EXPECT_EQ(c0.readGpr(Gpr::Rax), 1u);
    EXPECT_EQ(c1.readGpr(Gpr::Rax), 2u);
    EXPECT_EQ(c0.readCr(Ctrl::Cr3), 0xaaau);
    EXPECT_EQ(c1.readCr(Ctrl::Cr3), 0xbbbu);
}

TEST(HwContext, MsrDefaultsToZero)
{
    PhysRegFile prf(64);
    HwContext c(prf, 0);
    EXPECT_EQ(c.rdmsr(msr::ia32Efer), 0u);
    c.wrmsr(msr::ia32Efer, 0x500);
    EXPECT_EQ(c.rdmsr(msr::ia32Efer), 0x500u);
}

TEST(HwContext, CopyArchState)
{
    PhysRegFile prf(128);
    HwContext src(prf, 0), dst(prf, 1);
    src.writeGpr(Gpr::Rdx, 0x42);
    src.rip = 0xfeed;
    src.rflags = 0x246;
    src.wrmsr(msr::ia32Lstar, 0x777);
    src.writeCr(Ctrl::Cr0, 0x80000011);
    dst.copyArchStateFrom(src);
    EXPECT_EQ(dst.readGpr(Gpr::Rdx), 0x42u);
    EXPECT_EQ(dst.rip, 0xfeedu);
    EXPECT_EQ(dst.rflags, 0x246u);
    EXPECT_EQ(dst.rdmsr(msr::ia32Lstar), 0x777u);
    EXPECT_EQ(dst.readCr(Ctrl::Cr0), 0x80000011u);
}

// -------------------------------------------------------------- smt core

class SmtCoreTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    CostModel costs;
};

TEST_F(SmtCoreTest, ConstructsContexts)
{
    SmtCore core(eq, costs, 0, 3, 0);
    EXPECT_EQ(core.numContexts(), 3);
    EXPECT_EQ(core.activeContext(), 0);
    EXPECT_EQ(core.context(2).index(), 2);
}

TEST_F(SmtCoreTest, RetargetFetchStallsAndResumes)
{
    SmtCore core(eq, costs, 0, 2, 0);
    core.retargetFetch(1);
    EXPECT_EQ(core.activeContext(), 1);
    EXPECT_TRUE(core.context(0).stalled);
    EXPECT_FALSE(core.context(1).stalled);
    core.retargetFetch(0);
    EXPECT_EQ(core.activeContext(), 0);
    EXPECT_FALSE(core.context(0).stalled);
    EXPECT_EQ(core.retargetCount(), 2u);
}

TEST_F(SmtCoreTest, RetargetToSelfIsNoop)
{
    SmtCore core(eq, costs, 0, 2, 0);
    core.retargetFetch(0);
    EXPECT_EQ(core.retargetCount(), 0u);
}

TEST_F(SmtCoreTest, InvalidContextPanics)
{
    SmtCore core(eq, costs, 0, 2, 0);
    EXPECT_THROW(core.context(2), PanicError);
    EXPECT_THROW(core.context(-1), PanicError);
    EXPECT_THROW(core.retargetFetch(5), PanicError);
    EXPECT_THROW(core.lapic(2), PanicError);
}

TEST_F(SmtCoreTest, ContextsShareThePhysicalFile)
{
    SmtCore core(eq, costs, 0, 2, 0);
    core.context(0).writeGpr(Gpr::Rax, 5);
    core.context(1).writeGpr(Gpr::Rax, 6);
    PhysReg p1 = core.context(1).physOf(Gpr::Rax);
    EXPECT_EQ(core.prf().read(p1), 6u);
    EXPECT_EQ(core.context(0).readGpr(Gpr::Rax), 5u);
}

TEST_F(SmtCoreTest, TinyPrfRejected)
{
    EXPECT_THROW(SmtCore(eq, costs, 0, 4, 0, 16), FatalError);
}

TEST_F(SmtCoreTest, ZeroContextsRejected)
{
    EXPECT_THROW(SmtCore(eq, costs, 0, 0, 0), FatalError);
}

// ------------------------------------------------------------------ lapic

class LapicTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    CostModel costs;
};

TEST_F(LapicTest, RaiseAndAck)
{
    Lapic apic(eq, costs, 0);
    EXPECT_FALSE(apic.hasPending());
    EXPECT_EQ(apic.ack(), -1);
    apic.raise(32);
    EXPECT_TRUE(apic.hasPending());
    EXPECT_TRUE(apic.isPending(32));
    EXPECT_EQ(apic.ack(), 32);
    EXPECT_FALSE(apic.hasPending());
}

TEST_F(LapicTest, HigherVectorWins)
{
    Lapic apic(eq, costs, 0);
    apic.raise(32);
    apic.raise(240);
    apic.raise(100);
    EXPECT_EQ(apic.highestPending(), 240);
    EXPECT_EQ(apic.ack(), 240);
    EXPECT_EQ(apic.ack(), 100);
    EXPECT_EQ(apic.ack(), 32);
}

TEST_F(LapicTest, ClearSpecificVector)
{
    Lapic apic(eq, costs, 0);
    apic.raise(50);
    apic.raise(60);
    apic.clear(60);
    EXPECT_FALSE(apic.isPending(60));
    EXPECT_TRUE(apic.isPending(50));
}

TEST_F(LapicTest, IpiArrivesAfterLatency)
{
    Lapic a(eq, costs, 0), b(eq, costs, 1);
    a.sendIpi(b, 0xfd);
    EXPECT_FALSE(b.hasPending());
    eq.advanceBy(costs.ipiLatency - 1);
    EXPECT_FALSE(b.hasPending());
    eq.advanceBy(1);
    EXPECT_TRUE(b.isPending(0xfd));
}

TEST_F(LapicTest, ExternalRedirection)
{
    // SVt steers external interrupts to the hypervisor context.
    Lapic vm(eq, costs, 0), visor(eq, costs, 1);
    vm.redirect = &visor;
    vm.assertExternal(33);
    EXPECT_FALSE(vm.hasPending());
    EXPECT_TRUE(visor.isPending(33));
}

TEST_F(LapicTest, RedirectionChainFollowed)
{
    Lapic a(eq, costs, 0), b(eq, costs, 1), c(eq, costs, 2);
    a.redirect = &b;
    b.redirect = &c;
    a.assertExternal(40);
    EXPECT_TRUE(c.isPending(40));
}

TEST_F(LapicTest, RedirectionCyclePanics)
{
    Lapic a(eq, costs, 0), b(eq, costs, 1);
    a.redirect = &b;
    b.redirect = &a;
    EXPECT_THROW(a.assertExternal(40), PanicError);
}

TEST_F(LapicTest, TscDeadlineFiresAtDeadline)
{
    Lapic apic(eq, costs, 0);
    apic.armTscDeadline(usec(10), 0xef);
    EXPECT_TRUE(apic.tscDeadlineArmed());
    eq.advanceTo(usec(10) - 1);
    EXPECT_FALSE(apic.isPending(0xef));
    eq.advanceBy(1);
    EXPECT_TRUE(apic.isPending(0xef));
    EXPECT_FALSE(apic.tscDeadlineArmed());
}

TEST_F(LapicTest, TscDeadlineInPastFiresImmediately)
{
    Lapic apic(eq, costs, 0);
    eq.advanceTo(usec(100));
    apic.armTscDeadline(usec(50), 0xef);
    EXPECT_TRUE(apic.isPending(0xef));
    EXPECT_FALSE(apic.tscDeadlineArmed());
}

TEST_F(LapicTest, RearmReplacesDeadline)
{
    Lapic apic(eq, costs, 0);
    apic.armTscDeadline(usec(10), 0xef);
    apic.armTscDeadline(usec(20), 0xef);
    eq.advanceTo(usec(15));
    EXPECT_FALSE(apic.isPending(0xef));
    eq.advanceTo(usec(20));
    EXPECT_TRUE(apic.isPending(0xef));
}

TEST_F(LapicTest, CancelDisarms)
{
    Lapic apic(eq, costs, 0);
    apic.armTscDeadline(usec(10), 0xef);
    apic.cancelTscDeadline();
    EXPECT_FALSE(apic.tscDeadlineArmed());
    eq.advanceTo(usec(20));
    EXPECT_FALSE(apic.isPending(0xef));
}

// ---------------------------------------------------------------- machine

TEST(Machine, TopologyBuildsCores)
{
    Machine m(MachineTopology{2, 8, 2});
    EXPECT_EQ(m.numCores(), 16);
    EXPECT_EQ(m.core(0).numaNode(), 0);
    EXPECT_EQ(m.core(8).numaNode(), 1);
    EXPECT_EQ(m.core(3).numContexts(), 2);
}

TEST(Machine, InvalidTopologyRejected)
{
    EXPECT_THROW(Machine(MachineTopology{0, 1, 1}), FatalError);
    EXPECT_THROW(Machine(MachineTopology{1, 1, 0}), FatalError);
}

TEST(Machine, CoreIndexChecked)
{
    Machine m(MachineTopology{1, 2, 2});
    EXPECT_THROW(m.core(2), PanicError);
}

TEST(Machine, ConsumeAdvancesTime)
{
    Machine m(MachineTopology{1, 1, 2});
    m.consume(usec(3));
    EXPECT_EQ(m.now(), usec(3));
    EXPECT_THROW(m.consume(-1), PanicError);
}

TEST(Machine, AttributionSingleScope)
{
    Machine m(MachineTopology{1, 1, 2});
    {
        TimeScope scope(m, "stage-a");
        m.consume(nsec(100));
    }
    m.consume(nsec(50));
    EXPECT_EQ(m.scopeTotal("stage-a"), nsec(100));
    EXPECT_EQ(m.scopeTotal("unknown"), 0);
}

TEST(Machine, AttributionNestedScopesBothAccrue)
{
    Machine m(MachineTopology{1, 1, 2});
    {
        TimeScope outer(m, "outer");
        m.consume(nsec(10));
        {
            TimeScope inner(m, "inner");
            m.consume(nsec(5));
        }
    }
    EXPECT_EQ(m.scopeTotal("outer"), nsec(15));
    EXPECT_EQ(m.scopeTotal("inner"), nsec(5));
}

TEST(Machine, IdleTimeNotAttributed)
{
    Machine m(MachineTopology{1, 1, 2});
    TimeScope scope(m, "busy");
    m.idleUntil(usec(10));
    EXPECT_EQ(m.scopeTotal("busy"), 0);
    EXPECT_EQ(m.now(), usec(10));
}

TEST(Machine, ResetAttributionClears)
{
    Machine m(MachineTopology{1, 1, 2});
    {
        TimeScope scope(m, "x");
        m.consume(nsec(10));
    }
    m.resetAttribution();
    EXPECT_EQ(m.scopeTotal("x"), 0);
}

TEST(Machine, PopWithoutPushPanics)
{
    Machine m(MachineTopology{1, 1, 2});
    EXPECT_THROW(m.popScope(), PanicError);
}

TEST(Machine, CountersAccumulate)
{
    Machine m(MachineTopology{1, 1, 2});
    // count()/counter() are a compat shim over the PMU registry: the
    // key must have been interned by some component first.
    m.metrics().counter(MetricScope::Machine, "test", "exit:CPUID");
    m.metrics().counter(MetricScope::Machine, "test", "exit:HLT");
    m.count("exit:CPUID");
    m.count("exit:CPUID", 4);
    EXPECT_EQ(m.counter("exit:CPUID"), 5u);
    EXPECT_EQ(m.counter("exit:HLT"), 0u);
    m.resetCounters();
    EXPECT_EQ(m.counter("exit:CPUID"), 0u);
}

TEST(Machine, CountOfUnregisteredKeyThrows)
{
    Machine m(MachineTopology{1, 1, 2});
    EXPECT_THROW(m.count("no.such.metric"), FatalError);
    EXPECT_THROW(m.counter("no.such.metric"), FatalError);
}

TEST(Machine, ConsumeRunsDueEvents)
{
    Machine m(MachineTopology{1, 1, 2});
    bool fired = false;
    m.events().scheduleIn(nsec(10), [&] { fired = true; });
    m.consume(nsec(20));
    EXPECT_TRUE(fired);
}

TEST(CostModel, CycleMatchesFrequency)
{
    CostModel costs;
    costs.freqGhz = 2.0;
    EXPECT_EQ(costs.cycle(), 500);
}

} // namespace
} // namespace svtsim
