/**
 * @file
 * Tests for the io module: virtqueues, the network fabric, the
 * ramdisk, and the full nested virtio-net / virtio-blk paths.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hv/vectors.h"
#include "hv/virt_stack.h"
#include "io/net_fabric.h"
#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "io/virtqueue.h"
#include "sim/log.h"
#include "system/nested_system.h"

namespace svtsim {
namespace {

// -------------------------------------------------------------- virtqueue

class VirtqueueTest : public ::testing::Test
{
  protected:
    Machine machine{MachineTopology{1, 1, 2}};
};

TEST_F(VirtqueueTest, PostTakeCompleteRoundTrip)
{
    Virtqueue q(machine, "q");
    EXPECT_TRUE(q.post(VirtioBuffer{1, 100, 7, false}));
    VirtioBuffer buf;
    EXPECT_TRUE(q.take(buf));
    EXPECT_EQ(buf.id, 1u);
    EXPECT_EQ(buf.bytes, 100u);
    EXPECT_EQ(buf.payload, 7u);
    q.complete(buf);
    VirtioBuffer out;
    EXPECT_TRUE(q.popUsed(out));
    EXPECT_EQ(out.id, 1u);
    EXPECT_FALSE(q.popUsed(out));
}

TEST_F(VirtqueueTest, KickSuppressionWhileDeviceRuns)
{
    Virtqueue q(machine, "q");
    // First post kicks; subsequent posts ride on the running device.
    EXPECT_TRUE(q.post(VirtioBuffer{1, 1, 0, false}));
    EXPECT_FALSE(q.post(VirtioBuffer{2, 1, 0, false}));
    EXPECT_FALSE(q.post(VirtioBuffer{3, 1, 0, false}));
    VirtioBuffer buf;
    while (q.take(buf)) {
    }
    // Device drained and went idle: next post kicks again.
    EXPECT_TRUE(q.post(VirtioBuffer{4, 1, 0, false}));
    EXPECT_EQ(q.kicksNeeded(), 2u);
    EXPECT_EQ(q.postedCount(), 4u);
}

TEST_F(VirtqueueTest, FifoOrder)
{
    Virtqueue q(machine, "q");
    for (std::uint64_t i = 0; i < 10; ++i)
        q.post(VirtioBuffer{i, 1, 0, false});
    VirtioBuffer buf;
    for (std::uint64_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(q.take(buf));
        EXPECT_EQ(buf.id, i);
    }
}

TEST_F(VirtqueueTest, FullRingBackPressuresInsteadOfPanicking)
{
    Virtqueue q(machine, "q", 2);
    q.post(VirtioBuffer{0, 1, 0, false});
    q.post(VirtioBuffer{1, 1, 0, false});
    // The third post stalls the driver (ringFullWait) but is never
    // lost; the full counter records the stall.
    Ticks before = machine.now();
    q.post(VirtioBuffer{2, 1, 0, false});
    EXPECT_EQ(q.fullCount(), 1u);
    EXPECT_GE(machine.now() - before, machine.costs().ringFullWait);
    VirtioBuffer buf;
    for (std::uint64_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(q.take(buf));
        EXPECT_EQ(buf.id, i);
    }
}

TEST_F(VirtqueueTest, ZeroSizeRejected)
{
    EXPECT_THROW(Virtqueue(machine, "q", 0), FatalError);
}

TEST_F(VirtqueueTest, TakeOnEmptyMarksIdle)
{
    Virtqueue q(machine, "q");
    VirtioBuffer buf;
    EXPECT_FALSE(q.take(buf));
    EXPECT_TRUE(q.post(VirtioBuffer{}));
}

// -------------------------------------------------------------- fabric

class FabricTest : public ::testing::Test
{
  protected:
    Machine machine{MachineTopology{1, 1, 2}};
};

TEST_F(FabricTest, DeliversAfterLatencyAndSerialization)
{
    NetFabric fabric(machine, usec(5), 10e9);
    std::vector<NetPacket> got;
    fabric.setPeerHandler([&](NetPacket p) { got.push_back(p); });
    fabric.sendToPeer(NetPacket{1, 1, 0});
    Ticks expected = machine.now() + fabric.serialization(1) + usec(5);
    machine.events().advanceTo(expected - 1);
    EXPECT_TRUE(got.empty());
    machine.events().advanceBy(1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].id, 1u);
}

TEST_F(FabricTest, SerializationMatchesLineRate)
{
    NetFabric fabric(machine, 0, 10e9);
    // 16 KB + framing at 10 Gb/s ~= 12.9 us.
    Ticks t = fabric.serialization(16384);
    EXPECT_NEAR(toUsec(t), (16384 + 78) * 8.0 / 10e9 * 1e6, 0.01);
}

TEST_F(FabricTest, BackToBackPacketsQueueOnTheLink)
{
    NetFabric fabric(machine, 0, 10e9);
    std::vector<Ticks> arrivals;
    fabric.setPeerHandler(
        [&](NetPacket) { arrivals.push_back(machine.now()); });
    // Two full-size segments sent at the same instant: the second
    // serializes after the first.
    fabric.sendToPeer(NetPacket{1, 16384, 0});
    fabric.sendToPeer(NetPacket{2, 16384, 0});
    machine.events().advanceTo(msec(1));
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1] - arrivals[0], fabric.serialization(16384));
}

TEST_F(FabricTest, DirectionsAreIndependent)
{
    NetFabric fabric(machine, usec(1), 10e9);
    int to_peer = 0, to_local = 0;
    fabric.setPeerHandler([&](NetPacket) { ++to_peer; });
    fabric.setLocalHandler([&](NetPacket) { ++to_local; });
    fabric.sendToPeer(NetPacket{1, 100, 0});
    fabric.sendToLocal(NetPacket{2, 100, 0});
    machine.events().advanceTo(msec(1));
    EXPECT_EQ(to_peer, 1);
    EXPECT_EQ(to_local, 1);
    EXPECT_EQ(fabric.deliveredToPeer(), 1u);
    EXPECT_EQ(fabric.deliveredToLocal(), 1u);
}

TEST_F(FabricTest, NoReceiverPanics)
{
    NetFabric fabric(machine, 0, 10e9);
    EXPECT_THROW(fabric.sendToPeer(NetPacket{}), PanicError);
}

TEST_F(FabricTest, InvalidRateRejected)
{
    EXPECT_THROW(NetFabric(machine, 0, 0), FatalError);
}

// -------------------------------------------------------------- ramdisk

class RamDiskTest : public ::testing::Test
{
  protected:
    Machine machine{MachineTopology{1, 1, 2}};
};

TEST_F(RamDiskTest, CompletesAfterServiceTime)
{
    RamDisk disk(machine, "d");
    std::vector<std::uint64_t> done;
    disk.setCompletionHandler(
        [&](std::uint64_t id) { done.push_back(id); });
    disk.submit(7, 0, 512, false);
    Ticks expect = machine.now() + disk.serviceTime(512, false);
    machine.events().advanceTo(expect - 1);
    EXPECT_TRUE(done.empty());
    machine.events().advanceBy(1);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 7u);
}

TEST_F(RamDiskTest, WritesCostMoreThanReads)
{
    RamDisk disk(machine, "d");
    EXPECT_GT(disk.serviceTime(4096, true),
              disk.serviceTime(4096, false));
    EXPECT_GT(disk.serviceTime(65536, false),
              disk.serviceTime(512, false));
}

TEST_F(RamDiskTest, RequestsSerialize)
{
    RamDisk disk(machine, "d");
    std::vector<Ticks> times;
    disk.setCompletionHandler(
        [&](std::uint64_t) { times.push_back(machine.now()); });
    disk.submit(1, 0, 4096, false);
    disk.submit(2, 8, 4096, false);
    machine.events().advanceTo(msec(1));
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[1] - times[0], disk.serviceTime(4096, false));
    EXPECT_EQ(disk.completedCount(), 2u);
}

TEST_F(RamDiskTest, SubmitWithoutHandlerPanics)
{
    RamDisk disk(machine, "d");
    EXPECT_THROW(disk.submit(1, 0, 512, false), PanicError);
}

// --------------------------------------------------- end-to-end network

/** Full system with a 1-byte-echo peer on the wire. */
struct NetRig
{
    explicit NetRig(VirtMode mode)
        : sys(mode),
          fabric(sys.machine(), sys.machine().costs().wireLatency,
                 sys.machine().costs().linkBitsPerSec),
          net(sys.stack(), fabric)
    {
        // Bare-metal peer: echo after the turnaround time.
        fabric.setPeerHandler([this](NetPacket pkt) {
            sys.machine().events().scheduleIn(
                sys.machine().costs().remotePeerTurnaround,
                [this, pkt] { fabric.sendToLocal(pkt); });
        });
    }

    /** One request/response round; returns the RTT. */
    Ticks
    pingPong(std::uint32_t bytes)
    {
        bool got = false;
        net.setRxHandler([&](NetPacket) { got = true; });
        Ticks t0 = sys.machine().now();
        net.send(bytes, next_id++);
        while (!got)
            sys.api().halt();
        return sys.machine().now() - t0;
    }

    /** Mean RTT over several spaced rounds (vhost poll jitter). */
    Ticks
    meanRtt(std::uint32_t bytes, int rounds)
    {
        pingPong(bytes); // warm up
        Ticks total = 0;
        for (int i = 0; i < rounds; ++i) {
            sys.api().compute(usec(100)); // client think time
            total += pingPong(bytes);
        }
        return total / rounds;
    }

    NestedSystem sys;
    NetFabric fabric;
    VirtioNetStack net;
    std::uint64_t next_id = 1;
};

TEST(VirtioNet, EndToEndEchoInAllModes)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        NetRig rig(mode);
        Ticks rtt = rig.pingPong(1);
        EXPECT_GT(rtt, 2 * rig.sys.machine().costs().wireLatency)
            << virtModeName(mode);
        EXPECT_EQ(rig.net.txPackets(), 1u);
        EXPECT_EQ(rig.net.rxPackets(), 1u);
    }
}

TEST(VirtioNet, RttImprovesWithSvt)
{
    NetRig base(VirtMode::Nested);
    NetRig sw(VirtMode::SwSvt);
    NetRig hw(VirtMode::HwSvt);
    Ticks t_base = base.meanRtt(1, 5);
    Ticks t_sw = sw.meanRtt(1, 5);
    Ticks t_hw = hw.meanRtt(1, 5);
    EXPECT_LT(t_sw, t_base);
    EXPECT_LT(t_hw, t_sw);
}

TEST(VirtioNet, KickPathGeneratesEptMisconfig)
{
    NetRig rig(VirtMode::Nested);
    rig.pingPong(1);
    EXPECT_GE(rig.sys.machine().counter("l2.exit.EPT_MISCONFIG"), 1u);
    // The rx path injected the virtio vector into L2.
    EXPECT_GE(rig.sys.machine().counter("irq.delivered.l2"), 1u);
}

TEST(VirtioNet, BatchedSegmentsShareKicks)
{
    NetRig rig(VirtMode::Nested);
    rig.pingPong(1); // warm up
    rig.sys.api().compute(usec(200)); // let the vhost worker idle
    auto before = rig.sys.machine().counter("l2.exit.EPT_MISCONFIG");
    // A burst of segments: the first send kicks; the vhost worker
    // then busy-polls the ring, so the rest ride without doorbell
    // exits (virtio EVENT_IDX + vhost busyloop).
    int got = 0;
    rig.net.setRxHandler([&](NetPacket) { ++got; });
    for (int i = 0; i < 8; ++i)
        rig.net.send(16384, 100 + i);
    while (got < 8)
        rig.sys.api().halt();
    auto kicks = rig.sys.machine().counter("l2.exit.EPT_MISCONFIG") -
                 before;
    EXPECT_GE(kicks, 1u);
    EXPECT_LE(kicks, 3u);
}

// --------------------------------------------------- end-to-end disk

struct BlkRig
{
    explicit BlkRig(VirtMode mode)
        : sys(mode), disk(sys.machine(), "ramdisk"),
          blk(sys.stack(), disk)
    {
    }

    Ticks
    oneRequest(std::uint32_t bytes, bool write)
    {
        bool done = false;
        blk.setCompletionHandler([&](std::uint64_t) { done = true; });
        Ticks t0 = sys.machine().now();
        blk.submit(next_id++, 128, bytes, write);
        while (!done)
            sys.api().halt();
        return sys.machine().now() - t0;
    }

    /** Mean latency over several spaced requests (poll jitter). */
    Ticks
    meanLatency(std::uint32_t bytes, bool write, int rounds)
    {
        oneRequest(bytes, write); // warm up
        Ticks total = 0;
        for (int i = 0; i < rounds; ++i) {
            sys.api().compute(usec(100));
            total += oneRequest(bytes, write);
        }
        return total / rounds;
    }

    NestedSystem sys;
    RamDisk disk;
    VirtioBlkStack blk;
    std::uint64_t next_id = 1;
};

TEST(VirtioBlk, EndToEndCompletionInAllModes)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        BlkRig rig(mode);
        Ticks t = rig.oneRequest(512, false);
        EXPECT_GT(t, rig.disk.serviceTime(512, false))
            << virtModeName(mode);
        EXPECT_EQ(rig.blk.completedCount(), 1u);
    }
}

TEST(VirtioBlk, LatencyImprovesWithSvt)
{
    BlkRig base(VirtMode::Nested);
    BlkRig sw(VirtMode::SwSvt);
    BlkRig hw(VirtMode::HwSvt);
    Ticks t_base = base.meanLatency(512, false, 5);
    Ticks t_sw = sw.meanLatency(512, false, 5);
    Ticks t_hw = hw.meanLatency(512, false, 5);
    EXPECT_LT(t_sw, t_base);
    EXPECT_LT(t_hw, t_sw);
}

TEST(VirtioBlk, WritesSlowerThanReads)
{
    BlkRig rig(VirtMode::Nested);
    rig.oneRequest(512, false);
    Ticks rd = rig.oneRequest(512, false);
    Ticks wr = rig.oneRequest(512, true);
    EXPECT_GT(wr, rd);
}

TEST(VirtioBlk, ConcurrentRequestsComplete)
{
    BlkRig rig(VirtMode::Nested);
    int done = 0;
    rig.blk.setCompletionHandler([&](std::uint64_t) { ++done; });
    for (int i = 0; i < 4; ++i)
        rig.blk.submit(100 + i, i * 8, 4096, false);
    while (done < 4)
        rig.sys.api().halt();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(rig.blk.completedCount(), 4u);
}

TEST(VirtioBlk, EoiTrapsAreChargedPerInterruptBatchNotPerBuffer)
{
    // Regression: l1BlkIrq used to issue the L1 EOI/housekeeping
    // wrmsr traps inside the completion loop, so a batch of N
    // completions was billed N EOIs. The blk rig has no other L1
    // wrmsr source, so the trap count must match the batch count
    // exactly.
    BlkRig rig(VirtMode::Nested);
    int done = 0;
    rig.blk.setCompletionHandler([&](std::uint64_t) { ++done; });
    for (int i = 0; i < 8; ++i)
        rig.blk.submit(100 + i, i * 8, 4096, false);
    while (done < 8)
        rig.sys.api().halt();
    const auto traps = static_cast<std::uint64_t>(
        rig.sys.machine().costs().l1IoBackendTraps);
    EXPECT_GT(rig.blk.l1IrqBatches(), 0u);
    EXPECT_EQ(rig.sys.machine().counter("l0.exit.MSR_WRITE"),
              rig.blk.l1IrqBatches() * traps);
    // With 8 requests in flight the serialized disk completes them
    // faster than L1 takes interrupts, so batching actually happens:
    // strictly fewer interrupt batches than completions.
    EXPECT_LT(rig.blk.l1IrqBatches(), rig.blk.completedCount());
}

TEST(VirtioBlk, PostAtTheExactIdleTickIsNotStranded)
{
    // Regression sweep for the kick-suppression race: a request
    // posted exactly when the vhost worker concludes it is idle
    // (linger window boundary, poll-cadence ticks) had its doorbell
    // suppressed and could strand until the next unrelated kick. The
    // idle-tick guard re-arms one poll instead; every gap must
    // complete without a stall.
    const Ticks linger = paperCosts().vhostLingerPoll;
    for (Ticks gap :
         {linger - usec(1), linger - 1, linger, linger + 1,
          linger + usec(1), linger + usec(10), 2 * linger}) {
        BlkRig rig(VirtMode::Nested);
        rig.oneRequest(4096, false); // prime the worker
        rig.sys.api().compute(gap);  // land on the boundary
        Ticks t = rig.oneRequest(4096, false);
        EXPECT_GT(t, 0) << "gap " << toUsec(gap) << "us";
        EXPECT_EQ(rig.blk.completedCount(), 2u)
            << "gap " << toUsec(gap) << "us";
    }
}

} // namespace
} // namespace svtsim
