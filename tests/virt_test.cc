/**
 * @file
 * Unit tests for the virt module: VMCS fields, EPT, VMX engine and
 * shadow-VMCS behaviour.
 */

#include <gtest/gtest.h>

#include "arch/machine.h"
#include "sim/log.h"
#include "virt/ept.h"
#include "virt/exit_reason.h"
#include "virt/vmcs.h"
#include "virt/vmx.h"

namespace svtsim {
namespace {

// ------------------------------------------------------------------ vmcs

TEST(Vmcs, ReadWriteRoundTrip)
{
    Vmcs vmcs("vmcs01");
    vmcs.write(VmcsField::GuestRip, 0x1234);
    EXPECT_EQ(vmcs.read(VmcsField::GuestRip), 0x1234u);
    EXPECT_EQ(vmcs.name(), "vmcs01");
}

TEST(Vmcs, SvtFieldsStartInvalid)
{
    Vmcs vmcs("v");
    EXPECT_EQ(vmcs.read(VmcsField::SvtVisor), svtInvalidContext);
    EXPECT_EQ(vmcs.read(VmcsField::SvtVm), svtInvalidContext);
    EXPECT_EQ(vmcs.read(VmcsField::SvtNested), svtInvalidContext);
}

TEST(Vmcs, LaunchStateTransitions)
{
    Vmcs vmcs("v");
    EXPECT_EQ(vmcs.state(), Vmcs::State::Clear);
    vmcs.setState(Vmcs::State::Launched);
    EXPECT_EQ(vmcs.state(), Vmcs::State::Launched);
}

TEST(Vmcs, RecordAndReadExitInfo)
{
    Vmcs vmcs("v");
    ExitInfo info;
    info.reason = ExitReason::EptMisconfig;
    info.qualification = 0x77;
    info.guestPhysAddr = 0xfee00000;
    info.instrLength = 3;
    info.vector = 42;
    vmcs.recordExit(info);
    ExitInfo back = vmcs.exitInfo();
    EXPECT_EQ(back.reason, ExitReason::EptMisconfig);
    EXPECT_EQ(back.qualification, 0x77u);
    EXPECT_EQ(back.guestPhysAddr, 0xfee00000u);
    EXPECT_EQ(back.instrLength, 3u);
    EXPECT_EQ(back.vector, 42);
}

TEST(Vmcs, FieldClassification)
{
    EXPECT_EQ(vmcsFieldClass(VmcsField::GuestRip),
              VmcsFieldClass::GuestState);
    EXPECT_EQ(vmcsFieldClass(VmcsField::HostRip),
              VmcsFieldClass::HostState);
    EXPECT_EQ(vmcsFieldClass(VmcsField::EptPointer),
              VmcsFieldClass::Control);
    EXPECT_EQ(vmcsFieldClass(VmcsField::ExitReasonField),
              VmcsFieldClass::ExitInfo);
    EXPECT_EQ(vmcsFieldClass(VmcsField::SvtVm), VmcsFieldClass::Svt);
}

TEST(Vmcs, AddressFields)
{
    EXPECT_TRUE(vmcsFieldIsAddress(VmcsField::EptPointer));
    EXPECT_TRUE(vmcsFieldIsAddress(VmcsField::MsrBitmap));
    EXPECT_TRUE(vmcsFieldIsAddress(VmcsField::IoBitmapA));
    EXPECT_FALSE(vmcsFieldIsAddress(VmcsField::GuestRip));
    EXPECT_FALSE(vmcsFieldIsAddress(VmcsField::ExitReasonField));
}

TEST(Vmcs, ShadowableFields)
{
    // Simple guest state and exit info shadow; addresses, injection
    // and SVt context ids never do (Section 2.1's "limited benefits").
    EXPECT_TRUE(vmcsFieldIsShadowable(VmcsField::GuestRip));
    EXPECT_TRUE(vmcsFieldIsShadowable(VmcsField::ExitReasonField));
    EXPECT_FALSE(vmcsFieldIsShadowable(VmcsField::EptPointer));
    EXPECT_FALSE(vmcsFieldIsShadowable(VmcsField::EntryIntrInfo));
    EXPECT_FALSE(vmcsFieldIsShadowable(VmcsField::SvtVm));
    EXPECT_FALSE(vmcsFieldIsShadowable(VmcsField::HostRip));
}

TEST(Vmcs, EveryFieldHasNameAndClass)
{
    for (std::size_t i = 0; i < numVmcsFields; ++i) {
        auto f = static_cast<VmcsField>(i);
        EXPECT_STRNE(vmcsFieldName(f), "INVALID");
        EXPECT_NO_THROW(vmcsFieldClass(f));
    }
}

TEST(Vmcs, WriteCountTracksDirtyState)
{
    Vmcs vmcs("v");
    auto before = vmcs.writeCount();
    vmcs.write(VmcsField::GuestRsp, 1);
    vmcs.write(VmcsField::GuestRsp, 2);
    EXPECT_EQ(vmcs.writeCount(), before + 2);
}

// ------------------------------------------------------------------- ept

TEST(Ept, TranslateMappedPage)
{
    Ept ept("ept02");
    ept.map(0x1000, 0x80000, EptPerms{}, 2);
    auto r = ept.translate(0x1234, EptAccess::Read);
    EXPECT_EQ(r.kind, Ept::Result::Kind::Ok);
    EXPECT_EQ(r.hpa, 0x80234u);
    EXPECT_EQ(r.levelsWalked, 4);
    auto r2 = ept.translate(0x2000, EptAccess::Write);
    EXPECT_EQ(r2.kind, Ept::Result::Kind::Ok);
    EXPECT_EQ(r2.hpa, 0x81000u);
}

TEST(Ept, UnmappedIsViolation)
{
    Ept ept("e");
    EXPECT_EQ(ept.translate(0x5000, EptAccess::Read).kind,
              Ept::Result::Kind::Violation);
}

TEST(Ept, PermissionViolation)
{
    Ept ept("e");
    EptPerms ro{true, false, true};
    ept.map(0x1000, 0x2000, ro);
    EXPECT_EQ(ept.translate(0x1000, EptAccess::Read).kind,
              Ept::Result::Kind::Ok);
    EXPECT_EQ(ept.translate(0x1000, EptAccess::Write).kind,
              Ept::Result::Kind::Violation);
    EXPECT_EQ(ept.translate(0x1000, EptAccess::Exec).kind,
              Ept::Result::Kind::Ok);
}

TEST(Ept, MmioIsMisconfig)
{
    Ept ept("e");
    ept.markMmio(0xfe000000, 1);
    EXPECT_EQ(ept.translate(0xfe000123, EptAccess::Write).kind,
              Ept::Result::Kind::Misconfig);
}

TEST(Ept, UnmapRestoresViolation)
{
    Ept ept("e");
    ept.map(0x1000, 0x2000);
    ept.unmap(0x1000);
    EXPECT_EQ(ept.translate(0x1000, EptAccess::Read).kind,
              Ept::Result::Kind::Violation);
    EXPECT_EQ(ept.mappedPages(), 0u);
}

TEST(Ept, AlignmentEnforced)
{
    Ept ept("e");
    EXPECT_THROW(ept.map(0x1001, 0x2000), FatalError);
    EXPECT_THROW(ept.map(0x1000, 0x2001), FatalError);
    EXPECT_THROW(ept.unmap(0x10), FatalError);
    EXPECT_THROW(ept.markMmio(0x10), FatalError);
}

TEST(Ept, InvalidateCounts)
{
    Ept ept("e");
    ept.invalidate();
    ept.invalidate();
    EXPECT_EQ(ept.invalidations(), 2u);
}

// ------------------------------------------------------------ vmx engine

class VmxTest : public ::testing::Test
{
  protected:
    VmxTest()
        : machine(MachineTopology{1, 1, 2}),
          engine(machine, machine.core(0), 0), vmcs("vmcs01")
    {
    }

    /** Minimal host/guest state so entries/exits are well-formed. */
    void
    initVmcs()
    {
        vmcs.write(VmcsField::HostRip, 0xff0000);
        vmcs.write(VmcsField::HostCr3, 0x111000);
        vmcs.write(VmcsField::GuestRip, 0x400000);
        vmcs.write(VmcsField::GuestCr3, 0x222000);
    }

    Machine machine;
    VmxEngine engine;
    Vmcs vmcs;
};

TEST_F(VmxTest, VmxonOffLifecycle)
{
    EXPECT_FALSE(engine.vmxOn());
    engine.vmxon();
    EXPECT_TRUE(engine.vmxOn());
    engine.vmxoff();
    EXPECT_FALSE(engine.vmxOn());
}

TEST_F(VmxTest, DoubleVmxonPanics)
{
    engine.vmxon();
    EXPECT_THROW(engine.vmxon(), PanicError);
}

TEST_F(VmxTest, OperationsRequireVmxon)
{
    EXPECT_THROW(engine.vmptrld(&vmcs), PanicError);
    EXPECT_THROW(engine.vmxoff(), PanicError);
    EXPECT_THROW(engine.vmentry(true), PanicError);
}

TEST_F(VmxTest, VmptrldMakesCurrent)
{
    engine.vmxon();
    engine.vmptrld(&vmcs);
    EXPECT_EQ(engine.currentVmcs(), &vmcs);
    EXPECT_THROW(engine.vmptrld(nullptr), PanicError);
}

TEST_F(VmxTest, VmreadVmwriteNeedCurrentVmcs)
{
    engine.vmxon();
    EXPECT_THROW(engine.vmread(VmcsField::GuestRip), PanicError);
    EXPECT_THROW(engine.vmwrite(VmcsField::GuestRip, 1), PanicError);
}

TEST_F(VmxTest, VmwriteToExitInfoPanics)
{
    engine.vmxon();
    engine.vmptrld(&vmcs);
    EXPECT_THROW(engine.vmwrite(VmcsField::ExitReasonField, 1),
                 PanicError);
}

TEST_F(VmxTest, EntryExitRoundTripMovesState)
{
    initVmcs();
    engine.vmxon();
    engine.vmptrld(&vmcs);
    engine.vmentry(true);
    EXPECT_TRUE(engine.inGuest());
    EXPECT_EQ(engine.context().rip, 0x400000u);
    EXPECT_EQ(engine.context().readCr(Ctrl::Cr3), 0x222000u);

    // Guest runs; RIP moves.
    engine.context().rip = 0x400010;

    ExitInfo info;
    info.reason = ExitReason::Cpuid;
    info.instrLength = 2;
    engine.vmexit(info);
    EXPECT_FALSE(engine.inGuest());
    EXPECT_EQ(engine.context().rip, 0xff0000u);
    EXPECT_EQ(engine.context().readCr(Ctrl::Cr3), 0x111000u);
    EXPECT_EQ(vmcs.read(VmcsField::GuestRip), 0x400010u);
    EXPECT_EQ(vmcs.exitInfo().reason, ExitReason::Cpuid);
    EXPECT_EQ(engine.exitCount(), 1u);
    EXPECT_EQ(machine.counter("vmx.exit.CPUID"), 1u);
}

TEST_F(VmxTest, LaunchStateMachine)
{
    initVmcs();
    engine.vmxon();
    engine.vmptrld(&vmcs);
    // Resume before launch is invalid.
    EXPECT_THROW(engine.vmentry(false), PanicError);
    engine.vmentry(true);
    EXPECT_THROW(engine.vmentry(true), PanicError); // already in guest
    engine.vmexit({ExitReason::Hlt});
    // Launch of an already-launched VMCS is invalid; resume works.
    EXPECT_THROW(engine.vmentry(true), PanicError);
    engine.vmentry(false);
    EXPECT_TRUE(engine.inGuest());
}

TEST_F(VmxTest, VmclearResetsLaunchState)
{
    initVmcs();
    engine.vmxon();
    engine.vmptrld(&vmcs);
    engine.vmentry(true);
    engine.vmexit({ExitReason::Hlt});
    engine.vmclear(&vmcs);
    EXPECT_EQ(vmcs.state(), Vmcs::State::Clear);
    EXPECT_EQ(engine.currentVmcs(), nullptr);
}

TEST_F(VmxTest, ExitOutsideGuestPanics)
{
    engine.vmxon();
    engine.vmptrld(&vmcs);
    EXPECT_THROW(engine.vmexit({ExitReason::Hlt}), PanicError);
}

TEST_F(VmxTest, VmxoffInGuestPanics)
{
    initVmcs();
    engine.vmxon();
    engine.vmptrld(&vmcs);
    engine.vmentry(true);
    EXPECT_THROW(engine.vmxoff(), PanicError);
}

TEST_F(VmxTest, EntryExitConsumeTime)
{
    initVmcs();
    engine.vmxon();
    engine.vmptrld(&vmcs);
    Ticks t0 = machine.now();
    engine.vmentry(true);
    Ticks entry = machine.now() - t0;
    EXPECT_EQ(entry, machine.costs().vmEntryHw);
    t0 = machine.now();
    engine.vmexit({ExitReason::Hlt});
    EXPECT_EQ(machine.now() - t0, machine.costs().vmExitHw);
}

TEST_F(VmxTest, HypervisorGradeGuestCostsMore)
{
    initVmcs();
    vmcs.write(VmcsField::EntryControls, entryCtlLoadHypervisorState);
    engine.vmxon();
    engine.vmptrld(&vmcs);
    Ticks t0 = machine.now();
    engine.vmentry(true);
    Ticks entry = machine.now() - t0;
    const CostModel &costs = machine.costs();
    EXPECT_EQ(entry, costs.vmEntryHw +
                         costs.msrSwitch * costs.msrSwitchCount);
}

TEST_F(VmxTest, ShadowReadHitsWithoutTrap)
{
    initVmcs();
    Vmcs shadow("vmcs12");
    shadow.write(VmcsField::ExitReasonField,
                 static_cast<std::uint64_t>(ExitReason::Cpuid));
    vmcs.setShadowLink(&shadow);
    vmcs.write(VmcsField::ProcControls2, procCtl2ShadowVmcs);
    engine.vmxon();
    engine.vmptrld(&vmcs);
    engine.vmentry(true);

    std::uint64_t value = 0;
    EXPECT_TRUE(engine.guestVmread(VmcsField::ExitReasonField, value));
    EXPECT_EQ(value, static_cast<std::uint64_t>(ExitReason::Cpuid));
    EXPECT_EQ(engine.shadowAccessCount(), 1u);
}

TEST_F(VmxTest, ShadowWriteUpdatesShadow)
{
    initVmcs();
    Vmcs shadow("vmcs12");
    vmcs.setShadowLink(&shadow);
    vmcs.write(VmcsField::ProcControls2, procCtl2ShadowVmcs);
    engine.vmxon();
    engine.vmptrld(&vmcs);
    engine.vmentry(true);

    EXPECT_TRUE(engine.guestVmwrite(VmcsField::GuestRip, 0xabc));
    EXPECT_EQ(shadow.read(VmcsField::GuestRip), 0xabcu);
}

TEST_F(VmxTest, NonShadowableFieldMustTrap)
{
    initVmcs();
    Vmcs shadow("vmcs12");
    vmcs.setShadowLink(&shadow);
    vmcs.write(VmcsField::ProcControls2, procCtl2ShadowVmcs);
    engine.vmxon();
    engine.vmptrld(&vmcs);
    engine.vmentry(true);

    std::uint64_t value;
    EXPECT_FALSE(engine.guestVmread(VmcsField::EptPointer, value));
    EXPECT_FALSE(engine.guestVmwrite(VmcsField::EntryIntrInfo, 7));
}

TEST_F(VmxTest, ShadowingDisabledAlwaysTraps)
{
    initVmcs();
    Vmcs shadow("vmcs12");
    vmcs.setShadowLink(&shadow);
    // ProcControls2 shadow bit NOT set.
    engine.vmxon();
    engine.vmptrld(&vmcs);
    engine.vmentry(true);

    std::uint64_t value;
    EXPECT_FALSE(engine.guestVmread(VmcsField::GuestRip, value));
    EXPECT_FALSE(engine.guestVmwrite(VmcsField::GuestRip, 1));
}

TEST_F(VmxTest, GuestAccessorsOutsideGuestPanic)
{
    engine.vmxon();
    engine.vmptrld(&vmcs);
    std::uint64_t value;
    EXPECT_THROW(engine.guestVmread(VmcsField::GuestRip, value),
                 PanicError);
    EXPECT_THROW(engine.guestVmwrite(VmcsField::GuestRip, 1),
                 PanicError);
}

TEST(ExitReasonNames, AllNamed)
{
    for (std::uint16_t i = 0;
         i < static_cast<std::uint16_t>(ExitReason::NumReasons); ++i) {
        EXPECT_STRNE(exitReasonName(static_cast<ExitReason>(i)),
                     "UNKNOWN");
    }
}

} // namespace
} // namespace svtsim
