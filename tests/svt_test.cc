/**
 * @file
 * Unit tests for the SVt hardware unit: u-registers, trap/resume fetch
 * retargeting, and ctxtld/ctxtst semantics (paper Section 4, Table 2).
 */

#include <gtest/gtest.h>

#include "arch/machine.h"
#include "sim/log.h"
#include "svt/svt_unit.h"
#include "virt/vmcs.h"

namespace svtsim {
namespace {

class SvtUnitTest : public ::testing::Test
{
  protected:
    SvtUnitTest()
        : machine(MachineTopology{1, 1, 3}), unit(machine,
                                                  machine.core(0))
    {
    }

    /** Set up the Section 4 walk-through: L0 in context-0, L1 in
     *  context-1, L2 in context-2. */
    void
    setupNested()
    {
        unit.enable();
        vmcs01.write(VmcsField::SvtVisor, 0);
        vmcs01.write(VmcsField::SvtVm, 1);
        vmcs01.write(VmcsField::SvtNested, 2);
        unit.loadFromVmcs(vmcs01);
    }

    Machine machine;
    SvtUnit unit;
    Vmcs vmcs01{"vmcs01"};
    Vmcs vmcs02{"vmcs02"};
};

TEST_F(SvtUnitTest, DisabledUnitPanicsOnUse)
{
    std::uint64_t v;
    EXPECT_THROW(unit.vmResume(), PanicError);
    EXPECT_THROW(unit.vmTrap(), PanicError);
    EXPECT_THROW(unit.ctxtld(1, Gpr::Rax, v), PanicError);
    EXPECT_THROW(unit.loadFromVmcs(vmcs01), PanicError);
}

TEST_F(SvtUnitTest, EnableResetsUregs)
{
    unit.enable();
    EXPECT_TRUE(unit.enabled());
    EXPECT_EQ(unit.uregs().visor, svtInvalidContext);
    EXPECT_EQ(unit.uregs().vm, svtInvalidContext);
    EXPECT_EQ(unit.uregs().nested, svtInvalidContext);
    EXPECT_FALSE(unit.uregs().isVm);
    EXPECT_EQ(unit.uregs().current, 0u);
}

TEST_F(SvtUnitTest, VmptrldCachesFields)
{
    setupNested();
    EXPECT_EQ(unit.uregs().visor, 0u);
    EXPECT_EQ(unit.uregs().vm, 1u);
    EXPECT_EQ(unit.uregs().nested, 2u);
}

TEST_F(SvtUnitTest, ResumeRetargetsToVm)
{
    setupNested();
    unit.vmResume();
    EXPECT_EQ(unit.uregs().current, 1u);
    EXPECT_TRUE(unit.uregs().isVm);
    EXPECT_EQ(machine.core(0).activeContext(), 1);
    EXPECT_TRUE(machine.core(0).context(0).stalled);
}

TEST_F(SvtUnitTest, TrapRetargetsToVisor)
{
    setupNested();
    unit.vmResume();
    unit.vmTrap();
    EXPECT_EQ(unit.uregs().current, 0u);
    EXPECT_FALSE(unit.uregs().isVm);
    EXPECT_EQ(machine.core(0).activeContext(), 0);
    EXPECT_EQ(unit.switchCount(), 2u);
}

TEST_F(SvtUnitTest, SwitchCostIsSquashOnly)
{
    setupNested();
    Ticks t0 = machine.now();
    unit.vmResume();
    EXPECT_EQ(machine.now() - t0, machine.costs().svtSwitch);
}

TEST_F(SvtUnitTest, ResumeWithInvalidVmPanics)
{
    unit.enable();
    vmcs01.write(VmcsField::SvtVisor, 0);
    // SvtVm left invalid.
    unit.loadFromVmcs(vmcs01);
    EXPECT_THROW(unit.vmResume(), PanicError);
}

TEST_F(SvtUnitTest, TrapWithOutOfRangeVisorPanics)
{
    unit.enable();
    vmcs01.write(VmcsField::SvtVisor, 99);
    vmcs01.write(VmcsField::SvtVm, 1);
    unit.loadFromVmcs(vmcs01);
    unit.vmResume();
    EXPECT_THROW(unit.vmTrap(), PanicError);
}

// -- ctxtld/ctxtst target resolution (Section 4 semantics) -------------

TEST_F(SvtUnitTest, HostLvl1SelectsVmContext)
{
    setupNested();
    // is_vm == 0, lvl == 1 -> SVt_vm (context-1).
    EXPECT_EQ(unit.resolveTarget(1), 1);
}

TEST_F(SvtUnitTest, HostLvl2SelectsNestedContext)
{
    setupNested();
    EXPECT_EQ(unit.resolveTarget(2), 2);
}

TEST_F(SvtUnitTest, GuestLvl1SelectsNestedContext)
{
    setupNested();
    unit.vmResume(); // now is_vm == 1 (L1 executing)
    EXPECT_EQ(unit.resolveTarget(1), 2);
}

TEST_F(SvtUnitTest, InvalidCombinationsTrap)
{
    setupNested();
    EXPECT_EQ(unit.resolveTarget(0), -1);
    EXPECT_EQ(unit.resolveTarget(3), -1);
    unit.vmResume();
    // Guest lvl 2 has no mapping: deeper hierarchies are emulated.
    EXPECT_EQ(unit.resolveTarget(2), -1);
}

TEST_F(SvtUnitTest, NestedInvalidTraps)
{
    unit.enable();
    vmcs01.write(VmcsField::SvtVisor, 0);
    vmcs01.write(VmcsField::SvtVm, 1);
    // SvtNested left invalid: guest has no nested VM yet.
    unit.loadFromVmcs(vmcs01);
    unit.vmResume();
    std::uint64_t v;
    EXPECT_EQ(unit.ctxtld(1, Gpr::Rax, v), SvtUnit::Access::Trap);
}

TEST_F(SvtUnitTest, CrossContextGprReadWrite)
{
    setupNested();
    machine.core(0).context(1).writeGpr(Gpr::Rbx, 0x77);
    std::uint64_t v = 0;
    EXPECT_EQ(unit.ctxtld(1, Gpr::Rbx, v), SvtUnit::Access::Ok);
    EXPECT_EQ(v, 0x77u);
    EXPECT_EQ(unit.ctxtst(1, Gpr::Rbx, 0x88), SvtUnit::Access::Ok);
    EXPECT_EQ(machine.core(0).context(1).readGpr(Gpr::Rbx), 0x88u);
    EXPECT_EQ(unit.crossAccessCount(), 2u);
}

TEST_F(SvtUnitTest, CrossContextDoesNotDisturbOwnRegisters)
{
    setupNested();
    machine.core(0).context(0).writeGpr(Gpr::Rax, 1);
    machine.core(0).context(1).writeGpr(Gpr::Rax, 2);
    unit.ctxtst(1, Gpr::Rax, 99);
    EXPECT_EQ(machine.core(0).context(0).readGpr(Gpr::Rax), 1u);
    EXPECT_EQ(machine.core(0).context(1).readGpr(Gpr::Rax), 99u);
}

TEST_F(SvtUnitTest, CrossContextSpecialRegisters)
{
    setupNested();
    machine.core(0).context(2).rip = 0x4000;
    std::uint64_t v = 0;
    EXPECT_EQ(unit.ctxtld(2, SvtSpecialReg::Rip, v),
              SvtUnit::Access::Ok);
    EXPECT_EQ(v, 0x4000u);
    // Emulating cpuid: the hypervisor advances the subordinate RIP.
    EXPECT_EQ(unit.ctxtst(2, SvtSpecialReg::Rip, 0x4002),
              SvtUnit::Access::Ok);
    EXPECT_EQ(machine.core(0).context(2).rip, 0x4002u);

    EXPECT_EQ(unit.ctxtst(1, SvtSpecialReg::Cr3, 0xabc000),
              SvtUnit::Access::Ok);
    EXPECT_EQ(machine.core(0).context(1).readCr(Ctrl::Cr3), 0xabc000u);
}

TEST_F(SvtUnitTest, AccessCostIsCheap)
{
    setupNested();
    std::uint64_t v;
    Ticks t0 = machine.now();
    unit.ctxtld(1, Gpr::Rax, v);
    EXPECT_EQ(machine.now() - t0, machine.costs().ctxtRegAccess);
    // Orders of magnitude cheaper than a VM transition.
    EXPECT_LT(machine.costs().ctxtRegAccess * 50,
              machine.costs().vmExitHw);
}

TEST_F(SvtUnitTest, GuestAccessTrapsWhenConfigured)
{
    setupNested();
    unit.setGuestGprTrap(Gpr::Rcx, true);
    EXPECT_TRUE(unit.guestGprTraps(Gpr::Rcx));
    unit.vmResume(); // L1 executing (is_vm == 1)
    std::uint64_t v;
    EXPECT_EQ(unit.ctxtld(1, Gpr::Rcx, v), SvtUnit::Access::Trap);
    EXPECT_EQ(unit.ctxtst(1, Gpr::Rcx, 7), SvtUnit::Access::Trap);
    // Untrapped register still works.
    EXPECT_EQ(unit.ctxtld(1, Gpr::Rdx, v), SvtUnit::Access::Ok);
}

TEST_F(SvtUnitTest, HostIgnoresGuestTrapMask)
{
    setupNested();
    unit.setGuestGprTrap(Gpr::Rcx, true);
    // is_vm == 0: the host hypervisor is never subject to the mask.
    std::uint64_t v;
    EXPECT_EQ(unit.ctxtld(1, Gpr::Rcx, v), SvtUnit::Access::Ok);
}

TEST_F(SvtUnitTest, Section4WalkThrough)
{
    // Full Section 4 example: configure L1, resume, trap, reconfigure
    // for L2 via vmcs02, resume to L2.
    setupNested();

    // L0 loads L1's initial register state via ctxtst (lvl 1).
    EXPECT_EQ(unit.ctxtst(1, Gpr::Rsp, 0x7000), SvtUnit::Access::Ok);
    EXPECT_EQ(unit.ctxtst(1, SvtSpecialReg::Rip, 0x1000),
              SvtUnit::Access::Ok);

    // Start L1.
    unit.vmResume();
    EXPECT_EQ(machine.core(0).activeContext(), 1);

    // L1 (guest) reads its nested VM's registers with lvl == 1,
    // transparently reaching context-2.
    machine.core(0).context(2).writeGpr(Gpr::Rax, 0x2222);
    std::uint64_t v = 0;
    EXPECT_EQ(unit.ctxtld(1, Gpr::Rax, v), SvtUnit::Access::Ok);
    EXPECT_EQ(v, 0x2222u);

    // L1's vmresume traps to L0, which loads vmcs02 and resumes L2.
    unit.vmTrap();
    EXPECT_EQ(machine.core(0).activeContext(), 0);
    vmcs02.write(VmcsField::SvtVisor, 0);
    vmcs02.write(VmcsField::SvtVm, 2);
    unit.loadFromVmcs(vmcs02);
    unit.vmResume();
    EXPECT_EQ(machine.core(0).activeContext(), 2);
    EXPECT_TRUE(unit.uregs().isVm);

    // L2 traps; execution lands back on L0's context.
    unit.vmTrap();
    EXPECT_EQ(machine.core(0).activeContext(), 0);
}

TEST_F(SvtUnitTest, NoAdditionalPortPressure)
{
    // Structural check of the Section 4 claim that only one context
    // executes at a time: after any sequence of switches exactly one
    // context is unstalled.
    setupNested();
    unit.vmResume();
    unit.vmTrap();
    vmcs02.write(VmcsField::SvtVisor, 0);
    vmcs02.write(VmcsField::SvtVm, 2);
    unit.loadFromVmcs(vmcs02);
    unit.vmResume();
    int running = 0;
    for (int i = 0; i < machine.core(0).numContexts(); ++i)
        running += machine.core(0).context(i).stalled ? 0 : 1;
    EXPECT_EQ(running, 1);
}

TEST_F(SvtUnitTest, DisableRestoresBaseline)
{
    setupNested();
    unit.vmResume();
    unit.disable();
    EXPECT_FALSE(unit.enabled());
    EXPECT_THROW(unit.vmTrap(), PanicError);
}

TEST_F(SvtUnitTest, DisableUnstallsAllContexts)
{
    // Regression: enable() stalls every non-active context to build
    // the single-thread illusion, and disable() used to leave them
    // stalled — the core never returned to baseline SMT behavior
    // (Section 3.3 coexistence).
    setupNested();
    unit.vmResume();
    int stalled = 0;
    for (int i = 0; i < machine.core(0).numContexts(); ++i)
        stalled += machine.core(0).context(i).stalled ? 1 : 0;
    EXPECT_EQ(stalled, machine.core(0).numContexts() - 1);
    unit.disable();
    for (int i = 0; i < machine.core(0).numContexts(); ++i)
        EXPECT_FALSE(machine.core(0).context(i).stalled) << i;
}

TEST_F(SvtUnitTest, ReEnableAfterDisableRebuildsIllusion)
{
    setupNested();
    unit.disable();
    unit.enable();
    int running = 0;
    for (int i = 0; i < machine.core(0).numContexts(); ++i)
        running += machine.core(0).context(i).stalled ? 0 : 1;
    EXPECT_EQ(running, 1);
}

} // namespace
} // namespace svtsim
