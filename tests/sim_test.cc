/**
 * @file
 * Unit tests for the sim substrate: ticks, logging, RNG, event queue.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/random.h"
#include "sim/ticks.h"

namespace svtsim {
namespace {

// ---------------------------------------------------------------- ticks

TEST(Ticks, UnitConversions)
{
    EXPECT_EQ(nsec(1), 1000);
    EXPECT_EQ(usec(1), 1000 * 1000);
    EXPECT_EQ(msec(1), 1000LL * 1000 * 1000);
    EXPECT_EQ(sec(1), 1000LL * 1000 * 1000 * 1000);
    EXPECT_EQ(psec(5), 5);
}

TEST(Ticks, RoundTripReporting)
{
    EXPECT_DOUBLE_EQ(toUsec(usec(10.4)), 10.4);
    EXPECT_DOUBLE_EQ(toNsec(nsec(300)), 300.0);
    EXPECT_DOUBLE_EQ(toSec(sec(2)), 2.0);
}

TEST(Ticks, CyclesAtFrequency)
{
    // One cycle at 2.4 GHz is ~416.6 ps.
    EXPECT_EQ(cycles(1, 2.4), 416);
    EXPECT_EQ(cycles(24, 2.4), 10000);
    EXPECT_EQ(cycles(1, 1.0), 1000);
}

TEST(Ticks, FractionalInputs)
{
    EXPECT_EQ(nsec(0.5), 500);
    EXPECT_EQ(usec(0.081), 81000);
}

// ------------------------------------------------------------------ log

TEST(Log, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom"), PanicError);
    EXPECT_THROW(panic("%d", 42), PanicError);
}

TEST(Log, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Log, ErrorsShareBase)
{
    EXPECT_THROW(panic("x"), SimError);
    EXPECT_THROW(fatal("x"), SimError);
}

TEST(Log, MessagesAreFormatted)
{
    try {
        panic("value=%d name=%s", 7, "core");
        FAIL() << "expected panic";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7 name=core"),
                  std::string::npos);
    }
}

TEST(Log, SimAssertPassesAndFails)
{
    EXPECT_NO_THROW(simAssert(true, "fine"));
    EXPECT_THROW(simAssert(false, "broken"), PanicError);
}

TEST(Log, LevelRoundTrip)
{
    LogLevel prev = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(prev);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeMean)
{
    Rng rng(7);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform(10.0, 20.0);
    EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(Rng, BelowBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialRequiresPositiveMean)
{
    Rng rng(1);
    EXPECT_THROW(rng.exponential(0.0), PanicError);
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, GeneralizedParetoAboveLocation)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.generalizedPareto(10.0, 2.0, 0.2), 10.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(Zipf, RanksInRange)
{
    Rng rng(37);
    ZipfSampler zipf(1000, 0.99);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(zipf(rng), 1000u);
}

TEST(Zipf, SkewTowardLowRanks)
{
    Rng rng(41);
    ZipfSampler zipf(10000, 0.99);
    int low = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        low += (zipf(rng) < 100);
    // With s=0.99 over 10k items, the top-100 ranks should absorb a
    // large share of the mass (analytically ~half).
    EXPECT_GT(low, n / 3);
}

TEST(Zipf, FrequencyMonotonicity)
{
    Rng rng(43);
    ZipfSampler zipf(50, 1.2);
    std::vector<int> hits(50, 0);
    for (int i = 0; i < 200000; ++i)
        ++hits[zipf(rng)];
    EXPECT_GT(hits[0], hits[9]);
    EXPECT_GT(hits[9], hits[49]);
}

TEST(Zipf, RejectsBadParameters)
{
    EXPECT_THROW(ZipfSampler(0, 0.99), PanicError);
    EXPECT_THROW(ZipfSampler(10, 1.0), PanicError);
    EXPECT_THROW(ZipfSampler(10, -1.0), PanicError);
}

// --------------------------------------------------------- event queue

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTime(), maxTick);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(nsec(30), [&] { order.push_back(3); });
    eq.schedule(nsec(10), [&] { order.push_back(1); });
    eq.schedule(nsec(20), [&] { order.push_back(2); });
    eq.advanceTo(nsec(100));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), nsec(100));
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(nsec(10), [&order, i] { order.push_back(i); });
    eq.advanceTo(nsec(10));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventSeesOwnTimestamp)
{
    EventQueue eq;
    Ticks seen = -1;
    eq.schedule(nsec(25), [&] { seen = eq.now(); });
    eq.advanceTo(nsec(100));
    EXPECT_EQ(seen, nsec(25));
}

TEST(EventQueue, AdvanceByAccumulates)
{
    EventQueue eq;
    eq.advanceBy(nsec(10));
    eq.advanceBy(nsec(5));
    EXPECT_EQ(eq.now(), nsec(15));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.advanceTo(nsec(100));
    EXPECT_THROW(eq.schedule(nsec(50), [] {}), PanicError);
}

TEST(EventQueue, AdvanceIntoPastPanics)
{
    EventQueue eq;
    eq.advanceTo(nsec(100));
    EXPECT_THROW(eq.advanceTo(nsec(50)), PanicError);
}

TEST(EventQueue, DeschedulePreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(nsec(10), [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.advanceTo(nsec(100));
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleFiredIsNoop)
{
    EventQueue eq;
    EventId id = eq.schedule(nsec(10), [] {});
    eq.advanceTo(nsec(20));
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, DescheduleUnknownIsNoop)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(12345));
    EXPECT_FALSE(eq.deschedule(invalidEventId));
}

TEST(EventQueue, NextEventTimeSkipsCancelled)
{
    EventQueue eq;
    EventId early = eq.schedule(nsec(10), [] {});
    eq.schedule(nsec(20), [] {});
    eq.deschedule(early);
    EXPECT_EQ(eq.nextEventTime(), nsec(20));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    std::vector<Ticks> fired;
    eq.schedule(nsec(10), [&] {
        fired.push_back(eq.now());
        eq.schedule(nsec(15), [&] { fired.push_back(eq.now()); });
    });
    eq.advanceTo(nsec(100));
    EXPECT_EQ(fired, (std::vector<Ticks>{nsec(10), nsec(15)}));
}

TEST(EventQueue, RunNextSingleSteps)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(nsec(10), [&] { ++count; });
    eq.schedule(nsec(20), [&] { ++count; });
    EXPECT_TRUE(eq.runNext());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), nsec(10));
    EXPECT_TRUE(eq.runNext());
    EXPECT_FALSE(eq.runNext());
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(nsec(i * 10), [&] { ++count; });
    EXPECT_TRUE(eq.runUntil([&] { return count >= 4; }));
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), nsec(40));
}

TEST(EventQueue, RunUntilDrainsOnUnmetPredicate)
{
    EventQueue eq;
    eq.schedule(nsec(10), [] {});
    EXPECT_FALSE(eq.runUntil([] { return false; }));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutedCountTracks)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(nsec(i + 1), [] {});
    eq.advanceTo(nsec(100));
    EXPECT_EQ(eq.executedCount(), 7u);
}

TEST(EventQueue, SizeExcludesCancelled)
{
    EventQueue eq;
    EventId a = eq.schedule(nsec(10), [] {});
    eq.schedule(nsec(20), [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, DescheduleReleasesClosureEagerly)
{
    // Regression: lazy cancellation used to keep the cancelled
    // std::function (and everything it captured — device or vCPU
    // references) alive in the heap until the entry surfaced, which
    // for a far-future timer could be effectively forever.
    EventQueue eq;
    auto captured = std::make_shared<int>(42);
    EventId id = eq.schedule(sec(3600), [captured] { (void)*captured; });
    EXPECT_EQ(captured.use_count(), 2);
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_EQ(captured.use_count(), 1);
}

TEST(EventQueue, NextEventTimeIsConstAndStable)
{
    EventQueue eq;
    EventId early = eq.schedule(nsec(10), [] {});
    eq.schedule(nsec(20), [] {});
    eq.deschedule(early);
    const EventQueue &ceq = eq;
    EXPECT_EQ(ceq.nextEventTime(), nsec(20));
    // Repeated queries see the same state; pruning cancelled heap
    // entries must not disturb live ones.
    EXPECT_EQ(ceq.nextEventTime(), nsec(20));
    EXPECT_EQ(ceq.size(), 1u);
    bool ran = false;
    eq.schedule(nsec(20), [&] { ran = true; });
    eq.advanceTo(nsec(30));
    EXPECT_TRUE(ran);
}

TEST(Clock, ConsumeAdvancesSharedQueue)
{
    EventQueue eq;
    Clock clock(eq);
    bool fired = false;
    eq.schedule(nsec(10), [&] { fired = true; });
    clock.consume(nsec(5));
    EXPECT_FALSE(fired);
    clock.consume(nsec(5));
    EXPECT_TRUE(fired);
    EXPECT_EQ(clock.now(), nsec(10));
}

// Property: interleaved random schedule/cancel/advance keeps the queue
// consistent: every non-cancelled event fires exactly once, in order.
TEST(EventQueue, PropertyRandomizedConsistency)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue eq;
        std::vector<Ticks> fired;
        std::vector<EventId> ids;
        int expected = 0;
        for (int i = 0; i < 200; ++i) {
            Ticks when = eq.now() +
                         static_cast<Ticks>(rng.below(1000)) + 1;
            ids.push_back(eq.schedule(when, [&fired, &eq] {
                fired.push_back(eq.now());
            }));
            ++expected;
            if (rng.chance(0.2)) {
                auto idx = rng.below(ids.size());
                if (eq.deschedule(ids[idx]))
                    --expected;
            }
            if (rng.chance(0.1))
                eq.advanceBy(static_cast<Ticks>(rng.below(300)));
        }
        eq.advanceTo(eq.now() + 2000);
        EXPECT_EQ(static_cast<int>(fired.size()), expected);
        for (std::size_t i = 1; i < fired.size(); ++i)
            EXPECT_LE(fired[i - 1], fired[i]);
        EXPECT_TRUE(eq.empty());
    }
}

} // namespace
} // namespace svtsim
