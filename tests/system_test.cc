/**
 * @file
 * System-level and calibration tests: the assembled platform, the
 * Table 1 / Figure 6 anchors, stage-accounting consistency, and
 * cross-mode invariants on the paper topology.
 */

#include <gtest/gtest.h>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/net_fabric.h"
#include "io/virtio_net.h"
#include "sim/log.h"
#include "system/nested_system.h"
#include "workloads/microbench.h"

namespace svtsim {
namespace {

TEST(NestedSystem, PaperTopologyMatchesTable4)
{
    MachineTopology t = paperTopology(VirtMode::Nested);
    EXPECT_EQ(t.numaNodes, 2);
    EXPECT_EQ(t.coresPerNode, 8);
    EXPECT_EQ(t.threadsPerCore, 2);
    // HW SVt assumes an additional hardware context per core.
    EXPECT_EQ(paperTopology(VirtMode::HwSvt).threadsPerCore, 3);
    EXPECT_DOUBLE_EQ(paperCosts().freqGhz, 2.4);
}

TEST(NestedSystem, BuildsEveryMode)
{
    for (VirtMode mode :
         {VirtMode::Native, VirtMode::Single, VirtMode::Nested,
          VirtMode::SwSvt, VirtMode::HwSvt}) {
        NestedSystem sys(mode);
        EXPECT_EQ(&sys.api(), &sys.stack().api());
        EXPECT_EQ(sys.machine().numCores(), 16);
    }
}

// ---------------------------------------------------- calibration anchors

TEST(Calibration, Table1StageBreakdown)
{
    // The six stages of Table 1, within 6% of the paper's numbers.
    NestedSystem sys(VirtMode::Nested);
    GuestApi &api = sys.api();
    for (int i = 0; i < 8; ++i)
        api.cpuid(1);
    Machine &m = sys.machine();
    m.resetAttribution();
    const int iters = 50;
    for (int i = 0; i < iters; ++i)
        api.cpuid(1);

    struct Anchor
    {
        const char *scope;
        double paper_us;
    };
    const Anchor anchors[] = {
        {"stage.l2", 0.05},
        {"stage.switch_l2_l0", 0.81},
        {"stage.transform", 1.29},
        {"stage.l0_handler", 4.89},
        {"stage.switch_l0_l1", 1.40},
        {"stage.l1_handler", 1.96},
    };
    for (const auto &a : anchors) {
        double us = toUsec(m.scopeTotal(a.scope)) / iters;
        EXPECT_NEAR(us, a.paper_us, a.paper_us * 0.06) << a.scope;
    }
}

TEST(Calibration, Figure6Anchors)
{
    auto cpuid_us = [](VirtMode mode) {
        NestedSystem sys(mode);
        return CpuidMicrobench::run(sys.machine(), sys.api())
            .meanUsec;
    };
    double l0 = cpuid_us(VirtMode::Native);
    double l2 = cpuid_us(VirtMode::Nested);
    double sw = cpuid_us(VirtMode::SwSvt);
    double hw = cpuid_us(VirtMode::HwSvt);
    EXPECT_NEAR(l0, 0.05, 0.005);
    EXPECT_NEAR(l2, 10.40, 0.55);
    EXPECT_NEAR(l2 / sw, 1.23, 0.10);
    EXPECT_NEAR(l2 / hw, 1.94, 0.15);
}

TEST(Calibration, StageAccountingCoversElapsedTime)
{
    // Every tick of a nested cpuid round is attributed to a stage.
    NestedSystem sys(VirtMode::Nested);
    GuestApi &api = sys.api();
    api.cpuid(1);
    Machine &m = sys.machine();
    m.resetAttribution();
    Ticks t0 = m.now();
    for (int i = 0; i < 20; ++i)
        api.cpuid(1);
    Ticks elapsed = m.now() - t0;
    Ticks attributed =
        m.scopeTotal("stage.l2") + m.scopeTotal("stage.switch_l2_l0") +
        m.scopeTotal("stage.transform") +
        m.scopeTotal("stage.l0_handler") +
        m.scopeTotal("stage.switch_l0_l1") +
        m.scopeTotal("stage.l1_handler") +
        m.scopeTotal("stage.channel") +
        m.scopeTotal("stage.l1_housekeeping");
    EXPECT_NEAR(static_cast<double>(attributed),
                static_cast<double>(elapsed),
                static_cast<double>(elapsed) * 0.02);
}

TEST(Calibration, SwSvtChannelTimeIsVisible)
{
    NestedSystem sys(VirtMode::SwSvt);
    GuestApi &api = sys.api();
    api.cpuid(1);
    sys.machine().resetAttribution();
    api.cpuid(1);
    EXPECT_GT(sys.machine().scopeTotal("stage.channel"), 0);
    // The baseline L0<->L1 switch is gone in SW SVt.
    EXPECT_EQ(sys.machine().scopeTotal("stage.switch_l0_l1"), 0);
}

// ------------------------------------------------------ cross-mode sanity

TEST(System, FullIoStackRunsInEveryNestedMode)
{
    for (VirtMode mode :
         {VirtMode::Nested, VirtMode::SwSvt, VirtMode::HwSvt}) {
        NestedSystem sys(mode);
        NetFabric fabric(sys.machine(),
                         sys.machine().costs().wireLatency,
                         sys.machine().costs().linkBitsPerSec);
        VirtioNetStack net(sys.stack(), fabric);
        RamDisk disk(sys.machine(), "d");
        VirtioBlkStack blk(sys.stack(), disk);

        fabric.setPeerHandler([&](NetPacket pkt) {
            fabric.sendToLocal(pkt);
        });
        int rx = 0;
        net.setRxHandler([&](NetPacket) { ++rx; });
        bool io_done = false;
        blk.setCompletionHandler(
            [&](std::uint64_t) { io_done = true; });

        net.send(512, 1);
        blk.submit(7, 0, 4096, true);
        GuestApi &api = sys.api();
        while (!io_done || rx < 1)
            api.halt();
        SUCCEED() << virtModeName(mode);
    }
}

TEST(System, ExitProfileMatchesSection62Shape)
{
    // Section 6.2: EPT_MISCONFIG dominates the L0 exit-time profile
    // of I/O-heavy runs, with MSR_WRITE a distant second among MSR
    // exits (timer reprogramming).
    NestedSystem sys(VirtMode::Nested);
    NetFabric fabric(sys.machine(), sys.machine().costs().wireLatency,
                     sys.machine().costs().linkBitsPerSec);
    VirtioNetStack net(sys.stack(), fabric);
    fabric.setPeerHandler(
        [&](NetPacket pkt) { fabric.sendToLocal(pkt); });
    int rx = 0;
    net.setRxHandler([&](NetPacket) { ++rx; });
    for (int i = 0; i < 10; ++i) {
        int want = rx + 1;
        net.send(64, static_cast<std::uint64_t>(i));
        while (rx < want)
            sys.api().halt();
    }
    Machine &m = sys.machine();
    EXPECT_GT(m.scopeTotal("exit.EPT_MISCONFIG"), 0);
    EXPECT_GT(m.scopeTotal("exit.MSR_WRITE"), 0);
    EXPECT_GT(m.counter("l2.exit.MSR_WRITE"), 0u);
}

TEST(System, HousekeepingMechanism)
{
    // Serial in the baseline...
    NestedSystem base(VirtMode::Nested);
    base.api().cpuid(1);
    base.stack().postL1Housekeeping(usec(40));
    Ticks t0 = base.machine().now();
    base.api().cpuid(1);
    Ticks with_hk = base.machine().now() - t0;
    t0 = base.machine().now();
    base.api().cpuid(1);
    Ticks without_hk = base.machine().now() - t0;
    EXPECT_NEAR(static_cast<double>(with_hk - without_hk),
                static_cast<double>(usec(40)),
                static_cast<double>(usec(2)));

    // ...overlapped under SW SVt (within the overlap window).
    NestedSystem svt(VirtMode::SwSvt);
    svt.api().cpuid(1);
    svt.stack().postL1Housekeeping(usec(40));
    t0 = svt.machine().now();
    svt.api().cpuid(1);
    Ticks svt_with = svt.machine().now() - t0;
    t0 = svt.machine().now();
    svt.api().cpuid(1);
    Ticks svt_without = svt.machine().now() - t0;
    EXPECT_LT(svt_with - svt_without, usec(2));
    EXPECT_EQ(svt.machine().counter("l1.housekeeping.overlapped"), 1u);
}

TEST(System, HousekeepingSpillBeyondOverlapWindow)
{
    NestedSystem svt(VirtMode::SwSvt);
    svt.api().cpuid(1);
    Ticks window = svt.machine().costs().swSvtOverlapWindow;
    svt.stack().postL1Housekeeping(window + usec(30));
    Ticks t0 = svt.machine().now();
    svt.api().cpuid(1);
    Ticks with_spill = svt.machine().now() - t0;
    t0 = svt.machine().now();
    svt.api().cpuid(1);
    Ticks base = svt.machine().now() - t0;
    EXPECT_NEAR(static_cast<double>(with_spill - base),
                static_cast<double>(usec(30)),
                static_cast<double>(usec(2)));
}

TEST(System, NegativeHousekeepingRejected)
{
    NestedSystem sys(VirtMode::Nested);
    EXPECT_THROW(sys.stack().postL1Housekeeping(-1), PanicError);
}

} // namespace
} // namespace svtsim
