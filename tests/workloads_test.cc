/**
 * @file
 * Tests for the workload generators: guest-OS idle, netperf, disk
 * benches, memcached/mutilate, TPC-C and video playback.
 */

#include <gtest/gtest.h>

#include "io/ramdisk.h"
#include "io/virtio_blk.h"
#include "io/virtio_net.h"
#include "sim/log.h"
#include "system/nested_system.h"
#include "workloads/diskbench.h"
#include "workloads/guest_os.h"
#include "workloads/memcached.h"
#include "workloads/microbench.h"
#include "workloads/netperf.h"
#include "workloads/tpcc.h"
#include "workloads/video.h"

namespace svtsim {
namespace {

// ------------------------------------------------------------- guest os

TEST(GuestOs, IdleWaitWakesPromptlyOnInterrupt)
{
    NestedSystem sys(VirtMode::Nested);
    bool flag = false;
    sys.stack().setIrqHandler(2, 0x80, [&] { flag = true; });
    sys.machine().events().scheduleIn(
        usec(120), [&] { sys.stack().raiseL2Irq(0x80); });
    Ticks t0 = sys.machine().now();
    GuestOs::idleWait(sys.api(), [&] { return flag; });
    EXPECT_TRUE(flag);
    Ticks waited = sys.machine().now() - t0;
    EXPECT_GE(waited, usec(120));
    // Woken by the interrupt, not by the 1 ms watchdog.
    EXPECT_LT(waited, usec(700));
}

TEST(GuestOs, IdleWaitFallsBackToWatchdog)
{
    // A condition that becomes true without any interrupt is only
    // noticed at the idle watchdog tick.
    NestedSystem sys(VirtMode::Nested);
    bool flag = false;
    sys.machine().events().scheduleIn(usec(120),
                                      [&] { flag = true; });
    Ticks t0 = sys.machine().now();
    GuestOs::idleWait(sys.api(), [&] { return flag; });
    Ticks waited = sys.machine().now() - t0;
    EXPECT_GE(waited, msec(1));
    EXPECT_LT(waited, msec(1.5));
}

TEST(GuestOs, IdleWaitReturnsImmediatelyWhenReady)
{
    NestedSystem sys(VirtMode::Nested);
    Ticks t0 = sys.machine().now();
    GuestOs::idleWait(sys.api(), [] { return true; });
    EXPECT_EQ(sys.machine().now(), t0);
}

TEST(GuestOs, WatchdogKeepsFiringOnLongWaits)
{
    NestedSystem sys(VirtMode::Nested);
    bool flag = false;
    sys.machine().events().scheduleIn(msec(3.5), [&] { flag = true; });
    GuestOs::idleWait(sys.api(), [&] { return flag; });
    EXPECT_TRUE(flag);
}

// ----------------------------------------------------------------- ETC

TEST(Etc, ValueSizesWithinCap)
{
    Rng rng(1);
    EtcWorkload etc;
    for (int i = 0; i < 20000; ++i) {
        auto v = etc.sampleValueSize(rng);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, etc.valueCap);
    }
}

TEST(Etc, MostRequestsAreGets)
{
    Rng rng(2);
    EtcWorkload etc;
    int gets = 0;
    for (int i = 0; i < 10000; ++i)
        gets += etc.isGet(rng);
    EXPECT_NEAR(gets / 10000.0, etc.getRatio, 0.02);
}

TEST(Etc, KeySizesInRange)
{
    Rng rng(3);
    EtcWorkload etc;
    for (int i = 0; i < 1000; ++i) {
        auto k = etc.sampleKeySize(rng);
        EXPECT_GE(k, etc.keyMin);
        EXPECT_LE(k, etc.keyMax);
    }
}

// -------------------------------------------------------------- netperf

struct NetRig
{
    explicit NetRig(VirtMode mode)
        : sys(mode),
          fabric(sys.machine(), sys.machine().costs().wireLatency,
                 sys.machine().costs().linkBitsPerSec),
          net(sys.stack(), fabric), netperf(sys.stack(), net, fabric)
    {
    }

    NestedSystem sys;
    NetFabric fabric;
    VirtioNetStack net;
    Netperf netperf;
};

TEST(Netperf, RrLatencyIsSane)
{
    NetRig rig(VirtMode::Nested);
    auto r = rig.netperf.runRr(1, 1, 20);
    EXPECT_EQ(r.transactions, 20u);
    // Must at least cover two wire crossings plus the peer.
    EXPECT_GT(r.meanUsec,
              2 * toUsec(rig.sys.machine().costs().wireLatency));
    EXPECT_LT(r.meanUsec, 400.0);
    EXPECT_GE(r.p99Usec, r.meanUsec);
}

TEST(Netperf, RrFasterWithSvt)
{
    NetRig base(VirtMode::Nested);
    NetRig sw(VirtMode::SwSvt);
    NetRig hw(VirtMode::HwSvt);
    double b = base.netperf.runRr(1, 1, 25).meanUsec;
    double s = sw.netperf.runRr(1, 1, 25).meanUsec;
    double h = hw.netperf.runRr(1, 1, 25).meanUsec;
    EXPECT_LT(s, b);
    EXPECT_LT(h, s);
}

TEST(Netperf, StreamApproachesLineRate)
{
    NetRig rig(VirtMode::Nested);
    auto r = rig.netperf.runStream(16384, msec(25));
    // 10 GbE: must exceed 8 Gb/s and stay below the raw line rate
    // plus a small accounting tolerance.
    EXPECT_GT(r.mbps, 8000.0);
    EXPECT_LT(r.mbps, 11000.0);
    EXPECT_GT(r.segments, 1000u);
}

TEST(Netperf, StreamWindowValidation)
{
    NetRig rig(VirtMode::Nested);
    EXPECT_THROW(rig.netperf.runStream(16384, msec(1), 4, 8),
                 FatalError);
}

// ------------------------------------------------------------ diskbench

struct BlkRig
{
    explicit BlkRig(VirtMode mode)
        : sys(mode), disk(sys.machine(), "d"), blk(sys.stack(), disk)
    {
    }

    NestedSystem sys;
    RamDisk disk;
    VirtioBlkStack blk;
};

TEST(IoPing, ReadLatencyIsSane)
{
    BlkRig rig(VirtMode::Nested);
    IoPing ioping(rig.sys.stack(), rig.blk);
    auto r = ioping.run(512, false, 20);
    EXPECT_EQ(r.requests, 20u);
    EXPECT_GT(r.meanUsec,
              toUsec(rig.disk.serviceTime(512, false)));
    EXPECT_LT(r.meanUsec, 400.0);
}

TEST(IoPing, SyncWritesSlowerThanReads)
{
    BlkRig rig(VirtMode::Nested);
    IoPing ioping(rig.sys.stack(), rig.blk);
    double rd = ioping.run(512, false, 15).meanUsec;
    double wr = ioping.run(512, true, 15).meanUsec;
    // The O_SYNC flush roughly doubles the trap chain.
    EXPECT_GT(wr, rd * 1.5);
}

TEST(Fio, ThroughputScalesWithIodepth)
{
    BlkRig rig(VirtMode::Nested);
    Fio fio(rig.sys.stack(), rig.blk);
    auto qd1 = fio.run(4096, false, 1, msec(20));
    auto qd4 = fio.run(4096, false, 4, msec(20));
    EXPECT_GT(qd1.operations, 10u);
    EXPECT_GT(qd4.kbPerSec, qd1.kbPerSec);
}

TEST(Fio, BackToBackRunsAreClean)
{
    // Regression: stragglers from a previous run must not corrupt the
    // next run's submission window (unsigned underflow bug).
    BlkRig rig(VirtMode::Nested);
    Fio fio(rig.sys.stack(), rig.blk);
    auto a = fio.run(4096, false, 4, msec(15));
    auto b = fio.run(4096, true, 4, msec(15));
    EXPECT_GT(a.operations, 50u);
    EXPECT_GT(b.operations, 50u);
    // Reads and writes within a sane factor of each other.
    EXPECT_GT(b.kbPerSec, a.kbPerSec * 0.4);
}

// ------------------------------------------------------------ memcached

struct McRig
{
    explicit McRig(VirtMode mode)
        : sys(mode),
          fabric(sys.machine(), sys.machine().costs().wireLatency,
                 sys.machine().costs().linkBitsPerSec),
          net(sys.stack(), fabric),
          bench(sys.stack(), net, fabric)
    {
    }

    NestedSystem sys;
    NetFabric fabric;
    VirtioNetStack net;
    MemcachedBench bench;
};

TEST(Memcached, LowLoadLatencyIsSane)
{
    McRig rig(VirtMode::Nested);
    auto p = rig.bench.runLoad(2000, msec(60));
    EXPECT_GT(p.completed, 60u);
    EXPECT_GT(p.avgUsec, 50.0);
    EXPECT_LT(p.avgUsec, 500.0);
    EXPECT_GE(p.p99Usec, p.avgUsec);
}

TEST(Memcached, LatencyGrowsWithLoad)
{
    McRig low(VirtMode::Nested);
    McRig high(VirtMode::Nested);
    auto a = low.bench.runLoad(2000, msec(60));
    auto b = high.bench.runLoad(12000, msec(60));
    EXPECT_GT(b.p99Usec, a.p99Usec);
}

TEST(Memcached, SvtReducesTailLatency)
{
    McRig base(VirtMode::Nested);
    McRig svt(VirtMode::SwSvt);
    auto a = base.bench.runLoad(10000, msec(80));
    auto b = svt.bench.runLoad(10000, msec(80));
    EXPECT_LT(b.p99Usec, a.p99Usec);
    EXPECT_LT(b.avgUsec, a.avgUsec);
}

TEST(Memcached, HousekeepingIsOverlappedOnlyUnderSwSvt)
{
    McRig base(VirtMode::Nested);
    McRig svt(VirtMode::SwSvt);
    base.bench.runLoad(6000, msec(30));
    svt.bench.runLoad(6000, msec(30));
    EXPECT_GT(base.sys.machine().counter("l1.housekeeping.serial"),
              0u);
    EXPECT_EQ(base.sys.machine().counter("l1.housekeeping.overlapped"),
              0u);
    EXPECT_GT(svt.sys.machine().counter("l1.housekeeping.overlapped"),
              0u);
    EXPECT_EQ(svt.sys.machine().counter("l1.housekeeping.serial"), 0u);
}

// ----------------------------------------------------------------- tpcc

TEST(Tpcc, CompletesTransactions)
{
    NestedSystem sys(VirtMode::Nested);
    NetFabric fabric(sys.machine(), sys.machine().costs().wireLatency,
                     sys.machine().costs().linkBitsPerSec);
    VirtioNetStack net(sys.stack(), fabric);
    RamDisk disk(sys.machine(), "pg");
    VirtioBlkStack blk(sys.stack(), disk);
    Tpcc tpcc(sys.stack(), net, fabric, blk);
    auto r = tpcc.run(msec(400));
    EXPECT_GT(r.transactions, 20u);
    EXPECT_GT(r.tpm, 1000.0);
    EXPECT_GT(r.meanTxnMsec, 1.0);
}

TEST(Tpcc, MixWeightsSumTo100)
{
    int count = 0;
    const TpccTxnProfile *p = Tpcc::profiles(count);
    int total = 0;
    for (int i = 0; i < count; ++i)
        total += p[i].weight;
    EXPECT_EQ(total, 100);
}

TEST(Tpcc, SvtImprovesThroughput)
{
    auto run = [](VirtMode mode) {
        NestedSystem sys(mode);
        NetFabric fabric(sys.machine(),
                         sys.machine().costs().wireLatency,
                         sys.machine().costs().linkBitsPerSec);
        VirtioNetStack net(sys.stack(), fabric);
        RamDisk disk(sys.machine(), "pg");
        VirtioBlkStack blk(sys.stack(), disk);
        Tpcc tpcc(sys.stack(), net, fabric, blk);
        return tpcc.run(msec(500)).tpm;
    };
    double base = run(VirtMode::Nested);
    double svt = run(VirtMode::SwSvt);
    EXPECT_GT(svt, base);
}

// ---------------------------------------------------------------- video

TEST(Video, NoDropsAtCinemaRate)
{
    NestedSystem sys(VirtMode::Nested);
    RamDisk disk(sys.machine(), "m");
    VirtioBlkStack blk(sys.stack(), disk);
    VideoPlayback player(sys.stack(), blk);
    auto r = player.run(24, sec(10));
    EXPECT_EQ(r.droppedFrames, 0);
    EXPECT_EQ(r.totalFrames, 240);
    EXPECT_LT(r.busyFraction, 0.2);
}

TEST(Video, BusyFractionScalesWithRate)
{
    auto busy = [](double fps) {
        NestedSystem sys(VirtMode::Nested);
        RamDisk disk(sys.machine(), "m");
        VirtioBlkStack blk(sys.stack(), disk);
        VideoPlayback player(sys.stack(), blk);
        return player.run(fps, sec(5)).busyFraction;
    };
    EXPECT_GT(busy(120), busy(24) * 3);
}

TEST(Video, SvtDropsNoMoreLateWakeupsThanBaseline)
{
    // Decode-tail drops are common-mode noise; the SVt benefit shows
    // in the late-wakeup drops (timer delivery latency).
    auto run = [](VirtMode mode) {
        NestedSystem sys(mode);
        RamDisk disk(sys.machine(), "m");
        VirtioBlkStack blk(sys.stack(), disk);
        VideoPlayback player(sys.stack(), blk);
        return player.run(120, sec(60));
    };
    VideoResult base = run(VirtMode::Nested);
    VideoResult svt = run(VirtMode::SwSvt);
    EXPECT_LE(svt.lateWakeupDrops, base.lateWakeupDrops);
    EXPECT_LE(svt.droppedFrames, base.droppedFrames + 2);
}

// ----------------------------------------------------------- microbench

TEST(Microbench, ConvergesAndMatchesTable1)
{
    NestedSystem sys(VirtMode::Nested);
    auto r = CpuidMicrobench::run(sys.machine(), sys.api());
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.meanUsec, 10.40, 0.55);
}

TEST(Microbench, WorkloadSizeAddsLinearly)
{
    NestedSystem sys(VirtMode::Nested);
    auto small = CpuidMicrobench::run(sys.machine(), sys.api(), 0);
    auto large =
        CpuidMicrobench::run(sys.machine(), sys.api(), 10000);
    double extra =
        toUsec(sys.machine().costs().regOp) * 10000;
    EXPECT_NEAR(large.meanUsec - small.meanUsec, extra,
                extra * 0.05 + 0.05);
}

} // namespace
} // namespace svtsim
